#include "multiclass/jq_bucket.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "model/worker.h"
#include "util/check.h"

namespace jury::mc {
namespace {

using Key = std::vector<std::int32_t>;

struct KeyHash {
  std::size_t operator()(const Key& key) const {
    // FNV-1a over the raw words.
    std::uint64_t h = 1469598103934665603ull;
    for (std::int32_t v : key) {
      h ^= static_cast<std::uint32_t>(v);
      h *= 1099511628211ull;
    }
    return static_cast<std::size_t>(h);
  }
};

using KeyMap = std::unordered_map<Key, double, KeyHash>;

double SafeLog(double x) { return std::log(jury::EffectiveQuality(x)); }

}  // namespace

Result<double> EstimateMcJq(const McJury& jury, const McPrior& prior,
                            const McBucketOptions& options,
                            McBucketStats* stats) {
  JURY_RETURN_NOT_OK(jury.Validate());
  if (jury.empty()) {
    return Status::InvalidArgument("EstimateMcJq requires a non-empty jury");
  }
  if (options.num_buckets <= 0) {
    return Status::InvalidArgument("num_buckets must be positive");
  }
  const std::size_t labels = jury.num_labels();
  JURY_RETURN_NOT_OK(ValidateMcPrior(prior, labels));
  const std::size_t n = jury.size();
  if (stats != nullptr) *stats = McBucketStats{};

  // Global bucket width: the largest |log-ratio| any single vote or the
  // prior can contribute, split into num_buckets intervals.
  double upper = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const ConfusionMatrix& cm = jury.worker(i).confusion;
    for (std::size_t a = 0; a < labels; ++a) {
      for (std::size_t b = 0; b < labels; ++b) {
        for (std::size_t v = 0; v < labels; ++v) {
          upper = std::max(upper, std::fabs(SafeLog(cm(a, v)) -
                                            SafeLog(cm(b, v))));
        }
      }
    }
  }
  for (std::size_t a = 0; a < labels; ++a) {
    for (std::size_t b = 0; b < labels; ++b) {
      upper = std::max(upper,
                       std::fabs(SafeLog(prior[a]) - SafeLog(prior[b])));
    }
  }
  if (upper <= 0.0) {
    // All workers are exact spammers and the prior is uniform: BV always
    // returns label 0, so JQ = prior[0].
    return prior[0];
  }
  const double delta = upper / static_cast<double>(options.num_buckets);
  if (stats != nullptr) stats->delta = delta;

  auto bucketize = [delta](double x) {
    return static_cast<std::int32_t>(std::llround(x / delta));
  };

  double jq = 0.0;
  for (std::size_t target = 0; target < labels; ++target) {
    // Ratio slots: one per label j != target, in increasing-j order.
    std::vector<std::size_t> others;
    for (std::size_t j = 0; j < labels; ++j) {
      if (j != target) others.push_back(j);
    }

    // Base key from the prior ratios.
    Key base(others.size());
    for (std::size_t s = 0; s < others.size(); ++s) {
      base[s] = bucketize(SafeLog(prior[target]) - SafeLog(prior[others[s]]));
    }

    KeyMap current;
    current.emplace(std::move(base), 1.0);

    for (std::size_t i = 0; i < n; ++i) {
      const ConfusionMatrix& cm = jury.worker(i).confusion;
      // Pre-bucket this worker's increments per possible vote.
      std::vector<Key> increments(labels, Key(others.size()));
      std::vector<double> vote_prob(labels);
      for (std::size_t v = 0; v < labels; ++v) {
        vote_prob[v] = cm(target, v);
        for (std::size_t s = 0; s < others.size(); ++s) {
          increments[v][s] =
              bucketize(SafeLog(cm(target, v)) - SafeLog(cm(others[s], v)));
        }
      }

      KeyMap next;
      next.reserve(current.size() * labels);
      for (const auto& [key, prob] : current) {
        for (std::size_t v = 0; v < labels; ++v) {
          if (vote_prob[v] <= 0.0) continue;
          Key advanced = key;
          for (std::size_t s = 0; s < others.size(); ++s) {
            advanced[s] += increments[v][s];
          }
          next[std::move(advanced)] += prob * vote_prob[v];
        }
      }
      current.swap(next);
      if (stats != nullptr) {
        stats->max_keys = std::max(stats->max_keys, current.size());
      }
    }

    // H(target): keys where the target beats every smaller label strictly
    // and every larger label at least ties (argmax tie-break).
    double h = 0.0;
    for (const auto& [key, prob] : current) {
      bool wins = true;
      for (std::size_t s = 0; s < others.size() && wins; ++s) {
        if (others[s] < target) {
          wins = key[s] > 0;
        } else {
          wins = key[s] >= 0;
        }
      }
      if (wins) h += prob;
    }
    jq += prior[target] * h;
  }
  return std::min(jq, 1.0);
}

}  // namespace jury::mc
