#include "multiclass/dawid_skene.h"

#include <algorithm>
#include <cmath>

#include "model/worker.h"
#include "util/check.h"
#include "util/math.h"

namespace jury::mc {

Status McDataset::Validate() const {
  if (num_workers == 0 || num_labels < 2) {
    return Status::InvalidArgument("dataset needs workers and >= 2 labels");
  }
  for (const auto& task : tasks) {
    for (const McAnswer& a : task) {
      if (a.worker >= num_workers) {
        return Status::OutOfRange("answer references unknown worker");
      }
      if (a.vote >= num_labels) {
        return Status::OutOfRange("answer references unknown label");
      }
    }
  }
  return Status::OK();
}

std::size_t McDawidSkeneResult::Decide(std::size_t task,
                                       std::size_t num_labels) const {
  JURY_CHECK_LT((task + 1) * num_labels, posteriors.size() + 1);
  std::size_t best = 0;
  for (std::size_t j = 1; j < num_labels; ++j) {
    if (posteriors[task * num_labels + j] >
        posteriors[task * num_labels + best]) {
      best = j;
    }
  }
  return best;
}

Result<McDawidSkeneResult> RunMcDawidSkene(
    const McDataset& dataset, const McDawidSkeneOptions& options) {
  JURY_RETURN_NOT_OK(dataset.Validate());
  if (options.max_iterations <= 0) {
    return Status::InvalidArgument("max_iterations must be positive");
  }
  if (options.smoothing < 0.0) {
    return Status::InvalidArgument("smoothing must be non-negative");
  }
  const std::size_t l = dataset.num_labels;
  const std::size_t num_tasks = dataset.tasks.size();
  McPrior prior = options.prior.empty() ? UniformMcPrior(l) : options.prior;
  JURY_RETURN_NOT_OK(ValidateMcPrior(prior, l));

  McDawidSkeneResult result;
  result.posteriors.assign(num_tasks * l, 0.0);
  result.confusion.assign(dataset.num_workers,
                          ConfusionMatrix::UniformSpammer(l));

  // Initialize posteriors with empirical vote shares (soft majority vote).
  for (std::size_t t = 0; t < num_tasks; ++t) {
    const auto& answers = dataset.tasks[t];
    if (answers.empty()) {
      for (std::size_t j = 0; j < l; ++j) {
        result.posteriors[t * l + j] = prior[j];
      }
      continue;
    }
    for (const McAnswer& a : answers) {
      result.posteriors[t * l + a.vote] +=
          1.0 / static_cast<double>(answers.size());
    }
  }

  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    result.iterations = iter;

    // M-step: confusion matrices from soft labels.
    double max_change = 0.0;
    for (std::size_t w = 0; w < dataset.num_workers; ++w) {
      // counts[j][k]: expected number of times worker w voted k on a task
      // whose (soft) truth is j.
      std::vector<double> counts(l * l, options.smoothing);
      bool answered = false;
      for (std::size_t t = 0; t < num_tasks; ++t) {
        for (const McAnswer& a : dataset.tasks[t]) {
          if (a.worker != w) continue;
          answered = true;
          for (std::size_t j = 0; j < l; ++j) {
            counts[j * l + a.vote] += result.posteriors[t * l + j];
          }
        }
      }
      if (!answered && options.smoothing == 0.0) continue;
      ConfusionMatrix updated = result.confusion[w];
      for (std::size_t j = 0; j < l; ++j) {
        double row_sum = 0.0;
        for (std::size_t k = 0; k < l; ++k) row_sum += counts[j * l + k];
        for (std::size_t k = 0; k < l; ++k) {
          const double value =
              row_sum > 0.0 ? counts[j * l + k] / row_sum
                            : 1.0 / static_cast<double>(l);
          max_change =
              std::max(max_change, std::fabs(value - updated(j, k)));
          updated.at(j, k) = value;
        }
      }
      result.confusion[w] = std::move(updated);
    }

    // E-step: label posteriors from confusion matrices.
    for (std::size_t t = 0; t < num_tasks; ++t) {
      std::vector<double> log_scores(l);
      for (std::size_t j = 0; j < l; ++j) {
        log_scores[j] = std::log(jury::EffectiveQuality(prior[j]));
        for (const McAnswer& a : dataset.tasks[t]) {
          log_scores[j] += std::log(jury::EffectiveQuality(
              result.confusion[a.worker](j, a.vote)));
        }
      }
      const double norm = LogSumExp(log_scores);
      for (std::size_t j = 0; j < l; ++j) {
        result.posteriors[t * l + j] = std::exp(log_scores[j] - norm);
      }
    }

    if (max_change < options.tolerance) {
      result.converged = true;
      break;
    }
  }
  return result;
}

}  // namespace jury::mc
