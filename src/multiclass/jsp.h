#ifndef JURYOPT_MULTICLASS_JSP_H_
#define JURYOPT_MULTICLASS_JSP_H_

#include <vector>

#include "multiclass/jq_bucket.h"
#include "multiclass/model.h"
#include "util/result.h"
#include "util/rng.h"

namespace jury::mc {

/// \brief Multi-class JSP instance (§7 "Jury Selection Problem Extension").
struct McJspInstance {
  std::vector<McWorker> candidates;
  double budget = 0.0;
  McPrior prior;

  Status Validate() const;
};

/// \brief Multi-class JSP solution (indices into candidates).
struct McJspSolution {
  std::vector<std::size_t> selected;
  double jq = 0.0;
  double cost = 0.0;
};

/// \brief Simulated-annealing knobs; same schedule as the binary Algorithm 3
/// (they are forwarded into `AnnealingOptions` and validated there).
struct McAnnealingOptions {
  double initial_temperature = 1.0;
  double epsilon = 1e-8;
  double cooling_factor = 0.5;
  McBucketOptions bucket;
};

/// \brief JSP under the confusion-matrix model, by simulated annealing with
/// `EstimateMcJq` as the black-box objective — exactly how §7 argues the
/// binary heuristic carries over ("the simulated annealing heuristic regards
/// computing JQ as a black box"). Lemma 1 still holds (more workers never
/// hurt BV), so affordable additions are accepted unconditionally.
///
/// Since the unified-solve-API redesign this *is* the binary solver: the
/// multi-class objective is adapted behind the `JqObjective` interface
/// (placeholder workers carrying the per-solve cost column, ids indexing
/// the real `McWorker`s) and the shared `SolveAnnealing` driver runs the
/// schedule — including its rng-free batched best-improvement polish —
/// instead of the copy-pasted mirror this file used to carry.
Result<McJspSolution> SolveMcAnnealing(const McJspInstance& instance, Rng* rng,
                                       const McAnnealingOptions& options = {});

/// Exhaustive multi-class JSP for small candidate pools (tests/benchmarks).
/// Delegates to the shared `SolveExhaustive` driver through the same
/// adapter, inheriting its Lemma-1 maximality pruning and its
/// cheaper-jury-on-ties tie-break.
Result<McJspSolution> SolveMcExhaustive(const McJspInstance& instance,
                                        const McBucketOptions& bucket = {},
                                        std::size_t max_candidates = 16);

}  // namespace jury::mc

#endif  // JURYOPT_MULTICLASS_JSP_H_
