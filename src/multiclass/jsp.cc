#include "multiclass/jsp.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "util/check.h"

namespace jury::mc {
namespace {

/// JQ of the empty jury: the best the prior alone can do.
double EmptyMcJq(const McPrior& prior) {
  double best = 0.0;
  for (double p : prior) best = std::max(best, p);
  return best;
}

McJury BuildJury(const McJspInstance& instance,
                 const std::vector<std::size_t>& selected,
                 std::size_t skip = static_cast<std::size_t>(-1),
                 std::size_t extra = static_cast<std::size_t>(-1)) {
  McJury jury;
  for (std::size_t idx : selected) {
    if (idx != skip) jury.Add(instance.candidates[idx]);
  }
  if (extra != static_cast<std::size_t>(-1)) {
    jury.Add(instance.candidates[extra]);
  }
  return jury;
}

double EvaluateJq(const McJspInstance& instance, const McJury& jury,
                  const McBucketOptions& bucket) {
  if (jury.empty()) return EmptyMcJq(instance.prior);
  return EstimateMcJq(jury, instance.prior, bucket).value();
}

McJspSolution Finish(const McJspInstance& instance,
                     std::vector<std::size_t> selected, double jq) {
  std::sort(selected.begin(), selected.end());
  McJspSolution out;
  out.jq = jq;
  out.cost = 0.0;
  for (std::size_t idx : selected) out.cost += instance.candidates[idx].cost;
  out.selected = std::move(selected);
  return out;
}

}  // namespace

Status McJspInstance::Validate() const {
  if (!(budget >= 0.0)) {
    return Status::InvalidArgument("budget must be non-negative");
  }
  std::size_t labels = prior.size();
  if (labels < 2) return Status::InvalidArgument("prior needs >= 2 labels");
  JURY_RETURN_NOT_OK(ValidateMcPrior(prior, labels));
  for (const McWorker& w : candidates) {
    JURY_RETURN_NOT_OK(w.confusion.Validate());
    if (w.confusion.num_labels() != labels) {
      return Status::InvalidArgument("candidate label count != prior size");
    }
    if (!(w.cost >= 0.0)) {
      return Status::InvalidArgument("negative candidate cost");
    }
  }
  return Status::OK();
}

Result<McJspSolution> SolveMcAnnealing(const McJspInstance& instance, Rng* rng,
                                       const McAnnealingOptions& options) {
  JURY_RETURN_NOT_OK(instance.Validate());
  if (rng == nullptr) {
    return Status::InvalidArgument("SolveMcAnnealing requires an Rng");
  }
  const std::size_t n = instance.candidates.size();
  if (n == 0) return Finish(instance, {}, EmptyMcJq(instance.prior));

  // Columnar cost snapshot, mirroring the binary solvers' WorkerPoolView:
  // the per-move affordability tests below read one contiguous double
  // column instead of re-gathering McWorker structs (confusion matrix +
  // strings) per probe.
  std::vector<double> cost_col(n);
  for (std::size_t i = 0; i < n; ++i) {
    cost_col[i] = instance.candidates[i].cost;
  }

  std::vector<bool> in_jury(n, false);
  std::vector<std::size_t> members;
  double cost = 0.0;
  double current_jq = EmptyMcJq(instance.prior);

  for (double temperature = options.initial_temperature;
       temperature >= options.epsilon;
       temperature *= options.cooling_factor) {
    for (std::size_t step = 0; step < n; ++step) {
      const std::size_t r = static_cast<std::size_t>(rng->UniformInt(n));
      if (!in_jury[r] && cost + cost_col[r] <= instance.budget) {
        // Lemma 1 (extended in §7): adding a worker never hurts BV.
        members.push_back(r);
        in_jury[r] = true;
        cost += cost_col[r];
        current_jq = EvaluateJq(instance, BuildJury(instance, members),
                                options.bucket);
        continue;
      }
      // Swap move (Algorithm 4 analogue).
      std::size_t out_idx;
      std::size_t in_idx;
      if (!in_jury[r]) {
        if (members.empty()) continue;
        out_idx = members[static_cast<std::size_t>(
            rng->UniformInt(members.size()))];
        in_idx = r;
      } else {
        const std::size_t complement = n - members.size();
        if (complement == 0) continue;
        std::size_t target =
            static_cast<std::size_t>(rng->UniformInt(complement));
        in_idx = n;  // sentinel
        for (std::size_t i = 0; i < n; ++i) {
          if (!in_jury[i]) {
            if (target == 0) {
              in_idx = i;
              break;
            }
            --target;
          }
        }
        JURY_CHECK_LT(in_idx, n);
        out_idx = r;
      }
      const double new_cost = cost - cost_col[out_idx] + cost_col[in_idx];
      if (new_cost > instance.budget) continue;
      const double new_jq = EvaluateJq(
          instance, BuildJury(instance, members, out_idx, in_idx),
          options.bucket);
      const double delta = new_jq - current_jq;
      if (delta >= 0.0 || rng->Uniform() <= std::exp(delta / temperature)) {
        auto it = std::find(members.begin(), members.end(), out_idx);
        *it = in_idx;
        in_jury[out_idx] = false;
        in_jury[in_idx] = true;
        cost = new_cost;
        current_jq = new_jq;
      }
    }
  }
  return Finish(instance, members, current_jq);
}

Result<McJspSolution> SolveMcExhaustive(const McJspInstance& instance,
                                        const McBucketOptions& bucket,
                                        std::size_t max_candidates) {
  JURY_RETURN_NOT_OK(instance.Validate());
  const std::size_t n = instance.candidates.size();
  if (n > max_candidates) {
    return Status::OutOfRange("exhaustive multi-class JSP guarded to N <= " +
                              std::to_string(max_candidates));
  }
  McJspSolution best = Finish(instance, {}, EmptyMcJq(instance.prior));
  // Columnar cost snapshot (see SolveMcAnnealing): the 2^n feasibility
  // sweep reads a flat double column, not McWorker structs.
  std::vector<double> cost_col(n);
  for (std::size_t i = 0; i < n; ++i) {
    cost_col[i] = instance.candidates[i].cost;
  }
  const std::uint64_t total = 1ull << n;
  for (std::uint64_t mask = 1; mask < total; ++mask) {
    std::vector<std::size_t> selected;
    double cost = 0.0;
    bool feasible = true;
    for (std::size_t i = 0; i < n && feasible; ++i) {
      if ((mask >> i) & 1u) {
        selected.push_back(i);
        cost += cost_col[i];
        if (cost > instance.budget) feasible = false;
      }
    }
    if (!feasible) continue;
    const double jq =
        EvaluateJq(instance, BuildJury(instance, selected), bucket);
    if (jq > best.jq) best = Finish(instance, std::move(selected), jq);
  }
  return best;
}

}  // namespace jury::mc
