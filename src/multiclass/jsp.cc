#include "multiclass/jsp.h"

#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

#include "core/annealing.h"
#include "core/exhaustive.h"
#include "core/jsp.h"
#include "core/objective.h"
#include "util/check.h"

namespace jury::mc {
namespace {

/// JQ of the empty jury: the best the prior alone can do.
double EmptyMcJq(const McPrior& prior) {
  double best = 0.0;
  for (double p : prior) best = std::max(best, p);
  return best;
}

/// \brief The §7 argument made literal: "the simulated annealing
/// heuristic regards computing JQ as a black box", so the multi-class
/// problem is solved by the *same* solver drivers as the binary one —
/// this adapter is the black box. It presents `EstimateMcJq` behind the
/// binary `JqObjective` interface: the binary solvers see placeholder
/// `Worker`s whose ids index the real `McWorker`s (and whose costs are
/// the per-solve cost column the feasibility tests read), and every
/// evaluation maps the jury back to confusion-matrix workers. Before
/// this adapter, multiclass/jsp.cc carried a copy-pasted mirror of the
/// SA loop and the exhaustive sweep; now both delegate to core/, so
/// solver improvements (batched polish, Lemma-1 pruning, Gray-code
/// sharding) reach the multi-class workload for free.
///
/// There is no incremental backend (the tuple-key DP has no cheap
/// deconvolution yet — see ROADMAP), so sessions fall back to the
/// full-recompute path: every staged move re-estimates the jury, exactly
/// like the historical mirror did.
class McJqObjectiveAdapter final : public JqObjective {
 public:
  McJqObjectiveAdapter(const McJspInstance& instance,
                       const McBucketOptions& bucket)
      : instance_(instance),
        bucket_(bucket),
        empty_jq_(EmptyMcJq(instance.prior)) {}

  std::string name() const override { return "MC/bucket"; }
  /// Lemma 1 extends to multi-class BV (§7): more workers never hurt.
  bool monotone_in_size() const override { return true; }
  /// The empty jury follows the *vector* prior, not the scalar alpha the
  /// binary interface carries — this override is why the shared solver
  /// drivers call `objective.EmptyJq` instead of `EmptyJuryJq`.
  double EmptyJq(double /*alpha*/) const override { return empty_jq_; }

  double Evaluate(const Jury& candidate_jury, double /*alpha*/) const override {
    CountEvaluation();
    if (candidate_jury.empty()) return empty_jq_;
    McJury mc_jury;
    for (const Worker& worker : candidate_jury.workers()) {
      // Placeholder ids are the decimal candidate indices (see
      // MakeBinaryInstance); juries only ever hold workers from there.
      const std::size_t idx = static_cast<std::size_t>(
          std::stoull(worker.id));
      JURY_CHECK_LT(idx, instance_.candidates.size());
      mc_jury.Add(instance_.candidates[idx]);
    }
    return EstimateMcJq(mc_jury, instance_.prior, bucket_).value();
  }

 private:
  const McJspInstance& instance_;
  const McBucketOptions& bucket_;
  double empty_jq_;
};

/// Binary instance over placeholder workers: id = candidate index, cost =
/// the real cost (the column every affordability test reads), quality = a
/// neutral 0.5 the adapter never consults. Alpha is likewise a neutral
/// placeholder — the adapter overrides everything alpha-dependent.
JspInstance MakeBinaryInstance(const McJspInstance& instance) {
  JspInstance binary;
  binary.budget = instance.budget;
  binary.alpha = 0.5;
  binary.candidates.reserve(instance.candidates.size());
  for (std::size_t i = 0; i < instance.candidates.size(); ++i) {
    binary.candidates.emplace_back(std::to_string(i), 0.5,
                                   instance.candidates[i].cost);
  }
  return binary;
}

McJspSolution FromBinary(const JspSolution& solution) {
  McJspSolution out;
  out.selected = solution.selected;
  out.jq = solution.jq;
  out.cost = solution.cost;
  return out;
}

}  // namespace

Status McJspInstance::Validate() const {
  if (!(budget >= 0.0)) {
    return Status::InvalidArgument("budget must be non-negative");
  }
  std::size_t labels = prior.size();
  if (labels < 2) return Status::InvalidArgument("prior needs >= 2 labels");
  JURY_RETURN_NOT_OK(ValidateMcPrior(prior, labels));
  for (const McWorker& w : candidates) {
    JURY_RETURN_NOT_OK(w.confusion.Validate());
    if (w.confusion.num_labels() != labels) {
      return Status::InvalidArgument("candidate label count != prior size");
    }
    if (!(w.cost >= 0.0)) {
      return Status::InvalidArgument("negative candidate cost");
    }
  }
  return Status::OK();
}

Result<McJspSolution> SolveMcAnnealing(const McJspInstance& instance, Rng* rng,
                                       const McAnnealingOptions& options) {
  JURY_RETURN_NOT_OK(instance.Validate());
  if (rng == nullptr) {
    return Status::InvalidArgument("SolveMcAnnealing requires an Rng");
  }
  // Checked here so the adapter's `.value()` on `EstimateMcJq` (a plain
  // double to the binary solver drivers) can never see the error path.
  if (options.bucket.num_buckets <= 0) {
    return Status::InvalidArgument("bucket.num_buckets must be positive");
  }
  const JspInstance binary = MakeBinaryInstance(instance);
  const McJqObjectiveAdapter objective(instance, options.bucket);
  AnnealingOptions annealing;
  annealing.initial_temperature = options.initial_temperature;
  annealing.epsilon = options.epsilon;
  annealing.cooling_factor = options.cooling_factor;
  JspSolution solution;
  JURY_ASSIGN_OR_RETURN(
      solution, SolveAnnealing(binary, objective, rng, annealing));
  return FromBinary(solution);
}

Result<McJspSolution> SolveMcExhaustive(const McJspInstance& instance,
                                        const McBucketOptions& bucket,
                                        std::size_t max_candidates) {
  JURY_RETURN_NOT_OK(instance.Validate());
  if (bucket.num_buckets <= 0) {
    return Status::InvalidArgument("bucket.num_buckets must be positive");
  }
  const JspInstance binary = MakeBinaryInstance(instance);
  const McJqObjectiveAdapter objective(instance, bucket);
  ExhaustiveOptions exhaustive;
  exhaustive.max_candidates = max_candidates;
  JspSolution solution;
  JURY_ASSIGN_OR_RETURN(solution,
                        SolveExhaustive(binary, objective, exhaustive));
  return FromBinary(solution);
}

}  // namespace jury::mc
