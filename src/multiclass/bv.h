#ifndef JURYOPT_MULTICLASS_BV_H_
#define JURYOPT_MULTICLASS_BV_H_

#include "multiclass/model.h"
#include "util/result.h"

namespace jury::mc {

/// \brief Multi-class Bayesian Voting (Eq. 10):
/// `S*(V) = argmax_t alpha_t * prod_i C_i(t, v_i)`, evaluated in log-space.
/// Ties break towards the smallest label, which specializes to the binary
/// Theorem-1 rule ("ties -> 0") at l = 2.
Result<std::size_t> McBayesianDecide(const McJury& jury, const McVotes& votes,
                                     const McPrior& prior);

/// Log-posterior scores `ln alpha_t + sum_i ln C_i(t, v_i)` for every label
/// (entries clamped away from 0 before the log).
Result<std::vector<double>> McLogPosterior(const McJury& jury,
                                           const McVotes& votes,
                                           const McPrior& prior);

}  // namespace jury::mc

#endif  // JURYOPT_MULTICLASS_BV_H_
