#include "multiclass/multilabel.h"

namespace jury::mc {

Result<MultiLabelPlan> PlanMultiLabelSelection(
    const McJury& candidates, const McPrior& prior, double budget_per_label,
    Rng* rng, const OptjsOptions& options) {
  if (!(budget_per_label >= 0.0)) {
    return Status::InvalidArgument("budget_per_label must be non-negative");
  }
  std::vector<BinaryProjection> projections;
  JURY_ASSIGN_OR_RETURN(projections, DecomposeToBinary(candidates, prior));

  MultiLabelPlan plan;
  plan.selections.reserve(projections.size());
  for (BinaryProjection& projection : projections) {
    JspInstance instance;
    instance.candidates = projection.workers;
    instance.budget = budget_per_label;
    instance.alpha = projection.alpha;
    JspSolution solution;
    JURY_ASSIGN_OR_RETURN(solution, SolveOptjs(instance, rng, options));

    LabelSelection selection;
    selection.label = projection.label;
    selection.selected = solution.selected;  // positions match the pool
    selection.jq = solution.jq;
    selection.cost = solution.cost;
    selection.projection = std::move(projection);
    plan.total_cost += selection.cost;
    plan.mean_jq += selection.jq;
    plan.selections.push_back(std::move(selection));
  }
  if (!plan.selections.empty()) {
    plan.mean_jq /= static_cast<double>(plan.selections.size());
  }
  return plan;
}

}  // namespace jury::mc
