#ifndef JURYOPT_MULTICLASS_DAWID_SKENE_H_
#define JURYOPT_MULTICLASS_DAWID_SKENE_H_

#include <cstddef>
#include <vector>

#include "multiclass/confusion.h"
#include "multiclass/model.h"
#include "util/result.h"

namespace jury::mc {

/// \brief One multi-class answer: worker index and the label voted.
struct McAnswer {
  std::size_t worker = 0;
  std::size_t vote = 0;
};

/// \brief A multi-class labelling dataset: per-task answer lists over a
/// fixed label set. This is the input format of the original Dawid–Skene
/// setting [1] the paper builds its confusion-matrix worker model on.
struct McDataset {
  std::size_t num_workers = 0;
  std::size_t num_labels = 0;
  std::vector<std::vector<McAnswer>> tasks;

  Status Validate() const;
};

/// \brief Options for the multi-class EM.
struct McDawidSkeneOptions {
  int max_iterations = 100;
  /// Convergence threshold on the max absolute confusion-entry change.
  double tolerance = 1e-6;
  /// Additive smoothing on confusion-row counts (keeps rows off the
  /// boundary; Laplace with this pseudo-count per cell).
  double smoothing = 0.1;
  /// Prior over labels used in the E-step; empty = uniform.
  McPrior prior;
};

/// \brief EM output: per-worker confusion matrices, per-task posteriors
/// (row-major `posteriors[task * num_labels + label]`), and diagnostics.
struct McDawidSkeneResult {
  std::vector<ConfusionMatrix> confusion;
  std::vector<double> posteriors;
  int iterations = 0;
  bool converged = false;

  /// Argmax posterior label for `task`.
  std::size_t Decide(std::size_t task, std::size_t num_labels) const;
};

/// \brief Full Dawid–Skene EM [1]: jointly estimates every worker's l x l
/// confusion matrix and every task's label posterior from answers alone —
/// the §8 "Worker Model" bootstrap for the confusion-matrix setting, and
/// the natural companion to `RunDawidSkene` (binary, scalar quality).
///
/// Initialization follows the classic recipe: posteriors start at the
/// per-task empirical vote shares (majority-voting soft labels), which
/// anchors the label identity and avoids the permutation ambiguity.
Result<McDawidSkeneResult> RunMcDawidSkene(
    const McDataset& dataset, const McDawidSkeneOptions& options = {});

}  // namespace jury::mc

#endif  // JURYOPT_MULTICLASS_DAWID_SKENE_H_
