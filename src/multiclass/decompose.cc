#include "multiclass/decompose.h"

namespace jury::mc {

Result<std::vector<BinaryProjection>> DecomposeToBinary(const McJury& jury,
                                                        const McPrior& prior) {
  JURY_RETURN_NOT_OK(jury.Validate());
  if (jury.empty()) {
    return Status::InvalidArgument("DecomposeToBinary needs a non-empty jury");
  }
  const std::size_t labels = jury.num_labels();
  JURY_RETURN_NOT_OK(ValidateMcPrior(prior, labels));

  std::vector<BinaryProjection> out;
  out.reserve(labels);
  for (std::size_t k = 0; k < labels; ++k) {
    BinaryProjection projection;
    projection.label = k;
    projection.alpha = prior[k];
    projection.workers.reserve(jury.size());
    for (const McWorker& w : jury.workers()) {
      // Marginal Pr(v_b = t_b): correct when the truth is k and the worker
      // votes k, or when the truth is j != k and the worker votes anything
      // but k.
      double quality = prior[k] * w.confusion(k, k);
      for (std::size_t j = 0; j < labels; ++j) {
        if (j == k) continue;
        quality += prior[j] * (1.0 - w.confusion(j, k));
      }
      projection.workers.emplace_back(w.id + "#" + std::to_string(k), quality,
                                      w.cost);
    }
    out.push_back(std::move(projection));
  }
  return out;
}

}  // namespace jury::mc
