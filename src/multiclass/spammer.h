#ifndef JURYOPT_MULTICLASS_SPAMMER_H_
#define JURYOPT_MULTICLASS_SPAMMER_H_

#include <cstddef>
#include <vector>

#include "multiclass/model.h"
#include "util/result.h"

namespace jury::mc {

/// \brief Raykar–Yu-style spammer score [34] (§7 "what kind of confusion
/// matrix contributes more"): a worker is a spammer when their vote
/// distribution does not depend on the truth, i.e. all confusion rows are
/// identical. The score is the mean pairwise L1 distance between rows,
/// halved and averaged over the l(l-1)/2 pairs, landing in [0, 1]:
///   * 0   for `UniformSpammer` (and any rank-1 matrix);
///   * 1   for a permutation matrix (e.g. `Identity`);
///   * |2q - 1| for the binary symmetric worker — exactly Raykar–Yu's
///     |sensitivity + specificity - 1|.
Result<double> SpammerScore(const ConfusionMatrix& confusion);

/// Ranks jury members by decreasing informativeness (spammer score);
/// returns indices into the jury.
Result<std::vector<std::size_t>> RankWorkersByInformativeness(
    const McJury& jury);

}  // namespace jury::mc

#endif  // JURYOPT_MULTICLASS_SPAMMER_H_
