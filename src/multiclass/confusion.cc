#include "multiclass/confusion.h"

#include <cmath>

#include "util/check.h"

namespace jury::mc {

ConfusionMatrix::ConfusionMatrix(std::size_t num_labels,
                                 std::vector<double> entries)
    : num_labels_(num_labels), entries_(std::move(entries)) {
  JURY_CHECK_EQ(entries_.size(), num_labels_ * num_labels_);
}

ConfusionMatrix ConfusionMatrix::FromQuality(double q,
                                             std::size_t num_labels) {
  JURY_CHECK_GE(num_labels, 2u);
  JURY_CHECK(q >= 0.0 && q <= 1.0);
  std::vector<double> entries(num_labels * num_labels,
                              (1.0 - q) / static_cast<double>(num_labels - 1));
  for (std::size_t j = 0; j < num_labels; ++j) {
    entries[j * num_labels + j] = q;
  }
  return ConfusionMatrix(num_labels, std::move(entries));
}

ConfusionMatrix ConfusionMatrix::Identity(std::size_t num_labels) {
  return FromQuality(1.0, num_labels);
}

ConfusionMatrix ConfusionMatrix::UniformSpammer(std::size_t num_labels) {
  JURY_CHECK_GE(num_labels, 2u);
  std::vector<double> entries(num_labels * num_labels,
                              1.0 / static_cast<double>(num_labels));
  return ConfusionMatrix(num_labels, std::move(entries));
}

double ConfusionMatrix::operator()(std::size_t true_label,
                                   std::size_t vote) const {
  JURY_CHECK_LT(true_label, num_labels_);
  JURY_CHECK_LT(vote, num_labels_);
  return entries_[true_label * num_labels_ + vote];
}

double& ConfusionMatrix::at(std::size_t true_label, std::size_t vote) {
  JURY_CHECK_LT(true_label, num_labels_);
  JURY_CHECK_LT(vote, num_labels_);
  return entries_[true_label * num_labels_ + vote];
}

Status ConfusionMatrix::Validate() const {
  if (num_labels_ < 2) {
    return Status::InvalidArgument("confusion matrix needs >= 2 labels");
  }
  constexpr double kTol = 1e-9;
  for (std::size_t j = 0; j < num_labels_; ++j) {
    double row_sum = 0.0;
    for (std::size_t k = 0; k < num_labels_; ++k) {
      const double e = entries_[j * num_labels_ + k];
      if (!(e >= 0.0 && e <= 1.0)) {
        return Status::InvalidArgument("confusion entry outside [0,1]");
      }
      row_sum += e;
    }
    if (std::fabs(row_sum - 1.0) > kTol) {
      return Status::InvalidArgument("confusion row does not sum to 1");
    }
  }
  return Status::OK();
}

std::vector<double> ConfusionMatrix::Row(std::size_t true_label) const {
  JURY_CHECK_LT(true_label, num_labels_);
  std::vector<double> row(num_labels_);
  for (std::size_t k = 0; k < num_labels_; ++k) {
    row[k] = entries_[true_label * num_labels_ + k];
  }
  return row;
}

}  // namespace jury::mc
