#ifndef JURYOPT_MULTICLASS_JQ_EXACT_H_
#define JURYOPT_MULTICLASS_JQ_EXACT_H_

#include "multiclass/model.h"
#include "util/result.h"

namespace jury::mc {

/// Cap on l^n vote combinations enumerated by `ExactMcJq`.
inline constexpr std::size_t kMaxExactMcEnumeration = 1u << 22;

/// \brief Exact multi-class jury quality (Eq. 9) by enumerating all l^n
/// votings:
///   JQ = sum_{t} alpha_t * sum_V Pr(V | t) * 1{BV(V) = t}.
/// Guarded by `kMaxExactMcEnumeration`; ground truth for the bucketed
/// approximation's tests.
Result<double> ExactMcJq(const McJury& jury, const McPrior& prior);

}  // namespace jury::mc

#endif  // JURYOPT_MULTICLASS_JQ_EXACT_H_
