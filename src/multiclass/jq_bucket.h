#ifndef JURYOPT_MULTICLASS_JQ_BUCKET_H_
#define JURYOPT_MULTICLASS_JQ_BUCKET_H_

#include "multiclass/model.h"
#include "util/result.h"

namespace jury::mc {

/// \brief Tuning for the §7 tuple-key JQ approximation.
struct McBucketOptions {
  /// Buckets covering [0, max |log-ratio increment|]; the multi-class
  /// analogue of Algorithm 1's numBuckets.
  int num_buckets = 64;
};

/// \brief Instrumentation filled in by `EstimateMcJq`.
struct McBucketStats {
  double delta = 0.0;
  /// Largest key-map size seen across all per-class passes.
  std::size_t max_keys = 0;
};

/// \brief Approximate multi-class JQ(J, BV, prior), the §7 extension of
/// Algorithm 1.
///
/// For each candidate truth t', one pass computes
/// `H(t') = sum_{V : BV(V)=t'} Pr(V | t=t')` using a map whose key is the
/// (l-1)-tuple of bucketed log-posterior ratios
/// `ln( alpha_{t'} Pr(V|t') / (alpha_j Pr(V|j)) )` for j != t'.
/// `BV(V) = t'` iff every ratio against a smaller label is > 0 and every
/// ratio against a larger label is >= 0 (the argmax tie-break towards the
/// smallest label). Each worker's vote adds a per-(vote, j) bucketed
/// increment, so keys stay bounded. Finally JQ = sum_t' alpha_{t'} H(t').
Result<double> EstimateMcJq(const McJury& jury, const McPrior& prior,
                            const McBucketOptions& options = {},
                            McBucketStats* stats = nullptr);

}  // namespace jury::mc

#endif  // JURYOPT_MULTICLASS_JQ_BUCKET_H_
