#ifndef JURYOPT_MULTICLASS_MODEL_H_
#define JURYOPT_MULTICLASS_MODEL_H_

#include <string>
#include <vector>

#include "multiclass/confusion.h"
#include "util/status.h"

namespace jury::mc {

/// \brief A multiple-choice vote vector: one label in {0, ..., l-1} per
/// juror.
using McVotes = std::vector<std::size_t>;

/// \brief Task-provider prior over l labels (§7):
/// `prior[j] = Pr(t = j)`, summing to 1.
using McPrior = std::vector<double>;

/// Validates a prior over `num_labels` labels.
Status ValidateMcPrior(const McPrior& prior, std::size_t num_labels);

/// The uniform (uninformative) prior over `num_labels` labels.
McPrior UniformMcPrior(std::size_t num_labels);

/// \brief A worker under the confusion-matrix model [18]: the §2.1 scalar
/// quality generalizes to a full l x l matrix plus a cost.
struct McWorker {
  std::string id;
  ConfusionMatrix confusion;
  double cost = 0.0;

  McWorker() = default;
  McWorker(std::string id_in, ConfusionMatrix confusion_in, double cost_in)
      : id(std::move(id_in)),
        confusion(std::move(confusion_in)),
        cost(cost_in) {}
};

/// \brief A multi-class jury. All members must share one label count.
class McJury {
 public:
  McJury() = default;
  explicit McJury(std::vector<McWorker> workers)
      : workers_(std::move(workers)) {}

  std::size_t size() const { return workers_.size(); }
  bool empty() const { return workers_.empty(); }
  const std::vector<McWorker>& workers() const { return workers_; }
  const McWorker& worker(std::size_t i) const;
  void Add(McWorker worker) { workers_.push_back(std::move(worker)); }

  double TotalCost() const;
  /// Label count shared by all members (jury must be non-empty).
  std::size_t num_labels() const;

  /// Checks non-emptiness is NOT required; validates each matrix and the
  /// label-count agreement.
  Status Validate() const;

 private:
  std::vector<McWorker> workers_;
};

}  // namespace jury::mc

#endif  // JURYOPT_MULTICLASS_MODEL_H_
