#ifndef JURYOPT_MULTICLASS_MULTILABEL_H_
#define JURYOPT_MULTICLASS_MULTILABEL_H_

#include <vector>

#include "core/optjs.h"
#include "multiclass/decompose.h"
#include "multiclass/model.h"
#include "util/result.h"
#include "util/rng.h"

namespace jury::mc {

/// \brief Selection plan for one label's binary sub-task.
struct LabelSelection {
  std::size_t label = 0;
  /// The binary projection this plan was solved against.
  BinaryProjection projection;
  /// Indices into the ORIGINAL multi-class candidate pool.
  std::vector<std::size_t> selected;
  double jq = 0.0;
  double cost = 0.0;
};

/// \brief A full multi-label plan: one jury per label plus totals.
struct MultiLabelPlan {
  std::vector<LabelSelection> selections;
  double total_cost = 0.0;
  /// Mean predicted binary JQ across labels (a coarse plan-quality score).
  double mean_jq = 0.0;
};

/// \brief Plans jury selection for a task that may carry multiple true
/// labels, via the §7-footnote decomposition [30]: the l-label task becomes
/// l binary decision tasks ("is label k present?"), each solved as an
/// independent binary JSP under `budget_per_label` using the workers'
/// marginal binary projections (`DecomposeToBinary`).
///
/// The same physical worker may serve several labels; `total_cost` counts
/// each engagement separately (one vote bought per label asked), matching
/// the publish-l-tasks protocol the paper describes.
Result<MultiLabelPlan> PlanMultiLabelSelection(
    const McJury& candidates, const McPrior& prior, double budget_per_label,
    Rng* rng, const OptjsOptions& options = {});

}  // namespace jury::mc

#endif  // JURYOPT_MULTICLASS_MULTILABEL_H_
