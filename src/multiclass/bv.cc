#include "multiclass/bv.h"

#include <cmath>

#include "model/worker.h"

namespace jury::mc {

Result<std::vector<double>> McLogPosterior(const McJury& jury,
                                           const McVotes& votes,
                                           const McPrior& prior) {
  JURY_RETURN_NOT_OK(jury.Validate());
  if (jury.empty()) {
    return Status::InvalidArgument("McLogPosterior requires a non-empty jury");
  }
  const std::size_t labels = jury.num_labels();
  JURY_RETURN_NOT_OK(ValidateMcPrior(prior, labels));
  if (votes.size() != jury.size()) {
    return Status::InvalidArgument("votes/jury size mismatch");
  }
  for (std::size_t v : votes) {
    if (v >= labels) return Status::InvalidArgument("vote label out of range");
  }

  std::vector<double> scores(labels, 0.0);
  for (std::size_t t = 0; t < labels; ++t) {
    scores[t] = std::log(jury::EffectiveQuality(prior[t]));
    for (std::size_t i = 0; i < jury.size(); ++i) {
      scores[t] +=
          std::log(jury::EffectiveQuality(jury.worker(i).confusion(t, votes[i])));
    }
  }
  return scores;
}

Result<std::size_t> McBayesianDecide(const McJury& jury, const McVotes& votes,
                                     const McPrior& prior) {
  JURY_ASSIGN_OR_RETURN(std::vector<double> scores,
                        McLogPosterior(jury, votes, prior));
  std::size_t best = 0;
  for (std::size_t t = 1; t < scores.size(); ++t) {
    if (scores[t] > scores[best]) best = t;  // ties keep the smaller label
  }
  return best;
}

}  // namespace jury::mc
