#ifndef JURYOPT_MULTICLASS_DECOMPOSE_H_
#define JURYOPT_MULTICLASS_DECOMPOSE_H_

#include <vector>

#include "model/worker.h"
#include "multiclass/model.h"
#include "util/result.h"

namespace jury::mc {

/// \brief One binary sub-task produced by the CrowdScreen-style [30]
/// decomposition (§7 footnote): "is the answer label k?" The binary frame
/// encodes "yes, it is k" as 0, so the binary prior alpha = Pr(t = k).
struct BinaryProjection {
  std::size_t label = 0;
  /// Binary prior Pr(t_b = 0) = Pr(t = label).
  double alpha = 0.5;
  /// One binary worker per jury member; quality is the marginal probability
  /// of voting "k iff the truth is k" under the multi-class prior (the
  /// scalar worker model cannot express per-truth asymmetry, so this is the
  /// standard marginal projection — documented approximation).
  std::vector<Worker> workers;
};

/// Decomposes an l-label task over `jury` into l binary decision tasks.
Result<std::vector<BinaryProjection>> DecomposeToBinary(const McJury& jury,
                                                        const McPrior& prior);

}  // namespace jury::mc

#endif  // JURYOPT_MULTICLASS_DECOMPOSE_H_
