#ifndef JURYOPT_MULTICLASS_CONFUSION_H_
#define JURYOPT_MULTICLASS_CONFUSION_H_

#include <cstddef>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace jury::mc {

/// \brief An l x l confusion matrix (§7): `C(j, k)` is the probability that
/// the worker votes `k` when the true answer is `j`. Rows are probability
/// distributions.
class ConfusionMatrix {
 public:
  ConfusionMatrix() = default;
  /// Builds from row-major entries; `Validate` checks row-stochasticity.
  ConfusionMatrix(std::size_t num_labels, std::vector<double> entries);

  /// The single-quality worker model embedded in l labels: probability `q`
  /// on the diagonal, `(1-q)/(l-1)` elsewhere. With l = 2 this is exactly
  /// the §2.1 binary worker.
  static ConfusionMatrix FromQuality(double q, std::size_t num_labels);
  /// The perfect worker (identity).
  static ConfusionMatrix Identity(std::size_t num_labels);
  /// A spammer: every row is uniform — the vote carries no information.
  static ConfusionMatrix UniformSpammer(std::size_t num_labels);

  std::size_t num_labels() const { return num_labels_; }
  double operator()(std::size_t true_label, std::size_t vote) const;
  double& at(std::size_t true_label, std::size_t vote);

  /// Checks shape, entry ranges, and row sums (tolerance 1e-9).
  Status Validate() const;

  /// Row `true_label` as a vector (the vote distribution given that truth).
  std::vector<double> Row(std::size_t true_label) const;

  bool operator==(const ConfusionMatrix& other) const = default;

 private:
  std::size_t num_labels_ = 0;
  std::vector<double> entries_;  // row-major
};

}  // namespace jury::mc

#endif  // JURYOPT_MULTICLASS_CONFUSION_H_
