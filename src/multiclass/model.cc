#include "multiclass/model.h"

#include <cmath>

#include "util/check.h"

namespace jury::mc {

Status ValidateMcPrior(const McPrior& prior, std::size_t num_labels) {
  if (prior.size() != num_labels) {
    return Status::InvalidArgument("prior size != num_labels");
  }
  double sum = 0.0;
  for (double p : prior) {
    if (!(p >= 0.0 && p <= 1.0)) {
      return Status::InvalidArgument("prior entry outside [0,1]");
    }
    sum += p;
  }
  if (std::fabs(sum - 1.0) > 1e-9) {
    return Status::InvalidArgument("prior does not sum to 1");
  }
  return Status::OK();
}

McPrior UniformMcPrior(std::size_t num_labels) {
  JURY_CHECK_GE(num_labels, 2u);
  return McPrior(num_labels, 1.0 / static_cast<double>(num_labels));
}

const McWorker& McJury::worker(std::size_t i) const {
  JURY_CHECK_LT(i, workers_.size());
  return workers_[i];
}

double McJury::TotalCost() const {
  double acc = 0.0;
  for (const McWorker& w : workers_) acc += w.cost;
  return acc;
}

std::size_t McJury::num_labels() const {
  JURY_CHECK(!workers_.empty());
  return workers_.front().confusion.num_labels();
}

Status McJury::Validate() const {
  std::size_t labels = 0;
  for (const McWorker& w : workers_) {
    JURY_RETURN_NOT_OK(w.confusion.Validate());
    if (!(w.cost >= 0.0)) {
      return Status::InvalidArgument("worker '" + w.id + "' negative cost");
    }
    if (labels == 0) {
      labels = w.confusion.num_labels();
    } else if (labels != w.confusion.num_labels()) {
      return Status::InvalidArgument("jury mixes label counts");
    }
  }
  return Status::OK();
}

}  // namespace jury::mc
