#include "multiclass/spammer.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace jury::mc {

Result<double> SpammerScore(const ConfusionMatrix& confusion) {
  JURY_RETURN_NOT_OK(confusion.Validate());
  const std::size_t l = confusion.num_labels();
  double acc = 0.0;
  std::size_t pairs = 0;
  for (std::size_t a = 0; a < l; ++a) {
    for (std::size_t b = a + 1; b < l; ++b) {
      double l1 = 0.0;
      for (std::size_t v = 0; v < l; ++v) {
        l1 += std::fabs(confusion(a, v) - confusion(b, v));
      }
      acc += l1 / 2.0;  // total-variation distance between the two rows
      ++pairs;
    }
  }
  return acc / static_cast<double>(pairs);
}

Result<std::vector<std::size_t>> RankWorkersByInformativeness(
    const McJury& jury) {
  JURY_RETURN_NOT_OK(jury.Validate());
  std::vector<double> scores(jury.size());
  for (std::size_t i = 0; i < jury.size(); ++i) {
    JURY_ASSIGN_OR_RETURN(scores[i], SpammerScore(jury.worker(i).confusion));
  }
  std::vector<std::size_t> order(jury.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return scores[a] > scores[b];
                   });
  return order;
}

}  // namespace jury::mc
