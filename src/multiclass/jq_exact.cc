#include "multiclass/jq_exact.h"

#include "multiclass/bv.h"

namespace jury::mc {

Result<double> ExactMcJq(const McJury& jury, const McPrior& prior) {
  JURY_RETURN_NOT_OK(jury.Validate());
  if (jury.empty()) {
    return Status::InvalidArgument("ExactMcJq requires a non-empty jury");
  }
  const std::size_t labels = jury.num_labels();
  JURY_RETURN_NOT_OK(ValidateMcPrior(prior, labels));
  const std::size_t n = jury.size();

  // Guard l^n.
  double combos = 1.0;
  for (std::size_t i = 0; i < n; ++i) {
    combos *= static_cast<double>(labels);
    if (combos > static_cast<double>(kMaxExactMcEnumeration)) {
      return Status::OutOfRange("ExactMcJq enumeration too large");
    }
  }

  McVotes votes(n, 0);
  double jq = 0.0;
  for (;;) {
    JURY_ASSIGN_OR_RETURN(std::size_t decided,
                          McBayesianDecide(jury, votes, prior));
    // Pr(V | t = decided) weighted by the prior of the decided label is the
    // only term this voting contributes (1{BV(V)=t} kills the others).
    double p = prior[decided];
    for (std::size_t i = 0; i < n; ++i) {
      p *= jury.worker(i).confusion(decided, votes[i]);
    }
    jq += p;

    // Odometer increment over {0,...,l-1}^n.
    std::size_t pos = 0;
    while (pos < n) {
      if (++votes[pos] < labels) break;
      votes[pos] = 0;
      ++pos;
    }
    if (pos == n) break;
  }
  return jq;
}

}  // namespace jury::mc
