#include "jq/bucket.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <vector>

#include "jq/prior_transform.h"
#include "model/prior.h"
#include "model/worker.h"
#include "util/check.h"
#include "util/math.h"
#include "util/status.h"
#include "util/simd_dispatch.h"
#include "util/simd_kernels_inl.h"

namespace jury {

Status BucketJqOptions::Validate() const {
  if (num_buckets < 1) {
    return Status::InvalidArgument("bucket.num_buckets must be >= 1");
  }
  if (num_buckets > kMaxBuckets) {
    // The deconvolution tables are sized by the bucket count, so a
    // request-supplied count must not become an unbounded allocation.
    return Status::InvalidArgument("bucket.num_buckets must be <= 1000000");
  }
  if (!(high_quality_cutoff > 0.0) || !(high_quality_cutoff <= 1.0)) {
    return Status::InvalidArgument(
        "bucket.high_quality_cutoff must lie in (0, 1]");
  }
  return Status::OK();
}

namespace {

/// Sorted (bucket, quality) pair; workers are processed in decreasing bucket
/// order so the Algorithm-2 suffix bound settles keys as early as possible.
struct BucketedWorker {
  std::int64_t bucket = 0;
  double quality = 0.5;
};

/// Threshold above which the dense backend would allocate an unreasonable
/// array; we fall back to the sparse backend instead.
constexpr std::int64_t kDenseKeySpanLimit = 1 << 24;

/// Accumulates the final sweep (steps 21-25 of Algorithm 1): probability at
/// positive keys counts fully, probability at key zero counts half (the
/// symmetric tie case of Fig. 3).
class JqAccumulator {
 public:
  void AddSettledPositive(double prob) { jq_ += prob; }
  void AddFinal(std::int64_t key, double prob) {
    if (key > 0) {
      jq_ += prob;
    } else if (key == 0) {
      jq_ += 0.5 * prob;
    }
  }
  double value() const { return jq_; }

 private:
  double jq_ = 0.0;
};

/// One Algorithm-1 pass over the dense (flat array) key representation.
double RunDense(const std::vector<BucketedWorker>& ws,
                const std::vector<std::int64_t>& aggregate, bool pruning,
                BucketJqStats* stats) {
  std::int64_t span = 0;
  for (const auto& w : ws) span += w.bucket;
  const std::size_t size = static_cast<std::size_t>(2 * span + 1);
  const std::int64_t offset = span;

  std::vector<double> cur(size, 0.0);
  std::vector<double> nxt(size, 0.0);
  cur[static_cast<std::size_t>(offset)] = 1.0;

  JqAccumulator acc;
  for (std::size_t i = 0; i < ws.size(); ++i) {
    std::fill(nxt.begin(), nxt.end(), 0.0);
    const std::int64_t b = ws[i].bucket;
    const double q = ws[i].quality;
    const std::int64_t remaining = aggregate[i];
    for (std::size_t idx = 0; idx < size; ++idx) {
      const double prob = cur[idx];
      if (prob <= 0.0) continue;
      const std::int64_t key = static_cast<std::int64_t>(idx) - offset;
      if (stats != nullptr) ++stats->keys_expanded;
      if (pruning) {
        // Algorithm 2: the sign of the key can no longer change.
        if (key > 0 && key - remaining > 0) {
          acc.AddSettledPositive(prob);
          if (stats != nullptr) ++stats->keys_pruned;
          continue;
        }
        if (key < 0 && key + remaining < 0) {
          if (stats != nullptr) ++stats->keys_pruned;
          continue;
        }
      }
      nxt[static_cast<std::size_t>(key + b + offset)] += prob * q;  // v_i = 0
      nxt[static_cast<std::size_t>(key - b + offset)] +=
          prob * (1.0 - q);  // v_i = 1
    }
    cur.swap(nxt);
  }
  for (std::size_t idx = 0; idx < size; ++idx) {
    if (cur[idx] > 0.0) {
      acc.AddFinal(static_cast<std::int64_t>(idx) - offset, cur[idx]);
    }
  }
  return acc.value();
}

/// One Algorithm-1 pass over the sparse (hash map) key representation.
double RunSparse(const std::vector<BucketedWorker>& ws,
                 const std::vector<std::int64_t>& aggregate, bool pruning,
                 BucketJqStats* stats) {
  std::unordered_map<std::int64_t, double> cur;
  std::unordered_map<std::int64_t, double> nxt;
  cur.emplace(0, 1.0);

  JqAccumulator acc;
  for (std::size_t i = 0; i < ws.size(); ++i) {
    nxt.clear();
    nxt.reserve(cur.size() * 2);
    const std::int64_t b = ws[i].bucket;
    const double q = ws[i].quality;
    const std::int64_t remaining = aggregate[i];
    for (const auto& [key, prob] : cur) {
      if (stats != nullptr) ++stats->keys_expanded;
      if (pruning) {
        if (key > 0 && key - remaining > 0) {
          acc.AddSettledPositive(prob);
          if (stats != nullptr) ++stats->keys_pruned;
          continue;
        }
        if (key < 0 && key + remaining < 0) {
          if (stats != nullptr) ++stats->keys_pruned;
          continue;
        }
      }
      nxt[key + b] += prob * q;          // v_i = 0
      nxt[key - b] += prob * (1.0 - q);  // v_i = 1
    }
    cur.swap(nxt);
  }
  for (const auto& [key, prob] : cur) acc.AddFinal(key, prob);
  return acc.value();
}

}  // namespace

void BucketKeyDistribution::Reset() {
  pmf_.assign(1, 1.0);
  span_ = 0;
}

void BucketKeyDistribution::Convolve(std::int64_t b, double q) {
  JURY_CHECK_GE(b, 0);
  if (b == 0) return;  // +0 and -0 coincide: exact identity
  const std::int64_t new_span = span_ + b;
  // `assign` reuses the scratch buffer's capacity: per-move convolutions
  // stop allocating once the session has seen its largest span.
  scratch_.assign(static_cast<std::size_t>(2 * new_span + 1), 0.0);
  for (std::int64_t key = -span_; key <= span_; ++key) {
    const double prob = pmf_[static_cast<std::size_t>(key + span_)];
    if (prob == 0.0) continue;
    scratch_[static_cast<std::size_t>(key + b + new_span)] += prob * q;
    scratch_[static_cast<std::size_t>(key - b + new_span)] +=
        prob * (1.0 - q);
  }
  pmf_.swap(scratch_);
  span_ = new_span;
}

void BucketKeyDistribution::Deconvolve(std::int64_t b, double q) {
  JURY_CHECK_GE(b, 0);
  if (b == 0) return;
  JURY_CHECK_GE(span_, b);
  JURY_CHECK(q >= 0.5 && q <= 1.0)
      << "Deconvolve requires a normalized quality, got " << q;
  const std::int64_t ns = span_ - b;
  // Every entry is written exactly once (descending j only reads entries
  // written earlier in the pass), so a resize without zeroing suffices.
  scratch_.resize(static_cast<std::size_t>(2 * ns + 1));
  for (std::int64_t j = ns; j >= -ns; --j) {
    const double above =
        (j + 2 * b <= ns) ? scratch_[static_cast<std::size_t>(j + 2 * b + ns)]
                          : 0.0;
    scratch_[static_cast<std::size_t>(j + ns)] =
        (pmf_[static_cast<std::size_t>(j + b + span_)] - (1.0 - q) * above) /
        q;
  }
  pmf_.swap(scratch_);
  span_ = ns;
}

double BucketKeyDistribution::PositiveMass() const {
  // Canonical interleaved accumulation (simd_kernels_inl.h): 0.5 * g[0]
  // plus four interleaved partial sums over the positive keys. One fixed
  // order shared by every mass consumer — the fused batch kernels at
  // every dispatch level sum in exactly this order, which is what lets
  // the AVX2 variant run one IEEE chain per vector lane and still be
  // bit-identical to this function.
  return simd::internal::CommittedMass(pmf_.data(), span_);
}

void BucketKeyDistribution::ConvolvePositiveMassBatch(const std::int64_t* bs,
                                                      const double* qs,
                                                      std::size_t count,
                                                      double* out) const {
  // Keys outside [-span_, span_] read as zero, which the kernel's
  // segmented/masked loops encode branch-free. For new key s the convolved
  // entry is g[s] = f[s-b]*q + f[s+b]*(1-q), built in exactly that order
  // by Convolve's ascending scatter, and PositiveMass accumulates 0.5*g[0]
  // then g[1..new_span] ascending — the dispatched `convolve_mass` kernel
  // (scalar reference or AVX2; see simd_dispatch.h) replicates this term
  // for term, so the fused result is bit-identical to the scalar
  // copy-convolve-sweep at every level.
  for (std::size_t j = 0; j < count; ++j) {
    JURY_CHECK_GE(bs[j], 0);
  }
  simd::Kernels().convolve_mass(pmf_.data(), span_, bs, qs, count, out);
}

double BucketKeyDistribution::DeconvolvePositiveMass(std::int64_t b,
                                                     double q) const {
  double out = 0.0;
  DeconvolvePositiveMassBatch(&b, &q, 1, &out);
  return out;
}

void BucketKeyDistribution::DeconvolvePositiveMassBatch(const std::int64_t* bs,
                                                        const double* qs,
                                                        std::size_t count,
                                                        double* out) const {
  // Fused {copy; Deconvolve(b, q); PositiveMass()} per candidate: the same
  // backward recurrence over one reused row (no full-distribution copy),
  // then the same canonical mass sweep — bit-identical to the scalar pair
  // at every dispatch level (scalar reference, AVX2, AVX-512; see the
  // `deconvolve_mass` contract in util/simd_dispatch.h).
  for (std::size_t j = 0; j < count; ++j) {
    JURY_CHECK_GE(bs[j], 0);
    JURY_CHECK_GE(span_, bs[j]);
    if (bs[j] > 0) {
      JURY_CHECK(qs[j] >= 0.5 && qs[j] <= 1.0)
          << "DeconvolvePositiveMass requires a normalized quality, got "
          << qs[j];
    }
  }
  simd::Kernels().deconvolve_mass(pmf_.data(), span_, bs, qs, count, out);
}

double BucketErrorBound(int n, double delta) {
  JURY_CHECK_GE(n, 0);
  JURY_CHECK_GE(delta, 0.0);
  return std::exp(static_cast<double>(n) * delta / 4.0) - 1.0;
}

int RequiredBucketMultiplier(double upper, double max_error) {
  JURY_CHECK_GT(max_error, 0.0);
  JURY_CHECK_GT(upper, 0.0);
  // With numBuckets = d*n: delta = upper/(d*n), so the bound is
  // e^{upper/(4d)} - 1 < max_error  <=>  d > upper / (4 ln(1+max_error)).
  const double d = upper / (4.0 * std::log1p(max_error));
  return std::max(1, static_cast<int>(std::ceil(d)));
}

Result<double> EstimateJq(const Jury& jury, double alpha,
                          const BucketJqOptions& options,
                          BucketJqStats* stats) {
  JURY_RETURN_NOT_OK(jury.Validate());
  JURY_RETURN_NOT_OK(ValidateAlpha(alpha));
  if (jury.empty()) {
    return Status::InvalidArgument("EstimateJq requires a non-empty jury");
  }
  if (options.num_buckets <= 0) {
    return Status::InvalidArgument("num_buckets must be positive");
  }
  if (stats != nullptr) *stats = BucketJqStats{};

  // Theorem 3: the prior is one more juror; §3.3: flip low-quality jurors.
  const Jury with_prior = ApplyPrior(jury, alpha);
  const Jury normalized = Normalize(with_prior).jury;
  const std::vector<double> qs = normalized.qualities();
  const int n = static_cast<int>(qs.size());

  // §4.4 escape hatch: a near-perfect juror alone pins JQ into (cutoff, 1].
  if (options.high_quality_cutoff < 1.0) {
    double best = 0.0;
    bool fired = false;
    for (double q : qs) {
      if (q > options.high_quality_cutoff) {
        fired = true;
        best = std::max(best, q);
      }
    }
    if (fired) {
      if (stats != nullptr) {
        stats->high_quality_shortcut = true;
        stats->error_bound = 1.0 - best;
      }
      return best;
    }
  }

  // Bucket assignment (GetBucketArray): nearest bucket of phi(q_i) on the
  // grid of `num_buckets` intervals covering [0, upper].
  std::vector<double> phis(qs.size());
  double upper = 0.0;
  for (std::size_t i = 0; i < qs.size(); ++i) {
    phis[i] = LogOdds(EffectiveQuality(qs[i]));
    upper = std::max(upper, phis[i]);
  }
  if (upper <= 0.0) {
    // Every juror (and the prior) has quality exactly 0.5: R(V) = 0 for all
    // votings, so JQ = 0.5 exactly.
    return 0.5;
  }
  const double delta = upper / static_cast<double>(options.num_buckets);

  std::vector<BucketedWorker> ws(qs.size());
  for (std::size_t i = 0; i < qs.size(); ++i) {
    ws[i].bucket =
        static_cast<std::int64_t>(std::ceil(phis[i] / delta - 0.5));
    ws[i].quality = qs[i];
  }
  // Sort in decreasing bucket order (steps 2-3 of Algorithm 1) so pruning
  // sees the big contributors first.
  std::sort(ws.begin(), ws.end(), [](const auto& a, const auto& b) {
    return a.bucket > b.bucket;
  });

  // AggregateBucket: aggregate[i] = b[i] + b[i+1] + ... + b[n-1].
  std::vector<std::int64_t> aggregate(ws.size(), 0);
  std::int64_t suffix = 0;
  for (std::size_t i = ws.size(); i > 0; --i) {
    suffix += ws[i - 1].bucket;
    aggregate[i - 1] = suffix;
  }
  const std::int64_t span = suffix;

  if (stats != nullptr) {
    stats->delta = delta;
    stats->error_bound = BucketErrorBound(n, delta);
  }

  BucketBackend backend = options.backend;
  if (backend == BucketBackend::kDense && 2 * span + 1 > kDenseKeySpanLimit) {
    backend = BucketBackend::kSparse;  // avoid an oversized flat array
  }
  const double jq_hat =
      backend == BucketBackend::kDense
          ? RunDense(ws, aggregate, options.enable_pruning, stats)
          : RunSparse(ws, aggregate, options.enable_pruning, stats);
  // Guard against floating-point drift just above 1.
  return std::min(jq_hat, 1.0);
}

}  // namespace jury
