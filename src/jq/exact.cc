#include "jq/exact.h"

#include <cstdint>

#include "model/prior.h"
#include "strategy/bayesian.h"

namespace jury {

Result<double> ExactJq(const Jury& jury, const VotingStrategy& strategy,
                       double alpha) {
  JURY_RETURN_NOT_OK(jury.Validate());
  JURY_RETURN_NOT_OK(ValidateAlpha(alpha));
  if (jury.empty()) {
    return Status::InvalidArgument("ExactJq requires a non-empty jury");
  }
  if (jury.size() > kMaxExactJurySize) {
    return Status::OutOfRange("ExactJq enumeration guarded to n <= " +
                              std::to_string(kMaxExactJurySize));
  }
  const int n = static_cast<int>(jury.size());
  const std::vector<double> qs = jury.qualities();

  double jq = 0.0;
  const std::uint64_t total = 1ull << n;
  for (std::uint64_t mask = 0; mask < total; ++mask) {
    const Votes votes = VotesFromMask(mask, n);
    // Pr(V | t=0) and Pr(V | t=1) under independent votes (§3.2).
    double p_given_0 = 1.0;
    double p_given_1 = 1.0;
    for (int i = 0; i < n; ++i) {
      const double q = qs[static_cast<std::size_t>(i)];
      if (votes[static_cast<std::size_t>(i)] == 0) {
        p_given_0 *= q;
        p_given_1 *= (1.0 - q);
      } else {
        p_given_0 *= (1.0 - q);
        p_given_1 *= q;
      }
    }
    const double h = strategy.ProbZero(jury, votes, alpha);  // E[1_{S(V)=0}]
    jq += alpha * p_given_0 * h + (1.0 - alpha) * p_given_1 * (1.0 - h);
  }
  return jq;
}

Result<double> ExactJqBv(const Jury& jury, double alpha) {
  const BayesianVoting bv;
  return ExactJq(jury, bv, alpha);
}

}  // namespace jury
