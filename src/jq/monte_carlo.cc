#include "jq/monte_carlo.h"

#include "model/prior.h"

namespace jury {

Result<double> MonteCarloJq(const Jury& jury, const VotingStrategy& strategy,
                            double alpha, std::int64_t num_samples, Rng* rng) {
  JURY_RETURN_NOT_OK(jury.Validate());
  JURY_RETURN_NOT_OK(ValidateAlpha(alpha));
  if (jury.empty()) {
    return Status::InvalidArgument("MonteCarloJq requires a non-empty jury");
  }
  if (num_samples <= 0) {
    return Status::InvalidArgument("num_samples must be positive");
  }
  if (rng == nullptr) {
    return Status::InvalidArgument("MonteCarloJq requires an Rng");
  }

  const std::vector<double> qs = jury.qualities();
  Votes votes(jury.size());
  double acc = 0.0;
  for (std::int64_t s = 0; s < num_samples; ++s) {
    const int t = rng->Bernoulli(alpha) ? 0 : 1;
    for (std::size_t i = 0; i < qs.size(); ++i) {
      const bool correct = rng->Bernoulli(qs[i]);
      votes[i] = static_cast<std::uint8_t>(correct ? t : 1 - t);
    }
    const double p0 = strategy.ProbZero(jury, votes, alpha);
    acc += (t == 0) ? p0 : (1.0 - p0);
  }
  return acc / static_cast<double>(num_samples);
}

}  // namespace jury
