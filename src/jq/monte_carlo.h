#ifndef JURYOPT_JQ_MONTE_CARLO_H_
#define JURYOPT_JQ_MONTE_CARLO_H_

#include <cstdint>

#include "model/jury.h"
#include "strategy/voting_strategy.h"
#include "util/result.h"
#include "util/rng.h"

namespace jury {

/// \brief Monte-Carlo JQ estimator for arbitrary strategies and jury sizes.
///
/// Samples the latent truth `t ~ (alpha, 1-alpha)` and a voting `V` from the
/// worker model, then adds the *conditional* correctness probability
/// `Pr[S(V) = t | V]` (Rao–Blackwellized over the strategy's internal
/// randomness), which keeps the variance below naive decision sampling.
/// Used to cross-check the bucket approximation at sizes where exact
/// enumeration is infeasible.
Result<double> MonteCarloJq(const Jury& jury, const VotingStrategy& strategy,
                            double alpha, std::int64_t num_samples, Rng* rng);

}  // namespace jury

#endif  // JURYOPT_JQ_MONTE_CARLO_H_
