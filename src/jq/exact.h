#ifndef JURYOPT_JQ_EXACT_H_
#define JURYOPT_JQ_EXACT_H_

#include "model/jury.h"
#include "strategy/voting_strategy.h"
#include "util/result.h"

namespace jury {

/// Largest jury size accepted by the exact 2^n enumerators.
inline constexpr std::size_t kMaxExactJurySize = 25;

/// \brief Exact Jury Quality by full enumeration of Omega = {0,1}^n
/// (Definition 3):
///
///   JQ(J, S, alpha) = alpha     * sum_V Pr(V | t=0) * E[1_{S(V)=0}]
///                   + (1-alpha) * sum_V Pr(V | t=1) * E[1_{S(V)=1}]
///
/// Works for any strategy — deterministic or randomized — through
/// `VotingStrategy::ProbZero`. Exponential in n; guarded to
/// n <= kMaxExactJurySize (OutOfRange otherwise). This is the ground-truth
/// oracle used by tests and the approximation-error benchmarks (Fig. 9(b-c)).
Result<double> ExactJq(const Jury& jury, const VotingStrategy& strategy,
                       double alpha);

/// Exact JQ for Bayesian Voting specifically: JQ(J, BV, alpha).
Result<double> ExactJqBv(const Jury& jury, double alpha);

}  // namespace jury

#endif  // JURYOPT_JQ_EXACT_H_
