#ifndef JURYOPT_JQ_PRIOR_TRANSFORM_H_
#define JURYOPT_JQ_PRIOR_TRANSFORM_H_

#include "model/jury.h"

namespace jury {

/// Identifier given to the pseudo-worker injected by `ApplyPrior`.
inline constexpr const char* kPriorWorkerId = "_prior";

/// \brief Theorem 3: `JQ(J, BV, alpha) = JQ(J', BV, 0.5)` where `J'` extends
/// `J` with a zero-cost pseudo-worker of quality `alpha`.
///
/// Intuition (§4.5): under BV the task provider's prior acts exactly like one
/// more juror whose "vote" is the prior's preferred answer with reliability
/// alpha. Returns `jury` unchanged when the prior is uninformative
/// (alpha == 0.5), since a quality-0.5 juror carries zero log-odds weight.
Jury ApplyPrior(const Jury& jury, double alpha);

}  // namespace jury

#endif  // JURYOPT_JQ_PRIOR_TRANSFORM_H_
