#include "jq/weighted.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

#include "model/prior.h"
#include "model/worker.h"
#include "util/math.h"

namespace jury {
namespace {

/// Joint conditional probabilities accumulated at one key.
struct Mass {
  double given_t0 = 0.0;
  double given_t1 = 0.0;
};

using KeyMap = std::map<double, Mass>;

void AddMerged(KeyMap* map, double key, const Mass& mass, double epsilon) {
  auto it = map->lower_bound(key - epsilon);
  if (it != map->end() && std::fabs(it->first - key) <= epsilon) {
    it->second.given_t0 += mass.given_t0;
    it->second.given_t1 += mass.given_t1;
    return;
  }
  Mass& slot = (*map)[key];
  slot.given_t0 += mass.given_t0;
  slot.given_t1 += mass.given_t1;
}

}  // namespace

Result<double> WeightedThresholdJq(const Jury& jury,
                                   const std::vector<double>& weights,
                                   double bias, double alpha,
                                   const WeightedJqOptions& options) {
  JURY_RETURN_NOT_OK(jury.Validate());
  JURY_RETURN_NOT_OK(ValidateAlpha(alpha));
  if (jury.empty()) {
    return Status::InvalidArgument(
        "WeightedThresholdJq requires a non-empty jury");
  }
  if (weights.size() != jury.size()) {
    return Status::InvalidArgument("weights/jury size mismatch");
  }
  if (!(options.key_epsilon >= 0.0)) {
    return Status::InvalidArgument("key_epsilon must be non-negative");
  }

  KeyMap current;
  current.emplace(bias, Mass{1.0, 1.0});
  for (std::size_t i = 0; i < jury.size(); ++i) {
    const double q = jury.worker(i).quality;
    const double w = weights[i];
    KeyMap next;
    for (const auto& [key, mass] : current) {
      // Vote 0: correct under t=0 (prob q), wrong under t=1 (prob 1-q).
      AddMerged(&next, key + w,
                {mass.given_t0 * q, mass.given_t1 * (1.0 - q)},
                options.key_epsilon);
      // Vote 1: the complement.
      AddMerged(&next, key - w,
                {mass.given_t0 * (1.0 - q), mass.given_t1 * q},
                options.key_epsilon);
    }
    current.swap(next);
    if (current.size() > options.max_keys) {
      return Status::ResourceExhausted(
          "weighted-threshold key map exceeded max_keys");
    }
  }

  double jq = 0.0;
  for (const auto& [key, mass] : current) {
    if (key >= -options.key_epsilon) {
      jq += alpha * mass.given_t0;  // rule answers 0 (ties to 0)
    } else {
      jq += (1.0 - alpha) * mass.given_t1;  // rule answers 1
    }
  }
  return std::min(jq, 1.0);
}

Result<double> MiscalibratedBvJq(const Jury& jury,
                                 const std::vector<double>& believed_qualities,
                                 double alpha,
                                 const WeightedJqOptions& options) {
  if (believed_qualities.size() != jury.size()) {
    return Status::InvalidArgument("believed_qualities/jury size mismatch");
  }
  std::vector<double> weights;
  weights.reserve(believed_qualities.size());
  for (double believed : believed_qualities) {
    if (!(believed >= 0.0 && believed <= 1.0)) {
      return Status::InvalidArgument("believed quality outside [0,1]");
    }
    weights.push_back(LogOdds(EffectiveQuality(believed)));
  }
  const double bias = LogOdds(EffectiveQuality(alpha));
  return WeightedThresholdJq(jury, weights, bias, alpha, options);
}

}  // namespace jury
