#include "jq/exact_map.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "jq/prior_transform.h"
#include "model/prior.h"
#include "model/worker.h"
#include "util/math.h"

namespace jury {
namespace {

/// Ordered map from the real-valued statistic R to aggregated probability;
/// keys within `epsilon` of each other merge (they are float renderings of
/// the same exact sum).
using KeyMap = std::map<double, double>;

void AddMerged(KeyMap* map, double key, double prob, double epsilon) {
  auto it = map->lower_bound(key - epsilon);
  if (it != map->end() && std::fabs(it->first - key) <= epsilon) {
    it->second += prob;
    return;
  }
  (*map)[key] += prob;
}

}  // namespace

Result<double> ExactJqBvMap(const Jury& jury, double alpha,
                            const ExactMapOptions& options,
                            ExactMapStats* stats) {
  JURY_RETURN_NOT_OK(jury.Validate());
  JURY_RETURN_NOT_OK(ValidateAlpha(alpha));
  if (jury.empty()) {
    return Status::InvalidArgument("ExactJqBvMap requires a non-empty jury");
  }
  if (!(options.key_epsilon >= 0.0)) {
    return Status::InvalidArgument("key_epsilon must be non-negative");
  }
  if (stats != nullptr) *stats = ExactMapStats{};

  const Jury normalized = Normalize(ApplyPrior(jury, alpha)).jury;
  const std::vector<double> qs = normalized.qualities();

  KeyMap current;
  current.emplace(0.0, 1.0);
  for (double raw_q : qs) {
    const double q = EffectiveQuality(raw_q);
    const double phi = LogOdds(q);
    KeyMap next;
    for (const auto& [key, prob] : current) {
      AddMerged(&next, key + phi, prob * q, options.key_epsilon);
      AddMerged(&next, key - phi, prob * (1.0 - q), options.key_epsilon);
    }
    current.swap(next);
    if (stats != nullptr) {
      stats->max_keys_used = std::max(stats->max_keys_used, current.size());
    }
    if (current.size() > options.max_keys) {
      return Status::ResourceExhausted(
          "exact iterative map exceeded max_keys (" +
          std::to_string(options.max_keys) +
          "); use EstimateJq (bucketed) instead");
    }
  }

  double jq = 0.0;
  double tie_mass = 0.0;
  for (const auto& [key, prob] : current) {
    if (key > options.key_epsilon) {
      jq += prob;
    } else if (key >= -options.key_epsilon) {
      jq += 0.5 * prob;
      tie_mass += prob;
    }
  }
  if (stats != nullptr) stats->tie_mass = tie_mass;
  return std::min(jq, 1.0);
}

}  // namespace jury
