#ifndef JURYOPT_JQ_BUCKET_H_
#define JURYOPT_JQ_BUCKET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "model/jury.h"
#include "util/result.h"

namespace jury {

/// \brief Backend for the Algorithm-1 key map.
enum class BucketBackend {
  /// Flat array indexed by key + offset. Fastest at the paper's default
  /// bucket counts; memory O(sum of buckets).
  kDense,
  /// Hash map keyed by the integer bucket key. Pays off when pruning keeps
  /// the reachable key set sparse (large n, aggressive budgets).
  kSparse,
};

/// \brief Tuning knobs for `EstimateJq` (Algorithm 1 + Algorithm 2).
struct BucketJqOptions {
  /// Total number of buckets the range [0, max phi(q_i)] is divided into
  /// (`numBuckets`); the paper's experiments default to 50 (§6.1.1) and its
  /// error analysis uses numBuckets = d*n with d >= 200 for the <1% bound.
  int num_buckets = 50;
  /// Upper bound `Validate` enforces on `num_buckets`: the deconvolution
  /// tables scale with the bucket count, so an unchecked request-supplied
  /// count is a remote OOM. A million buckets is ~5000x the paper's
  /// default and far past the <1% error regime.
  static constexpr int kMaxBuckets = 1'000'000;

  /// Enables the Algorithm-2 sign-settled early termination.
  bool enable_pruning = true;

  BucketBackend backend = BucketBackend::kDense;

  /// §4.4 escape hatch: when some normalized quality exceeds this cutoff,
  /// phi(q) is huge and JQ in (cutoff, 1], so `EstimateJq` just returns the
  /// max such quality. Set to 1.0 to disable (then qualities are clamped by
  /// `EffectiveQuality` before the log-odds transform).
  double high_quality_cutoff = 0.99;

  /// Range-checks the knobs (>= 1 bucket, a cutoff in (0, 1]); the one
  /// definition every entry that consumes bucket options calls
  /// (`OptjsOptions::Validate`, the api-layer objective factory).
  Status Validate() const;
};

/// \brief Instrumentation filled in by `EstimateJq`.
struct BucketJqStats {
  /// Bucket width delta = upper / num_buckets.
  double delta = 0.0;
  /// Additive error bound e^{n*delta/4} - 1 for this run (§4.4);
  /// 0 when the high-quality escape hatch fired.
  double error_bound = 0.0;
  /// Distinct (key, prob) pairs expanded across all iterations.
  std::size_t keys_expanded = 0;
  /// Pairs settled early by pruning (both signs).
  std::size_t keys_pruned = 0;
  /// True when the high-quality escape hatch was taken.
  bool high_quality_shortcut = false;
};

/// \brief Approximate `JQ(J, BV, alpha)` — Algorithm 1 ("EstimateJQ") with
/// the Algorithm 2 pruning — in O(num_buckets * n^2) time.
///
/// Steps, following §4.2–4.5:
///  1. Theorem 3: fold the prior in as a pseudo-worker of quality alpha.
///  2. §3.3: normalize qualities below 0.5 by the flip reinterpretation.
///  3. Map each phi(q_i) = ln(q_i/(1-q_i)) to its nearest bucket
///     b_i = ceil(phi(q_i)/delta - 1/2), delta = max_i phi(q_i)/num_buckets.
///  4. Iterate workers, maintaining a map from the bucketed decision
///     statistic `key = sum +-b_i` to the aggregated probability
///     `sum e^{u(V)}` over votings reaching that key (Eq. 7).
///  5. JQ-hat = sum over keys>0 of prob + half the prob at key 0.
///
/// Guarantees (proved in the paper, §4.4, and property-tested here):
///   JQ-hat <= JQ(J, BV, alpha)   and   JQ - JQ-hat < e^{n*delta/4} - 1.
///
/// Errors: InvalidArgument for empty juries / bad alpha / bad workers,
/// never OutOfRange (polynomial in n).
Result<double> EstimateJq(const Jury& jury, double alpha,
                          const BucketJqOptions& options = {},
                          BucketJqStats* stats = nullptr);

/// \brief The Algorithm-1 DP state as a standalone value: a dense
/// distribution over the bucketed decision-statistic key `sum_i ±b_i`,
/// supporting O(span) worker insertion (convolution with the two-point
/// distribution {+b: q, -b: 1-q}) and O(span) removal (deconvolution).
///
/// This is what makes the incremental BV/bucket evaluator's per-move cost
/// O(n) instead of O(n^2): a solver move touches one worker, so the key
/// distribution of the neighbouring jury is one (de)convolution away.
class BucketKeyDistribution {
 public:
  BucketKeyDistribution() { Reset(); }

  /// Copies transfer only the distribution (pmf + span), not the scratch
  /// buffer: sessions copy the committed distribution once per staged move
  /// (`scratch_dist_ = dist_`), and dragging the convolution scratch along
  /// would double that copy for no benefit.
  BucketKeyDistribution(const BucketKeyDistribution& other)
      : pmf_(other.pmf_), span_(other.span_) {}
  BucketKeyDistribution& operator=(const BucketKeyDistribution& other) {
    pmf_ = other.pmf_;  // reuses capacity
    span_ = other.span_;
    return *this;
  }
  BucketKeyDistribution(BucketKeyDistribution&&) = default;
  BucketKeyDistribution& operator=(BucketKeyDistribution&&) = default;

  /// Back to the empty product: a point mass at key 0.
  void Reset();

  /// Folds in a worker with bucket `b >= 0` and normalized quality
  /// `q in [0.5, 1]`: the key moves +b with probability q and -b with
  /// probability 1-q. `b == 0` is an exact no-op (the two shifts coincide).
  void Convolve(std::int64_t b, double q);

  /// Inverse of `Convolve` for a worker previously folded in. Runs the
  /// backward recurrence `g[j] = (f[j+b] - (1-q) g[j+2b]) / q` from the top
  /// key down; the homogeneous error gain (1-q)/q never exceeds 1 because
  /// normalization guarantees q >= 1/2, so roundoff does not amplify.
  void Deconvolve(std::int64_t b, double q);

  /// `sum_{key > 0} Pr[key] + 0.5 Pr[key = 0]` — JQ-hat before the
  /// min(., 1) clamp (steps 21-25 of Algorithm 1). Accumulated in the
  /// canonical four-chain interleaved order shared by every mass consumer
  /// (util/simd_kernels_inl.h), so the fused batch kernels — including
  /// the AVX2 lane-per-chain variant — are bit-identical to this.
  double PositiveMass() const;

  /// \brief Fused batched candidate evaluation — the greedy-scan kernel
  /// for the BV/bucket backend.
  ///
  /// For each candidate worker `(bs[j], qs[j])` (bucket >= 0, normalized
  /// quality), computes the positive mass of this distribution convolved
  /// with that candidate, without copying or mutating anything:
  ///
  ///   out[j] = {copy = *this; copy.Convolve(bs[j], qs[j]);
  ///             copy.PositiveMass()}
  ///
  /// bit-for-bit (the per-key convolution terms and PositiveMass's
  /// canonical interleaved summation replicate the scalar pair's
  /// arithmetic exactly). Where the scalar pair runs three O(span) memory
  /// passes per candidate (copy the pmf, scatter the convolution, re-read
  /// for the mass sweep), the fused kernel runs one read-only pass over
  /// contiguous storage per candidate — no scratch copy, no allocation,
  /// no per-candidate dispatch. Runs on the runtime-dispatched
  /// `convolve_mass` kernel (util/simd_dispatch.h): scalar reference or
  /// AVX2, bit-identical either way.
  void ConvolvePositiveMassBatch(const std::int64_t* bs, const double* qs,
                                 std::size_t count, double* out) const;

  /// \brief Fused remove-candidate evaluation — the remove fold of the
  /// unified move scan for the BV/bucket backend.
  ///
  /// Positive mass of this distribution with a previously-folded worker
  /// `(b, q)` deconvolved out, without copying or mutating anything:
  ///
  ///   {copy = *this; copy.Deconvolve(b, q); copy.PositiveMass()}
  ///
  /// bit-for-bit, in one backward-recurrence pass over a reused row plus
  /// the ascending mass sweep — where the scalar pair pays a full
  /// distribution copy first. Same preconditions as `Deconvolve`.
  /// Runs on the runtime-dispatched `deconvolve_mass` kernel
  /// (util/simd_dispatch.h) with a single-candidate batch.
  double DeconvolvePositiveMass(std::int64_t b, double q) const;

  /// \brief Batched remove-candidate evaluation — the remove/swap fold of
  /// the unified move scan for the BV/bucket backend.
  ///
  /// `out[j] = DeconvolvePositiveMass(bs[j], qs[j])` for each previously
  /// folded candidate, bit for bit, in one dispatched kernel call: the
  /// row buffer and the b == 0 committed mass are staged once for the
  /// whole batch, and the vector levels run the backward recurrence in
  /// descending lane-width blocks (see the `deconvolve_mass` contract).
  /// Preconditions per candidate: `0 <= bs[j] <= span()` and, for
  /// `bs[j] >= 1`, `qs[j] in [0.5, 1]`.
  void DeconvolvePositiveMassBatch(const std::int64_t* bs, const double* qs,
                                   std::size_t count, double* out) const;

  /// Current half-width of the key support (sum of folded buckets).
  std::int64_t span() const { return span_; }

 private:
  std::vector<double> pmf_;  // size 2*span_+1; index = key + span_
  /// Preallocated flat buffer the (de)convolutions write into before
  /// swapping with `pmf_`: per-move updates reuse its capacity instead of
  /// allocating a fresh vector per call.
  std::vector<double> scratch_;
  std::int64_t span_ = 0;
};

/// The §4.4 additive bound `e^{n*delta/4} - 1`.
double BucketErrorBound(int n, double delta);

/// Smallest per-worker bucket multiplier d such that the §4.4 bound with
/// upper <= `upper` stays below `max_error` (`numBuckets = d * n`).
int RequiredBucketMultiplier(double upper, double max_error);

}  // namespace jury

#endif  // JURYOPT_JQ_BUCKET_H_
