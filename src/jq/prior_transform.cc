#include "jq/prior_transform.h"

#include "model/prior.h"

namespace jury {

Jury ApplyPrior(const Jury& jury, double alpha) {
  if (IsUninformativeAlpha(alpha)) return jury;
  Jury extended = jury;
  extended.Add(Worker(kPriorWorkerId, alpha, /*cost=*/0.0));
  return extended;
}

}  // namespace jury
