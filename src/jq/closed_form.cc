#include "jq/closed_form.h"

#include "model/prior.h"
#include "util/math.h"
#include "util/poisson_binomial.h"

namespace jury {
namespace {

Status ValidateInputs(const Jury& jury, double alpha) {
  JURY_RETURN_NOT_OK(jury.Validate());
  JURY_RETURN_NOT_OK(ValidateAlpha(alpha));
  if (jury.empty()) {
    return Status::InvalidArgument("JQ requires a non-empty jury");
  }
  return Status::OK();
}

/// Shared tail computation: the strategy returns 0 iff the number of
/// 0-votes is >= `zeros_needed`.
double ThresholdJq(const Jury& jury, double alpha, int zeros_needed) {
  const std::vector<double> qs = jury.qualities();
  // Given t=0 each vote is 0 with probability q_i.
  const PoissonBinomial zeros_given_t0(qs);
  // Given t=1 each vote is 0 with probability 1 - q_i.
  std::vector<double> flipped(qs.size());
  for (std::size_t i = 0; i < qs.size(); ++i) flipped[i] = 1.0 - qs[i];
  const PoissonBinomial zeros_given_t1(flipped);

  const double correct_given_t0 = zeros_given_t0.TailAtLeast(zeros_needed);
  const double correct_given_t1 = zeros_given_t1.CdfAtMost(zeros_needed - 1);
  return alpha * correct_given_t0 + (1.0 - alpha) * correct_given_t1;
}

}  // namespace

Result<double> MajorityJq(const Jury& jury, double alpha) {
  JURY_RETURN_NOT_OK(ValidateInputs(jury, alpha));
  const int n = static_cast<int>(jury.size());
  // zeros >= (n+1)/2 over the reals <=> zeros >= floor(n/2) + 1.
  return ThresholdJq(jury, alpha, n / 2 + 1);
}

Result<double> HalfVotingJq(const Jury& jury, double alpha) {
  JURY_RETURN_NOT_OK(ValidateInputs(jury, alpha));
  const int n = static_cast<int>(jury.size());
  // zeros >= n/2 over the reals <=> zeros >= ceil(n/2).
  return ThresholdJq(jury, alpha, (n + 1) / 2);
}

Result<double> RandomizedMajorityJq(const Jury& jury, double alpha) {
  JURY_RETURN_NOT_OK(ValidateInputs(jury, alpha));
  // E[zeros/n | t=0] = mean(q) and E[ones/n | t=1] = mean(q); the prior
  // weights two identical terms, so JQ = mean(q).
  double mean_q = 0.0;
  for (const Worker& w : jury.workers()) mean_q += w.quality;
  return mean_q / static_cast<double>(jury.size());
}

Result<double> RandomBallotJq(const Jury& jury, double alpha) {
  JURY_RETURN_NOT_OK(ValidateInputs(jury, alpha));
  return 0.5;
}

Result<double> CountingStrategyJq(
    const Jury& jury, double alpha,
    const std::function<double(int zeros)>& prob_zero_given_zeros) {
  JURY_RETURN_NOT_OK(ValidateInputs(jury, alpha));
  if (!prob_zero_given_zeros) {
    return Status::InvalidArgument("prob_zero_given_zeros required");
  }
  const int n = static_cast<int>(jury.size());
  const std::vector<double> qs = jury.qualities();
  const PoissonBinomial zeros_given_t0(qs);
  std::vector<double> flipped(qs.size());
  for (std::size_t i = 0; i < qs.size(); ++i) flipped[i] = 1.0 - qs[i];
  const PoissonBinomial zeros_given_t1(flipped);

  double correct_given_t0 = 0.0;
  double correct_given_t1 = 0.0;
  for (int z = 0; z <= n; ++z) {
    const double h = prob_zero_given_zeros(z);
    if (!(h >= 0.0 && h <= 1.0)) {
      return Status::InvalidArgument(
          "prob_zero_given_zeros must return values in [0,1]");
    }
    correct_given_t0 += zeros_given_t0.Pmf(z) * h;
    correct_given_t1 += zeros_given_t1.Pmf(z) * (1.0 - h);
  }
  return alpha * correct_given_t0 + (1.0 - alpha) * correct_given_t1;
}

Result<double> TriadicJq(const Jury& jury, double alpha) {
  JURY_RETURN_NOT_OK(ValidateInputs(jury, alpha));
  const int n = static_cast<int>(jury.size());
  return CountingStrategyJq(jury, alpha, [n](int z) {
    if (n < 3) return static_cast<double>(z) / static_cast<double>(n);
    return (BinomialCoefficient(z, 2) * BinomialCoefficient(n - z, 1) +
            BinomialCoefficient(z, 3)) /
           BinomialCoefficient(n, 3);
  });
}

}  // namespace jury
