#ifndef JURYOPT_JQ_CLOSED_FORM_H_
#define JURYOPT_JQ_CLOSED_FORM_H_

#include <functional>

#include "model/jury.h"
#include "util/result.h"

namespace jury {

/// \brief Polynomial-time JQ formulas for the vote-counting strategies.
///
/// Conditioned on the true answer, each juror votes correctly independently
/// with probability q_i, so the number of 0-votes is Poisson-binomial. MV and
/// Half Voting reduce to tail probabilities of that distribution — the
/// polynomial computation the paper attributes to Cao et al. [7] (§4.1; we
/// use an exact O(n^2) DP, see DESIGN.md substitution #3). RMV and RBV admit
/// one-line closed forms.

/// JQ(J, MV, alpha): MV returns 0 iff zeros >= floor(n/2)+1.
Result<double> MajorityJq(const Jury& jury, double alpha);

/// JQ(J, HALF, alpha): Half Voting returns 0 iff zeros >= ceil(n/2).
Result<double> HalfVotingJq(const Jury& jury, double alpha);

/// JQ(J, RMV, alpha) = mean of jury qualities, independent of alpha.
Result<double> RandomizedMajorityJq(const Jury& jury, double alpha);

/// JQ(J, RBV, alpha) = 0.5, independent of everything.
Result<double> RandomBallotJq(const Jury& jury, double alpha);

/// JQ of one-round Triadic Consensus via the counting identity below.
Result<double> TriadicJq(const Jury& jury, double alpha);

/// \brief JQ of ANY counting strategy — one whose `Pr[S(V) = 0]` depends on
/// the voting only through the number of zero-votes z:
///
///   JQ = alpha     * E[ h(Z0) ]       Z0 ~ PoissonBinomial(q)
///      + (1-alpha) * E[ 1 - h(Z1) ]   Z1 ~ PoissonBinomial(1-q)
///
/// where `h(z) = Pr[S = 0 | z zeros]`. MV, Half Voting, RMV, RBV and
/// Triadic Consensus are all counting strategies; this is the engine behind
/// their closed forms, exposed for user-defined counting rules
/// (e.g. quorum or super-majority votes). `prob_zero_given_zeros(z)` is
/// called for z in [0, n] and must return a value in [0, 1].
Result<double> CountingStrategyJq(
    const Jury& jury, double alpha,
    const std::function<double(int zeros)>& prob_zero_given_zeros);

}  // namespace jury

#endif  // JURYOPT_JQ_CLOSED_FORM_H_
