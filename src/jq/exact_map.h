#ifndef JURYOPT_JQ_EXACT_MAP_H_
#define JURYOPT_JQ_EXACT_MAP_H_

#include <cstddef>

#include "model/jury.h"
#include "util/result.h"

namespace jury {

/// \brief Options/instrumentation for the exact iterative-map JQ.
struct ExactMapOptions {
  /// Abort (ResourceExhausted) when the key map grows beyond this size —
  /// the worst case is 2^n keys, but duplicated qualities collapse keys.
  std::size_t max_keys = 1u << 22;
  /// Two R(V) values closer than this merge into one key (they are sums of
  /// the same phi terms, so exact duplicates differ only by float noise).
  double key_epsilon = 1e-9;
};

struct ExactMapStats {
  /// Largest key-map size across iterations.
  std::size_t max_keys_used = 0;
  /// Probability mass sitting exactly on the R = 0 tie.
  double tie_mass = 0.0;
};

/// \brief Exact JQ(J, BV, alpha) via the §4.2 iterative approach (Fig. 4)
/// WITHOUT bucketing: the map key is the real-valued decision statistic
/// `R(V) = sum (1-2 v_i) phi(q_i)` itself.
///
/// Worst case this is the 2^n enumeration in disguise — computing JQ for
/// BV is NP-hard (Theorem 2) — but keys collide whenever partial sums
/// coincide, so juries with few distinct quality values stay polynomial:
/// k distinct qualities give O(n^k) keys, e.g. hundreds of same-quality
/// workers are exact and fast. This is the stepping stone between the
/// brute-force enumerator (n <= 25) and the bucketed approximation.
Result<double> ExactJqBvMap(const Jury& jury, double alpha,
                            const ExactMapOptions& options = {},
                            ExactMapStats* stats = nullptr);

}  // namespace jury

#endif  // JURYOPT_JQ_EXACT_MAP_H_
