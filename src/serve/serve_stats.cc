#include "serve/serve_stats.h"

#include <atomic>

namespace jury::serve {
namespace {

StatsRegistry::Counter& g_requests = RegisterStatsCounter("serve.requests");
StatsRegistry::Counter& g_cache_hits = RegisterStatsCounter("serve.cache_hits");
StatsRegistry::Counter& g_cache_misses =
    RegisterStatsCounter("serve.cache_misses");
StatsRegistry::Counter& g_shed = RegisterStatsCounter("serve.shed");
StatsRegistry::Counter& g_epoch_bumps =
    RegisterStatsCounter("serve.epoch_bumps");

std::atomic<std::int64_t> g_inflight{0};

std::uint64_t InflightGauge() {
  const std::int64_t v = g_inflight.load(std::memory_order_relaxed);
  return v > 0 ? static_cast<std::uint64_t>(v) : 0;
}

[[maybe_unused]] const bool g_gauge_registered = [] {
  StatsRegistry::Global().RegisterGauge("serve.inflight", &InflightGauge);
  return true;
}();

}  // namespace

StatsRegistry::Counter& ServeRequests() { return g_requests; }
StatsRegistry::Counter& ServeCacheHits() { return g_cache_hits; }
StatsRegistry::Counter& ServeCacheMisses() { return g_cache_misses; }
StatsRegistry::Counter& ServeShed() { return g_shed; }
StatsRegistry::Counter& ServeEpochBumps() { return g_epoch_bumps; }

std::uint64_t ServeInflight() { return InflightGauge(); }

void ServeInflightAdd(std::int64_t delta) {
  g_inflight.fetch_add(delta, std::memory_order_relaxed);
}

}  // namespace jury::serve
