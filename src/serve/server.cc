#include "serve/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <span>
#include <utility>

#include "serve/result_cache.h"
#include "serve/serve_stats.h"
#include "util/json.h"
#include "util/stats_registry.h"

namespace jury::serve {

namespace {

constexpr std::size_t kReadChunk = 16 * 1024;
constexpr int kMaxEpollEvents = 64;

// epoll tags of the three non-connection fds; connection ids count up
// from 1 and can never reach these.
constexpr std::uint64_t kListenTag = ~std::uint64_t{0};
constexpr std::uint64_t kShutdownTag = ~std::uint64_t{0} - 1;
constexpr std::uint64_t kCompletionTag = ~std::uint64_t{0} - 2;

Status Errno(const char* what) {
  return Status::Internal(std::string(what) + ": " + std::strerror(errno));
}

void CloseFd(int* fd) {
  if (*fd >= 0) {
    ::close(*fd);
    *fd = -1;
  }
}

int HttpStatusFor(const Status& status) {
  switch (status.code()) {
    case StatusCode::kInvalidArgument:
      return 400;
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kResourceExhausted:
      return 503;
    default:
      return 500;
  }
}

std::string ErrorBody(int status, const std::string& message) {
  std::string body = "{\"error\":{\"code\":";
  body += std::to_string(status);
  body += ",\"message\":";
  body += Json::Quote(message);
  body += "}}";
  return body;
}

/// HTTP/1.1 defaults to keep-alive; `Connection: close` (or HTTP/1.0
/// without `Connection: keep-alive`) opts out.
bool WantsKeepAlive(const HttpRequest& request) {
  const auto it = request.headers.find("connection");
  if (it != request.headers.end()) {
    if (it->second == "close") return false;
    if (it->second == "keep-alive") return true;
  }
  return request.version != "HTTP/1.0";
}

}  // namespace

JuryServer::JuryServer(api::PoolPlanContext* context, ServeOptions options)
    : context_(context), options_(std::move(options)) {}

JuryServer::~JuryServer() {
  for (auto& [id, conn] : connections_) CloseFd(&conn.fd);
  connections_.clear();
  CloseFd(&listen_fd_);
  CloseFd(&completion_fd_);
  CloseFd(&shutdown_fd_);
  CloseFd(&epoll_fd_);
}

Status JuryServer::Start() {
  if (epoll_fd_ >= 0) return Status::FailedPrecondition("already started");
  if (options_.cache_entries > 0 && context_->result_cache() == nullptr) {
    context_->EnableResultCache(options_.cache_entries);
  }
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) return Errno("epoll_create1");
  shutdown_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  completion_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (shutdown_fd_ < 0 || completion_fd_ < 0) return Errno("eventfd");
  JURY_RETURN_NOT_OK(Listen());

  epoll_event event{};
  event.events = EPOLLIN;
  event.data.u64 = kListenTag;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &event) != 0) {
    return Errno("epoll_ctl(listen)");
  }
  event.data.u64 = kShutdownTag;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, shutdown_fd_, &event) != 0) {
    return Errno("epoll_ctl(shutdown)");
  }
  event.data.u64 = kCompletionTag;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, completion_fd_, &event) != 0) {
    return Errno("epoll_ctl(completion)");
  }
  return Status::OK();
}

Status JuryServer::Listen() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return Errno("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("unparseable listen host: " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return Errno("bind");
  }
  if (::listen(listen_fd_, 128) != 0) return Errno("listen");

  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    return Errno("getsockname");
  }
  bound_port_ = ntohs(bound.sin_port);
  return Status::OK();
}

void JuryServer::Shutdown() {
  // Async-signal-safe: a single write to an eventfd.
  const std::uint64_t one = 1;
  if (shutdown_fd_ >= 0) {
    [[maybe_unused]] ssize_t n =
        ::write(shutdown_fd_, &one, sizeof(one));
  }
}

bool JuryServer::DrainComplete() const {
  if (!pending_.empty()) return false;
  for (const auto& [id, conn] : connections_) {
    if (conn.outbuf_sent < conn.outbuf.size()) return false;
  }
  return true;
}

Status JuryServer::Run() {
  if (epoll_fd_ < 0) return Status::FailedPrecondition("Start() first");
  epoll_event events[kMaxEpollEvents];
  while (true) {
    DrainCompletions();
    if (Draining()) {
      // Idle keep-alive connections hold nothing we owe them; close them
      // so the drain converges on in-flight work only.
      std::vector<std::uint64_t> idle;
      for (const auto& [id, conn] : connections_) {
        if (!conn.awaiting_solve && conn.outbuf_sent >= conn.outbuf.size()) {
          idle.push_back(id);
        }
      }
      for (std::uint64_t id : idle) CloseConnection(id);
      if (DrainComplete()) break;
    }
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEpollEvents, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("epoll_wait");
    }
    for (int i = 0; i < n; ++i) {
      const std::uint64_t tag = events[i].data.u64;
      if (tag == kListenTag) {
        AcceptNew();
      } else if (tag == kShutdownTag) {
        std::uint64_t value = 0;
        while (::read(shutdown_fd_, &value, sizeof(value)) > 0) {
        }
        shutdown_requested_ = true;
        if (listen_fd_ >= 0) {
          ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
          CloseFd(&listen_fd_);
        }
      } else if (tag == kCompletionTag) {
        std::uint64_t value = 0;
        while (::read(completion_fd_, &value, sizeof(value)) > 0) {
        }
        DrainCompletions();
      } else {
        const std::uint64_t conn_id = tag;
        if (connections_.count(conn_id) == 0) continue;  // closed mid-batch
        const std::uint32_t flags = events[i].events;
        if ((flags & (EPOLLHUP | EPOLLERR)) != 0) {
          CloseConnection(conn_id);
          continue;
        }
        if ((flags & EPOLLOUT) != 0) HandleWritable(conn_id);
        if (connections_.count(conn_id) != 0 && (flags & EPOLLIN) != 0) {
          HandleReadable(conn_id);
        }
      }
    }
  }
  for (auto& [id, conn] : connections_) CloseFd(&conn.fd);
  connections_.clear();
  return Status::OK();
}

void JuryServer::AcceptNew() {
  while (true) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or transient accept failure
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    const std::uint64_t conn_id = next_conn_id_++;
    Connection conn;
    conn.fd = fd;
    conn.parser = HttpParser(options_.limits);
    epoll_event event{};
    event.events = EPOLLIN;
    event.data.u64 = conn_id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &event) != 0) {
      ::close(fd);
      continue;
    }
    connections_.emplace(conn_id, std::move(conn));
  }
}

void JuryServer::UpdateInterest(std::uint64_t conn_id) {
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;
  Connection& conn = it->second;
  epoll_event event{};
  event.data.u64 = conn_id;
  if (!conn.awaiting_solve && !conn.close_after_write) event.events |= EPOLLIN;
  if (conn.outbuf_sent < conn.outbuf.size()) event.events |= EPOLLOUT;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &event);
}

void JuryServer::CloseConnection(std::uint64_t conn_id) {
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, it->second.fd, nullptr);
  CloseFd(&it->second.fd);
  connections_.erase(it);
  // A pending solve for this connection keeps running; its completion
  // finds the connection gone and discards the report.
}

void JuryServer::HandleReadable(std::uint64_t conn_id) {
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;
  Connection& conn = it->second;
  char chunk[kReadChunk];
  bool peer_closed = false;
  std::string input;
  while (true) {
    const ssize_t n = ::recv(conn.fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      input.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) peer_closed = true;
    break;  // EAGAIN, error, or orderly close
  }

  // One request at a time per connection: while a solve is in flight we
  // keep reads disarmed, so anything arriving here belongs to the next
  // request and runs through the parser now.
  while (!input.empty() && connections_.count(conn_id) != 0) {
    Connection& c = connections_.at(conn_id);
    if (c.awaiting_solve || c.close_after_write) break;
    const std::size_t consumed = c.parser.Feed(input);
    input.erase(0, consumed);
    if (c.parser.failed()) {
      QueueError(conn_id, c.parser.error_status(), c.parser.error_reason(),
                 /*keep_alive=*/false);
      break;
    }
    if (!c.parser.complete()) break;
    Dispatch(conn_id);
    if (connections_.count(conn_id) != 0) {
      connections_.at(conn_id).parser.Reset();
    }
  }

  if (connections_.count(conn_id) == 0) return;
  Connection& c = connections_.at(conn_id);
  if (peer_closed) {
    if (c.outbuf_sent >= c.outbuf.size() && !c.awaiting_solve) {
      CloseConnection(conn_id);
      return;
    }
    c.close_after_write = true;
  }
  UpdateInterest(conn_id);
}

void JuryServer::Dispatch(std::uint64_t conn_id) {
  Connection& conn = connections_.at(conn_id);
  const HttpRequest& request = conn.parser.request();
  ServeRequests().Increment();
  const bool keep_alive = WantsKeepAlive(request);

  if (request.method == "GET" && request.target == "/healthz") {
    QueueResponse(conn_id, 200, "{\"ok\":true}", keep_alive);
    return;
  }
  if (request.method == "GET" && request.target == "/stats") {
    std::string body = "{\"cache\":";
    if (const ResultCache* cache = context_->result_cache()) {
      const ResultCacheStats stats = cache->stats();
      Json c = Json::Object();
      c.Set("entries", std::uint64_t{cache->size()});
      c.Set("evictions", stats.evictions);
      c.Set("hits", stats.hits);
      c.Set("insertions", stats.insertions);
      c.Set("invalidations", stats.invalidations);
      c.Set("misses", stats.misses);
      body += c.Dump();
    } else {
      body += "null";
    }
    body += ",\"pool_epoch\":";
    body += std::to_string(context_->pool_epoch());
    body += ",\"registry\":";
    body += StatsRegistry::Global().ToJson();
    body += "}";
    QueueResponse(conn_id, 200, body, keep_alive);
    return;
  }
  if (request.method == "POST" && request.target == "/solve") {
    SubmitSolve(conn_id, request);
    return;
  }
  if (request.target == "/healthz" || request.target == "/stats" ||
      request.target == "/solve") {
    QueueError(conn_id, 405, "method not allowed on " + request.target,
               keep_alive);
    return;
  }
  QueueError(conn_id, 404, "no such route: " + request.target, keep_alive);
}

void JuryServer::SubmitSolve(std::uint64_t conn_id,
                             const HttpRequest& http_request) {
  const bool keep_alive = WantsKeepAlive(http_request);
  auto parsed = api::SolveRequest::FromJsonText(http_request.body);
  if (!parsed.ok()) {
    QueueError(conn_id, 400, parsed.status().message(), keep_alive);
    return;
  }
  api::SolveRequest request = std::move(parsed).value();
  const Status valid = request.Validate();
  if (!valid.ok()) {
    QueueError(conn_id, 400, valid.message(), keep_alive);
    return;
  }
  if (options_.max_inflight > 0 && pending_.size() >= options_.max_inflight) {
    ServeShed().Increment();
    QueueError(conn_id, 503, "server at capacity; retry later", keep_alive);
    return;
  }

  const bool had_own_deadline = request.deadline_ms > 0.0;
  if (!had_own_deadline && options_.default_deadline_ms > 0.0) {
    request.deadline_ms = options_.default_deadline_ms;
  }

  ServeInflightAdd(1);
  api::SubmitOptions submit;
  submit.num_threads = options_.solve_threads;
  const int completion_fd = completion_fd_;
  std::mutex* completed_mutex = &completed_mutex_;
  std::deque<std::uint64_t>* completed = &completed_;
  submit.on_complete = [completion_fd, completed_mutex, completed,
                        conn_id](std::size_t) {
    {
      std::lock_guard<std::mutex> lock(*completed_mutex);
      completed->push_back(conn_id);
    }
    const std::uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(completion_fd, &one, sizeof(one));
  };

  std::vector<api::SolveFuture> futures =
      context_->SubmitMany(std::span<const api::SolveRequest>(&request, 1),
                           submit);
  Connection& conn = connections_.at(conn_id);
  conn.awaiting_solve = true;
  conn.close_after_write = conn.close_after_write || !keep_alive;
  pending_.emplace(conn_id, PendingSolve{conn_id, std::move(futures.front()),
                                         had_own_deadline});
  UpdateInterest(conn_id);
}

void JuryServer::DrainCompletions() {
  while (true) {
    std::uint64_t conn_id = 0;
    {
      std::lock_guard<std::mutex> lock(completed_mutex_);
      if (completed_.empty()) return;
      conn_id = completed_.front();
      completed_.pop_front();
    }
    FinishSolve(conn_id);
  }
}

void JuryServer::FinishSolve(std::uint64_t conn_id) {
  auto pending_it = pending_.find(conn_id);
  if (pending_it == pending_.end()) return;
  PendingSolve pending = std::move(pending_it->second);
  pending_.erase(pending_it);
  ServeInflightAdd(-1);

  Result<api::SolveReport> result = pending.future.Take();

  auto conn_it = connections_.find(conn_id);
  if (conn_it == connections_.end()) return;  // client went away; discard
  Connection& conn = conn_it->second;
  conn.awaiting_solve = false;
  const bool keep_alive = !conn.close_after_write;

  if (!result.ok()) {
    const Status& status = result.status();
    QueueError(conn_id, HttpStatusFor(status), status.message(), keep_alive);
    return;
  }
  const api::SolveReport& report = result.value();
  if (options_.deadline_as_504 && report.terminated_early &&
      report.termination_reason == "deadline") {
    // 504-style error, but the anytime jury is still in the envelope —
    // a caller that wants the partial result can take it.
    std::string body = "{\"error\":{\"code\":504,\"message\":";
    body += Json::Quote("deadline expired before the solve completed");
    body += "},\"report\":";
    body += report.ToJson();
    body += "}";
    QueueResponse(conn_id, 504, body, keep_alive);
    return;
  }
  QueueResponse(conn_id, 200, report.ToJson(), keep_alive);
}

void JuryServer::QueueError(std::uint64_t conn_id, int status,
                            const std::string& message, bool keep_alive) {
  QueueResponse(conn_id, status, ErrorBody(status, message), keep_alive);
}

void JuryServer::QueueResponse(std::uint64_t conn_id, int status,
                               const std::string& body, bool keep_alive) {
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;
  Connection& conn = it->second;
  if (!keep_alive) conn.close_after_write = true;
  conn.outbuf +=
      FormatHttpResponse(status, HttpReasonPhrase(status), body,
                         !conn.close_after_write);
  HandleWritable(conn_id);
}

void JuryServer::HandleWritable(std::uint64_t conn_id) {
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;
  Connection& conn = it->second;
  while (conn.outbuf_sent < conn.outbuf.size()) {
    const ssize_t n =
        ::send(conn.fd, conn.outbuf.data() + conn.outbuf_sent,
               conn.outbuf.size() - conn.outbuf_sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      CloseConnection(conn_id);
      return;
    }
    conn.outbuf_sent += static_cast<std::size_t>(n);
  }
  if (conn.outbuf_sent >= conn.outbuf.size()) {
    conn.outbuf.clear();
    conn.outbuf_sent = 0;
    if (conn.close_after_write) {
      CloseConnection(conn_id);
      return;
    }
  }
  UpdateInterest(conn_id);
}

}  // namespace jury::serve
