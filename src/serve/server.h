#ifndef JURYOPT_SERVE_SERVER_H_
#define JURYOPT_SERVE_SERVER_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "api/solve.h"
#include "serve/http.h"
#include "util/status.h"

namespace jury::serve {

/// \brief Knobs of `JuryServer` — the thin HTTP/JSON endpoint over one
/// `PoolPlanContext`.
struct ServeOptions {
  /// Listen address. Loopback by default: the endpoint is a serving-layer
  /// demo and a load-harness target, not a hardened public frontend.
  std::string host = "127.0.0.1";
  /// Listen port; 0 binds an ephemeral port (read it back via `port()`).
  int port = 0;
  /// `SubmitOptions::num_threads` for each request's solve (0 resolves
  /// via JURYOPT_THREADS; 1 solves inline on the event loop).
  std::size_t solve_threads = 0;
  /// Admission control: when this many solves are already in flight, new
  /// `/solve` requests are shed with a 503 (`serve.shed`). 0 = unlimited.
  std::size_t max_inflight = 64;
  /// `EnableResultCache` capacity applied to the context at `Start` when
  /// the context has no cache yet. 0 leaves caching off.
  std::size_t cache_entries = 1024;
  /// Wire-level size guards (431 / 413).
  HttpLimits limits;
  /// Deadline imposed on requests that do not carry their own, in
  /// milliseconds (0 = none). Deadline-carrying requests bypass the
  /// result cache by design, so a default deadline trades cacheability
  /// for bounded tail latency.
  double default_deadline_ms = 0.0;
  /// Map deadline-terminated solves to a 504 JSON error instead of a 200
  /// anytime report. The 504 body still embeds the partial report.
  bool deadline_as_504 = true;
};

/// \brief The serving layer's HTTP endpoint: a single-threaded
/// epoll/eventfd loop speaking the existing `SolveRequest` JSON binding
/// over `PoolPlanContext::SubmitMany`.
///
/// Design: the event loop owns all connection state and never solves
/// anything itself (beyond the deliberate `solve_threads <= 1` inline
/// mode) — each `POST /solve` becomes a one-request `SubmitMany` batch
/// whose `on_complete` hook kicks an eventfd, and the loop writes the
/// response when the completion drains. Solver concurrency therefore
/// comes from the process work-stealing scheduler, not from server
/// threads, and the server adds no locking on the solve path.
///
/// Routes:
///  * `GET /healthz`  -> `{"ok":true}`
///  * `GET /stats`    -> process `StatsRegistry` snapshot + cache stats
///  * `POST /solve`   -> `SolveRequest` JSON in, `SolveReport` JSON out
///
/// Error mapping (JSON envelope `{"error":{"code":...,"message":...}}`):
/// parse/validation failures -> 400, unknown solver -> 404, load shed or
/// resource exhaustion -> 503, deadline (when `deadline_as_504`) -> 504,
/// anything else -> 500. Malformed wire bytes and oversized requests are
/// answered (400/413/431), never fatal — the robustness suite drives
/// this with the fuzz corpora.
///
/// `Shutdown()` is async-signal-safe (one `write` to an eventfd): the
/// loop stops accepting, finishes every in-flight solve, flushes every
/// response, then returns from `Run` (graceful drain).
class JuryServer {
 public:
  /// The context must outlive the server. Does not take ownership.
  JuryServer(api::PoolPlanContext* context, ServeOptions options = {});
  ~JuryServer();
  JuryServer(const JuryServer&) = delete;
  JuryServer& operator=(const JuryServer&) = delete;

  /// Binds, listens, and builds the epoll set. Call once before `Run`.
  Status Start();
  /// The bound port (the resolved one when `options.port` was 0). Valid
  /// after a successful `Start`.
  int port() const { return bound_port_; }

  /// Serves until `Shutdown`, then drains and returns. Call from one
  /// thread only.
  Status Run();

  /// Requests a graceful stop. Safe from any thread and from signal
  /// handlers (a single eventfd write).
  void Shutdown();

 private:
  struct Connection {
    int fd = -1;
    HttpParser parser;
    std::string outbuf;
    std::size_t outbuf_sent = 0;
    bool close_after_write = false;
    /// A solve is in flight for this connection: reads are paused (one
    /// request at a time per connection) until its completion drains.
    bool awaiting_solve = false;
  };

  struct PendingSolve {
    std::uint64_t conn_id = 0;
    api::SolveFuture future;
    bool had_own_deadline = false;
  };

  Status Listen();
  void AcceptNew();
  void HandleReadable(std::uint64_t conn_id);
  void HandleWritable(std::uint64_t conn_id);
  /// Routes one complete request; may enqueue a response or submit a
  /// solve (pausing reads until it completes).
  void Dispatch(std::uint64_t conn_id);
  void SubmitSolve(std::uint64_t conn_id, const HttpRequest& http_request);
  void DrainCompletions();
  void FinishSolve(std::uint64_t conn_id);
  void QueueResponse(std::uint64_t conn_id, int status,
                     const std::string& body, bool keep_alive);
  void QueueError(std::uint64_t conn_id, int status,
                  const std::string& message, bool keep_alive);
  void CloseConnection(std::uint64_t conn_id);
  void UpdateInterest(std::uint64_t conn_id);
  bool Draining() const { return shutdown_requested_; }
  bool DrainComplete() const;

  api::PoolPlanContext* context_;
  ServeOptions options_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int shutdown_fd_ = -1;    // eventfd: Shutdown() -> loop wakeup
  int completion_fd_ = -1;  // eventfd: solver thread -> loop wakeup
  int bound_port_ = 0;
  bool shutdown_requested_ = false;

  std::uint64_t next_conn_id_ = 1;
  std::unordered_map<std::uint64_t, Connection> connections_;
  std::unordered_map<std::uint64_t, PendingSolve> pending_;

  /// Completions crossing from scheduler threads to the loop.
  std::mutex completed_mutex_;
  std::deque<std::uint64_t> completed_;
};

}  // namespace jury::serve

#endif  // JURYOPT_SERVE_SERVER_H_
