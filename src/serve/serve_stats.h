#ifndef JURYOPT_SERVE_SERVE_STATS_H_
#define JURYOPT_SERVE_SERVE_STATS_H_

#include <cstdint>

#include "util/stats_registry.h"

namespace jury::serve {

/// \brief Serving-layer counters, registered once at static init and pinned
/// by `tests/stats_manifest.json`.
///
/// These live in their own TU with plain accessor functions (instead of
/// file-scope `RegisterStatsCounter` references in the server TU) because
/// the library is static: a TU's registrations only run in binaries that
/// reference one of its symbols. The cache/epoch accessors below are called
/// from `PoolPlanContext` itself, so every binary on the API path — the
/// CLI's `--stats` schema gate included — links this TU and sees the full
/// `serve.*` schema, whether or not it serves HTTP.

/// Requests accepted by the HTTP endpoint (any route outcome).
StatsRegistry::Counter& ServeRequests();
/// Solves answered from the epoch-keyed result cache.
StatsRegistry::Counter& ServeCacheHits();
/// Cacheable solves that missed (and then populated) the cache.
StatsRegistry::Counter& ServeCacheMisses();
/// Requests rejected by the server's admission control (503, load shed).
StatsRegistry::Counter& ServeShed();
/// Pool-epoch bumps from `PoolPlanContext::ApplyPoolDelta`.
StatsRegistry::Counter& ServeEpochBumps();

/// The `serve.inflight` gauge: requests currently being solved on behalf of
/// the serving layer. RAII-bump via `ScopedInflight`.
std::uint64_t ServeInflight();
void ServeInflightAdd(std::int64_t delta);

class ScopedInflight {
 public:
  ScopedInflight() { ServeInflightAdd(1); }
  ~ScopedInflight() { ServeInflightAdd(-1); }
  ScopedInflight(const ScopedInflight&) = delete;
  ScopedInflight& operator=(const ScopedInflight&) = delete;
};

}  // namespace jury::serve

#endif  // JURYOPT_SERVE_SERVE_STATS_H_
