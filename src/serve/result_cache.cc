#include "serve/result_cache.h"

#include <utility>

namespace jury::serve {

ResultCache::ResultCache(ResultCacheOptions options) : options_(options) {}

std::string ResultCache::MapKey(std::uint64_t epoch, const std::string& key) {
  // '\n' cannot appear in the single-line JSON key, so the composite is
  // prefix-free: (epoch, key) pairs map 1:1 to map keys.
  return std::to_string(epoch) + '\n' + key;
}

bool ResultCache::Lookup(std::uint64_t epoch, const std::string& request_key,
                         api::SolveReport* report) {
  const std::string map_key = MapKey(epoch, request_key);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(map_key);
  if (it == index_.end()) {
    ++stats_.misses;
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++stats_.hits;
  *report = it->second->report;
  report->stats["cache_hit"] = 1.0;
  return true;
}

void ResultCache::Insert(std::uint64_t epoch, const std::string& request_key,
                         const api::SolveReport& report) {
  if (options_.max_entries == 0) return;
  const std::string map_key = MapKey(epoch, request_key);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(map_key);
  if (it != index_.end()) {
    it->second->report = report;
    it->second->report.wall_seconds = 0.0;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  while (lru_.size() >= options_.max_entries) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
  }
  lru_.push_front(Entry{map_key, epoch, report});
  lru_.front().report.wall_seconds = 0.0;
  index_.emplace(std::move(map_key), lru_.begin());
  ++stats_.insertions;
}

void ResultCache::InvalidateBefore(std::uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->epoch < epoch) {
      index_.erase(it->key);
      it = lru_.erase(it);
      ++stats_.invalidations;
    } else {
      ++it;
    }
  }
}

void ResultCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.invalidations += lru_.size();
  index_.clear();
  lru_.clear();
}

std::size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

ResultCacheStats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace jury::serve
