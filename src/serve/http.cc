#include "serve/http.h"

#include <algorithm>
#include <cctype>
#include <utility>

namespace jury::serve {

namespace {

/// Lowercases ASCII in place (header names only — values are preserved).
void AsciiLower(std::string* s) {
  for (char& c : *s) {
    c = static_cast<char>(
        std::tolower(static_cast<unsigned char>(c)));
  }
}

/// Strips optional whitespace around a header value.
std::string_view TrimOws(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

void HttpParser::FailWith(int status, std::string reason) {
  state_ = State::kError;
  error_status_ = status;
  error_reason_ = std::move(reason);
}

std::size_t HttpParser::Feed(std::string_view data) {
  std::size_t consumed = 0;
  while (consumed < data.size() && state_ != State::kComplete &&
         state_ != State::kError) {
    if (state_ == State::kHeaders) {
      // Buffer up to the header terminator (CRLFCRLF, LF-tolerant).
      const std::size_t take =
          std::min(data.size() - consumed,
                   limits_.max_header_bytes + 1 - buffer_.size());
      buffer_.append(data.substr(consumed, take));
      consumed += take;
      const std::size_t crlf = buffer_.find("\r\n\r\n");
      const std::size_t lf = buffer_.find("\n\n");
      std::size_t header_end = std::string::npos;
      std::size_t terminator = 0;
      if (crlf != std::string::npos && (lf == std::string::npos || crlf < lf)) {
        header_end = crlf;
        terminator = 4;
      } else if (lf != std::string::npos) {
        header_end = lf;
        terminator = 2;
      }
      if (header_end == std::string::npos) {
        if (buffer_.size() > limits_.max_header_bytes) {
          FailWith(431, "header block exceeds limit");
        }
        continue;
      }
      // Leftover bytes after the terminator are body bytes.
      std::string rest = buffer_.substr(header_end + terminator);
      buffer_.resize(header_end);
      if (!ParseHeaderBlock()) continue;  // state is kError
      if (body_expected_ > limits_.max_body_bytes) {
        FailWith(413, "declared body exceeds limit");
        continue;
      }
      state_ = State::kBody;
      buffer_.clear();
      // Re-feed the body bytes we over-read, then fall through to the
      // regular body path for the rest of `data`.
      if (rest.size() > body_expected_) {
        // Pipelined bytes beyond this request's body stay unconsumed in
        // the connection buffer; give back the overshoot.
        consumed -= rest.size() - body_expected_;
        rest.resize(body_expected_);
      }
      request_.body = std::move(rest);
      if (request_.body.size() >= body_expected_) state_ = State::kComplete;
      continue;
    }
    // kBody
    const std::size_t need = body_expected_ - request_.body.size();
    const std::size_t take = std::min(need, data.size() - consumed);
    request_.body.append(data.substr(consumed, take));
    consumed += take;
    if (request_.body.size() >= body_expected_) state_ = State::kComplete;
  }
  return consumed;
}

bool HttpParser::ParseHeaderBlock() {
  // buffer_ holds the request line + headers, without the terminator.
  std::string_view block = buffer_;
  const std::size_t line_end = block.find('\n');
  std::string_view request_line =
      line_end == std::string_view::npos ? block : block.substr(0, line_end);
  if (!request_line.empty() && request_line.back() == '\r') {
    request_line.remove_suffix(1);
  }
  const std::size_t sp1 = request_line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? std::string_view::npos
                                    : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      sp1 == 0 || sp2 == sp1 + 1 || sp2 + 1 >= request_line.size()) {
    FailWith(400, "malformed request line");
    return false;
  }
  request_.method = std::string(request_line.substr(0, sp1));
  request_.target = std::string(request_line.substr(sp1 + 1, sp2 - sp1 - 1));
  request_.version = std::string(request_line.substr(sp2 + 1));
  if (request_.version.rfind("HTTP/", 0) != 0) {
    FailWith(400, "malformed HTTP version");
    return false;
  }

  std::size_t pos =
      line_end == std::string_view::npos ? block.size() : line_end + 1;
  while (pos < block.size()) {
    std::size_t next = block.find('\n', pos);
    std::string_view line = next == std::string_view::npos
                                ? block.substr(pos)
                                : block.substr(pos, next - pos);
    pos = next == std::string_view::npos ? block.size() : next + 1;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.empty()) continue;
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      FailWith(400, "malformed header line");
      return false;
    }
    std::string name(line.substr(0, colon));
    AsciiLower(&name);
    if (name.find(' ') != std::string::npos ||
        name.find('\t') != std::string::npos) {
      FailWith(400, "whitespace in header name");
      return false;
    }
    request_.headers.emplace(std::move(name),
                             std::string(TrimOws(line.substr(colon + 1))));
  }

  body_expected_ = 0;
  const auto it = request_.headers.find("content-length");
  if (it != request_.headers.end()) {
    const std::string& value = it->second;
    if (value.empty() ||
        !std::all_of(value.begin(), value.end(), [](unsigned char c) {
          return std::isdigit(c) != 0;
        }) ||
        value.size() > 12) {
      FailWith(400, "malformed Content-Length");
      return false;
    }
    body_expected_ = static_cast<std::size_t>(std::stoull(value));
  }
  if (request_.headers.count("transfer-encoding") > 0) {
    FailWith(400, "chunked transfer encoding unsupported");
    return false;
  }
  return true;
}

void HttpParser::Reset() {
  state_ = State::kHeaders;
  buffer_.clear();
  body_expected_ = 0;
  request_ = HttpRequest{};
  error_status_ = 400;
  error_reason_.clear();
}

std::string_view HttpReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Payload Too Large";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default: return "Unknown";
  }
}

std::string FormatHttpResponse(int status, std::string_view reason,
                               std::string_view body, bool keep_alive) {
  std::string response;
  response.reserve(body.size() + 128);
  response.append("HTTP/1.1 ");
  response.append(std::to_string(status));
  response.push_back(' ');
  response.append(reason.empty() ? HttpReasonPhrase(status) : reason);
  response.append("\r\nContent-Type: application/json\r\nContent-Length: ");
  response.append(std::to_string(body.size()));
  response.append(keep_alive ? "\r\nConnection: keep-alive"
                             : "\r\nConnection: close");
  response.append("\r\n\r\n");
  response.append(body);
  return response;
}

}  // namespace jury::serve
