#ifndef JURYOPT_SERVE_HTTP_H_
#define JURYOPT_SERVE_HTTP_H_

#include <cstddef>
#include <map>
#include <string>
#include <string_view>

namespace jury::serve {

/// Request-size guards of the endpoint — the first line of defense the
/// robustness suite drives with oversized fuzz corpora.
struct HttpLimits {
  /// Cap on the request line + headers, bytes. Exceeding it is a 431.
  std::size_t max_header_bytes = 16 * 1024;
  /// Cap on the declared/received body, bytes. Exceeding it is a 413.
  std::size_t max_body_bytes = 1024 * 1024;
};

struct HttpRequest {
  std::string method;
  std::string target;
  std::string version;
  /// Field names lowercased (HTTP/1.1 header names are case-insensitive);
  /// duplicate fields keep the first occurrence.
  std::map<std::string, std::string> headers;
  std::string body;
};

/// \brief Incremental HTTP/1.1 request parser for the serving loop: feed
/// it bytes as they arrive, ask whether a full request is ready.
///
/// Deliberately minimal — exactly the subset `jury_serve` speaks: a
/// request line, headers, and an optional `Content-Length` body. No
/// chunked transfer, no continuation lines, no trailers; anything outside
/// the subset is a clean parse error with a suggested status code, never
/// an abort — malformed wire bytes are user input, the same contract as
/// the JSON fuzz surface. Bare-LF line endings are tolerated (curl-style
/// hand-written requests); header bytes beyond `max_header_bytes` fail
/// with 431 and bodies beyond `max_body_bytes` with 413 *before*
/// buffering the excess, so an abusive client cannot balloon the process.
class HttpParser {
 public:
  enum class State { kHeaders, kBody, kComplete, kError };

  explicit HttpParser(HttpLimits limits = {}) : limits_(limits) {}

  /// Consumes `data`, advancing the state machine. Returns the number of
  /// bytes consumed (always all of `data` unless the request completed or
  /// errored mid-buffer; leftover bytes belong to the next request).
  std::size_t Feed(std::string_view data);

  State state() const { return state_; }
  bool complete() const { return state_ == State::kComplete; }
  bool failed() const { return state_ == State::kError; }

  /// The parsed request; valid once `complete()`.
  const HttpRequest& request() const { return request_; }

  /// On `kError`: the HTTP status to answer with (400, 413, or 431) and
  /// a one-line reason.
  int error_status() const { return error_status_; }
  const std::string& error_reason() const { return error_reason_; }

  /// Resets for the next request on a keep-alive connection.
  void Reset();

 private:
  void FailWith(int status, std::string reason);
  bool ParseHeaderBlock();

  HttpLimits limits_;
  State state_ = State::kHeaders;
  std::string buffer_;
  std::size_t body_expected_ = 0;
  HttpRequest request_;
  int error_status_ = 400;
  std::string error_reason_;
};

/// Serializes a response with `Content-Length`, a `Connection` header
/// (`close` when `keep_alive` is false), and `Content-Type:
/// application/json` (the endpoint speaks JSON on every route, errors
/// included).
std::string FormatHttpResponse(int status, std::string_view reason,
                               std::string_view body, bool keep_alive);

/// The canonical reason phrase for the status codes the endpoint emits.
std::string_view HttpReasonPhrase(int status);

}  // namespace jury::serve

#endif  // JURYOPT_SERVE_HTTP_H_
