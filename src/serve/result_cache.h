#ifndef JURYOPT_SERVE_RESULT_CACHE_H_
#define JURYOPT_SERVE_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>

#include "api/solve.h"

namespace jury::serve {

struct ResultCacheOptions {
  /// LRU capacity; 0 disables insertion entirely (every lookup misses).
  std::size_t max_entries = 1024;
};

struct ResultCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::uint64_t invalidations = 0;
};

/// \brief Epoch-keyed LRU of solved reports — the serving layer's result
/// cache.
///
/// The logical key is (pool epoch, budget, alpha, solver name, tuning,
/// seed, work-unit cap): every field of the request that the solved report
/// is a deterministic function of, given the pool's data epoch.
/// Mechanically the key is `epoch + '\n' + SolveRequest::ToJson()` —
/// `ToJson` is byte-stable (sorted keys, shortest round-trip doubles) and
/// covers every identity field, so distinct tuples can never collide and a
/// new request field is automatically part of the key. Requests with
/// non-deterministic execution (a wall-clock deadline, a live cancel
/// token, process-stats collection) are never offered to the cache — the
/// caller gates on `PoolPlanContext`'s cacheability rule.
///
/// Epoch handling: entries are keyed *by* their epoch rather than flushed
/// on churn. A pool-epoch bump therefore invalidates exactly the entries
/// whose data changed (the new epoch's lookups miss and re-solve) while
/// in-flight solves on the previous epoch still hit their own entries.
/// Retired-epoch entries age out through LRU; `InvalidateBefore` drops
/// them eagerly when a caller wants the memory back.
///
/// Stored reports have `wall_seconds` zeroed (wall time is excluded from
/// the cached identity); `Lookup` returns a copy with `stats["cache_hit"]
/// = 1` so a hit is visible to the client yet deterministic.
///
/// Thread-safe; one mutex over the map and recency list (lookups copy the
/// report while holding it — reports are small relative to a solve).
class ResultCache {
 public:
  explicit ResultCache(ResultCacheOptions options = {});

  /// True (and fills `*report`) on a hit for (`epoch`, `request_key`).
  bool Lookup(std::uint64_t epoch, const std::string& request_key,
              api::SolveReport* report);

  /// Stores `report` under (`epoch`, `request_key`), zeroing
  /// `wall_seconds` and evicting the least-recently-used entry when full.
  /// Overwrites an existing entry (last writer wins; both writers solved
  /// the same deterministic request, so the values agree).
  void Insert(std::uint64_t epoch, const std::string& request_key,
              const api::SolveReport& report);

  /// Drops every entry with epoch < `epoch` (eager retired-epoch cleanup).
  void InvalidateBefore(std::uint64_t epoch);

  void Clear();

  std::size_t size() const;
  ResultCacheStats stats() const;
  const ResultCacheOptions& options() const { return options_; }

 private:
  struct Entry {
    std::string key;
    std::uint64_t epoch;
    api::SolveReport report;
  };

  static std::string MapKey(std::uint64_t epoch, const std::string& key);

  ResultCacheOptions options_;
  mutable std::mutex mutex_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  ResultCacheStats stats_;
};

}  // namespace jury::serve

#endif  // JURYOPT_SERVE_RESULT_CACHE_H_
