#include "crowd/mc_sim.h"

#include "util/check.h"

namespace jury::crowd {

std::size_t SimulateMcVote(const mc::ConfusionMatrix& confusion,
                           std::size_t truth, Rng* rng) {
  JURY_CHECK(rng != nullptr);
  const std::size_t l = confusion.num_labels();
  JURY_CHECK_LT(truth, l);
  const double u = rng->Uniform();
  double acc = 0.0;
  for (std::size_t k = 0; k < l; ++k) {
    acc += confusion(truth, k);
    if (u < acc) return k;
  }
  return l - 1;  // guard against row sums a hair below 1
}

Result<McWorld> SimulateMcWorld(
    const std::vector<mc::ConfusionMatrix>& confusion, std::size_t num_tasks,
    Rng* rng, const mc::McPrior& prior) {
  if (rng == nullptr) {
    return Status::InvalidArgument("SimulateMcWorld requires an Rng");
  }
  if (confusion.empty()) {
    return Status::InvalidArgument("need at least one worker");
  }
  const std::size_t l = confusion.front().num_labels();
  for (const auto& cm : confusion) {
    JURY_RETURN_NOT_OK(cm.Validate());
    if (cm.num_labels() != l) {
      return Status::InvalidArgument("workers mix label counts");
    }
  }
  mc::McPrior effective = prior.empty() ? mc::UniformMcPrior(l) : prior;
  JURY_RETURN_NOT_OK(mc::ValidateMcPrior(effective, l));

  McWorld world;
  world.confusion = confusion;
  world.dataset.num_workers = confusion.size();
  world.dataset.num_labels = l;
  world.dataset.tasks.resize(num_tasks);
  world.truths.resize(num_tasks);
  for (std::size_t t = 0; t < num_tasks; ++t) {
    // Sample the truth from the prior.
    const double u = rng->Uniform();
    double acc = 0.0;
    std::size_t truth = l - 1;
    for (std::size_t j = 0; j < l; ++j) {
      acc += effective[j];
      if (u < acc) {
        truth = j;
        break;
      }
    }
    world.truths[t] = truth;
    for (std::size_t w = 0; w < confusion.size(); ++w) {
      world.dataset.tasks[t].push_back(
          {w, SimulateMcVote(confusion[w], truth, rng)});
    }
  }
  return world;
}

Result<std::vector<mc::ConfusionMatrix>> EstimateConfusionEmpirical(
    const mc::McDataset& dataset, const std::vector<std::size_t>& truths,
    double smoothing) {
  JURY_RETURN_NOT_OK(dataset.Validate());
  if (truths.size() != dataset.tasks.size()) {
    return Status::InvalidArgument("truths/tasks size mismatch");
  }
  if (smoothing < 0.0) {
    return Status::InvalidArgument("smoothing must be non-negative");
  }
  const std::size_t l = dataset.num_labels;
  for (std::size_t truth : truths) {
    if (truth >= l) return Status::OutOfRange("truth label out of range");
  }

  std::vector<std::vector<double>> counts(
      dataset.num_workers, std::vector<double>(l * l, smoothing));
  for (std::size_t t = 0; t < dataset.tasks.size(); ++t) {
    const std::size_t truth = truths[t];
    for (const mc::McAnswer& a : dataset.tasks[t]) {
      counts[a.worker][truth * l + a.vote] += 1.0;
    }
  }

  std::vector<mc::ConfusionMatrix> out(
      dataset.num_workers, mc::ConfusionMatrix::UniformSpammer(l));
  for (std::size_t w = 0; w < dataset.num_workers; ++w) {
    for (std::size_t j = 0; j < l; ++j) {
      double row_sum = 0.0;
      for (std::size_t k = 0; k < l; ++k) row_sum += counts[w][j * l + k];
      for (std::size_t k = 0; k < l; ++k) {
        out[w].at(j, k) = row_sum > 0.0
                              ? counts[w][j * l + k] / row_sum
                              : 1.0 / static_cast<double>(l);
      }
    }
  }
  return out;
}

}  // namespace jury::crowd
