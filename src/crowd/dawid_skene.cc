#include "crowd/dawid_skene.h"

#include <algorithm>
#include <cmath>

#include "model/worker.h"
#include "util/math.h"

namespace jury::crowd {

Result<DawidSkeneResult> RunDawidSkene(const Campaign& campaign,
                                       const DawidSkeneOptions& options,
                                       double init_quality) {
  if (options.max_iterations <= 0) {
    return Status::InvalidArgument("max_iterations must be positive");
  }
  if (!(options.alpha >= 0.0 && options.alpha <= 1.0)) {
    return Status::InvalidArgument("alpha outside [0,1]");
  }
  if (!(options.clamp_lo > 0.0 && options.clamp_lo < options.clamp_hi &&
        options.clamp_hi < 1.0)) {
    return Status::InvalidArgument("invalid quality clamp range");
  }
  if (!(init_quality > 0.0 && init_quality < 1.0)) {
    return Status::InvalidArgument("init_quality must be in (0,1)");
  }

  const std::size_t num_workers =
      static_cast<std::size_t>(campaign.config.num_workers);
  const std::size_t num_tasks = campaign.tasks.size();

  DawidSkeneResult result;
  result.quality.assign(num_workers, init_quality);
  result.posterior_zero.assign(num_tasks, options.alpha);

  const double log_prior_zero = std::log(EffectiveQuality(options.alpha));
  const double log_prior_one = std::log(EffectiveQuality(1.0 - options.alpha));

  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    result.iterations = iter;

    // E-step: task posteriors from current qualities.
    for (std::size_t t = 0; t < num_tasks; ++t) {
      double log0 = log_prior_zero;
      double log1 = log_prior_one;
      for (const Answer& a : campaign.tasks[t].answers) {
        const double q = EffectiveQuality(result.quality[a.worker]);
        if (a.vote == 0) {
          log0 += std::log(q);
          log1 += std::log(1.0 - q);
        } else {
          log0 += std::log(1.0 - q);
          log1 += std::log(q);
        }
      }
      const double norm = LogAdd(log0, log1);
      result.posterior_zero[t] = std::exp(log0 - norm);
    }

    // M-step: qualities from soft truth assignments.
    double max_change = 0.0;
    std::vector<double> weight(num_workers, 0.0);
    std::vector<double> agree(num_workers, 0.0);
    for (std::size_t t = 0; t < num_tasks; ++t) {
      const double p0 = result.posterior_zero[t];
      for (const Answer& a : campaign.tasks[t].answers) {
        weight[a.worker] += 1.0;
        // Expected agreement with the latent truth.
        agree[a.worker] += (a.vote == 0) ? p0 : (1.0 - p0);
      }
    }
    for (std::size_t w = 0; w < num_workers; ++w) {
      if (weight[w] <= 0.0) continue;
      const double updated =
          Clamp(agree[w] / weight[w], options.clamp_lo, options.clamp_hi);
      max_change = std::max(max_change,
                            std::fabs(updated - result.quality[w]));
      result.quality[w] = updated;
    }

    if (max_change < options.tolerance) {
      result.converged = true;
      break;
    }
  }
  return result;
}

}  // namespace jury::crowd
