#include "crowd/estimators.h"

#include <algorithm>

namespace jury::crowd {
namespace {

Result<std::vector<double>> EstimateOverTasks(
    const Campaign& campaign, const std::vector<std::size_t>& task_indices,
    const EmpiricalEstimatorOptions& options) {
  if (options.smoothing < 0.0) {
    return Status::InvalidArgument("smoothing must be non-negative");
  }
  const std::size_t num_workers =
      static_cast<std::size_t>(campaign.config.num_workers);
  std::vector<double> answered(num_workers, 0.0);
  std::vector<double> correct(num_workers, 0.0);
  for (std::size_t idx : task_indices) {
    if (idx >= campaign.tasks.size()) {
      return Status::OutOfRange("task index out of range");
    }
    const CampaignTask& task = campaign.tasks[idx];
    for (const Answer& a : task.answers) {
      if (a.worker >= num_workers) {
        return Status::OutOfRange("worker index out of range");
      }
      answered[a.worker] += 1.0;
      if (a.vote == task.truth) correct[a.worker] += 1.0;
    }
  }
  std::vector<double> quality(num_workers, options.default_quality);
  for (std::size_t w = 0; w < num_workers; ++w) {
    const double denom = answered[w] + 2.0 * options.smoothing;
    if (denom > 0.0) {
      quality[w] = (correct[w] + options.smoothing) / denom;
    }
  }
  return quality;
}

}  // namespace

Result<std::vector<double>> EstimateQualitiesEmpirical(
    const Campaign& campaign, const EmpiricalEstimatorOptions& options) {
  std::vector<std::size_t> all(campaign.tasks.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  return EstimateOverTasks(campaign, all, options);
}

Result<std::vector<double>> EstimateQualitiesGolden(
    const Campaign& campaign, const std::vector<std::size_t>& golden_tasks,
    const EmpiricalEstimatorOptions& options) {
  return EstimateOverTasks(campaign, golden_tasks, options);
}

}  // namespace jury::crowd
