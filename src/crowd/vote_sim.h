#ifndef JURYOPT_CROWD_VOTE_SIM_H_
#define JURYOPT_CROWD_VOTE_SIM_H_

#include "model/jury.h"
#include "model/votes.h"
#include "util/rng.h"

namespace jury::crowd {

/// Samples the latent truth from the prior: 0 with probability alpha.
int SampleTruth(double alpha, Rng* rng);

/// \brief Samples a voting from the §2.1 worker model: each juror
/// independently votes the truth with probability q_i and the opposite
/// answer otherwise.
Votes SimulateVotes(const Jury& jury, int truth, Rng* rng);

/// Single-worker version of the above.
int SimulateVote(double quality, int truth, Rng* rng);

}  // namespace jury::crowd

#endif  // JURYOPT_CROWD_VOTE_SIM_H_
