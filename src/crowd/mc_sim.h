#ifndef JURYOPT_CROWD_MC_SIM_H_
#define JURYOPT_CROWD_MC_SIM_H_

#include <cstddef>
#include <vector>

#include "multiclass/confusion.h"
#include "multiclass/dawid_skene.h"
#include "util/result.h"
#include "util/rng.h"

namespace jury::crowd {

/// \brief A simulated multi-class labelling world: the dataset (answers
/// without truths, as an estimator would see it), the latent truths, and
/// the latent confusion matrices that generated the votes.
struct McWorld {
  mc::McDataset dataset;
  std::vector<std::size_t> truths;
  std::vector<mc::ConfusionMatrix> confusion;
};

/// Samples one vote from row `truth` of `confusion`.
std::size_t SimulateMcVote(const mc::ConfusionMatrix& confusion,
                           std::size_t truth, Rng* rng);

/// \brief Simulates a dense campaign: `num_tasks` tasks with truths drawn
/// from `prior` (uniform if empty), every worker answering every task
/// through their confusion matrix. The §7 analogue of `SimulateCampaign`.
Result<McWorld> SimulateMcWorld(
    const std::vector<mc::ConfusionMatrix>& confusion, std::size_t num_tasks,
    Rng* rng, const mc::McPrior& prior = {});

/// \brief Ground-truth-based confusion estimation: row j of worker w's
/// estimate is the empirical distribution of w's votes on tasks whose true
/// label is j, with additive smoothing (rows with no mass become uniform).
/// The confusion-matrix analogue of `EstimateQualitiesEmpirical`.
Result<std::vector<mc::ConfusionMatrix>> EstimateConfusionEmpirical(
    const mc::McDataset& dataset, const std::vector<std::size_t>& truths,
    double smoothing = 0.5);

}  // namespace jury::crowd

#endif  // JURYOPT_CROWD_MC_SIM_H_
