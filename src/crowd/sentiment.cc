#include "crowd/sentiment.h"

#include <algorithm>

#include "crowd/estimators.h"

namespace jury::crowd {

Result<SentimentDataset> MakeSentimentDataset(const SentimentConfig& config,
                                              Rng* rng) {
  if (rng == nullptr) {
    return Status::InvalidArgument("MakeSentimentDataset requires an Rng");
  }
  const CampaignConfig& cc = config.campaign;
  const int num_workers = cc.num_workers;
  if (config.experts < 0 || config.sloppy < 0 ||
      config.experts + config.sloppy > num_workers) {
    return Status::InvalidArgument("expert/sloppy counts exceed pool");
  }
  if (config.full_time_workers < 0 || config.one_hit_workers < 0 ||
      config.full_time_workers + config.one_hit_workers > num_workers) {
    return Status::InvalidArgument("activity role counts exceed pool");
  }
  if (cc.num_tasks % cc.tasks_per_hit != 0) {
    return Status::InvalidArgument(
        "num_tasks must be a multiple of tasks_per_hit");
  }
  const int num_hits = cc.num_tasks / cc.tasks_per_hit;
  const std::size_t nw = static_cast<std::size_t>(num_workers);

  // --- Latent quality tiers, shuffled so tiers and activity mix freely.
  std::vector<double> latent;
  latent.reserve(nw);
  // Tier ranges calibrated so the *estimated* qualities (empirical fraction
  // correct, noisy for low-activity workers) reproduce the paper's stats:
  // mean ~0.71, ~40 workers above 0.8, ~10% below 0.6.
  for (int i = 0; i < config.experts; ++i) {
    latent.push_back(rng->Uniform(0.80, 0.92));
  }
  for (int i = 0; i < config.sloppy; ++i) {
    latent.push_back(rng->Uniform(0.44, 0.56));
  }
  while (static_cast<int>(latent.size()) < num_workers) {
    latent.push_back(rng->Uniform(0.62, 0.76));
  }
  rng->Shuffle(&latent);

  // --- Activity quotas: full-timers take every HIT, one-hitters one,
  // the rest split the remaining load evenly.
  const long long total_quota =
      static_cast<long long>(num_hits) * cc.assignments_per_hit;
  const int mid_count =
      num_workers - config.full_time_workers - config.one_hit_workers;
  long long rest = total_quota -
                   static_cast<long long>(config.full_time_workers) * num_hits -
                   config.one_hit_workers;
  if (rest < 0 || (mid_count == 0 && rest != 0) ||
      (mid_count > 0 && rest > static_cast<long long>(mid_count) * num_hits)) {
    return Status::InvalidArgument(
        "activity roles cannot realize the campaign's total assignments");
  }
  std::vector<int> quota;
  quota.reserve(nw);
  for (int i = 0; i < config.full_time_workers; ++i) quota.push_back(num_hits);
  for (int i = 0; i < config.one_hit_workers; ++i) quota.push_back(1);
  if (mid_count > 0) {
    const int base = static_cast<int>(rest / mid_count);
    int extra = static_cast<int>(rest % mid_count);
    if (base > num_hits || (base == num_hits && extra > 0)) {
      return Status::InvalidArgument("mid-tier quota exceeds #HITs");
    }
    for (int i = 0; i < mid_count; ++i) {
      quota.push_back(base + (extra > 0 ? 1 : 0));
      if (extra > 0) --extra;
    }
  }
  rng->Shuffle(&quota);

  JURY_ASSIGN_OR_RETURN(Campaign campaign,
                        SimulateCampaign(cc, latent, quota, rng));

  SentimentDataset dataset;
  dataset.campaign = std::move(campaign);
  JURY_ASSIGN_OR_RETURN(dataset.estimated_quality,
                        EstimateQualitiesEmpirical(dataset.campaign));

  double sum = 0.0;
  for (double q : dataset.estimated_quality) {
    sum += q;
    if (q > 0.8) ++dataset.workers_above_08;
    if (q < 0.6) ++dataset.workers_below_06;
  }
  dataset.mean_estimated_quality = sum / static_cast<double>(nw);
  return dataset;
}

}  // namespace jury::crowd
