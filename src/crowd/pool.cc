#include "crowd/pool.h"

namespace jury::crowd {

Result<std::vector<Worker>> GeneratePool(const PoolConfig& config, Rng* rng) {
  if (rng == nullptr) {
    return Status::InvalidArgument("GeneratePool requires an Rng");
  }
  if (config.num_workers < 0) {
    return Status::InvalidArgument("num_workers must be non-negative");
  }
  if (!(config.quality_lo >= 0.0 && config.quality_hi <= 1.0 &&
        config.quality_lo <= config.quality_hi)) {
    return Status::InvalidArgument("quality truncation bounds invalid");
  }
  if (!(config.cost_lo >= 0.0 && config.cost_lo <= config.cost_hi)) {
    return Status::InvalidArgument("cost truncation bounds invalid");
  }
  std::vector<Worker> pool;
  pool.reserve(static_cast<std::size_t>(config.num_workers));
  for (int i = 0; i < config.num_workers; ++i) {
    const double q =
        rng->TruncatedGaussian(config.quality_mean, config.quality_stddev,
                               config.quality_lo, config.quality_hi);
    const double c = rng->TruncatedGaussian(
        config.cost_mean, config.cost_stddev, config.cost_lo, config.cost_hi);
    pool.emplace_back("w" + std::to_string(i), q, c);
  }
  return pool;
}

}  // namespace jury::crowd
