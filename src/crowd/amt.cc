#include "crowd/amt.h"

#include <algorithm>
#include <numeric>

#include "crowd/vote_sim.h"
#include "util/check.h"

namespace jury::crowd {

std::size_t Campaign::AnswerCount(std::size_t w) const {
  std::size_t count = 0;
  for (const CampaignTask& task : tasks) {
    for (const Answer& a : task.answers) {
      if (a.worker == w) ++count;
    }
  }
  return count;
}

Result<Campaign> SimulateCampaign(const CampaignConfig& config,
                                  const std::vector<double>& latent_quality,
                                  const std::vector<int>& hit_quota,
                                  Rng* rng) {
  if (rng == nullptr) {
    return Status::InvalidArgument("SimulateCampaign requires an Rng");
  }
  if (config.num_tasks <= 0 || config.tasks_per_hit <= 0 ||
      config.assignments_per_hit <= 0 || config.num_workers <= 0) {
    return Status::InvalidArgument("campaign sizes must be positive");
  }
  if (config.num_tasks % config.tasks_per_hit != 0) {
    return Status::InvalidArgument(
        "num_tasks must be a multiple of tasks_per_hit");
  }
  const int num_hits = config.num_tasks / config.tasks_per_hit;
  const std::size_t num_workers =
      static_cast<std::size_t>(config.num_workers);
  if (latent_quality.size() != num_workers ||
      hit_quota.size() != num_workers) {
    return Status::InvalidArgument(
        "latent_quality/hit_quota must have num_workers entries");
  }
  if (config.assignments_per_hit > config.num_workers) {
    return Status::InvalidArgument(
        "assignments_per_hit cannot exceed num_workers");
  }
  long long quota_sum = 0;
  for (int q : hit_quota) {
    if (q < 0 || q > num_hits) {
      return Status::InvalidArgument("each hit quota must lie in [0, #HITs]");
    }
    quota_sum += q;
  }
  const long long needed =
      static_cast<long long>(num_hits) * config.assignments_per_hit;
  if (quota_sum != needed) {
    return Status::InvalidArgument(
        "hit quotas must sum to #HITs * assignments_per_hit (" +
        std::to_string(needed) + "), got " + std::to_string(quota_sum));
  }

  Campaign campaign;
  campaign.config = config;
  campaign.latent_quality = latent_quality;
  campaign.hits_taken.assign(num_workers, 0);
  campaign.tasks.resize(static_cast<std::size_t>(config.num_tasks));
  for (CampaignTask& task : campaign.tasks) {
    task.truth = SampleTruth(config.alpha, rng);
  }

  // Deal workers to HITs by largest remaining quota (random tie order).
  // Feasibility: each quota <= #HITs and totals match, so the greedy deal
  // never runs out of distinct workers for a HIT (Gale–Ryser condition).
  std::vector<int> remaining = hit_quota;
  for (int h = 0; h < num_hits; ++h) {
    std::vector<std::size_t> order(num_workers);
    std::iota(order.begin(), order.end(), std::size_t{0});
    rng->Shuffle(&order);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return remaining[a] > remaining[b];
                     });
    // Quota left must still be spreadable over the HITs left; workers whose
    // remaining quota equals the remaining HIT count are mandatory.
    std::vector<std::size_t> members;
    const int hits_left = num_hits - h;
    for (std::size_t w : order) {
      if (static_cast<int>(members.size()) == config.assignments_per_hit) {
        break;
      }
      if (remaining[w] <= 0) continue;
      members.push_back(w);
    }
    // Mandatory workers (quota == hits_left) that the size cutoff skipped
    // must displace optional ones.
    for (std::size_t w = 0; w < num_workers; ++w) {
      if (remaining[w] == hits_left &&
          std::find(members.begin(), members.end(), w) == members.end()) {
        // Replace the member with the smallest remaining quota.
        auto victim = std::min_element(
            members.begin(), members.end(), [&](std::size_t a, std::size_t b) {
              return remaining[a] < remaining[b];
            });
        JURY_CHECK(victim != members.end());
        *victim = w;
      }
    }
    JURY_CHECK_EQ(static_cast<int>(members.size()),
                  config.assignments_per_hit);
    for (std::size_t w : members) {
      --remaining[w];
      ++campaign.hits_taken[w];
    }

    // Every member answers every task of the HIT; per-task answer order is
    // an independent shuffle (the "answering sequence" of §6.2.3).
    for (int tt = 0; tt < config.tasks_per_hit; ++tt) {
      const std::size_t task_idx =
          static_cast<std::size_t>(h * config.tasks_per_hit + tt);
      CampaignTask& task = campaign.tasks[task_idx];
      std::vector<std::size_t> sequence = members;
      rng->Shuffle(&sequence);
      task.answers.reserve(sequence.size());
      for (std::size_t w : sequence) {
        Answer answer;
        answer.worker = w;
        answer.vote = SimulateVote(latent_quality[w], task.truth, rng);
        task.answers.push_back(answer);
      }
    }
  }
  return campaign;
}

}  // namespace jury::crowd
