#ifndef JURYOPT_CROWD_ESTIMATORS_H_
#define JURYOPT_CROWD_ESTIMATORS_H_

#include <cstddef>
#include <vector>

#include "crowd/amt.h"
#include "util/result.h"

namespace jury::crowd {

/// \brief Worker-quality estimators (§8 "Worker Model"): JSP assumes
/// qualities are known in advance; in practice they come from answering
/// history. These estimators turn a `Campaign`'s collected answers into the
/// quality vector JSP consumes.

/// \brief Empirical estimator used by the paper for its real dataset
/// (§6.2.1): "the proportion of correctly answered questions by the worker
/// in all her answered questions", judged against ground truth.
struct EmpiricalEstimatorOptions {
  /// Additive (Laplace) smoothing: (correct + s) / (answered + 2 s). The
  /// paper uses s = 0; smoothing keeps a never-correct worker away from the
  /// degenerate quality 0.
  double smoothing = 0.0;
  /// Quality assigned to workers with no answers at all.
  double default_quality = 0.5;
};

/// Estimates every worker's quality against the campaign's ground truths.
Result<std::vector<double>> EstimateQualitiesEmpirical(
    const Campaign& campaign, const EmpiricalEstimatorOptions& options = {});

/// \brief Golden-question estimator (CDAS [25]): only tasks whose indices
/// appear in `golden_tasks` (questions with planted known answers) count
/// towards the estimate; everything else about the campaign stays hidden.
Result<std::vector<double>> EstimateQualitiesGolden(
    const Campaign& campaign, const std::vector<std::size_t>& golden_tasks,
    const EmpiricalEstimatorOptions& options = {});

}  // namespace jury::crowd

#endif  // JURYOPT_CROWD_ESTIMATORS_H_
