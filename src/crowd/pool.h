#ifndef JURYOPT_CROWD_POOL_H_
#define JURYOPT_CROWD_POOL_H_

#include <vector>

#include "model/worker.h"
#include "util/result.h"
#include "util/rng.h"

namespace jury::crowd {

/// \brief Synthetic worker-pool generator reproducing the paper's setup
/// (§6.1.1, following Cao et al.): qualities `q_i ~ N(mu, sigma^2)` and
/// costs `c_i ~ N(cost_mu, cost_sigma^2)`.
///
/// Two departures the paper leaves unspecified (DESIGN.md substitution #5):
///  * qualities are truncated into [quality_lo, quality_hi]; the default
///    upper bound 0.99 keeps phi(q) finite and stays below the §4.4
///    high-quality escape hatch. The lower bound is NOT 0.5 — low-quality
///    workers are part of what Fig. 6(a)/8(a) stress at mu = 0.5.
///  * costs are truncated below at cost_lo (a Gaussian with mean 0.05 has
///    negative mass).
struct PoolConfig {
  int num_workers = 50;       // N
  double quality_mean = 0.7;  // mu
  /// Paper gives the variance sigma^2 = 0.05; this is the *stddev*.
  double quality_stddev = 0.22360679774997896;  // sqrt(0.05)
  double quality_lo = 0.01;
  double quality_hi = 0.99;
  double cost_mean = 0.05;  // mu-hat
  double cost_stddev = 0.2;  // sigma-hat (varied in Fig. 6(d)/10(c))
  double cost_lo = 0.01;
  double cost_hi = 1e9;
};

/// Draws a candidate worker pool from `config`; ids are "w0", "w1", ...
Result<std::vector<Worker>> GeneratePool(const PoolConfig& config, Rng* rng);

}  // namespace jury::crowd

#endif  // JURYOPT_CROWD_POOL_H_
