#ifndef JURYOPT_CROWD_AMT_H_
#define JURYOPT_CROWD_AMT_H_

#include <cstddef>
#include <vector>

#include "util/result.h"
#include "util/rng.h"

namespace jury::crowd {

/// \brief One collected answer: which worker voted what, in arrival order.
struct Answer {
  std::size_t worker = 0;  // index into the campaign's worker list
  int vote = 0;            // 0 or 1
};

/// \brief A decision-making task inside a campaign.
struct CampaignTask {
  int truth = 0;                 // latent ground truth
  std::vector<Answer> answers;   // in answering-sequence order
};

/// \brief Configuration of an AMT-style campaign (§6.2.1): tasks are batched
/// `tasks_per_hit` at a time into HITs, each HIT is assigned to
/// `assignments_per_hit` distinct workers, and every assigned worker answers
/// every task in the HIT.
struct CampaignConfig {
  int num_tasks = 600;
  int tasks_per_hit = 20;
  int assignments_per_hit = 20;  // m
  int num_workers = 128;
  /// Prior used to draw ground truths (the paper's dataset is balanced).
  double alpha = 0.5;
};

/// \brief A fully simulated campaign: latent worker qualities, HIT
/// membership, and per-task answer sequences.
struct Campaign {
  CampaignConfig config;
  /// Latent (true) per-worker qualities used to simulate votes.
  std::vector<double> latent_quality;
  /// Number of HITs each worker took (activity profile).
  std::vector<int> hits_taken;
  /// All tasks with their ordered answers.
  std::vector<CampaignTask> tasks;

  /// Answers given by worker w across the campaign.
  std::size_t AnswerCount(std::size_t w) const;
};

/// \brief Simulates a campaign. `latent_quality` must have
/// `config.num_workers` entries; `hit_quota[w]` fixes how many HITs worker w
/// takes and must sum to `num_hits * assignments_per_hit` with each entry in
/// [0, num_hits].
///
/// HIT membership is dealt greedily by remaining quota (largest first, ties
/// randomized), which always realizes a feasible quota vector; within each
/// task the answer order is a uniform shuffle of the HIT's workers.
Result<Campaign> SimulateCampaign(const CampaignConfig& config,
                                  const std::vector<double>& latent_quality,
                                  const std::vector<int>& hit_quota,
                                  Rng* rng);

}  // namespace jury::crowd

#endif  // JURYOPT_CROWD_AMT_H_
