#ifndef JURYOPT_CROWD_SENTIMENT_H_
#define JURYOPT_CROWD_SENTIMENT_H_

#include <vector>

#include "crowd/amt.h"
#include "util/result.h"
#include "util/rng.h"

namespace jury::crowd {

/// \brief Synthetic stand-in for the paper's AMT sentiment-analysis dataset
/// (§6.2.1), calibrated to every statistic it reports — DESIGN.md
/// substitution #1:
///   * 600 decision-making tasks (tweet sentiment positive / not);
///   * 20 questions per HIT, m = 20 assignments, so 30 HITs and 12,000
///     answers from 128 workers;
///   * mean worker quality ~ 0.71, ~40 of 128 workers above 0.8, ~10%
///     below 0.6;
///   * two workers answer every question, 67 answer exactly one HIT
///     (20 questions), the rest share the remaining load (~8 HITs each);
///   * balanced ground truth, alpha = 0.5.
struct SentimentConfig {
  CampaignConfig campaign;  // defaults already match the paper
  int experts = 40;         // latent quality in [0.80, 0.92]
  int sloppy = 13;          // latent quality in [0.44, 0.56] (~10%)
  // remaining workers: latent quality in [0.62, 0.76]
  int full_time_workers = 2;   // take every HIT
  int one_hit_workers = 67;    // take exactly one HIT
};

/// \brief Campaign plus the paper's derived per-worker statistics.
struct SentimentDataset {
  Campaign campaign;
  /// Empirical qualities (fraction of correct answers), as used by the
  /// paper's real-data JSP experiments.
  std::vector<double> estimated_quality;
  double mean_estimated_quality = 0.0;
  int workers_above_08 = 0;
  int workers_below_06 = 0;
};

/// Simulates the calibrated campaign and computes empirical qualities.
Result<SentimentDataset> MakeSentimentDataset(const SentimentConfig& config,
                                              Rng* rng);

}  // namespace jury::crowd

#endif  // JURYOPT_CROWD_SENTIMENT_H_
