#ifndef JURYOPT_CROWD_DAWID_SKENE_H_
#define JURYOPT_CROWD_DAWID_SKENE_H_

#include <cstddef>
#include <vector>

#include "crowd/amt.h"
#include "util/result.h"

namespace jury::crowd {

/// \brief Binary Dawid–Skene EM [1, 18]: estimates worker qualities and
/// per-task truth posteriors from answers alone, with NO access to ground
/// truth — the standard bootstrap when the answering history lacks golden
/// labels (§8 "Worker Model").
struct DawidSkeneOptions {
  int max_iterations = 100;
  /// Convergence threshold on the max absolute quality change per round.
  double tolerance = 1e-6;
  /// Prior Pr(t = 0) used in the E-step.
  double alpha = 0.5;
  /// Qualities are clamped into [clamp_lo, clamp_hi] between rounds to keep
  /// the M-step away from degenerate 0/1 fixed points.
  double clamp_lo = 0.05;
  double clamp_hi = 0.99;
};

/// \brief EM output: qualities, posteriors, and diagnostics.
struct DawidSkeneResult {
  std::vector<double> quality;           // per worker
  std::vector<double> posterior_zero;    // per task: Pr(t = 0 | answers)
  int iterations = 0;
  bool converged = false;
};

/// Runs EM over the campaign's answers (ground truths are ignored).
///
/// Label-switching caveat: with a symmetric prior the likelihood is
/// invariant under flipping all qualities and truths; the estimate is
/// anchored by initializing qualities at `init_quality` > 0.5 (majority
/// agreement), the usual convention.
Result<DawidSkeneResult> RunDawidSkene(const Campaign& campaign,
                                       const DawidSkeneOptions& options = {},
                                       double init_quality = 0.7);

}  // namespace jury::crowd

#endif  // JURYOPT_CROWD_DAWID_SKENE_H_
