#include "crowd/vote_sim.h"

#include "util/check.h"

namespace jury::crowd {

int SampleTruth(double alpha, Rng* rng) {
  JURY_CHECK(rng != nullptr);
  return rng->Bernoulli(alpha) ? 0 : 1;
}

int SimulateVote(double quality, int truth, Rng* rng) {
  JURY_CHECK(rng != nullptr);
  JURY_CHECK(truth == 0 || truth == 1);
  return rng->Bernoulli(quality) ? truth : 1 - truth;
}

Votes SimulateVotes(const Jury& jury, int truth, Rng* rng) {
  Votes votes(jury.size());
  for (std::size_t i = 0; i < jury.size(); ++i) {
    votes[i] = static_cast<std::uint8_t>(
        SimulateVote(jury.worker(i).quality, truth, rng));
  }
  return votes;
}

}  // namespace jury::crowd
