#include "core/branch_bound.h"

#include <algorithm>
#include <memory>
#include <numeric>
#include <span>
#include <vector>

#include "core/frontier.h"
#include "model/sharded_pool.h"
#include "model/worker_pool_view.h"

namespace jury {
namespace {

constexpr double kTieTol = kScoreEquivalenceTol;

class Searcher {
 public:
  Searcher(const JspInstance& instance, const WorkerPoolView& view,
           const JqObjective& objective, const BranchBoundOptions& options,
           BranchBoundStats* stats)
      : instance_(instance),
        view_(view),
        objective_(objective),
        options_(options),
        stats_(stats),
        governor_(options.cancel_token, options.max_work_units) {
    const std::size_t n = instance.num_candidates();
    order_.resize(n);
    std::iota(order_.begin(), order_.end(), std::size_t{0});
    ShardedWorkerPool::KeyColumn frontier_key{};
    if (options.order_by_marginal_gain && n > 0 &&
        FrontierUsable(options.sharded_pool, &view_, objective,
                       options.frontier_k, &frontier_key)) {
      // Frontier ordering (lossy by construction — the ordering is a
      // search heuristic, never part of the admissible bound, so the
      // optimum is unchanged): real marginal gains for the slate
      // candidates, key order for the pruned tail. Only the root-level
      // scan cost changes; the DFS itself explores the same admissible
      // space.
      FrontierOptions frontier_options;
      frontier_options.k = options.frontier_k;
      frontier_options.exact = false;
      FrontierScanStats frontier_stats;
      const auto scan =
          objective.StartSession(view_, instance.alpha, /*incremental=*/true);
      const FrontierScanResult front = FrontierScanAdds(
          *scan, *options.sharded_pool, frontier_key,
          std::vector<char>(n, 0), /*jury_cost=*/0.0, instance.budget,
          frontier_options, &frontier_stats);
      FlushFrontierStats(frontier_stats);
      std::vector<char> scanned(n, 0);
      std::vector<double> gains(n);
      for (std::size_t j = 0; j < front.indices.size(); ++j) {
        scanned[front.indices[j]] = 1;
        gains[front.indices[j]] = front.scores[j];
      }
      const std::span<const double> keys =
          options.sharded_pool->keys(frontier_key);
      std::stable_sort(order_.begin(), order_.end(),
                       [&](std::size_t a, std::size_t b) {
                         // Scanned candidates first, by true gain; the
                         // pruned tail by the admissible key.
                         if (scanned[a] != scanned[b]) {
                           return scanned[a] > scanned[b];
                         }
                         if (scanned[a]) return gains[a] > gains[b];
                         return keys[a] > keys[b];
                       });
    } else if (options.order_by_marginal_gain && n > 0) {
      // Candidate ordering through the unified batched scan: every
      // single-worker marginal score in one contiguous `ScoreAddBatch`
      // pass against the empty jury. Always the delta-update session —
      // the ordering is a deterministic heuristic shared by both
      // evaluation paths (see BranchBoundOptions).
      std::vector<double> gains(n);
      const auto scan =
          objective.StartSession(view_, instance.alpha, /*incremental=*/true);
      scan->ScoreAddBatch(order_.data(), n, gains.data());
      std::stable_sort(order_.begin(), order_.end(),
                       [&](std::size_t a, std::size_t b) {
                         return gains[a] > gains[b];
                       });
    } else {
      const std::span<const double> quality = view_.quality();
      std::stable_sort(order_.begin(), order_.end(),
                       [&](std::size_t a, std::size_t b) {
                         return quality[a] > quality[b];
                       });
    }
    best_jq_ = objective.EmptyJq(instance.alpha);
    best_cost_ = 0.0;
  }

  Status Run() {
    if (options_.use_incremental) {
      // The session tracks the Lemma-1 "optimistic" jury: the current
      // selection plus every still-undecided worker. At the root that is
      // the whole pool.
      session_ = objective_.StartSession(view_, instance_.alpha, true);
      for (std::size_t idx : order_) {
        session_->ScoreAdd(view_.worker(idx));
        session_->Commit();
        session_members_.push_back(idx);
      }
    }
    JURY_RETURN_NOT_OK(Dfs(0));
    return Status::OK();
  }

  JspSolution Solution() const {
    JspSolution out;
    out.selected = best_selected_;
    std::sort(out.selected.begin(), out.selected.end());
    out.jq = best_jq_;
    out.cost = best_cost_;
    return out;
  }

  const WorkGovernor& governor() const { return governor_; }

 private:
  double Evaluate(const std::vector<std::size_t>& selected) const {
    Jury jury;
    for (std::size_t idx : selected) jury.Add(instance_.candidates[idx]);
    return objective_.Evaluate(jury, instance_.alpha);
  }

  void Offer(double jq) {
    if (jq > best_jq_ + kTieTol ||
        (jq > best_jq_ - kTieTol && cost_ < best_cost_)) {
      best_jq_ = jq;
      best_cost_ = cost_;
      best_selected_ = selected_;
    }
  }

  /// In the incremental mode the session holds selection ∪ undecided
  /// suffix at every node: at the leaf that is exactly the selection, and
  /// at an inner node it is exactly the Lemma-1 bound jury.
  double Bound(std::size_t depth) {
    if (session_ != nullptr) return session_->current_jq();
    std::vector<std::size_t> optimistic = selected_;
    for (std::size_t d = depth; d < order_.size(); ++d) {
      optimistic.push_back(order_[d]);
    }
    return Evaluate(optimistic);
  }

  void SessionRemove(std::size_t candidate) {
    const auto it = std::find(session_members_.begin(),
                              session_members_.end(), candidate);
    session_->ScoreRemove(
        static_cast<std::size_t>(it - session_members_.begin()));
    session_->Commit();
    session_members_.erase(it);
  }

  void SessionReAdd(std::size_t candidate) {
    session_->ScoreAdd(view_.worker(candidate));
    session_->Commit();
    session_members_.push_back(candidate);
  }

  Status Dfs(std::size_t depth) {
    // The check site: one explored node is one work unit. A governor
    // stop latches `stopped_` and unwinds the recursion *normally* —
    // every pending exclude-branch backtrack still re-adds its worker,
    // so the session stays consistent and the incumbent is returned as
    // the anytime result. Unlike `max_nodes` below, which stays a hard
    // error (a guard against pathological instances, relied on by
    // callers), a governor stop is a success.
    if (stopped_) return Status::OK();
    if (governor_.Tick() != StopReason::kNone) {
      stopped_ = true;
      return Status::OK();
    }
    if (stats_ != nullptr) ++stats_->nodes_explored;
    if (++nodes_ > options_.max_nodes) {
      return Status::ResourceExhausted(
          "branch-and-bound node budget exceeded");
    }
    if (depth == order_.size()) {
      double leaf_jq;
      if (selected_.empty()) {
        leaf_jq = objective_.EmptyJq(instance_.alpha);
      } else if (session_ != nullptr) {
        leaf_jq = session_->current_jq();  // suffix is empty here
      } else {
        leaf_jq = Evaluate(selected_);
      }
      Offer(leaf_jq);
      return Status::OK();
    }

    // Lemma-1 upper bound: everything still undecided joins for free.
    const double bound = Bound(depth);
    if (bound < best_jq_ - kTieTol) {
      if (stats_ != nullptr) ++stats_->nodes_pruned_bound;
      return Status::OK();
    }

    const std::size_t candidate = order_[depth];
    const double c = instance_.candidates[candidate].cost;
    // Include branch first: deep good incumbents tighten the bound early.
    // The bound jury is unchanged on this branch, so the session carries
    // straight through.
    if (cost_ + c <= instance_.budget) {
      selected_.push_back(candidate);
      cost_ += c;
      JURY_RETURN_NOT_OK(Dfs(depth + 1));
      cost_ -= c;
      selected_.pop_back();
    } else if (stats_ != nullptr) {
      ++stats_->nodes_pruned_budget;
    }
    // Exclude branch: the candidate leaves the bound jury — one delta
    // removal, undone on backtrack.
    if (session_ != nullptr) {
      SessionRemove(candidate);
      const Status status = Dfs(depth + 1);
      SessionReAdd(candidate);
      return status;
    }
    return Dfs(depth + 1);
  }

  const JspInstance& instance_;
  const WorkerPoolView& view_;
  const JqObjective& objective_;
  const BranchBoundOptions& options_;
  BranchBoundStats* stats_;
  std::unique_ptr<IncrementalJqEvaluator> session_;
  std::vector<std::size_t> session_members_;
  std::vector<std::size_t> order_;
  std::vector<std::size_t> selected_;
  double cost_ = 0.0;
  std::size_t nodes_ = 0;
  WorkGovernor governor_;
  bool stopped_ = false;
  double best_jq_;
  double best_cost_;
  std::vector<std::size_t> best_selected_;
};

}  // namespace

Status BranchBoundOptions::Validate() const {
  if (max_nodes == 0) {
    return Status::InvalidArgument("max_nodes must be >= 1");
  }
  return Status::OK();
}

Result<JspSolution> SolveBranchAndBound(const JspInstance& instance,
                                        const JqObjective& objective,
                                        const BranchBoundOptions& options,
                                        BranchBoundStats* stats) {
  JURY_RETURN_NOT_OK(instance.Validate());
  const WorkerPoolView view(instance.candidates);
  return SolveBranchAndBound(instance, view, objective, options, stats);
}

Result<JspSolution> SolveBranchAndBound(const JspInstance& instance,
                                        const WorkerPoolView& view,
                                        const JqObjective& objective,
                                        const BranchBoundOptions& options,
                                        BranchBoundStats* stats) {
  JURY_RETURN_NOT_OK(options.Validate());
  if (!objective.monotone_in_size()) {
    return Status::InvalidArgument(
        "branch-and-bound requires a monotone objective (Lemma 1)");
  }
  if (stats != nullptr) *stats = BranchBoundStats{};
  if (options.termination != nullptr) *options.termination = TerminationInfo{};
  Searcher searcher(instance, view, objective, options, stats);
  JURY_RETURN_NOT_OK(searcher.Run());
  if (options.termination != nullptr) {
    options.termination->MergeStrand(searcher.governor().reason(),
                                     searcher.governor().work_done());
  }
  return searcher.Solution();
}

}  // namespace jury
