#include "core/branch_bound.h"

#include <algorithm>
#include <numeric>

namespace jury {
namespace {

constexpr double kTieTol = 1e-12;

class Searcher {
 public:
  Searcher(const JspInstance& instance, const JqObjective& objective,
           const BranchBoundOptions& options, BranchBoundStats* stats)
      : instance_(instance),
        objective_(objective),
        options_(options),
        stats_(stats) {
    order_.resize(instance.num_candidates());
    std::iota(order_.begin(), order_.end(), std::size_t{0});
    std::stable_sort(order_.begin(), order_.end(),
                     [&](std::size_t a, std::size_t b) {
                       return instance.candidates[a].quality >
                              instance.candidates[b].quality;
                     });
    best_jq_ = EmptyJuryJq(instance.alpha);
    best_cost_ = 0.0;
  }

  Status Run() {
    JURY_RETURN_NOT_OK(Dfs(0));
    return Status::OK();
  }

  JspSolution Solution() const {
    JspSolution out;
    out.selected = best_selected_;
    std::sort(out.selected.begin(), out.selected.end());
    out.jq = best_jq_;
    out.cost = best_cost_;
    return out;
  }

 private:
  double Evaluate(const std::vector<std::size_t>& selected) const {
    Jury jury;
    for (std::size_t idx : selected) jury.Add(instance_.candidates[idx]);
    return objective_.Evaluate(jury, instance_.alpha);
  }

  void Offer(double jq) {
    if (jq > best_jq_ + kTieTol ||
        (jq > best_jq_ - kTieTol && cost_ < best_cost_)) {
      best_jq_ = jq;
      best_cost_ = cost_;
      best_selected_ = selected_;
    }
  }

  Status Dfs(std::size_t depth) {
    if (stats_ != nullptr) ++stats_->nodes_explored;
    if (++nodes_ > options_.max_nodes) {
      return Status::ResourceExhausted(
          "branch-and-bound node budget exceeded");
    }
    if (depth == order_.size()) {
      Offer(selected_.empty() ? EmptyJuryJq(instance_.alpha)
                              : Evaluate(selected_));
      return Status::OK();
    }

    // Lemma-1 upper bound: everything still undecided joins for free.
    std::vector<std::size_t> optimistic = selected_;
    for (std::size_t d = depth; d < order_.size(); ++d) {
      optimistic.push_back(order_[d]);
    }
    const double bound = Evaluate(optimistic);
    if (bound < best_jq_ - kTieTol) {
      if (stats_ != nullptr) ++stats_->nodes_pruned_bound;
      return Status::OK();
    }

    const std::size_t candidate = order_[depth];
    const double c = instance_.candidates[candidate].cost;
    // Include branch first: deep good incumbents tighten the bound early.
    if (cost_ + c <= instance_.budget) {
      selected_.push_back(candidate);
      cost_ += c;
      JURY_RETURN_NOT_OK(Dfs(depth + 1));
      cost_ -= c;
      selected_.pop_back();
    } else if (stats_ != nullptr) {
      ++stats_->nodes_pruned_budget;
    }
    return Dfs(depth + 1);  // exclude branch
  }

  const JspInstance& instance_;
  const JqObjective& objective_;
  const BranchBoundOptions& options_;
  BranchBoundStats* stats_;
  std::vector<std::size_t> order_;
  std::vector<std::size_t> selected_;
  double cost_ = 0.0;
  std::size_t nodes_ = 0;
  double best_jq_;
  double best_cost_;
  std::vector<std::size_t> best_selected_;
};

}  // namespace

Result<JspSolution> SolveBranchAndBound(const JspInstance& instance,
                                        const JqObjective& objective,
                                        const BranchBoundOptions& options,
                                        BranchBoundStats* stats) {
  JURY_RETURN_NOT_OK(instance.Validate());
  if (!objective.monotone_in_size()) {
    return Status::InvalidArgument(
        "branch-and-bound requires a monotone objective (Lemma 1)");
  }
  if (stats != nullptr) *stats = BranchBoundStats{};
  Searcher searcher(instance, objective, options, stats);
  JURY_RETURN_NOT_OK(searcher.Run());
  return searcher.Solution();
}

}  // namespace jury
