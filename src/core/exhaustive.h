#ifndef JURYOPT_CORE_EXHAUSTIVE_H_
#define JURYOPT_CORE_EXHAUSTIVE_H_

#include "core/jsp.h"
#include "core/objective.h"
#include "core/solver_options.h"
#include "util/result.h"

namespace jury {

class WorkerPoolView;

/// \brief Options for the brute-force JSP solver.
struct ExhaustiveOptions : SolverOptions {
  /// Hard cap on the candidate count (2^N subsets are enumerated).
  /// Must stay within [1, 62]: subsets are 64-bit masks.
  std::size_t max_candidates = 22;
  /// Walk the subsets in Gray-code order, so consecutive juries differ by
  /// one worker and each is scored by a single session add/remove delta
  /// update instead of a from-scratch evaluation. Disable to recover the
  /// original ascending-mask sweep (always serial — it is the reference
  /// path).
  ///
  /// With `num_threads != 1` (and enough candidates) the Gray-code sweep
  /// is partitioned: the top bits of the subset mask are fixed per shard
  /// — the shard count depends only on N, never on the thread count — and
  /// each shard walks the Gray code of its low bits on its own session.
  /// Shard-local incumbents are merged serially in shard order under the
  /// same tie-break (`Improves`), which is visit-order independent, so
  /// every thread count returns the same jury as the serial sweep.
  bool use_incremental = true;

  /// Range-checks `max_candidates` (the subset masks are 64-bit);
  /// InvalidArgument otherwise. Called at every solve entry.
  Status Validate() const;
};

/// \brief Exact JSP by enumerating every feasible jury (the paper's
/// reference point for Fig. 7(a) and Table 3, where N = 11).
///
/// For monotone objectives (Lemma 1), only maximal feasible juries need the
/// objective evaluated — any non-maximal jury is dominated by a superset —
/// which prunes most of the 2^N evaluations. Returns OutOfRange when N
/// exceeds `max_candidates`.
Result<JspSolution> SolveExhaustive(const JspInstance& instance,
                                    const JqObjective& objective,
                                    const ExhaustiveOptions& options = {});

/// Planned-pool overload (see the annealing planned overload for the
/// contract): pool validation and the columnar view are the caller's.
Result<JspSolution> SolveExhaustive(const JspInstance& instance,
                                    const WorkerPoolView& view,
                                    const JqObjective& objective,
                                    const ExhaustiveOptions& options = {});

}  // namespace jury

#endif  // JURYOPT_CORE_EXHAUSTIVE_H_
