#ifndef JURYOPT_CORE_EXHAUSTIVE_H_
#define JURYOPT_CORE_EXHAUSTIVE_H_

#include "core/jsp.h"
#include "core/objective.h"
#include "util/result.h"

namespace jury {

/// \brief Options for the brute-force JSP solver.
struct ExhaustiveOptions {
  /// Hard cap on the candidate count (2^N subsets are enumerated).
  std::size_t max_candidates = 22;
  /// Walk the subsets in Gray-code order, so consecutive juries differ by
  /// one worker and each is scored by a single session add/remove delta
  /// update instead of a from-scratch evaluation. Disable to recover the
  /// original ascending-mask sweep.
  bool use_incremental = true;
};

/// \brief Exact JSP by enumerating every feasible jury (the paper's
/// reference point for Fig. 7(a) and Table 3, where N = 11).
///
/// For monotone objectives (Lemma 1), only maximal feasible juries need the
/// objective evaluated — any non-maximal jury is dominated by a superset —
/// which prunes most of the 2^N evaluations. Returns OutOfRange when N
/// exceeds `max_candidates`.
Result<JspSolution> SolveExhaustive(const JspInstance& instance,
                                    const JqObjective& objective,
                                    const ExhaustiveOptions& options = {});

}  // namespace jury

#endif  // JURYOPT_CORE_EXHAUSTIVE_H_
