#include "core/budget_table.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/cancellation.h"
#include "util/fault_injection.h"
#include "util/scheduler.h"
#include "util/table.h"

namespace jury {

Result<std::vector<BudgetQualityRow>> BuildBudgetQualityTable(
    const std::vector<Worker>& candidates, const std::vector<double>& budgets,
    double alpha, Rng* rng, const OptjsOptions& options,
    const BudgetTableOptions& table_options) {
  if (rng == nullptr) {
    return Status::InvalidArgument("BuildBudgetQualityTable requires an Rng");
  }
  // Rows are independent solves that run as one region on the process-wide
  // scheduler. Each row gets its own rng stream, forked from the caller's
  // rng serially (in row order) before the region. With nested solver
  // parallelism (the default) the inner OPTJS solve keeps the caller's
  // thread setting: a row task fans its restart chains / candidate scans /
  // subset shards out as nested regions, and workers with no row of their
  // own steal those — the fix for the old pin-to-one-thread starvation
  // when rows < workers. Row k's result depends only on its own stream
  // (and every inner parallel path is deterministic in the thread count),
  // so the table is bit-identical for any thread count, nested or not.
  const std::size_t count = budgets.size();
  // All `count` streams are forked even when the work budget truncates the
  // table, so the caller's rng advances identically with or without limits.
  std::vector<std::uint64_t> row_seeds(count);
  for (std::uint64_t& seed : row_seeds) seed = rng->Next();
  OptjsOptions row_options = options;
  if (!table_options.nested_solver_parallelism) row_options.num_threads = 1;
  // Rows inherit the stop signal and the per-strand work budget (an
  // in-flight row winds its inner solve down on deadline) but not the
  // termination out-pointer: rows run concurrently and the table owns one.
  row_options.termination = nullptr;

  // The check site: one row is one work unit at this level (each row's
  // inner strands carry their own full per-strand budget). The cap is
  // applied up-front, so the capped table is the same prefix for every
  // thread count.
  const std::size_t rows_to_run =
      options.max_work_units != 0
          ? std::min<std::size_t>(count, options.max_work_units)
          : count;

  const std::size_t threads =
      std::min(ResolveThreadCount(options.num_threads),
               rows_to_run > 0 ? rows_to_run : 1);
  std::vector<BudgetQualityRow> rows(rows_to_run);
  std::vector<Status> row_status(rows_to_run, Status::OK());
  std::vector<unsigned char> row_done(rows_to_run, 0);
  const auto fill_rows = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      // Deadline / cancellation is polled at each row start; abandoned
      // rows are dropped below by truncating to the completed prefix.
      if (options.cancel_token != nullptr &&
          options.cancel_token->Check() != StopReason::kNone) {
        return;
      }
      JspInstance instance;
      instance.candidates = candidates;
      instance.budget = budgets[i];
      instance.alpha = alpha;
      Rng row_rng(row_seeds[i]);
      Result<JspSolution> solution = SolveOptjs(instance, &row_rng,
                                                row_options);
      if (!solution.ok()) {
        row_status[i] = solution.status();
        row_done[i] = 1;
        continue;
      }
      rows[i].budget = budgets[i];
      rows[i].selected = solution.value().selected;
      rows[i].jury_ids = solution.value().Describe(instance);
      rows[i].jq = solution.value().jq;
      rows[i].required = solution.value().cost;
      row_done[i] = 1;
    }
  };
  try {
    Scheduler::GlobalParallelFor(0, rows_to_run, 1, fill_rows, threads);
  } catch (const FaultInjectedError& error) {
    // Injected faults (a row's inner solve, or the region's own task
    // spawn) unwind through the drained region to here — the boundary
    // that owns the Result contract for direct core callers.
    return Status::ResourceExhausted(error.what());
  }
  std::size_t kept = 0;
  while (kept < rows_to_run && row_done[kept] != 0) ++kept;
  for (std::size_t i = 0; i < kept; ++i) {
    JURY_RETURN_NOT_OK(row_status[i]);
  }
  rows.resize(kept);
  if (options.termination != nullptr) {
    *options.termination = TerminationInfo{};
    if (rows_to_run < count) {
      options.termination->MergeStrand(StopReason::kWorkLimit, 0);
    }
    // The token outlives the region, so a post-join probe still reports a
    // deadline that expired mid-table — including the case where every
    // row "finished" but the inner solves wound down degraded.
    if (options.cancel_token != nullptr) {
      options.termination->MergeStrand(options.cancel_token->Check(), 0);
    }
    options.termination->work_units += kept;
  }
  return rows;
}

Result<BudgetQualityRow> MinimalBudgetForQuality(
    const std::vector<Worker>& candidates, double target_jq, double alpha,
    Rng* rng, const OptjsOptions& options, double tolerance) {
  if (!(target_jq >= 0.0 && target_jq <= 1.0)) {
    return Status::InvalidArgument("target_jq outside [0,1]");
  }
  if (!(tolerance > 0.0)) {
    return Status::InvalidArgument("tolerance must be positive");
  }
  double total = 0.0;
  for (const Worker& w : candidates) {
    JURY_RETURN_NOT_OK(ValidateWorker(w));
    total += w.cost;
  }

  // One bisection probe is one work unit; a stop keeps the best budget
  // found so far (the full-pool solve below guarantees a valid fallback).
  // Probes inherit the stop token (a deadline winds an in-flight probe
  // down) but not the work budget — the governor consumes it at probe
  // granularity, and passing it inside would degrade the full-pool
  // fallback probe that the unreachable-target check depends on — and
  // not the termination out-pointer.
  WorkGovernor governor(options.cancel_token, options.max_work_units);
  if (options.termination != nullptr) *options.termination = TerminationInfo{};
  OptjsOptions probe_options = options;
  probe_options.termination = nullptr;
  probe_options.max_work_units = 0;

  auto solve_at = [&](double budget) -> Result<JspSolution> {
    JspInstance instance;
    instance.candidates = candidates;
    instance.budget = budget;
    instance.alpha = alpha;
    try {
      return SolveOptjs(instance, rng, probe_options);
    } catch (const FaultInjectedError& error) {
      return Status::ResourceExhausted(error.what());
    }
  };

  JspSolution at_total;
  JURY_ASSIGN_OR_RETURN(at_total, solve_at(total));
  if (at_total.jq < target_jq) {
    return Status::FailedPrecondition(
        "target JQ unreachable: full pool achieves " +
        std::to_string(at_total.jq));
  }

  double lo = 0.0;
  double hi = total;
  JspSolution best = at_total;
  double best_budget = total;
  while (hi - lo > tolerance) {
    if (governor.Tick() != StopReason::kNone) break;
    const double mid = (lo + hi) / 2.0;
    JspSolution probe;
    JURY_ASSIGN_OR_RETURN(probe, solve_at(mid));
    if (probe.jq >= target_jq) {
      hi = mid;
      if (mid < best_budget) {
        best = probe;
        best_budget = mid;
      }
    } else {
      lo = mid;
    }
  }

  if (options.termination != nullptr) {
    options.termination->MergeStrand(governor.reason(), governor.work_done());
  }
  BudgetQualityRow row;
  row.budget = best_budget;
  row.selected = best.selected;
  JspInstance describe_instance;
  describe_instance.candidates = candidates;
  row.jury_ids = best.Describe(describe_instance);
  row.jq = best.jq;
  row.required = best.cost;
  return row;
}

std::string FormatBudgetQualityTable(
    const std::vector<BudgetQualityRow>& rows) {
  Table table({"Budget", "Optimal Jury Set", "Quality", "Required"});
  for (const auto& row : rows) {
    table.AddRow({Format(row.budget, 2), row.jury_ids,
                  FormatPercent(row.jq), Format(row.required, 2)});
  }
  return table.ToString();
}

}  // namespace jury
