#include "core/budget_table.h"

#include "util/table.h"

namespace jury {

Result<std::vector<BudgetQualityRow>> BuildBudgetQualityTable(
    const std::vector<Worker>& candidates, const std::vector<double>& budgets,
    double alpha, Rng* rng, const OptjsOptions& options) {
  std::vector<BudgetQualityRow> rows;
  rows.reserve(budgets.size());
  for (double budget : budgets) {
    JspInstance instance;
    instance.candidates = candidates;
    instance.budget = budget;
    instance.alpha = alpha;
    JURY_ASSIGN_OR_RETURN(JspSolution solution,
                          SolveOptjs(instance, rng, options));
    BudgetQualityRow row;
    row.budget = budget;
    row.selected = solution.selected;
    row.jury_ids = solution.Describe(instance);
    row.jq = solution.jq;
    row.required = solution.cost;
    rows.push_back(std::move(row));
  }
  return rows;
}

Result<BudgetQualityRow> MinimalBudgetForQuality(
    const std::vector<Worker>& candidates, double target_jq, double alpha,
    Rng* rng, const OptjsOptions& options, double tolerance) {
  if (!(target_jq >= 0.0 && target_jq <= 1.0)) {
    return Status::InvalidArgument("target_jq outside [0,1]");
  }
  if (!(tolerance > 0.0)) {
    return Status::InvalidArgument("tolerance must be positive");
  }
  double total = 0.0;
  for (const Worker& w : candidates) {
    JURY_RETURN_NOT_OK(ValidateWorker(w));
    total += w.cost;
  }

  auto solve_at = [&](double budget) -> Result<JspSolution> {
    JspInstance instance;
    instance.candidates = candidates;
    instance.budget = budget;
    instance.alpha = alpha;
    return SolveOptjs(instance, rng, options);
  };

  JspSolution at_total;
  JURY_ASSIGN_OR_RETURN(at_total, solve_at(total));
  if (at_total.jq < target_jq) {
    return Status::FailedPrecondition(
        "target JQ unreachable: full pool achieves " +
        std::to_string(at_total.jq));
  }

  double lo = 0.0;
  double hi = total;
  JspSolution best = at_total;
  double best_budget = total;
  while (hi - lo > tolerance) {
    const double mid = (lo + hi) / 2.0;
    JspSolution probe;
    JURY_ASSIGN_OR_RETURN(probe, solve_at(mid));
    if (probe.jq >= target_jq) {
      hi = mid;
      if (mid < best_budget) {
        best = probe;
        best_budget = mid;
      }
    } else {
      lo = mid;
    }
  }

  BudgetQualityRow row;
  row.budget = best_budget;
  row.selected = best.selected;
  JspInstance describe_instance;
  describe_instance.candidates = candidates;
  row.jury_ids = best.Describe(describe_instance);
  row.jq = best.jq;
  row.required = best.cost;
  return row;
}

std::string FormatBudgetQualityTable(
    const std::vector<BudgetQualityRow>& rows) {
  Table table({"Budget", "Optimal Jury Set", "Quality", "Required"});
  for (const auto& row : rows) {
    table.AddRow({Format(row.budget, 2), row.jury_ids,
                  FormatPercent(row.jq), Format(row.required, 2)});
  }
  return table.ToString();
}

}  // namespace jury
