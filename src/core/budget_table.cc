#include "core/budget_table.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/scheduler.h"
#include "util/table.h"

namespace jury {

Result<std::vector<BudgetQualityRow>> BuildBudgetQualityTable(
    const std::vector<Worker>& candidates, const std::vector<double>& budgets,
    double alpha, Rng* rng, const OptjsOptions& options,
    const BudgetTableOptions& table_options) {
  if (rng == nullptr) {
    return Status::InvalidArgument("BuildBudgetQualityTable requires an Rng");
  }
  // Rows are independent solves that run as one region on the process-wide
  // scheduler. Each row gets its own rng stream, forked from the caller's
  // rng serially (in row order) before the region. With nested solver
  // parallelism (the default) the inner OPTJS solve keeps the caller's
  // thread setting: a row task fans its restart chains / candidate scans /
  // subset shards out as nested regions, and workers with no row of their
  // own steal those — the fix for the old pin-to-one-thread starvation
  // when rows < workers. Row k's result depends only on its own stream
  // (and every inner parallel path is deterministic in the thread count),
  // so the table is bit-identical for any thread count, nested or not.
  const std::size_t count = budgets.size();
  std::vector<std::uint64_t> row_seeds(count);
  for (std::uint64_t& seed : row_seeds) seed = rng->Next();
  OptjsOptions row_options = options;
  if (!table_options.nested_solver_parallelism) row_options.num_threads = 1;

  const std::size_t threads = std::min(
      ResolveThreadCount(options.num_threads), count > 0 ? count : 1);
  std::vector<BudgetQualityRow> rows(count);
  std::vector<Status> row_status(count, Status::OK());
  const auto fill_rows = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      JspInstance instance;
      instance.candidates = candidates;
      instance.budget = budgets[i];
      instance.alpha = alpha;
      Rng row_rng(row_seeds[i]);
      Result<JspSolution> solution = SolveOptjs(instance, &row_rng,
                                                row_options);
      if (!solution.ok()) {
        row_status[i] = solution.status();
        continue;
      }
      rows[i].budget = budgets[i];
      rows[i].selected = solution.value().selected;
      rows[i].jury_ids = solution.value().Describe(instance);
      rows[i].jq = solution.value().jq;
      rows[i].required = solution.value().cost;
    }
  };
  Scheduler::GlobalParallelFor(0, count, 1, fill_rows, threads);
  for (const Status& status : row_status) {
    JURY_RETURN_NOT_OK(status);
  }
  return rows;
}

Result<BudgetQualityRow> MinimalBudgetForQuality(
    const std::vector<Worker>& candidates, double target_jq, double alpha,
    Rng* rng, const OptjsOptions& options, double tolerance) {
  if (!(target_jq >= 0.0 && target_jq <= 1.0)) {
    return Status::InvalidArgument("target_jq outside [0,1]");
  }
  if (!(tolerance > 0.0)) {
    return Status::InvalidArgument("tolerance must be positive");
  }
  double total = 0.0;
  for (const Worker& w : candidates) {
    JURY_RETURN_NOT_OK(ValidateWorker(w));
    total += w.cost;
  }

  auto solve_at = [&](double budget) -> Result<JspSolution> {
    JspInstance instance;
    instance.candidates = candidates;
    instance.budget = budget;
    instance.alpha = alpha;
    return SolveOptjs(instance, rng, options);
  };

  JspSolution at_total;
  JURY_ASSIGN_OR_RETURN(at_total, solve_at(total));
  if (at_total.jq < target_jq) {
    return Status::FailedPrecondition(
        "target JQ unreachable: full pool achieves " +
        std::to_string(at_total.jq));
  }

  double lo = 0.0;
  double hi = total;
  JspSolution best = at_total;
  double best_budget = total;
  while (hi - lo > tolerance) {
    const double mid = (lo + hi) / 2.0;
    JspSolution probe;
    JURY_ASSIGN_OR_RETURN(probe, solve_at(mid));
    if (probe.jq >= target_jq) {
      hi = mid;
      if (mid < best_budget) {
        best = probe;
        best_budget = mid;
      }
    } else {
      lo = mid;
    }
  }

  BudgetQualityRow row;
  row.budget = best_budget;
  row.selected = best.selected;
  JspInstance describe_instance;
  describe_instance.candidates = candidates;
  row.jury_ids = best.Describe(describe_instance);
  row.jq = best.jq;
  row.required = best.cost;
  return row;
}

std::string FormatBudgetQualityTable(
    const std::vector<BudgetQualityRow>& rows) {
  Table table({"Budget", "Optimal Jury Set", "Quality", "Required"});
  for (const auto& row : rows) {
    table.AddRow({Format(row.budget, 2), row.jury_ids,
                  FormatPercent(row.jq), Format(row.required, 2)});
  }
  return table.ToString();
}

}  // namespace jury
