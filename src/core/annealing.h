#ifndef JURYOPT_CORE_ANNEALING_H_
#define JURYOPT_CORE_ANNEALING_H_

#include <cstddef>

#include "core/jsp.h"
#include "core/objective.h"
#include "core/solver_options.h"
#include "util/result.h"
#include "util/rng.h"

namespace jury {

class WorkerPoolView;

/// \brief Knobs of the simulated-annealing JSP heuristic (Algorithm 3).
struct AnnealingOptions : SolverOptions {
  /// Initial temperature T (step 1 of Algorithm 3).
  double initial_temperature = 1.0;
  /// Loop terminates when T drops below epsilon (the paper uses 1e-8).
  double epsilon = 1e-8;
  /// Geometric cooling T <- T * cooling_factor (the paper halves).
  double cooling_factor = 0.5;
  /// When true, "add a worker if it fits" is accepted unconditionally, as in
  /// Algorithm 3 (justified by Lemma 1). Only sound for monotone objectives;
  /// for MV the solver evaluates the addition like any other move. When
  /// false, additions always go through the Boltzmann acceptance test.
  bool trust_monotone_adds = true;
  /// Return the best jury seen rather than the final one. The paper's
  /// Algorithm 3 returns the final state; keeping the incumbent is a common
  /// SA refinement, benchmarked in `bench_ablation_solvers`.
  bool return_best_seen = false;
  /// Extension beyond Algorithm 3: with this probability a move on a
  /// selected worker proposes REMOVING it (Boltzmann-gated — removals
  /// always lower a monotone objective, so they only survive at high
  /// temperature). This lets the search escape "budget-full of cheap
  /// workers" states that 1-for-1 swaps cannot leave, the local-optimum
  /// family behind the Table-3 tail (see EXPERIMENTS.md). 0 disables and
  /// recovers the paper's verbatim neighbourhood.
  double removal_probability = 0.0;
  /// Score each candidate move through the objective's delta-update
  /// session (O(n) per move) instead of a from-scratch evaluation
  /// (O(n^2)). The two paths agree within 1e-12 per score and return
  /// identical juries (property-tested); disable to score every move
  /// from scratch. Note the acceptance protocol (a uniform draw per
  /// evaluated move, ties accepted within `kScoreEquivalenceTol`) is
  /// shared by both paths — it is what keeps their rng streams and
  /// decisions aligned — so either path's trajectory differs from the
  /// pre-session solver for a given seed.
  bool use_incremental = true;
  /// \brief Batched neighbourhood polish (the unified-move-scan retrofit
  /// of the annealing neighbourhood).
  ///
  /// After the Algorithm-3 schedule finishes, each chain's jury is
  /// improved by deterministic best-improvement local search over the
  /// *entire* add/remove/swap neighbourhood, scanned through the unified
  /// batched move-scan API (`ScoreAddBatch` / `ScoreRemoveBatch` /
  /// `ScoreSwapBatch` on view indices): one contiguous batched pass per
  /// move family instead of one random probe per step. The polish is
  /// rng-free (it consumes nothing from the chain's stream, so the SA
  /// trajectory is untouched), banded at `kScoreEquivalenceTol` like
  /// every other score-sensitive decision, and identical between the
  /// incremental and full-recompute evaluation paths. It can only raise
  /// the returned JQ. This caps the number of *applied* polish moves
  /// (each strictly improving); 0 disables the polish entirely — the
  /// pre-polish behavior, kept for the bench ablation — and
  /// `kAutoPolishMoves` resolves to 2n + 8 at solve time.
  std::size_t max_polish_moves = kAutoPolishMoves;
  static constexpr std::size_t kAutoPolishMoves =
      static_cast<std::size_t>(-1);
  /// Independent restart chains, run across `num_threads` pool threads
  /// (each chain owns its own evaluation session and an `Rng` stream split
  /// deterministically from the caller's `rng` *before* the parallel
  /// region), reduced best-of in chain order with the `kScoreTol` band
  /// (strictly better JQ wins; a banded tie goes to the cheaper jury, then
  /// the earlier chain). The result is therefore bit-identical for any
  /// thread count, including 1. With the default single restart the
  /// caller's rng is used directly, preserving the historical
  /// single-chain trajectories seed-for-seed.
  std::size_t num_restarts = 1;
  /// Upper bound `Validate` enforces on `num_restarts`: each restart
  /// allocates a chain state, so an unchecked request-supplied count is a
  /// remote OOM. A million chains is far beyond any useful fan-out.
  static constexpr std::size_t kMaxRestarts = 1'000'000;

  /// Checks every knob's range (positive temperatures, a cooling factor in
  /// (0, 1), a probability for `removal_probability`, >= 1 restart) and
  /// returns InvalidArgument naming the offender. Called at every solve
  /// entry, so bad knobs fail fast as a `Status` instead of surfacing as
  /// silent misbehavior (an instantly-cold schedule) or CHECK aborts.
  Status Validate() const;
};

/// \brief Per-run instrumentation.
struct AnnealingStats {
  std::size_t temperature_levels = 0;
  std::size_t moves_attempted = 0;
  std::size_t moves_accepted = 0;
  std::size_t uphill_accepts = 0;    // delta >= -kScoreEquivalenceTol
                                     // (uphill or numerical tie)
  std::size_t downhill_accepts = 0;  // genuinely downhill,
                                     // Boltzmann-accepted
  std::size_t objective_evaluations = 0;
  /// Batched-neighbourhood polish instrumentation (kept separate from the
  /// Algorithm-3 counters above, whose exact values are contract-tested).
  std::size_t polish_scans = 0;  // full-neighbourhood batched scans run
  std::size_t polish_moves = 0;  // improving moves applied by the polish
};

/// \brief JSP by simulated annealing (Algorithms 3–4).
///
/// Each location is a jury; its objective value is JQ. Per temperature level
/// the solver makes N random local moves: adding a random unselected worker
/// when it fits the budget, otherwise swapping it against a random selected
/// one (Algorithm 4), accepting quality-decreasing swaps with probability
/// `exp(delta / T)` (Boltzmann). Temperature halves until epsilon.
/// `options.num_restarts > 1` runs that many independent chains in
/// parallel and returns the best jury found; `stats` then aggregates the
/// per-chain instrumentation.
Result<JspSolution> SolveAnnealing(const JspInstance& instance,
                                   const JqObjective& objective, Rng* rng,
                                   const AnnealingOptions& options = {},
                                   AnnealingStats* stats = nullptr);

/// \brief Planned-pool overload: the per-solve setup (pool validation and
/// the columnar `WorkerPoolView` snapshot) is hoisted to the caller, which
/// built it once — `api::PoolPlanContext` for the serving path. `view`
/// must be a snapshot of `instance.candidates`-equal workers, and the
/// pool must already be validated (only the options are re-checked here).
/// Bit-identical to the wrapper above, which is now one `Validate` + one
/// view build + this call.
Result<JspSolution> SolveAnnealing(const JspInstance& instance,
                                   const WorkerPoolView& view,
                                   const JqObjective& objective, Rng* rng,
                                   const AnnealingOptions& options = {},
                                   AnnealingStats* stats = nullptr);

}  // namespace jury

#endif  // JURYOPT_CORE_ANNEALING_H_
