#ifndef JURYOPT_CORE_BRANCH_BOUND_H_
#define JURYOPT_CORE_BRANCH_BOUND_H_

#include "core/jsp.h"
#include "core/objective.h"
#include "core/solver_options.h"
#include "util/result.h"

namespace jury {

class WorkerPoolView;

/// \brief Options/instrumentation for the branch-and-bound JSP solver.
/// The search itself is serial (the base's `num_threads` is unused); the
/// base's cancellation fields bound it per explored node — a stop
/// returns the incumbent as an anytime result, unlike the `max_nodes`
/// overrun below, which stays a hard error.
struct BranchBoundOptions : SolverOptions {
  /// Hard cap on explored nodes (guards pathological instances);
  /// ResourceExhausted when exceeded.
  std::size_t max_nodes = 2'000'000;
  /// Maintain the Lemma-1 bound jury (current selection plus every still
  /// undecided worker) in an evaluation session: excluding a worker is one
  /// delta removal, backtracking one delta re-add, and the include branch
  /// inherits the parent's bound state untouched — so each node's bound
  /// costs O(n) instead of an O(n^2) from-scratch evaluation. Disable to
  /// recover the original per-node evaluation.
  bool use_incremental = true;
  /// Order candidates by their batched single-worker marginal scores (one
  /// `ScoreAddBatch` over the whole pool against the empty jury) instead
  /// of raw quality. For BV this sorts by *flip-normalized* strength —
  /// sub-0.5 workers are as informative as their mirror image — which
  /// tightens the include-first search order; for the >= 0.5 pools of the
  /// paper's experiments the two orders coincide. The ordering scan always
  /// runs on the delta-update session (it is a heuristic, not a score), so
  /// the search order — and hence the returned jury — is identical
  /// between the incremental and full-recompute evaluation paths.
  bool order_by_marginal_gain = true;

  /// Rejects a zero node budget (which would ResourceExhaust every solve
  /// at the root). Called at every solve entry.
  Status Validate() const;
};

struct BranchBoundStats {
  std::size_t nodes_explored = 0;
  std::size_t nodes_pruned_budget = 0;
  std::size_t nodes_pruned_bound = 0;
};

/// \brief Exact JSP for monotone objectives by depth-first branch and
/// bound, usually far faster than the 2^N sweep:
///
///  * candidates are ordered by decreasing quality;
///  * at each node the solver branches on including/excluding the next
///    worker, skipping unaffordable inclusions (budget pruning);
///  * Lemma 1 gives the bound: the JQ of the current selection plus ALL
///    remaining workers (ignoring their cost) is an upper bound on any
///    completion, so subtrees that cannot beat the incumbent are cut.
///
/// Requires `objective.monotone_in_size()` (InvalidArgument otherwise) —
/// for MV use `SolveExhaustive`. Ties break towards cheaper juries, like
/// the exhaustive solver.
Result<JspSolution> SolveBranchAndBound(const JspInstance& instance,
                                        const JqObjective& objective,
                                        const BranchBoundOptions& options = {},
                                        BranchBoundStats* stats = nullptr);

/// Planned-pool overload (see the annealing planned overload for the
/// contract): pool validation and the columnar view are the caller's.
Result<JspSolution> SolveBranchAndBound(const JspInstance& instance,
                                        const WorkerPoolView& view,
                                        const JqObjective& objective,
                                        const BranchBoundOptions& options = {},
                                        BranchBoundStats* stats = nullptr);

}  // namespace jury

#endif  // JURYOPT_CORE_BRANCH_BOUND_H_
