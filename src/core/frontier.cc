#include "core/frontier.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "util/stats_registry.h"

namespace jury {
namespace {

StatsRegistry::Counter& g_candidates_scanned =
    RegisterStatsCounter("frontier.candidates_scanned");
StatsRegistry::Counter& g_exactness_proofs =
    RegisterStatsCounter("frontier.exactness_proofs");

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kTol = kScoreEquivalenceTol;

enum class ShardState : unsigned char {
  kSkipped,   // min_cost > max_cost: no eligible member at all
  kSlate,     // slate prefix scanned; non-slate members may be pruned
  kExpanded,  // every eligible member scanned
};

/// One scan's working set: scanned view indices ascending, scores aligned.
struct ScanSet {
  std::vector<std::size_t> indices;
  std::vector<double> scores;
};

/// Batch-scores `fresh` (ascending) and merges it into `set`, keeping the
/// ascending-index order.
void ScoreAndMerge(IncrementalJqEvaluator& session,
                   std::vector<std::size_t> fresh, ScanSet* set) {
  if (fresh.empty()) return;
  std::vector<double> fresh_scores(fresh.size());
  session.ScoreAddBatch(fresh.data(), fresh.size(), fresh_scores.data());
  set->indices.insert(set->indices.end(), fresh.begin(), fresh.end());
  set->scores.insert(set->scores.end(), fresh_scores.begin(),
                     fresh_scores.end());
  // Both halves are ascending; inplace_merge cannot carry the scores
  // along, so sort a permutation instead (the sets are frontier-sized).
  std::vector<std::size_t> perm(set->indices.size());
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  std::stable_sort(perm.begin(), perm.end(),
                   [set](std::size_t a, std::size_t b) {
                     return set->indices[a] < set->indices[b];
                   });
  std::vector<std::size_t> merged_idx(perm.size());
  std::vector<double> merged_scores(perm.size());
  for (std::size_t j = 0; j < perm.size(); ++j) {
    merged_idx[j] = set->indices[perm[j]];
    merged_scores[j] = set->scores[perm[j]];
  }
  set->indices = std::move(merged_idx);
  set->scores = std::move(merged_scores);
}

}  // namespace

FrontierScanResult FrontierScanAdds(IncrementalJqEvaluator& session,
                                    const ShardedWorkerPool& pool,
                                    ShardedWorkerPool::KeyColumn key,
                                    const std::vector<char>& excluded,
                                    double jury_cost, double budget,
                                    const FrontierOptions& options,
                                    FrontierScanStats* stats) {
  const std::span<const double> cost = pool.view().cost();
  const std::span<const double> keys = pool.keys(key);
  const std::size_t num_shards = pool.num_shards();
  const std::size_t k = std::max<std::size_t>(1, options.k);
  if (stats != nullptr) stats->scans++;

  std::vector<ShardState> state(num_shards, ShardState::kSlate);
  // Upper bound on every pruned (eligible, unscanned) key of the shard;
  // -inf once nothing is pruned.
  std::vector<double> fence_key(num_shards, -kInf);

  // Exactly the affordability expression of the solvers' full scans
  // (`jury_cost + cost[i] > budget` excludes), so the eligible sets — and
  // therefore the bit-identity argument — match to the last rounding.
  const auto eligible = [&](std::size_t i) {
    return !excluded[i] && !(jury_cost + cost[i] > budget);
  };

  ScanSet set;
  std::vector<std::size_t> fresh;
  for (std::size_t s = 0; s < num_shards; ++s) {
    const ShardedWorkerPool::Shard& shard = pool.shard(s);
    // Addition is monotone, so `jury_cost + min_cost > budget` implies
    // every member fails the affordability test above: skip the shard.
    if (jury_cost + shard.min_cost > budget) {
      state[s] = ShardState::kSkipped;
      continue;
    }
    const std::vector<std::size_t>& slate = pool.slate(shard, key);
    const std::size_t prefix = std::min(k, slate.size());
    for (std::size_t j = 0; j < prefix; ++j) {
      if (eligible(slate[j])) fresh.push_back(slate[j]);
    }
    // Pruned members (beyond the scanned prefix) all have key <= the
    // prefix's smallest key — the slate is key-descending.
    fence_key[s] = prefix < shard.population() ? keys[slate[prefix - 1]]
                                               : -kInf;
  }
  std::sort(fresh.begin(), fresh.end());
  ScoreAndMerge(session, std::move(fresh), &set);

  if (!options.exact) {
    // Lossy mode skips the guard — but "no eligible candidate" must stay
    // a truthful answer, so an empty slate scan still expands before the
    // caller concludes the round is over.
    if (set.indices.empty()) {
      std::vector<std::size_t> all;
      for (std::size_t s = 0; s < num_shards; ++s) {
        if (state[s] == ShardState::kSkipped) continue;
        const ShardedWorkerPool::Shard& shard = pool.shard(s);
        for (std::size_t i = shard.begin; i < shard.end; ++i) {
          if (eligible(i)) all.push_back(i);
        }
      }
      ScoreAndMerge(session, std::move(all), &set);
    }
    if (stats != nullptr) stats->candidates_scanned += set.indices.size();
    FrontierScanResult result;
    result.indices = std::move(set.indices);
    result.scores = std::move(set.scores);
    result.exact_proven = false;
    return result;
  }

  // Exact refinement: re-check every still-pruned shard against the
  // current scanned set; expand the ones the bound cannot fence; repeat.
  // Each pass expands at least one shard, so this terminates — in the
  // worst case with the full scan itself.
  std::vector<double> key_desc;
  std::vector<double> prefix_min;
  std::vector<std::size_t> order;
  while (true) {
    bool any_pruned = false;
    for (std::size_t s = 0; s < num_shards; ++s) {
      any_pruned |= state[s] == ShardState::kSlate && fence_key[s] > -kInf;
    }
    if (!any_pruned) break;

    // fence(s): the tightest scanned witness for shard s — the minimum
    // score over scanned candidates with key >= fence_key[s]. Sorting the
    // scanned set key-descending turns each lookup into a binary search
    // over a prefix-min array.
    const std::size_t count = set.indices.size();
    order.resize(count);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&set, keys](std::size_t a, std::size_t b) {
                return keys[set.indices[a]] > keys[set.indices[b]];
              });
    key_desc.resize(count);
    prefix_min.resize(count);
    for (std::size_t j = 0; j < count; ++j) {
      key_desc[j] = keys[set.indices[order[j]]];
      const double score = set.scores[order[j]];
      prefix_min[j] = j == 0 ? score : std::min(prefix_min[j - 1], score);
    }

    // rb_entry(s): the banded incumbent the scanned-only argmax holds on
    // reaching the shard's first index.
    std::vector<double> rb_entry(num_shards, -kInf);
    double running = -kInf;
    std::size_t cursor = 0;
    for (std::size_t s = 0; s < num_shards; ++s) {
      const std::size_t begin = pool.shard(s).begin;
      while (cursor < count && set.indices[cursor] < begin) {
        if (set.scores[cursor] > running + kTol) running = set.scores[cursor];
        cursor++;
      }
      rb_entry[s] = running;
    }

    std::vector<std::size_t> expand;
    for (std::size_t s = 0; s < num_shards; ++s) {
      if (state[s] != ShardState::kSlate || fence_key[s] == -kInf) continue;
      // Last key-desc position with key >= fence_key[s] (keys equal to the
      // fence still dominate every pruned member).
      const auto split = std::lower_bound(
          key_desc.begin(), key_desc.end(), fence_key[s],
          [](double lhs, double threshold) { return lhs >= threshold; });
      const std::size_t witnesses =
          static_cast<std::size_t>(split - key_desc.begin());
      const double fence = witnesses == 0 ? kInf : prefix_min[witnesses - 1];
      if (!(fence <= rb_entry[s] + kTol / 2)) expand.push_back(s);
    }
    if (expand.empty()) {
      // Guard holds everywhere with at least one shard still pruned: the
      // scanned set provably reproduces the full scan, and the proof
      // spared real work.
      if (stats != nullptr) stats->exactness_proofs++;
      break;
    }

    std::vector<std::size_t> grow;
    for (const std::size_t s : expand) {
      const ShardedWorkerPool::Shard& shard = pool.shard(s);
      // The shard's already-scanned members are its eligible slate-prefix
      // entries; skip exactly those (the prefix is tiny).
      const std::vector<std::size_t>& slate = pool.slate(shard, key);
      const std::size_t prefix = std::min(k, slate.size());
      std::vector<std::size_t> seen(slate.begin(), slate.begin() + prefix);
      std::sort(seen.begin(), seen.end());
      for (std::size_t i = shard.begin; i < shard.end; ++i) {
        if (!eligible(i)) continue;
        if (std::binary_search(seen.begin(), seen.end(), i)) continue;
        grow.push_back(i);
      }
      state[s] = ShardState::kExpanded;
      fence_key[s] = -kInf;
      if (stats != nullptr) stats->shards_expanded++;
    }
    ScoreAndMerge(session, std::move(grow), &set);
  }

  if (stats != nullptr) stats->candidates_scanned += set.indices.size();
  FrontierScanResult result;
  result.indices = std::move(set.indices);
  result.scores = std::move(set.scores);
  result.exact_proven = true;
  return result;
}

FrontierPick FrontierSelectAdd(IncrementalJqEvaluator& session,
                               const ShardedWorkerPool& pool,
                               ShardedWorkerPool::KeyColumn key,
                               const std::vector<char>& excluded,
                               double jury_cost, double budget,
                               const FrontierOptions& options,
                               FrontierScanStats* stats) {
  const FrontierScanResult scan = FrontierScanAdds(
      session, pool, key, excluded, jury_cost, budget, options, stats);
  FrontierPick pick;
  pick.exact_proven = scan.exact_proven;
  double best = -kInf;
  for (std::size_t j = 0; j < scan.indices.size(); ++j) {
    // The solvers' banded first-wins argmax, verbatim.
    if (scan.scores[j] > best + kTol) {
      best = scan.scores[j];
      pick.best_index = scan.indices[j];
      pick.found = true;
    }
  }
  pick.best_score = best;
  return pick;
}

bool FrontierUsable(const ShardedWorkerPool* pool,
                    const WorkerPoolView* session_view,
                    const JqObjective& objective, std::size_t frontier_k,
                    ShardedWorkerPool::KeyColumn* column) {
  if (pool == nullptr || frontier_k == 0) return false;
  if (session_view == nullptr || &pool->view() != session_view) return false;
  return FrontierKeyColumn(objective.score_monotone_key(), column);
}

void FlushFrontierStats(const FrontierScanStats& stats) {
  if (stats.candidates_scanned > 0) {
    g_candidates_scanned.Add(stats.candidates_scanned);
  }
  if (stats.exactness_proofs > 0) {
    g_exactness_proofs.Add(stats.exactness_proofs);
  }
}

}  // namespace jury
