#include "core/optjs.h"

#include <algorithm>

#include "core/greedy.h"
#include "core/objective.h"

namespace jury {
namespace {

/// Re-evaluates a solution's jury with a per-worker bucket multiplier of
/// 200, which the §4.4 analysis proves keeps the JQ estimate within 1% (in
/// practice far closer). The *search* may run on the coarse default (the
/// paper's numBuckets = 50); the *reported* quality should not.
double TightJq(const JspInstance& instance, const JspSolution& solution,
               const BucketJqOptions& base) {
  if (solution.selected.empty()) return EmptyJuryJq(instance.alpha);
  BucketJqOptions tight = base;
  tight.num_buckets =
      std::max(tight.num_buckets,
               200 * static_cast<int>(solution.selected.size() + 1));
  return EstimateJq(solution.ToJury(instance), instance.alpha, tight).value();
}

}  // namespace

Result<JspSolution> SolveOptjs(const JspInstance& instance, Rng* rng,
                               const OptjsOptions& options) {
  JURY_RETURN_NOT_OK(instance.Validate());
  const BucketBvObjective objective(options.bucket);

  JspSolution best;
  if (options.exhaustive_threshold > 0 &&
      instance.num_candidates() <= options.exhaustive_threshold) {
    ExhaustiveOptions exhaustive;
    exhaustive.max_candidates = options.exhaustive_threshold;
    exhaustive.use_incremental = options.use_incremental;
    exhaustive.num_threads = options.num_threads;
    JURY_ASSIGN_OR_RETURN(best,
                          SolveExhaustive(instance, objective, exhaustive));
  } else {
    AnnealingOptions annealing = options.annealing;
    annealing.use_incremental &= options.use_incremental;
    annealing.num_threads = options.num_threads;
    GreedyOptions greedy;
    greedy.use_incremental = options.use_incremental;
    greedy.num_threads = options.num_threads;
    JURY_ASSIGN_OR_RETURN(
        best, SolveAnnealing(instance, objective, rng, annealing));
    best.jq = TightJq(instance, best, options.bucket);
    // Cheap deterministic fallbacks: annealing occasionally ends in a poor
    // local optimum; keep whichever jury re-evaluates best.
    JURY_ASSIGN_OR_RETURN(JspSolution by_quality,
                          SolveGreedyByQuality(instance, objective, greedy));
    by_quality.jq = TightJq(instance, by_quality, options.bucket);
    if (by_quality.jq > best.jq) best = by_quality;
    JURY_ASSIGN_OR_RETURN(
        JspSolution by_value,
        SolveGreedyByValuePerCost(instance, objective, greedy));
    by_value.jq = TightJq(instance, by_value, options.bucket);
    if (by_value.jq > best.jq) best = by_value;
    return best;
  }
  best.jq = TightJq(instance, best, options.bucket);
  return best;
}

}  // namespace jury
