#include "core/optjs.h"

#include <algorithm>

#include "core/greedy.h"
#include "core/objective.h"
#include "model/worker_pool_view.h"
#include "util/scheduler.h"

namespace jury {
namespace {

/// Re-evaluates a solution's jury with a per-worker bucket multiplier of
/// 200, which the §4.4 analysis proves keeps the JQ estimate within 1% (in
/// practice far closer). The *search* may run on the coarse default (the
/// paper's numBuckets = 50); the *reported* quality should not. A failing
/// re-estimate (a key-map cap under an adversarial bucket count) is a
/// `Status` the caller propagates — never an abort mid-solve.
Result<double> TightJq(const JspInstance& instance,
                       const JspSolution& solution,
                       const BucketJqOptions& base) {
  if (solution.selected.empty()) return EmptyJuryJq(instance.alpha);
  BucketJqOptions tight = base;
  tight.num_buckets =
      std::max(tight.num_buckets,
               200 * static_cast<int>(solution.selected.size() + 1));
  return EstimateJq(solution.ToJury(instance), instance.alpha, tight);
}

}  // namespace

Status OptjsOptions::Validate() const {
  // Field-declaration order (bucket, annealing, exhaustive_threshold), so
  // a request with several bad knobs reports the lowest-index one — the
  // error contract the API tests pin.
  JURY_RETURN_NOT_OK(bucket.Validate());
  JURY_RETURN_NOT_OK(annealing.Validate());
  if (exhaustive_threshold > 62) {
    return Status::InvalidArgument(
        "exhaustive_threshold must be <= 62 (64-bit subset masks)");
  }
  return Status::OK();
}

Result<JspSolution> SolveOptjs(const JspInstance& instance, Rng* rng,
                               const OptjsOptions& options) {
  JURY_RETURN_NOT_OK(instance.Validate());
  const WorkerPoolView view(instance.candidates);
  const BucketBvObjective objective(options.bucket);
  return SolveOptjs(instance, view, objective, rng, options);
}

Result<JspSolution> SolveOptjs(const JspInstance& instance,
                               const WorkerPoolView& view,
                               const BucketBvObjective& objective, Rng* rng,
                               const OptjsOptions& options,
                               AnnealingStats* annealing_stats,
                               bool* used_exhaustive_shortcut) {
  JURY_RETURN_NOT_OK(options.Validate());
  if (annealing_stats != nullptr) *annealing_stats = AnnealingStats{};
  if (options.termination != nullptr) *options.termination = TerminationInfo{};

  JspSolution best;
  const bool shortcut = options.exhaustive_threshold > 0 &&
                        instance.num_candidates() <= options.exhaustive_threshold;
  if (used_exhaustive_shortcut != nullptr) {
    *used_exhaustive_shortcut = shortcut;
  }
  if (shortcut) {
    ExhaustiveOptions exhaustive;
    exhaustive.max_candidates = options.exhaustive_threshold;
    exhaustive.use_incremental = options.use_incremental;
    exhaustive.num_threads = options.num_threads;
    exhaustive.cancel_token = options.cancel_token;
    exhaustive.max_work_units = options.max_work_units;
    TerminationInfo exhaustive_term;
    exhaustive.termination =
        options.termination != nullptr ? &exhaustive_term : nullptr;
    JURY_ASSIGN_OR_RETURN(
        best, SolveExhaustive(instance, view, objective, exhaustive));
    if (options.termination != nullptr) {
      options.termination->Merge(exhaustive_term);
    }
  } else {
    // Every inner solve inherits the facade's stop signal and per-strand
    // work budget, but gets its *own* TerminationInfo — the fallbacks
    // run concurrently with annealing, so a shared out-pointer would
    // race. The three are merged in fixed serial order after the join.
    AnnealingOptions annealing = options.annealing;
    annealing.use_incremental &= options.use_incremental;
    annealing.num_threads = options.num_threads;
    annealing.cancel_token = options.cancel_token;
    annealing.max_work_units = options.max_work_units;
    TerminationInfo annealing_term;
    annealing.termination = &annealing_term;
    GreedyOptions greedy;
    greedy.use_incremental = options.use_incremental;
    greedy.num_threads = options.num_threads;
    greedy.cancel_token = options.cancel_token;
    greedy.max_work_units = options.max_work_units;
    TerminationInfo by_quality_term;
    TerminationInfo by_value_term;
    GreedyOptions greedy_by_quality = greedy;
    greedy_by_quality.termination = &by_quality_term;
    GreedyOptions greedy_by_value = greedy;
    greedy_by_value.termination = &by_value_term;
    // The annealing solve and the two greedy fallbacks (each with its
    // tight re-evaluation) are independent: at >1 threads the fallbacks
    // run as tasks on the process-wide scheduler while the caller runs
    // annealing. Deterministic: the rng is consumed only by annealing
    // (exactly as in the serial order below), the fallbacks take no rng,
    // and the jq comparisons after the join run in the fixed serial
    // order. When SolveOptjs itself runs inside a task (a budget-table
    // row), these become nested tasks idle workers can steal.
    const std::size_t threads = ResolveThreadCount(options.num_threads);
    Result<JspSolution> by_quality_result = JspSolution{};
    Result<JspSolution> by_value_result = JspSolution{};
    // One definition per fallback, run either as a task or inline, so the
    // parallel and serial paths cannot diverge.
    const auto solve_by_quality = [&] {
      by_quality_result =
          SolveGreedyByQuality(instance, view, objective, greedy_by_quality);
      if (by_quality_result.ok()) {
        const Result<double> tight =
            TightJq(instance, by_quality_result.value(), options.bucket);
        if (tight.ok()) {
          by_quality_result.value().jq = tight.value();
        } else {
          by_quality_result = tight.status();
        }
      }
    };
    const auto solve_by_value = [&] {
      by_value_result =
          SolveGreedyByValuePerCost(instance, view, objective,
                                    greedy_by_value);
      if (by_value_result.ok()) {
        const Result<double> tight =
            TightJq(instance, by_value_result.value(), options.bucket);
        if (tight.ok()) {
          by_value_result.value().jq = tight.value();
        } else {
          by_value_result = tight.status();
        }
      }
    };
    if (threads > 1) {
      TaskGroup fallbacks;
      fallbacks.Run(solve_by_quality);
      fallbacks.Run(solve_by_value);
      JURY_ASSIGN_OR_RETURN(
          best, SolveAnnealing(instance, view, objective, rng, annealing,
                               annealing_stats));
      JURY_ASSIGN_OR_RETURN(best.jq,
                            TightJq(instance, best, options.bucket));
      fallbacks.Wait();
    } else {
      JURY_ASSIGN_OR_RETURN(
          best, SolveAnnealing(instance, view, objective, rng, annealing,
                               annealing_stats));
      JURY_ASSIGN_OR_RETURN(best.jq,
                            TightJq(instance, best, options.bucket));
      solve_by_quality();
      solve_by_value();
    }
    // Cheap deterministic fallbacks: annealing occasionally ends in a poor
    // local optimum; keep whichever jury re-evaluates best. Same check
    // order as the historical serial code, so errors and ties resolve
    // identically however the three solves were scheduled.
    JURY_RETURN_NOT_OK(by_quality_result.status());
    JURY_RETURN_NOT_OK(by_value_result.status());
    if (by_quality_result.value().jq > best.jq) best = by_quality_result.value();
    if (by_value_result.value().jq > best.jq) best = by_value_result.value();
    if (options.termination != nullptr) {
      options.termination->Merge(annealing_term);
      options.termination->Merge(by_quality_term);
      options.termination->Merge(by_value_term);
    }
    return best;
  }
  JURY_ASSIGN_OR_RETURN(best.jq, TightJq(instance, best, options.bucket));
  return best;
}

}  // namespace jury
