#ifndef JURYOPT_CORE_FRONTIER_H_
#define JURYOPT_CORE_FRONTIER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/objective.h"
#include "model/sharded_pool.h"

namespace jury {

/// Per-solve instrumentation for the frontier scans (see
/// `SolverOptions::frontier_stats`). All counts accumulate across the
/// scans of one solve; the same quantities feed the process-wide
/// `frontier.candidates_scanned` / `frontier.exactness_proofs` registry
/// counters.
struct FrontierScanStats {
  /// Scans performed (one per greedy round / polish pass).
  std::uint64_t scans = 0;
  /// Candidates actually scored, summed over scans. The pruning rate of a
  /// scan is `1 - candidates_scanned / eligible_population`.
  std::uint64_t candidates_scanned = 0;
  /// Scans where the bound guard proved the slate result bit-identical to
  /// the full scan while at least one shard stayed pruned (i.e. the proof
  /// did real work).
  std::uint64_t exactness_proofs = 0;
  /// Shards the exact mode had to expand to a full shard scan because the
  /// guard could not fence them.
  std::uint64_t shards_expanded = 0;
};

/// Tuning for one frontier scan, distilled from `SolverOptions`.
struct FrontierOptions {
  /// Slate prefix length per shard (clamped to the pool's stored slate).
  std::size_t k = 16;
  /// Refine with the admissible-bound guard until provably bit-identical
  /// to the full scan (worst case expands every shard = full scan).
  bool exact = true;
};

/// Result of `FrontierSelectAdd`: the same (winner, score) pair the
/// solver's full O(N) banded argmax would produce — guaranteed when
/// `options.exact`, best-effort otherwise.
struct FrontierPick {
  /// False iff no eligible candidate exists (exact mode) / was scanned
  /// (lossy mode with an exhausted slate — the implementation expands
  /// before giving up, so in practice false still means "none eligible").
  bool found = false;
  std::size_t best_index = 0;  ///< view index of the banded-argmax winner
  double best_score = 0.0;     ///< its add score
  bool exact_proven = false;   ///< bit-identity to the full scan is proven
};

/// All candidates a frontier scan scored, ascending view index, with
/// their add scores — the raw material for consumers that need more than
/// the argmax (branch-and-bound ordering).
struct FrontierScanResult {
  std::vector<std::size_t> indices;
  std::vector<double> scores;
  bool exact_proven = false;
};

/// \brief Scores the per-shard top-k slates of `pool` against `session`'s
/// committed jury and (in exact mode) refines until the scanned set
/// provably contains the full scan's banded argmax.
///
/// Eligibility of view index `i`: `!excluded[i]` and
/// `!(jury_cost + cost[i] > budget)` — byte-for-byte the affordability
/// expression of the solvers' full scans, so the eligible sets match to
/// the last rounding. A shard with `jury_cost + min_cost > budget` is
/// skipped whole.
///
/// Exactness rule (the refinement the ISSUE's "bound-guarded exactness"
/// names): solvers pick winners with the banded first-wins argmax — a
/// later candidate only displaces the incumbent when it scores more than
/// `kScoreEquivalenceTol` higher. For a pruned (unscanned) candidate `p`
/// of shard `s`, monotonicity in `key` bounds `score(p) <= fence_s`,
/// where `fence_s` is the score of any *scanned* eligible candidate whose
/// key is >= the shard's fence key (scores depend only on the key and the
/// committed jury, not on which shard the candidate sits in, so any
/// scanned witness fences the shard). The guard accepts shard `s` when
///
///     fence_s <= rb_entry(s) + kScoreEquivalenceTol / 2,
///
/// with `rb_entry(s)` the running best the banded argmax holds when it
/// reaches the shard's first index (computed over scanned candidates
/// only; over all candidates it could only be larger). Then no pruned
/// candidate of `s` can displace anything the full scan's incumbent
/// chain does — the full scan and the scanned-only scan pick the same
/// winner, bit for bit. Shards failing the guard are expanded to a full
/// shard scan and the check repeats; in the worst case every shard
/// expands and the scan *is* the full scan, so exact mode never returns
/// a different bit than the O(N) path.
FrontierScanResult FrontierScanAdds(IncrementalJqEvaluator& session,
                                    const ShardedWorkerPool& pool,
                                    ShardedWorkerPool::KeyColumn key,
                                    const std::vector<char>& excluded,
                                    double jury_cost, double budget,
                                    const FrontierOptions& options,
                                    FrontierScanStats* stats);

/// The banded first-wins argmax over `FrontierScanAdds` — a drop-in for
/// the solvers' full-scan round: in exact mode, (found, best_index,
/// best_score) are bit-identical to the full O(N) scan's.
FrontierPick FrontierSelectAdd(IncrementalJqEvaluator& session,
                               const ShardedWorkerPool& pool,
                               ShardedWorkerPool::KeyColumn key,
                               const std::vector<char>& excluded,
                               double jury_cost, double budget,
                               const FrontierOptions& options,
                               FrontierScanStats* stats);

/// Maps an objective's monotone score key onto the pool's slate columns;
/// empty when the objective declares none (frontier unusable).
inline bool FrontierKeyColumn(JqObjective::ScoreMonotoneKey key,
                              ShardedWorkerPool::KeyColumn* column) {
  switch (key) {
    case JqObjective::ScoreMonotoneKey::kNormQuality:
      *column = ShardedWorkerPool::KeyColumn::kNormQuality;
      return true;
    case JqObjective::ScoreMonotoneKey::kQuality:
      *column = ShardedWorkerPool::KeyColumn::kQuality;
      return true;
    case JqObjective::ScoreMonotoneKey::kNone:
      return false;
  }
  return false;
}

/// True when `options`-style knobs allow frontier scans for this solve:
/// a pool is wired, it is built over exactly the view the session is
/// bound to, and the objective declares a monotone key (written through
/// `*column`).
bool FrontierUsable(const ShardedWorkerPool* pool,
                    const WorkerPoolView* session_view,
                    const JqObjective& objective, std::size_t frontier_k,
                    ShardedWorkerPool::KeyColumn* column);

/// Folds a solve's accumulated stats into the process-wide registry
/// counters (`frontier.candidates_scanned`, `frontier.exactness_proofs`).
/// Solvers call it once per solve, after the last scan.
void FlushFrontierStats(const FrontierScanStats& stats);

}  // namespace jury

#endif  // JURYOPT_CORE_FRONTIER_H_
