#include "core/annealing.h"

#include <algorithm>
#include <cmath>

namespace jury {
namespace {

/// Mutable SA state: the jury as an index set plus cached cost/quality.
class SearchState {
 public:
  SearchState(const JspInstance& instance, const JqObjective& objective,
              AnnealingStats* stats)
      : instance_(instance), objective_(objective), stats_(stats) {
    selected_.assign(instance.num_candidates(), false);
    current_jq_ = EmptyJuryJq(instance.alpha);
    best_members_ = members_;
    best_jq_ = current_jq_;
  }

  const std::vector<std::size_t>& members() const { return members_; }
  double cost() const { return cost_; }
  double current_jq() const { return current_jq_; }
  bool is_selected(std::size_t i) const { return selected_[i]; }
  std::size_t size() const { return members_.size(); }

  const std::vector<std::size_t>& best_members() const {
    return best_members_;
  }
  double best_jq() const { return best_jq_; }

  /// JQ of the current jury with `out` removed (SIZE_MAX = nothing) and
  /// `in` added (SIZE_MAX = nothing).
  double EvaluateWith(std::size_t out, std::size_t in) const {
    Jury candidate;
    for (std::size_t idx : members_) {
      if (idx != out) candidate.Add(instance_.candidates[idx]);
    }
    if (in != kNone) candidate.Add(instance_.candidates[in]);
    if (stats_ != nullptr) ++stats_->objective_evaluations;
    return objective_.Evaluate(candidate, instance_.alpha);
  }

  void Add(std::size_t idx, double new_jq) {
    selected_[idx] = true;
    members_.push_back(idx);
    cost_ += instance_.candidates[idx].cost;
    SetJq(new_jq);
  }

  void Replace(std::size_t out, std::size_t in, double new_jq) {
    selected_[out] = false;
    selected_[in] = true;
    auto it = std::find(members_.begin(), members_.end(), out);
    *it = in;
    cost_ += instance_.candidates[in].cost - instance_.candidates[out].cost;
    SetJq(new_jq);
  }

  void Remove(std::size_t out, double new_jq) {
    selected_[out] = false;
    members_.erase(std::find(members_.begin(), members_.end(), out));
    cost_ -= instance_.candidates[out].cost;
    SetJq(new_jq);
  }

  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

 private:
  void SetJq(double jq) {
    current_jq_ = jq;
    if (jq > best_jq_) {
      best_jq_ = jq;
      best_members_ = members_;
    }
  }

  const JspInstance& instance_;
  const JqObjective& objective_;
  AnnealingStats* stats_;
  std::vector<bool> selected_;
  std::vector<std::size_t> members_;
  double cost_ = 0.0;
  double current_jq_ = 0.0;
  std::vector<std::size_t> best_members_;
  double best_jq_ = 0.0;
};

/// Boltzmann acceptance (§5.1): uphill always, downhill with exp(delta/T).
bool Accept(double delta, double temperature, Rng* rng) {
  if (delta >= 0.0) return true;
  return rng->Uniform() <= std::exp(delta / temperature);
}

/// Uniform pick among unselected candidate indices; kNone when all selected.
std::size_t PickUnselected(const SearchState& state, std::size_t n,
                           Rng* rng) {
  const std::size_t complement = n - state.size();
  if (complement == 0) return SearchState::kNone;
  std::size_t target = static_cast<std::size_t>(rng->UniformInt(complement));
  for (std::size_t i = 0; i < n; ++i) {
    if (!state.is_selected(i)) {
      if (target == 0) return i;
      --target;
    }
  }
  return SearchState::kNone;
}

}  // namespace

Result<JspSolution> SolveAnnealing(const JspInstance& instance,
                                   const JqObjective& objective, Rng* rng,
                                   const AnnealingOptions& options,
                                   AnnealingStats* stats) {
  JURY_RETURN_NOT_OK(instance.Validate());
  if (rng == nullptr) {
    return Status::InvalidArgument("SolveAnnealing requires an Rng");
  }
  if (!(options.initial_temperature > 0.0) || !(options.epsilon > 0.0) ||
      !(options.cooling_factor > 0.0) || !(options.cooling_factor < 1.0)) {
    return Status::InvalidArgument("invalid annealing schedule");
  }
  if (stats != nullptr) *stats = AnnealingStats{};

  const std::size_t n = instance.num_candidates();
  if (n == 0) {
    return MakeSolution(instance, {}, EmptyJuryJq(instance.alpha));
  }

  SearchState state(instance, objective, stats);
  const bool blind_adds =
      options.trust_monotone_adds && objective.monotone_in_size();

  for (double temperature = options.initial_temperature;
       temperature >= options.epsilon;
       temperature *= options.cooling_factor) {
    if (stats != nullptr) ++stats->temperature_levels;
    for (std::size_t step = 0; step < n; ++step) {
      const std::size_t r = static_cast<std::size_t>(rng->UniformInt(n));
      if (stats != nullptr) ++stats->moves_attempted;

      // Steps 9-11 of Algorithm 3: adopt an affordable unselected worker.
      if (!state.is_selected(r) &&
          state.cost() + instance.candidates[r].cost <= instance.budget) {
        const double new_jq = state.EvaluateWith(SearchState::kNone, r);
        const double delta = new_jq - state.current_jq();
        if (blind_adds || Accept(delta, temperature, rng)) {
          state.Add(r, new_jq);
          if (stats != nullptr) {
            ++stats->moves_accepted;
            if (delta >= 0.0) ++stats->uphill_accepts;
            else ++stats->downhill_accepts;
          }
        }
        continue;
      }

      // Extension (removal_probability > 0): occasionally propose dropping
      // a selected worker outright, Boltzmann-gated like any other move.
      if (state.is_selected(r) && options.removal_probability > 0.0 &&
          rng->Bernoulli(options.removal_probability)) {
        const double new_jq = state.EvaluateWith(r, SearchState::kNone);
        const double delta = new_jq - state.current_jq();
        if (Accept(delta, temperature, rng)) {
          state.Remove(r, new_jq);
          if (stats != nullptr) {
            ++stats->moves_accepted;
            if (delta >= 0.0) ++stats->uphill_accepts;
            else ++stats->downhill_accepts;
          }
        }
        continue;
      }

      // Algorithm 4 (Swap): pair `r` with a partner on the other side.
      std::size_t out = SearchState::kNone;
      std::size_t in = SearchState::kNone;
      if (!state.is_selected(r)) {
        if (state.size() == 0) continue;
        const std::size_t pos =
            static_cast<std::size_t>(rng->UniformInt(state.size()));
        out = state.members()[pos];
        in = r;
      } else {
        in = PickUnselected(state, n, rng);
        if (in == SearchState::kNone) continue;
        out = r;
      }
      const double new_cost = state.cost() -
                              instance.candidates[out].cost +
                              instance.candidates[in].cost;
      if (new_cost > instance.budget) continue;

      const double new_jq = state.EvaluateWith(out, in);
      const double delta = new_jq - state.current_jq();
      if (Accept(delta, temperature, rng)) {
        state.Replace(out, in, new_jq);
        if (stats != nullptr) {
          ++stats->moves_accepted;
          if (delta >= 0.0) ++stats->uphill_accepts;
          else ++stats->downhill_accepts;
        }
      }
    }
  }

  if (options.return_best_seen) {
    return MakeSolution(instance, state.best_members(), state.best_jq());
  }
  return MakeSolution(instance, state.members(), state.current_jq());
}

}  // namespace jury
