#include "core/annealing.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <span>
#include <vector>

#include "core/frontier.h"
#include "model/sharded_pool.h"
#include "model/worker_pool_view.h"
#include "util/scheduler.h"

namespace jury {
namespace {

/// Score-comparison band shared with the other solvers; see
/// `kScoreEquivalenceTol` in objective.h for why every score-sensitive
/// decision is banded.
constexpr double kScoreTol = kScoreEquivalenceTol;

/// Mutable SA state: the jury as an index set, its cached cost, and the
/// objective's evaluation session holding the jury's delta-update state.
/// Every candidate move is *staged* on the session (`Score*`), then either
/// committed (move accepted) or rolled back (rejected).
class SearchState {
 public:
  SearchState(const JspInstance& instance, const WorkerPoolView& view,
              const JqObjective& objective, bool use_incremental,
              AnnealingStats* stats)
      : instance_(instance),
        stats_(stats),
        session_(objective.StartSession(view, instance.alpha,
                                        use_incremental)) {
    selected_.assign(instance.num_candidates(), false);
    best_members_ = members_;
    best_jq_ = session_->current_jq();
  }

  const std::vector<std::size_t>& members() const { return members_; }
  double cost() const { return cost_; }
  double current_jq() const { return session_->current_jq(); }
  bool is_selected(std::size_t i) const { return selected_[i]; }
  std::size_t size() const { return members_.size(); }

  const std::vector<std::size_t>& best_members() const {
    return best_members_;
  }
  double best_jq() const { return best_jq_; }

  /// Stages "add candidate `in`" and returns the resulting JQ.
  double ScoreAdd(std::size_t in) {
    CountEvaluation();
    return session_->ScoreAdd(instance_.candidates[in]);
  }
  /// Stages "remove candidate `out`" and returns the resulting JQ.
  double ScoreRemove(std::size_t out) {
    CountEvaluation();
    staged_pos_ = PositionOf(out);
    return session_->ScoreRemove(staged_pos_);
  }
  /// Stages "swap candidate `out` for `in`" and returns the resulting JQ.
  double ScoreSwap(std::size_t out, std::size_t in) {
    CountEvaluation();
    staged_pos_ = PositionOf(out);
    return session_->ScoreSwap(staged_pos_, instance_.candidates[in]);
  }
  void Reject() { session_->Rollback(); }

  void AcceptAdd(std::size_t in) {
    session_->Commit();
    selected_[in] = true;
    members_.push_back(in);
    cost_ += instance_.candidates[in].cost;
    TrackBest();
  }

  void AcceptSwap(std::size_t out, std::size_t in) {
    session_->Commit();
    selected_[out] = false;
    selected_[in] = true;
    members_[staged_pos_] = in;
    cost_ += instance_.candidates[in].cost - instance_.candidates[out].cost;
    TrackBest();
  }

  void AcceptRemove(std::size_t out) {
    session_->Commit();
    selected_[out] = false;
    members_.erase(members_.begin() +
                   static_cast<std::ptrdiff_t>(staged_pos_));
    cost_ -= instance_.candidates[out].cost;
    TrackBest();
  }

  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

 private:
  std::size_t PositionOf(std::size_t candidate) const {
    const auto it = std::find(members_.begin(), members_.end(), candidate);
    return static_cast<std::size_t>(it - members_.begin());
  }

  void CountEvaluation() {
    if (stats_ != nullptr) ++stats_->objective_evaluations;
  }

  void TrackBest() {
    const double jq = session_->current_jq();
    if (jq > best_jq_ + kScoreTol) {
      best_jq_ = jq;
      best_members_ = members_;
    }
  }

  const JspInstance& instance_;
  AnnealingStats* stats_;
  std::unique_ptr<IncrementalJqEvaluator> session_;
  std::vector<bool> selected_;
  std::vector<std::size_t> members_;
  double cost_ = 0.0;
  std::size_t staged_pos_ = 0;
  std::vector<std::size_t> best_members_;
  double best_jq_ = 0.0;
};

/// Boltzmann acceptance (§5.1): uphill always, downhill with exp(delta/T).
/// The uniform draw happens unconditionally so that the rng stream advances
/// identically however a numerically-tied delta lands.
bool Accept(double delta, double temperature, Rng* rng) {
  const double u = rng->Uniform();
  if (delta >= -kScoreTol) return true;
  return u <= std::exp(delta / temperature);
}

/// Uniform pick among unselected candidate indices; kNone when all selected.
std::size_t PickUnselected(const SearchState& state, std::size_t n,
                           Rng* rng) {
  const std::size_t complement = n - state.size();
  if (complement == 0) return SearchState::kNone;
  std::size_t target = static_cast<std::size_t>(rng->UniformInt(complement));
  for (std::size_t i = 0; i < n; ++i) {
    if (!state.is_selected(i)) {
      if (target == 0) return i;
      --target;
    }
  }
  return SearchState::kNone;
}

/// \brief Batched best-improvement polish of one jury over its full
/// add/remove/swap neighbourhood — the unified-move-scan retrofit of the
/// annealing neighbourhood (see `AnnealingOptions::max_polish_moves`).
///
/// Each scan is three contiguous batched passes: every affordable add
/// through `ScoreAddBatch`, every removal through `ScoreRemoveBatch`
/// (skipped for monotone objectives, where Lemma 1 rules removals out),
/// and every member's affordable swap partners through `ScoreSwapBatch` —
/// all on view indices, all fused-kernel scans, where the SA schedule
/// probes one random move at a time. The best strictly-improving move
/// (banded first-wins, scan order: adds by index, removals by position,
/// swaps by (position, index)) is applied and the scan repeats until no
/// move clears the band or the move cap is hit. Deterministic and
/// rng-free, hence bit-stable across thread counts and SIMD levels.
JspSolution PolishNeighbourhood(const JspInstance& instance,
                                const WorkerPoolView& view,
                                const JqObjective& objective,
                                const AnnealingOptions& options,
                                const std::vector<std::size_t>& start,
                                AnnealingStats* stats,
                                WorkGovernor* governor) {
  const std::size_t n = instance.num_candidates();
  const std::span<const double> cost_col = view.cost();
  auto session =
      objective.StartSession(view, instance.alpha, options.use_incremental);
  std::vector<char> selected(n, 0);
  std::vector<std::size_t> order;  // member index by session position
  double cost = 0.0;
  for (std::size_t idx : start) {
    session->ScoreAdd(view.worker(idx));
    session->Commit();
    selected[idx] = 1;
    order.push_back(idx);
    cost += cost_col[idx];
  }
  const std::size_t move_cap =
      options.max_polish_moves == AnnealingOptions::kAutoPolishMoves
          ? 2 * n + 8
          : options.max_polish_moves;
  const bool monotone = objective.monotone_in_size();

  // Frontier pre-selection applies to the adds pass (the only pass whose
  // candidates are "add this worker", which is what the monotone key
  // bounds). The adds run first in each scan, so the banded incumbent
  // starts from -inf exactly as in the full pass and the exact-mode pick
  // reproduces the incumbent the full adds loop would leave behind,
  // bit for bit; removals and swaps then proceed unchanged. Polish runs
  // per chain, possibly concurrently, so the stats stay chain-local and
  // are flushed to the (atomic) registry counters at the end.
  ShardedWorkerPool::KeyColumn frontier_key{};
  const bool use_frontier =
      FrontierUsable(options.sharded_pool, &view, objective,
                     options.frontier_k, &frontier_key);
  FrontierOptions frontier_options;
  frontier_options.k = options.frontier_k;
  frontier_options.exact = options.frontier_exact;
  FrontierScanStats frontier_stats;

  enum class Kind { kNone, kAdd, kRemove, kSwap };
  std::vector<std::size_t> batch_ids;
  std::vector<std::size_t> positions;
  std::vector<double> scores;
  for (std::size_t applied = 0; applied < move_cap; ++applied) {
    // One polish scan is one work unit: scans dominate the polish cost
    // and their count is a pure function of the jury, so the stop point
    // stays deterministic under `max_work_units`.
    if (governor->Tick() != StopReason::kNone) break;
    if (stats != nullptr) ++stats->polish_scans;
    const double current = session->current_jq();
    double best_score = -std::numeric_limits<double>::infinity();
    Kind best_kind = Kind::kNone;
    std::size_t best_in = 0;
    std::size_t best_pos = 0;
    const auto consider = [&](double score, Kind kind, std::size_t in,
                              std::size_t pos) {
      if (score > best_score + kScoreTol) {
        best_score = score;
        best_kind = kind;
        best_in = in;
        best_pos = pos;
      }
    };

    // Adds: one batched pass over every affordable unselected candidate —
    // or, with a sharded pool wired, the frontier's slate-plus-guard
    // subset, whose banded argmax equals the full pass's (exact mode).
    if (use_frontier) {
      const FrontierPick pick = FrontierSelectAdd(
          *session, *options.sharded_pool, frontier_key, selected, cost,
          instance.budget, frontier_options, &frontier_stats);
      if (pick.found) consider(pick.best_score, Kind::kAdd, pick.best_index, 0);
    } else {
      batch_ids.clear();
      for (std::size_t i = 0; i < n; ++i) {
        if (!selected[i] && cost + cost_col[i] <= instance.budget) {
          batch_ids.push_back(i);
        }
      }
      if (!batch_ids.empty()) {
        scores.resize(batch_ids.size());
        session->ScoreAddBatch(batch_ids.data(), batch_ids.size(),
                               scores.data());
        for (std::size_t j = 0; j < batch_ids.size(); ++j) {
          consider(scores[j], Kind::kAdd, batch_ids[j], 0);
        }
      }
    }

    // Removals: one batched pass over every member position. A monotone
    // objective (Lemma 1) cannot improve by shrinking, so the scan is
    // skipped there — the decision depends only on the objective, never
    // on scores, so the incremental/full paths stay aligned.
    const std::size_t size = order.size();
    if (!monotone && size > 0) {
      positions.resize(size);
      for (std::size_t pos = 0; pos < size; ++pos) positions[pos] = pos;
      scores.resize(size);
      session->ScoreRemoveBatch(positions.data(), size, scores.data());
      for (std::size_t pos = 0; pos < size; ++pos) {
        consider(scores[pos], Kind::kRemove, 0, pos);
      }
    }

    // Swaps: per member position, one batched pass over its affordable
    // partners (the out member's remove fold is amortized inside
    // `ScoreSwapBatch`).
    for (std::size_t pos = 0; pos < size; ++pos) {
      const double c_out = cost_col[order[pos]];
      batch_ids.clear();
      for (std::size_t i = 0; i < n; ++i) {
        if (!selected[i] && cost - c_out + cost_col[i] <= instance.budget) {
          batch_ids.push_back(i);
        }
      }
      if (batch_ids.empty()) continue;
      scores.resize(batch_ids.size());
      session->ScoreSwapBatch(pos, batch_ids.data(), batch_ids.size(),
                              scores.data());
      for (std::size_t j = 0; j < batch_ids.size(); ++j) {
        consider(scores[j], Kind::kSwap, batch_ids[j], pos);
      }
    }

    if (best_kind == Kind::kNone || best_score <= current + kScoreTol) {
      break;  // local optimum under the band
    }
    // Apply the winner by re-staging it (one scalar delta) and committing.
    switch (best_kind) {
      case Kind::kAdd:
        session->ScoreAdd(view.worker(best_in));
        session->Commit();
        selected[best_in] = true;
        order.push_back(best_in);
        cost += cost_col[best_in];
        break;
      case Kind::kRemove:
        session->ScoreRemove(best_pos);
        session->Commit();
        selected[order[best_pos]] = false;
        cost -= cost_col[order[best_pos]];
        order.erase(order.begin() + static_cast<std::ptrdiff_t>(best_pos));
        break;
      case Kind::kSwap:
        session->ScoreSwap(best_pos, view.worker(best_in));
        session->Commit();
        selected[order[best_pos]] = false;
        selected[best_in] = true;
        cost += cost_col[best_in] - cost_col[order[best_pos]];
        order[best_pos] = best_in;
        break;
      case Kind::kNone:
        break;
    }
    if (stats != nullptr) ++stats->polish_moves;
  }
  if (use_frontier) FlushFrontierStats(frontier_stats);
  return MakeSolution(instance, order, session->current_jq());
}

/// One annealing chain (the whole of Algorithm 3): the body of the
/// historical single-run solver, unchanged, so `num_restarts = 1` with the
/// caller's rng reproduces the old trajectories seed-for-seed (the
/// rng-free polish below only post-processes the chain's result).
JspSolution RunChain(const JspInstance& instance, const WorkerPoolView& view,
                     const JqObjective& objective, Rng* rng,
                     const AnnealingOptions& options, AnnealingStats* stats,
                     WorkGovernor* governor) {
  const std::size_t n = instance.num_candidates();
  SearchState state(instance, view, objective, options.use_incremental,
                    stats);
  const bool blind_adds =
      options.trust_monotone_adds && objective.monotone_in_size();

  bool stop = false;
  for (double temperature = options.initial_temperature;
       temperature >= options.epsilon && !stop;
       temperature *= options.cooling_factor) {
    if (stats != nullptr) ++stats->temperature_levels;
    for (std::size_t step = 0; step < n; ++step) {
      // The check site of Algorithm 3: one attempted move is one work
      // unit, ticked before the move so a stopped chain never starts
      // another scoring. The committed jury (and the best-seen
      // incumbent) is always valid here, which is what makes the
      // truncated chain an anytime result.
      if (governor->Tick() != StopReason::kNone) {
        stop = true;
        break;
      }
      const std::size_t r = static_cast<std::size_t>(rng->UniformInt(n));
      if (stats != nullptr) ++stats->moves_attempted;

      // Steps 9-11 of Algorithm 3: adopt an affordable unselected worker.
      if (!state.is_selected(r) &&
          state.cost() + instance.candidates[r].cost <= instance.budget) {
        const double new_jq = state.ScoreAdd(r);
        const double delta = new_jq - state.current_jq();
        if (blind_adds || Accept(delta, temperature, rng)) {
          state.AcceptAdd(r);
          if (stats != nullptr) {
            ++stats->moves_accepted;
            if (delta >= -kScoreTol) ++stats->uphill_accepts;
            else ++stats->downhill_accepts;
          }
        } else {
          state.Reject();
        }
        continue;
      }

      // Extension (removal_probability > 0): occasionally propose dropping
      // a selected worker outright, Boltzmann-gated like any other move.
      if (state.is_selected(r) && options.removal_probability > 0.0 &&
          rng->Bernoulli(options.removal_probability)) {
        const double new_jq = state.ScoreRemove(r);
        const double delta = new_jq - state.current_jq();
        if (Accept(delta, temperature, rng)) {
          state.AcceptRemove(r);
          if (stats != nullptr) {
            ++stats->moves_accepted;
            if (delta >= -kScoreTol) ++stats->uphill_accepts;
            else ++stats->downhill_accepts;
          }
        } else {
          state.Reject();
        }
        continue;
      }

      // Algorithm 4 (Swap): pair `r` with a partner on the other side.
      std::size_t out = SearchState::kNone;
      std::size_t in = SearchState::kNone;
      if (!state.is_selected(r)) {
        if (state.size() == 0) continue;
        const std::size_t pos =
            static_cast<std::size_t>(rng->UniformInt(state.size()));
        out = state.members()[pos];
        in = r;
      } else {
        in = PickUnselected(state, n, rng);
        if (in == SearchState::kNone) continue;
        out = r;
      }
      const double new_cost = state.cost() -
                              instance.candidates[out].cost +
                              instance.candidates[in].cost;
      if (new_cost > instance.budget) continue;

      const double new_jq = state.ScoreSwap(out, in);
      const double delta = new_jq - state.current_jq();
      if (Accept(delta, temperature, rng)) {
        state.AcceptSwap(out, in);
        if (stats != nullptr) {
          ++stats->moves_accepted;
          if (delta >= -kScoreTol) ++stats->uphill_accepts;
          else ++stats->downhill_accepts;
        }
      } else {
        state.Reject();
      }
    }
  }

  JspSolution result =
      options.return_best_seen
          ? MakeSolution(instance, state.best_members(), state.best_jq())
          : MakeSolution(instance, state.members(), state.current_jq());
  // A chain stopped by its governor skips the polish: the stop already
  // consumed the strand's budget (or the clock), and whether the skip
  // happens is itself deterministic under `max_work_units`.
  if (options.max_polish_moves > 0 && !governor->stopped()) {
    result = PolishNeighbourhood(instance, view, objective, options,
                                 result.selected, stats, governor);
  }
  return result;
}

}  // namespace

Status AnnealingOptions::Validate() const {
  // Checks run in field-declaration order and each failure names its own
  // field: callers (and the fuzzers) rely on the lowest-index-field error
  // contract. Every comparison is written NaN-safe (`!(x > 0)` is true
  // for NaN), and the schedule bounds must be *finite* — an infinite
  // initial temperature never cools below epsilon (inf * c == inf), so
  // it would validate a non-terminating loop.
  if (!(initial_temperature > 0.0) ||
      !(initial_temperature <= std::numeric_limits<double>::max())) {
    return Status::InvalidArgument(
        "initial_temperature must be finite and > 0");
  }
  if (!(epsilon > 0.0) || !(epsilon <= std::numeric_limits<double>::max())) {
    return Status::InvalidArgument("epsilon must be finite and > 0");
  }
  if (!(cooling_factor > 0.0) || !(cooling_factor < 1.0)) {
    return Status::InvalidArgument("cooling_factor must be in (0, 1)");
  }
  if (!(removal_probability >= 0.0) || !(removal_probability <= 1.0)) {
    return Status::InvalidArgument(
        "removal_probability must be a probability");
  }
  if (num_restarts == 0) {
    return Status::InvalidArgument("num_restarts must be >= 1");
  }
  if (num_restarts > kMaxRestarts) {
    // The restart fan-out allocates a chain state per restart; an
    // attacker-controlled request must not turn that into an OOM.
    return Status::InvalidArgument("num_restarts must be <= 1000000");
  }
  return Status::OK();
}

Result<JspSolution> SolveAnnealing(const JspInstance& instance,
                                   const JqObjective& objective, Rng* rng,
                                   const AnnealingOptions& options,
                                   AnnealingStats* stats) {
  JURY_RETURN_NOT_OK(instance.Validate());
  // One columnar snapshot per solve, shared read-only by every chain's
  // session (and the polish scans). The planned overload below hoists
  // this (and the pool validation above) to a per-pool context.
  const WorkerPoolView view(instance.candidates);
  return SolveAnnealing(instance, view, objective, rng, options, stats);
}

Result<JspSolution> SolveAnnealing(const JspInstance& instance,
                                   const WorkerPoolView& view,
                                   const JqObjective& objective, Rng* rng,
                                   const AnnealingOptions& options,
                                   AnnealingStats* stats) {
  if (rng == nullptr) {
    return Status::InvalidArgument("SolveAnnealing requires an Rng");
  }
  JURY_RETURN_NOT_OK(options.Validate());
  if (stats != nullptr) *stats = AnnealingStats{};
  if (options.termination != nullptr) *options.termination = TerminationInfo{};

  if (instance.num_candidates() == 0) {
    return MakeSolution(instance, {}, objective.EmptyJq(instance.alpha));
  }

  if (options.num_restarts == 1) {
    WorkGovernor governor(options.cancel_token, options.max_work_units);
    JspSolution solution =
        RunChain(instance, view, objective, rng, options, stats, &governor);
    if (options.termination != nullptr) {
      options.termination->MergeStrand(governor.reason(),
                                       governor.work_done());
    }
    return solution;
  }

  // Multi-restart: split per-chain rng streams from the caller's rng
  // *serially*, then run the chains as one region on the process-wide
  // scheduler. Each chain owns its state, session, rng, and stats; the
  // shared objective only accumulates its (atomic) evaluation counters.
  // Chain k's trajectory depends only on seeds[k], so the result set —
  // and the ordered best-of reduction below — is bit-identical for every
  // thread count. When this solve itself runs inside a task (a
  // budget-table row), the region nests and idle workers steal chains.
  const std::size_t chains = options.num_restarts;
  std::vector<std::uint64_t> seeds(chains);
  for (std::uint64_t& seed : seeds) seed = rng->Next();

  std::vector<JspSolution> solutions(chains);
  std::vector<AnnealingStats> chain_stats(chains);
  // Per-chain governors: each strand gets the full `max_work_units`
  // budget, so its stop point depends only on its own seed — never on
  // how chains were scheduled — and the outcomes merge serially below.
  std::vector<WorkGovernor> governors(chains);
  for (WorkGovernor& governor : governors) {
    governor = WorkGovernor(options.cancel_token, options.max_work_units);
  }
  const auto run_chains = [&](std::size_t begin, std::size_t end) {
    for (std::size_t k = begin; k < end; ++k) {
      Rng chain_rng(seeds[k]);
      solutions[k] =
          RunChain(instance, view, objective, &chain_rng, options,
                   stats != nullptr ? &chain_stats[k] : nullptr,
                   &governors[k]);
    }
  };
  Scheduler::GlobalParallelFor(
      0, chains, 1, run_chains,
      std::min(ResolveThreadCount(options.num_threads), chains));

  std::size_t best = 0;
  for (std::size_t k = 1; k < chains; ++k) {
    const bool better =
        solutions[k].jq > solutions[best].jq + kScoreTol ||
        (solutions[k].jq > solutions[best].jq - kScoreTol &&
         solutions[k].cost < solutions[best].cost);
    if (better) best = k;
  }
  if (stats != nullptr) {
    for (const AnnealingStats& s : chain_stats) {
      stats->temperature_levels += s.temperature_levels;
      stats->moves_attempted += s.moves_attempted;
      stats->moves_accepted += s.moves_accepted;
      stats->uphill_accepts += s.uphill_accepts;
      stats->downhill_accepts += s.downhill_accepts;
      stats->objective_evaluations += s.objective_evaluations;
      stats->polish_scans += s.polish_scans;
      stats->polish_moves += s.polish_moves;
    }
  }
  if (options.termination != nullptr) {
    for (const WorkGovernor& governor : governors) {
      options.termination->MergeStrand(governor.reason(),
                                       governor.work_done());
    }
  }
  return solutions[best];
}

}  // namespace jury
