#ifndef JURYOPT_CORE_OPTJS_H_
#define JURYOPT_CORE_OPTJS_H_

#include "core/annealing.h"
#include "core/exhaustive.h"
#include "core/jsp.h"
#include "core/solver_options.h"
#include "jq/bucket.h"
#include "util/result.h"
#include "util/rng.h"

namespace jury {

/// \brief Configuration of the Optimal Jury Selection System.
///
/// The base's `num_threads` caps the parallel sections of every solver
/// the facade drives (copied over the per-solver knobs); the base's
/// cancellation fields are likewise forwarded into every inner solve, so
/// one token/work-budget bounds the whole facade.
struct OptjsOptions : SolverOptions {
  /// Algorithm-1 settings used for every JQ evaluation.
  BucketJqOptions bucket;
  /// Simulated-annealing schedule (Algorithm 3).
  AnnealingOptions annealing;
  /// Below this candidate count the (exact, Lemma-1-pruned) exhaustive
  /// search is used instead of annealing; 0 disables the shortcut.
  std::size_t exhaustive_threshold = 12;
  /// Master switch for delta-update evaluation across every solver the
  /// facade drives (annealing, exhaustive, greedy fallbacks). Overrides
  /// the per-solver flags when false.
  bool use_incremental = true;

  /// Validates the facade's own knobs plus everything it forwards: the
  /// Algorithm-1 bucket count, the annealing schedule, and the
  /// exhaustive-shortcut threshold (0 = disabled, else a 64-bit-mask
  /// bound). Called at every solve entry.
  Status Validate() const;
};

/// \brief OPTJS — the paper's "Optimal Jury Selection System" (Fig. 1):
/// JSP solved under Bayesian Voting, the JQ-optimal strategy (Corollary 1).
///
/// The returned `jq` is the Algorithm-1 estimate JQ-hat(J, BV, alpha), an
/// underestimate of the true JQ by at most the §4.4 bound.
Result<JspSolution> SolveOptjs(const JspInstance& instance, Rng* rng,
                               const OptjsOptions& options = {});

/// \brief Planned-pool overload: pool validation and the columnar view are
/// the caller's (see the annealing planned overload for the contract), and
/// the Algorithm-1 objective is passed in rather than built per call so
/// the caller owns its evaluation counters — `objective.options()` must
/// equal `options.bucket`. When `annealing_stats` is non-null it receives
/// the inner SA instrumentation (zeroed when the exhaustive shortcut ran
/// instead); `used_exhaustive_shortcut` (when non-null) records which
/// path the facade actually took. The one-argument wrapper above is
/// exactly: validate pool, build view, build
/// `BucketBvObjective(options.bucket)`, call this.
Result<JspSolution> SolveOptjs(const JspInstance& instance,
                               const WorkerPoolView& view,
                               const BucketBvObjective& objective, Rng* rng,
                               const OptjsOptions& options = {},
                               AnnealingStats* annealing_stats = nullptr,
                               bool* used_exhaustive_shortcut = nullptr);

}  // namespace jury

#endif  // JURYOPT_CORE_OPTJS_H_
