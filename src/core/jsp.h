#ifndef JURYOPT_CORE_JSP_H_
#define JURYOPT_CORE_JSP_H_

#include <cstddef>
#include <string>
#include <vector>

#include "model/jury.h"
#include "model/worker.h"
#include "util/json.h"
#include "util/status.h"

namespace jury {

/// \brief An instance of the Jury Selection Problem (§2.2): candidate
/// workers W, a budget B, and the task prior alpha. The goal is
/// `J* = argmax_{J in C} max_S JQ(J, S, alpha)` over feasible juries
/// `C = { J subset of W : sum of costs <= B }`; by Corollary 1 the inner
/// max is attained by Bayesian Voting.
struct JspInstance {
  std::vector<Worker> candidates;
  double budget = 0.0;
  double alpha = 0.5;

  Status Validate() const;
  std::size_t num_candidates() const { return candidates.size(); }
};

/// \brief A solved jury: indices into `JspInstance::candidates`, the
/// objective value attained, and the jury's actual cost (<= budget).
struct JspSolution {
  /// Sorted, de-duplicated candidate indices.
  std::vector<std::size_t> selected;
  /// Objective value (JQ estimate) of the selected jury.
  double jq = 0.0;
  /// Sum of selected workers' costs.
  double cost = 0.0;

  /// Materializes the selected workers as a `Jury`.
  Jury ToJury(const JspInstance& instance) const;
  /// Comma-separated worker ids, for reports.
  std::string Describe(const JspInstance& instance) const;
  /// Deterministic JSON serialization (sorted keys, round-trip doubles):
  /// `{"cost":...,"jq":...,"selected":[...]}`. Shared by
  /// `api::SolveReport::ToJson` and the bench/service logs, so the same
  /// solution always serializes to the same bytes.
  std::string ToJson() const;
  /// The same document as a `Json` value, for embedding in larger reports.
  Json ToJsonValue() const;

  bool operator==(const JspSolution& other) const = default;
};

/// JQ of the empty jury: the strategy can only follow the prior, so the
/// best achievable correctness probability is max(alpha, 1-alpha).
double EmptyJuryJq(double alpha);

/// Builds the (sorted) solution for an index set, computing its cost.
JspSolution MakeSolution(const JspInstance& instance,
                         std::vector<std::size_t> selected, double jq);

}  // namespace jury

#endif  // JURYOPT_CORE_JSP_H_
