#include "core/greedy.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <memory>
#include <numeric>
#include <vector>

#include "util/thread_pool.h"

namespace jury {
namespace {

/// Score-comparison band shared with the other solvers; see
/// `kScoreEquivalenceTol` in objective.h.
constexpr double kScoreTol = kScoreEquivalenceTol;

/// Adds candidates in `order` while they fit. Selection does not depend on
/// scores, so the incremental path grows a session (one O(n) delta per
/// add) while the reference path keeps the original single final
/// evaluation.
JspSolution FillInOrder(const JspInstance& instance,
                        const JqObjective& objective,
                        const std::vector<std::size_t>& order,
                        const GreedyOptions& options) {
  std::vector<std::size_t> selected;
  double cost = 0.0;
  for (std::size_t idx : order) {
    const double c = instance.candidates[idx].cost;
    if (cost + c <= instance.budget) {
      selected.push_back(idx);
      cost += c;
    }
  }
  double jq;
  if (options.use_incremental) {
    auto session = objective.StartSession(instance.alpha, true);
    for (std::size_t idx : selected) {
      session->ScoreAdd(instance.candidates[idx]);
      session->Commit();
    }
    jq = session->current_jq();
  } else {
    Jury jury;
    for (std::size_t idx : selected) jury.Add(instance.candidates[idx]);
    jq = jury.empty() ? EmptyJuryJq(instance.alpha)
                      : objective.Evaluate(jury, instance.alpha);
  }
  return MakeSolution(instance, std::move(selected), jq);
}

std::vector<std::size_t> SortedIndices(
    const JspInstance& instance,
    const std::function<double(const Worker&)>& score) {
  std::vector<std::size_t> order(instance.num_candidates());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return score(instance.candidates[a]) >
                            score(instance.candidates[b]);
                   });
  return order;
}

}  // namespace

Result<JspSolution> SolveGreedyByQuality(const JspInstance& instance,
                                         const JqObjective& objective,
                                         const GreedyOptions& options) {
  JURY_RETURN_NOT_OK(instance.Validate());
  const auto order =
      SortedIndices(instance, [](const Worker& w) { return w.quality; });
  return FillInOrder(instance, objective, order, options);
}

Result<JspSolution> SolveGreedyByValuePerCost(const JspInstance& instance,
                                              const JqObjective& objective,
                                              const GreedyOptions& options) {
  JURY_RETURN_NOT_OK(instance.Validate());
  const auto order = SortedIndices(instance, [](const Worker& w) {
    constexpr double kMinCost = 1e-9;  // free workers get a huge score
    return (w.quality - 0.5) / std::max(w.cost, kMinCost);
  });
  return FillInOrder(instance, objective, order, options);
}

Result<JspSolution> SolveOddTopK(const JspInstance& instance,
                                 const JqObjective& objective,
                                 const GreedyOptions& options) {
  JURY_RETURN_NOT_OK(instance.Validate());
  const auto order =
      SortedIndices(instance, [](const Worker& w) { return w.quality; });

  // The "k best-quality workers that fit" sets are nested in k, so one
  // session grows through all of them, snapshotting at odd sizes. The
  // reference path evaluates each odd prefix from scratch, as the
  // original solver did.
  JspSolution best = MakeSolution(instance, {}, EmptyJuryJq(instance.alpha));
  auto session = options.use_incremental
                     ? objective.StartSession(instance.alpha, true)
                     : nullptr;
  Jury jury;
  std::vector<std::size_t> selected;
  double cost = 0.0;
  for (std::size_t idx : order) {
    const double c = instance.candidates[idx].cost;
    if (cost + c > instance.budget) continue;
    if (session != nullptr) {
      session->ScoreAdd(instance.candidates[idx]);
      session->Commit();
    } else {
      jury.Add(instance.candidates[idx]);
    }
    selected.push_back(idx);
    cost += c;
    if (selected.size() % 2 == 1) {
      const double jq = session != nullptr
                            ? session->current_jq()
                            : objective.Evaluate(jury, instance.alpha);
      if (jq > best.jq + kScoreTol) {
        best = MakeSolution(instance, selected, jq);
      }
    }
  }
  return best;
}

Result<JspSolution> SolveGreedyMarginalGain(const JspInstance& instance,
                                            const JqObjective& objective,
                                            const GreedyOptions& options) {
  JURY_RETURN_NOT_OK(instance.Validate());
  const std::size_t n = instance.num_candidates();
  auto session =
      objective.StartSession(instance.alpha, options.use_incremental);
  std::vector<bool> in_jury(n, false);
  std::vector<std::size_t> selected;
  double cost = 0.0;

  // Parallel scan machinery: candidates are sharded across the pool, each
  // shard scoring through its own clone of the round's session. A clone
  // carries the committed cached state bit-for-bit, so every candidate's
  // score is a pure function of (committed jury, candidate) — identical
  // whichever thread computes it — and the ordered banded argmax below
  // picks the same winner the serial scan would.
  const std::size_t threads =
      std::min(ResolveThreadCount(options.num_threads), n > 0 ? n : 1);
  // Clone support is probed once, on the still-empty session (a copy of
  // empty backend state — one small allocation); backends that return
  // nullptr fall back to the serial scan.
  const bool parallel_scan = threads > 1 && session->Clone() != nullptr;
  ThreadPool pool(parallel_scan ? threads : 1);
  std::vector<double> scores(n, 0.0);
  std::vector<char> scored(n, 0);

  for (;;) {
    std::size_t best_idx = static_cast<std::size_t>(-1);
    double best_score = -std::numeric_limits<double>::infinity();
    if (parallel_scan) {
      std::fill(scored.begin(), scored.end(), 0);
      const std::size_t grain = (n + threads - 1) / threads;
      pool.ParallelFor(0, n, grain,
                       [&](std::size_t begin, std::size_t end) {
                         auto shard_session = session->Clone();
                         for (std::size_t i = begin; i < end; ++i) {
                           if (in_jury[i]) continue;
                           if (cost + instance.candidates[i].cost >
                               instance.budget) {
                             continue;
                           }
                           scores[i] =
                               shard_session->ScoreAdd(instance.candidates[i]);
                           shard_session->Rollback();
                           scored[i] = 1;
                         }
                       });
      for (std::size_t i = 0; i < n; ++i) {
        if (scored[i] && scores[i] > best_score + kScoreTol) {
          best_score = scores[i];
          best_idx = i;
        }
      }
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        if (in_jury[i]) continue;
        if (cost + instance.candidates[i].cost > instance.budget) continue;
        const double score = session->ScoreAdd(instance.candidates[i]);
        if (score > best_score + kScoreTol) {
          best_score = score;
          best_idx = i;
        }
      }
      session->Rollback();
    }
    if (best_idx == static_cast<std::size_t>(-1)) break;  // nothing fits
    if (!objective.monotone_in_size() &&
        best_score <= session->current_jq() + kScoreTol) {
      break;  // for MV-like objectives an extension can hurt; stop early
    }
    // The winner's score is already known: commit it directly instead of
    // re-staging (and re-evaluating) the winning delta.
    session->CommitAdd(instance.candidates[best_idx], best_score);
    in_jury[best_idx] = true;
    selected.push_back(best_idx);
    cost += instance.candidates[best_idx].cost;
  }
  return MakeSolution(instance, std::move(selected), session->current_jq());
}

}  // namespace jury
