#include "core/greedy.h"

#include <algorithm>
#include <functional>
#include <numeric>

namespace jury {
namespace {

/// Adds candidates in `order` while they fit, then evaluates once.
JspSolution FillInOrder(const JspInstance& instance,
                        const JqObjective& objective,
                        const std::vector<std::size_t>& order) {
  std::vector<std::size_t> selected;
  double cost = 0.0;
  for (std::size_t idx : order) {
    const double c = instance.candidates[idx].cost;
    if (cost + c <= instance.budget) {
      selected.push_back(idx);
      cost += c;
    }
  }
  Jury jury;
  for (std::size_t idx : selected) jury.Add(instance.candidates[idx]);
  const double jq = jury.empty() ? EmptyJuryJq(instance.alpha)
                                 : objective.Evaluate(jury, instance.alpha);
  return MakeSolution(instance, std::move(selected), jq);
}

std::vector<std::size_t> SortedIndices(
    const JspInstance& instance,
    const std::function<double(const Worker&)>& score) {
  std::vector<std::size_t> order(instance.num_candidates());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return score(instance.candidates[a]) >
                            score(instance.candidates[b]);
                   });
  return order;
}

}  // namespace

Result<JspSolution> SolveGreedyByQuality(const JspInstance& instance,
                                         const JqObjective& objective) {
  JURY_RETURN_NOT_OK(instance.Validate());
  const auto order =
      SortedIndices(instance, [](const Worker& w) { return w.quality; });
  return FillInOrder(instance, objective, order);
}

Result<JspSolution> SolveGreedyByValuePerCost(const JspInstance& instance,
                                              const JqObjective& objective) {
  JURY_RETURN_NOT_OK(instance.Validate());
  const auto order = SortedIndices(instance, [](const Worker& w) {
    constexpr double kMinCost = 1e-9;  // free workers get a huge score
    return (w.quality - 0.5) / std::max(w.cost, kMinCost);
  });
  return FillInOrder(instance, objective, order);
}

Result<JspSolution> SolveOddTopK(const JspInstance& instance,
                                 const JqObjective& objective) {
  JURY_RETURN_NOT_OK(instance.Validate());
  const auto order =
      SortedIndices(instance, [](const Worker& w) { return w.quality; });

  JspSolution best =
      MakeSolution(instance, {}, EmptyJuryJq(instance.alpha));
  const std::size_t n = instance.num_candidates();
  for (std::size_t k = 1; k <= n; k += 2) {
    // Greedily take the k best-quality workers that fit.
    std::vector<std::size_t> selected;
    double cost = 0.0;
    for (std::size_t idx : order) {
      if (selected.size() == k) break;
      const double c = instance.candidates[idx].cost;
      if (cost + c <= instance.budget) {
        selected.push_back(idx);
        cost += c;
      }
    }
    if (selected.size() < k) break;  // budget cannot host k workers
    Jury jury;
    for (std::size_t idx : selected) jury.Add(instance.candidates[idx]);
    const double jq = objective.Evaluate(jury, instance.alpha);
    if (jq > best.jq) {
      best = MakeSolution(instance, std::move(selected), jq);
    }
  }
  return best;
}

}  // namespace jury
