#include "core/greedy.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <memory>
#include <numeric>
#include <vector>

#include "core/frontier.h"
#include "model/sharded_pool.h"
#include "model/worker_pool_view.h"
#include "util/fault_injection.h"
#include "util/scheduler.h"

namespace jury {
namespace {

/// Score-comparison band shared with the other solvers; see
/// `kScoreEquivalenceTol` in objective.h.
constexpr double kScoreTol = kScoreEquivalenceTol;

/// Adds candidates in `order` while they fit. Selection does not depend on
/// scores, so the incremental path grows a session (one O(n) delta per
/// add) while the reference path keeps the original single final
/// evaluation.
JspSolution FillInOrder(const JspInstance& instance,
                        const WorkerPoolView& view,
                        const JqObjective& objective,
                        const std::vector<std::size_t>& order,
                        const GreedyOptions& options) {
  WorkGovernor governor(options.cancel_token, options.max_work_units);
  if (options.termination != nullptr) *options.termination = TerminationInfo{};
  const std::span<const double> cost_col = view.cost();
  std::vector<std::size_t> selected;
  double cost = 0.0;
  for (std::size_t idx : order) {
    const double c = cost_col[idx];
    if (cost + c <= instance.budget) {
      selected.push_back(idx);
      cost += c;
    }
  }
  // The check site: one committed add is one work unit (the add's fold
  // dominates the cost; the selection pass above is score-free). Both
  // evaluation paths truncate after the same count, so the incremental
  // and reference juries stay identical under `max_work_units`.
  double jq;
  std::size_t kept = 0;
  if (options.use_incremental) {
    auto session = objective.StartSession(view, instance.alpha, true);
    for (; kept < selected.size(); ++kept) {
      if (governor.Tick() != StopReason::kNone) break;
      session->ScoreAdd(view.worker(selected[kept]));
      session->Commit();
    }
    jq = session->current_jq();
  } else {
    Jury jury;
    for (; kept < selected.size(); ++kept) {
      if (governor.Tick() != StopReason::kNone) break;
      jury.Add(view.worker(selected[kept]));
    }
    jq = jury.empty() ? objective.EmptyJq(instance.alpha)
                      : objective.Evaluate(jury, instance.alpha);
  }
  selected.resize(kept);
  if (options.termination != nullptr) {
    options.termination->MergeStrand(governor.reason(), governor.work_done());
  }
  return MakeSolution(instance, std::move(selected), jq);
}

/// Indices sorted by a precomputed key column, descending (stable).
std::vector<std::size_t> SortedIndices(const std::vector<double>& keys) {
  std::vector<std::size_t> order(keys.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(
      order.begin(), order.end(),
      [&](std::size_t a, std::size_t b) { return keys[a] > keys[b]; });
  return order;
}

}  // namespace

Result<JspSolution> SolveGreedyByQuality(const JspInstance& instance,
                                         const JqObjective& objective,
                                         const GreedyOptions& options) {
  JURY_RETURN_NOT_OK(instance.Validate());
  const WorkerPoolView view(instance.candidates);
  return SolveGreedyByQuality(instance, view, objective, options);
}

Result<JspSolution> SolveGreedyByQuality(const JspInstance& instance,
                                         const WorkerPoolView& view,
                                         const JqObjective& objective,
                                         const GreedyOptions& options) {
  JURY_RETURN_NOT_OK(options.Validate());
  const std::vector<double> keys(view.quality().begin(),
                                 view.quality().end());
  return FillInOrder(instance, view, objective, SortedIndices(keys),
                     options);
}

Result<JspSolution> SolveGreedyByValuePerCost(const JspInstance& instance,
                                              const JqObjective& objective,
                                              const GreedyOptions& options) {
  JURY_RETURN_NOT_OK(instance.Validate());
  const WorkerPoolView view(instance.candidates);
  return SolveGreedyByValuePerCost(instance, view, objective, options);
}

Result<JspSolution> SolveGreedyByValuePerCost(const JspInstance& instance,
                                              const WorkerPoolView& view,
                                              const JqObjective& objective,
                                              const GreedyOptions& options) {
  JURY_RETURN_NOT_OK(options.Validate());
  std::vector<double> keys(view.size());
  for (std::size_t i = 0; i < view.size(); ++i) {
    constexpr double kMinCost = 1e-9;  // free workers get a huge score
    keys[i] = (view.quality()[i] - 0.5) / std::max(view.cost()[i], kMinCost);
  }
  return FillInOrder(instance, view, objective, SortedIndices(keys),
                     options);
}

Result<JspSolution> SolveOddTopK(const JspInstance& instance,
                                 const JqObjective& objective,
                                 const GreedyOptions& options) {
  JURY_RETURN_NOT_OK(instance.Validate());
  const WorkerPoolView view(instance.candidates);
  return SolveOddTopK(instance, view, objective, options);
}

Result<JspSolution> SolveOddTopK(const JspInstance& instance,
                                 const WorkerPoolView& view,
                                 const JqObjective& objective,
                                 const GreedyOptions& options) {
  JURY_RETURN_NOT_OK(options.Validate());
  WorkGovernor governor(options.cancel_token, options.max_work_units);
  if (options.termination != nullptr) *options.termination = TerminationInfo{};
  const std::vector<double> keys(view.quality().begin(),
                                 view.quality().end());
  const auto order = SortedIndices(keys);

  // The "k best-quality workers that fit" sets are nested in k, so one
  // session grows through all of them, snapshotting at odd sizes. The
  // reference path evaluates each odd prefix from scratch, as the
  // original solver did. The check site ticks once per candidate
  // considered; `best` tracks the incumbent odd prefix, so a stop
  // returns a valid anytime jury.
  JspSolution best =
      MakeSolution(instance, {}, objective.EmptyJq(instance.alpha));
  auto session = options.use_incremental
                     ? objective.StartSession(view, instance.alpha, true)
                     : nullptr;
  Jury jury;
  std::vector<std::size_t> selected;
  double cost = 0.0;
  for (std::size_t idx : order) {
    if (governor.Tick() != StopReason::kNone) break;
    const double c = view.cost()[idx];
    if (cost + c > instance.budget) continue;
    if (session != nullptr) {
      session->ScoreAdd(view.worker(idx));
      session->Commit();
    } else {
      jury.Add(view.worker(idx));
    }
    selected.push_back(idx);
    cost += c;
    if (selected.size() % 2 == 1) {
      const double jq = session != nullptr
                            ? session->current_jq()
                            : objective.Evaluate(jury, instance.alpha);
      if (jq > best.jq + kScoreTol) {
        best = MakeSolution(instance, selected, jq);
      }
    }
  }
  if (options.termination != nullptr) {
    options.termination->MergeStrand(governor.reason(), governor.work_done());
  }
  return best;
}

Result<JspSolution> SolveGreedyMarginalGain(const JspInstance& instance,
                                            const JqObjective& objective,
                                            const GreedyOptions& options) {
  JURY_RETURN_NOT_OK(instance.Validate());
  // One columnar snapshot per solve: sessions (and their per-shard
  // clones) score straight off the view's contiguous columns, and the
  // affordability filter reads the cost column instead of Worker structs.
  const WorkerPoolView view(instance.candidates);
  return SolveGreedyMarginalGain(instance, view, objective, options);
}

Result<JspSolution> SolveGreedyMarginalGain(const JspInstance& instance,
                                            const WorkerPoolView& view,
                                            const JqObjective& objective,
                                            const GreedyOptions& options) {
  JURY_RETURN_NOT_OK(options.Validate());
  WorkGovernor governor(options.cancel_token, options.max_work_units);
  if (options.termination != nullptr) *options.termination = TerminationInfo{};
  const std::size_t n = instance.num_candidates();
  auto session =
      objective.StartSession(view, instance.alpha, options.use_incremental);
  std::vector<char> in_jury(n, 0);
  std::vector<std::size_t> selected;
  double cost = 0.0;

  // Candidate-frontier pre-selection (core/frontier.h): when a sharded
  // pool over this exact view is wired in and the objective declares a
  // monotone score key, each round scores the per-shard top-k slates plus
  // whatever the bound guard demands, instead of every eligible
  // candidate. In exact mode the pick is bit-identical to the full scan
  // below (property-tested), so the round structure — and therefore the
  // work-unit accounting and the returned jury — is unchanged.
  ShardedWorkerPool::KeyColumn frontier_key{};
  const bool use_frontier =
      FrontierUsable(options.sharded_pool, &view, objective,
                     options.frontier_k, &frontier_key);
  FrontierOptions frontier_options;
  frontier_options.k = options.frontier_k;
  frontier_options.exact = options.frontier_exact;
  FrontierScanStats frontier_stats;

  // Scan machinery: each round gathers the affordable candidate indices
  // (ascending) and scores them through the session's index-based batched
  // `ScoreAddBatch` kernel. In the parallel case the candidate list is
  // sharded across the process-wide scheduler with an autotuned grain —
  // legal because every candidate's score is a pure function of
  // (committed jury, candidate), never of how candidates are grouped into
  // shards — and each shard scores through its own clone of the round's
  // session, which carries the committed cached state (and the view
  // binding) bit-for-bit. The ordered banded argmax below therefore picks
  // the same winner as the serial scan, for any thread count and grain.
  const std::size_t threads =
      std::min(ResolveThreadCount(options.num_threads), n > 0 ? n : 1);
  // Clone support is probed once, on the still-empty session (a copy of
  // empty backend state — one small allocation); backends that return
  // nullptr fall back to the single-session scan.
  const bool parallel_scan = threads > 1 && session->Clone() != nullptr;
  // Grain feedback per *solve*, not per process: per-item cost differs by
  // orders of magnitude across backends (batched MV vs full-recompute),
  // so a shared tuner would drag every workload toward the last one's
  // grain. One solve runs many rounds of the same workload — the EMA
  // converges after the first. The per-shard overhead to amortize is the
  // session clone, hence the floor of 8 candidates per shard.
  GrainTuner scan_tuner(/*min_grain=*/8);

  const std::span<const double> cost_col = view.cost();
  std::vector<std::size_t> eligible_idx;
  std::vector<double> scores;
  for (;;) {
    // The check site: one selection round (one full candidate scan plus
    // one commit) is one work unit. The committed jury is always valid
    // here, so a stop returns the rounds completed so far.
    if (governor.Tick() != StopReason::kNone) break;
    std::size_t best_idx = 0;
    double best_score = -std::numeric_limits<double>::infinity();
    if (use_frontier) {
      const FrontierPick pick = FrontierSelectAdd(
          *session, *options.sharded_pool, frontier_key, in_jury, cost,
          instance.budget, frontier_options, &frontier_stats);
      if (!pick.found) break;  // nothing fits
      best_idx = pick.best_index;
      best_score = pick.best_score;
      if (!objective.monotone_in_size() &&
          best_score <= session->current_jq() + kScoreTol) {
        break;  // for MV-like objectives an extension can hurt; stop early
      }
      session->CommitAdd(view.worker(best_idx), best_score);
      in_jury[best_idx] = 1;
      selected.push_back(best_idx);
      cost += cost_col[best_idx];
      continue;
    }
    eligible_idx.clear();
    for (std::size_t i = 0; i < n; ++i) {
      if (in_jury[i]) continue;
      if (cost + cost_col[i] > instance.budget) continue;
      eligible_idx.push_back(i);
    }
    if (eligible_idx.empty()) break;  // nothing fits
    scores.resize(eligible_idx.size());
    if (parallel_scan && eligible_idx.size() > 1) {
      Scheduler::Global()->ParallelForTuned(
          &scan_tuner, 0, eligible_idx.size(),
          [&](std::size_t begin, std::size_t end) {
            // A clone is a real allocation on a worker thread; the fault
            // hook stands in for it failing. The throw unwinds through
            // ParallelFor's first-exception path (remaining shards are
            // abandoned, the region drains) up to the API boundary.
            JURY_FAULT_POINT("eval.session_clone");
            auto shard_session = session->Clone();
            shard_session->ScoreAddBatch(eligible_idx.data() + begin,
                                         end - begin, scores.data() + begin);
          },
          threads);
    } else {
      session->ScoreAddBatch(eligible_idx.data(), eligible_idx.size(),
                             scores.data());
    }
    // Banded first-wins argmax, serially in candidate-index order (the
    // eligible list is ascending in i).
    std::size_t best_pos = 0;
    for (std::size_t j = 0; j < scores.size(); ++j) {
      if (scores[j] > best_score + kScoreTol) {
        best_score = scores[j];
        best_pos = j;
      }
    }
    if (!objective.monotone_in_size() &&
        best_score <= session->current_jq() + kScoreTol) {
      break;  // for MV-like objectives an extension can hurt; stop early
    }
    // The winner's score is already known: commit it directly instead of
    // re-staging (and re-evaluating) the winning delta.
    best_idx = eligible_idx[best_pos];
    session->CommitAdd(view.worker(best_idx), best_score);
    in_jury[best_idx] = 1;
    selected.push_back(best_idx);
    cost += cost_col[best_idx];
  }
  if (use_frontier) FlushFrontierStats(frontier_stats);
  if (options.frontier_stats != nullptr) {
    *options.frontier_stats = frontier_stats;
  }
  if (options.termination != nullptr) {
    options.termination->MergeStrand(governor.reason(), governor.work_done());
  }
  return MakeSolution(instance, std::move(selected), session->current_jq());
}

}  // namespace jury
