#include "core/objective.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "core/jsp.h"
#include "jq/closed_form.h"
#include "jq/exact.h"
#include "model/prior.h"
#include "model/worker_pool_view.h"
#include "util/check.h"
#include "util/math.h"
#include "util/poisson_binomial.h"
#include "util/scratch_arena.h"
#include "util/stats_registry.h"

namespace jury {
namespace {

/// §3.3 flip reinterpretation for a single quality; shared with the
/// columnar `WorkerPoolView`, whose `norm_quality()` column precomputes
/// exactly this value (see model/worker.h).
double NormalizeQuality(double q) { return NormalizedQuality(q); }

// ---------------------------------------------------------------------------
// Full-recompute session: the `--no-incremental` reference path. Scores every
// staged move by materializing the jury and calling `Evaluate`, so it is the
// old stateless behavior verbatim (and counts as full evaluations through
// `Evaluate` itself).
// ---------------------------------------------------------------------------
class FullRecomputeEvaluator final : public IncrementalJqEvaluator {
 public:
  FullRecomputeEvaluator(const JqObjective* objective, double alpha)
      : IncrementalJqEvaluator(objective, alpha), objective_(objective) {}

 protected:
  double ComputeAdd(const Worker& worker) override {
    return objective_->Evaluate(MaterializeWith(kNoMember, &worker), alpha());
  }
  double ComputeRemove(std::size_t idx) override {
    return objective_->Evaluate(MaterializeWith(idx, nullptr), alpha());
  }
  double ComputeSwap(std::size_t out_idx, const Worker& in) override {
    return objective_->Evaluate(MaterializeWith(out_idx, &in), alpha());
  }
  void AdoptStaged() override {}
  /// No cached state: committing a pre-scored add is free.
  void ApplyAdd(const Worker&) override {}

 public:
  std::unique_ptr<IncrementalJqEvaluator> Clone() const override {
    return std::make_unique<FullRecomputeEvaluator>(*this);
  }

 private:
  const JqObjective* objective_;
};

// ---------------------------------------------------------------------------
// MV session: two conditional Poisson-binomial pmfs (zero-votes given t=0 and
// given t=1) updated by AddTrial/RemoveTrial — O(n) per staged move instead
// of the O(n^2) DP rebuild of `MajorityJq`.
// ---------------------------------------------------------------------------
class IncrementalMajorityEvaluator final : public IncrementalJqEvaluator {
 public:
  IncrementalMajorityEvaluator(const JqObjective* objective, double alpha)
      : IncrementalJqEvaluator(objective, alpha) {
    if (ScratchArena* arena = scratch_arena()) {
      arena->Adopt(&batch_q0_);
      arena->Adopt(&batch_q1_);
      arena->Adopt(&batch_tail_);
      arena->Adopt(&batch_cdf_);
    }
  }
  // Clones copy staged capacity rather than adopting (values must match the
  // parent bit for bit), but still donate it back at destruction.
  IncrementalMajorityEvaluator(const IncrementalMajorityEvaluator&) = default;
  ~IncrementalMajorityEvaluator() override {
    if (ScratchArena* arena = scratch_arena()) {
      arena->Donate(&batch_q0_);
      arena->Donate(&batch_q1_);
      arena->Donate(&batch_tail_);
      arena->Donate(&batch_cdf_);
    }
  }

 protected:
  double ComputeAdd(const Worker& worker) override {
    LoadScratch();
    AddToScratch(worker.quality);
    CountIncrementalEvaluation();
    return ScratchScore();
  }
  double ComputeRemove(std::size_t idx) override {
    LoadScratch();
    RemoveFromScratch(members()[idx].quality);
    CountIncrementalEvaluation();
    return ScratchScore();
  }
  double ComputeSwap(std::size_t out_idx, const Worker& in) override {
    LoadScratch();
    RemoveFromScratch(members()[out_idx].quality);
    AddToScratch(in.quality);
    CountIncrementalEvaluation();
    return ScratchScore();
  }
  void AdoptStaged() override {
    zeros_t0_ = std::move(scratch_t0_);
    zeros_t1_ = std::move(scratch_t1_);
  }
  void ApplyAdd(const Worker& worker) override {
    // Same convolution the scratch path runs, minus the scratch copies.
    zeros_t0_.AddTrial(worker.quality);
    zeros_t1_.AddTrial(1.0 - worker.quality);
  }

 public:
  std::unique_ptr<IncrementalJqEvaluator> Clone() const override {
    return std::make_unique<IncrementalMajorityEvaluator>(*this);
  }

  /// Batched add scan: both conditional pmfs are queried through
  /// `PoissonBinomial::EvaluateBatch`, whose fused SoA loops replace the
  /// per-candidate scratch copy + convolution + cumulative rebuild of the
  /// scalar path while reproducing its arithmetic bit for bit.
  void ScoreAddBatch(const Worker* const* candidates, std::size_t count,
                     double* scores) override {
    Rollback();
    if (count == 0) return;
    batch_q0_.resize(count);
    batch_q1_.resize(count);
    for (std::size_t j = 0; j < count; ++j) {
      const double q = candidates[j]->quality;
      batch_q0_[j] = q;
      batch_q1_[j] = 1.0 - q;
    }
    FinishAddBatch(count, scores);
  }

  /// Index-based add scan: candidate probabilities come straight from the
  /// view's quality column — the gather the columnar refactor deletes.
  void ScoreAddBatch(const std::size_t* pool_indices, std::size_t count,
                     double* scores) override {
    Rollback();
    if (count == 0) return;
    JURY_CHECK(view() != nullptr) << "index-based batch scan without a view";
    const std::span<const double> quality = view()->quality();
    batch_q0_.resize(count);
    batch_q1_.resize(count);
    for (std::size_t j = 0; j < count; ++j) {
      const double q = quality[pool_indices[j]];
      batch_q0_[j] = q;
      batch_q1_[j] = 1.0 - q;
    }
    FinishAddBatch(count, scores);
  }

  /// Batched remove scan: for each member position, the tail/cdf pair of
  /// the committed pmfs with that member's trial deconvolved out, through
  /// `PoissonBinomial::EvaluateRemoveBatch` — the remove fold of the
  /// unified scan, bit-identical to {copy; RemoveTrial; queries}.
  void ScoreRemoveBatch(const std::size_t* member_positions,
                        std::size_t count, double* scores) override {
    Rollback();
    if (count == 0) return;
    const int n = zeros_t0_.size();
    if (n <= 1) {
      // Removing the only member leaves the empty jury.
      const double empty = EmptyJuryJq(alpha());
      for (std::size_t j = 0; j < count; ++j) scores[j] = empty;
      CountIncrementalEvaluations(count);
      return;
    }
    const int zeros_needed = (n - 1) / 2 + 1;
    const std::vector<double>& committed = member_qualities();
    batch_q0_.resize(count);
    batch_q1_.resize(count);
    batch_tail_.resize(count);
    batch_cdf_.resize(count);
    for (std::size_t j = 0; j < count; ++j) {
      const double q = committed[member_positions[j]];
      batch_q0_[j] = q;
      batch_q1_[j] = 1.0 - q;
    }
    struct Ctx {
      IncrementalMajorityEvaluator* self;
      std::size_t count;
      int zeros_needed;
      double* scores;
    };
    Ctx ctx{this, count, zeros_needed, scores};
    RunKernelPass(
        [](void* p) {
          auto* c = static_cast<Ctx*>(p);
          auto& e = *c->self;
          e.zeros_t0_.EvaluateRemoveBatch(e.batch_q0_.data(), c->count,
                                          c->zeros_needed, -1,
                                          e.batch_tail_.data(), nullptr);
          e.zeros_t1_.EvaluateRemoveBatch(e.batch_q1_.data(), c->count, 0,
                                          c->zeros_needed - 1, nullptr,
                                          e.batch_cdf_.data());
          const double a = e.alpha();
          for (std::size_t j = 0; j < c->count; ++j) {
            c->scores[j] =
                a * e.batch_tail_[j] + (1.0 - a) * e.batch_cdf_[j];
          }
        },
        &ctx);
    CountIncrementalEvaluations(count);
  }

  /// Batched swap scan: the outgoing member's trial is deconvolved once
  /// into the scratch pmfs, then every swap-in candidate is scored through
  /// the same fused `EvaluateBatch` kernel the add scan runs — one remove
  /// fold amortized over the whole partner scan.
  void ScoreSwapBatch(std::size_t out_position,
                      const std::size_t* pool_indices, std::size_t count,
                      double* scores) override {
    Rollback();
    if (count == 0) return;
    JURY_CHECK(view() != nullptr) << "index-based batch scan without a view";
    const double q_out = member_qualities()[out_position];
    scratch_t0_ = zeros_t0_;
    scratch_t1_ = zeros_t1_;
    scratch_t0_.RemoveTrial(q_out);
    scratch_t1_.RemoveTrial(1.0 - q_out);
    const int n = scratch_t0_.size() + 1;  // == committed size
    const int zeros_needed = n / 2 + 1;
    const std::span<const double> quality = view()->quality();
    batch_q0_.resize(count);
    batch_q1_.resize(count);
    batch_tail_.resize(count);
    batch_cdf_.resize(count);
    for (std::size_t j = 0; j < count; ++j) {
      const double q = quality[pool_indices[j]];
      batch_q0_[j] = q;
      batch_q1_[j] = 1.0 - q;
    }
    struct Ctx {
      IncrementalMajorityEvaluator* self;
      std::size_t count;
      int zeros_needed;
      double* scores;
    };
    Ctx ctx{this, count, zeros_needed, scores};
    RunKernelPass(
        [](void* p) {
          auto* c = static_cast<Ctx*>(p);
          auto& e = *c->self;
          e.scratch_t0_.EvaluateBatch(e.batch_q0_.data(), c->count,
                                      c->zeros_needed, 0,
                                      e.batch_tail_.data(), nullptr);
          e.scratch_t1_.EvaluateBatch(e.batch_q1_.data(), c->count, 0,
                                      c->zeros_needed - 1, nullptr,
                                      e.batch_cdf_.data());
          const double a = e.alpha();
          for (std::size_t j = 0; j < c->count; ++j) {
            c->scores[j] =
                a * e.batch_tail_[j] + (1.0 - a) * e.batch_cdf_[j];
          }
        },
        &ctx);
    CountIncrementalEvaluations(count);
  }

 private:
  /// Shared tail of the add scans: `batch_q0_`/`batch_q1_` hold the
  /// candidate probabilities (conditioned on t = 0 / t = 1); queries both
  /// committed pmfs and blends the MV score, exactly as `ScratchScore`.
  /// The kernel pass goes through `RunKernelPass` so a bound
  /// `MoveScanSink` can coalesce it with other requests' scans (see
  /// objective.h; scores are identical either way).
  void FinishAddBatch(std::size_t count, double* scores) {
    const int n_new = zeros_t0_.size() + 1;
    const int zeros_needed = n_new / 2 + 1;
    batch_tail_.resize(count);
    batch_cdf_.resize(count);
    struct Ctx {
      IncrementalMajorityEvaluator* self;
      std::size_t count;
      int zeros_needed;
      double* scores;
    };
    Ctx ctx{this, count, zeros_needed, scores};
    RunKernelPass(
        [](void* p) {
          auto* c = static_cast<Ctx*>(p);
          auto& e = *c->self;
          e.zeros_t0_.EvaluateBatch(e.batch_q0_.data(), c->count,
                                    c->zeros_needed, 0,
                                    e.batch_tail_.data(), nullptr);
          e.zeros_t1_.EvaluateBatch(e.batch_q1_.data(), c->count, 0,
                                    c->zeros_needed - 1, nullptr,
                                    e.batch_cdf_.data());
          const double a = e.alpha();
          for (std::size_t j = 0; j < c->count; ++j) {
            c->scores[j] =
                a * e.batch_tail_[j] + (1.0 - a) * e.batch_cdf_[j];
          }
        },
        &ctx);
    CountIncrementalEvaluations(count);
  }

  void LoadScratch() {
    scratch_t0_ = zeros_t0_;
    scratch_t1_ = zeros_t1_;
  }
  void AddToScratch(double q) {
    scratch_t0_.AddTrial(q);
    scratch_t1_.AddTrial(1.0 - q);
  }
  void RemoveFromScratch(double q) {
    scratch_t0_.RemoveTrial(q);
    scratch_t1_.RemoveTrial(1.0 - q);
  }
  double ScratchScore() const {
    const int n = scratch_t0_.size();
    if (n == 0) return EmptyJuryJq(alpha());
    // MV returns 0 iff zeros >= floor(n/2) + 1, as in `MajorityJq`.
    const int zeros_needed = n / 2 + 1;
    return alpha() * scratch_t0_.TailAtLeast(zeros_needed) +
           (1.0 - alpha()) * scratch_t1_.CdfAtMost(zeros_needed - 1);
  }

  PoissonBinomial zeros_t0_{std::vector<double>{}};
  PoissonBinomial zeros_t1_{std::vector<double>{}};
  PoissonBinomial scratch_t0_{std::vector<double>{}};
  PoissonBinomial scratch_t1_{std::vector<double>{}};

  // Reusable SoA staging for `ScoreAddBatch` (capacity persists across
  // greedy rounds; cloned along with the session, which is harmless).
  std::vector<double> batch_q0_, batch_q1_, batch_tail_, batch_cdf_;
};

// ---------------------------------------------------------------------------
// Exact-BV session: caches the enumeration state — per-voting decision
// statistic R(V) and the conditional probabilities Pr(V|t) — so a staged
// move re-folds the 2^n table in O(2^n) instead of re-enumerating in
// O(n 2^n). Falls back to `ExactJqBv` beyond the cache size cap.
// ---------------------------------------------------------------------------
class IncrementalExactBvEvaluator final : public IncrementalJqEvaluator {
 public:
  IncrementalExactBvEvaluator(const JqObjective* objective, double alpha)
      : IncrementalJqEvaluator(objective, alpha),
        prior_stat_(LogOdds(EffectiveQuality(alpha))) {
    FoldMembers({}, &state_);  // empty product
  }

  /// Above this member count the 2^n cache is not maintained (arrays of
  /// 3 * 2^n doubles); moves are scored by full enumeration instead.
  static constexpr std::size_t kMaxCachedMembers = 20;

 protected:
  double ComputeAdd(const Worker& worker) override {
    const std::size_t new_n = size() + 1;
    if (new_n > kMaxCachedMembers) return FullScore(kNoMember, &worker);
    if (!state_.valid) {
      FoldMembers(Hypothetical(kNoMember, nullptr), &scratch_);
      ExtendInPlace(&scratch_, worker.quality);
    } else {
      ExtendFrom(state_, worker.quality, &scratch_);
    }
    CountIncrementalEvaluation();
    return Sweep(scratch_);
  }
  double ComputeRemove(std::size_t idx) override {
    if (size() - 1 > kMaxCachedMembers) return FullScore(idx, nullptr);
    FoldMembers(Hypothetical(idx, nullptr), &scratch_);
    CountIncrementalEvaluation();
    return Sweep(scratch_);
  }
  double ComputeSwap(std::size_t out_idx, const Worker& in) override {
    if (size() > kMaxCachedMembers) return FullScore(out_idx, &in);
    FoldMembers(Hypothetical(out_idx, &in), &scratch_);
    CountIncrementalEvaluation();
    return Sweep(scratch_);
  }
  void AdoptStaged() override { state_ = std::move(scratch_); }
  void DiscardStaged() override { scratch_.valid = false; }
  void ApplyAdd(const Worker& worker) override {
    scratch_.valid = false;
    if (size() + 1 > kMaxCachedMembers || !state_.valid) {
      // Past the cache cap (or with no cached table) the next scoring
      // rebuilds from the member list anyway.
      state_.valid = false;
      return;
    }
    ExtendInPlace(&state_, worker.quality);
  }

 public:
  std::unique_ptr<IncrementalJqEvaluator> Clone() const override {
    return std::make_unique<IncrementalExactBvEvaluator>(*this);
  }

 private:
  struct EnumState {
    std::vector<double> r;   // decision statistic, prior excluded
    std::vector<double> p0;  // Pr(V | t = 0)
    std::vector<double> p1;  // Pr(V | t = 1)
    bool valid = false;
  };

  std::vector<double> Hypothetical(std::size_t out_idx,
                                   const Worker* in) const {
    return MaterializeWith(out_idx, in).qualities();
  }

  /// Builds the enumeration table by folding qualities one at a time;
  /// total work sum_j 2^j = O(2^n).
  static void FoldMembers(const std::vector<double>& qs, EnumState* out) {
    out->r.assign(1, 0.0);
    out->p0.assign(1, 1.0);
    out->p1.assign(1, 1.0);
    for (double q : qs) ExtendInPlace(out, q);
    out->valid = true;
  }

  static void ExtendInPlace(EnumState* state, double q) {
    const std::size_t m = state->r.size();
    const double phi = LogOdds(EffectiveQuality(q));
    state->r.resize(2 * m);
    state->p0.resize(2 * m);
    state->p1.resize(2 * m);
    for (std::size_t mask = 0; mask < m; ++mask) {
      // High half: the new worker votes 1; low half: votes 0.
      state->r[m + mask] = state->r[mask] - phi;
      state->p0[m + mask] = state->p0[mask] * (1.0 - q);
      state->p1[m + mask] = state->p1[mask] * q;
      state->r[mask] += phi;
      state->p0[mask] *= q;
      state->p1[mask] *= (1.0 - q);
    }
  }

  static void ExtendFrom(const EnumState& base, double q, EnumState* out) {
    *out = base;
    ExtendInPlace(out, q);
  }

  double Sweep(const EnumState& state) const {
    double jq = 0.0;
    for (std::size_t mask = 0; mask < state.r.size(); ++mask) {
      // BV answers 0 iff the prior-weighted statistic is >= 0 (Theorem 1).
      if (prior_stat_ + state.r[mask] >= 0.0) {
        jq += alpha() * state.p0[mask];
      } else {
        jq += (1.0 - alpha()) * state.p1[mask];
      }
    }
    return jq;
  }

  double FullScore(std::size_t out_idx, const Worker* in) {
    scratch_.valid = false;
    const std::vector<double> qs = Hypothetical(out_idx, in);
    CountFullEvaluation();
    if (qs.empty()) return EmptyJuryJq(alpha());
    return ExactJqBv(Jury::FromQualities(qs), alpha()).value();
  }

  double prior_stat_;
  EnumState state_;
  EnumState scratch_;
};

// ---------------------------------------------------------------------------
// BV/bucket session: keeps the Algorithm-1 key distribution of the committed
// jury (plus the Theorem-3 prior pseudo-worker) and scores moves by O(span)
// convolution/deconvolution. The bucket grid is pinned to the jury's maximum
// log-odds, exactly as `EstimateJq` derives it, so the state is rebuilt
// whenever a move changes that maximum (or enters/leaves the §4.4 shortcut
// and all-q=0.5 special cases).
// ---------------------------------------------------------------------------
class IncrementalBucketBvEvaluator final : public IncrementalJqEvaluator {
 public:
  IncrementalBucketBvEvaluator(const JqObjective* objective, double alpha,
                               const BucketJqOptions& options)
      : IncrementalJqEvaluator(objective, alpha), options_(options) {
    JURY_CHECK_GT(options_.num_buckets, 0);
    if (!IsUninformativeAlpha(alpha)) {
      has_prior_ = true;
      prior_q_ = NormalizeQuality(alpha);
    }
    if (ScratchArena* arena = scratch_arena()) {
      arena->Adopt(&batch_bs_);
      arena->Adopt(&batch_qs_);
      arena->Adopt(&batch_slot_);
      arena->Adopt(&batch_out_);
    }
  }
  // Clones copy staged capacity rather than adopting (values must match the
  // parent bit for bit), but still donate it back at destruction.
  IncrementalBucketBvEvaluator(const IncrementalBucketBvEvaluator&) = default;
  ~IncrementalBucketBvEvaluator() override {
    if (ScratchArena* arena = scratch_arena()) {
      arena->Donate(&batch_bs_);
      arena->Donate(&batch_qs_);
      arena->Donate(&batch_slot_);
      arena->Donate(&batch_out_);
    }
  }

  /// Key-span guard: past this the dense delta state would be larger than
  /// the one-shot estimator's own dense limit; score via `EstimateJq`.
  static constexpr std::int64_t kMaxIncrementalSpan = std::int64_t{1} << 22;

 protected:
  double ComputeAdd(const Worker& worker) override {
    return Score(kNoMember, &worker);
  }
  double ComputeRemove(std::size_t idx) override {
    return Score(idx, nullptr);
  }
  double ComputeSwap(std::size_t out_idx, const Worker& in) override {
    return Score(out_idx, &in);
  }

  void AdoptStaged() override {
    // Mirror the member-list change in the normalized-quality view.
    if (staged_out_ != kNoMember && staged_has_in_) {
      norm_q_[staged_out_] = staged_in_q_;  // swap in place
    } else if (staged_out_ != kNoMember) {
      norm_q_.erase(norm_q_.begin() + static_cast<std::ptrdiff_t>(staged_out_));
    } else if (staged_has_in_) {
      norm_q_.push_back(staged_in_q_);
    }
    if (scratch_regular_) {
      dist_ = std::move(scratch_dist_);
      if (scratch_rebuilt_ || grid_upper_ != scratch_upper_) {
        grid_upper_ = scratch_upper_;
        RefreshBuckets();
      } else if (staged_out_ != kNoMember && staged_has_in_) {
        bucket_[staged_out_] = staged_in_bucket_;
      } else if (staged_out_ != kNoMember) {
        bucket_.erase(bucket_.begin() +
                      static_cast<std::ptrdiff_t>(staged_out_));
      } else if (staged_has_in_) {
        bucket_.push_back(staged_in_bucket_);
      }
      dist_valid_ = true;
    } else {
      dist_valid_ = false;
    }
  }

  void ApplyAdd(const Worker& worker) override {
    // The in-place mirror of `Score(kNoMember, &worker)` + `AdoptStaged`:
    // same grid/special-case decisions, same convolution, but applied to
    // the committed key distribution directly — no scratch copy and no
    // `PositiveMass` sweep, since the score is already known.
    const double q = NormalizeQuality(worker.quality);
    double max_q = has_prior_ ? prior_q_ : 0.0;
    for (double v : norm_q_) max_q = std::max(max_q, v);
    max_q = std::max(max_q, q);
    norm_q_.push_back(q);
    if (options_.high_quality_cutoff < 1.0 &&
        max_q > options_.high_quality_cutoff) {
      dist_valid_ = false;  // §4.4 shortcut mode: no key state to maintain
      return;
    }
    const double upper = LogOdds(EffectiveQuality(max_q));
    if (upper <= 0.0) {
      dist_valid_ = false;  // all-exactly-0.5 mode
      return;
    }
    const double delta = upper / static_cast<double>(options_.num_buckets);
    if (dist_valid_ && upper == grid_upper_) {
      const std::int64_t b = BucketOf(q, delta);
      if (dist_.span() + b <= kMaxIncrementalSpan) {
        dist_.Convolve(b, q);
        bucket_.push_back(b);
        return;
      }
    }
    // Grid moved or no cached state: rebuild on the new grid (counts as a
    // full evaluation, exactly like the Score rebuild path).
    dist_.Reset();
    std::int64_t span = 0;
    for (double v : norm_q_) span += FoldWorkerInto(&dist_, v, delta);
    if (has_prior_) span += FoldWorkerInto(&dist_, prior_q_, delta);
    CountFullEvaluation();
    if (span > kMaxIncrementalSpan) {
      dist_valid_ = false;
      return;
    }
    grid_upper_ = upper;
    RefreshBuckets();
    dist_valid_ = true;
  }

 public:
  std::unique_ptr<IncrementalJqEvaluator> Clone() const override {
    return std::make_unique<IncrementalBucketBvEvaluator>(*this);
  }

  /// Batched add scan: candidates that stay on the committed grid are
  /// scored through the fused `ConvolvePositiveMassBatch` kernel (one
  /// read-only pass over the committed key distribution per candidate —
  /// no scratch copy, no scatter); candidates that fire a special case
  /// (§4.4 shortcut, all-0.5, grid move, span overflow, no cached state)
  /// fall back to the scalar `ScoreAdd` path, which handles — and counts
  /// — them exactly as before. Scores are bit-identical to the scalar
  /// scan.
  void ScoreAddBatch(const Worker* const* candidates, std::size_t count,
                     double* scores) override {
    Rollback();
    if (count == 0) return;
    const double committed_max = CommittedMaxQuality();
    batch_bs_.clear();
    batch_qs_.clear();
    batch_slot_.clear();
    std::size_t fast_or_special = 0;
    for (std::size_t j = 0; j < count; ++j) {
      const double q = NormalizeQuality(candidates[j]->quality);
      if (!StageAddCandidate(j, q, LogOdds(EffectiveQuality(q)),
                             committed_max, scores, &fast_or_special)) {
        // Grid move / invalid cache / oversized span: the scalar path owns
        // these (including their full-evaluation accounting).
        scores[j] = ScoreAdd(*candidates[j]);
        Rollback();
      }
    }
    FlushConvolveBatch(dist_, scores, fast_or_special);
  }

  /// Index-based add scan: normalized qualities and log-odds come straight
  /// from the view's columns — no per-candidate `Worker` gather and no
  /// re-running of the flip/log per score.
  void ScoreAddBatch(const std::size_t* pool_indices, std::size_t count,
                     double* scores) override {
    Rollback();
    if (count == 0) return;
    JURY_CHECK(view() != nullptr) << "index-based batch scan without a view";
    const std::span<const double> norm = view()->norm_quality();
    const std::span<const double> phi = view()->log_odds();
    const double committed_max = CommittedMaxQuality();
    batch_bs_.clear();
    batch_qs_.clear();
    batch_slot_.clear();
    std::size_t fast_or_special = 0;
    for (std::size_t j = 0; j < count; ++j) {
      const std::size_t idx = pool_indices[j];
      if (!StageAddCandidate(j, norm[idx], phi[idx], committed_max, scores,
                             &fast_or_special)) {
        scores[j] = ScoreAdd(view()->worker(idx));
        Rollback();
      }
    }
    FlushConvolveBatch(dist_, scores, fast_or_special);
  }

  /// Batched remove scan: members whose removal keeps the committed grid
  /// are staged and scored through the fused `DeconvolvePositiveMassBatch`
  /// kernel — the whole scan's backward-recurrence folds in one dispatched
  /// call (scalar reference, AVX2 or AVX-512), with the row buffer staged
  /// once for the batch instead of per member. Removing the grid-defining
  /// (max log-odds) member falls back to the scalar path, which owns the
  /// rebuild and its full-evaluation accounting. Scores and evaluation
  /// counters are bit-identical to the per-member scalar loop.
  void ScoreRemoveBatch(const std::size_t* member_positions,
                        std::size_t count, double* scores) override {
    Rollback();
    if (count == 0) return;
    batch_bs_.clear();
    batch_qs_.clear();
    batch_slot_.clear();
    std::size_t fast_or_special = 0;
    for (std::size_t j = 0; j < count; ++j) {
      const std::size_t pos = member_positions[j];
      if (norm_q_.size() <= 1) {
        scores[j] = EmptyJuryJq(alpha());  // removal empties the jury
        ++fast_or_special;
        continue;
      }
      const double max_q = MaxQualityWithout(pos);
      if (options_.high_quality_cutoff < 1.0 &&
          max_q > options_.high_quality_cutoff) {
        scores[j] = max_q;  // §4.4 escape hatch
        ++fast_or_special;
        continue;
      }
      const double upper = LogOdds(EffectiveQuality(max_q));
      if (upper <= 0.0) {
        scores[j] = 0.5;  // everyone exactly at 0.5
        ++fast_or_special;
        continue;
      }
      if (dist_valid_ && upper == grid_upper_) {
        batch_bs_.push_back(bucket_[pos]);
        batch_qs_.push_back(norm_q_[pos]);
        batch_slot_.push_back(j);
        ++fast_or_special;
        continue;
      }
      scores[j] = ScoreRemove(pos);
      Rollback();
    }
    FlushDeconvolveBatch(scores, fast_or_special);
  }

  /// Batched swap scan: the outgoing member is deconvolved *once* into a
  /// shared scratch distribution, then every same-grid swap-in partner is
  /// scored through the fused `ConvolvePositiveMassBatch` kernel — the
  /// remove fold amortized over the whole partner scan. Grid-changing
  /// candidates (the outgoing member was the max, or the incoming one
  /// becomes it) fall back to the scalar path per candidate.
  void ScoreSwapBatch(std::size_t out_position,
                      const std::size_t* pool_indices, std::size_t count,
                      double* scores) override {
    Rollback();
    if (count == 0) return;
    JURY_CHECK(view() != nullptr) << "index-based batch scan without a view";
    const std::span<const double> norm = view()->norm_quality();
    const std::span<const double> phi = view()->log_odds();
    const double removed_max = MaxQualityWithout(out_position);
    const std::int64_t out_b = dist_valid_ ? bucket_[out_position] : 0;
    batch_bs_.clear();
    batch_qs_.clear();
    batch_slot_.clear();
    std::size_t fast_or_special = 0;
    bool scratch_ready = false;
    for (std::size_t j = 0; j < count; ++j) {
      const std::size_t idx = pool_indices[j];
      const double q = norm[idx];
      const double max_q = std::max(removed_max, q);
      if (options_.high_quality_cutoff < 1.0 &&
          max_q > options_.high_quality_cutoff) {
        scores[j] = max_q;
        ++fast_or_special;
        continue;
      }
      const double upper = LogOdds(EffectiveQuality(max_q));
      if (upper <= 0.0) {
        scores[j] = 0.5;
        ++fast_or_special;
        continue;
      }
      if (dist_valid_ && upper == grid_upper_) {
        const double delta =
            upper / static_cast<double>(options_.num_buckets);
        const std::int64_t b = BucketFromPhi(phi[idx], delta);
        if (dist_.span() - out_b + b <= kMaxIncrementalSpan) {
          if (!scratch_ready) {
            swap_dist_ = dist_;
            swap_dist_.Deconvolve(out_b, norm_q_[out_position]);
            scratch_ready = true;
          }
          batch_bs_.push_back(b);
          batch_qs_.push_back(q);
          batch_slot_.push_back(j);
          ++fast_or_special;
          continue;
        }
      }
      scores[j] = ScoreSwap(out_position, view()->worker(idx));
      Rollback();
    }
    FlushConvolveBatch(swap_dist_, scores, fast_or_special);
  }

 private:
  /// Max normalized quality of jury + prior — the committed part of every
  /// add candidate's grid scan, hoisted out of the batch loop (the scalar
  /// path recomputes it per candidate; `std::max` folds are
  /// order-insensitive for the NaN-free qualities involved, so the hoist
  /// is bit-neutral).
  double CommittedMaxQuality() const {
    double max_q = has_prior_ ? prior_q_ : 0.0;
    for (double v : norm_q_) max_q = std::max(max_q, v);
    return max_q;
  }

  /// Same fold with member `out` excluded — the committed part of every
  /// remove/swap candidate's grid scan.
  double MaxQualityWithout(std::size_t out) const {
    double max_q = has_prior_ ? prior_q_ : 0.0;
    for (std::size_t i = 0; i < norm_q_.size(); ++i) {
      if (i == out) continue;
      max_q = std::max(max_q, norm_q_[i]);
    }
    return max_q;
  }

  /// One add candidate of a batched scan: resolves the special cases
  /// (§4.4 shortcut, all-0.5) directly into `scores[j]`, or stages the
  /// candidate for the fused convolve kernel. Returns false when the
  /// candidate needs the scalar fallback (grid move, invalid cache,
  /// oversized span).
  bool StageAddCandidate(std::size_t j, double q, double candidate_phi,
                         double committed_max, double* scores,
                         std::size_t* fast_or_special) {
    const double max_q = std::max(committed_max, q);
    if (options_.high_quality_cutoff < 1.0 &&
        max_q > options_.high_quality_cutoff) {
      scores[j] = max_q;  // §4.4 escape hatch
      ++*fast_or_special;
      return true;
    }
    const double upper = LogOdds(EffectiveQuality(max_q));
    if (upper <= 0.0) {
      scores[j] = 0.5;  // everyone exactly at 0.5
      ++*fast_or_special;
      return true;
    }
    if (dist_valid_ && upper == grid_upper_) {
      const double delta = upper / static_cast<double>(options_.num_buckets);
      const std::int64_t b = BucketFromPhi(candidate_phi, delta);
      if (dist_.span() + b <= kMaxIncrementalSpan) {
        batch_bs_.push_back(b);
        batch_qs_.push_back(q);
        batch_slot_.push_back(j);
        ++*fast_or_special;
        return true;
      }
    }
    return false;
  }

  /// Shared tail of the batched add/swap scans: runs the fused convolve
  /// kernel for the staged candidates against `dist` and books the
  /// fast/special scorings as one bulk counter update. The kernel pass —
  /// the staged-candidate sweep plus its result scatter — goes through
  /// `RunKernelPass`, so a bound `MoveScanSink` can coalesce it with
  /// passes from concurrently queued requests (see objective.h; results
  /// are identical either way, the pass is a pure function of its staged
  /// inputs).
  void FlushConvolveBatch(const BucketKeyDistribution& dist, double* scores,
                          std::size_t fast_or_special) {
    if (!batch_bs_.empty()) {
      struct Ctx {
        IncrementalBucketBvEvaluator* self;
        const BucketKeyDistribution* dist;
        double* scores;
      };
      Ctx ctx{this, &dist, scores};
      RunKernelPass(
          [](void* p) {
            auto* c = static_cast<Ctx*>(p);
            auto& e = *c->self;
            e.batch_out_.resize(e.batch_bs_.size());
            c->dist->ConvolvePositiveMassBatch(
                e.batch_bs_.data(), e.batch_qs_.data(), e.batch_bs_.size(),
                e.batch_out_.data());
            for (std::size_t m = 0; m < e.batch_bs_.size(); ++m) {
              c->scores[e.batch_slot_[m]] = std::min(e.batch_out_[m], 1.0);
            }
          },
          &ctx);
    }
    CountIncrementalEvaluations(fast_or_special);
  }

  /// Shared tail of the batched remove scan: same structure, with the
  /// fused deconvolve kernel against the committed distribution.
  void FlushDeconvolveBatch(double* scores, std::size_t fast_or_special) {
    if (!batch_bs_.empty()) {
      struct Ctx {
        IncrementalBucketBvEvaluator* self;
        double* scores;
      };
      Ctx ctx{this, scores};
      RunKernelPass(
          [](void* p) {
            auto* c = static_cast<Ctx*>(p);
            auto& e = *c->self;
            e.batch_out_.resize(e.batch_bs_.size());
            e.dist_.DeconvolvePositiveMassBatch(
                e.batch_bs_.data(), e.batch_qs_.data(), e.batch_bs_.size(),
                e.batch_out_.data());
            for (std::size_t m = 0; m < e.batch_bs_.size(); ++m) {
              c->scores[e.batch_slot_[m]] = std::min(e.batch_out_[m], 1.0);
            }
          },
          &ctx);
    }
    CountIncrementalEvaluations(fast_or_special);
  }

  double Score(std::size_t out_idx, const Worker* in) {
    staged_out_ = out_idx;
    staged_has_in_ = in != nullptr;
    staged_in_q_ = in != nullptr ? NormalizeQuality(in->quality) : 0.5;
    scratch_regular_ = false;
    scratch_rebuilt_ = false;

    const std::size_t count =
        norm_q_.size() - (out_idx != kNoMember ? 1 : 0) + (in != nullptr ? 1 : 0);
    if (count == 0) {
      // `Evaluate` short-circuits the empty jury before the estimator runs.
      CountIncrementalEvaluation();
      return EmptyJuryJq(alpha());
    }

    // The grid and the special-case modes depend only on the maximum
    // normalized quality of jury + prior (phi is monotone in q).
    double max_q = has_prior_ ? prior_q_ : 0.0;
    for (std::size_t i = 0; i < norm_q_.size(); ++i) {
      if (i == out_idx) continue;
      max_q = std::max(max_q, norm_q_[i]);
    }
    if (in != nullptr) max_q = std::max(max_q, staged_in_q_);

    // §4.4 escape hatch: a near-perfect juror pins JQ into (cutoff, 1].
    if (options_.high_quality_cutoff < 1.0 &&
        max_q > options_.high_quality_cutoff) {
      CountIncrementalEvaluation();
      return max_q;
    }
    const double upper = LogOdds(EffectiveQuality(max_q));
    if (upper <= 0.0) {
      // Every juror and the prior sit exactly at 0.5: JQ = 0.5 exactly.
      CountIncrementalEvaluation();
      return 0.5;
    }
    const double delta = upper / static_cast<double>(options_.num_buckets);
    staged_in_bucket_ =
        in != nullptr ? BucketOf(staged_in_q_, delta) : std::int64_t{0};

    if (dist_valid_ && upper == grid_upper_) {
      // Same grid: the neighbouring jury's key distribution is one
      // (de)convolution away from the committed one.
      const std::int64_t out_b =
          out_idx != kNoMember ? bucket_[out_idx] : std::int64_t{0};
      const std::int64_t projected =
          dist_.span() - out_b + (in != nullptr ? staged_in_bucket_ : 0);
      if (projected <= kMaxIncrementalSpan) {
        scratch_dist_ = dist_;
        if (out_idx != kNoMember) {
          scratch_dist_.Deconvolve(out_b, norm_q_[out_idx]);
        }
        if (in != nullptr) {
          scratch_dist_.Convolve(staged_in_bucket_, staged_in_q_);
        }
        scratch_upper_ = upper;
        scratch_regular_ = true;
        CountIncrementalEvaluation();
        return std::min(scratch_dist_.PositiveMass(), 1.0);
      }
    }

    // Grid changed (the max-quality member moved) or no valid cached
    // state: rebuild the key distribution from scratch on the new grid.
    scratch_dist_.Reset();
    std::int64_t span = 0;
    for (std::size_t i = 0; i < norm_q_.size(); ++i) {
      if (i == out_idx) continue;
      span += FoldWorker(norm_q_[i], delta);
    }
    if (in != nullptr) span += FoldWorker(staged_in_q_, delta);
    if (has_prior_) span += FoldWorker(prior_q_, delta);
    CountFullEvaluation();
    if (span > kMaxIncrementalSpan) {
      // Oversized dense state: score one-shot and drop the cache.
      scratch_regular_ = false;
      return OneShot(out_idx, in);
    }
    scratch_upper_ = upper;
    scratch_regular_ = true;
    scratch_rebuilt_ = true;
    return std::min(scratch_dist_.PositiveMass(), 1.0);
  }

  std::int64_t BucketOf(double norm_q, double delta) const {
    return BucketFromPhi(LogOdds(EffectiveQuality(norm_q)), delta);
  }

  /// Bucket of a precomputed log-odds (the view's `log_odds()` column
  /// stores exactly `LogOdds(EffectiveQuality(norm_q))`, so column-sourced
  /// buckets are bit-identical to `BucketOf`).
  std::int64_t BucketFromPhi(double phi, double delta) const {
    return static_cast<std::int64_t>(std::ceil(phi / delta - 0.5));
  }

  std::int64_t FoldWorker(double norm_q, double delta) {
    return FoldWorkerInto(&scratch_dist_, norm_q, delta);
  }

  std::int64_t FoldWorkerInto(BucketKeyDistribution* dist, double norm_q,
                              double delta) const {
    const std::int64_t b = BucketOf(norm_q, delta);
    if (dist->span() + b <= kMaxIncrementalSpan) {
      dist->Convolve(b, norm_q);
    }
    return b;
  }

  double OneShot(std::size_t out_idx, const Worker* in) const {
    return EstimateJq(MaterializeWith(out_idx, in), alpha(), options_)
        .value();
  }

  void RefreshBuckets() {
    const double delta =
        grid_upper_ / static_cast<double>(options_.num_buckets);
    bucket_.resize(norm_q_.size());
    for (std::size_t i = 0; i < norm_q_.size(); ++i) {
      bucket_[i] = BucketOf(norm_q_[i], delta);
    }
  }

  BucketJqOptions options_;
  bool has_prior_ = false;
  double prior_q_ = 0.5;

  // Committed state: normalized member qualities (aligned with members()),
  // their buckets under the committed grid, and the key distribution of
  // jury + prior. `dist_valid_` is false in the special-case modes.
  std::vector<double> norm_q_;
  std::vector<std::int64_t> bucket_;
  BucketKeyDistribution dist_;
  bool dist_valid_ = false;
  double grid_upper_ = 0.0;

  // Scratch for the staged move.
  BucketKeyDistribution scratch_dist_;
  // Scratch for the batched swap scan: the committed distribution with
  // the outgoing member deconvolved, shared by every same-grid partner.
  BucketKeyDistribution swap_dist_;
  bool scratch_regular_ = false;
  bool scratch_rebuilt_ = false;
  double scratch_upper_ = 0.0;
  std::size_t staged_out_ = kNoMember;
  bool staged_has_in_ = false;
  double staged_in_q_ = 0.5;
  std::int64_t staged_in_bucket_ = 0;

  // Reusable SoA staging for `ScoreAddBatch`.
  std::vector<std::int64_t> batch_bs_;
  std::vector<double> batch_qs_;
  std::vector<std::size_t> batch_slot_;
  std::vector<double> batch_out_;
};

}  // namespace

// ------------------------------------------------------------- scan sink

namespace {
thread_local MoveScanSink* t_scan_sink = nullptr;
}  // namespace

MoveScanSink* CurrentThreadScanSink() { return t_scan_sink; }

ScopedThreadScanSink::ScopedThreadScanSink(MoveScanSink* sink)
    : previous_(t_scan_sink) {
  t_scan_sink = sink;
}

ScopedThreadScanSink::~ScopedThreadScanSink() { t_scan_sink = previous_; }

// --------------------------------------------------------------- base class

IncrementalJqEvaluator::IncrementalJqEvaluator(const JqObjective* objective,
                                               double alpha)
    : objective_(objective),
      alpha_(alpha),
      scan_sink_(objective->scan_sink()),
      scratch_arena_(objective->scratch_arena() != nullptr
                         ? objective->scratch_arena()
                         : CurrentThreadScratchArena()),
      current_jq_(objective->EmptyJq(alpha)) {}

double IncrementalJqEvaluator::ScoreAdd(const Worker& worker) {
  staged_ = MoveKind::kAdd;
  staged_idx_ = kNoMember;
  staged_worker_ = worker;
  staged_score_ = ComputeAdd(worker);
  return staged_score_;
}

void IncrementalJqEvaluator::ScoreAddBatch(const Worker* const* candidates,
                                           std::size_t count,
                                           double* scores) {
  // Reference implementation: the scalar scan loop, so backends without a
  // batched kernel (full-recompute, exact-BV) behave exactly as before.
  for (std::size_t j = 0; j < count; ++j) {
    scores[j] = ScoreAdd(*candidates[j]);
  }
  Rollback();
}

void IncrementalJqEvaluator::ScoreAddBatch(const std::size_t* pool_indices,
                                           std::size_t count,
                                           double* scores) {
  JURY_CHECK(view_ != nullptr) << "index-based batch scan without a view";
  for (std::size_t j = 0; j < count; ++j) {
    scores[j] = ScoreAdd(view_->worker(pool_indices[j]));
  }
  Rollback();
}

void IncrementalJqEvaluator::ScoreRemoveBatch(
    const std::size_t* member_positions, std::size_t count, double* scores) {
  for (std::size_t j = 0; j < count; ++j) {
    scores[j] = ScoreRemove(member_positions[j]);
  }
  Rollback();
}

void IncrementalJqEvaluator::ScoreSwapBatch(std::size_t out_position,
                                            const std::size_t* pool_indices,
                                            std::size_t count,
                                            double* scores) {
  JURY_CHECK(view_ != nullptr) << "index-based batch scan without a view";
  for (std::size_t j = 0; j < count; ++j) {
    scores[j] = ScoreSwap(out_position, view_->worker(pool_indices[j]));
  }
  Rollback();
}

double IncrementalJqEvaluator::ScoreRemove(std::size_t idx) {
  JURY_CHECK_LT(idx, members_.size());
  staged_ = MoveKind::kRemove;
  staged_idx_ = idx;
  staged_score_ = ComputeRemove(idx);
  return staged_score_;
}

double IncrementalJqEvaluator::ScoreSwap(std::size_t out_idx,
                                         const Worker& in_worker) {
  JURY_CHECK_LT(out_idx, members_.size());
  staged_ = MoveKind::kSwap;
  staged_idx_ = out_idx;
  staged_worker_ = in_worker;
  staged_score_ = ComputeSwap(out_idx, in_worker);
  return staged_score_;
}

void IncrementalJqEvaluator::Commit() {
  JURY_CHECK(staged_ != MoveKind::kNone) << "Commit without a staged move";
  AdoptStaged();
  switch (staged_) {
    case MoveKind::kAdd:
      member_quality_.push_back(staged_worker_.quality);
      members_.push_back(std::move(staged_worker_));
      break;
    case MoveKind::kRemove:
      member_quality_.erase(member_quality_.begin() +
                            static_cast<std::ptrdiff_t>(staged_idx_));
      members_.erase(members_.begin() +
                     static_cast<std::ptrdiff_t>(staged_idx_));
      break;
    case MoveKind::kSwap:
      member_quality_[staged_idx_] = staged_worker_.quality;
      members_[staged_idx_] = std::move(staged_worker_);
      break;
    case MoveKind::kNone:
      break;
  }
  current_jq_ = staged_score_;
  staged_ = MoveKind::kNone;
}

void IncrementalJqEvaluator::Rollback() {
  if (staged_ == MoveKind::kNone) return;
  DiscardStaged();
  staged_ = MoveKind::kNone;
}

void IncrementalJqEvaluator::CommitAdd(const Worker& worker, double score) {
  Rollback();
  ApplyAdd(worker);
  member_quality_.push_back(worker.quality);
  members_.push_back(worker);
  current_jq_ = score;
}

Jury IncrementalJqEvaluator::MaterializeWith(std::size_t out_idx,
                                             const Worker* in) const {
  Jury jury;
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (i == out_idx) {
      if (in != nullptr) jury.Add(*in);  // swap in place
      continue;
    }
    jury.Add(members_[i]);
  }
  if (in != nullptr && out_idx == kNoMember) jury.Add(*in);
  return jury;
}

namespace {

// Process-wide mirrors of the per-objective counters (see
// util/stats_registry.h): the per-objective atomics stay the per-solve
// report source, while these aggregate across every objective in the
// process for `--stats` and the report's opt-in snapshot. Registered at
// static initialization so the instrument set is identical in every
// process, used or not.
StatsRegistry::Counter& g_full_evals = RegisterStatsCounter("eval.full");
StatsRegistry::Counter& g_incremental_evals =
    RegisterStatsCounter("eval.incremental");

}  // namespace

void JqObjective::CountEvaluation() const {
  full_evals_.fetch_add(1, std::memory_order_relaxed);
  g_full_evals.Increment();
}

void IncrementalJqEvaluator::CountFullEvaluation() const {
  objective_->full_evals_.fetch_add(1, std::memory_order_relaxed);
  g_full_evals.Increment();
}

void IncrementalJqEvaluator::CountIncrementalEvaluation() const {
  objective_->incremental_evals_.fetch_add(1, std::memory_order_relaxed);
  g_incremental_evals.Increment();
}

void IncrementalJqEvaluator::CountIncrementalEvaluations(std::size_t n) const {
  if (n == 0) return;
  objective_->incremental_evals_.fetch_add(n, std::memory_order_relaxed);
  g_incremental_evals.Add(n);
}

// ---------------------------------------------------------------- factories

std::unique_ptr<IncrementalJqEvaluator> JqObjective::StartSession(
    double alpha, bool incremental) const {
  // Session construction is the solve path's first real allocation; the
  // hook stands in for it failing before any state exists.
  JURY_FAULT_POINT("eval.session_start");
  if (!incremental) {
    return std::make_unique<FullRecomputeEvaluator>(this, alpha);
  }
  return StartIncrementalSession(alpha);
}

std::unique_ptr<IncrementalJqEvaluator> JqObjective::StartSession(
    const WorkerPoolView& view, double alpha, bool incremental) const {
  auto session = StartSession(alpha, incremental);
  session->BindView(&view);
  return session;
}

std::unique_ptr<IncrementalJqEvaluator> JqObjective::StartIncrementalSession(
    double alpha) const {
  // Objectives without a delta backend still get the session API.
  return std::make_unique<FullRecomputeEvaluator>(this, alpha);
}

std::unique_ptr<IncrementalJqEvaluator>
BucketBvObjective::StartIncrementalSession(double alpha) const {
  return std::make_unique<IncrementalBucketBvEvaluator>(this, alpha,
                                                        options_);
}

std::unique_ptr<IncrementalJqEvaluator>
ExactBvObjective::StartIncrementalSession(double alpha) const {
  return std::make_unique<IncrementalExactBvEvaluator>(this, alpha);
}

std::unique_ptr<IncrementalJqEvaluator>
MajorityObjective::StartIncrementalSession(double alpha) const {
  return std::make_unique<IncrementalMajorityEvaluator>(this, alpha);
}

// --------------------------------------------------------------- one-shots

double BucketBvObjective::Evaluate(const Jury& candidate_jury,
                                   double alpha) const {
  CountEvaluation();
  if (candidate_jury.empty()) return EmptyJuryJq(alpha);
  return EstimateJq(candidate_jury, alpha, options_).value();
}

std::size_t ExactBvObjective::max_jury_size() const {
  return kMaxExactJurySize;
}

double ExactBvObjective::Evaluate(const Jury& candidate_jury,
                                  double alpha) const {
  CountEvaluation();
  if (candidate_jury.empty()) return EmptyJuryJq(alpha);
  // Infallible past the boundary: the pool was checked against
  // max_jury_size() before solving, and alpha at request validation.
  return ExactJqBv(candidate_jury, alpha).value();
}

double MajorityObjective::Evaluate(const Jury& candidate_jury,
                                   double alpha) const {
  CountEvaluation();
  if (candidate_jury.empty()) return EmptyJuryJq(alpha);
  return MajorityJq(candidate_jury, alpha).value();
}

}  // namespace jury
