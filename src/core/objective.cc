#include "core/objective.h"

#include "core/jsp.h"
#include "jq/closed_form.h"
#include "jq/exact.h"

namespace jury {

double BucketBvObjective::Evaluate(const Jury& candidate_jury,
                                   double alpha) const {
  CountEvaluation();
  if (candidate_jury.empty()) return EmptyJuryJq(alpha);
  return EstimateJq(candidate_jury, alpha, options_).value();
}

double ExactBvObjective::Evaluate(const Jury& candidate_jury,
                                  double alpha) const {
  CountEvaluation();
  if (candidate_jury.empty()) return EmptyJuryJq(alpha);
  return ExactJqBv(candidate_jury, alpha).value();
}

double MajorityObjective::Evaluate(const Jury& candidate_jury,
                                   double alpha) const {
  CountEvaluation();
  if (candidate_jury.empty()) return EmptyJuryJq(alpha);
  return MajorityJq(candidate_jury, alpha).value();
}

}  // namespace jury
