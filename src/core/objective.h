#ifndef JURYOPT_CORE_OBJECTIVE_H_
#define JURYOPT_CORE_OBJECTIVE_H_

#include <memory>
#include <string>

#include "jq/bucket.h"
#include "model/jury.h"

namespace jury {

/// \brief The quality function a JSP solver maximizes. OPTJS plugs in the
/// bucket-approximated Bayesian-Voting JQ; the MVJS baseline plugs in the
/// exact Majority-Voting JQ. Solvers treat this as a black box, which is
/// exactly how §7 argues the annealing heuristic generalizes.
class JqObjective {
 public:
  virtual ~JqObjective() = default;
  virtual std::string name() const = 0;

  /// JQ estimate of `candidate_jury` under prior `alpha`. Must accept the
  /// empty jury (returning `EmptyJuryJq(alpha)`).
  virtual double Evaluate(const Jury& candidate_jury, double alpha) const = 0;

  /// Whether JQ never decreases when a worker is added (Lemma 1). True for
  /// BV; false for MV (an even-sized extension can hurt). Solvers use this
  /// to decide whether "add if it fits" needs an acceptance test.
  virtual bool monotone_in_size() const = 0;

  /// Number of `Evaluate` calls so far (instrumentation for the runtime
  /// figures).
  std::size_t evaluations() const { return evaluations_; }

 protected:
  void CountEvaluation() const { ++evaluations_; }

 private:
  mutable std::size_t evaluations_ = 0;
};

/// BV jury quality via Algorithm 1 (`EstimateJq`). The paper's OPTJS
/// objective.
class BucketBvObjective final : public JqObjective {
 public:
  explicit BucketBvObjective(BucketJqOptions options = {})
      : options_(options) {}
  std::string name() const override { return "BV/bucket"; }
  double Evaluate(const Jury& candidate_jury, double alpha) const override;
  bool monotone_in_size() const override { return true; }
  const BucketJqOptions& options() const { return options_; }

 private:
  BucketJqOptions options_;
};

/// BV jury quality by exact 2^n enumeration; only for small juries
/// (tests, Fig. 7(a)-scale experiments).
class ExactBvObjective final : public JqObjective {
 public:
  std::string name() const override { return "BV/exact"; }
  double Evaluate(const Jury& candidate_jury, double alpha) const override;
  bool monotone_in_size() const override { return true; }
};

/// MV jury quality via the exact Poisson-binomial DP. The MVJS baseline
/// objective (Cao et al. [7] solve argmax JQ(J, MV, 0.5)).
class MajorityObjective final : public JqObjective {
 public:
  std::string name() const override { return "MV/exact"; }
  double Evaluate(const Jury& candidate_jury, double alpha) const override;
  bool monotone_in_size() const override { return false; }
};

}  // namespace jury

#endif  // JURYOPT_CORE_OBJECTIVE_H_
