#ifndef JURYOPT_CORE_OBJECTIVE_H_
#define JURYOPT_CORE_OBJECTIVE_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "jq/bucket.h"
#include "model/jury.h"
#include "model/worker.h"
#include "util/fault_injection.h"

namespace jury {

class IncrementalJqEvaluator;
class ScratchArena;
class WorkerPoolView;

/// JQ of the empty jury under the scalar binary prior (see core/jsp.h,
/// which owns the definition); redeclared here so the `EmptyJq` default
/// below needs no header cycle.
double EmptyJuryJq(double alpha);

/// \brief One prepared fused-kernel invocation of a batched move scan: a
/// plain function pointer plus its context, so submitting a pass never
/// allocates. `run(ctx)` executes the pass — the SIMD sweep over the
/// session's staged SoA arrays plus the scatter of per-candidate scores —
/// and must only touch state reachable from `ctx` (the submitting
/// session's staging buffers and score output), because it may run on a
/// different thread.
struct KernelPass {
  void (*run)(void* ctx);
  void* ctx;
};

/// \brief Coalescing hook for the batched move-scan kernels — the
/// cross-request fusion seam `PoolPlanContext::SolveMany` plugs into.
///
/// Sessions hand their prepared kernel passes here instead of invoking
/// the kernels directly; an implementation may execute a pass inline or
/// batch it back-to-back with passes submitted by *other* sessions
/// (other queued requests' scans) so the SIMD kernels run as one wide
/// sweep while that combiner thread owns the CPU's vector units. Each
/// pass is a pure function of its submitting session's staged state —
/// every batch score depends only on (committed jury, candidate), never
/// on how passes are grouped or ordered — so any interleaving yields
/// bit-identical scores and the fused reports match the unfused ones
/// byte for byte.
///
/// Contract: `Execute` must have run `pass.run(pass.ctx)` to completion
/// (on some thread, with the results visible to the caller) by the time
/// it returns. Implementations must be safe against concurrent `Execute`
/// calls from many threads; a pass must never re-enter the sink.
class MoveScanSink {
 public:
  virtual ~MoveScanSink() = default;
  virtual void Execute(KernelPass pass) = 0;
};

/// The calling thread's ambient scan sink (nullptr by default). The
/// serving layer scopes a sink around a solve; objectives constructed for
/// that solve pick it up and thread it into their sessions (clones
/// inherit it, so nested scan shards on other threads still submit to
/// the same sink).
MoveScanSink* CurrentThreadScanSink();

/// RAII scope for `CurrentThreadScanSink` (restores the previous sink).
class ScopedThreadScanSink {
 public:
  explicit ScopedThreadScanSink(MoveScanSink* sink);
  ~ScopedThreadScanSink();
  ScopedThreadScanSink(const ScopedThreadScanSink&) = delete;
  ScopedThreadScanSink& operator=(const ScopedThreadScanSink&) = delete;

 private:
  MoveScanSink* previous_;
};

/// Tolerance of the session-vs-Evaluate equivalence contract: a delta
/// update and a from-scratch evaluation of the same jury agree within this
/// bound (property-tested). Solvers band every score-sensitive comparison
/// (acceptance, argmax, incumbent tracking, tie-breaks) at this tolerance
/// so the two evaluation paths make identical decisions — the bucket
/// objective produces *exact* JQ ties between neighbouring juries, so
/// strict comparisons would flip on evaluation noise.
inline constexpr double kScoreEquivalenceTol = 1e-12;

/// \brief Split instrumentation for the runtime figures: how many candidate
/// juries were scored from scratch (O(n) per worker and worse) versus by an
/// O(n) delta update inside an `IncrementalJqEvaluator` session. A snapshot
/// value — the objective itself accumulates atomically, so concurrent
/// sessions (parallel restart chains, cloned scan shards) can score without
/// racing on the instrumentation.
struct EvaluationCounters {
  /// From-scratch evaluations: every `Evaluate` call plus every session
  /// score that had to rebuild its cached state (grid change, cache limit).
  std::size_t full = 0;
  /// Delta-updated session scores.
  std::size_t incremental = 0;

  std::size_t total() const { return full + incremental; }
};

/// \brief The quality function a JSP solver maximizes. OPTJS plugs in the
/// bucket-approximated Bayesian-Voting JQ; the MVJS baseline plugs in the
/// exact Majority-Voting JQ. Solvers treat this as a black box, which is
/// exactly how §7 argues the annealing heuristic generalizes.
///
/// Two-level API:
///  * `Evaluate` — stateless one-shot scoring of an arbitrary jury;
///  * `StartSession` — an `IncrementalJqEvaluator` that scores the
///    add/remove/swap neighbourhood of a growing jury via O(n) delta
///    updates, which is how the solvers explore candidates.
class JqObjective {
 public:
  /// Pool-view column in which this objective's *add* score is monotone
  /// non-decreasing: whenever `key(a) >= key(b)`, adding `a` to any
  /// committed jury scores at least as high as adding `b` (and equal keys
  /// score bit-identically, since every backend's score is a pure function
  /// of the key value and the committed state). This is the admissible
  /// upper bound the sharded frontier scan prunes with. BV objectives are
  /// monotone in the §3.3 flip-normalized quality (the paper's Lemma 2
  /// garbling argument); MV is monotone in raw quality (a higher-quality
  /// juror only raises the majority's correctness probability). `kNone`
  /// (the default) declares no monotone column and disables frontier
  /// pruning for the objective.
  enum class ScoreMonotoneKey { kNone, kNormQuality, kQuality };

  virtual ~JqObjective() = default;
  virtual std::string name() const = 0;

  /// See `ScoreMonotoneKey`.
  virtual ScoreMonotoneKey score_monotone_key() const {
    return ScoreMonotoneKey::kNone;
  }

  /// JQ estimate of `candidate_jury` under prior `alpha`. Must accept the
  /// empty jury (returning `EmptyJq(alpha)`).
  virtual double Evaluate(const Jury& candidate_jury, double alpha) const = 0;

  /// Whether JQ never decreases when a worker is added (Lemma 1). True for
  /// BV; false for MV (an even-sized extension can hurt). Solvers use this
  /// to decide whether "add if it fits" needs an acceptance test.
  virtual bool monotone_in_size() const = 0;

  /// Largest candidate jury `Evaluate` accepts; unlimited by default. The
  /// exact-enumeration objective is guarded to `kMaxExactJurySize`, and a
  /// solver can stage any subset of the pool, so callers must reject pools
  /// larger than this *before* solving (the API adapters do) — past the
  /// boundary, an oversized jury is a programming error, not a Status.
  virtual std::size_t max_jury_size() const {
    return static_cast<std::size_t>(-1);
  }

  /// JQ of the *empty* jury under this objective — the baseline every
  /// solver starts its search (and its incumbent tracking) from. The
  /// binary objectives all follow the scalar prior: `EmptyJuryJq(alpha) =
  /// max(alpha, 1-alpha)`. Objectives whose prior is richer than one
  /// scalar (the multiclass facade, which adapts a confusion-matrix
  /// problem behind this interface) override it, so the solver drivers
  /// never hard-code the binary formula.
  virtual double EmptyJq(double alpha) const { return EmptyJuryJq(alpha); }

  /// Opens an evaluation session starting from the empty jury. When
  /// `incremental` is false the session scores every move by materializing
  /// the jury and calling `Evaluate` — the `--no-incremental` reference
  /// path that delta updates are asserted bit-equal (within 1e-12) against.
  std::unique_ptr<IncrementalJqEvaluator> StartSession(
      double alpha, bool incremental = true) const;

  /// View-bound session: identical scoring semantics, with the candidate
  /// pool's columnar snapshot attached so the index-based batched
  /// move-scan APIs (`ScoreAddBatch`/`ScoreRemoveBatch`/`ScoreSwapBatch`
  /// over view indices) read contiguous columns instead of re-gathering
  /// `Worker` structs. `view` must outlive the session (solvers build it
  /// once per solve from `JspInstance::candidates`).
  std::unique_ptr<IncrementalJqEvaluator> StartSession(
      const WorkerPoolView& view, double alpha,
      bool incremental = true) const;

  /// Total number of jury scorings so far (full + incremental), kept for
  /// the original instrumentation consumers.
  std::size_t evaluations() const { return evaluation_counters().total(); }
  /// Full vs. incremental breakdown (a consistent-enough snapshot; exact
  /// once all sessions have quiesced).
  EvaluationCounters evaluation_counters() const {
    EvaluationCounters snapshot;
    snapshot.full = full_evals_.load(std::memory_order_relaxed);
    snapshot.incremental = incremental_evals_.load(std::memory_order_relaxed);
    return snapshot;
  }
  void ResetEvaluationCounters() const {
    full_evals_.store(0, std::memory_order_relaxed);
    incremental_evals_.store(0, std::memory_order_relaxed);
  }

  /// Binds the move-scan coalescing sink every session opened after this
  /// call submits its kernel passes to (nullptr = run passes inline, the
  /// zero-overhead default). The serving layer binds the per-batch sink
  /// right after constructing the per-solve objective; the sink must
  /// outlive every session of this objective. Const because registry
  /// adapters hold per-solve objectives through const references.
  void BindScanSink(MoveScanSink* sink) const {
    scan_sink_.store(sink, std::memory_order_release);
  }
  MoveScanSink* scan_sink() const {
    return scan_sink_.load(std::memory_order_acquire);
  }

  /// Binds the scratch-buffer arena (util/scratch_arena.h) every session
  /// opened after this call adopts its batch-staging capacity from —
  /// nullptr (the default) allocates per session, exactly the historical
  /// behavior. Adoption recycles only *capacity*, never values, so pooled
  /// solves stay bit-identical. The arena must outlive every session of
  /// this objective (the plan context owns both). Sessions without a bound
  /// arena fall back to the calling thread's ambient arena
  /// (`CurrentThreadScratchArena()`), which the solve entry point scopes.
  void BindScratchArena(ScratchArena* arena) const {
    scratch_arena_.store(arena, std::memory_order_release);
  }
  ScratchArena* scratch_arena() const {
    return scratch_arena_.load(std::memory_order_acquire);
  }

 protected:
  /// Backend hook: returns the delta-updating session. The default is the
  /// full-recompute session, so third-party objectives keep working.
  virtual std::unique_ptr<IncrementalJqEvaluator> StartIncrementalSession(
      double alpha) const;

  // Out of line: besides the per-objective atomic it bumps the
  // process-wide stats registry, which this header must not drag in.
  void CountEvaluation() const;

 private:
  friend class IncrementalJqEvaluator;
  mutable std::atomic<std::size_t> full_evals_{0};
  mutable std::atomic<std::size_t> incremental_evals_{0};
  mutable std::atomic<MoveScanSink*> scan_sink_{nullptr};
  mutable std::atomic<ScratchArena*> scratch_arena_{nullptr};
};

/// \brief A stateful evaluation session over one growing/shrinking jury.
///
/// The session owns the jury's member list. Solvers *stage* a candidate
/// move with one of the `Score*` calls — which returns the JQ the jury
/// would have after the move, computed by an O(n) delta update where the
/// backend supports it — and then either `Commit()` (adopt the move and its
/// score) or `Rollback()` (discard it). A subsequent `Score*` call replaces
/// the staged move, so a solver may scan many candidates and re-stage the
/// winner before committing.
///
/// Scores agree with `JqObjective::Evaluate` on the materialized jury to
/// within 1e-12 (property-tested); the `incremental=false` session produced
/// by `StartSession` is exactly `Evaluate` under the hood.
class IncrementalJqEvaluator {
 public:
  virtual ~IncrementalJqEvaluator() = default;

  double alpha() const { return alpha_; }
  /// Committed members, in insertion order (swap replaces in place).
  const std::vector<Worker>& members() const { return members_; }
  /// Committed members' qualities as a contiguous column, positionally
  /// aligned with `members()` and maintained through `Commit`/`CommitAdd`:
  /// the committed-side half of the columnar story, so batch backends fold
  /// committed state without re-reading `Worker` structs.
  const std::vector<double>& member_qualities() const {
    return member_quality_;
  }
  /// The columnar pool view bound at `StartSession(view, ...)` (nullptr
  /// for unbound sessions). Clones share the parent's view.
  const WorkerPoolView* view() const { return view_; }
  /// Binds `view` as the candidate pool the index-based batch APIs score
  /// from. The view must outlive the session.
  void BindView(const WorkerPoolView* view) { view_ = view; }
  std::size_t size() const { return members_.size(); }
  /// JQ of the committed jury (`EmptyJuryJq(alpha)` for the empty jury).
  double current_jq() const { return current_jq_; }
  bool has_staged_move() const { return staged_ != MoveKind::kNone; }

  /// Deep copy of this session at its committed state, for per-thread
  /// scan shards: a clone scores exactly the moves the original would
  /// (bit-identical — it copies the backend's cached state, not a rebuilt
  /// equivalent), so candidates can be sharded across threads without the
  /// winner depending on which thread scored which shard. Clones report
  /// into the owning objective's (atomic) evaluation counters. Returns
  /// nullptr for backends without clone support, in which case callers
  /// must fall back to the serial scan. Any staged move is not cloned;
  /// clone before staging.
  virtual std::unique_ptr<IncrementalJqEvaluator> Clone() const {
    return nullptr;
  }

  /// Commits "add `worker`" when its score is already known — from a
  /// previous `Score*` on this session or on a `Clone()` — without
  /// re-computing the delta. This is the scan-then-commit fast path: a
  /// candidate scan remembers the staged winner's score and commits it
  /// directly, saving one delta evaluation per round. Discards any staged
  /// move first. `score` must be the value `ScoreAdd(worker)` would
  /// return; the backend applies the move to its committed state in place.
  void CommitAdd(const Worker& worker, double score);

  /// JQ of members + `worker`; stages the addition.
  double ScoreAdd(const Worker& worker);

  /// \brief Batched candidate scoring — the greedy-scan fast path.
  ///
  /// Fills `scores[j]` with the value `ScoreAdd(*candidates[j])` would
  /// return, for every candidate, against the *committed* jury; leaves no
  /// move staged (any previously staged move is discarded). The base
  /// implementation loops `ScoreAdd` + `Rollback`; the MV and BV/bucket
  /// backends override it with fused structure-of-arrays kernels
  /// (`PoissonBinomial::EvaluateBatch`,
  /// `BucketKeyDistribution::ConvolvePositiveMassBatch`) whose contiguous
  /// inner loops skip the per-candidate scratch copies and virtual
  /// dispatch of the scalar path. Each score is a pure function of
  /// (committed jury, candidate) — never of how candidates are grouped
  /// into batches — so sharding a scan across threads with any grain
  /// yields the same scores, which is what keeps the parallel greedy scan
  /// bit-deterministic in the thread count.
  virtual void ScoreAddBatch(const Worker* const* candidates,
                             std::size_t count, double* scores);

  /// \brief Unified batched move-scan API over the bound view.
  ///
  /// The index-based triplet below is the one scan surface every solver's
  /// inner loop runs on: candidates are named by *view indices* (adds,
  /// swap-ins) or *member positions* (removes, swap-outs), and the MV and
  /// BV/bucket backends score them through fused structure-of-arrays
  /// kernels (`PoissonBinomial::EvaluateBatch`/`EvaluateRemoveBatch`,
  /// `BucketKeyDistribution::ConvolvePositiveMassBatch`/
  /// `DeconvolvePositiveMass`) that read the view's contiguous columns
  /// directly — no per-candidate `Worker` gather, no scratch copies, no
  /// virtual dispatch per score. All three are bit-identical to the
  /// corresponding scalar `Score*` loop (EXPECT_EQ-tested), leave no move
  /// staged, and are pure functions of (committed jury, candidate) — so
  /// scans can be sharded across threads with any grain without changing
  /// a single bit. The base implementations loop the scalar calls, which
  /// is what the full-recompute and exact-BV sessions use.
  ///
  /// Fills `scores[j]` with `ScoreAdd(view()->worker(pool_indices[j]))`.
  virtual void ScoreAddBatch(const std::size_t* pool_indices,
                             std::size_t count, double* scores);
  /// Fills `scores[j]` with `ScoreRemove(member_positions[j])`.
  virtual void ScoreRemoveBatch(const std::size_t* member_positions,
                                std::size_t count, double* scores);
  /// Fills `scores[j]` with
  /// `ScoreSwap(out_position, view()->worker(pool_indices[j]))` — the
  /// swap-partner scan of the annealing neighbourhood.
  virtual void ScoreSwapBatch(std::size_t out_position,
                              const std::size_t* pool_indices,
                              std::size_t count, double* scores);

  /// JQ with member `idx` removed; stages the removal.
  double ScoreRemove(std::size_t idx);
  /// JQ with member `out_idx` replaced by `in_worker`; stages the swap.
  double ScoreSwap(std::size_t out_idx, const Worker& in_worker);
  /// Adopts the staged move: the member list and `current_jq` now reflect
  /// it. Requires a staged move.
  void Commit();
  /// Discards the staged move (no-op when nothing is staged).
  void Rollback();

 protected:
  IncrementalJqEvaluator(const JqObjective* objective, double alpha);
  /// Memberwise copy for `Clone` implementations.
  IncrementalJqEvaluator(const IncrementalJqEvaluator&) = default;

  /// Sentinel for "no member leaves" in `MaterializeWith`.
  static constexpr std::size_t kNoMember = static_cast<std::size_t>(-1);

  /// Materializes the committed members with a hypothetical move applied:
  /// `out_idx == kNoMember` with `in` appends (add); a valid `out_idx`
  /// with `in` replaces in place (swap); a valid `out_idx` without `in`
  /// skips that member (remove). All backends share this one definition so
  /// their jury views cannot drift apart.
  Jury MaterializeWith(std::size_t out_idx, const Worker* in) const;

  /// Backend hooks: compute the score of the staged move into scratch
  /// state. `AdoptStaged` is called by `Commit` *before* the base class
  /// updates the member list; `DiscardStaged` by `Rollback`.
  virtual double ComputeAdd(const Worker& worker) = 0;
  virtual double ComputeRemove(std::size_t idx) = 0;
  virtual double ComputeSwap(std::size_t out_idx, const Worker& in) = 0;
  virtual void AdoptStaged() = 0;
  virtual void DiscardStaged() {}

  /// Backend hook for `CommitAdd`: fold `worker` into the committed cached
  /// state directly (no scoring, no scratch round-trip). The default
  /// recomputes via `ComputeAdd` + `AdoptStaged`, which is always correct;
  /// backends override it with the in-place update.
  virtual void ApplyAdd(const Worker& worker) {
    ComputeAdd(worker);
    AdoptStaged();
  }

  /// The scratch arena captured at session construction — the objective's
  /// bound arena, else the constructing thread's ambient arena, else
  /// nullptr. Copied into clones, so a scan shard constructed on a
  /// scheduler thread still donates its staging capacity back to the
  /// owning context's arena. Backends `Adopt` their batch-staging vectors
  /// from it in their constructors and `Donate` them in their destructors;
  /// a null arena means plain allocation (the historical behavior).
  ScratchArena* scratch_arena() const { return scratch_arena_; }

  /// Instrumentation forwarded to the owning objective's counters.
  void CountFullEvaluation() const;
  void CountIncrementalEvaluation() const;
  /// Bulk form for batched kernels: one atomic add for `n` scorings.
  void CountIncrementalEvaluations(std::size_t n) const;

  /// Runs one prepared kernel pass — inline when no sink is bound (the
  /// zero-overhead default), through the bound `MoveScanSink` otherwise,
  /// which may coalesce it with passes from other sessions. Either way
  /// the pass has completed (results written, visible to this thread)
  /// when this returns. The sink is captured from the owning objective at
  /// session construction and copied into clones, so sharded scans on
  /// other threads submit to the same sink.
  void RunKernelPass(void (*run)(void*), void* ctx) {
    // Stands in for a kernel flush failing (a sink queue allocation, a
    // device error in an offloaded build). Thrown before the pass runs:
    // staged state is untouched, so `Rollback()` restores the session.
    JURY_FAULT_POINT("eval.kernel_flush");
    if (scan_sink_ != nullptr) {
      scan_sink_->Execute(KernelPass{run, ctx});
    } else {
      run(ctx);
    }
  }

 private:
  enum class MoveKind { kNone, kAdd, kRemove, kSwap };

  const JqObjective* objective_;
  double alpha_;
  MoveScanSink* scan_sink_ = nullptr;
  ScratchArena* scratch_arena_ = nullptr;
  const WorkerPoolView* view_ = nullptr;
  std::vector<Worker> members_;
  std::vector<double> member_quality_;  // aligned with members_
  double current_jq_;
  MoveKind staged_ = MoveKind::kNone;
  std::size_t staged_idx_ = 0;
  Worker staged_worker_;
  double staged_score_ = 0.0;
};

/// BV jury quality via Algorithm 1 (`EstimateJq`). The paper's OPTJS
/// objective. Sessions keep the Algorithm-1 key distribution as state and
/// add/remove workers by O(span) convolution/deconvolution.
class BucketBvObjective final : public JqObjective {
 public:
  explicit BucketBvObjective(BucketJqOptions options = {})
      : options_(options) {}
  std::string name() const override { return "BV/bucket"; }
  double Evaluate(const Jury& candidate_jury, double alpha) const override;
  bool monotone_in_size() const override { return true; }
  ScoreMonotoneKey score_monotone_key() const override {
    return ScoreMonotoneKey::kNormQuality;
  }
  const BucketJqOptions& options() const { return options_; }

 protected:
  std::unique_ptr<IncrementalJqEvaluator> StartIncrementalSession(
      double alpha) const override;

 private:
  BucketJqOptions options_;
};

/// BV jury quality by exact 2^n enumeration; only for small juries
/// (tests, Fig. 7(a)-scale experiments). Sessions cache the enumeration
/// state (per-voting decision statistic and conditional probabilities), so
/// a move re-folds in O(2^n) instead of re-enumerating in O(n 2^n).
class ExactBvObjective final : public JqObjective {
 public:
  std::string name() const override { return "BV/exact"; }
  double Evaluate(const Jury& candidate_jury, double alpha) const override;
  bool monotone_in_size() const override { return true; }
  ScoreMonotoneKey score_monotone_key() const override {
    return ScoreMonotoneKey::kNormQuality;
  }
  /// `kMaxExactJurySize` — the 2^n enumeration guard (defined in the .cc
  /// to keep jq/exact.h out of this header).
  std::size_t max_jury_size() const override;

 protected:
  std::unique_ptr<IncrementalJqEvaluator> StartIncrementalSession(
      double alpha) const override;
};

/// MV jury quality via the exact Poisson-binomial DP. The MVJS baseline
/// objective (Cao et al. [7] solve argmax JQ(J, MV, 0.5)). Sessions keep
/// the two conditional Poisson-binomial pmfs and update them in O(n) via
/// `PoissonBinomial::AddTrial`/`RemoveTrial`.
class MajorityObjective final : public JqObjective {
 public:
  std::string name() const override { return "MV/exact"; }
  double Evaluate(const Jury& candidate_jury, double alpha) const override;
  bool monotone_in_size() const override { return false; }
  ScoreMonotoneKey score_monotone_key() const override {
    return ScoreMonotoneKey::kQuality;
  }

 protected:
  std::unique_ptr<IncrementalJqEvaluator> StartIncrementalSession(
      double alpha) const override;
};

}  // namespace jury

#endif  // JURYOPT_CORE_OBJECTIVE_H_
