#ifndef JURYOPT_CORE_ALLOCATION_H_
#define JURYOPT_CORE_ALLOCATION_H_

#include <vector>

#include "core/optjs.h"
#include "util/result.h"
#include "util/rng.h"

namespace jury {

/// \brief One task in a multi-task campaign: its candidate pool and prior.
/// (Pools may differ per task — e.g. the workers who saw the HIT, as in
/// the paper's §6.2 setting.)
struct AllocationTask {
  std::vector<Worker> candidates;
  double alpha = 0.5;
};

/// \brief Per-task outcome of a global-budget allocation.
struct TaskAllocation {
  double budget = 0.0;      // budget granted to this task
  JspSolution solution;     // jury selected within that budget
};

/// \brief Result of `AllocateBudget`.
struct AllocationResult {
  std::vector<TaskAllocation> tasks;
  double total_granted = 0.0;  // sum of granted budgets (<= global budget)
  double total_spent = 0.0;    // sum of selected jury costs
  double mean_jq = 0.0;        // average predicted JQ across tasks
};

/// \brief Options for the allocator.
struct AllocationOptions {
  /// Budget is handed out in increments of this size.
  double increment = 0.1;
  /// Solver configuration used to evaluate each (task, budget) pair.
  OptjsOptions optjs;
};

/// \brief Splits one global budget across many tasks, maximizing the mean
/// predicted JQ, by greedy marginal allocation: repeatedly grant the next
/// `increment` to the task whose optimal-jury JQ improves the most.
///
/// This extends the paper's per-task system (§1's budget-quality table) to
/// the campaign level: easy tasks (confident priors, strong cheap workers)
/// absorb little budget, hard tasks absorb more. Budget-quality curves are
/// concave in practice (diminishing returns — see `budget_planner`), where
/// greedy marginal allocation is the classic near-optimal strategy.
Result<AllocationResult> AllocateBudget(
    const std::vector<AllocationTask>& tasks, double global_budget, Rng* rng,
    const AllocationOptions& options = {});

}  // namespace jury

#endif  // JURYOPT_CORE_ALLOCATION_H_
