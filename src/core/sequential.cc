#include "core/sequential.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "model/prior.h"
#include "model/worker_pool_view.h"
#include "util/check.h"
#include "util/math.h"

namespace jury {

SequentialDecision::SequentialDecision(double alpha) {
  JURY_CHECK(ValidateAlpha(alpha).ok()) << "alpha outside [0,1]";
  log_odds_ = LogOdds(EffectiveQuality(alpha));
}

void SequentialDecision::Observe(double quality, int vote) {
  JURY_CHECK(vote == 0 || vote == 1);
  const double phi = LogOdds(EffectiveQuality(quality));
  log_odds_ += (vote == 0 ? phi : -phi);
  ++votes_seen_;
}

double SequentialDecision::PosteriorZero() const {
  return Sigmoid(log_odds_);
}

double SequentialDecision::Confidence() const {
  const double p0 = PosteriorZero();
  return std::max(p0, 1.0 - p0);
}

Result<SequentialOutcome> RunSequentialPolicy(
    const std::vector<Worker>& stream,
    const std::function<int(const Worker&, std::size_t index)>& elicit,
    const SequentialConfig& config) {
  JURY_RETURN_NOT_OK(ValidateAlpha(config.alpha));
  if (!(config.confidence_threshold >= 0.5 &&
        config.confidence_threshold <= 1.0)) {
    return Status::InvalidArgument(
        "confidence_threshold must lie in [0.5, 1]");
  }
  if (!elicit) {
    return Status::InvalidArgument("elicit callback required");
  }

  SequentialDecision decision(config.alpha);
  // Columnar snapshot of the stream, bound to the projected session like
  // every other solver's pool view.
  const WorkerPoolView stream_view(stream);
  std::unique_ptr<IncrementalJqEvaluator> projected;
  if (config.projected_objective != nullptr) {
    projected = config.projected_objective->StartSession(
        stream_view, config.alpha, config.use_incremental);
  }
  SequentialOutcome outcome;
  outcome.answer = decision.CurrentAnswer();
  outcome.confidence = decision.Confidence();
  if (outcome.confidence >= config.confidence_threshold) {
    outcome.stopped_by_confidence = true;  // the prior alone suffices
    return outcome;
  }

  for (std::size_t i = 0; i < stream.size(); ++i) {
    const Worker& worker = stream[i];
    JURY_RETURN_NOT_OK(ValidateWorker(worker));
    if (outcome.votes_used >= config.max_votes) break;
    if (outcome.spent + worker.cost > config.budget) break;

    const int vote = elicit(worker, i);
    if (vote != 0 && vote != 1) {
      return Status::InvalidArgument("elicited vote must be 0 or 1");
    }
    decision.Observe(worker.quality, vote);
    if (projected != nullptr) {
      // The grow step: the purchased prefix gains one juror — an O(n)
      // session delta instead of re-scoring the prefix from scratch.
      projected->ScoreAdd(worker);
      projected->Commit();
      outcome.projected_jq.push_back(projected->current_jq());
    }
    outcome.spent += worker.cost;
    ++outcome.votes_used;
    outcome.answer = decision.CurrentAnswer();
    outcome.confidence = decision.Confidence();
    if (outcome.confidence >= config.confidence_threshold) {
      outcome.stopped_by_confidence = true;
      break;
    }
  }
  return outcome;
}

}  // namespace jury
