#ifndef JURYOPT_CORE_SOLVER_OPTIONS_H_
#define JURYOPT_CORE_SOLVER_OPTIONS_H_

#include <cstddef>
#include <cstdint>

#include "util/cancellation.h"

namespace jury {

class ShardedWorkerPool;
struct FrontierScanStats;

/// \brief Knobs shared by every JSP solver. Per-solver option structs
/// inherit from this, so `options.num_threads` configures the parallel
/// execution layer uniformly.
struct SolverOptions {
  /// Parallelism cap for each of the solver's parallel *regions* (restart
  /// chains, candidate shards, subset partitions), which run on the
  /// process-wide work-stealing scheduler. 0 = auto: the
  /// `JURYOPT_THREADS` environment variable when set, otherwise the
  /// hardware concurrency (`ResolveThreadCount` in util/scheduler.h).
  /// 1 forces the serial path (which never touches the scheduler).
  ///
  /// Note the cap is per region, not per solve: with nested solves
  /// (budget-table rows, the OPTJS fallback tasks) several capped
  /// regions can be in flight at once, so a solve's total concurrency is
  /// bounded by the scheduler's worker set rather than by this knob. To
  /// budget CPU for the whole process, export `JURYOPT_THREADS` before
  /// startup — it sizes the scheduler itself (1 = no workers ever
  /// spawn). Every parallel path is bit-deterministic in the thread
  /// count and returns the same jury as the serial path
  /// (property-tested), so these knobs only trade wall-clock for cores.
  std::size_t num_threads = 0;

  /// Cooperative stop signal, polled at each solver's cheap check sites
  /// (annealing step, greedy round, exhaustive mask, B&B node,
  /// budget-table row). On expiry the solver returns its best-so-far
  /// committed jury as an OK anytime result — never an error, never an
  /// unwind — and reports how it ended through `termination`. nullptr =
  /// run to completion. The token must outlive the solve; wall-clock
  /// stops are inherently nondeterministic, so deterministic paths
  /// (golden traces, bit-identity tests) never set one.
  const CancelToken* cancel_token = nullptr;

  /// Deterministic early-stop: each *strand* (each restart chain, each
  /// exhaustive shard, each scan) stops after consuming this many work
  /// units (0 = unlimited). Strand structure is a pure function of the
  /// request, so unlike a deadline the stop point — and hence the
  /// returned jury — is bit-identical across thread counts and SIMD
  /// levels. What one work unit means per solver is documented in
  /// ARCHITECTURE.md's check-site table.
  std::uint64_t max_work_units = 0;

  /// Optional out-param: how the solve ended (reason + work units
  /// completed). The solver overwrites it unconditionally after all
  /// strands have joined, so one instance can be reused across solves;
  /// facades that fan out nested solves give each inner solve its own
  /// instance and merge serially (never share the pointer across
  /// concurrent tasks).
  TerminationInfo* termination = nullptr;

  /// Candidate-frontier pre-selection (core/frontier.h): how many
  /// workers per shard slate the scan-heavy solvers score before the
  /// bound-guarded refinement, 0 = full O(N) scans (the default). Takes
  /// effect only when `sharded_pool` is set, the pool is built over the
  /// solver's view, and the objective declares a monotone score key
  /// (`JqObjective::score_monotone_key()`); otherwise solvers silently
  /// fall back to the full scan.
  std::size_t frontier_k = 0;

  /// With `frontier_k` active: keep refining with the admissible
  /// upper-bound guard until the selection is *provably* bit-identical
  /// to the full scan (the default; worst case degrades to the full
  /// scan). False opts into the lossy mode — slate candidates only,
  /// bounded quality gap, no exactness proof.
  bool frontier_exact = true;

  /// Shard summaries for the frontier (model/sharded_pool.h), built over
  /// the same `WorkerPoolView` the solver scans. Runtime-only wiring —
  /// `PoolPlanContext` owns the pool and its adapters set this; the
  /// field never appears in request JSON.
  const ShardedWorkerPool* sharded_pool = nullptr;

  /// Optional out-param: frontier-scan instrumentation (candidates
  /// scanned, exactness proofs, shard expansions) accumulated across the
  /// solve. The same numbers also feed the process-wide
  /// `frontier.*` stats counters.
  FrontierScanStats* frontier_stats = nullptr;
};

}  // namespace jury

#endif  // JURYOPT_CORE_SOLVER_OPTIONS_H_
