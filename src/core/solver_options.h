#ifndef JURYOPT_CORE_SOLVER_OPTIONS_H_
#define JURYOPT_CORE_SOLVER_OPTIONS_H_

#include <cstddef>

namespace jury {

/// \brief Knobs shared by every JSP solver. Per-solver option structs
/// inherit from this, so `options.num_threads` configures the parallel
/// execution layer uniformly.
struct SolverOptions {
  /// Threads for the solver's parallel sections (restart chains, candidate
  /// shards, subset partitions). 0 = auto: the `JURYOPT_THREADS`
  /// environment variable when set, otherwise the hardware concurrency
  /// (`ResolveThreadCount` in util/thread_pool.h). 1 forces the serial
  /// path. Every parallel path is bit-deterministic in the thread count
  /// and returns the same jury as the serial path (property-tested), so
  /// this knob only trades wall-clock for cores.
  std::size_t num_threads = 0;
};

}  // namespace jury

#endif  // JURYOPT_CORE_SOLVER_OPTIONS_H_
