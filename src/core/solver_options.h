#ifndef JURYOPT_CORE_SOLVER_OPTIONS_H_
#define JURYOPT_CORE_SOLVER_OPTIONS_H_

#include <cstddef>

namespace jury {

/// \brief Knobs shared by every JSP solver. Per-solver option structs
/// inherit from this, so `options.num_threads` configures the parallel
/// execution layer uniformly.
struct SolverOptions {
  /// Parallelism cap for each of the solver's parallel *regions* (restart
  /// chains, candidate shards, subset partitions), which run on the
  /// process-wide work-stealing scheduler. 0 = auto: the
  /// `JURYOPT_THREADS` environment variable when set, otherwise the
  /// hardware concurrency (`ResolveThreadCount` in util/scheduler.h).
  /// 1 forces the serial path (which never touches the scheduler).
  ///
  /// Note the cap is per region, not per solve: with nested solves
  /// (budget-table rows, the OPTJS fallback tasks) several capped
  /// regions can be in flight at once, so a solve's total concurrency is
  /// bounded by the scheduler's worker set rather than by this knob. To
  /// budget CPU for the whole process, export `JURYOPT_THREADS` before
  /// startup — it sizes the scheduler itself (1 = no workers ever
  /// spawn). Every parallel path is bit-deterministic in the thread
  /// count and returns the same jury as the serial path
  /// (property-tested), so these knobs only trade wall-clock for cores.
  std::size_t num_threads = 0;
};

}  // namespace jury

#endif  // JURYOPT_CORE_SOLVER_OPTIONS_H_
