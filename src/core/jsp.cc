#include "core/jsp.h"

#include <algorithm>

#include "model/prior.h"
#include "util/check.h"
#include "util/json.h"

namespace jury {

Status JspInstance::Validate() const {
  JURY_RETURN_NOT_OK(ValidateAlpha(alpha));
  if (!(budget >= 0.0)) {
    return Status::InvalidArgument("budget must be non-negative");
  }
  for (const Worker& w : candidates) {
    JURY_RETURN_NOT_OK(ValidateWorker(w));
  }
  return Status::OK();
}

Jury JspSolution::ToJury(const JspInstance& instance) const {
  Jury jury;
  for (std::size_t idx : selected) {
    JURY_CHECK_LT(idx, instance.candidates.size());
    jury.Add(instance.candidates[idx]);
  }
  return jury;
}

std::string JspSolution::Describe(const JspInstance& instance) const {
  std::string out = "{";
  for (std::size_t i = 0; i < selected.size(); ++i) {
    if (i > 0) out += ", ";
    out += instance.candidates[selected[i]].id;
  }
  out += "}";
  return out;
}

Json JspSolution::ToJsonValue() const {
  Json selected_json = Json::Array();
  for (const std::size_t idx : selected) {
    selected_json.Append(static_cast<std::uint64_t>(idx));
  }
  return Json::Object()
      .Set("cost", cost)
      .Set("jq", jq)
      .Set("selected", std::move(selected_json));
}

std::string JspSolution::ToJson() const { return ToJsonValue().Dump(); }

double EmptyJuryJq(double alpha) { return std::max(alpha, 1.0 - alpha); }

JspSolution MakeSolution(const JspInstance& instance,
                         std::vector<std::size_t> selected, double jq) {
  std::sort(selected.begin(), selected.end());
  selected.erase(std::unique(selected.begin(), selected.end()),
                 selected.end());
  JspSolution out;
  out.cost = 0.0;
  for (std::size_t idx : selected) {
    JURY_CHECK_LT(idx, instance.candidates.size());
    out.cost += instance.candidates[idx].cost;
  }
  out.selected = std::move(selected);
  out.jq = jq;
  return out;
}

}  // namespace jury
