#include "core/allocation.h"

#include <algorithm>

namespace jury {
namespace {

/// Solves one task at one budget; returns the solution.
Result<JspSolution> SolveTaskAt(const AllocationTask& task, double budget,
                                Rng* rng, const OptjsOptions& options) {
  JspInstance instance;
  instance.candidates = task.candidates;
  instance.budget = budget;
  instance.alpha = task.alpha;
  return SolveOptjs(instance, rng, options);
}

/// Greedy state for one task: solutions at the current grant and one and
/// two increments ahead. The two-step lookahead matters because BV jury
/// quality plateaus at even sizes (a second worker adds nothing until a
/// third arrives), which would stall a one-step marginal rule.
struct TaskState {
  JspSolution at_current;
  JspSolution at_plus1;
  JspSolution at_plus2;

  /// Best per-increment gain and how many increments realize it.
  double gain = 0.0;
  int steps = 1;

  void RecomputeGain() {
    const double gain1 = at_plus1.jq - at_current.jq;
    const double gain2 = (at_plus2.jq - at_current.jq) / 2.0;
    if (gain2 > gain1) {
      gain = gain2;
      steps = 2;
    } else {
      gain = gain1;
      steps = 1;
    }
  }
};

}  // namespace

Result<AllocationResult> AllocateBudget(
    const std::vector<AllocationTask>& tasks, double global_budget, Rng* rng,
    const AllocationOptions& options) {
  if (!(global_budget >= 0.0)) {
    return Status::InvalidArgument("global_budget must be non-negative");
  }
  if (!(options.increment > 0.0)) {
    return Status::InvalidArgument("increment must be positive");
  }
  for (const AllocationTask& task : tasks) {
    for (const Worker& w : task.candidates) {
      JURY_RETURN_NOT_OK(ValidateWorker(w));
    }
  }

  const std::size_t n = tasks.size();
  const double inc = options.increment;
  std::vector<double> granted(n, 0.0);
  std::vector<TaskState> states(n);
  for (std::size_t i = 0; i < n; ++i) {
    JURY_ASSIGN_OR_RETURN(states[i].at_current,
                          SolveTaskAt(tasks[i], 0.0, rng, options.optjs));
    JURY_ASSIGN_OR_RETURN(states[i].at_plus1,
                          SolveTaskAt(tasks[i], inc, rng, options.optjs));
    JURY_ASSIGN_OR_RETURN(
        states[i].at_plus2,
        SolveTaskAt(tasks[i], 2.0 * inc, rng, options.optjs));
    states[i].RecomputeGain();
  }

  double remaining = global_budget;
  while (remaining >= inc - 1e-12 && n > 0) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < n; ++i) {
      if (states[i].gain > states[best].gain) best = i;
    }
    TaskState& state = states[best];
    if (state.gain <= 1e-12) break;  // nobody benefits from more money
    int steps = state.steps;
    if (steps == 2 && remaining < 2.0 * inc - 1e-12) steps = 1;

    granted[best] += inc * steps;
    remaining -= inc * steps;
    if (steps == 1) {
      state.at_current = state.at_plus1;
      state.at_plus1 = state.at_plus2;
    } else {
      state.at_current = state.at_plus2;
      JURY_ASSIGN_OR_RETURN(
          state.at_plus1,
          SolveTaskAt(tasks[best], granted[best] + inc, rng, options.optjs));
    }
    JURY_ASSIGN_OR_RETURN(
        state.at_plus2,
        SolveTaskAt(tasks[best], granted[best] + 2.0 * inc, rng,
                    options.optjs));
    state.RecomputeGain();
  }

  AllocationResult result;
  result.tasks.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    result.tasks[i].budget = granted[i];
    result.tasks[i].solution = states[i].at_current;
    result.total_granted += granted[i];
    result.total_spent += states[i].at_current.cost;
    result.mean_jq += states[i].at_current.jq;
  }
  if (n > 0) result.mean_jq /= static_cast<double>(n);
  return result;
}

}  // namespace jury
