#include "core/exhaustive.h"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <memory>
#include <vector>

#include "model/worker_pool_view.h"
#include "util/scheduler.h"

namespace jury {
namespace {

constexpr double kTieTol = kScoreEquivalenceTol;

/// Shard-partitioned sweeps fix the top `kShardBits` bits of the subset
/// mask (16 shards). A function of nothing but this constant and N — never
/// the thread count — so the shard walk order, and with it every
/// floating-point delta-update history, is reproducible on any pool size.
constexpr std::size_t kShardBits = 4;
/// Below this candidate count sharding is pure overhead; the serial
/// Gray-code sweep runs instead (it returns the same jury either way).
constexpr std::size_t kMinShardedCandidates = 8;

/// Deterministic tie-break shared by both sweeps: at (numerically) equal
/// quality prefer the cheaper jury, so "required" budgets in the Fig. 1
/// table are minimal; at equal cost too (identical workers produce exact
/// ties), prefer the smaller mask — which is exactly the jury the
/// ascending sweep reaches first, so the winner does not depend on the
/// visit order.
bool Improves(double jq, double cost, std::uint64_t mask,
              std::uint64_t best_mask, const JspSolution& best) {
  if (jq > best.jq + kTieTol) return true;
  if (jq <= best.jq - kTieTol) return false;
  if (cost < best.cost) return true;
  return cost == best.cost && mask < best_mask;
}

/// Sum of selected costs in index order (exactly the accumulation order of
/// the original sweep, so feasibility decisions are bit-identical), with
/// the budget short-circuit.
bool FeasibleCost(const JspInstance& instance, std::uint64_t mask,
                  double* cost_out) {
  double cost = 0.0;
  for (std::size_t i = 0; i < instance.num_candidates(); ++i) {
    if ((mask >> i) & 1u) {
      cost += instance.candidates[i].cost;
      if (cost > instance.budget) return false;
    }
  }
  *cost_out = cost;
  return true;
}

/// Lemma-1 maximality: false when some unselected worker still fits.
bool IsMaximal(const JspInstance& instance, std::uint64_t mask, double cost) {
  for (std::size_t i = 0; i < instance.num_candidates(); ++i) {
    if (!((mask >> i) & 1u) &&
        cost + instance.candidates[i].cost <= instance.budget) {
      return false;
    }
  }
  return true;
}

std::vector<std::size_t> MaskToIndices(std::uint64_t mask, std::size_t n) {
  std::vector<std::size_t> selected;
  for (std::size_t i = 0; i < n; ++i) {
    if ((mask >> i) & 1u) selected.push_back(i);
  }
  return selected;
}

/// The original ascending-mask sweep: every candidate jury is materialized
/// and evaluated from scratch. Kept as the `--no-incremental` reference.
JspSolution SweepFromScratch(const JspInstance& instance,
                             const JqObjective& objective, bool monotone,
                             WorkGovernor* governor) {
  const std::size_t n = instance.num_candidates();
  JspSolution best =
      MakeSolution(instance, {}, objective.EmptyJq(instance.alpha));
  std::uint64_t best_mask = 0;
  const std::uint64_t total = 1ull << n;
  for (std::uint64_t mask = 1; mask < total; ++mask) {
    // One enumerated mask is one work unit. The reference sweep walks
    // masks in ascending order while the Gray sweeps walk shard-local
    // Gray order, so under an active limit the two paths stop on
    // *different* mask sets — the incremental/full equivalence contract
    // holds only for unlimited solves (see ARCHITECTURE.md).
    if (governor->Tick() != StopReason::kNone) break;
    double cost = 0.0;
    if (!FeasibleCost(instance, mask, &cost)) continue;
    if (monotone && !IsMaximal(instance, mask, cost)) continue;
    std::vector<std::size_t> selected = MaskToIndices(mask, n);
    Jury candidate;
    for (std::size_t idx : selected) {
      candidate.Add(instance.candidates[idx]);
    }
    const double jq = objective.Evaluate(candidate, instance.alpha);
    if (Improves(jq, cost, mask, best_mask, best)) {
      best = MakeSolution(instance, std::move(selected), jq);
      best_mask = mask;
    }
  }
  return best;
}

/// Walks one shard of the subset lattice with its own evaluation session:
/// the masks whose top bits equal `fixed_mask`, enumerating the
/// `low_bits` low bits in Gray-code order (consecutive masks differ in
/// exactly one bit — `ctz(k)` — so each jury is one add/remove delta
/// update). The serial sweep is the single shard `fixed_mask = 0,
/// low_bits = n`. `best`/`best_mask` enter as the empty-jury baseline and
/// leave as the shard-local incumbent under `Improves`.
void SweepGrayShard(const JspInstance& instance, const WorkerPoolView& view,
                    const JqObjective& objective, bool monotone,
                    std::uint64_t fixed_mask, std::size_t low_bits,
                    JspSolution* best, std::uint64_t* best_mask,
                    WorkGovernor* governor) {
  const std::size_t n = instance.num_candidates();
  auto session = objective.StartSession(view, instance.alpha, true);
  std::vector<bool> in_jury(n, false);
  std::vector<std::size_t> session_members;  // candidate index by position

  // Commit the shard's fixed workers in ascending bit order — a pure
  // function of the shard id, so the session history (and its
  // floating-point roundoff) never depends on scheduling.
  for (std::size_t i = 0; i < n; ++i) {
    if ((fixed_mask >> i) & 1u) {
      session->ScoreAdd(view.worker(i));
      session->Commit();
      in_jury[i] = true;
      session_members.push_back(i);
    }
  }

  const auto consider = [&](std::uint64_t mask) {
    double cost = 0.0;
    if (!FeasibleCost(instance, mask, &cost)) return;
    if (monotone && !IsMaximal(instance, mask, cost)) return;
    const double jq = session->current_jq();
    if (Improves(jq, cost, mask, *best_mask, *best)) {
      *best = MakeSolution(instance, MaskToIndices(mask, n), jq);
      *best_mask = mask;
    }
  };

  // The low-bits-all-zero state is a real candidate jury for every shard
  // but the first (where it is the empty jury the sweep starts from).
  if (fixed_mask != 0) consider(fixed_mask);

  std::uint64_t low = 0;
  const std::uint64_t total = 1ull << low_bits;
  for (std::uint64_t k = 1; k < total; ++k) {
    // The check site: one Gray step (one delta update + one candidate
    // considered) is one work unit, counted against this *shard's* own
    // budget — the walk order inside a shard is fixed, so the stop
    // point is a pure function of (shard id, budget), never of which
    // thread ran the shard.
    if (governor->Tick() != StopReason::kNone) break;
    const std::size_t bit = static_cast<std::size_t>(std::countr_zero(k));
    low ^= 1ull << bit;
    if (!in_jury[bit]) {
      session->ScoreAdd(view.worker(bit));
      session->Commit();
      in_jury[bit] = true;
      session_members.push_back(bit);
    } else {
      const auto it = std::find(session_members.begin(),
                                session_members.end(), bit);
      session->ScoreRemove(
          static_cast<std::size_t>(it - session_members.begin()));
      session->Commit();
      in_jury[bit] = false;
      session_members.erase(it);
    }
    consider(fixed_mask | low);
  }
}

/// Single-session Gray-code sweep (the historical incremental path).
JspSolution SweepGrayCode(const JspInstance& instance,
                          const WorkerPoolView& view,
                          const JqObjective& objective, bool monotone,
                          WorkGovernor* governor) {
  JspSolution best =
      MakeSolution(instance, {}, objective.EmptyJq(instance.alpha));
  std::uint64_t best_mask = 0;
  SweepGrayShard(instance, view, objective, monotone, 0,
                 instance.num_candidates(), &best, &best_mask, governor);
  return best;
}

/// Partitioned Gray-code sweep: 2^kShardBits shards, each owning the
/// masks under one fixed top-bit pattern, claimed dynamically by the pool
/// and merged serially in shard order. Every shard starts its local
/// reduction from the same empty-jury baseline the serial sweep starts
/// from, and `Improves` is visit-order independent, so the merged winner
/// equals the serial sweep's for any thread count.
JspSolution SweepGraySharded(const JspInstance& instance,
                             const WorkerPoolView& view,
                             const JqObjective& objective, bool monotone,
                             std::size_t threads,
                             const ExhaustiveOptions& options) {
  const std::size_t n = instance.num_candidates();
  const std::size_t low_bits = n - kShardBits;
  const std::size_t shards = std::size_t{1} << kShardBits;

  const JspSolution baseline =
      MakeSolution(instance, {}, objective.EmptyJq(instance.alpha));
  std::vector<JspSolution> bests(shards, baseline);
  std::vector<std::uint64_t> best_masks(shards, 0);
  // Per-shard governors, each with the full per-strand budget: a
  // limited sweep stops each shard at the same point regardless of
  // which thread claimed it (or whether the region ran inline).
  std::vector<WorkGovernor> governors(shards);
  for (WorkGovernor& governor : governors) {
    governor = WorkGovernor(options.cancel_token, options.max_work_units);
  }

  // Shards claim dynamically on the process-wide scheduler (nestable: an
  // exhaustive solve inside a budget-table row fans out to idle workers;
  // at parallelism 1 — a limit-forced sharded run — the shards run
  // inline, in order, without touching the pool). The grain is pinned at
  // 1 — each element is a stateful Gray-code walk, so this loop must not
  // be grain-autotuned.
  Scheduler::GlobalParallelFor(
      0, shards, 1,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t s = begin; s < end; ++s) {
          SweepGrayShard(instance, view, objective, monotone,
                         static_cast<std::uint64_t>(s) << low_bits, low_bits,
                         &bests[s], &best_masks[s], &governors[s]);
        }
      },
      std::min(threads, shards));

  JspSolution best = baseline;
  std::uint64_t best_mask = 0;
  for (std::size_t s = 0; s < shards; ++s) {
    if (Improves(bests[s].jq, bests[s].cost, best_masks[s], best_mask,
                 best)) {
      best = bests[s];
      best_mask = best_masks[s];
    }
  }
  if (options.termination != nullptr) {
    for (const WorkGovernor& governor : governors) {
      options.termination->MergeStrand(governor.reason(),
                                       governor.work_done());
    }
  }
  return best;
}

}  // namespace

Status ExhaustiveOptions::Validate() const {
  if (max_candidates == 0 || max_candidates > 62) {
    return Status::InvalidArgument(
        "max_candidates must lie in [1, 62] (64-bit subset masks)");
  }
  return Status::OK();
}

Result<JspSolution> SolveExhaustive(const JspInstance& instance,
                                    const JqObjective& objective,
                                    const ExhaustiveOptions& options) {
  JURY_RETURN_NOT_OK(instance.Validate());
  // One columnar snapshot per solve, shared read-only by every shard's
  // session; the planned overload hoists it to a per-pool context.
  const WorkerPoolView view(instance.candidates);
  return SolveExhaustive(instance, view, objective, options);
}

Result<JspSolution> SolveExhaustive(const JspInstance& instance,
                                    const WorkerPoolView& view,
                                    const JqObjective& objective,
                                    const ExhaustiveOptions& options) {
  JURY_RETURN_NOT_OK(options.Validate());
  const std::size_t n = instance.num_candidates();
  if (n > options.max_candidates) {
    return Status::OutOfRange(
        "exhaustive JSP guarded to N <= " +
        std::to_string(options.max_candidates) + ", got N = " +
        std::to_string(n));
  }
  const bool monotone = objective.monotone_in_size();
  if (options.termination != nullptr) *options.termination = TerminationInfo{};
  if (n == 0) {
    return MakeSolution(instance, {}, objective.EmptyJq(instance.alpha));
  }
  if (!options.use_incremental) {
    WorkGovernor governor(options.cancel_token, options.max_work_units);
    JspSolution best =
        SweepFromScratch(instance, objective, monotone, &governor);
    if (options.termination != nullptr) {
      options.termination->MergeStrand(governor.reason(),
                                       governor.work_done());
    }
    return best;
  }
  const std::size_t threads = ResolveThreadCount(options.num_threads);
  // An active limit forces the *sharded* walk even at one thread: the
  // 16-shard structure (not the thread count) then defines where each
  // strand's budget runs out, so a capped sweep returns the same jury
  // for every JURYOPT_THREADS value.
  const bool limits_active =
      options.cancel_token != nullptr || options.max_work_units != 0;
  if ((threads > 1 || limits_active) && n >= kMinShardedCandidates) {
    return SweepGraySharded(instance, view, objective, monotone, threads,
                            options);
  }
  WorkGovernor governor(options.cancel_token, options.max_work_units);
  JspSolution best =
      SweepGrayCode(instance, view, objective, monotone, &governor);
  if (options.termination != nullptr) {
    options.termination->MergeStrand(governor.reason(), governor.work_done());
  }
  return best;
}

}  // namespace jury
