#include "core/exhaustive.h"

#include <cstdint>

namespace jury {

Result<JspSolution> SolveExhaustive(const JspInstance& instance,
                                    const JqObjective& objective,
                                    const ExhaustiveOptions& options) {
  JURY_RETURN_NOT_OK(instance.Validate());
  const std::size_t n = instance.num_candidates();
  if (n > options.max_candidates) {
    return Status::OutOfRange(
        "exhaustive JSP guarded to N <= " +
        std::to_string(options.max_candidates) + ", got N = " +
        std::to_string(n));
  }
  const bool monotone = objective.monotone_in_size();

  JspSolution best =
      MakeSolution(instance, {}, EmptyJuryJq(instance.alpha));
  const std::uint64_t total = 1ull << n;
  for (std::uint64_t mask = 0; mask < total; ++mask) {
    double cost = 0.0;
    bool feasible = true;
    for (std::size_t i = 0; i < n && feasible; ++i) {
      if ((mask >> i) & 1u) {
        cost += instance.candidates[i].cost;
        if (cost > instance.budget) feasible = false;
      }
    }
    if (!feasible || mask == 0) continue;
    if (monotone) {
      // Skip non-maximal juries: some unselected worker still fits.
      bool maximal = true;
      for (std::size_t i = 0; i < n && maximal; ++i) {
        if (!((mask >> i) & 1u) &&
            cost + instance.candidates[i].cost <= instance.budget) {
          maximal = false;
        }
      }
      if (!maximal) continue;
    }
    std::vector<std::size_t> selected;
    for (std::size_t i = 0; i < n; ++i) {
      if ((mask >> i) & 1u) selected.push_back(i);
    }
    Jury candidate;
    for (std::size_t idx : selected) {
      candidate.Add(instance.candidates[idx]);
    }
    const double jq = objective.Evaluate(candidate, instance.alpha);
    // Deterministic tie-break: at (numerically) equal quality prefer the
    // cheaper jury, so "required" budgets in the Fig. 1 table are minimal.
    constexpr double kTieTol = 1e-12;
    if (jq > best.jq + kTieTol ||
        (jq > best.jq - kTieTol && cost < best.cost)) {
      best = MakeSolution(instance, std::move(selected), jq);
    }
  }
  return best;
}

}  // namespace jury
