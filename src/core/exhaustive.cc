#include "core/exhaustive.h"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <memory>

namespace jury {
namespace {

constexpr double kTieTol = kScoreEquivalenceTol;

/// Deterministic tie-break shared by both sweeps: at (numerically) equal
/// quality prefer the cheaper jury, so "required" budgets in the Fig. 1
/// table are minimal; at equal cost too (identical workers produce exact
/// ties), prefer the smaller mask — which is exactly the jury the
/// ascending sweep reaches first, so the winner does not depend on the
/// visit order.
bool Improves(double jq, double cost, std::uint64_t mask,
              std::uint64_t best_mask, const JspSolution& best) {
  if (jq > best.jq + kTieTol) return true;
  if (jq <= best.jq - kTieTol) return false;
  if (cost < best.cost) return true;
  return cost == best.cost && mask < best_mask;
}

/// Sum of selected costs in index order (exactly the accumulation order of
/// the original sweep, so feasibility decisions are bit-identical), with
/// the budget short-circuit.
bool FeasibleCost(const JspInstance& instance, std::uint64_t mask,
                  double* cost_out) {
  double cost = 0.0;
  for (std::size_t i = 0; i < instance.num_candidates(); ++i) {
    if ((mask >> i) & 1u) {
      cost += instance.candidates[i].cost;
      if (cost > instance.budget) return false;
    }
  }
  *cost_out = cost;
  return true;
}

/// Lemma-1 maximality: false when some unselected worker still fits.
bool IsMaximal(const JspInstance& instance, std::uint64_t mask, double cost) {
  for (std::size_t i = 0; i < instance.num_candidates(); ++i) {
    if (!((mask >> i) & 1u) &&
        cost + instance.candidates[i].cost <= instance.budget) {
      return false;
    }
  }
  return true;
}

std::vector<std::size_t> MaskToIndices(std::uint64_t mask, std::size_t n) {
  std::vector<std::size_t> selected;
  for (std::size_t i = 0; i < n; ++i) {
    if ((mask >> i) & 1u) selected.push_back(i);
  }
  return selected;
}

/// The original ascending-mask sweep: every candidate jury is materialized
/// and evaluated from scratch. Kept as the `--no-incremental` reference.
JspSolution SweepFromScratch(const JspInstance& instance,
                             const JqObjective& objective, bool monotone) {
  const std::size_t n = instance.num_candidates();
  JspSolution best = MakeSolution(instance, {}, EmptyJuryJq(instance.alpha));
  std::uint64_t best_mask = 0;
  const std::uint64_t total = 1ull << n;
  for (std::uint64_t mask = 1; mask < total; ++mask) {
    double cost = 0.0;
    if (!FeasibleCost(instance, mask, &cost)) continue;
    if (monotone && !IsMaximal(instance, mask, cost)) continue;
    std::vector<std::size_t> selected = MaskToIndices(mask, n);
    Jury candidate;
    for (std::size_t idx : selected) {
      candidate.Add(instance.candidates[idx]);
    }
    const double jq = objective.Evaluate(candidate, instance.alpha);
    if (Improves(jq, cost, mask, best_mask, best)) {
      best = MakeSolution(instance, std::move(selected), jq);
      best_mask = mask;
    }
  }
  return best;
}

/// Gray-code sweep: consecutive masks differ in exactly one bit
/// (`ctz(k)`), so the session walks the whole subset lattice with one
/// add/remove delta update per jury.
JspSolution SweepGrayCode(const JspInstance& instance,
                          const JqObjective& objective, bool monotone) {
  const std::size_t n = instance.num_candidates();
  JspSolution best = MakeSolution(instance, {}, EmptyJuryJq(instance.alpha));
  std::uint64_t best_mask = 0;
  auto session = objective.StartSession(instance.alpha, true);
  std::vector<bool> in_jury(n, false);
  std::vector<std::size_t> session_members;  // candidate index by position

  const std::uint64_t total = 1ull << n;
  std::uint64_t mask = 0;
  for (std::uint64_t k = 1; k < total; ++k) {
    const std::size_t bit =
        static_cast<std::size_t>(std::countr_zero(k));
    mask ^= 1ull << bit;
    if (!in_jury[bit]) {
      session->ScoreAdd(instance.candidates[bit]);
      session->Commit();
      in_jury[bit] = true;
      session_members.push_back(bit);
    } else {
      const auto it = std::find(session_members.begin(),
                                session_members.end(), bit);
      session->ScoreRemove(
          static_cast<std::size_t>(it - session_members.begin()));
      session->Commit();
      in_jury[bit] = false;
      session_members.erase(it);
    }
    double cost = 0.0;
    if (!FeasibleCost(instance, mask, &cost)) continue;
    if (monotone && !IsMaximal(instance, mask, cost)) continue;
    const double jq = session->current_jq();
    if (Improves(jq, cost, mask, best_mask, best)) {
      best = MakeSolution(instance, MaskToIndices(mask, n), jq);
      best_mask = mask;
    }
  }
  return best;
}

}  // namespace

Result<JspSolution> SolveExhaustive(const JspInstance& instance,
                                    const JqObjective& objective,
                                    const ExhaustiveOptions& options) {
  JURY_RETURN_NOT_OK(instance.Validate());
  const std::size_t n = instance.num_candidates();
  if (n > options.max_candidates) {
    return Status::OutOfRange(
        "exhaustive JSP guarded to N <= " +
        std::to_string(options.max_candidates) + ", got N = " +
        std::to_string(n));
  }
  const bool monotone = objective.monotone_in_size();
  if (n == 0) {
    return MakeSolution(instance, {}, EmptyJuryJq(instance.alpha));
  }
  return options.use_incremental
             ? SweepGrayCode(instance, objective, monotone)
             : SweepFromScratch(instance, objective, monotone);
}

}  // namespace jury
