#ifndef JURYOPT_CORE_BUDGET_TABLE_H_
#define JURYOPT_CORE_BUDGET_TABLE_H_

#include <string>
#include <vector>

#include "core/optjs.h"
#include "util/result.h"
#include "util/rng.h"

namespace jury {

/// \brief One row of the Fig. 1 "budget-quality table": the optimal jury
/// within a given budget, its estimated quality, and the money it actually
/// requires (which can undercut the budget, e.g. the paper's {B,C,G} jury
/// needs only 14 of the 15-unit budget).
struct BudgetQualityRow {
  double budget = 0.0;
  std::vector<std::size_t> selected;
  std::string jury_ids;
  double jq = 0.0;
  double required = 0.0;
};

/// \brief Execution knobs for `BuildBudgetQualityTable` (the solve
/// configuration itself lives in `OptjsOptions`).
struct BudgetTableOptions {
  /// When true (the default), each row's inner OPTJS solve keeps the
  /// caller's `num_threads` setting: the row runs as a task on the
  /// process-wide scheduler and fans its own parallel sections (restart
  /// chains, candidate scans, subset shards) out as *nested* regions, so
  /// idle workers help finish a row instead of sitting out the tail —
  /// with fewer rows than workers the old behavior starved them. False
  /// restores the historical fixed-pool behavior (row-level parallelism
  /// only, inner solvers pinned to one thread); kept for the bench
  /// ablation that measures the nested-parallelism win. Either way the
  /// table is bit-identical for any thread count — rows depend only on
  /// their serially-forked rng streams and every inner parallel path is
  /// itself deterministic in the thread count.
  bool nested_solver_parallelism = true;
};

/// \brief Computes the budget-quality table for a candidate pool, one row
/// per entry of `budgets`, so the task provider can pick the best
/// budget-quality trade-off before paying anyone (§1).
Result<std::vector<BudgetQualityRow>> BuildBudgetQualityTable(
    const std::vector<Worker>& candidates, const std::vector<double>& budgets,
    double alpha, Rng* rng, const OptjsOptions& options = {},
    const BudgetTableOptions& table_options = {});

/// Renders the table in the paper's style (monospace, percent JQ).
std::string FormatBudgetQualityTable(const std::vector<BudgetQualityRow>& rows);

/// \brief Inverse budget query: the smallest budget (within `tolerance`,
/// by bisection over [0, total pool cost]) whose optimal jury reaches
/// `target_jq`. Returns FailedPrecondition when even the full pool falls
/// short. This turns the Fig. 1 table around: "I need 85% — what will it
/// cost me?".
Result<BudgetQualityRow> MinimalBudgetForQuality(
    const std::vector<Worker>& candidates, double target_jq, double alpha,
    Rng* rng, const OptjsOptions& options = {}, double tolerance = 1e-3);

}  // namespace jury

#endif  // JURYOPT_CORE_BUDGET_TABLE_H_
