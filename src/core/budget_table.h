#ifndef JURYOPT_CORE_BUDGET_TABLE_H_
#define JURYOPT_CORE_BUDGET_TABLE_H_

#include <string>
#include <vector>

#include "core/optjs.h"
#include "util/result.h"
#include "util/rng.h"

namespace jury {

/// \brief One row of the Fig. 1 "budget-quality table": the optimal jury
/// within a given budget, its estimated quality, and the money it actually
/// requires (which can undercut the budget, e.g. the paper's {B,C,G} jury
/// needs only 14 of the 15-unit budget).
struct BudgetQualityRow {
  double budget = 0.0;
  std::vector<std::size_t> selected;
  std::string jury_ids;
  double jq = 0.0;
  double required = 0.0;
};

/// \brief Computes the budget-quality table for a candidate pool, one row
/// per entry of `budgets`, so the task provider can pick the best
/// budget-quality trade-off before paying anyone (§1).
Result<std::vector<BudgetQualityRow>> BuildBudgetQualityTable(
    const std::vector<Worker>& candidates, const std::vector<double>& budgets,
    double alpha, Rng* rng, const OptjsOptions& options = {});

/// Renders the table in the paper's style (monospace, percent JQ).
std::string FormatBudgetQualityTable(const std::vector<BudgetQualityRow>& rows);

/// \brief Inverse budget query: the smallest budget (within `tolerance`,
/// by bisection over [0, total pool cost]) whose optimal jury reaches
/// `target_jq`. Returns FailedPrecondition when even the full pool falls
/// short. This turns the Fig. 1 table around: "I need 85% — what will it
/// cost me?".
Result<BudgetQualityRow> MinimalBudgetForQuality(
    const std::vector<Worker>& candidates, double target_jq, double alpha,
    Rng* rng, const OptjsOptions& options = {}, double tolerance = 1e-3);

}  // namespace jury

#endif  // JURYOPT_CORE_BUDGET_TABLE_H_
