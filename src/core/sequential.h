#ifndef JURYOPT_CORE_SEQUENTIAL_H_
#define JURYOPT_CORE_SEQUENTIAL_H_

#include <cstddef>
#include <functional>
#include <limits>
#include <vector>

#include "core/objective.h"
#include "model/worker.h"
#include "util/result.h"

namespace jury {

/// \brief Online Bayesian posterior over a decision-making task.
///
/// The paper selects the whole jury *before* any vote is seen (§8 contrasts
/// this with online systems like CDAS [25]). This class provides the online
/// counterpart on top of the same model: feed votes one at a time and the
/// posterior `Pr(t = 0 | votes so far)` updates in O(1) via the log-odds
/// accumulator — the running version of BV's decision statistic
/// (Theorem 1). Deciding by `CurrentAnswer()` after any prefix of votes is
/// exactly BV on that prefix.
class SequentialDecision {
 public:
  /// Starts from the task prior `alpha = Pr(t = 0)`.
  explicit SequentialDecision(double alpha);

  /// Incorporates one vote from a worker of the given quality.
  void Observe(double quality, int vote);

  /// Posterior probability that the true answer is 0.
  double PosteriorZero() const;
  /// BV's answer right now (ties to 0, as in Theorem 1).
  int CurrentAnswer() const { return log_odds_ >= 0.0 ? 0 : 1; }
  /// max(p0, 1 - p0): the probability the current answer is correct given
  /// the observed votes.
  double Confidence() const;
  std::size_t votes_seen() const { return votes_seen_; }

 private:
  double log_odds_;  // ln( Pr(t=0|V) / Pr(t=1|V) )
  std::size_t votes_seen_ = 0;
};

/// \brief Stopping policy for `RunSequentialPolicy`.
struct SequentialConfig {
  double alpha = 0.5;
  /// Stop as soon as the posterior confidence reaches this level.
  double confidence_threshold = 0.95;
  /// Stop before a vote whose cost would exceed the remaining budget.
  double budget = std::numeric_limits<double>::infinity();
  /// Hard cap on the number of votes bought.
  std::size_t max_votes = std::numeric_limits<std::size_t>::max();
  /// Optional: when set, the policy's grow step also feeds each purchased
  /// worker into an `IncrementalJqEvaluator` session of this objective and
  /// records the *offline* jury quality of the prefix bought so far — the
  /// JQ the purchased jury would have before any votes are read. One O(n)
  /// delta update per vote, against O(n^2) re-evaluation per step.
  const JqObjective* projected_objective = nullptr;
  /// Delta-update the projected-JQ session (see AnnealingOptions).
  bool use_incremental = true;
};

/// \brief Result of one sequential run.
struct SequentialOutcome {
  int answer = 0;
  double confidence = 0.5;
  std::size_t votes_used = 0;
  double spent = 0.0;
  /// True when the confidence threshold (not budget/stream exhaustion)
  /// ended the run.
  bool stopped_by_confidence = false;
  /// Offline JQ of the purchased prefix after each vote; filled only when
  /// `SequentialConfig::projected_objective` is set.
  std::vector<double> projected_jq;
};

/// \brief Buys votes from `stream` in order — paying each worker's cost and
/// eliciting their vote via `elicit` — until the stopping policy fires.
///
/// This is the CDAS-style "quality-sensitive answering" loop [25] built on
/// the paper's model: because the posterior is exactly BV's, the confidence
/// threshold is a guarantee on `Pr[answer correct | votes]`, and easy tasks
/// stop early while ambiguous ones spend more of the budget.
Result<SequentialOutcome> RunSequentialPolicy(
    const std::vector<Worker>& stream,
    const std::function<int(const Worker&, std::size_t index)>& elicit,
    const SequentialConfig& config = {});

}  // namespace jury

#endif  // JURYOPT_CORE_SEQUENTIAL_H_
