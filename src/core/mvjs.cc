#include "core/mvjs.h"

#include "core/greedy.h"
#include "core/objective.h"

namespace jury {

Result<JspSolution> SolveMvjs(const JspInstance& instance, Rng* rng,
                              const MvjsOptions& options) {
  JURY_RETURN_NOT_OK(instance.Validate());
  const MajorityObjective objective;

  AnnealingOptions annealing = options.annealing;
  annealing.trust_monotone_adds = false;  // MV is not monotone in size
  annealing.use_incremental &= options.use_incremental;
  JURY_ASSIGN_OR_RETURN(JspSolution best,
                        SolveAnnealing(instance, objective, rng, annealing));

  if (options.use_odd_top_k) {
    GreedyOptions greedy_options;
    greedy_options.use_incremental = options.use_incremental;
    JURY_ASSIGN_OR_RETURN(
        JspSolution greedy,
        SolveOddTopK(instance, objective, greedy_options));
    if (greedy.jq > best.jq) best = greedy;
  }
  return best;
}

}  // namespace jury
