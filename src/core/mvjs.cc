#include "core/mvjs.h"

#include "core/greedy.h"
#include "core/objective.h"
#include "model/worker_pool_view.h"

namespace jury {

Result<JspSolution> SolveMvjs(const JspInstance& instance, Rng* rng,
                              const MvjsOptions& options) {
  JURY_RETURN_NOT_OK(instance.Validate());
  const WorkerPoolView view(instance.candidates);
  const MajorityObjective objective;
  return SolveMvjs(instance, view, objective, rng, options);
}

Result<JspSolution> SolveMvjs(const JspInstance& instance,
                              const WorkerPoolView& view,
                              const MajorityObjective& objective, Rng* rng,
                              const MvjsOptions& options,
                              AnnealingStats* annealing_stats) {
  JURY_RETURN_NOT_OK(options.Validate());
  if (options.termination != nullptr) *options.termination = TerminationInfo{};

  // Both phases run serially, but each gets its own TerminationInfo so
  // the merge below is explicit and ordered (annealing, then top-k).
  AnnealingOptions annealing = options.annealing;
  annealing.trust_monotone_adds = false;  // MV is not monotone in size
  annealing.use_incremental &= options.use_incremental;
  annealing.cancel_token = options.cancel_token;
  annealing.max_work_units = options.max_work_units;
  TerminationInfo annealing_term;
  annealing.termination = &annealing_term;
  JURY_ASSIGN_OR_RETURN(
      JspSolution best,
      SolveAnnealing(instance, view, objective, rng, annealing,
                     annealing_stats));
  if (options.termination != nullptr) {
    options.termination->Merge(annealing_term);
  }

  if (options.use_odd_top_k) {
    GreedyOptions greedy_options;
    greedy_options.use_incremental = options.use_incremental;
    greedy_options.cancel_token = options.cancel_token;
    greedy_options.max_work_units = options.max_work_units;
    TerminationInfo greedy_term;
    greedy_options.termination = &greedy_term;
    JURY_ASSIGN_OR_RETURN(
        JspSolution greedy,
        SolveOddTopK(instance, view, objective, greedy_options));
    if (greedy.jq > best.jq) best = greedy;
    if (options.termination != nullptr) {
      options.termination->Merge(greedy_term);
    }
  }
  return best;
}

}  // namespace jury
