#ifndef JURYOPT_CORE_GREEDY_H_
#define JURYOPT_CORE_GREEDY_H_

#include "core/jsp.h"
#include "core/objective.h"
#include "util/result.h"

namespace jury {

/// \brief Cheap deterministic JSP baselines, used for ablations (E19) and as
/// seeds/components of the MVJS system.

/// Sorts candidates by quality (descending) and adds each one that still
/// fits the budget. With uniform costs this is optimal for BV by Lemmas 1-2
/// (a property the tests verify).
Result<JspSolution> SolveGreedyByQuality(const JspInstance& instance,
                                         const JqObjective& objective);

/// Sorts by (quality - 0.5) / cost — informativeness per unit money — and
/// adds while affordable. Free workers (cost ~ 0) rank first.
Result<JspSolution> SolveGreedyByValuePerCost(const JspInstance& instance,
                                              const JqObjective& objective);

/// MV-oriented heuristic: for every odd jury size k, greedily picks the k
/// highest-quality affordable workers, evaluates the objective, and keeps
/// the best size. Mirrors the odd-size-majority intuition behind Cao et
/// al.'s MV solver (MV gains nothing from even extensions).
Result<JspSolution> SolveOddTopK(const JspInstance& instance,
                                 const JqObjective& objective);

}  // namespace jury

#endif  // JURYOPT_CORE_GREEDY_H_
