#ifndef JURYOPT_CORE_GREEDY_H_
#define JURYOPT_CORE_GREEDY_H_

#include "core/jsp.h"
#include "core/objective.h"
#include "core/solver_options.h"
#include "util/result.h"

namespace jury {

class WorkerPoolView;

/// \brief Cheap deterministic JSP baselines, used for ablations (E19) and as
/// seeds/components of the MVJS system. All of them grow juries one worker
/// at a time through an `IncrementalJqEvaluator` session.
struct GreedyOptions : SolverOptions {
  /// Score candidate additions by delta update (see AnnealingOptions).
  bool use_incremental = true;

  /// Every knob is a free boolean/count today, so this always returns OK;
  /// it exists so the uniform options contract (`*Options::Validate()`
  /// called at every solve entry) covers the greedy family too.
  Status Validate() const { return Status::OK(); }
};

/// Sorts candidates by quality (descending) and adds each one that still
/// fits the budget. With uniform costs this is optimal for BV by Lemmas 1-2
/// (a property the tests verify).
Result<JspSolution> SolveGreedyByQuality(const JspInstance& instance,
                                         const JqObjective& objective,
                                         const GreedyOptions& options = {});

/// Sorts by (quality - 0.5) / cost — informativeness per unit money — and
/// adds while affordable. Free workers (cost ~ 0) rank first.
Result<JspSolution> SolveGreedyByValuePerCost(
    const JspInstance& instance, const JqObjective& objective,
    const GreedyOptions& options = {});

/// MV-oriented heuristic: for every odd jury size k, greedily picks the k
/// highest-quality affordable workers, evaluates the objective, and keeps
/// the best size. Mirrors the odd-size-majority intuition behind Cao et
/// al.'s MV solver (MV gains nothing from even extensions). The k-prefixes
/// are nested, so one evaluation session walks every size in O(n) delta
/// updates total.
Result<JspSolution> SolveOddTopK(const JspInstance& instance,
                                 const JqObjective& objective,
                                 const GreedyOptions& options = {});

/// True marginal-gain greedy: each round scores *every* affordable
/// candidate addition through the session (an O(n) delta update apiece
/// rather than an O(n^2) from-scratch evaluation) and commits the best
/// one directly at its remembered score. Stops when nothing fits — or,
/// for non-monotone objectives, when the best addition no longer improves
/// the jury. With `options.num_threads != 1` the per-round scan shards
/// candidates across threads, each thread scoring through its own
/// `Clone()` of the round's session; scores are bit-identical to the
/// serial scan and the winner is picked by the same ordered banded argmax,
/// so the selected jury never depends on the thread count.
Result<JspSolution> SolveGreedyMarginalGain(const JspInstance& instance,
                                            const JqObjective& objective,
                                            const GreedyOptions& options = {});

/// Planned-pool overloads of the four greedy solvers: pool validation and
/// the columnar view are hoisted to the caller (see the annealing planned
/// overload for the contract). Bit-identical to the wrappers above.
Result<JspSolution> SolveGreedyByQuality(const JspInstance& instance,
                                         const WorkerPoolView& view,
                                         const JqObjective& objective,
                                         const GreedyOptions& options = {});
Result<JspSolution> SolveGreedyByValuePerCost(
    const JspInstance& instance, const WorkerPoolView& view,
    const JqObjective& objective, const GreedyOptions& options = {});
Result<JspSolution> SolveOddTopK(const JspInstance& instance,
                                 const WorkerPoolView& view,
                                 const JqObjective& objective,
                                 const GreedyOptions& options = {});
Result<JspSolution> SolveGreedyMarginalGain(const JspInstance& instance,
                                            const WorkerPoolView& view,
                                            const JqObjective& objective,
                                            const GreedyOptions& options = {});

}  // namespace jury

#endif  // JURYOPT_CORE_GREEDY_H_
