#ifndef JURYOPT_CORE_MVJS_H_
#define JURYOPT_CORE_MVJS_H_

#include "core/annealing.h"
#include "core/jsp.h"
#include "core/solver_options.h"
#include "util/result.h"
#include "util/rng.h"

namespace jury {

/// \brief The Majority-Voting Jury Selection baseline (Cao et al. [7]):
/// solves `argmax_{J in C} JQ(J, MV, 0.5)`.
///
/// Cao et al.'s search code is not public; this reproduction gives MV the
/// same search machinery OPTJS uses — simulated annealing over the exact
/// MV jury quality — plus the odd-top-k greedy that exploits MV's structure,
/// returning whichever is better (DESIGN.md substitution #2). Because both
/// systems search equally hard, the measured OPTJS-vs-MVJS gap isolates the
/// voting-strategy optimality, which is the paper's claim under test.
struct MvjsOptions : SolverOptions {
  AnnealingOptions annealing;
  /// Also try the odd-top-k greedy and keep the better jury.
  bool use_odd_top_k = true;
  /// Master switch for delta-update evaluation (Poisson-binomial
  /// AddTrial/RemoveTrial under the MV objective).
  bool use_incremental = true;

  /// Validates the forwarded annealing schedule. Called at every solve
  /// entry.
  Status Validate() const { return annealing.Validate(); }
};

/// Solves JSP under the MV strategy (the baseline system of §6.1.2).
/// The returned `jq` is the exact JQ(J, MV, alpha) of the chosen jury.
Result<JspSolution> SolveMvjs(const JspInstance& instance, Rng* rng,
                              const MvjsOptions& options = {});

/// \brief Planned-pool overload: pool validation and the columnar view are
/// the caller's, and the exact-MV objective is passed in so the caller
/// owns its evaluation counters (see the OPTJS planned overload). When
/// `annealing_stats` is non-null it receives the inner SA
/// instrumentation.
Result<JspSolution> SolveMvjs(const JspInstance& instance,
                              const WorkerPoolView& view,
                              const MajorityObjective& objective, Rng* rng,
                              const MvjsOptions& options = {},
                              AnnealingStats* annealing_stats = nullptr);

}  // namespace jury

#endif  // JURYOPT_CORE_MVJS_H_
