#include "util/simd_dispatch.h"

#include <atomic>
#include <cstdlib>
#include <string>
#include <vector>

#include "util/simd_kernels_inl.h"

namespace jury::simd {

#if defined(JURYOPT_HAVE_AVX2)
// Defined in simd_avx2.cc (the only translation unit built with -mavx2).
const KernelTable& Avx2Table();
#endif

namespace {

// ------------------------------------------------------- scalar reference

void FusedStepScalar(double a, double b, const double* p, double* acc,
                     std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) {
    acc[j] += a * (1.0 - p[j]) + b * p[j];
  }
}

void ConvolveMassScalar(const double* f, std::int64_t span,
                        const std::int64_t* bs, const double* qs,
                        std::size_t count, double* out) {
  internal::ConvolveMassBatch(f, span, bs, qs, count, out,
                              &internal::ConvolveMassOnePadded);
}

void RemoveQueryScalar(const double* pmf, int n, const double* p,
                       std::size_t count, int tail_k, int cdf_k,
                       double* tails, double* cdfs) {
  // One deconvolved row, reused across candidates and calls.
  static thread_local std::vector<double> g;
  const std::size_t entries = static_cast<std::size_t>(n);
  g.resize(entries);
  for (std::size_t j = 0; j < count; ++j) {
    internal::RemoveTrialRow(pmf, n, p[j], g.data());
    if (tails != nullptr) tails[j] = internal::TailFromRow(g.data(), entries, tail_k);
    if (cdfs != nullptr) cdfs[j] = internal::CdfFromRow(g.data(), entries, cdf_k);
  }
}

constexpr KernelTable kScalarTable{
    "scalar",
    &FusedStepScalar,
    &ConvolveMassScalar,
    &RemoveQueryScalar,
};

// ------------------------------------------------------------- selection

bool CpuHasAvx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

const KernelTable* TableFor(Level level) {
  if (level == Level::kAvx2) {
#if defined(JURYOPT_HAVE_AVX2)
    if (CpuHasAvx2()) return &Avx2Table();
#endif
    return nullptr;  // unavailable on this build/CPU
  }
  return &kScalarTable;
}

Level InitialLevel() {
  const char* env = std::getenv("JURYOPT_SIMD");
  if (env != nullptr && env[0] != '\0') {
    const std::string requested(env);
    if (requested == "scalar") return Level::kScalar;
    if (requested == "avx2" && TableFor(Level::kAvx2) != nullptr) {
      return Level::kAvx2;
    }
    if (requested == "avx2") return Level::kScalar;  // requested, unavailable
    // Unknown value: fall through to autodetection.
  }
  return TableFor(Level::kAvx2) != nullptr ? Level::kAvx2 : Level::kScalar;
}

// The active table, published with release/acquire so a reader always sees
// a fully-initialized KernelTable. Both fields are only ever rewritten
// together from quiesced states (startup, SetLevel).
std::atomic<const KernelTable*> g_active{nullptr};
std::atomic<int> g_level{static_cast<int>(Level::kScalar)};

const KernelTable* EnsureInit() {
  const KernelTable* table = g_active.load(std::memory_order_acquire);
  if (table != nullptr) return table;
  // Benign race: concurrent first calls compute the same level and store
  // the same pointers.
  const Level level = InitialLevel();
  table = TableFor(level);
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
  g_active.store(table, std::memory_order_release);
  return table;
}

}  // namespace

const KernelTable& Kernels() { return *EnsureInit(); }

Level ActiveLevel() {
  EnsureInit();
  return static_cast<Level>(g_level.load(std::memory_order_relaxed));
}

bool Avx2Available() { return TableFor(Level::kAvx2) != nullptr; }

bool SetLevel(Level level) {
  const KernelTable* table = TableFor(level);
  if (table == nullptr) return false;
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
  g_active.store(table, std::memory_order_release);
  return true;
}

const char* LevelName(Level level) {
  return level == Level::kAvx2 ? "avx2" : "scalar";
}

}  // namespace jury::simd
