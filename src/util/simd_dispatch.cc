#include "util/simd_dispatch.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

#include "util/simd_kernels_inl.h"

namespace jury::simd {

#if defined(JURYOPT_HAVE_AVX2)
// Defined in simd_avx2.cc (the only translation unit built with -mavx2).
const KernelTable& Avx2Table();
#endif
#if defined(JURYOPT_HAVE_AVX512)
// Defined in simd_avx512.cc (the only translation unit built with
// -mavx512f).
const KernelTable& Avx512Table();
#endif

namespace {

// ------------------------------------------------------- scalar reference

void FusedStepScalar(double a, double b, const double* p, double* acc,
                     std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) {
    acc[j] += a * (1.0 - p[j]) + b * p[j];
  }
}

void ConvolveMassScalar(const double* f, std::int64_t span,
                        const std::int64_t* bs, const double* qs,
                        std::size_t count, double* out) {
  internal::ConvolveMassBatch(f, span, bs, qs, count, out,
                              &internal::ConvolveMassOnePadded);
}

void RemoveQueryScalar(const double* pmf, int n, const double* p,
                       std::size_t count, int tail_k, int cdf_k,
                       double* tails, double* cdfs) {
  // One deconvolved row, reused across candidates and calls.
  static thread_local std::vector<double> g;
  const std::size_t entries = static_cast<std::size_t>(n);
  g.resize(entries);
  for (std::size_t j = 0; j < count; ++j) {
    internal::RemoveTrialRow(pmf, n, p[j], g.data());
    if (tails != nullptr) tails[j] = internal::TailFromRow(g.data(), entries, tail_k);
    if (cdfs != nullptr) cdfs[j] = internal::CdfFromRow(g.data(), entries, cdf_k);
  }
}

void DeconvolveMassScalar(const double* f, std::int64_t span,
                          const std::int64_t* bs, const double* qs,
                          std::size_t count, double* out) {
  internal::DeconvolveMassBatch(f, span, bs, qs, count, out,
                                &internal::DeconvolveMassOneRow);
}

void HashLanesScalar(const unsigned char* data, std::size_t num_strides,
                     std::uint64_t* lanes) {
  internal::HashLanesRange(data, 0, num_strides, lanes);
}

std::uint64_t AuditPoolColumnsScalar(const double* quality, const double* cost,
                                     const double* norm_quality,
                                     const double* log_odds, std::size_t n) {
  return internal::AuditPoolColumnsRange(quality, cost, norm_quality,
                                         log_odds, 0, n);
}

std::uint64_t AuditMonotoneU64Scalar(const std::uint64_t* values,
                                     std::size_t n) {
  return internal::AuditMonotoneU64Range(values, 0, n);
}

constexpr KernelTable kScalarTable{
    "scalar",
    &FusedStepScalar,
    &ConvolveMassScalar,
    &RemoveQueryScalar,
    &DeconvolveMassScalar,
    &HashLanesScalar,
    &AuditPoolColumnsScalar,
    &AuditMonotoneU64Scalar,
};

// ------------------------------------------------------------- selection

bool CpuHasAvx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

bool CpuHasAvx512f() {
#if defined(__x86_64__) || defined(__i386__)
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx)) return false;
  if ((ecx & (1u << 27)) == 0) return false;  // OSXSAVE
  // xgetbv(0): the OS must save SSE + AVX + opmask/ZMM_Hi256/Hi16_ZMM
  // state (XCR0 bits 1, 2 and 7:5), or the ZMM registers are unusable no
  // matter what cpuid advertises.
  unsigned lo = 0, hi = 0;
  __asm__ volatile("xgetbv" : "=a"(lo), "=d"(hi) : "c"(0u));
  if ((lo & 0xE6u) != 0xE6u) return false;
  if (!__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)) return false;
  return (ebx & (1u << 16)) != 0;  // AVX512F
#else
  return false;
#endif
}

const KernelTable* TableFor(Level level) {
  switch (level) {
    case Level::kScalar:
      return &kScalarTable;
    case Level::kAvx2:
#if defined(JURYOPT_HAVE_AVX2)
      if (CpuHasAvx2()) return &Avx2Table();
#endif
      return nullptr;  // unavailable on this build/CPU
    case Level::kAvx512:
#if defined(JURYOPT_HAVE_AVX512)
      if (CpuHasAvx512f()) return &Avx512Table();
#endif
      return nullptr;
  }
  return nullptr;
}

Level BestLevel() {
  if (TableFor(Level::kAvx512) != nullptr) return Level::kAvx512;
  if (TableFor(Level::kAvx2) != nullptr) return Level::kAvx2;
  return Level::kScalar;
}

Level InitialLevel() {
  const char* env = std::getenv("JURYOPT_SIMD");
  if (env != nullptr && env[0] != '\0') {
    Level requested;
    if (ParseLevel(env, &requested)) {
      // Requested but unavailable degrades to scalar, never to a lower
      // vector level: a forced level is a determinism/debug request.
      return TableFor(requested) != nullptr ? requested : Level::kScalar;
    }
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true, std::memory_order_relaxed)) {
      std::fprintf(stderr,
                   "juryopt: unrecognized JURYOPT_SIMD value \"%s\" "
                   "(expected scalar|avx2|avx512); autodetecting\n",
                   env);
    }
  }
  return BestLevel();
}

// The active table, published with release/acquire so a reader always sees
// a fully-initialized KernelTable. Both fields are only ever rewritten
// together from quiesced states (startup, SetLevel).
std::atomic<const KernelTable*> g_active{nullptr};
std::atomic<int> g_level{static_cast<int>(Level::kScalar)};

const KernelTable* EnsureInit() {
  const KernelTable* table = g_active.load(std::memory_order_acquire);
  if (table != nullptr) return table;
  // Benign race: concurrent first calls compute the same level and store
  // the same pointers.
  const Level level = InitialLevel();
  table = TableFor(level);
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
  g_active.store(table, std::memory_order_release);
  return table;
}

}  // namespace

const KernelTable& Kernels() { return *EnsureInit(); }

Level ActiveLevel() {
  EnsureInit();
  return static_cast<Level>(g_level.load(std::memory_order_relaxed));
}

bool Avx2Available() { return TableFor(Level::kAvx2) != nullptr; }

bool Avx512Available() { return TableFor(Level::kAvx512) != nullptr; }

bool ParseLevel(const char* token, Level* out) {
  if (token == nullptr) return false;
  std::string lowered(token);
  for (char& c : lowered) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (lowered == "scalar") {
    *out = Level::kScalar;
  } else if (lowered == "avx2") {
    *out = Level::kAvx2;
  } else if (lowered == "avx512") {
    *out = Level::kAvx512;
  } else {
    return false;
  }
  return true;
}

bool SetLevel(Level level) {
  const KernelTable* table = TableFor(level);
  if (table == nullptr) return false;
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
  g_active.store(table, std::memory_order_release);
  return true;
}

const char* LevelName(Level level) {
  switch (level) {
    case Level::kAvx512:
      return "avx512";
    case Level::kAvx2:
      return "avx2";
    case Level::kScalar:
      return "scalar";
  }
  return "scalar";
}

}  // namespace jury::simd
