#include "util/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.h"

namespace jury {

Histogram::Histogram(double lo, double hi, std::size_t num_bins) : lo_(lo) {
  JURY_CHECK_LT(lo, hi);
  JURY_CHECK_GT(num_bins, 0u);
  width_ = (hi - lo) / static_cast<double>(num_bins);
  counts_.assign(num_bins, 0);
}

void Histogram::Add(double x) {
  double pos = (x - lo_) / width_;
  std::size_t bin = 0;
  if (pos >= 0.0) {
    bin = std::min(static_cast<std::size_t>(pos), counts_.size() - 1);
  }
  ++counts_[bin];
  ++total_;
}

double Histogram::bin_lo(std::size_t i) const {
  JURY_CHECK_LT(i, counts_.size());
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const {
  JURY_CHECK_LT(i, counts_.size());
  return lo_ + width_ * static_cast<double>(i + 1);
}

std::string Histogram::ToString(std::size_t bar_width) const {
  std::size_t max_count = 0;
  for (std::size_t c : counts_) max_count = std::max(max_count, c);
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    os.setf(std::ios::fixed);
    os.precision(6);
    os << "[" << bin_lo(i) << ", " << bin_hi(i) << ") ";
    const std::size_t bar =
        max_count == 0 ? 0 : counts_[i] * bar_width / max_count;
    for (std::size_t b = 0; b < bar; ++b) os << '#';
    os << " " << counts_[i] << "\n";
  }
  return os.str();
}

RangeCounter::RangeCounter(std::vector<double> edges)
    : edges_(std::move(edges)) {
  JURY_CHECK_GE(edges_.size(), 2u);
  for (std::size_t i = 1; i < edges_.size(); ++i) {
    JURY_CHECK_LT(edges_[i - 1], edges_[i]);
  }
  counts_.assign(edges_.size(), 0);
}

void RangeCounter::Add(double x) {
  ++total_;
  if (x <= edges_[1] && x >= edges_[0]) {
    ++counts_[0];
    return;
  }
  for (std::size_t i = 1; i + 1 < edges_.size(); ++i) {
    if (x > edges_[i] && x <= edges_[i + 1]) {
      ++counts_[i];
      return;
    }
  }
  ++counts_.back();  // overflow bucket (also catches x below edges_[0]).
}

std::string RangeCounter::label(std::size_t i) const {
  JURY_CHECK_LT(i, counts_.size());
  std::ostringstream os;
  if (i == 0) {
    os << "[" << edges_[0] << ", " << edges_[1] << "]";
  } else if (i + 1 < edges_.size()) {
    os << "(" << edges_[i] << ", " << edges_[i + 1] << "]";
  } else {
    os << "(" << edges_.back() << ", +inf)";
  }
  return os.str();
}

}  // namespace jury
