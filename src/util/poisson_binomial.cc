#include "util/poisson_binomial.h"

#include <algorithm>

namespace jury {

PoissonBinomial::PoissonBinomial(const std::vector<double>& probs) {
  pmf_.assign(probs.size() + 1, 0.0);
  pmf_[0] = 1.0;
  std::size_t count = 0;
  for (double raw : probs) {
    const double p = std::min(std::max(raw, 0.0), 1.0);
    mean_ += p;
    ++count;
    // In-place convolution with Bernoulli(p), iterating downwards so each
    // entry is read before being overwritten.
    for (std::size_t k = count; k > 0; --k) {
      pmf_[k] = pmf_[k] * (1.0 - p) + pmf_[k - 1] * p;
    }
    pmf_[0] *= (1.0 - p);
  }
}

double PoissonBinomial::Pmf(int k) const {
  if (k < 0 || k > size()) return 0.0;
  return pmf_[static_cast<std::size_t>(k)];
}

double PoissonBinomial::TailAtLeast(int k) const {
  if (k <= 0) return 1.0;
  double acc = 0.0;
  for (int i = std::max(k, 0); i <= size(); ++i) {
    acc += pmf_[static_cast<std::size_t>(i)];
  }
  return std::min(acc, 1.0);
}

double PoissonBinomial::CdfAtMost(int k) const {
  if (k < 0) return 0.0;
  double acc = 0.0;
  for (int i = 0; i <= std::min(k, size()); ++i) {
    acc += pmf_[static_cast<std::size_t>(i)];
  }
  return std::min(acc, 1.0);
}

}  // namespace jury
