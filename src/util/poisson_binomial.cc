#include "util/poisson_binomial.h"

#include <algorithm>

#include "util/check.h"

namespace jury {

PoissonBinomial::PoissonBinomial(const std::vector<double>& probs) {
  pmf_.reserve(probs.size() + 1);
  pmf_.assign(1, 1.0);
  for (double raw : probs) AddTrial(raw);
}

void PoissonBinomial::AddTrial(double raw) {
  const double p = std::min(std::max(raw, 0.0), 1.0);
  mean_ += p;
  cumulative_valid_ = false;
  pmf_.push_back(0.0);
  // In-place convolution with Bernoulli(p), iterating downwards so each
  // entry is read before being overwritten.
  for (std::size_t k = pmf_.size() - 1; k > 0; --k) {
    pmf_[k] = pmf_[k] * (1.0 - p) + pmf_[k - 1] * p;
  }
  pmf_[0] *= (1.0 - p);
}

void PoissonBinomial::RemoveTrial(double raw) {
  JURY_CHECK_GE(size(), 1) << "RemoveTrial on an empty distribution";
  const double p = std::min(std::max(raw, 0.0), 1.0);
  mean_ -= p;
  cumulative_valid_ = false;
  const std::size_t n = pmf_.size() - 1;  // trials before removal
  // Solve f = g (*) Bernoulli(p) for g, i.e. f[k] = g[k](1-p) + g[k-1]p.
  if (p == 0.0) {
    pmf_.pop_back();  // identity convolution: f[k] = g[k]
  } else if (p == 1.0) {
    pmf_.erase(pmf_.begin());  // pure shift: f[k] = g[k-1]
  } else if (p < 0.5) {
    // Forward recurrence g[k] = (f[k] - p g[k-1]) / (1-p): the homogeneous
    // error gain p/(1-p) < 1, so roundoff contracts going up.
    double prev = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
      prev = (pmf_[k] - p * prev) / (1.0 - p);
      pmf_[k] = std::min(std::max(prev, 0.0), 1.0);
    }
    pmf_.pop_back();
  } else {
    // Backward recurrence g[k-1] = (f[k] - (1-p) g[k]) / p: gain (1-p)/p
    // <= 1 for p >= 1/2, so roundoff contracts going down. `fk` carries
    // f[k] across the in-place overwrite of slot k-1.
    double next = 0.0;
    double fk = pmf_[n];
    for (std::size_t k = n; k > 0; --k) {
      next = (fk - (1.0 - p) * next) / p;
      fk = pmf_[k - 1];
      pmf_[k - 1] = std::min(std::max(next, 0.0), 1.0);
    }
    pmf_.pop_back();
  }
}

double PoissonBinomial::Pmf(int k) const {
  if (k < 0 || k > size()) return 0.0;
  return pmf_[static_cast<std::size_t>(k)];
}

void PoissonBinomial::RefreshCumulative() const {
  const std::size_t m = pmf_.size();
  prefix_.resize(m);
  suffix_.resize(m);
  double acc = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    acc += pmf_[i];
    prefix_[i] = std::min(acc, 1.0);
  }
  acc = 0.0;
  for (std::size_t i = m; i > 0; --i) {
    acc += pmf_[i - 1];
    suffix_[i - 1] = std::min(acc, 1.0);
  }
  cumulative_valid_ = true;
}

double PoissonBinomial::TailAtLeast(int k) const {
  if (k <= 0) return 1.0;
  if (k > size()) return 0.0;
  if (!cumulative_valid_) RefreshCumulative();
  return suffix_[static_cast<std::size_t>(k)];
}

double PoissonBinomial::CdfAtMost(int k) const {
  if (k < 0) return 0.0;
  if (!cumulative_valid_) RefreshCumulative();
  return prefix_[static_cast<std::size_t>(std::min(k, size()))];
}

}  // namespace jury
