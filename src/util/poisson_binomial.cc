#include "util/poisson_binomial.h"

#include <algorithm>
#include <vector>

#include "util/check.h"
#include "util/simd_dispatch.h"

namespace jury {

PoissonBinomial::PoissonBinomial(const std::vector<double>& probs) {
  pmf_.assign(1, 1.0);
  AddTrialBatch(probs.data(), probs.size());
}

void PoissonBinomial::AddTrialBatch(const double* probs, std::size_t count) {
  if (count == 0) return;
  cumulative_valid_ = false;
  pmf_.reserve(pmf_.size() + count);
  // Same in-place convolution as `AddTrial`, trial by trial, but over raw
  // contiguous storage with the reservation hoisted out: the nested loop
  // carries no per-trial reallocation or call overhead and vectorizes.
  // Bit-identical to the scalar path (same expressions, same order).
  for (std::size_t t = 0; t < count; ++t) {
    const double p = std::min(std::max(probs[t], 0.0), 1.0);
    const double one_minus_p = 1.0 - p;
    mean_ += p;
    pmf_.push_back(0.0);
    double* f = pmf_.data();
    for (std::size_t k = pmf_.size() - 1; k > 0; --k) {
      f[k] = f[k] * one_minus_p + f[k - 1] * p;
    }
    f[0] *= one_minus_p;
  }
}

void PoissonBinomial::EvaluateBatch(const double* probs, std::size_t count,
                                    int tail_k, int cdf_k, double* tails,
                                    double* cdfs) const {
  if (count == 0 || (tails == nullptr && cdfs == nullptr)) return;
  const int n = size();      // committed trials
  const int new_n = n + 1;   // trials after the hypothetical addition
  // SoA staging: clamped candidate probabilities and one accumulator per
  // candidate, both contiguous so the inner candidate loops vectorize.
  // Thread-local so the per-round scan (twice per greedy shard on the MV
  // backend) reuses capacity instead of allocating per call.
  static thread_local std::vector<double> p;
  static thread_local std::vector<double> acc;
  p.resize(count);
  for (std::size_t j = 0; j < count; ++j) {
    p[j] = std::min(std::max(probs[j], 0.0), 1.0);
  }
  acc.resize(count);

  // g_j[k] = pmf[k] * (1 - p_j) + pmf[k-1] * p_j is the k-th entry of the
  // hypothetical pmf — exactly the `AddTrial` update expression, with
  // out-of-range committed entries reading as zero. The per-k inner loop
  // over candidates is the dispatched `fused_step` kernel (scalar
  // reference or AVX2, bit-identical either way; see simd_dispatch.h).
  const simd::KernelTable& kernels = simd::Kernels();
  if (tails != nullptr) {
    if (tail_k <= 0) {
      std::fill(tails, tails + count, 1.0);
    } else if (tail_k > new_n) {
      std::fill(tails, tails + count, 0.0);
    } else {
      // Descending accumulation from the top index, replicating the
      // suffix-sum order (and final clamp) of `RefreshCumulative`.
      std::fill(acc.begin(), acc.end(), 0.0);
      for (int k = new_n; k >= tail_k; --k) {
        const double a = k <= n ? pmf_[static_cast<std::size_t>(k)] : 0.0;
        const double b = k >= 1 ? pmf_[static_cast<std::size_t>(k - 1)] : 0.0;
        kernels.fused_step(a, b, p.data(), acc.data(), count);
      }
      for (std::size_t j = 0; j < count; ++j) {
        tails[j] = std::min(acc[j], 1.0);
      }
    }
  }

  if (cdfs != nullptr) {
    if (cdf_k < 0) {
      std::fill(cdfs, cdfs + count, 0.0);
    } else {
      // Ascending accumulation from zero — the prefix-sum order.
      const int kk = std::min(cdf_k, new_n);
      std::fill(acc.begin(), acc.end(), 0.0);
      for (int k = 0; k <= kk; ++k) {
        const double a = k <= n ? pmf_[static_cast<std::size_t>(k)] : 0.0;
        const double b = k >= 1 ? pmf_[static_cast<std::size_t>(k - 1)] : 0.0;
        kernels.fused_step(a, b, p.data(), acc.data(), count);
      }
      for (std::size_t j = 0; j < count; ++j) {
        cdfs[j] = std::min(acc[j], 1.0);
      }
    }
  }
}

void PoissonBinomial::EvaluateRemoveBatch(const double* probs,
                                          std::size_t count, int tail_k,
                                          int cdf_k, double* tails,
                                          double* cdfs) const {
  if (count == 0 || (tails == nullptr && cdfs == nullptr)) return;
  JURY_CHECK_GE(size(), 1) << "EvaluateRemoveBatch on an empty distribution";
  // Clamp exactly as `RemoveTrial` would; the kernels assume [0, 1].
  static thread_local std::vector<double> p;
  p.resize(count);
  for (std::size_t j = 0; j < count; ++j) {
    p[j] = std::min(std::max(probs[j], 0.0), 1.0);
  }
  simd::Kernels().remove_query(pmf_.data(), size(), p.data(), count, tail_k,
                               cdf_k, tails, cdfs);
}

void PoissonBinomial::AddTrial(double raw) {
  const double p = std::min(std::max(raw, 0.0), 1.0);
  mean_ += p;
  cumulative_valid_ = false;
  pmf_.push_back(0.0);
  // In-place convolution with Bernoulli(p), iterating downwards so each
  // entry is read before being overwritten.
  for (std::size_t k = pmf_.size() - 1; k > 0; --k) {
    pmf_[k] = pmf_[k] * (1.0 - p) + pmf_[k - 1] * p;
  }
  pmf_[0] *= (1.0 - p);
}

void PoissonBinomial::RemoveTrial(double raw) {
  JURY_CHECK_GE(size(), 1) << "RemoveTrial on an empty distribution";
  const double p = std::min(std::max(raw, 0.0), 1.0);
  mean_ -= p;
  cumulative_valid_ = false;
  const std::size_t n = pmf_.size() - 1;  // trials before removal
  // Solve f = g (*) Bernoulli(p) for g, i.e. f[k] = g[k](1-p) + g[k-1]p.
  if (p == 0.0) {
    pmf_.pop_back();  // identity convolution: f[k] = g[k]
  } else if (p == 1.0) {
    pmf_.erase(pmf_.begin());  // pure shift: f[k] = g[k-1]
  } else if (p < 0.5) {
    // Forward recurrence g[k] = (f[k] - p g[k-1]) / (1-p): the homogeneous
    // error gain p/(1-p) < 1, so roundoff contracts going up.
    double prev = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
      prev = (pmf_[k] - p * prev) / (1.0 - p);
      pmf_[k] = std::min(std::max(prev, 0.0), 1.0);
    }
    pmf_.pop_back();
  } else {
    // Backward recurrence g[k-1] = (f[k] - (1-p) g[k]) / p: gain (1-p)/p
    // <= 1 for p >= 1/2, so roundoff contracts going down. `fk` carries
    // f[k] across the in-place overwrite of slot k-1.
    double next = 0.0;
    double fk = pmf_[n];
    for (std::size_t k = n; k > 0; --k) {
      next = (fk - (1.0 - p) * next) / p;
      fk = pmf_[k - 1];
      pmf_[k - 1] = std::min(std::max(next, 0.0), 1.0);
    }
    pmf_.pop_back();
  }
}

double PoissonBinomial::Pmf(int k) const {
  if (k < 0 || k > size()) return 0.0;
  return pmf_[static_cast<std::size_t>(k)];
}

void PoissonBinomial::RefreshCumulative() const {
  const std::size_t m = pmf_.size();
  prefix_.resize(m);
  suffix_.resize(m);
  double acc = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    acc += pmf_[i];
    prefix_[i] = std::min(acc, 1.0);
  }
  acc = 0.0;
  for (std::size_t i = m; i > 0; --i) {
    acc += pmf_[i - 1];
    suffix_[i - 1] = std::min(acc, 1.0);
  }
  cumulative_valid_ = true;
}

double PoissonBinomial::TailAtLeast(int k) const {
  if (k <= 0) return 1.0;
  if (k > size()) return 0.0;
  if (!cumulative_valid_) RefreshCumulative();
  return suffix_[static_cast<std::size_t>(k)];
}

double PoissonBinomial::CdfAtMost(int k) const {
  if (k < 0) return 0.0;
  if (!cumulative_valid_) RefreshCumulative();
  return prefix_[static_cast<std::size_t>(std::min(k, size()))];
}

}  // namespace jury
