#ifndef JURYOPT_UTIL_CHECK_H_
#define JURYOPT_UTIL_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace jury {
namespace internal {

/// \brief Collects a fatal-error message and aborts the process when
/// destroyed. Used only for programming errors (violated invariants), never
/// for anticipated runtime failures — those go through `Status`.
class CheckFailStream {
 public:
  CheckFailStream(const char* file, int line, const char* expr) {
    stream_ << "JURY_CHECK failed at " << file << ":" << line << ": " << expr
            << " ";
  }
  [[noreturn]] ~CheckFailStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  template <typename T>
  CheckFailStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

struct Voidify {
  // Both overloads are needed: a bare JURY_CHECK produces a temporary
  // (rvalue), while a streamed one ends in the lvalue reference that
  // operator<< returns.
  void operator&(CheckFailStream&) {}
  void operator&(CheckFailStream&&) {}
};

}  // namespace internal
}  // namespace jury

/// Aborts with a message when `cond` is false. Additional context may be
/// streamed: `JURY_CHECK(n > 0) << "jury size " << n;`
#define JURY_CHECK(cond)               \
  (cond) ? (void)0                     \
         : ::jury::internal::Voidify() \
               & ::jury::internal::CheckFailStream(__FILE__, __LINE__, #cond)

#define JURY_CHECK_EQ(a, b) JURY_CHECK((a) == (b))
#define JURY_CHECK_NE(a, b) JURY_CHECK((a) != (b))
#define JURY_CHECK_LE(a, b) JURY_CHECK((a) <= (b))
#define JURY_CHECK_LT(a, b) JURY_CHECK((a) < (b))
#define JURY_CHECK_GE(a, b) JURY_CHECK((a) >= (b))
#define JURY_CHECK_GT(a, b) JURY_CHECK((a) > (b))

#endif  // JURYOPT_UTIL_CHECK_H_
