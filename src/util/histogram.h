#ifndef JURYOPT_UTIL_HISTOGRAM_H_
#define JURYOPT_UTIL_HISTOGRAM_H_

#include <cstddef>
#include <string>
#include <vector>

namespace jury {

/// \brief Fixed-width histogram over [lo, hi), used for the error-distribution
/// figures (Fig. 9(c)) and the error-range table (Table 3).
class Histogram {
 public:
  /// Creates `num_bins` equal-width bins over [lo, hi). Requires lo < hi and
  /// num_bins > 0. Values outside the range land in saturating edge bins.
  Histogram(double lo, double hi, std::size_t num_bins);

  void Add(double x);
  std::size_t total() const { return total_; }
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t num_bins() const { return counts_.size(); }
  /// Inclusive lower edge of bin i.
  double bin_lo(std::size_t i) const;
  /// Exclusive upper edge of bin i.
  double bin_hi(std::size_t i) const;

  /// ASCII rendering: one line per bin with a proportional bar.
  std::string ToString(std::size_t bar_width = 40) const;

 private:
  double lo_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// \brief Counts of values falling into caller-specified half-open ranges,
/// mirroring Table 3 of the paper ("Counts in different error ranges").
///
/// Ranges are defined by `edges`: bucket i covers (edges[i], edges[i+1]],
/// except bucket 0 which covers [edges[0], edges[1]] (closed below, as in the
/// paper's "[0, 0.01]"), and a final overflow bucket covers
/// (edges.back(), +inf).
class RangeCounter {
 public:
  explicit RangeCounter(std::vector<double> edges);

  void Add(double x);
  std::size_t total() const { return total_; }
  /// Number of buckets = edges.size() (last is the overflow bucket).
  std::size_t num_buckets() const { return counts_.size(); }
  std::size_t count(std::size_t i) const { return counts_.at(i); }
  /// Label such as "(0.01, 0.1]" or "(1, +inf)".
  std::string label(std::size_t i) const;

 private:
  std::vector<double> edges_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace jury

#endif  // JURYOPT_UTIL_HISTOGRAM_H_
