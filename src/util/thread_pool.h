#ifndef JURYOPT_UTIL_THREAD_POOL_H_
#define JURYOPT_UTIL_THREAD_POOL_H_

#include <cstddef>
#include <functional>

#include "util/scheduler.h"

namespace jury {

// `ResolveThreadCount` now lives in util/scheduler.h (included above) and
// is re-exported here for the historical includers.

/// \brief Compatibility shim over the process-wide work-stealing scheduler.
///
/// The fixed-size per-call pool this class used to be is retired: regions
/// now run on `Scheduler::Global()`, and `num_threads` survives as the
/// region's parallelism cap (1 = inline on the caller, exactly the old
/// serial path). The determinism contract is unchanged — shard boundaries
/// are a pure function of (begin, end, grain), reductions happen serially
/// in shard order after the region — and, unlike the old pool, regions may
/// nest: a body may call back into `ParallelFor` (or the scheduler
/// directly) and idle workers will steal the inner shards.
///
/// Every in-repo solver now uses `Scheduler` directly; this header stays
/// as the stable pool-shaped API for out-of-tree callers (plus the
/// `ParallelArgmax` reduction helper) with its original tests as the
/// contract. New code should use `Scheduler`.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads)
      : num_threads_(num_threads > 0 ? num_threads : 1) {}

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return num_threads_; }

  /// See `Scheduler::GlobalParallelFor`; `num_threads` caps the
  /// parallelism, and a size-1 pool runs inline without ever touching (or
  /// spawning) the global scheduler — the old zero-worker serial pool.
  void ParallelFor(std::size_t begin, std::size_t end, std::size_t grain,
                   const std::function<void(std::size_t, std::size_t)>& body) {
    Scheduler::GlobalParallelFor(begin, end, grain, body, num_threads_);
  }

 private:
  std::size_t num_threads_;
};

/// Result of `ParallelArgmax`: the winning index and its score, or
/// `kNoArgmax` / -inf when no index was eligible.
struct ArgmaxResult {
  static constexpr std::size_t kNoArgmax = static_cast<std::size_t>(-1);
  std::size_t index = kNoArgmax;
  double score = 0.0;
};

/// \brief Deterministic parallel argmax over [0, n).
///
/// Evaluates `score(i)` for every index with `eligible(i)` across the pool
/// (shards of `grain` indices; each evaluation must depend only on `i`,
/// not on evaluation order), then reduces *serially in index order* with
/// the solver suite's banded comparison: index `i` replaces the incumbent
/// iff `score(i) > best + tol`. This reproduces, for any thread count, the
/// exact scan-loop semantics the serial solvers use (first index wins
/// within the `kScoreEquivalenceTol` band), so parallel and serial runs
/// pick identical winners. `eligible` may be null (all indices eligible).
ArgmaxResult ParallelArgmax(ThreadPool* pool, std::size_t n,
                            std::size_t grain,
                            const std::function<double(std::size_t)>& score,
                            const std::function<bool(std::size_t)>& eligible,
                            double tol);

}  // namespace jury

#endif  // JURYOPT_UTIL_THREAD_POOL_H_
