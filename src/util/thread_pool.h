#ifndef JURYOPT_UTIL_THREAD_POOL_H_
#define JURYOPT_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace jury {

/// Resolves a requested thread count to the number of threads a solver
/// should actually use: `requested` when positive, otherwise the
/// `JURYOPT_THREADS` environment variable when set to a positive integer,
/// otherwise `std::thread::hardware_concurrency()` (at least 1).
std::size_t ResolveThreadCount(std::size_t requested);

/// \brief Fixed-size pool of worker threads running "parallel regions".
///
/// The pool exists so the solver layer can fan independent JQ evaluations
/// (annealing restarts, greedy candidate shards, Gray-code subset
/// partitions, budget-table rows) across cores while staying
/// *bit-deterministic regardless of thread count*: work is always split
/// into shards whose boundaries do not depend on scheduling, every shard
/// writes to its own output slots, and reductions happen serially in shard
/// order after the region completes. Threads only decide *when* a shard
/// runs, never *what* it computes or how results combine.
///
/// A pool of size 1 never spawns threads: every region runs inline on the
/// caller, which is the `num_threads = 1` fallback path. For larger sizes
/// the caller participates in each region alongside `size - 1` workers.
class ThreadPool {
 public:
  /// Creates a pool that runs regions on `num_threads` threads total
  /// (caller + num_threads - 1 workers). Clamped to at least 1.
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return workers_.size() + 1; }

  /// Splits [begin, end) into contiguous shards of at most `grain`
  /// elements and runs `body(shard_begin, shard_end)` once per shard,
  /// claiming shards dynamically across the pool. Returns after every
  /// shard has completed. Shard boundaries depend only on (begin, end,
  /// grain) — never on the thread count — so a body that writes
  /// per-element or per-shard outputs produces identical results on any
  /// pool size. `body` must not throw and must not call back into the
  /// same pool (regions do not nest).
  void ParallelFor(std::size_t begin, std::size_t end, std::size_t grain,
                   const std::function<void(std::size_t, std::size_t)>& body);

 private:
  void WorkerLoop();
  void RunRegion();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  bool shutdown_ = false;
  std::uint64_t generation_ = 0;
  std::size_t busy_workers_ = 0;

  // Current region, valid while busy_workers_ > 0 or the caller runs it.
  const std::function<void(std::size_t, std::size_t)>* body_ = nullptr;
  std::size_t region_begin_ = 0;
  std::size_t region_end_ = 0;
  std::size_t region_grain_ = 1;
  std::atomic<std::size_t> next_shard_{0};
  std::size_t shard_count_ = 0;
};

/// Result of `ParallelArgmax`: the winning index and its score, or
/// `kNoArgmax` / -inf when no index was eligible.
struct ArgmaxResult {
  static constexpr std::size_t kNoArgmax = static_cast<std::size_t>(-1);
  std::size_t index = kNoArgmax;
  double score = 0.0;
};

/// \brief Deterministic parallel argmax over [0, n).
///
/// Evaluates `score(i)` for every index with `eligible(i)` across the pool
/// (shards of `grain` indices; each evaluation must depend only on `i`,
/// not on evaluation order), then reduces *serially in index order* with
/// the solver suite's banded comparison: index `i` replaces the incumbent
/// iff `score(i) > best + tol`. This reproduces, for any thread count, the
/// exact scan-loop semantics the serial solvers use (first index wins
/// within the `kScoreEquivalenceTol` band), so parallel and serial runs
/// pick identical winners. `eligible` may be null (all indices eligible).
ArgmaxResult ParallelArgmax(ThreadPool* pool, std::size_t n,
                            std::size_t grain,
                            const std::function<double(std::size_t)>& score,
                            const std::function<bool(std::size_t)>& eligible,
                            double tol);

}  // namespace jury

#endif  // JURYOPT_UTIL_THREAD_POOL_H_
