#include "util/cancellation.h"

namespace jury {

const char* StopReasonName(StopReason reason) {
  switch (reason) {
    case StopReason::kNone:
      return "";
    case StopReason::kWorkLimit:
      return "work-limit";
    case StopReason::kDeadline:
      return "deadline";
    case StopReason::kCancelled:
      return "cancelled";
  }
  return "";
}

CancelToken::CancelToken(double deadline_ms, const CancelToken* parent)
    : parent_(parent) {
  if (deadline_ms > 0) {
    has_deadline_ = true;
    deadline_ =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double, std::milli>(deadline_ms));
  }
}

bool WorkGovernor::HasDeadlineInChain(const CancelToken* token) {
  for (; token != nullptr; token = token->parent()) {
    if (token->has_deadline()) return true;
  }
  return false;
}

}  // namespace jury
