// AVX-512F variants of the dispatched JQ kernels (see simd_dispatch.h).
// This is the only translation unit built with -mavx512f (CMake gates it
// behind JURYOPT_ENABLE_AVX512 + a compiler check, defining
// JURYOPT_HAVE_AVX512); the table below is reachable only after a runtime
// cpuid + xgetbv check (AVX512F advertised *and* the OS saves the
// opmask/ZMM state).
//
// Bit-identity with the scalar table is a hard contract: every candidate's
// arithmetic runs the same IEEE operations in the same order — the vector
// paths only spread *independent candidates or chains* across the 8 lanes
// (their accumulation chains never mix), and no FMA contraction can occur
// (the kernels use explicit mul/add intrinsics). The canonical 8-chain
// mass accumulation (simd_kernels_inl.h) was designed for this tier: the
// eight scalar chains are exactly the eight lanes of one 512-bit
// accumulator, so where the AVX2 kernels split them across two registers,
// here they collapse into one — same chains, same order, same bits.
// Candidates a vector path does not cover — b == 0 keys, degenerate p in
// {0, 1}, sub-block tails — run the shared scalar bodies from
// simd_kernels_inl.h.

#if defined(JURYOPT_HAVE_AVX512)

#include <immintrin.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/simd_dispatch.h"
#include "util/simd_kernels_inl.h"

namespace jury::simd {
namespace {

constexpr std::size_t kLanes = 8;

void FusedStepAvx512(double a, double b, const double* p, double* acc,
                     std::size_t n) {
  const __m512d va = _mm512_set1_pd(a);
  const __m512d vb = _mm512_set1_pd(b);
  const __m512d ones = _mm512_set1_pd(1.0);
  std::size_t j = 0;
  for (; j + kLanes <= n; j += kLanes) {
    const __m512d pj = _mm512_loadu_pd(p + j);
    // a*(1-p) + b*p with the scalar kernel's exact operation order.
    const __m512d term =
        _mm512_add_pd(_mm512_mul_pd(va, _mm512_sub_pd(ones, pj)),
                      _mm512_mul_pd(vb, pj));
    _mm512_storeu_pd(acc + j,
                     _mm512_add_pd(_mm512_loadu_pd(acc + j), term));
  }
  for (; j < n; ++j) {
    acc[j] += a * (1.0 - p[j]) + b * p[j];
  }
}

// ---------------------------------------------------------------------------
// convolve_mass: per candidate, the canonical 8-chain interleaved mass
// with all eight chains in the eight lanes of one accumulator — two
// contiguous unaligned loads per 8 keys. Batch staging (zero-padded
// scratch, b == 0 / over-cap routing) is the shared driver from
// simd_kernels_inl.h, so only the per-candidate body differs.
// ---------------------------------------------------------------------------

/// Vector body of `ConvolveMassOnePadded`: the canonical eight chains as
/// one 8-lane accumulator, 8 keys per step.
double ConvolveMassOneAvx512(const double* center, std::int64_t s,
                             std::int64_t b, double q) {
  const double omq = 1.0 - q;
  const std::int64_t n = s + b;  // keys 1..n carry mass
  const double* lo = center + 1 - b;
  const double* hi = center + 1 + b;
  const __m512d vq = _mm512_set1_pd(q);
  const __m512d vomq = _mm512_set1_pd(omq);
  __m512d vacc = _mm512_setzero_pd();  // chains 0..7
  std::int64_t k = 0;
  const auto step = [&](std::int64_t at) {
    const __m512d t1 = _mm512_mul_pd(_mm512_loadu_pd(lo + at), vq);
    const __m512d t2 = _mm512_mul_pd(_mm512_loadu_pd(hi + at), vomq);
    vacc = _mm512_add_pd(vacc, _mm512_add_pd(t1, t2));
  };
  // Two canonical 8-key steps per iteration: chain k&7 assignments are
  // unchanged, the unroll only widens the scheduling window.
  for (; k + 16 <= n; k += 16) {
    step(k);
    step(k + 8);
  }
  for (; k + 8 <= n; k += 8) {
    step(k);
  }
  alignas(64) double chains[internal::kMassChains];
  _mm512_store_pd(chains, vacc);
  for (; k < n; ++k) {
    chains[k & 7] += lo[k] * q + hi[k] * omq;
  }
  const double g0 = center[-b] * q + center[b] * omq;
  return 0.5 * g0 + internal::CombineMassChains(chains);
}

void ConvolveMassAvx512(const double* f, std::int64_t span,
                        const std::int64_t* bs, const double* qs,
                        std::size_t count, double* out) {
  internal::ConvolveMassBatch(f, span, bs, qs, count, out,
                              &ConvolveMassOneAvx512);
}

// ---------------------------------------------------------------------------
// deconvolve_mass: the backward recurrence in descending 8-lane blocks —
// legal whenever 2b >= 8 (an entry only depends on the entry 2b above it,
// so a block never reads its own writes); narrower buckets run the shared
// scalar body. Mass sweep: the eight chains as one accumulator.
// ---------------------------------------------------------------------------

/// `internal::CommittedMass` with the eight chains in one 8-lane
/// accumulator; chains combine in the canonical scalar order.
double MassSweepAvx512(const double* row, std::int64_t ns) {
  const double* g1 = row + ns + 1;  // key 1
  __m512d vacc = _mm512_setzero_pd();
  std::int64_t k = 0;
  for (; k + 8 <= ns; k += 8) {
    vacc = _mm512_add_pd(vacc, _mm512_loadu_pd(g1 + k));
  }
  alignas(64) double chains[internal::kMassChains];
  _mm512_store_pd(chains, vacc);
  for (; k < ns; ++k) chains[k & 7] += g1[k];
  return 0.5 * row[static_cast<std::size_t>(ns)] +
         internal::CombineMassChains(chains);
}

/// Vector body of `DeconvolveMassOneRow`: same row geometry (driver-zeroed
/// top-2b pad), descending 8-lane blocks when 2b >= 8.
double DeconvolveMassOneAvx512(const double* f, std::int64_t s,
                               std::int64_t b, double q, double* row) {
  const double omq = 1.0 - q;
  const std::int64_t ns = s - b;
  std::int64_t idx = 2 * ns;
  if (2 * b >= static_cast<std::int64_t>(kLanes)) {
    const __m512d vq = _mm512_set1_pd(q);
    const __m512d vomq = _mm512_set1_pd(omq);
    for (; idx + 1 >= static_cast<std::int64_t>(kLanes); idx -= kLanes) {
      const std::int64_t lo = idx - static_cast<std::int64_t>(kLanes) + 1;
      const __m512d vf = _mm512_loadu_pd(f + lo + 2 * b);
      const __m512d vr = _mm512_loadu_pd(row + lo + 2 * b);
      _mm512_storeu_pd(
          row + lo,
          _mm512_div_pd(_mm512_sub_pd(vf, _mm512_mul_pd(vomq, vr)), vq));
    }
  } else if (2 * b >= 4) {
    // 4-lane blocks still fit between dependences: run them with 256-bit
    // ops (VL subset of the F encoding is not needed — these are plain
    // AVX instructions, legal in this TU).
    const __m256d vq = _mm256_set1_pd(q);
    const __m256d vomq = _mm256_set1_pd(omq);
    for (; idx + 1 >= 4; idx -= 4) {
      const std::int64_t lo = idx - 3;
      const __m256d vf = _mm256_loadu_pd(f + lo + 2 * b);
      const __m256d vr = _mm256_loadu_pd(row + lo + 2 * b);
      _mm256_storeu_pd(
          row + lo,
          _mm256_div_pd(_mm256_sub_pd(vf, _mm256_mul_pd(vomq, vr)), vq));
    }
  }
  for (; idx >= 0; --idx) {
    row[idx] = (f[idx + 2 * b] - omq * row[idx + 2 * b]) / q;
  }
  return MassSweepAvx512(row, ns);
}

void DeconvolveMassAvx512(const double* f, std::int64_t span,
                          const std::int64_t* bs, const double* qs,
                          std::size_t count, double* out) {
  internal::DeconvolveMassBatch(f, span, bs, qs, count, out,
                                &DeconvolveMassOneAvx512);
}

// ---------------------------------------------------------------------------
// remove_query: candidates grouped by deconvolution regime (forward for
// p < 1/2, backward for p >= 1/2), each group in 8-lane blocks. The
// recurrence is vectorized *across candidates* (lane l carries its own
// unclamped recurrence value), with the clamped rows staged in a
// lane-interleaved buffer G[k * 8 + l]; the tail/cdf partial sums then run
// over G in the scalar summation orders (descending / ascending in k), one
// independent chain per lane.
// ---------------------------------------------------------------------------

struct RemoveScratch {
  std::vector<double> g;             // lane-interleaved rows, n * 8
  std::vector<std::size_t> forward;  // candidate slots, 0 < p < 1/2
  std::vector<std::size_t> backward; // candidate slots, 1/2 <= p < 1
};

RemoveScratch& Scratch() {
  static thread_local RemoveScratch scratch;
  return scratch;
}

/// One 8-lane block: `slots` are the candidate indices, `pad` lanes at the
/// end replicate a safe probability and have their outputs discarded.
void RemoveQueryBlockAvx512(const double* f, int n, const double* p,
                            const std::size_t* slots, std::size_t active,
                            bool forward_regime, int tail_k, int cdf_k,
                            double* tails, double* cdfs, double* g) {
  const std::size_t entries = static_cast<std::size_t>(n);
  alignas(64) double lane_p[kLanes];
  const double pad = forward_regime ? 0.25 : 0.75;  // div-safe, discarded
  for (std::size_t l = 0; l < kLanes; ++l) {
    lane_p[l] = l < active ? p[slots[l]] : pad;
  }
  const __m512d vp = _mm512_load_pd(lane_p);
  const __m512d ones = _mm512_set1_pd(1.0);
  const __m512d zeros = _mm512_setzero_pd();
  const __m512d vomp = _mm512_sub_pd(ones, vp);

  if (forward_regime) {
    // carry = (f[k] - p * carry) / (1 - p), stored clamped — RemoveTrial's
    // forward recurrence, lane-parallel.
    __m512d carry = zeros;
    for (std::size_t k = 0; k < entries; ++k) {
      carry = _mm512_div_pd(
          _mm512_sub_pd(_mm512_set1_pd(f[k]), _mm512_mul_pd(vp, carry)),
          vomp);
      _mm512_storeu_pd(
          g + k * kLanes,
          _mm512_min_pd(_mm512_max_pd(carry, zeros), ones));
    }
  } else {
    // carry = (f[k] - (1 - p) * carry) / p, k descending, row k-1 stored.
    __m512d carry = zeros;
    for (std::size_t k = entries; k > 0; --k) {
      carry = _mm512_div_pd(
          _mm512_sub_pd(_mm512_set1_pd(f[k]), _mm512_mul_pd(vomp, carry)),
          vp);
      _mm512_storeu_pd(
          g + (k - 1) * kLanes,
          _mm512_min_pd(_mm512_max_pd(carry, zeros), ones));
    }
  }

  alignas(64) double lane_out[kLanes];
  if (tails != nullptr) {
    if (tail_k <= 0) {
      for (std::size_t l = 0; l < active; ++l) tails[slots[l]] = 1.0;
    } else if (tail_k > n - 1) {
      for (std::size_t l = 0; l < active; ++l) tails[slots[l]] = 0.0;
    } else {
      __m512d acc = zeros;
      for (std::size_t k = entries; k > static_cast<std::size_t>(tail_k);
           --k) {
        acc = _mm512_add_pd(acc, _mm512_loadu_pd(g + (k - 1) * kLanes));
      }
      acc = _mm512_min_pd(acc, ones);
      _mm512_store_pd(lane_out, acc);
      for (std::size_t l = 0; l < active; ++l) tails[slots[l]] = lane_out[l];
    }
  }
  if (cdfs != nullptr) {
    if (cdf_k < 0) {
      for (std::size_t l = 0; l < active; ++l) cdfs[slots[l]] = 0.0;
    } else {
      const std::size_t kk =
          std::min(static_cast<std::size_t>(cdf_k), entries - 1);
      __m512d acc = zeros;
      for (std::size_t k = 0; k <= kk; ++k) {
        acc = _mm512_add_pd(acc, _mm512_loadu_pd(g + k * kLanes));
      }
      acc = _mm512_min_pd(acc, ones);
      _mm512_store_pd(lane_out, acc);
      for (std::size_t l = 0; l < active; ++l) cdfs[slots[l]] = lane_out[l];
    }
  }
}

void RemoveQueryAvx512(const double* pmf, int n, const double* p,
                       std::size_t count, int tail_k, int cdf_k,
                       double* tails, double* cdfs) {
  RemoveScratch& scratch = Scratch();
  scratch.g.resize(static_cast<std::size_t>(n) * kLanes);
  scratch.forward.clear();
  scratch.backward.clear();
  for (std::size_t j = 0; j < count; ++j) {
    const double pj = p[j];
    if (pj == 0.0 || pj == 1.0) {
      // Exact inverses: one shared scalar row (rare in real pools).
      static thread_local std::vector<double> row;
      row.resize(static_cast<std::size_t>(n));
      internal::RemoveTrialRow(pmf, n, pj, row.data());
      if (tails != nullptr) {
        tails[j] = internal::TailFromRow(row.data(),
                                         static_cast<std::size_t>(n), tail_k);
      }
      if (cdfs != nullptr) {
        cdfs[j] = internal::CdfFromRow(row.data(),
                                       static_cast<std::size_t>(n), cdf_k);
      }
    } else if (pj < 0.5) {
      scratch.forward.push_back(j);
    } else {
      scratch.backward.push_back(j);
    }
  }
  for (int regime = 0; regime < 2; ++regime) {
    const bool forward = regime == 0;
    const std::vector<std::size_t>& slots =
        forward ? scratch.forward : scratch.backward;
    for (std::size_t begin = 0; begin < slots.size(); begin += kLanes) {
      const std::size_t active = std::min(kLanes, slots.size() - begin);
      RemoveQueryBlockAvx512(pmf, n, p, slots.data() + begin, active, forward,
                             tail_k, cdf_k, tails, cdfs, scratch.g.data());
    }
  }
}

void HashLanesAvx512(const unsigned char* data, std::size_t num_strides,
                     std::uint64_t* lanes) {
  // All eight checksum lanes in one zmm register; AVX-512 has a native
  // 64-bit rotate (vprolq). Same integer recurrence as the scalar body.
  __m512i acc = _mm512_loadu_si512(lanes);
  for (std::size_t s = 0; s < num_strides; ++s) {
    const __m512i word = _mm512_loadu_si512(data + 64 * s);
    acc = _mm512_xor_si512(_mm512_rol_epi64(acc, 29), word);
  }
  _mm512_storeu_si512(lanes, acc);
}

std::uint64_t AuditPoolColumnsAvx512(const double* quality, const double* cost,
                                     const double* norm_quality,
                                     const double* log_odds, std::size_t n) {
  const __m512d zero = _mm512_set1_pd(0.0);
  const __m512d one = _mm512_set1_pd(1.0);
  const __m512d dmax = _mm512_set1_pd(std::numeric_limits<double>::max());
  const __m512d dmin = _mm512_set1_pd(std::numeric_limits<double>::lowest());
  __mmask8 viol = 0;
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    const __m512d q = _mm512_loadu_pd(quality + i);
    const __m512d c = _mm512_loadu_pd(cost + i);
    const __m512d nq = _mm512_loadu_pd(norm_quality + i);
    const __m512d lo = _mm512_loadu_pd(log_odds + i);
    // ok-masks use ordered compares, so NaN lanes come out not-ok.
    const __mmask8 q_ok = _mm512_cmp_pd_mask(q, zero, _CMP_GE_OQ) &
                          _mm512_cmp_pd_mask(q, one, _CMP_LE_OQ);
    const __mmask8 c_ok = _mm512_cmp_pd_mask(c, zero, _CMP_GE_OQ) &
                          _mm512_cmp_pd_mask(c, dmax, _CMP_LE_OQ);
    const __mmask8 nq_ok = _mm512_cmp_pd_mask(
        nq, _mm512_max_pd(q, _mm512_sub_pd(one, q)), _CMP_EQ_OQ);
    const __mmask8 lo_ok = _mm512_cmp_pd_mask(lo, dmin, _CMP_GE_OQ) &
                           _mm512_cmp_pd_mask(lo, dmax, _CMP_LE_OQ);
    viol |= static_cast<__mmask8>(~(q_ok & c_ok & nq_ok & lo_ok));
  }
  std::uint64_t bad = static_cast<std::uint64_t>(viol != 0);
  bad |= internal::AuditPoolColumnsRange(quality, cost, norm_quality,
                                         log_odds, i, n);
  return bad;
}

std::uint64_t AuditMonotoneU64Avx512(const std::uint64_t* values,
                                     std::size_t n) {
  __mmask8 viol = 0;
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    const __m512i prev = _mm512_loadu_si512(values + i);
    const __m512i next = _mm512_loadu_si512(values + i + 1);
    viol |= _mm512_cmpgt_epu64_mask(prev, next);
  }
  std::uint64_t bad = static_cast<std::uint64_t>(viol != 0);
  bad |= internal::AuditMonotoneU64Range(values, i, n);
  return bad;
}

constexpr KernelTable kAvx512Table{
    "avx512",
    &FusedStepAvx512,
    &ConvolveMassAvx512,
    &RemoveQueryAvx512,
    &DeconvolveMassAvx512,
    &HashLanesAvx512,
    &AuditPoolColumnsAvx512,
    &AuditMonotoneU64Avx512,
};

}  // namespace

const KernelTable& Avx512Table() { return kAvx512Table; }

}  // namespace jury::simd

#endif  // JURYOPT_HAVE_AVX512
