#ifndef JURYOPT_UTIL_TIMER_H_
#define JURYOPT_UTIL_TIMER_H_

#include <chrono>

namespace jury {

/// \brief Monotonic wall-clock stopwatch for the runtime figures
/// (Fig. 7(b) and Fig. 9(d)).
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace jury

#endif  // JURYOPT_UTIL_TIMER_H_
