#ifndef JURYOPT_UTIL_SCRATCH_ARENA_H_
#define JURYOPT_UTIL_SCRATCH_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace jury {

/// \brief A pool of recycled scratch-buffer *capacity*, one level below the
/// plan context's instance arena.
///
/// Evaluation sessions stage their batched move scans in per-session
/// vectors (the MV backend's SoA pmf staging, the bucket backend's
/// candidate staging rows). The vectors are resized and fully rewritten on
/// every scan, so their *contents* never outlive a call — but their
/// *capacity* is re-allocated for every session, i.e. for every request,
/// even when a long-lived `PoolPlanContext` answers a stream of
/// identically-sized solves. The arena closes that gap: sessions `Adopt`
/// an empty vector with warmed capacity at construction and `Donate` the
/// capacity back at destruction, so a serving loop allocates its staging
/// buffers once per concurrency level instead of once per request.
///
/// Adoption never changes observable values — an adopted vector is empty
/// and the session resizes/overwrites it exactly as it would a fresh one —
/// so pooled and unpooled solves are bit-identical by construction.
///
/// Thread-safe: sessions from concurrent solves (and their per-thread
/// clones) share one arena; the lock is held only for the free-list
/// pop/push. Buffers donated by a clone on a scheduler thread are adopted
/// by whatever session constructs next, on any thread.
class ScratchArena {
 public:
  struct Stats {
    /// `Adopt` calls that found pooled capacity to hand out.
    std::uint64_t reuses = 0;
    /// `Adopt` calls that found the pool empty (the session allocates).
    std::uint64_t misses = 0;
    /// Buffers returned by `Donate` and retained for reuse.
    std::uint64_t donations = 0;
    /// Buffers dropped by `Donate` because the pool was at capacity.
    std::uint64_t discards = 0;
    /// Buffers currently retained, across all element types.
    std::size_t retained = 0;
  };

  /// `max_retained` bounds each element type's free list — beyond it,
  /// donated buffers are freed instead of retained, so a concurrency
  /// spike cannot pin its high-water memory forever.
  explicit ScratchArena(std::size_t max_retained = 64)
      : max_retained_(max_retained) {}

  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

  /// Swaps a pooled (empty, capacity-warmed) buffer into `*buffer` when one
  /// is available. `*buffer` must be empty — adoption is for
  /// freshly-constructed members, never for live data.
  void Adopt(std::vector<double>* buffer) { AdoptImpl(&doubles_, buffer); }
  void Adopt(std::vector<std::size_t>* buffer) { AdoptImpl(&sizes_, buffer); }
  void Adopt(std::vector<std::int64_t>* buffer) { AdoptImpl(&ints_, buffer); }

  /// Clears `*buffer` and moves its capacity into the pool (or frees it
  /// when the pool is full). The vector is left empty either way.
  void Donate(std::vector<double>* buffer) { DonateImpl(&doubles_, buffer); }
  void Donate(std::vector<std::size_t>* buffer) { DonateImpl(&sizes_, buffer); }
  void Donate(std::vector<std::int64_t>* buffer) {
    DonateImpl(&ints_, buffer);
  }

  Stats stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    Stats out = stats_;
    out.retained = doubles_.size() + sizes_.size() + ints_.size();
    return out;
  }

 private:
  template <typename T>
  void AdoptImpl(std::vector<std::vector<T>>* pool, std::vector<T>* buffer) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (pool->empty()) {
      ++stats_.misses;
      return;
    }
    *buffer = std::move(pool->back());
    pool->pop_back();
    ++stats_.reuses;
  }

  template <typename T>
  void DonateImpl(std::vector<std::vector<T>>* pool, std::vector<T>* buffer) {
    if (buffer->capacity() == 0) return;
    std::vector<T> donated;
    donated.swap(*buffer);
    donated.clear();
    std::lock_guard<std::mutex> lock(mutex_);
    if (pool->size() >= max_retained_) {
      ++stats_.discards;
      return;  // `donated` frees on scope exit
    }
    pool->push_back(std::move(donated));
    ++stats_.donations;
  }

  const std::size_t max_retained_;
  mutable std::mutex mutex_;
  std::vector<std::vector<double>> doubles_;
  std::vector<std::vector<std::size_t>> sizes_;
  std::vector<std::vector<std::int64_t>> ints_;
  Stats stats_;
};

/// \brief Ambient per-thread arena binding, mirroring
/// `ScopedThreadScanSink`: the solve entry point scopes its context's
/// arena, and every session constructed on this thread during the solve
/// adopts from it (sessions capture the pointer, so their clones on other
/// scheduler threads donate back to the same arena).
class ScopedThreadScratchArena {
 public:
  explicit ScopedThreadScratchArena(ScratchArena* arena);
  ~ScopedThreadScratchArena();

  ScopedThreadScratchArena(const ScopedThreadScratchArena&) = delete;
  ScopedThreadScratchArena& operator=(const ScopedThreadScratchArena&) =
      delete;

 private:
  ScratchArena* previous_;
};

/// The arena scoped onto the calling thread (nullptr outside any scope).
ScratchArena* CurrentThreadScratchArena();

}  // namespace jury

#endif  // JURYOPT_UTIL_SCRATCH_ARENA_H_
