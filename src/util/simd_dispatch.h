#ifndef JURYOPT_UTIL_SIMD_DISPATCH_H_
#define JURYOPT_UTIL_SIMD_DISPATCH_H_

#include <cstddef>
#include <cstdint>

namespace jury::simd {

/// \brief Instruction-set level of the active kernel table.
///
/// The innermost numeric kernels of the JQ engine — the Poisson-binomial
/// batched candidate evaluation, the bucketed-key batched
/// convolve-positive-mass, and the batched remove/swap folds — are lifted
/// behind a function-pointer table selected once at startup:
///
///  * `kScalar` — the portable reference implementation. Every other level
///    is bit-identical to it (no FMA contraction, no reassociation: each
///    candidate's arithmetic runs the same operations in the same order,
///    only across SIMD lanes), so dispatch can never change a solver's
///    answer — the determinism contract the whole solver suite is built
///    on. This is also the only level guaranteed to exist.
///  * `kAvx2` — 4-wide AVX2 variants, compiled only when the toolchain
///    supports `-mavx2` (CMake option `JURYOPT_ENABLE_AVX2`) and selected
///    only when cpuid reports AVX2 at runtime.
///  * `kAvx512` — 8-wide AVX-512F variants, compiled only when the
///    toolchain supports `-mavx512f` (CMake option
///    `JURYOPT_ENABLE_AVX512`) and selected only when cpuid reports
///    AVX512F *and* xgetbv confirms the OS saves the opmask/ZMM register
///    state. The canonical 8-chain mass accumulation order (see
///    simd_kernels_inl.h) was designed for exactly this tier: the eight
///    scalar chains become the eight lanes of one 512-bit accumulator.
///
/// Selection: the `JURYOPT_SIMD` environment variable (`scalar` | `avx2` |
/// `avx512`, case-insensitive) when set — an unavailable request falls
/// back to scalar, an unrecognized token logs one warning and falls back
/// to autodetection — otherwise the best level the CPU supports. The
/// choice is made once, on first use; `SetLevel` rebinds it for tests and
/// benchmarks.
enum class Level : int {
  kScalar = 0,
  kAvx2 = 1,
  kAvx512 = 2,
};

/// \brief The dispatched kernel table. All function pointers are non-null.
///
/// Contracts (each bit-identical to the scalar reference):
///  * `fused_step(a, b, p, acc, n)` —
///      `acc[j] += a * (1.0 - p[j]) + b * p[j]` for `j in [0, n)`.
///    The inner step of `PoissonBinomial::EvaluateBatch`: `a`/`b` are two
///    adjacent committed pmf entries hoisted to scalars, `p` the candidate
///    probabilities, `acc` the per-candidate cumulative accumulators.
///  * `convolve_mass(f, span, bs, qs, count, out)` —
///    for each candidate `(bs[j] >= 0, qs[j])` against the dense key pmf
///    `f` (indexed key + span), `out[j]` = the positive mass
///    `0.5 * g[0] + sum_{key >= 1} g[key]` of
///    `g[key] = f[key - b] * q + f[key + b] * (1 - q)` (out-of-range reads
///    as zero), accumulated in ascending key order — exactly
///    `{copy; copy.Convolve(b, q); copy.PositiveMass()}` on a
///    `BucketKeyDistribution`, term for term. `b == 0` candidates return
///    the committed mass verbatim.
///  * `remove_query(pmf, n, p, count, tail_k, cdf_k, tails, cdfs)` —
///    for each candidate probability `p[j]` (pre-clamped to [0, 1]),
///    queries of the n-1-trial distribution obtained by deconvolving one
///    Bernoulli(p[j]) trial out of the n-trial Poisson-binomial `pmf`
///    (n + 1 entries):
///      `tails[j] = Pr[X' >= tail_k]`, `cdfs[j] = Pr[X' <= cdf_k]`,
///    either output nullable. Bit-identical to `{copy; copy.RemoveTrial(p);
///    copy.TailAtLeast(tail_k); copy.CdfAtMost(cdf_k)}`: the same
///    regime-split recurrences (forward for p < 1/2, backward for
///    p >= 1/2, exact inverses for p in {0, 1}), the same per-entry
///    clamps, and the same cumulative summation orders (descending for
///    tails, ascending for cdfs, final min(., 1)).
///  * `deconvolve_mass(f, span, bs, qs, count, out)` —
///    the remove-side twin of `convolve_mass`: for each candidate
///    `(bs[j], qs[j])` with `0 <= bs[j] <= span` and, for `bs[j] >= 1`,
///    `qs[j] in [0.5, 1]`, `out[j]` = the positive mass of the dense key
///    pmf `f` (2 * span + 1 entries, indexed key + span) with that
///    worker deconvolved out — exactly `{copy; copy.Deconvolve(b, q);
///    copy.PositiveMass()}` on a `BucketKeyDistribution`: the same
///    backward recurrence `g[j] = (f[j+b] - (1-q) g[j+2b]) / q` from the
///    top key down, then the canonical interleaved mass sweep over the
///    shrunk span. `b == 0` candidates return the committed mass
///    verbatim. The vector paths spread the recurrence across descending
///    lane-width blocks — legal because entries 2b apart are the only
///    dependence, so a block never reads its own writes once
///    2b >= lane width; narrower buckets run the shared scalar body.
///  * `hash_lanes(data, num_strides, lanes)` —
///    the pool-snapshot checksum inner loop: for each 64-byte stride `s`
///    of `data` and each lane `l in [0, 8)`,
///      `lanes[l] = rotl64(lanes[l], 29) ^ word(s, l)`
///    where `word(s, l)` is the stride's l-th little-endian u64. Pure
///    integer arithmetic, so every level computes the identical lane
///    values; the vector levels just carry the eight lanes in wide
///    registers instead of a serial chain, which is what lets a checksum
///    verify run at memory bandwidth.
///  * `audit_pool_columns(quality, cost, norm_quality, log_odds, n)` —
///    returns nonzero iff any index violates the pool-snapshot column
///    invariants: `quality in [0, 1]`, `cost in [0, DBL_MAX]`,
///    `norm_quality == max(quality, 1 - quality)`, `log_odds` finite.
///    The comparisons double as NaN checks (NaN fails every ordered
///    compare). Only the zero/nonzero outcome is the contract; all
///    levels agree on it because the predicates are exact IEEE compares.
///  * `audit_monotone_u64(values, n)` —
///    returns nonzero iff `values[i + 1] < values[i]` (unsigned) for any
///    `i in [0, n)`; reads `n + 1` entries.
struct KernelTable {
  const char* name;
  void (*fused_step)(double a, double b, const double* p, double* acc,
                     std::size_t n);
  void (*convolve_mass)(const double* f, std::int64_t span,
                        const std::int64_t* bs, const double* qs,
                        std::size_t count, double* out);
  void (*remove_query)(const double* pmf, int n, const double* p,
                       std::size_t count, int tail_k, int cdf_k,
                       double* tails, double* cdfs);
  void (*deconvolve_mass)(const double* f, std::int64_t span,
                          const std::int64_t* bs, const double* qs,
                          std::size_t count, double* out);
  void (*hash_lanes)(const unsigned char* data, std::size_t num_strides,
                     std::uint64_t* lanes);
  std::uint64_t (*audit_pool_columns)(const double* quality,
                                      const double* cost,
                                      const double* norm_quality,
                                      const double* log_odds, std::size_t n);
  std::uint64_t (*audit_monotone_u64)(const std::uint64_t* values,
                                      std::size_t n);
};

/// The active kernel table (selected on first use; see `Level`).
const KernelTable& Kernels();

/// The level `Kernels()` currently points at.
Level ActiveLevel();

/// True when the AVX2 kernels are compiled in *and* the CPU reports AVX2.
bool Avx2Available();

/// True when the AVX-512 kernels are compiled in *and* the CPU reports
/// AVX512F *and* the OS saves the opmask/ZMM state (xgetbv).
bool Avx512Available();

/// Parses a `JURYOPT_SIMD` token (case-insensitive `scalar` | `avx2` |
/// `avx512`) into a level. Returns false on an unrecognized token, leaving
/// `*out` untouched. Exposed for tests; availability is not checked here.
bool ParseLevel(const char* token, Level* out);

/// Rebinds the active table. Returns false (leaving the scalar table
/// active) when `level` is unavailable on this build/CPU. Not synchronized
/// against in-flight kernel calls — a test/bench hook, to be called from
/// quiesced states only (kernels are bit-identical across levels, so a
/// racing reader still computes correct results; only its attribution
/// would be stale).
bool SetLevel(Level level);

const char* LevelName(Level level);

}  // namespace jury::simd

#endif  // JURYOPT_UTIL_SIMD_DISPATCH_H_
