#ifndef JURYOPT_UTIL_FAULT_INJECTION_H_
#define JURYOPT_UTIL_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

namespace jury {

/// \brief Thrown by an armed `JURY_FAULT_POINT` — stands in for the
/// resource failure that site could really hit (allocation, thread
/// spawn, session clone, kernel flush). The API boundary
/// (`PoolPlanContext::Solve`) catches it and converts it to a retryable
/// `ResourceExhausted` status; nothing below that boundary may swallow
/// it, which is exactly what the sweep in tests/fault_injection_test.cc
/// verifies site by site.
class FaultInjectedError : public std::runtime_error {
 public:
  explicit FaultInjectedError(const std::string& site)
      : std::runtime_error("injected fault at " + site), site_(site) {}
  const std::string& site() const { return site_; }

 private:
  std::string site_;
};

/// One registered fault site. Stable address for the process lifetime;
/// the disarmed hot path is one relaxed `fetch_add` plus one relaxed
/// load (and the whole mechanism compiles out unless
/// `JURYOPT_FAULT_INJECTION` is defined — see the macro below).
class FaultSite {
 public:
  explicit FaultSite(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }

  /// Counts the hit; throws `FaultInjectedError` when armed and this hit
  /// reaches the trigger count. With concurrent hits exactly one thread
  /// observes the trigger value, so an armed site fires at most once.
  void Hit() {
    const std::uint64_t n = hits_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (armed_.load(std::memory_order_relaxed) &&
        n == trigger_.load(std::memory_order_relaxed)) {
      Fire();
    }
  }

 private:
  friend class FaultInjector;
  [[noreturn]] void Fire();

  std::string name_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<bool> armed_{false};
  std::atomic<std::uint64_t> trigger_{0};
};

/// \brief Process-wide fault-site registry and arming switchboard.
///
/// Sites self-register the first time control flows through their
/// `JURY_FAULT_POINT` (a function-local static holds the stable
/// `FaultSite*`), so `Sites()` after a representative warm-up run is the
/// authoritative enumeration the sweep test iterates. `Arm(site, k)`
/// schedules one `FaultInjectedError` on the site's k-th hit *from now*;
/// `Disarm()` clears every site. Arming is test-only and mutex-guarded;
/// the solve hot path never takes the lock.
class FaultInjector {
 public:
  static FaultInjector& Global();

  /// Finds or creates `name`; the returned reference is stable forever.
  FaultSite& RegisterSite(const char* name);

  /// Arms `site`: the `hit`-th hit after this call throws (hit = 1 means
  /// the very next one). Creates the site if it has never been hit, so a
  /// test can arm before the first solve.
  void Arm(const std::string& site, std::uint64_t hit = 1);

  /// Disarms every site (pending triggers are dropped).
  void Disarm();

  /// Names of every site registered so far, sorted.
  std::vector<std::string> Sites() const;

  /// Hits recorded for `site` (0 when unknown).
  std::uint64_t HitCount(const std::string& site) const;

  /// Faults actually thrown over the process lifetime (also exported as
  /// the `fault.injected` stats counter).
  std::uint64_t injected_count() const;

 private:
  FaultInjector() = default;
  FaultSite* FindOrCreate(const std::string& name);

  mutable std::mutex mutex_;
  std::vector<FaultSite*> sites_;  // leaked on purpose: process lifetime
};

}  // namespace jury

/// Marks a spot where a real resource failure could surface. Compiled to
/// nothing unless the build defines `JURYOPT_FAULT_INJECTION` (the
/// `JURYOPT_ENABLE_FAULT_INJECTION` CMake option: default ON except in
/// Release builds). The site name must be a string literal, unique per
/// site, dot-pathed by subsystem ("eval.kernel_flush").
#if defined(JURYOPT_FAULT_INJECTION) && JURYOPT_FAULT_INJECTION
#define JURY_FAULT_POINT(site_name)                                     \
  do {                                                                  \
    static ::jury::FaultSite& jury_fault_site_ =                        \
        ::jury::FaultInjector::Global().RegisterSite(site_name);        \
    jury_fault_site_.Hit();                                             \
  } while (false)
#else
#define JURY_FAULT_POINT(site_name) \
  do {                              \
  } while (false)
#endif

#endif  // JURYOPT_UTIL_FAULT_INJECTION_H_
