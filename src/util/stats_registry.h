#ifndef JURYOPT_UTIL_STATS_REGISTRY_H_
#define JURYOPT_UTIL_STATS_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "util/json.h"

namespace jury {

/// \brief Process-wide registry of named monotonic counters and gauges —
/// the observability spine of the serving surface.
///
/// Subsystems (the scheduler, the objective layer, the fused-scan broker,
/// the plan-context arena, the JSON parser) register their instruments
/// once, at static-initialization time, and bump them with relaxed
/// atomics on the hot path: an `Add` is one `fetch_add`, and reading
/// never takes a lock — `Snapshot` walks the registered instruments with
/// relaxed loads, so a `--stats` export or a live test assertion cannot
/// stall a solve. Registration itself is mutex-guarded (it happens a
/// handful of times per process, before `main` for every instrument the
/// repo ships).
///
/// Counters are cumulative over the process lifetime and only ever grow;
/// gauges are point-in-time reads delegated to a callback (used for
/// subsystems that already maintain their own atomics, like the global
/// scheduler — the gauge reads those instead of double-counting on the
/// hot path). The JSON export is deterministic in *shape*: names are
/// emitted in sorted order with integer values, so two exports differ
/// only in the values, and `scripts/check_stats_schema.py` can pin the
/// schema (names + kinds) against a checked-in manifest.
class StatsRegistry {
 public:
  /// \brief A registered monotonic counter. Stable address for the
  /// process lifetime; `Add` is wait-free.
  class Counter {
   public:
    void Add(std::uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
    void Increment() { Add(1); }
    std::uint64_t value() const {
      return value_.load(std::memory_order_relaxed);
    }

   private:
    friend class StatsRegistry;
    explicit Counter(std::string name) : name_(std::move(name)) {}
    std::string name_;
    std::atomic<std::uint64_t> value_{0};
  };

  /// Point-in-time reader for a gauge; must be callable at any time from
  /// any thread and must never block or allocate a subsystem (e.g. a
  /// scheduler gauge reads 0 until the global scheduler exists, rather
  /// than spawning it).
  using GaugeFn = std::uint64_t (*)();

  /// The process-wide instance. Production code only ever touches this
  /// one; separate instances are constructible so tests can assert on an
  /// isolated registry without perturbing the process-wide schema.
  StatsRegistry() = default;
  static StatsRegistry& Global();

  /// Registers (or finds) the counter named `name`. Re-registration
  /// returns the same counter, so file-scope registrars in different
  /// translation units cannot collide. Names are dot-paths
  /// ("scheduler.tasks_stolen") and must match the checked-in manifest —
  /// CI fails when a counter appears or disappears without updating it.
  Counter& RegisterCounter(const std::string& name);

  /// Registers the gauge named `name`; later registrations replace the
  /// callback (last one wins, used only by tests).
  void RegisterGauge(const std::string& name, GaugeFn fn);

  /// Sorted name -> value snapshot of every instrument (relaxed reads;
  /// exact once the measured subsystems have quiesced).
  std::map<std::string, std::uint64_t> Snapshot() const;

  /// `{"counters":{...},"gauges":{...}}` with sorted names — the document
  /// `jury_cli --stats` prints and the schema gate checks.
  Json ToJsonValue() const;
  std::string ToJson() const;

 private:
  mutable std::mutex mutex_;  // guards the maps, never the values
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, GaugeFn> gauges_;
};

/// Convenience for the common pattern: a file-scope reference initialized
/// once via the global registry.
inline StatsRegistry::Counter& RegisterStatsCounter(const std::string& name) {
  return StatsRegistry::Global().RegisterCounter(name);
}

}  // namespace jury

#endif  // JURYOPT_UTIL_STATS_REGISTRY_H_
