#include "util/scheduler.h"

#include <algorithm>
#include <chrono>

#include "util/env.h"
#include "util/fault_injection.h"
#include "util/stats_registry.h"

namespace jury {
namespace {

/// Innermost task-execution frames of the calling thread, linked so a
/// thread helping several schedulers (a test-local one from inside the
/// global one) classifies nested regions against the right instance.
struct TaskFrame {
  Scheduler* scheduler;
  TaskFrame* prev;
};
thread_local TaskFrame* tls_task_frame = nullptr;

/// Worker identity: which scheduler (if any) owns the calling thread, and
/// the index of its deque.
struct WorkerIdentity {
  Scheduler* scheduler = nullptr;
  std::size_t index = 0;
};
thread_local WorkerIdentity tls_worker;

std::size_t GlobalSchedulerSize() {
  // JURYOPT_THREADS at process start is a *budget*: a user who exports 2
  // wants at most 2 busy threads in the whole process (and 1 means no
  // workers at all), so it sizes the pool exactly.
  const std::int64_t env = GetEnvInt("JURYOPT_THREADS", 0);
  if (env > 0) return static_cast<std::size_t>(env);
  // Otherwise: hardware concurrency with a floor of 8 — tests and
  // benches request multi-threaded dispatch via JURYOPT_THREADS set
  // *after* the scheduler exists, and idle workers cost only a sleeping
  // thread apiece, while an under-sized pool would silently serialize
  // those runs.
  const unsigned hw = std::thread::hardware_concurrency();
  const std::size_t size = hw > 0 ? static_cast<std::size_t>(hw) : 1;
  return std::max<std::size_t>(size, 8);
}

}  // namespace

std::size_t ResolveThreadCount(std::size_t requested) {
  if (requested > 0) return requested;
  const std::int64_t env = GetEnvInt("JURYOPT_THREADS", 0);
  if (env > 0) return static_cast<std::size_t>(env);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<std::size_t>(hw) : 1;
}

// ---------------------------------------------------------------- GrainTuner

std::size_t GrainTuner::Pick(std::size_t count,
                             std::size_t parallelism) const {
  if (count == 0) return min_grain_;
  if (parallelism == 0) parallelism = 1;
  // Upper bound keeps at least `parallelism` shards so no thread idles by
  // construction; the measured feedback can only subdivide further.
  std::size_t upper = count / parallelism;
  if (upper == 0) upper = 1;
  std::size_t grain = upper;  // no feedback yet: one shard per thread
  const std::uint64_t ema = ema_ns_per_item_x1024_.load(
      std::memory_order_relaxed);
  if (ema > 0) {
    const std::uint64_t items = (target_shard_ns_ << 10) / ema;
    grain = items == 0
                ? 1
                : static_cast<std::size_t>(std::min<std::uint64_t>(
                      items, upper));
  }
  if (grain < min_grain_) grain = min_grain_;
  if (grain > count) grain = count;
  return grain;
}

void GrainTuner::Record(std::size_t items, std::uint64_t elapsed_ns) {
  if (items == 0) return;
  std::uint64_t per_item = (elapsed_ns << 10) / items;
  if (per_item == 0) per_item = 1;
  const std::uint64_t old =
      ema_ns_per_item_x1024_.load(std::memory_order_relaxed);
  ema_ns_per_item_x1024_.store(old == 0 ? per_item : (3 * old + per_item) / 4,
                               std::memory_order_relaxed);
}

// ----------------------------------------------------------------- TaskGroup

TaskGroup::TaskGroup(Scheduler* scheduler)
    : scheduler_(scheduler != nullptr ? scheduler : Scheduler::Global()) {}

TaskGroup::~TaskGroup() {
  try {
    Wait();
  } catch (...) {
    // Destructor-path errors are dropped; call Wait() to observe them.
  }
}

void TaskGroup::Run(std::function<void()> fn) {
  // Spawning allocates; the fault hook stands in for that allocation
  // failing. It throws on the *caller's* thread, before the count is
  // bumped, so the group stays consistent and the group's destructor
  // drains any tasks already in flight.
  JURY_FAULT_POINT("scheduler.task_spawn");
  Scheduler::Task* task = new Scheduler::Task;
  task->fn = std::move(fn);
  task->group = this;
  pending_.fetch_add(1, std::memory_order_acq_rel);
  scheduler_->Submit(task);
}

void TaskGroup::Wait() {
  while (pending_.load(std::memory_order_acquire) != 0) {
    if (Scheduler::Task* task = scheduler_->TryAcquire()) {
      scheduler_->RunTask(task);
      continue;
    }
    // Nothing runnable anywhere: every remaining task of this group is in
    // flight on another thread. Block until the group advances; the
    // timeout re-arms the scan so a task queued between the failed
    // acquire and the wait cannot strand us.
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait_for(lock, std::chrono::microseconds(200), [&] {
      return pending_.load(std::memory_order_acquire) == 0;
    });
  }
  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    std::swap(error, error_);
  }
  if (error) std::rethrow_exception(error);
}

void TaskGroup::OnTaskFinished(std::exception_ptr error) {
  // The whole completion runs under the mutex: the waiter in `Wait()` may
  // observe pending == 0 the instant it is stored and destroy the group —
  // but its final error-swap locks this same mutex, so it cannot finish
  // until this critical section (the group's last touch) has released.
  std::lock_guard<std::mutex> lock(mutex_);
  if (error && !error_) error_ = error;
  if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    cv_.notify_all();
  }
}

// --------------------------------------------------------- Scheduler::Deque

Scheduler::Deque::Ring::Ring(std::size_t cap)
    : capacity(cap), slots(new std::atomic<Task*>[cap]) {
  for (std::size_t i = 0; i < cap; ++i) {
    slots[i].store(nullptr, std::memory_order_relaxed);
  }
}

Scheduler::Deque::Deque() {
  auto ring = std::make_unique<Ring>(256);
  ring_.store(ring.get(), std::memory_order_relaxed);
  retired_.push_back(std::move(ring));
}

Scheduler::Deque::~Deque() = default;

Scheduler::Deque::Ring* Scheduler::Deque::Grow(Ring* ring,
                                               std::int64_t bottom,
                                               std::int64_t top) {
  auto bigger = std::make_unique<Ring>(ring->capacity * 2);
  for (std::int64_t i = top; i < bottom; ++i) {
    bigger->Slot(i).store(ring->Slot(i).load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
  }
  Ring* raw = bigger.get();
  {
    std::lock_guard<std::mutex> lock(retired_mutex_);
    retired_.push_back(std::move(bigger));
  }
  // The old ring stays alive (and keeps its values): a concurrent thief
  // holding the stale pointer still reads the task it will CAS for.
  ring_.store(raw, std::memory_order_release);
  return raw;
}

void Scheduler::Deque::Push(Task* task) {
  const std::int64_t b = bottom_.load(std::memory_order_relaxed);
  const std::int64_t t = top_.load(std::memory_order_acquire);
  Ring* ring = ring_.load(std::memory_order_relaxed);
  if (b - t >= static_cast<std::int64_t>(ring->capacity)) {
    ring = Grow(ring, b, t);
  }
  ring->Slot(b).store(task, std::memory_order_release);
  bottom_.store(b + 1, std::memory_order_seq_cst);
}

Scheduler::Task* Scheduler::Deque::Pop() {
  const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
  Ring* ring = ring_.load(std::memory_order_relaxed);
  bottom_.store(b, std::memory_order_seq_cst);
  std::int64_t t = top_.load(std::memory_order_seq_cst);
  if (t <= b) {
    Task* task = ring->Slot(b).load(std::memory_order_relaxed);
    if (t == b) {
      // Last element: race the thieves for it via top.
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        task = nullptr;
      }
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return task;
  }
  bottom_.store(b + 1, std::memory_order_relaxed);
  return nullptr;
}

Scheduler::Task* Scheduler::Deque::Steal() {
  std::int64_t t = top_.load(std::memory_order_seq_cst);
  const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
  if (t >= b) return nullptr;
  Ring* ring = ring_.load(std::memory_order_acquire);
  Task* task = ring->Slot(t).load(std::memory_order_acquire);
  if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                    std::memory_order_relaxed)) {
    return nullptr;  // lost to the owner's Pop or another thief
  }
  return task;
}

// ------------------------------------------------------------------ Scheduler

namespace {
// Published by Global() once its pool exists; read by the stats gauges,
// which must report zeros — not spawn worker threads — before then.
std::atomic<Scheduler*> g_global_scheduler{nullptr};
}  // namespace

Scheduler* Scheduler::Global() {
  static Scheduler global(GlobalSchedulerSize());
  g_global_scheduler.store(&global, std::memory_order_release);
  return &global;
}

SchedulerCounters GlobalSchedulerCountersIfStarted() {
  const Scheduler* global = g_global_scheduler.load(std::memory_order_acquire);
  if (global == nullptr) return SchedulerCounters{};
  return global->counters();
}

namespace {
// Gauges, not counters: the scheduler already keeps its own relaxed
// atomics, so the registry reads them on demand instead of double
// counting on the steal/inject hot paths.
const bool g_scheduler_gauges_registered = [] {
  StatsRegistry& registry = StatsRegistry::Global();
  registry.RegisterGauge("scheduler.tasks_spawned", [] {
    return GlobalSchedulerCountersIfStarted().tasks_spawned;
  });
  registry.RegisterGauge("scheduler.tasks_stolen", [] {
    return GlobalSchedulerCountersIfStarted().tasks_stolen;
  });
  registry.RegisterGauge("scheduler.tasks_injected", [] {
    return GlobalSchedulerCountersIfStarted().tasks_injected;
  });
  registry.RegisterGauge("scheduler.regions", [] {
    return GlobalSchedulerCountersIfStarted().regions;
  });
  registry.RegisterGauge("scheduler.nested_regions", [] {
    return GlobalSchedulerCountersIfStarted().nested_regions;
  });
  registry.RegisterGauge("scheduler.inline_regions", [] {
    return GlobalSchedulerCountersIfStarted().inline_regions;
  });
  return true;
}();
}  // namespace

Scheduler::Scheduler(std::size_t num_threads) {
  const std::size_t n = num_threads > 0 ? num_threads : 1;
  deques_.reserve(n - 1);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    deques_.push_back(std::make_unique<Deque>());
  }
  workers_.reserve(n - 1);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

Scheduler::~Scheduler() {
  {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    shutdown_ = true;
  }
  sleep_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  // Tasks spawned during the drain (by other draining tasks) land on the
  // injection queue once the workers are gone; finish them inline so a
  // shutdown-while-busy destruction never strands a TaskGroup.
  while (Task* task = TryAcquire()) RunTask(task);
}

bool Scheduler::InTask() const {
  for (const TaskFrame* frame = tls_task_frame; frame != nullptr;
       frame = frame->prev) {
    if (frame->scheduler == this) return true;
  }
  return false;
}

void Scheduler::Submit(Task* task) {
  tasks_spawned_.fetch_add(1, std::memory_order_relaxed);
  if (tls_worker.scheduler == this) {
    deques_[tls_worker.index]->Push(task);
  } else {
    std::lock_guard<std::mutex> lock(inject_mutex_);
    inject_queue_.push_back(task);
  }
  available_.fetch_add(1, std::memory_order_release);
  {
    // Pairs with the sleep predicate so a worker cannot slip between its
    // availability check and its wait.
    std::lock_guard<std::mutex> lock(sleep_mutex_);
  }
  sleep_cv_.notify_one();
}

Scheduler::Task* Scheduler::TryAcquire() {
  constexpr std::size_t kExternal = static_cast<std::size_t>(-1);
  std::size_t self = kExternal;
  if (tls_worker.scheduler == this) {
    self = tls_worker.index;
    if (Task* task = deques_[self]->Pop()) {
      available_.fetch_sub(1, std::memory_order_relaxed);
      return task;
    }
  }
  {
    std::lock_guard<std::mutex> lock(inject_mutex_);
    if (!inject_queue_.empty()) {
      Task* task = inject_queue_.front();
      inject_queue_.pop_front();
      available_.fetch_sub(1, std::memory_order_relaxed);
      tasks_injected_.fetch_add(1, std::memory_order_relaxed);
      return task;
    }
  }
  const std::size_t n = deques_.size();
  const std::size_t start = self == kExternal ? 0 : self + 1;
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t victim = (start + k) % n;
    if (victim == self) continue;
    if (Task* task = deques_[victim]->Steal()) {
      available_.fetch_sub(1, std::memory_order_relaxed);
      tasks_stolen_.fetch_add(1, std::memory_order_relaxed);
      return task;
    }
  }
  return nullptr;
}

void Scheduler::RunTask(Task* task) {
  TaskFrame frame{this, tls_task_frame};
  tls_task_frame = &frame;
  std::exception_ptr error;
  try {
    task->fn();
  } catch (...) {
    error = std::current_exception();
  }
  tls_task_frame = frame.prev;
  TaskGroup* group = task->group;
  delete task;
  // Last: once the group observes the decrement it may be destroyed.
  group->OnTaskFinished(error);
}

void Scheduler::WorkerLoop(std::size_t index) {
  tls_worker.scheduler = this;
  tls_worker.index = index;
  for (;;) {
    if (Task* task = TryAcquire()) {
      RunTask(task);
      continue;
    }
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    if (available_.load(std::memory_order_acquire) > 0) continue;
    if (shutdown_) return;
    sleep_cv_.wait(lock, [&] {
      return shutdown_ || available_.load(std::memory_order_acquire) > 0;
    });
    if (shutdown_ && available_.load(std::memory_order_acquire) == 0) return;
  }
}

void Scheduler::ParallelFor(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t max_parallelism) {
  if (begin >= end) return;
  if (grain == 0) grain = 1;
  const std::size_t count = end - begin;
  const std::size_t shards = (count + grain - 1) / grain;
  std::size_t parallelism = num_threads();
  if (max_parallelism > 0) parallelism = std::min(parallelism, max_parallelism);
  parallelism = std::min(parallelism, shards);
  if (parallelism <= 1) {
    // Inline fallback: identical shard boundaries, caller runs them all.
    inline_regions_.fetch_add(1, std::memory_order_relaxed);
    for (std::size_t shard = 0; shard < shards; ++shard) {
      const std::size_t shard_begin = begin + shard * grain;
      body(shard_begin, std::min(end, shard_begin + grain));
    }
    return;
  }

  regions_.fetch_add(1, std::memory_order_relaxed);
  if (InTask()) nested_regions_.fetch_add(1, std::memory_order_relaxed);

  // The region is claim-based: `parallelism` participants (the caller plus
  // parallelism - 1 stealable tasks) pull shard indices from one atomic
  // counter. Shard boundaries stay a pure function of (begin, end, grain);
  // the counter only decides *when* a shard runs and on which thread.
  struct Region {
    std::atomic<std::size_t> next{0};
    std::atomic<bool> cancelled{false};
  } region;
  const auto run_shards = [&] {
    for (;;) {
      if (region.cancelled.load(std::memory_order_relaxed)) return;
      const std::size_t shard =
          region.next.fetch_add(1, std::memory_order_relaxed);
      if (shard >= shards) return;
      const std::size_t shard_begin = begin + shard * grain;
      try {
        body(shard_begin, std::min(end, shard_begin + grain));
      } catch (...) {
        region.cancelled.store(true, std::memory_order_relaxed);
        throw;
      }
    }
  };

  TaskGroup group(this);
  for (std::size_t i = 0; i + 1 < parallelism; ++i) group.Run(run_shards);
  std::exception_ptr caller_error;
  try {
    run_shards();
  } catch (...) {
    caller_error = std::current_exception();
  }
  group.Wait();  // rethrows the first task exception
  if (caller_error) std::rethrow_exception(caller_error);
}

void Scheduler::GlobalParallelFor(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t max_parallelism) {
  if (max_parallelism == 1) {
    // Same shard boundaries as the scheduler's inline path, run without
    // ever instantiating Global().
    if (begin >= end) return;
    if (grain == 0) grain = 1;
    const std::size_t shards = (end - begin + grain - 1) / grain;
    for (std::size_t shard = 0; shard < shards; ++shard) {
      const std::size_t shard_begin = begin + shard * grain;
      body(shard_begin, std::min(end, shard_begin + grain));
    }
    return;
  }
  Global()->ParallelFor(begin, end, grain, body, max_parallelism);
}

void Scheduler::ParallelForTuned(
    GrainTuner* tuner, std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t max_parallelism) {
  if (begin >= end) return;
  const std::size_t count = end - begin;
  std::size_t parallelism = num_threads();
  if (max_parallelism > 0) parallelism = std::min(parallelism, max_parallelism);
  const std::size_t grain = tuner->Pick(count, parallelism);
  const auto timed = [&](std::size_t shard_begin, std::size_t shard_end) {
    const auto start = std::chrono::steady_clock::now();
    body(shard_begin, shard_end);
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start)
                        .count();
    tuner->Record(shard_end - shard_begin,
                  ns > 0 ? static_cast<std::uint64_t>(ns) : 0);
  };
  ParallelFor(begin, end, grain, timed, max_parallelism);
}

SchedulerCounters Scheduler::counters() const {
  SchedulerCounters snapshot;
  snapshot.tasks_spawned = tasks_spawned_.load(std::memory_order_relaxed);
  snapshot.tasks_stolen = tasks_stolen_.load(std::memory_order_relaxed);
  snapshot.tasks_injected = tasks_injected_.load(std::memory_order_relaxed);
  snapshot.regions = regions_.load(std::memory_order_relaxed);
  snapshot.nested_regions = nested_regions_.load(std::memory_order_relaxed);
  snapshot.inline_regions = inline_regions_.load(std::memory_order_relaxed);
  return snapshot;
}

void Scheduler::ResetCounters() {
  tasks_spawned_.store(0, std::memory_order_relaxed);
  tasks_stolen_.store(0, std::memory_order_relaxed);
  tasks_injected_.store(0, std::memory_order_relaxed);
  regions_.store(0, std::memory_order_relaxed);
  nested_regions_.store(0, std::memory_order_relaxed);
  inline_regions_.store(0, std::memory_order_relaxed);
}

}  // namespace jury
