#include "util/stats_registry.h"

#include <memory>
#include <mutex>
#include <utility>

namespace jury {

StatsRegistry& StatsRegistry::Global() {
  // Leaked intentionally: counters registered from static initializers in
  // other translation units may be bumped by detached scheduler workers
  // during process teardown; a function-local static object could be
  // destroyed first.
  static StatsRegistry* registry = new StatsRegistry();
  return *registry;
}

StatsRegistry::Counter& StatsRegistry::RegisterCounter(
    const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, std::unique_ptr<Counter>(new Counter(name)))
             .first;
  }
  return *it->second;
}

void StatsRegistry::RegisterGauge(const std::string& name, GaugeFn fn) {
  std::lock_guard<std::mutex> lock(mutex_);
  gauges_[name] = fn;
}

std::map<std::string, std::uint64_t> StatsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, std::uint64_t> snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot[name] = counter->value();
  }
  for (const auto& [name, fn] : gauges_) {
    snapshot[name] = fn();
  }
  return snapshot;
}

Json StatsRegistry::ToJsonValue() const {
  Json counters = Json::Object();
  Json gauges = Json::Object();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [name, counter] : counters_) {
      counters.Set(name, counter->value());
    }
    for (const auto& [name, fn] : gauges_) {
      gauges.Set(name, fn());
    }
  }
  return Json::Object()
      .Set("counters", std::move(counters))
      .Set("gauges", std::move(gauges));
}

std::string StatsRegistry::ToJson() const { return ToJsonValue().Dump(); }

}  // namespace jury
