#ifndef JURYOPT_UTIL_STATUS_H_
#define JURYOPT_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace jury {

/// \brief Machine-readable error category carried by a `Status`.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kNotFound = 3,
  kAlreadyExists = 4,
  kResourceExhausted = 5,
  kFailedPrecondition = 6,
  kNotImplemented = 7,
  kInternal = 8,
};

/// \brief Returns a stable human-readable name for `code` (e.g. "OK").
const char* StatusCodeToString(StatusCode code);

/// \brief Lightweight success-or-error value used throughout juryopt.
///
/// The library never throws for anticipated failures (bad arguments, budget
/// infeasibility, size guards); such conditions are reported through `Status`
/// or `Result<T>`, in the style of Arrow and RocksDB. Programming errors are
/// caught by the `JURY_CHECK` macros instead.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "CODE: message" (or "OK").
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Propagates a non-OK status to the caller.
#define JURY_RETURN_NOT_OK(expr)            \
  do {                                      \
    ::jury::Status _st = (expr);            \
    if (!_st.ok()) return _st;              \
  } while (false)

}  // namespace jury

#endif  // JURYOPT_UTIL_STATUS_H_
