#ifndef JURYOPT_UTIL_JSON_H_
#define JURYOPT_UTIL_JSON_H_

#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

namespace jury {

/// \brief Minimal JSON document builder with *deterministic* output.
///
/// The serving and bench layers log machine-readable artifacts —
/// `JspSolution::ToJson`, `api::SolveReport::ToJson`, the
/// `BENCH_scaling.json` harness — and those artifacts are diffed, gated,
/// and committed as baselines, so byte-stable serialization matters more
/// than features. `Dump()` therefore emits object keys in sorted order
/// (objects are backed by `std::map`), doubles in shortest round-trip
/// form (`std::to_chars`), and no insignificant whitespace: the same
/// document always serializes to the same bytes, on every host.
///
/// This is a writer, not a parser; consumers that need to read the
/// artifacts back (CI gates) use Python's `json` module.
class Json {
 public:
  /// null
  Json() : repr_(std::monostate{}) {}
  Json(bool value) : repr_(value) {}                   // NOLINT
  Json(double value) : repr_(value) {}                 // NOLINT
  Json(std::int64_t value) : repr_(value) {}           // NOLINT
  Json(std::uint64_t value) : repr_(value) {}          // NOLINT
  Json(int value) : repr_(std::int64_t{value}) {}      // NOLINT
  Json(std::string value) : repr_(std::move(value)) {} // NOLINT
  Json(const char* value) : repr_(std::string(value)) {}  // NOLINT

  static Json Object() {
    Json j;
    j.repr_ = ObjectRepr{};
    return j;
  }
  static Json Array() {
    Json j;
    j.repr_ = ArrayRepr{};
    return j;
  }

  /// Sets `key` on an object (the value is replaced if present). The
  /// document must have been created by `Object()`.
  Json& Set(const std::string& key, Json value);
  /// Appends to an array created by `Array()`.
  Json& Append(Json value);

  bool is_object() const { return std::holds_alternative<ObjectRepr>(repr_); }
  bool is_array() const { return std::holds_alternative<ArrayRepr>(repr_); }

  /// Compact serialization: sorted object keys, shortest round-trip
  /// doubles, `null` for non-finite numbers (JSON has no NaN/Inf).
  std::string Dump() const;

  /// Escapes `text` per RFC 8259 and wraps it in quotes.
  static std::string Quote(const std::string& text);

 private:
  using ObjectRepr = std::map<std::string, Json>;
  using ArrayRepr = std::vector<Json>;
  std::variant<std::monostate, bool, double, std::int64_t, std::uint64_t,
               std::string, ObjectRepr, ArrayRepr>
      repr_;

  void DumpTo(std::string* out) const;
};

}  // namespace jury

#endif  // JURYOPT_UTIL_JSON_H_
