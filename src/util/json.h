#ifndef JURYOPT_UTIL_JSON_H_
#define JURYOPT_UTIL_JSON_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "util/result.h"

namespace jury {

/// \brief Limits `Json::Parse` enforces against hostile input. Every
/// violation is a `Status`, never an abort or a silent truncation — the
/// parser fronts the fuzzed `SolveRequest` surface, so its failure mode
/// is part of the public API contract.
struct JsonParseOptions {
  /// Maximum container nesting (objects + arrays). A recursive-descent
  /// parser burns stack per level, so unbounded depth is a remote
  /// stack-overflow; 64 comfortably covers every document the repo
  /// produces while keeping worst-case stack use trivial.
  std::size_t max_depth = 64;
};

/// \brief Minimal JSON document builder with *deterministic* output.
///
/// The serving and bench layers log machine-readable artifacts —
/// `JspSolution::ToJson`, `api::SolveReport::ToJson`, the
/// `BENCH_scaling.json` harness — and those artifacts are diffed, gated,
/// and committed as baselines, so byte-stable serialization matters more
/// than features. `Dump()` therefore emits object keys in sorted order
/// (objects are backed by `std::map`), doubles in shortest round-trip
/// form (`std::to_chars`), and no insignificant whitespace: the same
/// document always serializes to the same bytes, on every host.
///
/// `Parse` is the matching reader, added for the robustness layer: the
/// golden-trace replayer and the `SolveRequest` JSON surface must read
/// documents back, and hostile input must surface as a `Status` (depth
/// limits, overflow-safe numbers, strict UTF-8), never as a crash.
class Json {
 public:
  /// null
  Json() : repr_(std::monostate{}) {}
  Json(bool value) : repr_(value) {}                   // NOLINT
  Json(double value) : repr_(value) {}                 // NOLINT
  Json(std::int64_t value) : repr_(value) {}           // NOLINT
  Json(std::uint64_t value) : repr_(value) {}          // NOLINT
  Json(int value) : repr_(std::int64_t{value}) {}      // NOLINT
  Json(std::string value) : repr_(std::move(value)) {} // NOLINT
  Json(const char* value) : repr_(std::string(value)) {}  // NOLINT

  static Json Object() {
    Json j;
    j.repr_ = ObjectRepr{};
    return j;
  }
  static Json Array() {
    Json j;
    j.repr_ = ArrayRepr{};
    return j;
  }

  /// Sets `key` on an object (the value is replaced if present). The
  /// document must have been created by `Object()`.
  Json& Set(const std::string& key, Json value);
  /// Appends to an array created by `Array()`.
  Json& Append(Json value);

  bool is_object() const { return std::holds_alternative<ObjectRepr>(repr_); }
  bool is_array() const { return std::holds_alternative<ArrayRepr>(repr_); }
  bool is_null() const { return std::holds_alternative<std::monostate>(repr_); }
  bool is_bool() const { return std::holds_alternative<bool>(repr_); }
  bool is_string() const { return std::holds_alternative<std::string>(repr_); }
  /// True for any numeric representation (double, int64, uint64).
  bool is_number() const {
    return std::holds_alternative<double>(repr_) ||
           std::holds_alternative<std::int64_t>(repr_) ||
           std::holds_alternative<std::uint64_t>(repr_);
  }

  // -- Readers. All of them are total: a type mismatch is a `Status` (or a
  // -- nullptr for the structural lookups), never a CHECK abort, because
  // -- these run on parsed — possibly adversarial — documents.

  /// Member `key` of an object document; nullptr when this is not an
  /// object or the key is absent.
  const Json* Find(const std::string& key) const;
  /// The underlying object map (sorted); nullptr when not an object.
  const std::map<std::string, Json>* GetObject() const;
  /// The underlying array; nullptr when not an array.
  const std::vector<Json>* GetArray() const;

  Result<bool> GetBool() const;
  /// Any numeric representation, widened to double.
  Result<double> GetDouble() const;
  /// Integer representations only (never a silent double truncation);
  /// negative values are rejected.
  Result<std::uint64_t> GetUint64() const;
  Result<std::string> GetString() const;

  /// Compact serialization: sorted object keys, shortest round-trip
  /// doubles, `null` for non-finite numbers (JSON has no NaN/Inf).
  std::string Dump() const;

  /// \brief Strict RFC 8259 parser, hardened for hostile input:
  ///
  ///  * container nesting beyond `options.max_depth` is rejected (no
  ///    unbounded recursion / remote stack overflow);
  ///  * numbers are grammar-checked and range-checked — an overflowing
  ///    integer or an out-of-range double is an error, never a silently
  ///    truncated or saturated value;
  ///  * strings must be valid UTF-8 (overlongs, lone surrogates, and
  ///    truncated sequences rejected), escapes are fully decoded
  ///    (including surrogate pairs), and an unterminated string or a raw
  ///    control character is a clear error naming the byte offset;
  ///  * trailing non-whitespace after the document is an error.
  ///
  /// Every failure is an InvalidArgument `Status` with the byte offset;
  /// no input can abort the process (fuzzed, and replayed as a corpus
  /// gtest under ASAN/UBSAN).
  static Result<Json> Parse(std::string_view text,
                            const JsonParseOptions& options = {});

  /// Escapes `text` per RFC 8259 and wraps it in quotes.
  static std::string Quote(const std::string& text);

 private:
  using ObjectRepr = std::map<std::string, Json>;
  using ArrayRepr = std::vector<Json>;
  std::variant<std::monostate, bool, double, std::int64_t, std::uint64_t,
               std::string, ObjectRepr, ArrayRepr>
      repr_;

  void DumpTo(std::string* out) const;
};

}  // namespace jury

#endif  // JURYOPT_UTIL_JSON_H_
