#include "util/rng.h"

#include <cmath>
#include <numbers>

#include "util/check.h"

namespace jury {
namespace {

std::uint64_t SplitMix64(std::uint64_t* state) {
  std::uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
  // xoshiro must not be seeded with all zeros.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high-quality bits -> [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  JURY_CHECK_LE(lo, hi);
  return lo + (hi - lo) * Uniform();
}

std::uint64_t Rng::UniformInt(std::uint64_t n) {
  JURY_CHECK_GT(n, 0ull);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (~0ull - n + 1) % n;
  for (;;) {
    const std::uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return Uniform() < p;
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = Uniform();
  } while (u1 <= 0.0);
  const double u2 = Uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

double Rng::TruncatedGaussian(double mean, double stddev, double lo,
                              double hi) {
  JURY_CHECK_LE(lo, hi);
  if (stddev <= 0.0) return std::min(std::max(mean, lo), hi);
  // Rejection sampling; falls back to clamping when acceptance is too rare
  // (e.g. the interval lies far in the tail).
  for (int attempt = 0; attempt < 64; ++attempt) {
    const double x = Gaussian(mean, stddev);
    if (x >= lo && x <= hi) return x;
  }
  return std::min(std::max(Gaussian(mean, stddev), lo), hi);
}

double Rng::Gamma(double shape) {
  JURY_CHECK_GT(shape, 0.0);
  if (shape < 1.0) {
    // Boost to shape+1 and scale back (Marsaglia–Tsang trick).
    const double u = std::max(Uniform(), 1e-300);
    return Gamma(shape + 1.0) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = 0.0;
    double v = 0.0;
    do {
      x = Gaussian();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = Uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v;
    }
  }
}

double Rng::Beta(double a, double b) {
  const double x = Gamma(a);
  const double y = Gamma(b);
  const double sum = x + y;
  if (sum <= 0.0) return 0.5;
  return x / sum;
}

std::vector<std::size_t> Rng::SampleWithoutReplacement(std::size_t n,
                                                       std::size_t k) {
  JURY_CHECK_LE(k, n);
  std::vector<std::size_t> pool(n);
  for (std::size_t i = 0; i < n; ++i) pool[i] = i;
  // Partial Fisher–Yates: the first k slots end up a uniform k-subset.
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(UniformInt(n - i));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace jury
