// AVX2 variants of the dispatched JQ kernels (see simd_dispatch.h). This
// is the only translation unit built with -mavx2 (CMake gates it behind
// JURYOPT_ENABLE_AVX2 + a compiler check, defining JURYOPT_HAVE_AVX2);
// the table below is reachable only after a runtime cpuid check.
//
// Bit-identity with the scalar table is a hard contract: every candidate's
// arithmetic runs the same IEEE operations in the same order — the vector
// paths only spread *independent candidates* across the 4 lanes (their
// accumulation chains never mix), and no FMA contraction can occur
// (-mavx2 does not enable FMA, and the kernels use explicit mul/add
// intrinsics). Candidates a vector path does not cover — b == 0 keys,
// degenerate p in {0, 1}, sub-block tails — run the shared scalar bodies
// from simd_kernels_inl.h.

#if defined(JURYOPT_HAVE_AVX2)

#include <immintrin.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/simd_dispatch.h"
#include "util/simd_kernels_inl.h"

namespace jury::simd {
namespace {

constexpr std::size_t kLanes = 4;

void FusedStepAvx2(double a, double b, const double* p, double* acc,
                   std::size_t n) {
  const __m256d va = _mm256_set1_pd(a);
  const __m256d vb = _mm256_set1_pd(b);
  const __m256d ones = _mm256_set1_pd(1.0);
  std::size_t j = 0;
  for (; j + kLanes <= n; j += kLanes) {
    const __m256d pj = _mm256_loadu_pd(p + j);
    // a*(1-p) + b*p with the scalar kernel's exact operation order.
    const __m256d term =
        _mm256_add_pd(_mm256_mul_pd(va, _mm256_sub_pd(ones, pj)),
                      _mm256_mul_pd(vb, pj));
    _mm256_storeu_pd(acc + j,
                     _mm256_add_pd(_mm256_loadu_pd(acc + j), term));
  }
  for (; j < n; ++j) {
    acc[j] += a * (1.0 - p[j]) + b * p[j];
  }
}

// ---------------------------------------------------------------------------
// convolve_mass: per candidate, the canonical 4-chain interleaved mass
// (see simd_kernels_inl.h) with the four chains in the four vector lanes —
// two contiguous unaligned loads per 4 keys, no gathers. The batch stages
// f once into a zero-padded scratch buffer so the per-key bounds checks
// vanish (out-of-range keys read an exact 0.0, which is what the generic
// body's checks return), and the loop tail runs the shared scalar chain
// code — so every candidate reproduces the scalar kernel bit for bit.
// ---------------------------------------------------------------------------

/// Vector body of `ConvolveMassOnePadded`: the canonical eight chains as
/// two 4-lane accumulators, 8 keys per step.
double ConvolveMassOneAvx2(const double* center, std::int64_t s,
                           std::int64_t b, double q) {
  const double omq = 1.0 - q;
  const std::int64_t n = s + b;  // keys 1..n carry mass
  const double* lo = center + 1 - b;
  const double* hi = center + 1 + b;
  const __m256d vq = _mm256_set1_pd(q);
  const __m256d vomq = _mm256_set1_pd(omq);
  __m256d vacc_a = _mm256_setzero_pd();  // chains 0..3
  __m256d vacc_b = _mm256_setzero_pd();  // chains 4..7
  std::int64_t k = 0;
  const auto step = [&](std::int64_t at) {
    const __m256d t1a = _mm256_mul_pd(_mm256_loadu_pd(lo + at), vq);
    const __m256d t2a = _mm256_mul_pd(_mm256_loadu_pd(hi + at), vomq);
    vacc_a = _mm256_add_pd(vacc_a, _mm256_add_pd(t1a, t2a));
    const __m256d t1b = _mm256_mul_pd(_mm256_loadu_pd(lo + at + 4), vq);
    const __m256d t2b = _mm256_mul_pd(_mm256_loadu_pd(hi + at + 4), vomq);
    vacc_b = _mm256_add_pd(vacc_b, _mm256_add_pd(t1b, t2b));
  };
  // Two canonical 8-key steps per iteration: chain k&7 assignments are
  // unchanged, the unroll only widens the scheduling window.
  for (; k + 16 <= n; k += 16) {
    step(k);
    step(k + 8);
  }
  for (; k + 8 <= n; k += 8) {
    step(k);
  }
  alignas(32) double chains[internal::kMassChains];
  _mm256_store_pd(chains, vacc_a);
  _mm256_store_pd(chains + 4, vacc_b);
  for (; k < n; ++k) {
    chains[k & 7] += lo[k] * q + hi[k] * omq;
  }
  const double g0 = center[-b] * q + center[b] * omq;
  return 0.5 * g0 + internal::CombineMassChains(chains);
}

void ConvolveMassAvx2(const double* f, std::int64_t span,
                      const std::int64_t* bs, const double* qs,
                      std::size_t count, double* out) {
  internal::ConvolveMassBatch(f, span, bs, qs, count, out,
                              &ConvolveMassOneAvx2);
}

// ---------------------------------------------------------------------------
// deconvolve_mass: per candidate, the backward recurrence of
// `DeconvolveMassOneRow` in descending 4-lane blocks — legal whenever
// 2b >= 4, because an entry only depends on the entry 2b above it, so a
// block never reads its own writes; each lane runs the identical
// sub/mul/div sequence the scalar body runs on that element. The mass
// sweep is the canonical eight chains as two 4-lane accumulators (the
// structure of `ConvolveMassOneAvx2`, minus the convolution terms).
// Narrower buckets (b == 1) fall back to the shared scalar body.
// ---------------------------------------------------------------------------

/// `internal::CommittedMass` with the eight chains in two 4-lane
/// accumulators: chain r still takes keys with (key - 1) % 8 == r in
/// ascending order, and the chains combine in the canonical scalar order.
double MassSweepAvx2(const double* row, std::int64_t ns) {
  const double* g1 = row + ns + 1;  // key 1
  __m256d vacc_a = _mm256_setzero_pd();  // chains 0..3
  __m256d vacc_b = _mm256_setzero_pd();  // chains 4..7
  std::int64_t k = 0;
  for (; k + 8 <= ns; k += 8) {
    vacc_a = _mm256_add_pd(vacc_a, _mm256_loadu_pd(g1 + k));
    vacc_b = _mm256_add_pd(vacc_b, _mm256_loadu_pd(g1 + k + 4));
  }
  alignas(32) double chains[internal::kMassChains];
  _mm256_store_pd(chains, vacc_a);
  _mm256_store_pd(chains + 4, vacc_b);
  for (; k < ns; ++k) chains[k & 7] += g1[k];
  return 0.5 * row[static_cast<std::size_t>(ns)] +
         internal::CombineMassChains(chains);
}

/// Vector body of `DeconvolveMassOneRow`: same row geometry (driver-zeroed
/// top-2b pad), descending 4-lane blocks when 2b >= 4.
double DeconvolveMassOneAvx2(const double* f, std::int64_t s, std::int64_t b,
                             double q, double* row) {
  const double omq = 1.0 - q;
  const std::int64_t ns = s - b;
  std::int64_t idx = 2 * ns;
  if (2 * b >= static_cast<std::int64_t>(kLanes)) {
    const __m256d vq = _mm256_set1_pd(q);
    const __m256d vomq = _mm256_set1_pd(omq);
    for (; idx + 1 >= static_cast<std::int64_t>(kLanes); idx -= kLanes) {
      const std::int64_t lo = idx - static_cast<std::int64_t>(kLanes) + 1;
      const __m256d vf = _mm256_loadu_pd(f + lo + 2 * b);
      const __m256d vr = _mm256_loadu_pd(row + lo + 2 * b);
      _mm256_storeu_pd(
          row + lo,
          _mm256_div_pd(_mm256_sub_pd(vf, _mm256_mul_pd(vomq, vr)), vq));
    }
  }
  for (; idx >= 0; --idx) {
    row[idx] = (f[idx + 2 * b] - omq * row[idx + 2 * b]) / q;
  }
  return MassSweepAvx2(row, ns);
}

void DeconvolveMassAvx2(const double* f, std::int64_t span,
                        const std::int64_t* bs, const double* qs,
                        std::size_t count, double* out) {
  internal::DeconvolveMassBatch(f, span, bs, qs, count, out,
                                &DeconvolveMassOneAvx2);
}

// ---------------------------------------------------------------------------
// remove_query: candidates grouped by deconvolution regime (forward for
// p < 1/2, backward for p >= 1/2), each group in 4-lane blocks. The
// recurrence is vectorized *across candidates* (lane l carries its own
// unclamped recurrence value), with the clamped rows staged in a
// lane-interleaved buffer G[k * 4 + l]; the tail/cdf partial sums then run
// over G in the scalar summation orders (descending / ascending in k), one
// independent chain per lane.
// ---------------------------------------------------------------------------

struct RemoveScratch {
  std::vector<double> g;             // lane-interleaved rows, n * 4
  std::vector<std::size_t> forward;  // candidate slots, 0 < p < 1/2
  std::vector<std::size_t> backward; // candidate slots, 1/2 <= p < 1
};

RemoveScratch& Scratch() {
  static thread_local RemoveScratch scratch;
  return scratch;
}

/// One 4-lane block: `slots` are the candidate indices, `pad` lanes at the
/// end replicate a safe probability and have their outputs discarded.
void RemoveQueryBlockAvx2(const double* f, int n, const double* p,
                          const std::size_t* slots, std::size_t active,
                          bool forward_regime, int tail_k, int cdf_k,
                          double* tails, double* cdfs, double* g) {
  const std::size_t entries = static_cast<std::size_t>(n);
  alignas(32) double lane_p[kLanes];
  const double pad = forward_regime ? 0.25 : 0.75;  // div-safe, discarded
  for (std::size_t l = 0; l < kLanes; ++l) {
    lane_p[l] = l < active ? p[slots[l]] : pad;
  }
  const __m256d vp = _mm256_load_pd(lane_p);
  const __m256d ones = _mm256_set1_pd(1.0);
  const __m256d zeros = _mm256_setzero_pd();
  const __m256d vomp = _mm256_sub_pd(ones, vp);

  if (forward_regime) {
    // carry = (f[k] - p * carry) / (1 - p), stored clamped — RemoveTrial's
    // forward recurrence, lane-parallel.
    __m256d carry = zeros;
    for (std::size_t k = 0; k < entries; ++k) {
      carry = _mm256_div_pd(
          _mm256_sub_pd(_mm256_set1_pd(f[k]), _mm256_mul_pd(vp, carry)),
          vomp);
      _mm256_storeu_pd(
          g + k * kLanes,
          _mm256_min_pd(_mm256_max_pd(carry, zeros), ones));
    }
  } else {
    // carry = (f[k] - (1 - p) * carry) / p, k descending, row k-1 stored.
    __m256d carry = zeros;
    for (std::size_t k = entries; k > 0; --k) {
      carry = _mm256_div_pd(
          _mm256_sub_pd(_mm256_set1_pd(f[k]), _mm256_mul_pd(vomp, carry)),
          vp);
      _mm256_storeu_pd(
          g + (k - 1) * kLanes,
          _mm256_min_pd(_mm256_max_pd(carry, zeros), ones));
    }
  }

  alignas(32) double lane_out[kLanes];
  if (tails != nullptr) {
    if (tail_k <= 0) {
      for (std::size_t l = 0; l < active; ++l) tails[slots[l]] = 1.0;
    } else if (tail_k > n - 1) {
      for (std::size_t l = 0; l < active; ++l) tails[slots[l]] = 0.0;
    } else {
      __m256d acc = zeros;
      for (std::size_t k = entries; k > static_cast<std::size_t>(tail_k);
           --k) {
        acc = _mm256_add_pd(acc, _mm256_loadu_pd(g + (k - 1) * kLanes));
      }
      acc = _mm256_min_pd(acc, ones);
      _mm256_store_pd(lane_out, acc);
      for (std::size_t l = 0; l < active; ++l) tails[slots[l]] = lane_out[l];
    }
  }
  if (cdfs != nullptr) {
    if (cdf_k < 0) {
      for (std::size_t l = 0; l < active; ++l) cdfs[slots[l]] = 0.0;
    } else {
      const std::size_t kk =
          std::min(static_cast<std::size_t>(cdf_k), entries - 1);
      __m256d acc = zeros;
      for (std::size_t k = 0; k <= kk; ++k) {
        acc = _mm256_add_pd(acc, _mm256_loadu_pd(g + k * kLanes));
      }
      acc = _mm256_min_pd(acc, ones);
      _mm256_store_pd(lane_out, acc);
      for (std::size_t l = 0; l < active; ++l) cdfs[slots[l]] = lane_out[l];
    }
  }
}

void RemoveQueryAvx2(const double* pmf, int n, const double* p,
                     std::size_t count, int tail_k, int cdf_k, double* tails,
                     double* cdfs) {
  RemoveScratch& scratch = Scratch();
  scratch.g.resize(static_cast<std::size_t>(n) * kLanes);
  scratch.forward.clear();
  scratch.backward.clear();
  for (std::size_t j = 0; j < count; ++j) {
    const double pj = p[j];
    if (pj == 0.0 || pj == 1.0) {
      // Exact inverses: one shared scalar row (rare in real pools).
      static thread_local std::vector<double> row;
      row.resize(static_cast<std::size_t>(n));
      internal::RemoveTrialRow(pmf, n, pj, row.data());
      if (tails != nullptr) {
        tails[j] = internal::TailFromRow(row.data(),
                                         static_cast<std::size_t>(n), tail_k);
      }
      if (cdfs != nullptr) {
        cdfs[j] = internal::CdfFromRow(row.data(),
                                       static_cast<std::size_t>(n), cdf_k);
      }
    } else if (pj < 0.5) {
      scratch.forward.push_back(j);
    } else {
      scratch.backward.push_back(j);
    }
  }
  for (int regime = 0; regime < 2; ++regime) {
    const bool forward = regime == 0;
    const std::vector<std::size_t>& slots =
        forward ? scratch.forward : scratch.backward;
    for (std::size_t begin = 0; begin < slots.size(); begin += kLanes) {
      const std::size_t active = std::min(kLanes, slots.size() - begin);
      RemoveQueryBlockAvx2(pmf, n, p, slots.data() + begin, active, forward,
                           tail_k, cdf_k, tails, cdfs, scratch.g.data());
    }
  }
}

// rotl64 for 4 packed u64 (AVX2 has no vprolq; shift-shift-or).
inline __m256i Rotl29Avx2(__m256i v) {
  return _mm256_or_si256(_mm256_slli_epi64(v, 29), _mm256_srli_epi64(v, 35));
}

void HashLanesAvx2(const unsigned char* data, std::size_t num_strides,
                   std::uint64_t* lanes) {
  // The eight lanes ride in two 4-wide registers; each stride update is
  // the scalar recurrence `lane = rotl(lane, 29) ^ word` run on all
  // lanes at once — pure integer ops, identical values to the reference.
  __m256i lo = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(lanes));
  __m256i hi =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(lanes + 4));
  for (std::size_t s = 0; s < num_strides; ++s) {
    const __m256i* stride =
        reinterpret_cast<const __m256i*>(data + 64 * s);
    lo = _mm256_xor_si256(Rotl29Avx2(lo), _mm256_loadu_si256(stride));
    hi = _mm256_xor_si256(Rotl29Avx2(hi), _mm256_loadu_si256(stride + 1));
  }
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(lanes), lo);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(lanes + 4), hi);
}

std::uint64_t AuditPoolColumnsAvx2(const double* quality, const double* cost,
                                   const double* norm_quality,
                                   const double* log_odds, std::size_t n) {
  const __m256d zero = _mm256_set1_pd(0.0);
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d dmax = _mm256_set1_pd(std::numeric_limits<double>::max());
  const __m256d dmin = _mm256_set1_pd(std::numeric_limits<double>::lowest());
  __m256d viol = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    const __m256d q = _mm256_loadu_pd(quality + i);
    const __m256d c = _mm256_loadu_pd(cost + i);
    const __m256d nq = _mm256_loadu_pd(norm_quality + i);
    const __m256d lo = _mm256_loadu_pd(log_odds + i);
    // ok-masks use ordered compares, so NaN lanes come out not-ok.
    const __m256d q_ok = _mm256_and_pd(_mm256_cmp_pd(q, zero, _CMP_GE_OQ),
                                       _mm256_cmp_pd(q, one, _CMP_LE_OQ));
    const __m256d c_ok = _mm256_and_pd(_mm256_cmp_pd(c, zero, _CMP_GE_OQ),
                                       _mm256_cmp_pd(c, dmax, _CMP_LE_OQ));
    const __m256d nq_ok = _mm256_cmp_pd(
        nq, _mm256_max_pd(q, _mm256_sub_pd(one, q)), _CMP_EQ_OQ);
    const __m256d lo_ok = _mm256_and_pd(_mm256_cmp_pd(lo, dmin, _CMP_GE_OQ),
                                        _mm256_cmp_pd(lo, dmax, _CMP_LE_OQ));
    const __m256d all_ok =
        _mm256_and_pd(_mm256_and_pd(q_ok, c_ok), _mm256_and_pd(nq_ok, lo_ok));
    // A lane is a violation when its ok-mask is not all-ones.
    viol = _mm256_or_pd(
        viol, _mm256_xor_pd(all_ok, _mm256_castsi256_pd(
                                        _mm256_set1_epi64x(-1))));
  }
  std::uint64_t bad =
      static_cast<std::uint64_t>(_mm256_movemask_pd(viol) != 0);
  bad |= internal::AuditPoolColumnsRange(quality, cost, norm_quality,
                                         log_odds, i, n);
  return bad;
}

std::uint64_t AuditMonotoneU64Avx2(const std::uint64_t* values,
                                   std::size_t n) {
  // AVX2 only has signed 64-bit compares; flipping the sign bit of both
  // operands turns signed GT into unsigned GT.
  const __m256i sign = _mm256_set1_epi64x(
      static_cast<long long>(0x8000000000000000ull));
  __m256i viol = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    const __m256i prev = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(values + i)),
        sign);
    const __m256i next = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(values + i + 1)),
        sign);
    viol = _mm256_or_si256(viol, _mm256_cmpgt_epi64(prev, next));
  }
  std::uint64_t bad = static_cast<std::uint64_t>(
      _mm256_movemask_epi8(viol) != 0);
  bad |= internal::AuditMonotoneU64Range(values, i, n);
  return bad;
}

constexpr KernelTable kAvx2Table{
    "avx2",
    &FusedStepAvx2,
    &ConvolveMassAvx2,
    &RemoveQueryAvx2,
    &DeconvolveMassAvx2,
    &HashLanesAvx2,
    &AuditPoolColumnsAvx2,
    &AuditMonotoneU64Avx2,
};

}  // namespace

const KernelTable& Avx2Table() { return kAvx2Table; }

}  // namespace jury::simd

#endif  // JURYOPT_HAVE_AVX2
