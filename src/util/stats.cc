#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace jury {

void OnlineStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

double StdDev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = Mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double Quantile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  JURY_CHECK(p >= 0.0 && p <= 1.0);
  std::sort(xs.begin(), xs.end());
  const double pos = p * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

Summary Summarize(std::vector<double> xs) {
  Summary s;
  if (xs.empty()) return s;
  s.count = xs.size();
  s.mean = Mean(xs);
  s.stddev = StdDev(xs);
  std::sort(xs.begin(), xs.end());
  s.min = xs.front();
  s.max = xs.back();
  s.p50 = Quantile(xs, 0.5);
  s.p90 = Quantile(xs, 0.9);
  s.p99 = Quantile(xs, 0.99);
  return s;
}

}  // namespace jury
