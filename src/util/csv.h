#ifndef JURYOPT_UTIL_CSV_H_
#define JURYOPT_UTIL_CSV_H_

#include <string>
#include <vector>

#include "util/result.h"

namespace jury {

/// \brief Minimal RFC-4180-ish CSV reader: quoted cells, escaped quotes,
/// comment lines starting with '#', blank lines skipped. The inverse of
/// `Table::ToCsv`.
Result<std::vector<std::vector<std::string>>> ParseCsv(
    const std::string& text);

/// Reads and parses a CSV file.
Result<std::vector<std::vector<std::string>>> ReadCsvFile(
    const std::string& path);

}  // namespace jury

#endif  // JURYOPT_UTIL_CSV_H_
