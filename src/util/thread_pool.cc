#include "util/thread_pool.h"

#include <limits>
#include <vector>

namespace jury {

ArgmaxResult ParallelArgmax(ThreadPool* pool, std::size_t n,
                            std::size_t grain,
                            const std::function<double(std::size_t)>& score,
                            const std::function<bool(std::size_t)>& eligible,
                            double tol) {
  std::vector<double> scores(n, 0.0);
  std::vector<char> scored(n, 0);
  pool->ParallelFor(0, n, grain, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      if (eligible != nullptr && !eligible(i)) continue;
      scores[i] = score(i);
      scored[i] = 1;
    }
  });
  // Ordered reduction: the exact banded first-index-wins scan the serial
  // solvers run, so the winner cannot depend on the thread count.
  ArgmaxResult best;
  best.score = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < n; ++i) {
    if (!scored[i]) continue;
    if (scores[i] > best.score + tol) {
      best.score = scores[i];
      best.index = i;
    }
  }
  return best;
}

}  // namespace jury
