#include "util/thread_pool.h"

#include <algorithm>
#include <limits>

#include "util/env.h"

namespace jury {

std::size_t ResolveThreadCount(std::size_t requested) {
  if (requested > 0) return requested;
  const std::int64_t env = GetEnvInt("JURYOPT_THREADS", 0);
  if (env > 0) return static_cast<std::size_t>(env);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<std::size_t>(hw) : 1;
}

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t n = num_threads > 0 ? num_threads : 1;
  workers_.reserve(n - 1);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
    }
    RunRegion();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --busy_workers_;
    }
    done_cv_.notify_one();
  }
}

void ThreadPool::RunRegion() {
  for (;;) {
    const std::size_t shard = next_shard_.fetch_add(1);
    if (shard >= shard_count_) return;
    const std::size_t shard_begin = region_begin_ + shard * region_grain_;
    const std::size_t shard_end =
        std::min(region_end_, shard_begin + region_grain_);
    (*body_)(shard_begin, shard_end);
  }
}

void ThreadPool::ParallelFor(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (begin >= end) return;
  if (grain == 0) grain = 1;
  const std::size_t count = end - begin;
  const std::size_t shards = (count + grain - 1) / grain;
  if (workers_.empty() || shards == 1) {
    // Inline fallback: identical shard boundaries, caller runs them all.
    for (std::size_t shard = 0; shard < shards; ++shard) {
      const std::size_t shard_begin = begin + shard * grain;
      body(shard_begin, std::min(end, shard_begin + grain));
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    body_ = &body;
    region_begin_ = begin;
    region_end_ = end;
    region_grain_ = grain;
    shard_count_ = shards;
    next_shard_.store(0);
    busy_workers_ = workers_.size();
    ++generation_;
  }
  start_cv_.notify_all();
  RunRegion();  // the caller claims shards alongside the workers
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return busy_workers_ == 0; });
  body_ = nullptr;
}

ArgmaxResult ParallelArgmax(ThreadPool* pool, std::size_t n,
                            std::size_t grain,
                            const std::function<double(std::size_t)>& score,
                            const std::function<bool(std::size_t)>& eligible,
                            double tol) {
  std::vector<double> scores(n, 0.0);
  std::vector<char> scored(n, 0);
  pool->ParallelFor(0, n, grain, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      if (eligible != nullptr && !eligible(i)) continue;
      scores[i] = score(i);
      scored[i] = 1;
    }
  });
  // Ordered reduction: the exact banded first-index-wins scan the serial
  // solvers run, so the winner cannot depend on the thread count.
  ArgmaxResult best;
  best.score = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < n; ++i) {
    if (!scored[i]) continue;
    if (scores[i] > best.score + tol) {
      best.score = scores[i];
      best.index = i;
    }
  }
  return best;
}

}  // namespace jury
