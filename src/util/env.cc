#include "util/env.h"

#include <cstdlib>

namespace jury {

std::int64_t GetEnvInt(const std::string& name, std::int64_t fallback) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr || raw[0] == '\0') return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(raw, &end, 10);
  if (end == raw || *end != '\0') return fallback;
  return static_cast<std::int64_t>(parsed);
}

double GetEnvDouble(const std::string& name, double fallback) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr || raw[0] == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(raw, &end);
  if (end == raw || *end != '\0') return fallback;
  return parsed;
}

bool GetEnvFlag(const std::string& name, bool fallback) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr) return fallback;
  const std::string v(raw);
  if (v.empty() || v == "0" || v == "false" || v == "FALSE") return false;
  return true;
}

}  // namespace jury
