#include "util/csv.h"

#include <fstream>
#include <sstream>

namespace jury {

Result<std::vector<std::vector<std::string>>> ParseCsv(
    const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string cell;
  bool in_quotes = false;
  bool cell_started = false;

  auto end_cell = [&]() {
    row.push_back(cell);
    cell.clear();
    cell_started = false;
  };
  auto end_row = [&]() -> Status {
    if (row.empty() && !cell_started && cell.empty()) return Status::OK();
    end_cell();
    // Skip blank lines and comment lines.
    const bool blank = row.size() == 1 && row[0].empty();
    const bool comment = !row[0].empty() && row[0][0] == '#';
    if (!blank && !comment) rows.push_back(row);
    row.clear();
    return Status::OK();
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char ch = text[i];
    if (in_quotes) {
      if (ch == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          cell += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cell += ch;
      }
      continue;
    }
    switch (ch) {
      case '"':
        if (!cell.empty()) {
          return Status::InvalidArgument(
              "quote in the middle of an unquoted cell");
        }
        in_quotes = true;
        cell_started = true;
        break;
      case ',':
        end_cell();
        cell_started = true;  // next cell exists even if empty
        break;
      case '\r':
        break;
      case '\n':
        JURY_RETURN_NOT_OK(end_row());
        break;
      default:
        cell += ch;
        cell_started = true;
    }
  }
  if (in_quotes) return Status::InvalidArgument("unterminated quoted cell");
  JURY_RETURN_NOT_OK(end_row());
  return rows;
}

Result<std::vector<std::vector<std::string>>> ReadCsvFile(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseCsv(buffer.str());
}

}  // namespace jury
