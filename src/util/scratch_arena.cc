#include "util/scratch_arena.h"

namespace jury {

namespace {
thread_local ScratchArena* t_scratch_arena = nullptr;
}  // namespace

ScopedThreadScratchArena::ScopedThreadScratchArena(ScratchArena* arena)
    : previous_(t_scratch_arena) {
  t_scratch_arena = arena;
}

ScopedThreadScratchArena::~ScopedThreadScratchArena() {
  t_scratch_arena = previous_;
}

ScratchArena* CurrentThreadScratchArena() { return t_scratch_arena; }

}  // namespace jury
