#ifndef JURYOPT_UTIL_TABLE_H_
#define JURYOPT_UTIL_TABLE_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace jury {

/// \brief Console/CSV table builder used by the benchmark harness to print
/// the same rows and series the paper's tables/figures report.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; it must match the header width.
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats each cell with `Format`/`FormatPercent` upstream.
  std::size_t num_rows() const { return rows_.size(); }

  /// Monospace rendering with aligned columns.
  std::string ToString() const;
  /// RFC-4180-ish CSV (cells containing commas/quotes get quoted).
  std::string ToCsv() const;
  /// Writes the CSV rendering to `path`.
  Status WriteCsv(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision decimal formatting ("0.8123" for Format(0.81234, 4)).
std::string Format(double value, int precision);

/// Percentage formatting in the paper's style ("84.50%" for 0.845).
std::string FormatPercent(double fraction, int precision = 2);

}  // namespace jury

#endif  // JURYOPT_UTIL_TABLE_H_
