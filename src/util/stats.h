#ifndef JURYOPT_UTIL_STATS_H_
#define JURYOPT_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace jury {

/// \brief Streaming mean/variance accumulator (Welford's algorithm).
///
/// Used by the benchmark harness to average repeated experiments, mirroring
/// the paper's "repeat 1,000 times and report the average" protocol (§6.1.1).
class OnlineStats {
 public:
  void Add(double x);
  std::size_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 with fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// \brief Five-number-style summary of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

/// Computes a `Summary` of `xs` (empty input yields all-zero summary).
Summary Summarize(std::vector<double> xs);

/// Arithmetic mean; 0 for empty input.
double Mean(const std::vector<double>& xs);

/// Sample standard deviation (n-1); 0 with fewer than two samples.
double StdDev(const std::vector<double>& xs);

/// Linear-interpolation quantile, `p` in [0, 1]; 0 for empty input.
/// The input need not be sorted.
double Quantile(std::vector<double> xs, double p);

}  // namespace jury

#endif  // JURYOPT_UTIL_STATS_H_
