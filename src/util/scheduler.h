#ifndef JURYOPT_UTIL_SCHEDULER_H_
#define JURYOPT_UTIL_SCHEDULER_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace jury {

/// Resolves a requested thread count to the number of threads a solver
/// should actually use: `requested` when positive, otherwise the
/// `JURYOPT_THREADS` environment variable when set to a positive integer,
/// otherwise `std::thread::hardware_concurrency()` (at least 1).
std::size_t ResolveThreadCount(std::size_t requested);

class Scheduler;

/// \brief A set of tasks spawned onto a scheduler, waited on as a unit.
///
/// Groups nest: a task may create its own `TaskGroup`, spawn subtasks, and
/// `Wait()` on them — this is how a budget-table row fans its inner OPTJS
/// solve across idle workers. A waiting thread never blocks while runnable
/// tasks exist: `Wait()` keeps executing tasks (its own deque first, then
/// steals), so nesting cannot deadlock and cores stay busy.
///
/// The first exception thrown by a task is captured and rethrown from
/// `Wait()` (after every task of the group has finished); later exceptions
/// are dropped. The destructor waits for outstanding tasks but swallows
/// any captured exception — call `Wait()` explicitly to observe errors.
class TaskGroup {
 public:
  /// Groups on the process-wide scheduler by default.
  explicit TaskGroup(Scheduler* scheduler = nullptr);
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Spawns `fn` as a task of this group. From a worker thread the task is
  /// pushed onto that worker's own deque (LIFO — nested work runs hot
  /// unless an idle worker steals it); from any other thread it lands on
  /// the scheduler's injection queue.
  void Run(std::function<void()> fn);

  /// Blocks until every task of the group has finished, executing queued
  /// tasks (not necessarily this group's) while it waits. Rethrows the
  /// group's first captured exception.
  void Wait();

 private:
  friend class Scheduler;
  void OnTaskFinished(std::exception_ptr error);

  Scheduler* scheduler_;
  std::atomic<std::size_t> pending_{0};
  std::mutex mutex_;
  std::condition_variable cv_;
  std::exception_ptr error_;  // guarded by mutex_
};

/// \brief Per-call-site grain autotuner for `Scheduler::ParallelFor`.
///
/// Records measured per-shard cost (a lossy, racy exponential moving
/// average — feedback only, never correctness) and picks the grain that
/// targets `target_shard_ns` of work per shard, clamped to the
/// determinism-safe bounds [min_grain, count / parallelism]: any grain in
/// that range yields shard boundaries that are a pure function of
/// (count, grain), so a loop whose per-element outputs do not depend on
/// how elements are grouped into shards (the `ParallelFor` contract)
/// computes identical results whatever the tuner measured. Tuned loops
/// must satisfy that per-element purity; loops whose shard *walk* carries
/// state across elements (e.g. the exhaustive Gray-code shards) must pin
/// their grain instead.
class GrainTuner {
 public:
  explicit GrainTuner(std::size_t min_grain = 1,
                      std::uint64_t target_shard_ns = 100'000)
      : min_grain_(min_grain > 0 ? min_grain : 1),
        target_shard_ns_(target_shard_ns > 0 ? target_shard_ns : 1) {}

  /// The grain to use for a loop of `count` elements on `parallelism`
  /// threads. Without feedback, one shard per thread (the fixed-pool
  /// default); with feedback, `target_shard_ns` worth of elements.
  std::size_t Pick(std::size_t count, std::size_t parallelism) const;

  /// Feeds back one shard's measured cost. Thread-safe (relaxed atomics;
  /// concurrent updates may drop each other — the EMA only steers).
  void Record(std::size_t items, std::uint64_t elapsed_ns);

  /// Scaled EMA of the per-item cost (ns << 10); 0 = no feedback yet.
  std::uint64_t ema_ns_per_item_x1024() const {
    return ema_ns_per_item_x1024_.load(std::memory_order_relaxed);
  }

 private:
  std::size_t min_grain_;
  std::uint64_t target_shard_ns_;
  std::atomic<std::uint64_t> ema_ns_per_item_x1024_{0};
};

/// \brief Snapshot of the scheduler's activity counters (relaxed atomics;
/// exact once all regions have quiesced). The bench harness records these
/// around a workload to show — rather than assert — that nested solves
/// actually fanned out across workers.
struct SchedulerCounters {
  /// Tasks pushed onto a worker's own deque or the injection queue.
  std::uint64_t tasks_spawned = 0;
  /// Tasks executed by a thread other than the one that spawned them
  /// (taken from another worker's deque top).
  std::uint64_t tasks_stolen = 0;
  /// Tasks taken from the external-submission injection queue.
  std::uint64_t tasks_injected = 0;
  /// Parallel regions dispatched across workers.
  std::uint64_t regions = 0;
  /// Regions started from inside a task — nested parallelism (e.g. a
  /// budget-table row fanning out its inner solver).
  std::uint64_t nested_regions = 0;
  /// Regions that ran inline on the caller (serial cap or single shard).
  std::uint64_t inline_regions = 0;
};

/// \brief Process-wide work-stealing scheduler.
///
/// One fixed set of worker threads serves every parallel region in the
/// process, replacing the per-call fixed pools of the previous layer. Each
/// worker owns a Chase–Lev-style deque: the owner pushes and pops at the
/// bottom (LIFO, so nested regions run their own freshest work), thieves
/// steal from the top (FIFO, so the oldest — usually largest — pending
/// task migrates to an idle core). Tasks spawned from non-worker threads
/// enter through a shared injection queue.
///
/// Determinism contract (inherited from the fixed pool, kept verbatim):
/// `ParallelFor` splits [begin, end) into shards whose boundaries depend
/// only on (begin, end, grain) — never on the worker count, the stealing
/// order, or which thread ran a shard. Bodies write per-element or
/// per-shard outputs; reductions happen serially in index order after the
/// region. Threads decide *when* a shard runs, never *what* it computes.
///
/// Unlike the old pool, regions nest: a `ParallelFor` body may itself call
/// `ParallelFor` (or spawn a `TaskGroup`), and its subtasks are stealable
/// by any idle worker. This is what lets a budget-table row fan out its
/// inner OPTJS solve instead of pinning it to one thread.
class Scheduler {
 public:
  /// The process-wide instance. Sized once, at first use: exactly
  /// JURYOPT_THREADS when that is exported at process start (the env var
  /// is a whole-process CPU budget — 1 means no workers ever spawn),
  /// otherwise max(hardware concurrency, 8) — generously, because idle
  /// workers just sleep, while an under-sized pool would silently
  /// serialize the multi-threaded dispatch that tests request by setting
  /// JURYOPT_THREADS after startup. Serial call sites (resolved
  /// parallelism <= 1) avoid touching this entirely, so a num_threads=1
  /// embedder never spawns a pool.
  static Scheduler* Global();

  /// A private instance for tests. `num_threads` counts the caller, so a
  /// scheduler of size 1 has no workers and runs everything inline.
  explicit Scheduler(std::size_t num_threads);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Workers + the participating caller.
  std::size_t num_threads() const { return workers_.size() + 1; }

  /// Splits [begin, end) into contiguous shards of at most `grain`
  /// elements and runs `body(shard_begin, shard_end)` once per shard,
  /// claiming shards dynamically across at most `max_parallelism` threads
  /// (0 = no cap beyond the scheduler's size). Returns after every shard
  /// completed; rethrows the first exception a shard threw (remaining
  /// shards are abandoned once an exception is seen, so a throwing body
  /// forfeits the coverage guarantee). Shard boundaries depend only on
  /// (begin, end, grain). May be called from inside another region's body
  /// (the region nests; idle workers steal its shards).
  void ParallelFor(std::size_t begin, std::size_t end, std::size_t grain,
                   const std::function<void(std::size_t, std::size_t)>& body,
                   std::size_t max_parallelism = 0);

  /// `ParallelFor` with the grain chosen by `tuner` (and per-shard cost fed
  /// back into it). Only for loops whose per-element outputs are pure in
  /// the element index — see `GrainTuner`.
  void ParallelForTuned(
      GrainTuner* tuner, std::size_t begin, std::size_t end,
      const std::function<void(std::size_t, std::size_t)>& body,
      std::size_t max_parallelism = 0);

  /// `Global()->ParallelFor`, except that a serial cap (`max_parallelism
  /// == 1`) runs the identical shard loop inline *without touching — or
  /// lazily spawning — the global scheduler*. Call sites use this instead
  /// of hand-rolling the guard, so the invariant "a num_threads=1 caller
  /// never constructs the worker pool" is structural.
  static void GlobalParallelFor(
      std::size_t begin, std::size_t end, std::size_t grain,
      const std::function<void(std::size_t, std::size_t)>& body,
      std::size_t max_parallelism);

  SchedulerCounters counters() const;
  void ResetCounters();

  /// True when the calling thread is currently executing a task of this
  /// scheduler (used to classify nested regions; exposed for tests).
  bool InTask() const;

 private:
  friend class TaskGroup;

  struct Task {
    std::function<void()> fn;
    TaskGroup* group = nullptr;
  };

  /// Chase–Lev-style work-stealing deque. The owner pushes/pops at the
  /// bottom; any thread steals from the top. All slots are atomic, so the
  /// implementation is ThreadSanitizer-clean without fences.
  class Deque {
   public:
    Deque();
    ~Deque();
    void Push(Task* task);  // owner only
    Task* Pop();            // owner only
    Task* Steal();          // any thread

   private:
    struct Ring {
      explicit Ring(std::size_t capacity);
      std::size_t capacity;
      std::unique_ptr<std::atomic<Task*>[]> slots;
      std::atomic<Task*>& Slot(std::int64_t i) {
        return slots[static_cast<std::size_t>(i) & (capacity - 1)];
      }
    };
    Ring* Grow(Ring* ring, std::int64_t bottom, std::int64_t top);

    std::atomic<std::int64_t> top_{0};
    std::atomic<std::int64_t> bottom_{0};
    std::atomic<Ring*> ring_;
    // Retired rings stay alive until destruction: a thief may still be
    // reading a stale ring pointer (its values are preserved by Grow).
    std::vector<std::unique_ptr<Ring>> retired_;
    std::mutex retired_mutex_;
  };

  void WorkerLoop(std::size_t index);
  void Submit(Task* task);
  Task* TryAcquire();
  void RunTask(Task* task);

  std::vector<std::unique_ptr<Deque>> deques_;  // one per worker
  std::vector<std::thread> workers_;

  std::mutex inject_mutex_;
  std::deque<Task*> inject_queue_;

  std::mutex sleep_mutex_;
  std::condition_variable sleep_cv_;
  bool shutdown_ = false;                  // guarded by sleep_mutex_
  std::atomic<std::size_t> available_{0};  // queued, not yet acquired

  std::atomic<std::uint64_t> tasks_spawned_{0};
  std::atomic<std::uint64_t> tasks_stolen_{0};
  std::atomic<std::uint64_t> tasks_injected_{0};
  std::atomic<std::uint64_t> regions_{0};
  std::atomic<std::uint64_t> nested_regions_{0};
  std::atomic<std::uint64_t> inline_regions_{0};
};

/// \brief Counters of the process-wide scheduler *without* forcing its
/// construction: all-zero until the first `Scheduler::Global()` call has
/// actually spawned the pool. This is what the stats-registry gauges
/// read, so a `--stats` export (or a report snapshot) can never be the
/// thing that creates the worker threads.
SchedulerCounters GlobalSchedulerCountersIfStarted();

}  // namespace jury

#endif  // JURYOPT_UTIL_SCHEDULER_H_
