#ifndef JURYOPT_UTIL_ENV_H_
#define JURYOPT_UTIL_ENV_H_

#include <cstdint>
#include <string>

namespace jury {

/// Reads an integer environment variable; returns `fallback` when unset or
/// unparsable. Used by the benchmark harness for repetition scaling
/// (`JURY_BENCH_REPS`) so the paper's 1000-repetition protocol can be dialed
/// up or down without rebuilding.
std::int64_t GetEnvInt(const std::string& name, std::int64_t fallback);

/// Reads a double environment variable with the same fallback semantics.
double GetEnvDouble(const std::string& name, double fallback);

/// True when the variable is set to a value other than "0"/""/"false".
bool GetEnvFlag(const std::string& name, bool fallback = false);

}  // namespace jury

#endif  // JURYOPT_UTIL_ENV_H_
