#include "util/table.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "util/check.h"

namespace jury {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  JURY_CHECK(!header_.empty());
}

void Table::AddRow(std::vector<std::string> row) {
  JURY_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::ToString() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c];
      for (std::size_t pad = row[c].size(); pad < widths[c]; ++pad) os << ' ';
    }
    os << " |\n";
  };
  emit_row(header_);
  os << '|';
  for (std::size_t c = 0; c < header_.size(); ++c) {
    for (std::size_t i = 0; i < widths[c] + 2; ++i) os << '-';
    os << '|';
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

namespace {

std::string CsvEscape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

std::string Table::ToCsv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      os << CsvEscape(row[c]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

Status Table::WriteCsv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return Status::InvalidArgument("cannot open for writing: " + path);
  }
  out << ToCsv();
  if (!out) return Status::Internal("write failed: " + path);
  return Status::OK();
}

std::string Format(double value, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << value;
  return os.str();
}

std::string FormatPercent(double fraction, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << fraction * 100.0 << '%';
  return os.str();
}

}  // namespace jury
