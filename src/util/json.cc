#include "util/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <limits>
#include <string_view>

#include "util/check.h"
#include "util/stats_registry.h"

namespace jury {
namespace {

void AppendNumber(double value, std::string* out) {
  if (!std::isfinite(value)) {
    out->append("null");
    return;
  }
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  JURY_CHECK(ec == std::errc());
  out->append(buf, ptr);
}

template <typename Int>
void AppendInteger(Int value, std::string* out) {
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  JURY_CHECK(ec == std::errc());
  out->append(buf, ptr);
}

}  // namespace

const Json* Json::Find(const std::string& key) const {
  const ObjectRepr* object = std::get_if<ObjectRepr>(&repr_);
  if (object == nullptr) return nullptr;
  const auto it = object->find(key);
  return it == object->end() ? nullptr : &it->second;
}

const std::map<std::string, Json>* Json::GetObject() const {
  return std::get_if<ObjectRepr>(&repr_);
}

const std::vector<Json>* Json::GetArray() const {
  return std::get_if<ArrayRepr>(&repr_);
}

Result<bool> Json::GetBool() const {
  if (const bool* b = std::get_if<bool>(&repr_)) return *b;
  return Status::InvalidArgument("JSON value is not a boolean");
}

Result<double> Json::GetDouble() const {
  if (const double* d = std::get_if<double>(&repr_)) return *d;
  if (const std::int64_t* i = std::get_if<std::int64_t>(&repr_)) {
    return static_cast<double>(*i);
  }
  if (const std::uint64_t* u = std::get_if<std::uint64_t>(&repr_)) {
    return static_cast<double>(*u);
  }
  return Status::InvalidArgument("JSON value is not a number");
}

Result<std::uint64_t> Json::GetUint64() const {
  if (const std::uint64_t* u = std::get_if<std::uint64_t>(&repr_)) return *u;
  if (const std::int64_t* i = std::get_if<std::int64_t>(&repr_)) {
    if (*i < 0) {
      return Status::InvalidArgument("JSON value is a negative integer");
    }
    return static_cast<std::uint64_t>(*i);
  }
  return Status::InvalidArgument("JSON value is not an unsigned integer");
}

Result<std::string> Json::GetString() const {
  if (const std::string* s = std::get_if<std::string>(&repr_)) return *s;
  return Status::InvalidArgument("JSON value is not a string");
}

Json& Json::Set(const std::string& key, Json value) {
  JURY_CHECK(is_object()) << "Json::Set on a non-object document";
  std::get<ObjectRepr>(repr_).insert_or_assign(key, std::move(value));
  return *this;
}

Json& Json::Append(Json value) {
  JURY_CHECK(is_array()) << "Json::Append on a non-array document";
  std::get<ArrayRepr>(repr_).push_back(std::move(value));
  return *this;
}

std::string Json::Quote(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  out.push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"': out.append("\\\""); break;
      case '\\': out.append("\\\\"); break;
      case '\n': out.append("\\n"); break;
      case '\r': out.append("\\r"); break;
      case '\t': out.append("\\t"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out.append(buf);
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

void Json::DumpTo(std::string* out) const {
  if (std::holds_alternative<std::monostate>(repr_)) {
    out->append("null");
  } else if (const bool* b = std::get_if<bool>(&repr_)) {
    out->append(*b ? "true" : "false");
  } else if (const double* d = std::get_if<double>(&repr_)) {
    AppendNumber(*d, out);
  } else if (const std::int64_t* i = std::get_if<std::int64_t>(&repr_)) {
    AppendInteger(*i, out);
  } else if (const std::uint64_t* u = std::get_if<std::uint64_t>(&repr_)) {
    AppendInteger(*u, out);
  } else if (const std::string* s = std::get_if<std::string>(&repr_)) {
    out->append(Quote(*s));
  } else if (const ObjectRepr* obj = std::get_if<ObjectRepr>(&repr_)) {
    out->push_back('{');
    bool first = true;
    for (const auto& [key, value] : *obj) {  // std::map: sorted keys
      if (!first) out->push_back(',');
      first = false;
      out->append(Quote(key));
      out->push_back(':');
      value.DumpTo(out);
    }
    out->push_back('}');
  } else {
    const ArrayRepr& array = std::get<ArrayRepr>(repr_);
    out->push_back('[');
    for (std::size_t i = 0; i < array.size(); ++i) {
      if (i > 0) out->push_back(',');
      array[i].DumpTo(out);
    }
    out->push_back(']');
  }
}

std::string Json::Dump() const {
  std::string out;
  DumpTo(&out);
  return out;
}

namespace {

/// Recursive-descent RFC 8259 parser. Depth is bounded by
/// `JsonParseOptions::max_depth` (checked before each container recursion)
/// and every malformed byte is an InvalidArgument naming its offset, so no
/// input — however hostile — can abort or overflow the stack.
class JsonParser {
 public:
  JsonParser(std::string_view text, const JsonParseOptions& options)
      : text_(text), options_(options) {}

  Result<Json> Parse() {
    Json value;
    JURY_RETURN_NOT_OK(ParseValue(0, &value));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Status Fail(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error at byte " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Status ParseValue(std::size_t depth, Json* out) {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return ParseObject(depth, out);
      case '[':
        return ParseArray(depth, out);
      case '"': {
        std::string value;
        JURY_RETURN_NOT_OK(ParseString(&value));
        *out = Json(std::move(value));
        return Status::OK();
      }
      case 't':
        if (ConsumeLiteral("true")) {
          *out = Json(true);
          return Status::OK();
        }
        return Fail("invalid literal");
      case 'f':
        if (ConsumeLiteral("false")) {
          *out = Json(false);
          return Status::OK();
        }
        return Fail("invalid literal");
      case 'n':
        if (ConsumeLiteral("null")) {
          *out = Json();
          return Status::OK();
        }
        return Fail("invalid literal");
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(std::size_t depth, Json* out) {
    if (depth >= options_.max_depth) {
      return Fail("nesting deeper than " + std::to_string(options_.max_depth));
    }
    ++pos_;  // '{'
    Json object = Json::Object();
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      *out = std::move(object);
      return Status::OK();
    }
    for (;;) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key string");
      }
      std::string key;
      JURY_RETURN_NOT_OK(ParseString(&key));
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Fail("expected ':' after object key");
      }
      ++pos_;
      Json value;
      JURY_RETURN_NOT_OK(ParseValue(depth + 1, &value));
      object.Set(key, std::move(value));
      SkipWhitespace();
      if (pos_ >= text_.size()) return Fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        *out = std::move(object);
        return Status::OK();
      }
      return Fail("expected ',' or '}' in object");
    }
  }

  Status ParseArray(std::size_t depth, Json* out) {
    if (depth >= options_.max_depth) {
      return Fail("nesting deeper than " + std::to_string(options_.max_depth));
    }
    ++pos_;  // '['
    Json array = Json::Array();
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      *out = std::move(array);
      return Status::OK();
    }
    for (;;) {
      Json value;
      JURY_RETURN_NOT_OK(ParseValue(depth + 1, &value));
      array.Append(std::move(value));
      SkipWhitespace();
      if (pos_ >= text_.size()) return Fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        *out = std::move(array);
        return Status::OK();
      }
      return Fail("expected ',' or ']' in array");
    }
  }

  /// RFC 8259 number grammar, checked before conversion so `from_chars`
  /// leniencies (leading zeros, "1.", "+1") cannot widen the accepted
  /// language, then converted overflow-safely: an integer literal that
  /// fits neither int64 nor uint64, or a double outside its range, is an
  /// error — never a saturated or truncated value.
  Status ParseNumber(Json* out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (pos_ >= text_.size() || !IsDigit(text_[pos_])) {
      pos_ = start;
      return Fail("invalid number");
    }
    if (text_[pos_] == '0') {
      ++pos_;
      if (pos_ < text_.size() && IsDigit(text_[pos_])) {
        pos_ = start;
        return Fail("leading zeros are not allowed");
      }
    } else {
      while (pos_ < text_.size() && IsDigit(text_[pos_])) ++pos_;
    }
    bool integral = true;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      integral = false;
      ++pos_;
      if (pos_ >= text_.size() || !IsDigit(text_[pos_])) {
        pos_ = start;
        return Fail("expected digits after decimal point");
      }
      while (pos_ < text_.size() && IsDigit(text_[pos_])) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || !IsDigit(text_[pos_])) {
        pos_ = start;
        return Fail("expected digits in exponent");
      }
      while (pos_ < text_.size() && IsDigit(text_[pos_])) ++pos_;
    }
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    if (integral) {
      const bool negative = text_[start] == '-';
      if (negative) {
        std::int64_t value = 0;
        const auto [ptr, ec] = std::from_chars(first, last, value);
        if (ec == std::errc() && ptr == last) {
          // Keep "-0" a double so Dump round-trips it byte-stably.
          *out = value == 0 ? Json(-0.0) : Json(value);
          return Status::OK();
        }
      } else {
        std::uint64_t value = 0;
        const auto [ptr, ec] = std::from_chars(first, last, value);
        if (ec == std::errc() && ptr == last) {
          *out = value <= static_cast<std::uint64_t>(
                              std::numeric_limits<std::int64_t>::max())
                     ? Json(static_cast<std::int64_t>(value))
                     : Json(value);
          return Status::OK();
        }
      }
      pos_ = start;
      return Fail("integer overflows 64 bits");
    }
    double value = 0.0;
    const auto [ptr, ec] = std::from_chars(first, last, value);
    if (ec != std::errc() || ptr != last) {
      pos_ = start;
      return Fail("number out of double range");
    }
    *out = Json(value);
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    ++pos_;  // opening '"'
    out->clear();
    while (pos_ < text_.size()) {
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return Status::OK();
      }
      if (c == '\\') {
        JURY_RETURN_NOT_OK(ParseEscape(out));
        continue;
      }
      if (c < 0x20) return Fail("unescaped control character in string");
      if (c < 0x80) {
        out->push_back(static_cast<char>(c));
        ++pos_;
        continue;
      }
      JURY_RETURN_NOT_OK(ConsumeUtf8Sequence(out));
    }
    return Fail("unterminated string");
  }

  Status ParseEscape(std::string* out) {
    ++pos_;  // '\\'
    if (pos_ >= text_.size()) return Fail("unterminated escape");
    const char e = text_[pos_++];
    switch (e) {
      case '"': out->push_back('"'); return Status::OK();
      case '\\': out->push_back('\\'); return Status::OK();
      case '/': out->push_back('/'); return Status::OK();
      case 'b': out->push_back('\b'); return Status::OK();
      case 'f': out->push_back('\f'); return Status::OK();
      case 'n': out->push_back('\n'); return Status::OK();
      case 'r': out->push_back('\r'); return Status::OK();
      case 't': out->push_back('\t'); return Status::OK();
      case 'u': {
        std::uint32_t code = 0;
        JURY_RETURN_NOT_OK(ParseHex4(&code));
        if (code >= 0xD800 && code <= 0xDBFF) {
          // High surrogate: a low surrogate escape must follow.
          if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
              text_[pos_ + 1] != 'u') {
            return Fail("lone high surrogate in \\u escape");
          }
          pos_ += 2;
          std::uint32_t low = 0;
          JURY_RETURN_NOT_OK(ParseHex4(&low));
          if (low < 0xDC00 || low > 0xDFFF) {
            return Fail("invalid low surrogate in \\u escape");
          }
          code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
        } else if (code >= 0xDC00 && code <= 0xDFFF) {
          return Fail("lone low surrogate in \\u escape");
        }
        AppendUtf8(code, out);
        return Status::OK();
      }
      default:
        --pos_;
        return Fail("invalid escape character");
    }
  }

  Status ParseHex4(std::uint32_t* out) {
    if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + i];
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') value |= static_cast<std::uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') value |= static_cast<std::uint32_t>(c - 'A' + 10);
      else return Fail("invalid hex digit in \\u escape");
    }
    pos_ += 4;
    *out = value;
    return Status::OK();
  }

  static void AppendUtf8(std::uint32_t code, std::string* out) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  /// Validates and copies one multi-byte UTF-8 sequence starting at
  /// `pos_`. Rejects truncated sequences, stray continuation bytes,
  /// overlong encodings, UTF-8-encoded surrogates, and code points above
  /// U+10FFFF — the classic smuggling vectors.
  Status ConsumeUtf8Sequence(std::string* out) {
    const unsigned char lead = static_cast<unsigned char>(text_[pos_]);
    std::size_t length;
    std::uint32_t code;
    if ((lead & 0xE0) == 0xC0) {
      length = 2;
      code = lead & 0x1F;
    } else if ((lead & 0xF0) == 0xE0) {
      length = 3;
      code = lead & 0x0F;
    } else if ((lead & 0xF8) == 0xF0) {
      length = 4;
      code = lead & 0x07;
    } else {
      return Fail("invalid UTF-8 lead byte in string");
    }
    if (pos_ + length > text_.size()) {
      return Fail("truncated UTF-8 sequence in string");
    }
    for (std::size_t i = 1; i < length; ++i) {
      const unsigned char cont = static_cast<unsigned char>(text_[pos_ + i]);
      if ((cont & 0xC0) != 0x80) {
        return Fail("invalid UTF-8 continuation byte in string");
      }
      code = (code << 6) | (cont & 0x3F);
    }
    static constexpr std::uint32_t kMinForLength[5] = {0, 0, 0x80, 0x800,
                                                       0x10000};
    if (code < kMinForLength[length]) {
      return Fail("overlong UTF-8 encoding in string");
    }
    if (code >= 0xD800 && code <= 0xDFFF) {
      return Fail("UTF-8-encoded surrogate in string");
    }
    if (code > 0x10FFFF) {
      return Fail("UTF-8 code point above U+10FFFF");
    }
    out->append(text_.substr(pos_, length));
    pos_ += length;
    return Status::OK();
  }

  static bool IsDigit(char c) { return c >= '0' && c <= '9'; }

  std::string_view text_;
  JsonParseOptions options_;
  std::size_t pos_ = 0;
};

}  // namespace

namespace {

// Parse volume and rejection rate, visible in `jury_cli --stats`: on a
// hostile input stream the error counter is the interesting signal.
// Registered at static initialization so the instrument set is identical
// in every process, used or not.
StatsRegistry::Counter& g_documents_parsed =
    RegisterStatsCounter("json.documents_parsed");
StatsRegistry::Counter& g_parse_errors =
    RegisterStatsCounter("json.parse_errors");

}  // namespace

Result<Json> Json::Parse(std::string_view text,
                         const JsonParseOptions& options) {
  Result<Json> result = JsonParser(text, options).Parse();
  g_documents_parsed.Increment();
  if (!result.ok()) g_parse_errors.Increment();
  return result;
}

}  // namespace jury
