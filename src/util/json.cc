#include "util/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "util/check.h"

namespace jury {
namespace {

void AppendNumber(double value, std::string* out) {
  if (!std::isfinite(value)) {
    out->append("null");
    return;
  }
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  JURY_CHECK(ec == std::errc());
  out->append(buf, ptr);
}

template <typename Int>
void AppendInteger(Int value, std::string* out) {
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  JURY_CHECK(ec == std::errc());
  out->append(buf, ptr);
}

}  // namespace

Json& Json::Set(const std::string& key, Json value) {
  JURY_CHECK(is_object()) << "Json::Set on a non-object document";
  std::get<ObjectRepr>(repr_).insert_or_assign(key, std::move(value));
  return *this;
}

Json& Json::Append(Json value) {
  JURY_CHECK(is_array()) << "Json::Append on a non-array document";
  std::get<ArrayRepr>(repr_).push_back(std::move(value));
  return *this;
}

std::string Json::Quote(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  out.push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"': out.append("\\\""); break;
      case '\\': out.append("\\\\"); break;
      case '\n': out.append("\\n"); break;
      case '\r': out.append("\\r"); break;
      case '\t': out.append("\\t"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out.append(buf);
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

void Json::DumpTo(std::string* out) const {
  if (std::holds_alternative<std::monostate>(repr_)) {
    out->append("null");
  } else if (const bool* b = std::get_if<bool>(&repr_)) {
    out->append(*b ? "true" : "false");
  } else if (const double* d = std::get_if<double>(&repr_)) {
    AppendNumber(*d, out);
  } else if (const std::int64_t* i = std::get_if<std::int64_t>(&repr_)) {
    AppendInteger(*i, out);
  } else if (const std::uint64_t* u = std::get_if<std::uint64_t>(&repr_)) {
    AppendInteger(*u, out);
  } else if (const std::string* s = std::get_if<std::string>(&repr_)) {
    out->append(Quote(*s));
  } else if (const ObjectRepr* obj = std::get_if<ObjectRepr>(&repr_)) {
    out->push_back('{');
    bool first = true;
    for (const auto& [key, value] : *obj) {  // std::map: sorted keys
      if (!first) out->push_back(',');
      first = false;
      out->append(Quote(key));
      out->push_back(':');
      value.DumpTo(out);
    }
    out->push_back('}');
  } else {
    const ArrayRepr& array = std::get<ArrayRepr>(repr_);
    out->push_back('[');
    for (std::size_t i = 0; i < array.size(); ++i) {
      if (i > 0) out->push_back(',');
      array[i].DumpTo(out);
    }
    out->push_back(']');
  }
}

std::string Json::Dump() const {
  std::string out;
  DumpTo(&out);
  return out;
}

}  // namespace jury
