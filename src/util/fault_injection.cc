#include "util/fault_injection.h"

#include <algorithm>

#include "util/stats_registry.h"

namespace jury {
namespace {

StatsRegistry::Counter& g_faults_injected =
    RegisterStatsCounter("fault.injected");

}  // namespace

void FaultSite::Fire() {
  // Disarm first so the drain path (a nested region finishing its other
  // shards, a retry attempt) does not re-fire the same trigger.
  armed_.store(false, std::memory_order_relaxed);
  g_faults_injected.Increment();
  throw FaultInjectedError(name_);
}

FaultInjector& FaultInjector::Global() {
  static FaultInjector* instance = new FaultInjector;
  return *instance;
}

FaultSite* FaultInjector::FindOrCreate(const std::string& name) {
  for (FaultSite* site : sites_) {
    if (site->name() == name) return site;
  }
  sites_.push_back(new FaultSite(name));  // process lifetime, never freed
  return sites_.back();
}

FaultSite& FaultInjector::RegisterSite(const char* name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return *FindOrCreate(name);
}

void FaultInjector::Arm(const std::string& site, std::uint64_t hit) {
  std::lock_guard<std::mutex> lock(mutex_);
  FaultSite* target = FindOrCreate(site);
  if (hit == 0) hit = 1;
  target->trigger_.store(target->hits() + hit, std::memory_order_relaxed);
  target->armed_.store(true, std::memory_order_relaxed);
}

void FaultInjector::Disarm() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (FaultSite* site : sites_) {
    site->armed_.store(false, std::memory_order_relaxed);
  }
}

std::vector<std::string> FaultInjector::Sites() const {
  std::vector<std::string> names;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    names.reserve(sites_.size());
    for (const FaultSite* site : sites_) names.push_back(site->name());
  }
  std::sort(names.begin(), names.end());
  return names;
}

std::uint64_t FaultInjector::HitCount(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const FaultSite* candidate : sites_) {
    if (candidate->name() == site) return candidate->hits();
  }
  return 0;
}

std::uint64_t FaultInjector::injected_count() const {
  return g_faults_injected.value();
}

}  // namespace jury
