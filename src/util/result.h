#ifndef JURYOPT_UTIL_RESULT_H_
#define JURYOPT_UTIL_RESULT_H_

#include <utility>
#include <variant>

#include "util/check.h"
#include "util/status.h"

namespace jury {

/// \brief Value-or-error holder, in the style of `arrow::Result<T>`.
///
/// A `Result<T>` holds either a `T` (success) or a non-OK `Status` (failure).
/// Accessing the value of a failed result aborts via `JURY_CHECK`, so callers
/// must test `ok()` (or use `JURY_ASSIGN_OR_RETURN`) first.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK status (failure).
  Result(Status status)  // NOLINT(runtime/explicit)
      : repr_(std::move(status)) {
    JURY_CHECK(!std::get<Status>(repr_).ok())
        << "Result<T> must not be constructed from an OK status";
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// Returns the error status (OK if the result holds a value).
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  const T& value() const& {
    JURY_CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::get<T>(repr_);
  }
  T& value() & {
    JURY_CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::get<T>(repr_);
  }
  T&& value() && {
    JURY_CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` when this result holds an error.
  T value_or(T fallback) const {
    if (ok()) return std::get<T>(repr_);
    return fallback;
  }

 private:
  std::variant<T, Status> repr_;
};

/// Evaluates `rexpr` (a Result<T>); on error returns the status, otherwise
/// assigns the value to `lhs`.
#define JURY_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                               \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

#define JURY_ASSIGN_OR_RETURN(lhs, rexpr) \
  JURY_ASSIGN_OR_RETURN_IMPL(             \
      JURY_CONCAT_(_jury_result_, __LINE__), lhs, rexpr)

#define JURY_CONCAT_INNER_(a, b) a##b
#define JURY_CONCAT_(a, b) JURY_CONCAT_INNER_(a, b)

}  // namespace jury

#endif  // JURYOPT_UTIL_RESULT_H_
