#ifndef JURYOPT_UTIL_RNG_H_
#define JURYOPT_UTIL_RNG_H_

#include <cstdint>
#include <vector>

namespace jury {

/// \brief Deterministic pseudo-random number generator (xoshiro256**).
///
/// All stochastic components of juryopt (worker-pool generation, vote
/// simulation, randomized voting strategies, simulated annealing) draw from an
/// explicitly passed `Rng`, so every experiment is reproducible from a seed.
/// The generator satisfies the C++ UniformRandomBitGenerator concept.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the generator via SplitMix64 expansion of `seed`.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  /// Next raw 64-bit value.
  std::uint64_t Next();
  result_type operator()() { return Next(); }

  /// Uniform double in [0, 1).
  double Uniform();
  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);
  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t UniformInt(std::uint64_t n);
  /// Bernoulli draw: true with probability `p` (clamped to [0,1]).
  bool Bernoulli(double p);
  /// Standard normal via Box–Muller.
  double Gaussian();
  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);
  /// Normal truncated (by rejection, with clamping fallback) to [lo, hi].
  double TruncatedGaussian(double mean, double stddev, double lo, double hi);
  /// Beta(a, b) via Gamma ratios (Marsaglia–Tsang).
  double Beta(double a, double b);
  /// Gamma(shape, 1) via Marsaglia–Tsang. Requires shape > 0.
  double Gamma(double shape);

  /// Fisher–Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (std::size_t i = items->size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(UniformInt(i));
      std::swap((*items)[i - 1], (*items)[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) (k <= n), in random order.
  std::vector<std::size_t> SampleWithoutReplacement(std::size_t n,
                                                    std::size_t k);

  /// Derives an independent generator (useful for per-repetition streams).
  Rng Fork();

 private:
  std::uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace jury

#endif  // JURYOPT_UTIL_RNG_H_
