#ifndef JURYOPT_UTIL_POISSON_BINOMIAL_H_
#define JURYOPT_UTIL_POISSON_BINOMIAL_H_

#include <vector>

namespace jury {

/// \brief Distribution of the number of successes among independent,
/// non-identical Bernoulli trials.
///
/// This is the workhorse behind the exact Majority-Voting jury quality
/// (JQ(J, MV, alpha), §1 and §4.1 of the paper): conditioned on the true
/// answer, each juror votes correctly independently with probability `q_i`,
/// so the number of correct votes is Poisson-binomial. The O(n^2) dynamic
/// program below is exact; it replaces the O(n log n) divide-and-conquer of
/// Cao et al. [7] (documented substitution — n <= 500 everywhere we use it).
class PoissonBinomial {
 public:
  /// Builds the pmf over {0, ..., n} for success probabilities `probs`
  /// (each clamped to [0, 1]).
  explicit PoissonBinomial(const std::vector<double>& probs);

  /// Pr[X = k]; zero outside {0, ..., n}.
  double Pmf(int k) const;
  /// Pr[X >= k].
  double TailAtLeast(int k) const;
  /// Pr[X <= k].
  double CdfAtMost(int k) const;
  /// E[X] = sum of probs.
  double Mean() const { return mean_; }
  /// Number of trials n.
  int size() const { return static_cast<int>(pmf_.size()) - 1; }
  /// The full pmf vector, index k -> Pr[X = k].
  const std::vector<double>& pmf() const { return pmf_; }

 private:
  std::vector<double> pmf_;
  double mean_ = 0.0;
};

}  // namespace jury

#endif  // JURYOPT_UTIL_POISSON_BINOMIAL_H_
