#ifndef JURYOPT_UTIL_POISSON_BINOMIAL_H_
#define JURYOPT_UTIL_POISSON_BINOMIAL_H_

#include <cstddef>
#include <vector>

namespace jury {

/// \brief Distribution of the number of successes among independent,
/// non-identical Bernoulli trials.
///
/// This is the workhorse behind the exact Majority-Voting jury quality
/// (JQ(J, MV, alpha), §1 and §4.1 of the paper): conditioned on the true
/// answer, each juror votes correctly independently with probability `q_i`,
/// so the number of correct votes is Poisson-binomial. The O(n^2) dynamic
/// program below is exact; it replaces the O(n log n) divide-and-conquer of
/// Cao et al. [7] (documented substitution — n <= 500 everywhere we use it).
class PoissonBinomial {
 public:
  /// Builds the pmf over {0, ..., n} for success probabilities `probs`
  /// (each clamped to [0, 1]).
  explicit PoissonBinomial(const std::vector<double>& probs);

  /// Appends one Bernoulli(p) trial in O(n): the in-place convolution step
  /// of the constructor. Building a distribution by successive `AddTrial`
  /// calls is bit-identical to the batch constructor.
  void AddTrial(double p);

  /// Appends `count` trials, bit-identical to calling `AddTrial` on each
  /// element of `probs` in order, but with one reservation and a flat
  /// doubly-nested loop over contiguous storage instead of per-trial
  /// push_back / function-call overhead. This is the construction kernel;
  /// the constructor delegates to it.
  void AddTrialBatch(const double* probs, std::size_t count);

  /// \brief Batched candidate evaluation — the greedy-scan kernel.
  ///
  /// For each candidate probability `probs[j]`, computes tail and/or cdf
  /// queries of the *hypothetical* distribution X + Bernoulli(probs[j])
  /// without mutating this one:
  ///
  ///   tails[j] = Pr[X + Bern(p_j) >= tail_k]
  ///   cdfs[j]  = Pr[X + Bern(p_j) <= cdf_k]
  ///
  /// Either output may be null to skip that query. Bit-identical to
  /// `{copy; copy.AddTrial(probs[j]); copy.TailAtLeast(tail_k);
  /// copy.CdfAtMost(cdf_k)}` per candidate: the convolution terms and the
  /// cumulative summation order (descending for tails, ascending for
  /// cdfs, with the same clamping points) are replicated exactly. The
  /// structure-of-arrays layout — candidate probabilities and accumulators
  /// in contiguous thread-local scratch (reused across calls), the
  /// committed pmf entries hoisted to scalars in the outer loop — makes
  /// the inner loop over candidates auto-vectorizable with no
  /// per-candidate dispatch, copies, or steady-state allocation.
  void EvaluateBatch(const double* probs, std::size_t count, int tail_k,
                     int cdf_k, double* tails, double* cdfs) const;

  /// \brief Batched remove-candidate evaluation — the remove fold of the
  /// unified move scan.
  ///
  /// For each candidate probability `probs[j]` (a trial previously folded
  /// in), computes tail and/or cdf queries of the hypothetical
  /// distribution with that one trial deconvolved out, without mutating
  /// this one:
  ///
  ///   tails[j] = Pr[X - Bern(p_j) >= tail_k]
  ///   cdfs[j]  = Pr[X - Bern(p_j) <= cdf_k]
  ///
  /// Either output may be null to skip that query. Bit-identical to
  /// `{copy; copy.RemoveTrial(probs[j]); copy.TailAtLeast(tail_k);
  /// copy.CdfAtMost(cdf_k)}` per candidate: the same regime-split
  /// recurrences, per-entry clamps, and cumulative summation orders.
  /// Requires at least one trial. Runs on the runtime-dispatched
  /// `remove_query` kernel (util/simd_dispatch.h) — scalar reference or
  /// AVX2, selected once at startup, all levels bit-identical.
  void EvaluateRemoveBatch(const double* probs, std::size_t count,
                           int tail_k, int cdf_k, double* tails,
                           double* cdfs) const;

  /// Removes one Bernoulli(p) trial in O(n) by deconvolution. `p` must be
  /// (the clamped value of) a probability previously folded in; the pmf is
  /// otherwise meaningless. Numerically stable in both regimes: the forward
  /// recurrence divides by 1-p (used when p < 1/2) and the backward
  /// recurrence divides by p (used when p >= 1/2), so the error gain per
  /// step, min(p, 1-p) / max(p, 1-p), never exceeds 1. The degenerate
  /// trials p = 0 and p = 1 invert exactly (identity and shift).
  void RemoveTrial(double p);

  /// Pr[X = k]; zero outside {0, ..., n}.
  double Pmf(int k) const;
  /// Pr[X >= k]. O(1) via the cached suffix sums; the first query after an
  /// `AddTrial`/`RemoveTrial` rebuilds the cache in one O(n) pass.
  double TailAtLeast(int k) const;
  /// Pr[X <= k]. O(1) via the cached prefix sums (same rebuild policy).
  double CdfAtMost(int k) const;
  /// E[X] = sum of probs.
  double Mean() const { return mean_; }
  /// Number of trials n.
  int size() const { return static_cast<int>(pmf_.size()) - 1; }
  /// The full pmf vector, index k -> Pr[X = k].
  const std::vector<double>& pmf() const { return pmf_; }

 private:
  /// Rebuilds `prefix_`/`suffix_` when a trial update invalidated them.
  /// Solver sessions call `TailAtLeast` + `CdfAtMost` once per staged
  /// move, so the pair costs one O(n) pass instead of two O(n) sums.
  void RefreshCumulative() const;

  std::vector<double> pmf_;
  double mean_ = 0.0;

  // Cumulative caches: prefix_[k] = Pr[X <= k] (summed from below),
  // suffix_[k] = Pr[X >= k] (summed from above); both clamped to <= 1.
  // Invalidated by AddTrial/RemoveTrial, rebuilt lazily on first query.
  mutable std::vector<double> prefix_;
  mutable std::vector<double> suffix_;
  mutable bool cumulative_valid_ = false;
};

}  // namespace jury

#endif  // JURYOPT_UTIL_POISSON_BINOMIAL_H_
