#ifndef JURYOPT_UTIL_SIMD_KERNELS_INL_H_
#define JURYOPT_UTIL_SIMD_KERNELS_INL_H_

// Shared per-candidate scalar bodies of the dispatched kernels (see
// simd_dispatch.h for the contracts). The scalar kernel table is a loop
// over these; the AVX2 table reuses them for candidates its vector paths
// do not cover (b == 0 keys, degenerate p in {0, 1}, sub-block tails), so
// every level agrees with the reference arithmetic by construction.

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

namespace jury::simd::internal {

// The canonical positive-mass accumulation order: 0.5 * g[0] plus EIGHT
// interleaved partial sums over g[1..ns] (chain r takes the keys with
// (key - 1) % 8 == r), combined pairwise as
// ((s0+s1)+(s2+s3)) + ((s4+s5)+(s6+s7)). Every mass consumer —
// `BucketKeyDistribution::PositiveMass`, the fused convolve/deconvolve
// folds, and both kernel tables — uses exactly this order. Eight chains
// break the loop-carried add-latency bound (one add per key) that a
// single running sum imposes, letting the scalar build's autovectorizer
// and the AVX2 kernel (two 4-lane accumulators, contiguous loads, one
// independent IEEE chain per lane) both run at load/ALU throughput —
// while every level still matches the scalar reference bit for bit. The
// order is a fixed property of the contract, not of the dispatch level.
inline constexpr std::size_t kMassChains = 8;

/// Combines the eight chain sums in the canonical pairwise order.
inline double CombineMassChains(const double* s) {
  return ((s[0] + s[1]) + (s[2] + s[3])) + ((s[4] + s[5]) + (s[6] + s[7]));
}

/// Positive mass of the committed key pmf `f` (indexed key + span):
/// `BucketKeyDistribution::PositiveMass` verbatim.
inline double CommittedMass(const double* f, std::int64_t s) {
  const double* g1 = f + s + 1;  // key 1
  double ch[kMassChains] = {0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0};
  std::int64_t k = 0;
  for (; k + 8 <= s; k += 8) {
    ch[0] += g1[k];
    ch[1] += g1[k + 1];
    ch[2] += g1[k + 2];
    ch[3] += g1[k + 3];
    ch[4] += g1[k + 4];
    ch[5] += g1[k + 5];
    ch[6] += g1[k + 6];
    ch[7] += g1[k + 7];
  }
  for (; k < s; ++k) ch[k & 7] += g1[k];
  return 0.5 * f[static_cast<std::size_t>(s)] + CombineMassChains(ch);
}

/// One candidate of `convolve_mass` over a *zero-padded* pmf: `center`
/// points at key 0 of a buffer where every index in [-(b), s + 2b] is
/// readable (committed entries inside [-s, s], exact 0.0 outside — the
/// padding stands in for the scalar bounds checks; adding a zero term is
/// bit-neutral for the masses involved). Computes the positive mass of
/// the convolution with {+b: q, -b: 1-q},
///   g[key] = center[key - b] * q + center[key + b] * (1 - q),
/// in the canonical interleaved order. Requires `b >= 1`.
inline double ConvolveMassOnePadded(const double* center, std::int64_t s,
                                    std::int64_t b, double q) {
  const double omq = 1.0 - q;
  const std::int64_t n = s + b;  // keys 1..n carry mass
  const double* lo = center + 1 - b;
  const double* hi = center + 1 + b;
  double ch[kMassChains] = {0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0};
  std::int64_t k = 0;
  for (; k + 8 <= n; k += 8) {
    ch[0] += lo[k] * q + hi[k] * omq;
    ch[1] += lo[k + 1] * q + hi[k + 1] * omq;
    ch[2] += lo[k + 2] * q + hi[k + 2] * omq;
    ch[3] += lo[k + 3] * q + hi[k + 3] * omq;
    ch[4] += lo[k + 4] * q + hi[k + 4] * omq;
    ch[5] += lo[k + 5] * q + hi[k + 5] * omq;
    ch[6] += lo[k + 6] * q + hi[k + 6] * omq;
    ch[7] += lo[k + 7] * q + hi[k + 7] * omq;
  }
  for (; k < n; ++k) ch[k & 7] += lo[k] * q + hi[k] * omq;
  const double g0 = center[-b] * q + center[b] * omq;
  return 0.5 * g0 + CombineMassChains(ch);
}

/// Bounds-checked variant for candidates whose bucket is too large to pad
/// for (b beyond the batch padding cap): identical operation sequence,
/// with out-of-range reads returning the same exact 0.0 the padding
/// holds, so the two variants agree bit for bit wherever both apply.
inline double ConvolveMassOneGeneric(const double* f, std::int64_t s,
                                     std::int64_t b, double q) {
  const double omq = 1.0 - q;
  const std::int64_t n = s + b;
  const auto at = [&](std::int64_t key) {
    return (key >= -s && key <= s) ? f[static_cast<std::size_t>(key + s)]
                                   : 0.0;
  };
  double ch[kMassChains] = {0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0};
  for (std::int64_t k = 0; k < n; ++k) {
    const std::int64_t key = k + 1;
    ch[k & 7] += at(key - b) * q + at(key + b) * omq;
  }
  const double g0 = at(-b) * q + at(b) * omq;
  return 0.5 * g0 + CombineMassChains(ch);
}

/// Shared batch driver for the `convolve_mass` kernels: computes the
/// padding cap, stages `f` once into a zero-padded thread-local buffer
/// (indices the candidate bodies can form span [-max_b, s + 2 max_b]
/// around key 0), resolves b == 0 candidates to the lazily-computed
/// committed mass and over-cap candidates to the bounds-checked generic
/// body, and routes the rest through `body(center, s, b, q)` — the only
/// piece that differs between dispatch levels. Keeping the geometry in
/// one place is what keeps the levels' bit-identity structural.
template <typename PerCandidate>
inline void ConvolveMassBatch(const double* f, std::int64_t span,
                              const std::int64_t* bs, const double* qs,
                              std::size_t count, double* out,
                              const PerCandidate& body) {
  const std::int64_t s = span;
  // Padding cap: past this a candidate's zero-padding would balloon the
  // buffer, so it takes the bounds-checked body (bit-identical anyway).
  const std::int64_t b_cap = 2 * s + 64;
  std::int64_t max_b = 0;
  for (std::size_t j = 0; j < count; ++j) {
    if (bs[j] >= 1 && bs[j] <= b_cap) max_b = std::max(max_b, bs[j]);
  }
  static thread_local std::vector<double> padded;
  const double* center = nullptr;
  if (max_b > 0) {
    const std::size_t lo_pad = static_cast<std::size_t>(max_b);
    const std::size_t hi_pad = static_cast<std::size_t>(2 * max_b);
    const std::size_t committed_len = static_cast<std::size_t>(2 * s + 1);
    padded.assign(lo_pad + committed_len + hi_pad, 0.0);
    std::copy(f, f + committed_len, padded.data() + lo_pad);
    center = padded.data() + lo_pad + static_cast<std::size_t>(s);
  }
  bool have_committed = false;
  double committed_mass = 0.0;  // lazy: only b == 0 candidates need it
  for (std::size_t j = 0; j < count; ++j) {
    const std::int64_t b = bs[j];
    if (b == 0) {
      // Convolve(0, q) is an exact no-op: the committed mass verbatim.
      if (!have_committed) {
        committed_mass = CommittedMass(f, span);
        have_committed = true;
      }
      out[j] = committed_mass;
    } else if (b <= b_cap) {
      out[j] = body(center, s, b, qs[j]);
    } else {
      out[j] = ConvolveMassOneGeneric(f, s, b, qs[j]);
    }
  }
}

/// One candidate of `deconvolve_mass` over a zero-padded row buffer:
/// removes the worker `(b >= 1, q in [0.5, 1])` from the committed key pmf
/// `f` (2s + 1 entries) by the backward recurrence of
/// `BucketKeyDistribution::Deconvolve` and returns the positive mass of
/// the shrunk (span s - b) result — `{copy; copy.Deconvolve(b, q);
/// copy.PositiveMass()}` bit for bit.
///
/// `row` must hold 2s + 1 entries with the top 2b zeroed by the driver.
/// In 0-based indices (idx = j + ns, ns = s - b) the recurrence reads
///   row[idx] = (f[idx + 2b] - (1 - q) * row[idx + 2b]) / q
/// descending from idx = 2ns: the `above` term of the bounds-checked
/// original lands in the zeroed pad whenever idx + 2b > 2ns, and
/// subtracting `(1 - q) * 0.0` is the exact arithmetic the branch's
/// `above = 0.0` produces — the padding replaces the branch bit-neutrally.
/// Entries exactly 2b apart are the row's only dependence, which is what
/// lets the vector bodies run descending lane-width blocks (legal once
/// 2b >= lane width) over the very same element arithmetic.
inline double DeconvolveMassOneRow(const double* f, std::int64_t s,
                                   std::int64_t b, double q, double* row) {
  const double omq = 1.0 - q;
  const std::int64_t ns = s - b;
  for (std::int64_t idx = 2 * ns; idx >= 0; --idx) {
    row[idx] = (f[idx + 2 * b] - omq * row[idx + 2 * b]) / q;
  }
  return CommittedMass(row, ns);
}

/// Shared batch driver for the `deconvolve_mass` kernels: stages one
/// thread-local row buffer of fixed length 2 span + 1, zeroes each
/// candidate's top-2b pad, resolves b == 0 candidates to the
/// lazily-computed committed mass (Deconvolve(0, q) is an exact no-op),
/// and routes the rest through `body(f, s, b, q, row)` — the only piece
/// that differs between dispatch levels. Candidates must satisfy
/// `0 <= bs[j] <= span` (checked by the `BucketKeyDistribution` wrappers).
template <typename PerCandidate>
inline void DeconvolveMassBatch(const double* f, std::int64_t span,
                                const std::int64_t* bs, const double* qs,
                                std::size_t count, double* out,
                                const PerCandidate& body) {
  static thread_local std::vector<double> row;
  row.resize(static_cast<std::size_t>(2 * span + 1));
  bool have_committed = false;
  double committed_mass = 0.0;  // lazy: only b == 0 candidates need it
  for (std::size_t j = 0; j < count; ++j) {
    const std::int64_t b = bs[j];
    if (b == 0) {
      if (!have_committed) {
        committed_mass = CommittedMass(f, span);
        have_committed = true;
      }
      out[j] = committed_mass;
      continue;
    }
    const std::int64_t ns = span - b;
    std::fill(row.data() + 2 * ns + 1, row.data() + 2 * span + 1, 0.0);
    out[j] = body(f, span, b, qs[j], row.data());
  }
}

/// Writes the deconvolution of one Bernoulli(p) trial out of the n-trial
/// Poisson-binomial pmf `f` (n + 1 entries) into `g` (n entries):
/// `PoissonBinomial::RemoveTrial` verbatim — the same regime split, the
/// same unclamped recurrence carry with per-entry [0, 1] clamps on the
/// stored values, and the exact inverses for p in {0, 1}. `p` must be
/// pre-clamped to [0, 1] and `n >= 1`.
inline void RemoveTrialRow(const double* f, int n, double p, double* g) {
  const std::size_t m = static_cast<std::size_t>(n);
  if (p == 0.0) {
    for (std::size_t k = 0; k < m; ++k) g[k] = f[k];  // identity
  } else if (p == 1.0) {
    for (std::size_t k = 0; k < m; ++k) g[k] = f[k + 1];  // pure shift
  } else if (p < 0.5) {
    // Forward recurrence g[k] = (f[k] - p g[k-1]) / (1-p); the carried
    // value stays unclamped, the stored one is clamped — as RemoveTrial.
    double prev = 0.0;
    for (std::size_t k = 0; k < m; ++k) {
      prev = (f[k] - p * prev) / (1.0 - p);
      g[k] = std::min(std::max(prev, 0.0), 1.0);
    }
  } else {
    // Backward recurrence g[k-1] = (f[k] - (1-p) g[k]) / p.
    double next = 0.0;
    for (std::size_t k = m; k > 0; --k) {
      next = (f[k] - (1.0 - p) * next) / p;
      g[k - 1] = std::min(std::max(next, 0.0), 1.0);
    }
  }
}

/// `TailAtLeast(k)` over a raw pmf row of `entries` entries (trial count
/// entries - 1): the descending accumulation order and final min(., 1)
/// clamp of `PoissonBinomial::RefreshCumulative`.
inline double TailFromRow(const double* g, std::size_t entries, int k) {
  if (k <= 0) return 1.0;
  if (k > static_cast<int>(entries) - 1) return 0.0;
  double acc = 0.0;
  for (std::size_t i = entries; i > static_cast<std::size_t>(k); --i) {
    acc += g[i - 1];
  }
  return std::min(acc, 1.0);
}

/// `CdfAtMost(k)` over a raw pmf row: ascending accumulation, min(., 1).
inline double CdfFromRow(const double* g, std::size_t entries, int k) {
  if (k < 0) return 0.0;
  const std::size_t kk =
      std::min(static_cast<std::size_t>(k), entries - 1);
  double acc = 0.0;
  for (std::size_t i = 0; i <= kk; ++i) acc += g[i];
  return std::min(acc, 1.0);
}

/// `hash_lanes` reference body over a stride range: lane `l` absorbs the
/// l-th little-endian u64 of each 64-byte stride as
/// `lane = rotl(lane, 29) ^ word`. The vector tables run the same update
/// on the same stride/lane layout, so the lane values are identical at
/// every level (pure integer arithmetic).
inline void HashLanesRange(const unsigned char* data,
                           std::size_t stride_begin, std::size_t stride_end,
                           std::uint64_t* lanes) {
  for (std::size_t s = stride_begin; s < stride_end; ++s) {
    const unsigned char* stride = data + 64 * s;
    for (int l = 0; l < 8; ++l) {
      std::uint64_t word;
      std::memcpy(&word, stride + 8 * l, sizeof(word));
      lanes[l] = std::rotl(lanes[l], 29) ^ word;
    }
  }
}

/// `audit_pool_columns` reference body over an index range. Branch-free
/// accumulate; the ordered compares double as NaN checks, and
/// `max(q, 1 - q)` is exactly `NormalizedQuality(q)` for q in [0, 1].
inline std::uint64_t AuditPoolColumnsRange(const double* quality,
                                           const double* cost,
                                           const double* norm_quality,
                                           const double* log_odds,
                                           std::size_t begin,
                                           std::size_t end) {
  std::uint64_t bad = 0;
  for (std::size_t i = begin; i < end; ++i) {
    const double q = quality[i];
    const double c = cost[i];
    const double lo = log_odds[i];
    bad |= static_cast<std::uint64_t>(!(q >= 0.0 && q <= 1.0));
    bad |= static_cast<std::uint64_t>(
        !(c >= 0.0 && c <= std::numeric_limits<double>::max()));
    bad |= static_cast<std::uint64_t>(
        norm_quality[i] != std::max(q, 1.0 - q));
    bad |= static_cast<std::uint64_t>(
        !(lo >= std::numeric_limits<double>::lowest() &&
          lo <= std::numeric_limits<double>::max()));
  }
  return bad;
}

/// `audit_monotone_u64` reference body over a pair range: nonzero iff
/// `values[i + 1] < values[i]` for some `i in [begin, end)`.
inline std::uint64_t AuditMonotoneU64Range(const std::uint64_t* values,
                                           std::size_t begin,
                                           std::size_t end) {
  std::uint64_t bad = 0;
  for (std::size_t i = begin; i < end; ++i) {
    bad |= static_cast<std::uint64_t>(values[i + 1] < values[i]);
  }
  return bad;
}

}  // namespace jury::simd::internal

#endif  // JURYOPT_UTIL_SIMD_KERNELS_INL_H_
