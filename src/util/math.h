#ifndef JURYOPT_UTIL_MATH_H_
#define JURYOPT_UTIL_MATH_H_

#include <vector>

namespace jury {

/// \brief Numerical helpers shared across the JQ machinery.
///
/// The key quantity throughout the paper is the log-odds transform
/// `phi(q) = ln(q / (1 - q))` (written `φ(q_i)` in §4.2): the Bayesian-voting
/// decision statistic `R(V)` is a signed sum of per-worker `phi` values.

/// Log-odds `ln(q / (1-q))`. Requires q in (0, 1).
double LogOdds(double q);

/// Inverse of `LogOdds`: the logistic sigmoid `1 / (1 + e^{-x})`.
double Sigmoid(double x);

/// Numerically stable `ln(e^a + e^b)`.
double LogAdd(double a, double b);

/// Numerically stable `ln(sum_i e^{x_i})`. Returns -inf for empty input.
double LogSumExp(const std::vector<double>& xs);

/// Clamps `x` into [lo, hi].
double Clamp(double x, double lo, double hi);

/// True when |a - b| <= tol (absolute tolerance).
bool NearlyEqual(double a, double b, double tol);

/// Exact binomial coefficient as double (n <= 60 stays exact in 53 bits for
/// the sizes used here). Returns 0 for k < 0 or k > n.
double BinomialCoefficient(int n, int k);

}  // namespace jury

#endif  // JURYOPT_UTIL_MATH_H_
