#ifndef JURYOPT_UTIL_CANCELLATION_H_
#define JURYOPT_UTIL_CANCELLATION_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace jury {

/// Why a cooperative check site told its strand to stop. Ordered by
/// precedence for aggregation across strands: a wall-clock or explicit
/// stop outranks a deterministic work cap when both fire in one solve.
enum class StopReason : unsigned char {
  kNone = 0,
  kWorkLimit,  ///< deterministic `max_work_units` budget consumed
  kDeadline,   ///< wall-clock deadline passed
  kCancelled,  ///< explicit `CancelToken::RequestCancel`
};

/// Stable wire name ("", "work-limit", "deadline", "cancelled") — what
/// `SolveReport.termination_reason` carries.
const char* StopReasonName(StopReason reason);

/// \brief Cooperative cancellation signal: a relaxed-atomic flag plus an
/// optional wall-clock deadline, optionally chained to a parent token.
///
/// Producers call `RequestCancel()` (any thread, any time); consumers
/// poll `Check()` at cheap, well-defined boundaries — an annealing step,
/// a greedy round, an exhaustive shard, a B&B node, a budget-table row —
/// and wind down by *returning their best-so-far result*, never by
/// unwinding. Nothing blocks on a token and nothing is preempted: a
/// region that has started a shard finishes that shard's bounded work,
/// which is what lets nested scheduler regions drain instead of
/// orphaning tasks.
///
/// The parent link exists for the serving seam: a request may carry a
/// caller-owned token *and* a per-solve deadline; the solve layer builds
/// a deadline token chained to the caller's so either source stops the
/// solve. Chains are read-only after construction, so polling is safe
/// from any number of threads.
class CancelToken {
 public:
  CancelToken() = default;

  /// Token that expires `deadline_ms` from now (<= 0 = no deadline),
  /// chained to `parent` (may be nullptr).
  explicit CancelToken(double deadline_ms,
                       const CancelToken* parent = nullptr);

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Flips the flag. Idempotent; safe from any thread, including a
  /// signal-free watchdog while solves are polling.
  void RequestCancel() { cancelled_.store(true, std::memory_order_relaxed); }

  bool cancel_requested() const {
    return cancelled_.load(std::memory_order_relaxed);
  }
  bool has_deadline() const { return has_deadline_; }

  /// Chains `parent` (may be nullptr): this token reports cancelled /
  /// expired whenever the parent does. Must be set before the token is
  /// shared with other threads.
  void LinkParent(const CancelToken* parent) { parent_ = parent; }
  const CancelToken* parent() const { return parent_; }

  /// Cheap poll: kCancelled if the flag (or any ancestor's) is set,
  /// kDeadline if a deadline has passed, kNone otherwise. Reads the
  /// clock only when a deadline exists; call sites that tick per work
  /// unit should go through `WorkGovernor`, which rate-limits even that.
  StopReason Check() const {
    if (cancelled_.load(std::memory_order_relaxed)) {
      return StopReason::kCancelled;
    }
    if (has_deadline_ &&
        std::chrono::steady_clock::now() >= deadline_) {
      return StopReason::kDeadline;
    }
    if (parent_ != nullptr) return parent_->Check();
    return StopReason::kNone;
  }

 private:
  std::atomic<bool> cancelled_{false};
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};
  const CancelToken* parent_ = nullptr;
};

/// \brief What a solver reports back about how it ended: the first (by
/// precedence) stop reason any strand hit, and the work units the whole
/// solve completed. Aggregated serially in strand order, so the value is
/// deterministic whenever the stop reasons themselves are (work-limit
/// stops always; deadline/cancel stops report nondeterministic
/// `work_units` by nature).
struct TerminationInfo {
  StopReason reason = StopReason::kNone;
  std::uint64_t work_units = 0;

  bool terminated_early() const { return reason != StopReason::kNone; }

  /// Folds one strand's outcome in (serial call sites only). Precedence:
  /// the enum order — cancelled > deadline > work-limit > none.
  void MergeStrand(StopReason strand_reason, std::uint64_t strand_work) {
    if (static_cast<unsigned char>(strand_reason) >
        static_cast<unsigned char>(reason)) {
      reason = strand_reason;
    }
    work_units += strand_work;
  }
  /// Folds a nested solve's aggregate in (same precedence rule).
  void Merge(const TerminationInfo& other) {
    MergeStrand(other.reason, other.work_units);
  }
};

/// \brief Per-strand check-site driver: counts work units and decides
/// when the strand must stop. A value type — each parallel strand (each
/// annealing chain, each Gray-code shard, each scan) owns its own
/// governor, so ticking is single-threaded and free of contention.
///
/// Two stop sources with different contracts:
///  * `max_work_units` (0 = unlimited) is checked *exactly*, every tick,
///    against this strand's own counter — a pure function of the
///    strand's work sequence, hence bit-deterministic across thread
///    counts, SIMD levels, and scheduling. The budget is per strand by
///    design: strand structure is itself a pure function of the request.
///  * the token's flag is polled every tick (one relaxed load), but the
///    *clock* is probed only every `kDeadlineProbePeriod` ticks — check
///    sites fire millions of times per second and a syscall-backed
///    `now()` per tick would dwarf the work being bounded.
///
/// Once stopped, a governor stays stopped (`Tick` keeps counting work so
/// `work_done()` stays truthful for the drain path, but the reason is
/// latched).
class WorkGovernor {
 public:
  /// Clock probes per `Tick` when a deadline exists: every 64th tick.
  static constexpr std::uint64_t kDeadlineProbePeriod = 64;

  /// Inert governor: `Tick` only counts.
  WorkGovernor() = default;

  WorkGovernor(const CancelToken* token, std::uint64_t max_work_units)
      : token_(token), budget_(max_work_units) {
    // A flag-only chain never reads the clock in Check(), so probing it
    // every tick is already cheap; any deadline in the chain keeps the
    // rate limiter on.
    if (token_ != nullptr) probe_every_tick_ = !HasDeadlineInChain(token_);
  }

  /// Consumes `n` work units, then reports whether the strand must stop
  /// (kNone = keep going). Call at the top of the bounded unit so a
  /// stopped strand never starts the next unit.
  StopReason Tick(std::uint64_t n = 1) {
    done_ += n;
    if (reason_ != StopReason::kNone) return reason_;
    if (budget_ != 0 && done_ >= budget_) {
      reason_ = StopReason::kWorkLimit;
      return reason_;
    }
    if (token_ != nullptr) {
      if (token_->cancel_requested()) {
        reason_ = StopReason::kCancelled;
        return reason_;
      }
      if (probe_every_tick_ || ++since_probe_ >= kDeadlineProbePeriod) {
        since_probe_ = 0;
        const StopReason checked = token_->Check();
        if (checked != StopReason::kNone) reason_ = checked;
      }
    }
    return reason_;
  }

  bool stopped() const { return reason_ != StopReason::kNone; }
  StopReason reason() const { return reason_; }
  std::uint64_t work_done() const { return done_; }
  bool active() const { return token_ != nullptr || budget_ != 0; }

 private:
  static bool HasDeadlineInChain(const CancelToken* token);

  const CancelToken* token_ = nullptr;
  std::uint64_t budget_ = 0;
  std::uint64_t done_ = 0;
  std::uint64_t since_probe_ = 0;
  StopReason reason_ = StopReason::kNone;
  bool probe_every_tick_ = false;
};

}  // namespace jury

#endif  // JURYOPT_UTIL_CANCELLATION_H_
