#include "util/math.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace jury {

double LogOdds(double q) {
  JURY_CHECK(q > 0.0 && q < 1.0) << "LogOdds requires q in (0,1), got " << q;
  return std::log(q / (1.0 - q));
}

double Sigmoid(double x) {
  if (x >= 0.0) {
    const double e = std::exp(-x);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(x);
  return e / (1.0 + e);
}

double LogAdd(double a, double b) {
  if (a == -std::numeric_limits<double>::infinity()) return b;
  if (b == -std::numeric_limits<double>::infinity()) return a;
  const double m = std::max(a, b);
  return m + std::log1p(std::exp(std::min(a, b) - m));
}

double LogSumExp(const std::vector<double>& xs) {
  double acc = -std::numeric_limits<double>::infinity();
  for (double x : xs) acc = LogAdd(acc, x);
  return acc;
}

double Clamp(double x, double lo, double hi) {
  JURY_CHECK_LE(lo, hi);
  return std::min(std::max(x, lo), hi);
}

bool NearlyEqual(double a, double b, double tol) {
  return std::fabs(a - b) <= tol;
}

double BinomialCoefficient(int n, int k) {
  if (k < 0 || k > n) return 0.0;
  k = std::min(k, n - k);
  double acc = 1.0;
  for (int i = 1; i <= k; ++i) {
    acc = acc * static_cast<double>(n - k + i) / static_cast<double>(i);
  }
  return acc;
}

}  // namespace jury
