#include "model/prior.h"

namespace jury {

Status ValidateAlpha(double alpha) {
  if (!(alpha >= 0.0 && alpha <= 1.0)) {
    return Status::InvalidArgument("prior alpha outside [0,1]");
  }
  return Status::OK();
}

bool IsUninformativeAlpha(double alpha) { return alpha == 0.5; }

}  // namespace jury
