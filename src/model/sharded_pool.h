#ifndef JURYOPT_MODEL_SHARDED_POOL_H_
#define JURYOPT_MODEL_SHARDED_POOL_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "model/worker_pool_view.h"

namespace jury {

/// Tuning knobs for `ShardedWorkerPool`.
struct ShardedPoolOptions {
  /// Workers per shard (the final shard may be ragged). Chosen so a shard's
  /// columns stay L2-resident during slate builds; 1024 keeps the shard
  /// count at N/1024 which is what the frontier scan iterates per round.
  std::size_t shard_size = 1024;
  /// Slate length: how many workers per shard (per key column) are kept
  /// pre-sorted by the admissible marginal-gain key. Frontier scans may use
  /// any prefix of this.
  std::size_t slate_k = 64;
};

/// \brief Fixed-size shards over a `WorkerPoolView`, each carrying summary
/// statistics that let scan-heavy solvers touch O(shards * k) candidates
/// instead of O(N) rows.
///
/// Layout: shard `s` covers view indices `[s * shard_size, min((s+1) *
/// shard_size, N))` — shards partition the index space, so a shard never
/// re-orders or copies columns; its summaries are just precomputed
/// aggregates over its contiguous slice:
///
///   - **cost bounds** (`min_cost`, `max_cost`): a shard whose `min_cost`
///     exceeds the remaining budget holds no eligible candidate and is
///     skipped whole.
///   - **quality histogram** (16 equal-width bins over [0, 1]): a coarse
///     shape summary for diagnostics and slate sizing.
///   - **top-k slates** by the two monotone score keys
///     (`JqObjective::ScoreMonotoneKey`): indices sorted by normalized
///     quality (BV objectives, paper Lemma 2) and by raw quality (MV),
///     descending, ties broken by ascending index (stable). The slate is
///     the admissible frontier: for a monotone objective, every pruned
///     (non-slate) worker's marginal gain is bounded by the gain of any
///     scanned worker with key >= the shard's fence key.
///   - **fence keys**: the smallest key in each full slate. Every non-slate
///     member of the shard has key <= the fence, which is what the
///     frontier's exactness proof leans on.
///   - **epoch tag**: bumped each time the shard is rebuilt, so cached
///     per-shard artifacts can detect staleness after churn.
///
/// Churn: `ApplyDelta` rebuilds only the shards containing changed indices
/// (O(changed-shards * shard_size * log k)), not the whole pool — the
/// epoch tags of untouched shards are unchanged.
///
/// The pool aliases the view's columns; the view must outlive it. Building
/// bumps the `pool.shards_built` counter once per shard, `ApplyDelta` bumps
/// `pool.shard_rebuilds` once per rebuilt shard.
class ShardedWorkerPool {
 public:
  /// Which precomputed slate/fence a consumer wants. Mirrors
  /// `JqObjective::ScoreMonotoneKey` (minus `kNone`).
  enum class KeyColumn { kNormQuality, kQuality };

  static constexpr std::size_t kHistogramBins = 16;

  struct Shard {
    std::size_t begin = 0;
    std::size_t end = 0;
    std::uint64_t epoch = 0;
    double min_cost = 0.0;
    double max_cost = 0.0;
    std::array<std::uint32_t, kHistogramBins> quality_histogram{};
    /// View indices, key-descending, ties index-ascending. Length
    /// min(slate_k, end - begin).
    std::vector<std::size_t> top_by_norm_quality;
    std::vector<std::size_t> top_by_quality;
    /// Smallest key in the corresponding full slate when the slate is a
    /// strict subset of the shard (an upper bound on every pruned member's
    /// key); -infinity when the slate covers the whole shard (nothing is
    /// ever pruned).
    double fence_norm_quality = 0.0;
    double fence_quality = 0.0;

    std::size_t population() const { return end - begin; }
  };

  explicit ShardedWorkerPool(const WorkerPoolView* view,
                             ShardedPoolOptions options = {});

  /// Rebase copy: clones `other`'s shard summaries (including their epoch
  /// tags) but aliases `view` instead of `other`'s view. This is the churn
  /// fast path — `PoolPlanContext::ApplyPoolDelta` copies the current
  /// pool onto the post-churn view, then `ApplyDelta`s exactly the changed
  /// indices, so only the touched shards pay a rebuild while the old pool
  /// keeps serving in-flight solves on its own view. `view` must have the
  /// same size as `other.view()` and must outlive this pool.
  ShardedWorkerPool(const ShardedWorkerPool& other, const WorkerPoolView* view);

  /// Rebuilds exactly the shards containing an index in `changed_indices`
  /// (deduplicated internally; out-of-range indices are ignored). Call
  /// after the underlying columns changed in place — e.g. worker
  /// re-estimation — to refresh summaries without touching other shards.
  void ApplyDelta(std::span<const std::size_t> changed_indices);

  const WorkerPoolView& view() const { return *view_; }
  const ShardedPoolOptions& options() const { return options_; }
  std::size_t size() const { return view_->size(); }
  std::size_t num_shards() const { return shards_.size(); }
  const Shard& shard(std::size_t s) const { return shards_[s]; }
  std::size_t shard_of(std::size_t index) const {
    return index / options_.shard_size;
  }

  const std::vector<std::size_t>& slate(const Shard& shard,
                                        KeyColumn key) const {
    return key == KeyColumn::kNormQuality ? shard.top_by_norm_quality
                                          : shard.top_by_quality;
  }
  double fence(const Shard& shard, KeyColumn key) const {
    return key == KeyColumn::kNormQuality ? shard.fence_norm_quality
                                          : shard.fence_quality;
  }
  /// The key column the slates of `key` are ordered by.
  std::span<const double> keys(KeyColumn key) const {
    return key == KeyColumn::kNormQuality ? view_->norm_quality()
                                          : view_->quality();
  }

 private:
  void RebuildShard(std::size_t s);

  const WorkerPoolView* view_;
  ShardedPoolOptions options_;
  std::vector<Shard> shards_;
};

}  // namespace jury

#endif  // JURYOPT_MODEL_SHARDED_POOL_H_
