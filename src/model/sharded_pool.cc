#include "model/sharded_pool.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"
#include "util/stats_registry.h"

namespace jury {
namespace {

StatsRegistry::Counter& g_shards_built = RegisterStatsCounter("pool.shards_built");
StatsRegistry::Counter& g_shard_rebuilds = RegisterStatsCounter("pool.shard_rebuilds");

/// Fills `slate` with the top-min(k, end-begin) indices of [begin, end) by
/// `keys`, key-descending with ascending-index ties (i.e. the stable
/// descending order), and returns the fence: the slate's smallest key when
/// candidates were pruned, -infinity when the slate covers the range.
double BuildSlate(std::span<const double> keys, std::size_t begin,
                  std::size_t end, std::size_t k,
                  std::vector<std::size_t>* slate) {
  const std::size_t population = end - begin;
  slate->resize(population);
  for (std::size_t i = 0; i < population; ++i) (*slate)[i] = begin + i;
  const auto key_desc = [keys](std::size_t a, std::size_t b) {
    if (keys[a] != keys[b]) return keys[a] > keys[b];
    return a < b;
  };
  if (k < population) {
    std::partial_sort(slate->begin(), slate->begin() + k, slate->end(),
                      key_desc);
    slate->resize(k);
    return keys[slate->back()];
  }
  std::sort(slate->begin(), slate->end(), key_desc);
  return -std::numeric_limits<double>::infinity();
}

}  // namespace

ShardedWorkerPool::ShardedWorkerPool(const WorkerPoolView* view,
                                     ShardedPoolOptions options)
    : view_(view), options_(options) {
  JURY_CHECK(view_ != nullptr) << "ShardedWorkerPool needs a view";
  if (options_.shard_size == 0) options_.shard_size = 1024;
  if (options_.slate_k == 0) options_.slate_k = 64;
  const std::size_t n = view_->size();
  const std::size_t num_shards =
      n == 0 ? 0 : (n + options_.shard_size - 1) / options_.shard_size;
  shards_.resize(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) {
    shards_[s].begin = s * options_.shard_size;
    shards_[s].end = std::min(n, (s + 1) * options_.shard_size);
    RebuildShard(s);
    g_shards_built.Increment();
  }
}

ShardedWorkerPool::ShardedWorkerPool(const ShardedWorkerPool& other,
                                     const WorkerPoolView* view)
    : view_(view), options_(other.options_), shards_(other.shards_) {
  JURY_CHECK(view_ != nullptr) << "ShardedWorkerPool needs a view";
  JURY_CHECK_EQ(view_->size(), other.view_->size())
      << "rebase view must cover the same index space";
}

void ShardedWorkerPool::ApplyDelta(std::span<const std::size_t> changed) {
  std::vector<std::size_t> dirty;
  dirty.reserve(changed.size());
  for (const std::size_t index : changed) {
    if (index < view_->size()) dirty.push_back(shard_of(index));
  }
  std::sort(dirty.begin(), dirty.end());
  dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());
  for (const std::size_t s : dirty) {
    RebuildShard(s);
    shards_[s].epoch++;
    g_shard_rebuilds.Increment();
  }
}

void ShardedWorkerPool::RebuildShard(std::size_t s) {
  Shard& shard = shards_[s];
  const std::span<const double> quality = view_->quality();
  const std::span<const double> cost = view_->cost();

  shard.min_cost = std::numeric_limits<double>::infinity();
  shard.max_cost = -std::numeric_limits<double>::infinity();
  shard.quality_histogram.fill(0);
  for (std::size_t i = shard.begin; i < shard.end; ++i) {
    shard.min_cost = std::min(shard.min_cost, cost[i]);
    shard.max_cost = std::max(shard.max_cost, cost[i]);
    // quality is validated into [0, 1]; the cast clamps 1.0 into the top
    // bin.
    const std::size_t bin = std::min<std::size_t>(
        kHistogramBins - 1,
        static_cast<std::size_t>(quality[i] * kHistogramBins));
    shard.quality_histogram[bin]++;
  }
  shard.fence_norm_quality =
      BuildSlate(view_->norm_quality(), shard.begin, shard.end,
                 options_.slate_k, &shard.top_by_norm_quality);
  shard.fence_quality = BuildSlate(quality, shard.begin, shard.end,
                                   options_.slate_k, &shard.top_by_quality);
}

}  // namespace jury
