#include "model/pool_snapshot.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <fstream>
#include <limits>
#include <utility>
#include <vector>

#include "model/worker_pool_view.h"
#include "util/fault_injection.h"
#include "util/scheduler.h"
#include "util/simd_dispatch.h"
#include "util/stats_registry.h"

namespace jury {
namespace {

StatsRegistry::Counter& g_snapshot_loads = RegisterStatsCounter("pool.snapshot_loads");

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x00000100000001b3ull;

std::uint64_t Fnv1a(const std::byte* data, std::size_t size) {
  std::uint64_t hash = kFnvOffset;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= static_cast<std::uint64_t>(std::to_integer<unsigned char>(data[i]));
    hash *= kFnvPrime;
  }
  return hash;
}

/// One checksum block: eight independent rotate-xor lanes over 64-byte
/// strides (`lane = rotl64(lane, 29) ^ word`, lane l seeded
/// `kFnvOffset + l`), folded FNV-style at the end, byte-wise FNV-1a for
/// the tail. Any flipped bit perturbs its lane — rotl and xor are
/// bijections — and therefore the fold, but unlike plain FNV-1a there is
/// no serial multiply chain and no multiply at all in the hot loop, so
/// the stride update is expressible in two integer vector ops and the
/// dispatched `hash_lanes` kernel (simd_dispatch.h) hashes at memory
/// bandwidth.
std::uint64_t BlockChecksum(const std::byte* data, std::size_t size) {
  std::uint64_t lanes[8];
  for (int l = 0; l < 8; ++l) {
    lanes[l] = kFnvOffset + static_cast<std::uint64_t>(l);
  }
  const std::size_t num_strides = size / 64;
  simd::Kernels().hash_lanes(reinterpret_cast<const unsigned char*>(data),
                             num_strides, lanes);
  std::uint64_t hash = kFnvOffset;
  for (int l = 0; l < 8; ++l) hash = (hash ^ lanes[l]) * kFnvPrime;
  for (std::size_t i = num_strides * 64; i < size; ++i) {
    hash ^= static_cast<std::uint64_t>(std::to_integer<unsigned char>(data[i]));
    hash *= kFnvPrime;
  }
  return hash;
}

/// Fixed block size for the payload checksum. Part of the wire format:
/// block boundaries fall every 4 MiB regardless of how many threads hash
/// them, so the checksum value is identical across thread counts.
constexpr std::size_t kChecksumBlockBytes = std::size_t{4} << 20;

/// The payload checksum: `BlockChecksum` over fixed 4 MiB blocks, block
/// hashes folded FNV-style in file order. The block structure makes the
/// verify pass embarrassingly parallel — a million-worker payload spreads
/// its blocks across the scheduler and verifies in the time one core
/// would need for a few blocks — while staying byte-deterministic.
std::uint64_t PayloadChecksum(const std::byte* data, std::size_t size) {
  const std::size_t num_blocks =
      (size + kChecksumBlockBytes - 1) / kChecksumBlockBytes;
  std::uint64_t hash = kFnvOffset;
  if (num_blocks <= 1) {
    if (num_blocks == 1) hash = (hash ^ BlockChecksum(data, size)) * kFnvPrime;
    return hash;
  }
  std::vector<std::uint64_t> block_hashes(num_blocks);
  // Capped at the resolved thread budget: on a single-core host (or
  // JURYOPT_THREADS=1) the cap is 1 and the shard loop runs inline, so
  // the serial path never pays scheduler overhead.
  Scheduler::GlobalParallelFor(
      0, num_blocks, 1,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t block = begin; block < end; ++block) {
          const std::size_t offset = block * kChecksumBlockBytes;
          const std::size_t bytes =
              std::min(kChecksumBlockBytes, size - offset);
          block_hashes[block] = BlockChecksum(data + offset, bytes);
        }
      },
      /*max_parallelism=*/ResolveThreadCount(0));
  for (const std::uint64_t block_hash : block_hashes) {
    hash = (hash ^ block_hash) * kFnvPrime;
  }
  return hash;
}

void PutU32(std::byte* dst, std::uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    dst[i] = static_cast<std::byte>((value >> (8 * i)) & 0xffu);
  }
}

void PutU64(std::byte* dst, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    dst[i] = static_cast<std::byte>((value >> (8 * i)) & 0xffu);
  }
}

std::uint32_t GetU32(const std::byte* src) {
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<std::uint32_t>(std::to_integer<unsigned char>(src[i]))
             << (8 * i);
  }
  return value;
}

std::uint64_t GetU64(const std::byte* src) {
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<std::uint64_t>(std::to_integer<unsigned char>(src[i]))
             << (8 * i);
  }
  return value;
}

/// True on the little-endian hosts the column pointers assume. The
/// endianness marker in the header pins the file byte order; this pins the
/// host's, so a big-endian build refuses the zero-copy path instead of
/// misreading doubles.
bool HostIsLittleEndian() {
  const std::uint32_t probe = 1;
  unsigned char first;
  std::memcpy(&first, &probe, 1);
  return first == 1;
}

}  // namespace

PoolSnapshot::PoolSnapshot(PoolSnapshot&& other) noexcept
    : map_base_(std::exchange(other.map_base_, nullptr)),
      map_bytes_(std::exchange(other.map_bytes_, 0)),
      owned_(std::move(other.owned_)),
      count_(std::exchange(other.count_, 0)),
      quality_(std::exchange(other.quality_, nullptr)),
      cost_(std::exchange(other.cost_, nullptr)),
      norm_quality_(std::exchange(other.norm_quality_, nullptr)),
      log_odds_(std::exchange(other.log_odds_, nullptr)),
      id_offsets_(std::exchange(other.id_offsets_, nullptr)),
      id_blob_(std::exchange(other.id_blob_, nullptr)) {}

PoolSnapshot& PoolSnapshot::operator=(PoolSnapshot&& other) noexcept {
  if (this != &other) {
    if (map_base_ != nullptr) ::munmap(map_base_, map_bytes_);
    map_base_ = std::exchange(other.map_base_, nullptr);
    map_bytes_ = std::exchange(other.map_bytes_, 0);
    owned_ = std::move(other.owned_);
    count_ = std::exchange(other.count_, 0);
    quality_ = std::exchange(other.quality_, nullptr);
    cost_ = std::exchange(other.cost_, nullptr);
    norm_quality_ = std::exchange(other.norm_quality_, nullptr);
    log_odds_ = std::exchange(other.log_odds_, nullptr);
    id_offsets_ = std::exchange(other.id_offsets_, nullptr);
    id_blob_ = std::exchange(other.id_blob_, nullptr);
  }
  return *this;
}

PoolSnapshot::~PoolSnapshot() {
  if (map_base_ != nullptr) ::munmap(map_base_, map_bytes_);
}

Status PoolSnapshot::Write(const std::string& path,
                           std::span<const Worker> workers,
                           const WorkerPoolView& view) {
  if (view.size() != workers.size()) {
    return Status::InvalidArgument(
        "snapshot write: view covers " + std::to_string(view.size()) +
        " workers, got " + std::to_string(workers.size()) + " structs");
  }
  const std::uint64_t count = workers.size();
  std::uint64_t id_blob_bytes = 0;
  for (const Worker& w : workers) id_blob_bytes += w.id.size();

  const std::uint64_t payload_bytes =
      4 * 8 * count + 8 * (count + 1) + id_blob_bytes;
  std::vector<std::byte> image(kHeaderBytes + payload_bytes);
  std::byte* payload = image.data() + kHeaderBytes;

  std::byte* cursor = payload;
  const auto put_column = [&cursor, count](std::span<const double> column) {
    std::memcpy(cursor, column.data(), 8 * count);
    cursor += 8 * count;
  };
  put_column(view.quality());
  put_column(view.cost());
  put_column(view.norm_quality());
  put_column(view.log_odds());
  std::uint64_t offset = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    PutU64(cursor + 8 * i, offset);
    offset += workers[i].id.size();
  }
  PutU64(cursor + 8 * count, offset);
  cursor += 8 * (count + 1);
  for (const Worker& w : workers) {
    std::memcpy(cursor, w.id.data(), w.id.size());
    cursor += w.id.size();
  }

  std::byte* header = image.data();
  std::memcpy(header, kMagic, sizeof(kMagic));
  PutU32(header + 8, kEndianMarker);
  PutU32(header + 12, kVersion);
  PutU64(header + 16, count);
  PutU64(header + 24, id_blob_bytes);
  PutU64(header + 32, payload_bytes);
  try {
    PutU64(header + 40, PayloadChecksum(payload, payload_bytes));
  } catch (const FaultInjectedError& error) {
    return Status::ResourceExhausted(error.what());
  }
  PutU64(header + 48, Fnv1a(header, 48));
  PutU64(header + 56, 0);

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::NotFound("cannot open snapshot for writing: " + path);
  }
  out.write(reinterpret_cast<const char*>(image.data()),
            static_cast<std::streamsize>(image.size()));
  out.flush();
  if (!out) {
    return Status::Internal("short write to snapshot: " + path);
  }
  return Status::OK();
}

Status PoolSnapshot::Attach(const std::byte* data, std::size_t size) {
  if (!HostIsLittleEndian()) {
    return Status::NotImplemented(
        "pool snapshots require a little-endian host");
  }
  if (size < kHeaderBytes) {
    return Status::InvalidArgument(
        "snapshot truncated: " + std::to_string(size) +
        " bytes is smaller than the 64-byte header");
  }
  if (std::memcmp(data, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("snapshot magic mismatch");
  }
  if (GetU32(data + 8) != kEndianMarker) {
    return Status::InvalidArgument(
        "snapshot endianness marker mismatch (written on a foreign-endian "
        "host?)");
  }
  const std::uint32_t version = GetU32(data + 12);
  if (version != kVersion) {
    return Status::InvalidArgument("unsupported snapshot version " +
                                   std::to_string(version));
  }
  if (GetU64(data + 48) != Fnv1a(data, 48)) {
    return Status::InvalidArgument("snapshot header checksum mismatch");
  }
  if (GetU64(data + 56) != 0) {
    return Status::InvalidArgument("snapshot reserved field is non-zero");
  }
  const std::uint64_t count = GetU64(data + 16);
  const std::uint64_t id_blob_bytes = GetU64(data + 24);
  const std::uint64_t payload_bytes = GetU64(data + 32);
  // Overflow-safe structural bound: every field must fit in the actual
  // byte count before any arithmetic that could wrap.
  const std::uint64_t available = size - kHeaderBytes;
  if (count > available / 8 || id_blob_bytes > available) {
    return Status::InvalidArgument(
        "snapshot header oversized: count/id-blob exceed the image");
  }
  const std::uint64_t expected_payload =
      4 * 8 * count + 8 * (count + 1) + id_blob_bytes;
  if (payload_bytes != expected_payload || payload_bytes != available) {
    return Status::InvalidArgument(
        "snapshot payload size mismatch: header says " +
        std::to_string(payload_bytes) + ", expected " +
        std::to_string(expected_payload) + ", image holds " +
        std::to_string(available));
  }
  const std::byte* payload = data + kHeaderBytes;
  const double* quality = reinterpret_cast<const double*>(payload);
  const double* cost = quality + count;
  const double* norm_quality = cost + count;
  const double* log_odds = norm_quality + count;
  const std::uint64_t* id_offsets =
      reinterpret_cast<const std::uint64_t*>(log_odds + count);

  // Verify in two dispatched passes. Pass 1 recomputes the blocked
  // payload checksum with the same `PayloadChecksum` the writer used —
  // its inner loop is the dispatched `hash_lanes` kernel, so the bytes
  // stream through at load bandwidth. Pass 2 runs the semantic column
  // audits through the dispatched `audit_pool_columns` /
  // `audit_monotone_u64` kernels: branch-free ordered compares whose
  // failures double as NaN checks (`<= DBL_MAX` also rejects +inf), and
  // `max(q, 1 - q)` is exactly `NormalizedQuality(q)` for any q in
  // [0, 1]. Both passes shard across the scheduler on multi-core hosts;
  // only a detected violation pays for the scalar re-scan that names the
  // first offending index.
  std::uint64_t payload_hash = 0;
  try {
    payload_hash = PayloadChecksum(payload, payload_bytes);
  } catch (const FaultInjectedError& error) {
    // The parallel verify region's task spawn is a fault point; the
    // load boundary owns the Result contract.
    return Status::ResourceExhausted(error.what());
  }
  if (GetU64(data + 40) != payload_hash) {
    return Status::InvalidArgument("snapshot payload checksum mismatch");
  }
  if (id_offsets[0] != 0) {
    return Status::InvalidArgument("snapshot id offsets must start at 0");
  }
  if (id_offsets[count] != id_blob_bytes) {
    return Status::InvalidArgument(
        "snapshot id offsets do not cover the id blob");
  }
  std::uint64_t bad = 0;
  constexpr std::size_t kAuditGrain = std::size_t{1} << 17;
  if (count <= kAuditGrain) {
    bad = simd::Kernels().audit_pool_columns(quality, cost, norm_quality,
                                             log_odds, count);
    bad |= simd::Kernels().audit_monotone_u64(id_offsets, count);
  } else {
    std::atomic<std::uint64_t> bad_bits{0};
    try {
      // Same thread-budget cap as `PayloadChecksum`: single-core hosts
      // run the shard loop inline, scheduler untouched. An element shard
      // of the monotone audit reads one offset past its end, which is
      // exactly the next shard's first entry (or the final slot) — every
      // adjacent pair is covered once.
      Scheduler::GlobalParallelFor(
          0, count, kAuditGrain,
          [&](std::size_t begin, std::size_t end) {
            std::uint64_t shard_bad = simd::Kernels().audit_pool_columns(
                quality + begin, cost + begin, norm_quality + begin,
                log_odds + begin, end - begin);
            shard_bad |= simd::Kernels().audit_monotone_u64(
                id_offsets + begin, end - begin);
            if (shard_bad != 0) {
              bad_bits.fetch_or(shard_bad, std::memory_order_relaxed);
            }
          },
          /*max_parallelism=*/ResolveThreadCount(0));
    } catch (const FaultInjectedError& error) {
      return Status::ResourceExhausted(error.what());
    }
    bad = bad_bits.load(std::memory_order_relaxed);
  }
  if (bad != 0) {
    for (std::uint64_t i = 0; i < count; ++i) {
      if (id_offsets[i + 1] < id_offsets[i]) {
        return Status::InvalidArgument("snapshot id offsets not monotone");
      }
    }
    for (std::uint64_t i = 0; i < count; ++i) {
      const double q = quality[i];
      const double c = cost[i];
      if (!std::isfinite(q) || q < 0.0 || q > 1.0) {
        return Status::InvalidArgument("snapshot quality[" + std::to_string(i) +
                                       "] outside [0, 1]");
      }
      if (!std::isfinite(c) || c < 0.0) {
        return Status::InvalidArgument("snapshot cost[" + std::to_string(i) +
                                       "] negative or non-finite");
      }
      // The derived columns must match what a fresh columnar build would
      // compute: norm_quality has a closed form cheap enough to recheck
      // exactly; log_odds only has to be finite (rechecking would redo the
      // log() the snapshot exists to skip — a tampered-but-checksummed
      // value yields a wrong score, never undefined behaviour).
      if (norm_quality[i] != NormalizedQuality(q)) {
        return Status::InvalidArgument(
            "snapshot norm_quality[" + std::to_string(i) +
            "] does not match its quality");
      }
      if (!std::isfinite(log_odds[i])) {
        return Status::InvalidArgument("snapshot log_odds[" +
                                       std::to_string(i) + "] non-finite");
      }
    }
    return Status::Internal("snapshot column scan flagged a violation the "
                            "detailed re-scan could not locate");
  }

  count_ = count;
  quality_ = quality;
  cost_ = cost;
  norm_quality_ = norm_quality;
  log_odds_ = log_odds;
  id_offsets_ = id_offsets;
  id_blob_ = reinterpret_cast<const char*>(id_offsets + count + 1);
  return Status::OK();
}

Result<PoolSnapshot> PoolSnapshot::Load(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::NotFound("cannot open snapshot: " + path + " (" +
                           std::strerror(errno) + ")");
  }
  struct stat st;
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    const int err = errno;
    ::close(fd);
    return Status::Internal("cannot stat snapshot: " + path + " (" +
                           std::strerror(err) + ")");
  }
  const std::size_t size = static_cast<std::size_t>(st.st_size);
  PoolSnapshot snapshot;
  if (size > 0) {
    // MAP_POPULATE prefaults the image in one batch; the checksum pass
    // touches every page anyway, and batched faults are far cheaper than
    // taking them one at a time mid-verify.
    void* base =
        ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE | MAP_POPULATE, fd, 0);
    if (base != MAP_FAILED) {
      snapshot.map_base_ = base;
      snapshot.map_bytes_ = size;
    }
  }
  const std::byte* data = nullptr;
  if (snapshot.map_base_ != nullptr) {
    data = static_cast<const std::byte*>(snapshot.map_base_);
  } else {
    // mmap unavailable (or empty file): buffered read fallback.
    snapshot.owned_.resize(size);
    std::size_t done = 0;
    while (done < size) {
      const ssize_t got =
          ::pread(fd, snapshot.owned_.data() + done, size - done,
                  static_cast<off_t>(done));
      if (got <= 0) {
        ::close(fd);
        return Status::Internal("short read from snapshot: " + path);
      }
      done += static_cast<std::size_t>(got);
    }
    data = snapshot.owned_.data();
  }
  ::close(fd);
  const Status status = snapshot.Attach(data, size);
  if (!status.ok()) return status;
  g_snapshot_loads.Increment();
  return snapshot;
}

Result<PoolSnapshot> PoolSnapshot::FromBytes(const void* data,
                                             std::size_t size) {
  PoolSnapshot snapshot;
  snapshot.owned_.assign(static_cast<const std::byte*>(data),
                         static_cast<const std::byte*>(data) + size);
  const Status status = snapshot.Attach(snapshot.owned_.data(), size);
  if (!status.ok()) return status;
  g_snapshot_loads.Increment();
  return snapshot;
}

std::string_view PoolSnapshot::id(std::size_t i) const {
  const std::uint64_t begin = id_offsets_[i];
  const std::uint64_t end = id_offsets_[i + 1];
  return std::string_view(id_blob_ + begin, end - begin);
}

std::vector<Worker> PoolSnapshot::MaterializeWorkers() const {
  std::vector<Worker> workers(count_);
  for (std::size_t i = 0; i < count_; ++i) {
    workers[i].id = std::string(id(i));
    workers[i].quality = quality_[i];
    workers[i].cost = cost_[i];
  }
  return workers;
}

}  // namespace jury
