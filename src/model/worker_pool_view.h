#ifndef JURYOPT_MODEL_WORKER_POOL_VIEW_H_
#define JURYOPT_MODEL_WORKER_POOL_VIEW_H_

#include <cstddef>
#include <span>
#include <string_view>
#include <vector>

#include "model/worker.h"

namespace jury {

/// \brief Immutable columnar (structure-of-arrays) snapshot of a candidate
/// worker pool, built once per solve.
///
/// The JQ kernels under every JSP solver — the Poisson-binomial
/// convolutions for MV, the Algorithm-1 bucketed key DP for BV — are flat
/// numeric loops over worker probabilities, yet the pool is stored as an
/// array of `Worker` structs (id string + quality + cost). Before this
/// view, every batched scan re-gathered those fields through an
/// `const Worker* const*` indirection per candidate per round. The view
/// hoists that gather to one O(n) pass per solve: contiguous `double`
/// columns for the quality, cost, §3.3 flip-normalized quality, and
/// log-odds `phi(q) = ln(q/(1-q))` of every candidate, plus a stable
/// index ↔ WorkerId map. Evaluation sessions bound to a view
/// (`JqObjective::StartSession(view, ...)`) consume the columns directly
/// in their batched move scans; the derived columns are computed with
/// exactly the session backends' own expressions
/// (`NormalizeQuality`/`EffectiveQuality`/`LogOdds`), so column-sourced
/// scores are bit-identical to struct-sourced ones.
///
/// The view does not own the workers: it keeps a `std::span` over the
/// caller's array (a `JspInstance::candidates` vector in every in-repo
/// use), which must outlive the view. Views are immutable after
/// construction and therefore freely shared across threads.
class WorkerPoolView {
 public:
  static constexpr std::size_t kNotFound = static_cast<std::size_t>(-1);

  WorkerPoolView() = default;
  explicit WorkerPoolView(std::span<const Worker> workers);

  std::size_t size() const { return quality_.size(); }
  bool empty() const { return quality_.empty(); }

  /// The backing AoS record (id, quality, cost) for index `i`.
  const Worker& worker(std::size_t i) const { return workers_[i]; }
  std::span<const Worker> workers() const { return workers_; }

  /// Raw quality column: `quality()[i] == worker(i).quality`.
  std::span<const double> quality() const { return quality_; }
  /// Cost column: `cost()[i] == worker(i).cost`.
  std::span<const double> cost() const { return cost_; }
  /// §3.3 flip-normalized quality column: `q < 0.5 ? 1 - q : q`. This is
  /// the value the BV/bucket backend feeds its key DP.
  std::span<const double> norm_quality() const { return norm_quality_; }
  /// Log-odds column `LogOdds(EffectiveQuality(norm_quality()[i]))` — the
  /// bucketable weight phi(q_i) of Algorithm 1, precomputed so batched
  /// scans bucket a candidate without re-running the log per score.
  std::span<const double> log_odds() const { return log_odds_; }

  /// Index of the first worker whose id is `id`, or `kNotFound`. A linear
  /// scan (first occurrence wins — ids are not required to be unique):
  /// id lookups are an offline convenience, not a solver hot path, so the
  /// view's per-solve construction stays pure column fills with no string
  /// hashing or allocation.
  std::size_t IndexOf(std::string_view id) const;

 private:
  std::span<const Worker> workers_;
  std::vector<double> quality_;
  std::vector<double> cost_;
  std::vector<double> norm_quality_;
  std::vector<double> log_odds_;
};

}  // namespace jury

#endif  // JURYOPT_MODEL_WORKER_POOL_VIEW_H_
