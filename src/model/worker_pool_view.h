#ifndef JURYOPT_MODEL_WORKER_POOL_VIEW_H_
#define JURYOPT_MODEL_WORKER_POOL_VIEW_H_

#include <cstddef>
#include <span>
#include <string_view>
#include <vector>

#include "model/worker.h"

namespace jury {

/// \brief Immutable columnar (structure-of-arrays) snapshot of a candidate
/// worker pool, built once per solve.
///
/// The JQ kernels under every JSP solver — the Poisson-binomial
/// convolutions for MV, the Algorithm-1 bucketed key DP for BV — are flat
/// numeric loops over worker probabilities, yet the pool is stored as an
/// array of `Worker` structs (id string + quality + cost). Before this
/// view, every batched scan re-gathered those fields through an
/// `const Worker* const*` indirection per candidate per round. The view
/// hoists that gather to one O(n) pass per solve: contiguous `double`
/// columns for the quality, cost, §3.3 flip-normalized quality, and
/// log-odds `phi(q) = ln(q/(1-q))` of every candidate, plus a stable
/// index ↔ WorkerId map. Evaluation sessions bound to a view
/// (`JqObjective::StartSession(view, ...)`) consume the columns directly
/// in their batched move scans; the derived columns are computed with
/// exactly the session backends' own expressions
/// (`NormalizeQuality`/`EffectiveQuality`/`LogOdds`), so column-sourced
/// scores are bit-identical to struct-sourced ones.
///
/// A view comes in two flavours sharing one type:
///   - **Owning** (the `span<const Worker>` constructor): the four columns
///     are computed into internal vectors, as every solver has always done.
///   - **Adopted** (`FromColumns`): the columns alias caller-owned storage
///     — in practice a mapped `PoolSnapshot` — so a million-worker plan
///     skips the per-worker `log()` pass entirely. Adopted views may start
///     with no `Worker` structs at all; `BindWorkers` attaches them later
///     (lazy materialization) for the call sites that need the AoS record.
///
/// The view never owns the workers: it keeps a `std::span` over the
/// caller's array (a `JspInstance::candidates` vector in most in-repo
/// uses), which must outlive the view. Views are immutable after
/// construction (BindWorkers excepted, which happens once before any
/// `worker()` access) and therefore freely shared across threads.
class WorkerPoolView {
 public:
  static constexpr std::size_t kNotFound = static_cast<std::size_t>(-1);

  WorkerPoolView() = default;
  explicit WorkerPoolView(std::span<const Worker> workers);

  /// Builds a view whose columns alias caller-owned storage (all four the
  /// same length; they must outlive the view). No workers are bound yet —
  /// `worker()`/`workers()`/`IndexOf` require a later `BindWorkers`.
  static WorkerPoolView FromColumns(std::span<const double> quality,
                                    std::span<const double> cost,
                                    std::span<const double> norm_quality,
                                    std::span<const double> log_odds);

  // The owning flavour's columns live in the member vectors, so copies
  // must re-point their spans at their own storage (moves keep the heap
  // buffers and need no fixup).
  WorkerPoolView(const WorkerPoolView& other);
  WorkerPoolView& operator=(const WorkerPoolView& other);
  WorkerPoolView(WorkerPoolView&&) noexcept = default;
  WorkerPoolView& operator=(WorkerPoolView&&) noexcept = default;

  std::size_t size() const { return quality_.size(); }
  bool empty() const { return quality_.empty(); }

  /// True once `worker(i)` is callable — always for the owning flavour,
  /// after `BindWorkers` for an adopted view.
  bool workers_bound() const { return workers_.size() == size(); }

  /// Attaches the AoS records to an adopted view. `workers` must match
  /// the columns element-for-element and outlive the view.
  void BindWorkers(std::span<const Worker> workers);

  /// The backing AoS record (id, quality, cost) for index `i`.
  const Worker& worker(std::size_t i) const { return workers_[i]; }
  std::span<const Worker> workers() const { return workers_; }

  /// Raw quality column: `quality()[i] == worker(i).quality`.
  std::span<const double> quality() const { return quality_; }
  /// Cost column: `cost()[i] == worker(i).cost`.
  std::span<const double> cost() const { return cost_; }
  /// §3.3 flip-normalized quality column: `q < 0.5 ? 1 - q : q`. This is
  /// the value the BV/bucket backend feeds its key DP.
  std::span<const double> norm_quality() const { return norm_quality_; }
  /// Log-odds column `LogOdds(EffectiveQuality(norm_quality()[i]))` — the
  /// bucketable weight phi(q_i) of Algorithm 1, precomputed so batched
  /// scans bucket a candidate without re-running the log per score.
  std::span<const double> log_odds() const { return log_odds_; }

  /// Index of the first worker whose id is `id`, or `kNotFound`. A linear
  /// scan (first occurrence wins — ids are not required to be unique):
  /// id lookups are an offline convenience, not a solver hot path, so the
  /// view's per-solve construction stays pure column fills with no string
  /// hashing or allocation.
  std::size_t IndexOf(std::string_view id) const;

 private:
  std::span<const Worker> workers_;
  // The public column spans; for the owning flavour they point into the
  // owned_* vectors below, for adopted views into caller storage.
  std::span<const double> quality_;
  std::span<const double> cost_;
  std::span<const double> norm_quality_;
  std::span<const double> log_odds_;
  std::vector<double> owned_quality_;
  std::vector<double> owned_cost_;
  std::vector<double> owned_norm_quality_;
  std::vector<double> owned_log_odds_;
};

}  // namespace jury

#endif  // JURYOPT_MODEL_WORKER_POOL_VIEW_H_
