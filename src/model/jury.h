#ifndef JURYOPT_MODEL_JURY_H_
#define JURYOPT_MODEL_JURY_H_

#include <cstddef>
#include <string>
#include <vector>

#include "model/votes.h"
#include "model/worker.h"
#include "util/status.h"

namespace jury {

/// \brief A jury `J = {j_1, ..., j_n}` (§2.1): an ordered collection of
/// workers whose votes are aggregated by a voting strategy.
///
/// Order matters only for positional alignment with a `Votes` vector; all
/// quality computations are permutation-invariant.
class Jury {
 public:
  Jury() = default;
  explicit Jury(std::vector<Worker> workers) : workers_(std::move(workers)) {}

  /// Builds an anonymous jury from qualities (zero costs); handy in tests
  /// and in the JQ machinery where costs are irrelevant.
  static Jury FromQualities(const std::vector<double>& qualities);

  std::size_t size() const { return workers_.size(); }
  bool empty() const { return workers_.empty(); }
  const std::vector<Worker>& workers() const { return workers_; }
  const Worker& worker(std::size_t i) const;

  void Add(Worker worker) { workers_.push_back(std::move(worker)); }

  /// Jury cost = sum of member costs (§1).
  double TotalCost() const;
  /// Member qualities, positionally aligned with votes.
  std::vector<double> qualities() const;

  /// Validates every member via `ValidateWorker`.
  Status Validate() const;

  /// Minimum / maximum member quality (juries must be non-empty).
  double MinQuality() const;
  double MaxQuality() const;

  bool operator==(const Jury& other) const = default;

 private:
  std::vector<Worker> workers_;
};

/// \brief Result of normalizing a jury so that every quality is >= 0.5
/// (§3.3): a worker with quality q < 0.5 is reinterpreted as a worker with
/// quality 1-q whose vote is read flipped. JQ is invariant under this
/// reinterpretation; the flip mask lets decision-time code translate real
/// votes into the normalized frame.
struct NormalizedJury {
  /// The jury with every quality >= 0.5 (ties at 0.5 are left unflipped).
  Jury jury;
  /// flipped[i] == true iff worker i's votes must be complemented before
  /// being interpreted in the normalized frame.
  std::vector<bool> flipped;

  /// Maps a voting in the original frame to the normalized frame.
  Votes TranslateVotes(const Votes& votes) const;
};

/// Applies the §3.3 reinterpretation rule to `jury`.
NormalizedJury Normalize(const Jury& jury);

}  // namespace jury

#endif  // JURYOPT_MODEL_JURY_H_
