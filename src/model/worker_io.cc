#include "model/worker_io.h"

#include <cstdlib>
#include <sstream>

#include "util/csv.h"
#include "util/stats_registry.h"

namespace jury {
namespace {

StatsRegistry::Counter& g_csv_loads = RegisterStatsCounter("pool.csv_loads");

Result<double> ParseDouble(const std::string& cell, const std::string& what) {
  char* end = nullptr;
  const double value = std::strtod(cell.c_str(), &end);
  if (end == cell.c_str() || *end != '\0') {
    return Status::InvalidArgument("cannot parse " + what + ": '" + cell +
                                   "'");
  }
  return value;
}

Result<std::vector<Worker>> RowsToWorkers(
    const std::vector<std::vector<std::string>>& rows) {
  std::vector<Worker> workers;
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const auto& row = rows[r];
    if (r == 0 && row.size() == 3 && row[0] == "id" && row[1] == "quality" &&
        row[2] == "cost") {
      continue;  // header
    }
    if (row.size() != 3) {
      return Status::InvalidArgument(
          "worker CSV rows need 3 cells (id,quality,cost), row " +
          std::to_string(r) + " has " + std::to_string(row.size()));
    }
    Worker worker;
    worker.id = row[0];
    JURY_ASSIGN_OR_RETURN(worker.quality, ParseDouble(row[1], "quality"));
    JURY_ASSIGN_OR_RETURN(worker.cost, ParseDouble(row[2], "cost"));
    JURY_RETURN_NOT_OK(ValidateWorker(worker));
    workers.push_back(std::move(worker));
  }
  return workers;
}

}  // namespace

Result<std::vector<Worker>> LoadWorkersCsv(const std::string& path) {
  std::vector<std::vector<std::string>> rows;
  JURY_ASSIGN_OR_RETURN(rows, ReadCsvFile(path));
  g_csv_loads.Increment();
  return RowsToWorkers(rows);
}

Result<std::vector<Worker>> ParseWorkersCsv(const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  JURY_ASSIGN_OR_RETURN(rows, ParseCsv(text));
  return RowsToWorkers(rows);
}

std::string WorkersToCsv(const std::vector<Worker>& workers) {
  std::ostringstream os;
  os << "id,quality,cost\n";
  os.precision(17);
  for (const Worker& w : workers) {
    os << w.id << ',' << w.quality << ',' << w.cost << '\n';
  }
  return os.str();
}

}  // namespace jury
