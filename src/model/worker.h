#ifndef JURYOPT_MODEL_WORKER_H_
#define JURYOPT_MODEL_WORKER_H_

#include <string>

#include "util/status.h"

namespace jury {

/// \brief A crowdsourcing worker, following the worker model of §2.1:
/// a quality `q in [0, 1]` — the probability that the worker votes the
/// task's latent true answer — and a non-negative monetary cost `c` charged
/// per vote. Qualities and costs are assumed known in advance (estimated
/// from answering history; see `crowd::` for estimators).
struct Worker {
  /// Human-readable identifier (e.g. "A".."G" in the paper's Fig. 1).
  std::string id;
  /// Pr[v_i = t]; must lie in [0, 1].
  double quality = 0.5;
  /// Monetary incentive required per vote; must be >= 0.
  double cost = 0.0;

  Worker() = default;
  Worker(std::string id_in, double quality_in, double cost_in)
      : id(std::move(id_in)), quality(quality_in), cost(cost_in) {}

  bool operator==(const Worker& other) const = default;
};

/// Validates the quality/cost ranges above.
Status ValidateWorker(const Worker& worker);

/// Smallest distance from {0, 1} at which a quality participates in
/// log-odds computations; qualities are clamped into
/// [kQualityEpsilon, 1 - kQualityEpsilon] by `EffectiveQuality`.
inline constexpr double kQualityEpsilon = 1e-12;

/// Clamps `q` away from the endpoints so that `LogOdds(q)` is finite.
double EffectiveQuality(double q);

/// §3.3 flip reinterpretation for a single quality (`Normalize` on one
/// worker): a quality below 0.5 is read as voting the *wrong* answer with
/// probability q, i.e. the right one with 1 - q; ties at 0.5 are left
/// unflipped. Shared by the BV evaluation backends and the columnar
/// `WorkerPoolView` so the two sources cannot drift apart.
inline double NormalizedQuality(double q) { return q < 0.5 ? 1.0 - q : q; }

}  // namespace jury

#endif  // JURYOPT_MODEL_WORKER_H_
