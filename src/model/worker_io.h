#ifndef JURYOPT_MODEL_WORKER_IO_H_
#define JURYOPT_MODEL_WORKER_IO_H_

#include <string>
#include <vector>

#include "model/worker.h"
#include "util/result.h"

namespace jury {

/// \brief Loads a candidate worker pool from CSV with columns
/// `id,quality,cost` (a header row with exactly those names is skipped;
/// '#' lines are comments). Each worker is validated on load.
Result<std::vector<Worker>> LoadWorkersCsv(const std::string& path);

/// Parses the same format from an in-memory string.
Result<std::vector<Worker>> ParseWorkersCsv(const std::string& text);

/// Serializes a pool back to the same CSV format (with header).
std::string WorkersToCsv(const std::vector<Worker>& workers);

}  // namespace jury

#endif  // JURYOPT_MODEL_WORKER_IO_H_
