#include "model/votes.h"

#include "util/check.h"

namespace jury {

Votes VotesFromMask(std::uint64_t mask, int n) {
  JURY_CHECK(n >= 0 && n < 64);
  Votes votes(static_cast<std::size_t>(n), 0);
  for (int i = 0; i < n; ++i) {
    votes[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((mask >> i) & 1u);
  }
  return votes;
}

int CountZeros(const Votes& votes) {
  int zeros = 0;
  for (std::uint8_t v : votes) zeros += (v == 0) ? 1 : 0;
  return zeros;
}

int CountOnes(const Votes& votes) {
  return static_cast<int>(votes.size()) - CountZeros(votes);
}

Votes Complement(const Votes& votes) {
  Votes out(votes.size());
  for (std::size_t i = 0; i < votes.size(); ++i) {
    out[i] = votes[i] ? 0 : 1;
  }
  return out;
}

}  // namespace jury
