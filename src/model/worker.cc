#include "model/worker.h"

#include <algorithm>

namespace jury {

Status ValidateWorker(const Worker& worker) {
  if (!(worker.quality >= 0.0 && worker.quality <= 1.0)) {
    return Status::InvalidArgument("worker '" + worker.id +
                                   "' quality outside [0,1]");
  }
  if (!(worker.cost >= 0.0)) {
    return Status::InvalidArgument("worker '" + worker.id +
                                   "' has negative cost");
  }
  return Status::OK();
}

double EffectiveQuality(double q) {
  return std::min(std::max(q, kQualityEpsilon), 1.0 - kQualityEpsilon);
}

}  // namespace jury
