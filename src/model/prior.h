#ifndef JURYOPT_MODEL_PRIOR_H_
#define JURYOPT_MODEL_PRIOR_H_

#include "util/status.h"

namespace jury {

/// \brief Task-provider prior on a decision-making task (§2.1):
/// `alpha = Pr(t = 0)`. With no prior knowledge, alpha = 0.5.
inline constexpr double kUninformativeAlpha = 0.5;

/// Validates `alpha` in [0, 1].
Status ValidateAlpha(double alpha);

/// True when the prior carries no information (alpha == 0.5).
bool IsUninformativeAlpha(double alpha);

}  // namespace jury

#endif  // JURYOPT_MODEL_PRIOR_H_
