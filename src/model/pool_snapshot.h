#ifndef JURYOPT_MODEL_POOL_SNAPSHOT_H_
#define JURYOPT_MODEL_POOL_SNAPSHOT_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "model/worker.h"
#include "util/result.h"
#include "util/status.h"

namespace jury {

class WorkerPoolView;

/// \brief Versioned binary snapshot of a worker pool's columns.
///
/// A snapshot stores the four columns a `WorkerPoolView` derives from the
/// worker structs — quality, cost, normalized quality, and log-odds — plus
/// the worker id strings, in one flat little-endian file that can be mapped
/// read-only and served directly as view columns. Persisting the *derived*
/// columns (not just quality/cost) is the point: loading skips the per-worker
/// `log()` of a fresh columnar build, so a million-worker pool plans in
/// milliseconds, and the columns are bit-identical to the ones the writer
/// computed, which keeps solve reports byte-for-byte reproducible across a
/// save/load cycle.
///
/// Wire format (all integers little-endian; doubles IEEE-754 binary64):
///
///     offset  size  field
///     ------  ----  -----------------------------------------------
///          0     8  magic "JURYSNAP"
///          8     4  endian marker 0x01020304 (u32)
///         12     4  format version, currently 1 (u32)
///         16     8  worker count (u64)
///         24     8  id blob bytes (u64)
///         32     8  payload bytes (u64, redundant, validated)
///         40     8  payload checksum (u64): the payload is cut into
///                   fixed 4 MiB blocks; each block is hashed with
///                   eight rotate-xor lanes over the u64 words of its
///                   64-byte strides (lane l seeded with the FNV
///                   offset_basis + l, per stride
///                   `lane = rotl64(lane, 29) ^ word`), the lanes
///                   folded FNV-style, byte-wise FNV-1a for the tail,
///                   and the block hashes are folded FNV-style in file
///                   order. Blocked so the verify pass parallelizes
///                   without the value depending on thread count;
///                   multiply-free in the stride loop so the
///                   dispatched SIMD kernel streams at load bandwidth.
///         48     8  FNV-1a 64 checksum of header bytes [0, 48) (u64)
///         56     8  reserved, must be 0
///         64     -  payload:
///                     quality       f64[count]
///                     cost          f64[count]
///                     norm_quality  f64[count]
///                     log_odds      f64[count]
///                     id_offsets    u64[count + 1] (into the id blob)
///                     id_blob       bytes
///
/// The payload begins at byte 64, so every column is 8-byte aligned inside
/// the mapping. Loading validates the checksums, the structural bounds
/// (offsets monotone, last offset == blob size), and the numeric invariants
/// `quality in [0,1]`, `cost >= 0` (both finite),
/// `norm_quality == NormalizedQuality(quality)` (exact), and `log_odds`
/// finite — a snapshot that passes is as trusted as a validated CSV pool,
/// so planning from one skips per-worker re-validation. Corrupt, truncated,
/// or foreign-endian bytes return a `Status`; they never abort.
class PoolSnapshot {
 public:
  static constexpr char kMagic[8] = {'J', 'U', 'R', 'Y', 'S', 'N', 'A', 'P'};
  static constexpr std::uint32_t kEndianMarker = 0x01020304u;
  static constexpr std::uint32_t kVersion = 1;
  static constexpr std::size_t kHeaderBytes = 64;

  /// An empty snapshot (no columns); the normal way to get a populated
  /// one is `Load` / `FromBytes`.
  PoolSnapshot() = default;
  PoolSnapshot(PoolSnapshot&& other) noexcept;
  PoolSnapshot& operator=(PoolSnapshot&& other) noexcept;
  PoolSnapshot(const PoolSnapshot&) = delete;
  PoolSnapshot& operator=(const PoolSnapshot&) = delete;
  ~PoolSnapshot();

  /// Serializes `workers` plus the matching view columns to `path`.
  /// The view must be built over exactly these workers (same order); the
  /// columns are written bit-for-bit so a load reproduces them exactly.
  static Status Write(const std::string& path,
                      std::span<const Worker> workers,
                      const WorkerPoolView& view);

  /// Maps `path` read-only and validates it (falls back to a buffered read
  /// where mmap is unavailable). Bumps the `pool.snapshot_loads` counter on
  /// success.
  static Result<PoolSnapshot> Load(const std::string& path);

  /// Parses an in-memory image (copies the bytes). Same validation as
  /// `Load`; this is the fuzzing entry point.
  static Result<PoolSnapshot> FromBytes(const void* data, std::size_t size);

  std::size_t size() const { return count_; }
  std::span<const double> quality() const { return {quality_, count_}; }
  std::span<const double> cost() const { return {cost_, count_}; }
  std::span<const double> norm_quality() const {
    return {norm_quality_, count_};
  }
  std::span<const double> log_odds() const { return {log_odds_, count_}; }

  /// Id of worker `i` as a view into the mapped blob.
  std::string_view id(std::size_t i) const;

  /// Materializes full `Worker` structs (copies the id strings). The
  /// columns stay authoritative; this exists for call sites that need the
  /// struct form (CLI id printing, CommitAdd fast paths).
  std::vector<Worker> MaterializeWorkers() const;

 private:
  /// Points the column members into `data` and validates everything.
  Status Attach(const std::byte* data, std::size_t size);

  // Exactly one of these owns the bytes the columns point into.
  void* map_base_ = nullptr;  // mmap region (munmap'd in the destructor)
  std::size_t map_bytes_ = 0;
  std::vector<std::byte> owned_;

  std::size_t count_ = 0;
  const double* quality_ = nullptr;
  const double* cost_ = nullptr;
  const double* norm_quality_ = nullptr;
  const double* log_odds_ = nullptr;
  const std::uint64_t* id_offsets_ = nullptr;
  const char* id_blob_ = nullptr;
};

}  // namespace jury

#endif  // JURYOPT_MODEL_POOL_SNAPSHOT_H_
