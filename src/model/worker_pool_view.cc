#include "model/worker_pool_view.h"

#include "util/math.h"

namespace jury {

WorkerPoolView::WorkerPoolView(std::span<const Worker> workers)
    : workers_(workers) {
  const std::size_t n = workers.size();
  quality_.resize(n);
  cost_.resize(n);
  norm_quality_.resize(n);
  log_odds_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Worker& w = workers[i];
    quality_[i] = w.quality;
    cost_[i] = w.cost;
    // Same expressions the evaluation backends run on the Worker structs,
    // evaluated once: column-sourced scores stay bit-identical.
    const double norm = NormalizedQuality(w.quality);
    norm_quality_[i] = norm;
    log_odds_[i] = LogOdds(EffectiveQuality(norm));
  }
}

std::size_t WorkerPoolView::IndexOf(std::string_view id) const {
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    if (workers_[i].id == id) return i;
  }
  return kNotFound;
}

}  // namespace jury
