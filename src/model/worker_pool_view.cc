#include "model/worker_pool_view.h"

#include "util/check.h"
#include "util/math.h"

namespace jury {

WorkerPoolView::WorkerPoolView(std::span<const Worker> workers)
    : workers_(workers) {
  const std::size_t n = workers.size();
  owned_quality_.resize(n);
  owned_cost_.resize(n);
  owned_norm_quality_.resize(n);
  owned_log_odds_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Worker& w = workers[i];
    owned_quality_[i] = w.quality;
    owned_cost_[i] = w.cost;
    // Same expressions the evaluation backends run on the Worker structs,
    // evaluated once: column-sourced scores stay bit-identical.
    const double norm = NormalizedQuality(w.quality);
    owned_norm_quality_[i] = norm;
    owned_log_odds_[i] = LogOdds(EffectiveQuality(norm));
  }
  quality_ = owned_quality_;
  cost_ = owned_cost_;
  norm_quality_ = owned_norm_quality_;
  log_odds_ = owned_log_odds_;
}

WorkerPoolView WorkerPoolView::FromColumns(std::span<const double> quality,
                                           std::span<const double> cost,
                                           std::span<const double> norm_quality,
                                           std::span<const double> log_odds) {
  JURY_CHECK(cost.size() == quality.size() &&
             norm_quality.size() == quality.size() &&
             log_odds.size() == quality.size())
      << "adopted view columns must all have the same length";
  WorkerPoolView view;
  view.quality_ = quality;
  view.cost_ = cost;
  view.norm_quality_ = norm_quality;
  view.log_odds_ = log_odds;
  return view;
}

WorkerPoolView::WorkerPoolView(const WorkerPoolView& other)
    : workers_(other.workers_),
      quality_(other.quality_),
      cost_(other.cost_),
      norm_quality_(other.norm_quality_),
      log_odds_(other.log_odds_),
      owned_quality_(other.owned_quality_),
      owned_cost_(other.owned_cost_),
      owned_norm_quality_(other.owned_norm_quality_),
      owned_log_odds_(other.owned_log_odds_) {
  if (!owned_quality_.empty()) {
    quality_ = owned_quality_;
    cost_ = owned_cost_;
    norm_quality_ = owned_norm_quality_;
    log_odds_ = owned_log_odds_;
  }
}

WorkerPoolView& WorkerPoolView::operator=(const WorkerPoolView& other) {
  if (this != &other) {
    *this = WorkerPoolView(other);  // copy-construct, then move-assign
  }
  return *this;
}

void WorkerPoolView::BindWorkers(std::span<const Worker> workers) {
  JURY_CHECK(workers.size() == size())
      << "BindWorkers: " << workers.size() << " structs for " << size()
      << " columns";
  workers_ = workers;
}

std::size_t WorkerPoolView::IndexOf(std::string_view id) const {
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    if (workers_[i].id == id) return i;
  }
  return kNotFound;
}

}  // namespace jury
