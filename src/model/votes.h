#ifndef JURYOPT_MODEL_VOTES_H_
#define JURYOPT_MODEL_VOTES_H_

#include <cstdint>
#include <vector>

namespace jury {

/// \brief A voting `V = {v_1, ..., v_n}` (§2.1): one binary vote per juror,
/// stored positionally. `0` means "no", `1` means "yes", matching the paper's
/// encoding of decision-making answers.
using Votes = std::vector<std::uint8_t>;

/// Expands the low `n` bits of `mask` into a vote vector
/// (bit i -> v_{i+1}); used by the exact 2^n JQ enumerators.
Votes VotesFromMask(std::uint64_t mask, int n);

/// Number of 0-votes, i.e. `sum_i (1 - v_i)`.
int CountZeros(const Votes& votes);

/// Number of 1-votes.
int CountOnes(const Votes& votes);

/// The complement voting `V-bar` with every vote flipped (used by the
/// symmetric-pair argument of Eq. (5)).
Votes Complement(const Votes& votes);

}  // namespace jury

#endif  // JURYOPT_MODEL_VOTES_H_
