#include "model/jury.h"

#include <algorithm>

#include "util/check.h"

namespace jury {

Jury Jury::FromQualities(const std::vector<double>& qualities) {
  std::vector<Worker> workers;
  workers.reserve(qualities.size());
  for (std::size_t i = 0; i < qualities.size(); ++i) {
    workers.emplace_back("w" + std::to_string(i), qualities[i], 0.0);
  }
  return Jury(std::move(workers));
}

const Worker& Jury::worker(std::size_t i) const {
  JURY_CHECK_LT(i, workers_.size());
  return workers_[i];
}

double Jury::TotalCost() const {
  double acc = 0.0;
  for (const Worker& w : workers_) acc += w.cost;
  return acc;
}

std::vector<double> Jury::qualities() const {
  std::vector<double> qs;
  qs.reserve(workers_.size());
  for (const Worker& w : workers_) qs.push_back(w.quality);
  return qs;
}

Status Jury::Validate() const {
  for (const Worker& w : workers_) {
    JURY_RETURN_NOT_OK(ValidateWorker(w));
  }
  return Status::OK();
}

double Jury::MinQuality() const {
  JURY_CHECK(!workers_.empty());
  double m = 1.0;
  for (const Worker& w : workers_) m = std::min(m, w.quality);
  return m;
}

double Jury::MaxQuality() const {
  JURY_CHECK(!workers_.empty());
  double m = 0.0;
  for (const Worker& w : workers_) m = std::max(m, w.quality);
  return m;
}

Votes NormalizedJury::TranslateVotes(const Votes& votes) const {
  JURY_CHECK_EQ(votes.size(), flipped.size());
  Votes out(votes.size());
  for (std::size_t i = 0; i < votes.size(); ++i) {
    out[i] = flipped[i] ? static_cast<std::uint8_t>(votes[i] ? 0 : 1)
                        : votes[i];
  }
  return out;
}

NormalizedJury Normalize(const Jury& jury) {
  NormalizedJury out;
  out.flipped.assign(jury.size(), false);
  std::vector<Worker> workers = jury.workers();
  for (std::size_t i = 0; i < workers.size(); ++i) {
    if (workers[i].quality < 0.5) {
      workers[i].quality = 1.0 - workers[i].quality;
      out.flipped[i] = true;
    }
  }
  out.jury = Jury(std::move(workers));
  return out;
}

}  // namespace jury
