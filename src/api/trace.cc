#include "api/trace.h"

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "model/worker.h"
#include "util/json.h"

namespace jury::api {

namespace {

Json WorkerToJson(const Worker& worker) {
  return Json::Object()
      .Set("cost", worker.cost)
      .Set("id", worker.id)
      .Set("quality", worker.quality);
}

Status ParseWorker(const Json& doc, std::size_t index, Worker* out) {
  const std::string path = "pool[" + std::to_string(index) + "]";
  if (!doc.is_object()) {
    return Status::InvalidArgument(path + " must be an object");
  }
  for (const auto& [key, value] : *doc.GetObject()) {
    if (key == "id") {
      Result<std::string> id = value.GetString();
      if (!id.ok()) {
        return Status::InvalidArgument(path + ".id must be a string");
      }
      out->id = id.value();
    } else if (key == "quality") {
      Result<double> quality = value.GetDouble();
      if (!quality.ok()) {
        return Status::InvalidArgument(path + ".quality must be a number");
      }
      out->quality = quality.value();
    } else if (key == "cost") {
      Result<double> cost = value.GetDouble();
      if (!cost.ok()) {
        return Status::InvalidArgument(path + ".cost must be a number");
      }
      out->cost = cost.value();
    } else {
      return Status::InvalidArgument(path + ": unknown key " +
                                     Json::Quote(key));
    }
  }
  return Status::OK();
}

}  // namespace

Result<std::string> NormalizeReportJson(std::string_view json) {
  Json doc;
  JURY_ASSIGN_OR_RETURN(doc, Json::Parse(json));
  const std::map<std::string, Json>* object = doc.GetObject();
  if (object == nullptr || doc.Find("wall_seconds") == nullptr) {
    return Status::InvalidArgument(
        "not a report document (no wall_seconds field)");
  }
  // Rebuild rather than mutate: Json has no in-place member update, and
  // the rebuild re-sorts keys, which is exactly the canonical form the
  // byte comparison wants.
  Json normalized = Json::Object();
  for (const auto& [key, value] : *object) {
    normalized.Set(key, key == "wall_seconds" ? Json(0.0) : value);
  }
  return normalized.Dump();
}

Json SolveTrace::ToJsonValue() const {
  Json pool_json = Json::Array();
  for (const Worker& worker : pool) pool_json.Append(WorkerToJson(worker));
  Json entries_json = Json::Array();
  for (const Entry& entry : entries) {
    // The report is stored as a document, not an escaped string, so
    // fixtures are reviewable diffs. Stored documents were produced by
    // NormalizeReportJson, so re-parsing them cannot fail.
    entries_json.Append(
        Json::Object()
            .Set("report", Json::Parse(entry.report_json).value())
            .Set("request", entry.request.ToJsonValue()));
  }
  return Json::Object()
      .Set("entries", std::move(entries_json))
      .Set("pool", std::move(pool_json));
}

std::string SolveTrace::ToJson() const { return ToJsonValue().Dump(); }

Result<SolveTrace> SolveTrace::Parse(std::string_view text) {
  Json doc;
  JURY_ASSIGN_OR_RETURN(doc, Json::Parse(text));
  if (!doc.is_object()) {
    return Status::InvalidArgument("trace must be an object");
  }
  SolveTrace trace;
  for (const auto& [key, value] : *doc.GetObject()) {
    if (key == "pool") {
      const std::vector<Json>* pool = value.GetArray();
      if (pool == nullptr) {
        return Status::InvalidArgument("trace.pool must be an array");
      }
      trace.pool.resize(pool->size());
      for (std::size_t i = 0; i < pool->size(); ++i) {
        JURY_RETURN_NOT_OK(ParseWorker((*pool)[i], i, &trace.pool[i]));
      }
    } else if (key == "entries") {
      const std::vector<Json>* entries = value.GetArray();
      if (entries == nullptr) {
        return Status::InvalidArgument("trace.entries must be an array");
      }
      for (std::size_t i = 0; i < entries->size(); ++i) {
        const Json& entry = (*entries)[i];
        const std::string path = "entries[" + std::to_string(i) + "]";
        if (!entry.is_object()) {
          return Status::InvalidArgument(path + " must be an object");
        }
        const Json* request = entry.Find("request");
        const Json* report = entry.Find("report");
        if (request == nullptr || report == nullptr ||
            entry.GetObject()->size() != 2) {
          return Status::InvalidArgument(
              path + " must have exactly the keys \"report\" and "
                     "\"request\"");
        }
        Entry parsed;
        JURY_ASSIGN_OR_RETURN(parsed.request,
                              SolveRequest::FromJson(*request));
        // Re-normalize: a hand-edited fixture must not be able to carry
        // a non-canonical (or wall-clock-bearing) report document into
        // the byte comparison.
        JURY_ASSIGN_OR_RETURN(parsed.report_json,
                              NormalizeReportJson(report->Dump()));
        trace.entries.push_back(std::move(parsed));
      }
    } else {
      return Status::InvalidArgument("trace: unknown key " +
                                     Json::Quote(key));
    }
  }
  return trace;
}

Result<SolveTrace> RecordTrace(std::vector<Worker> pool,
                               std::vector<SolveRequest> requests) {
  Result<PoolPlanContext> planned = PoolPlanContext::Plan(std::move(pool));
  JURY_RETURN_NOT_OK(planned.status());
  PoolPlanContext& context = planned.value();
  SolveTrace trace;
  trace.pool = context.candidates();
  trace.entries.reserve(requests.size());
  for (SolveRequest& request : requests) {
    SolveReport report;
    JURY_ASSIGN_OR_RETURN(report, context.Solve(request));
    SolveTrace::Entry entry;
    entry.request = std::move(request);
    JURY_ASSIGN_OR_RETURN(entry.report_json,
                          NormalizeReportJson(report.ToJson()));
    trace.entries.push_back(std::move(entry));
  }
  return trace;
}

Result<std::size_t> ReplayTrace(const SolveTrace& trace) {
  Result<PoolPlanContext> planned = PoolPlanContext::Plan(trace.pool);
  JURY_RETURN_NOT_OK(planned.status());
  PoolPlanContext& context = planned.value();
  for (std::size_t i = 0; i < trace.entries.size(); ++i) {
    const SolveTrace::Entry& entry = trace.entries[i];
    SolveReport report;
    JURY_ASSIGN_OR_RETURN(report, context.Solve(entry.request));
    std::string replayed;
    JURY_ASSIGN_OR_RETURN(replayed, NormalizeReportJson(report.ToJson()));
    if (replayed != entry.report_json) {
      return Status::InvalidArgument(
          "golden-trace divergence at entry " + std::to_string(i) +
          ": recorded " + entry.report_json + " but replayed " + replayed);
    }
  }
  return trace.entries.size();
}

}  // namespace jury::api
