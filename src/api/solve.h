#ifndef JURYOPT_API_SOLVE_H_
#define JURYOPT_API_SOLVE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "api/fused_scan.h"
#include "core/annealing.h"
#include "core/branch_bound.h"
#include "core/exhaustive.h"
#include "core/greedy.h"
#include "core/jsp.h"
#include "core/mvjs.h"
#include "core/objective.h"
#include "core/optjs.h"
#include "model/pool_snapshot.h"
#include "model/worker.h"
#include "model/worker_pool_view.h"
#include "util/cancellation.h"
#include "util/json.h"
#include "util/result.h"

namespace jury {
class ShardedWorkerPool;
}  // namespace jury

namespace jury::serve {
class ResultCache;
}  // namespace jury::serve

namespace jury::api {

/// \brief Knobs of `PoolPlanContext::Plan` / `PlanFromSnapshot`.
struct PlanOptions {
  /// Skip the per-worker `ValidateWorker` pass. Set when the pool was
  /// already validated upstream — a CSV loaded through `LoadWorkersCsv`
  /// (which validates every row as it parses) or a verified snapshot — so
  /// planning never re-walks N workers just to re-prove what the loader
  /// already proved.
  bool assume_validated = false;
  /// Shard size of the lazily built `ShardedWorkerPool` (0 = the
  /// `ShardedPoolOptions` default).
  std::size_t shard_size = 0;
  /// Slate length per shard (0 = the `ShardedPoolOptions` default).
  std::size_t slate_k = 0;
};

/// \brief The uniform, typed options bag a `SolveRequest` carries: one
/// field per solver family, each the solver's own options struct with its
/// own `Validate()`. A request touches only the fields its named solver
/// consumes (an "annealing" request never reads `exhaustive`), so
/// defaults elsewhere cost nothing; every consumed field is validated at
/// solve entry and surfaces bad knobs as a `Status`, never a CHECK abort.
struct SolverTuning {
  /// Objective for the *raw* solvers ("annealing", "exhaustive", the
  /// greedy family, "branch-bound"): "bv-bucket" (Algorithm 1, the OPTJS
  /// objective — configured by `bucket`), "bv-exact" (2^n enumeration,
  /// small juries only), or "mv-exact" (exact Majority Voting). The
  /// facades ignore it: "optjs" always scores with BV/bucket (configured
  /// by `optjs.bucket`), "mvjs" always with MV/exact.
  std::string objective = "bv-bucket";
  /// Algorithm-1 configuration of the "bv-bucket" objective.
  BucketJqOptions bucket;

  AnnealingOptions annealing;
  GreedyOptions greedy;
  ExhaustiveOptions exhaustive;
  BranchBoundOptions branch_bound;
  OptjsOptions optjs;
  MvjsOptions mvjs;
};

/// \brief One jury-selection query against a planned pool: the §2.2
/// instance scalars (budget, prior alpha), the registry name of the
/// solver to run, its options overrides, and the seed of the solve's
/// private rng stream. Everything a solve depends on is in here — two
/// equal requests against the same pool return bit-identical juries, on
/// any thread count, in any batch order.
struct SolveRequest {
  /// Registry name (see `RegisteredSolverNames()` in api/registry.h).
  std::string solver = "optjs";
  /// Budget B of the feasible-jury constraint `sum of costs <= B`.
  double budget = 0.0;
  /// Task prior alpha = Pr[t = 0].
  double alpha = 0.5;
  /// Seed of the solve's private `Rng` stream (stochastic solvers only;
  /// the deterministic solvers never draw from it).
  std::uint64_t rng_seed = 20150323;
  /// Typed options overrides for the named solver.
  SolverTuning tuning;
  /// Wall-clock deadline for this solve, in milliseconds from solve entry
  /// (0 = none). When it expires the solve stops at its next check site
  /// and returns the best jury found so far as a successful *anytime*
  /// report (`SolveReport::terminated_early` set) — never an error.
  /// Wall-clock, so where the solve stops varies run to run: keep
  /// deadline-free requests for golden traces and replay tests.
  double deadline_ms = 0.0;
  /// Deterministic work budget (0 = unlimited). Each strand of the solve
  /// (annealing chain, subset shard, scan, row) counts its own units
  /// against this cap, and the strand structure is a pure function of the
  /// request — so a capped solve stops at the same point and returns the
  /// same jury for every thread count and SIMD tier. Units are
  /// solver-specific (moves, Gray steps, rounds, nodes).
  std::uint64_t max_work_units = 0;
  /// Optional caller-owned cooperative cancel signal, polled at the same
  /// check sites as the deadline. Runtime-only: never serialized, absent
  /// from the JSON binding, and must outlive the solve.
  const CancelToken* cancel_token = nullptr;
  /// Attach a snapshot of the process-wide `StatsRegistry` (scheduler,
  /// evaluation, fusion, plan-context, and parser counters) to the
  /// report as `SolveReport::process_stats`. Off by default because the
  /// snapshot is process-cumulative — it varies with whatever else the
  /// process has run — and would break the byte-identity of golden-trace
  /// reports.
  bool collect_process_stats = false;

  /// Validates the request scalars (finite non-negative budget and
  /// deadline, a valid prior, a non-empty solver name). The tuning bag is
  /// validated by the solver that consumes it, at solve entry.
  Status Validate() const;

  /// \brief Strict JSON binding of the request, the wire shape of the
  /// serving surface (and the fuzzed one: arbitrary bytes -> Parse ->
  /// FromJson -> Validate -> Solve must never abort).
  ///
  /// `FromJson` starts from a default request and overlays the document:
  /// every key is optional, unknown keys are an error (catches typos
  /// instead of silently solving with defaults), and type mismatches,
  /// non-finite numbers where finite ones are required, and out-of-range
  /// integers all surface as InvalidArgument naming the JSON path.
  /// `ToJsonValue` emits every field (including defaults), except the two
  /// limit fields (`deadline_ms`, `max_work_units`), written only when
  /// set so limit-free dumps keep their historical byte layout, and the
  /// runtime-only `cancel_token`, which has no wire form. The round trip
  /// `FromJson(ToJsonValue(r)) == r` still holds, and the dump is
  /// byte-stable.
  static Result<SolveRequest> FromJson(const Json& doc);
  /// `Parse` + `FromJson` in one step for raw text.
  static Result<SolveRequest> FromJsonText(std::string_view text);
  Json ToJsonValue() const;
  std::string ToJson() const;
};

/// \brief Uniform result + instrumentation contract of every registered
/// solver — the stats block that historically only annealing exposed,
/// now filled by all of them.
struct SolveReport {
  /// Registry name of the solver that produced this report.
  std::string solver;
  /// The selected jury (indices into the planned pool's candidates).
  JspSolution solution;
  /// Wall-clock of the solve itself (excludes request validation and
  /// registry lookup; includes all nested parallel sections).
  double wall_seconds = 0.0;
  /// Full vs. delta-update jury scorings performed by this solve — the
  /// objective is instantiated per solve, so the counters are exact and
  /// never bleed across concurrent requests.
  EvaluationCounters evaluations;
  /// Solver-specific instrumentation flattened to key -> double
  /// (annealing move/acceptance counters, branch-and-bound node counts,
  /// ...). A `std::map`, so iteration — and the JSON below — is sorted.
  std::map<std::string, double> stats;
  /// Snapshot of the process-wide `StatsRegistry` taken after the solve,
  /// filled only when the request set `collect_process_stats` (the
  /// snapshot is process-cumulative, so it is opt-in to keep default
  /// reports byte-identical across replays).
  std::map<std::string, std::uint64_t> process_stats;
  /// True when the solve stopped at a check site before natural
  /// completion (work budget, deadline, or cancellation) and `solution`
  /// is the best-so-far anytime result — still a valid, feasible jury.
  bool terminated_early = false;
  /// Why it stopped: "" (ran to completion), "work-limit", "deadline",
  /// or "cancelled" — the highest-precedence reason across strands.
  std::string termination_reason;
  /// Work units counted across all strands (summed), in the solver's own
  /// units (annealing moves, Gray steps, greedy rounds, B&B nodes).
  std::uint64_t work_units = 0;
  /// True when the request set any limit (deadline, work budget, or
  /// cancel token). Gates the emission of the three fields above in
  /// `ToJson`, so limit-free reports — every golden trace among them —
  /// keep their historical byte layout.
  bool limits_active = false;

  /// Deterministic JSON (sorted keys; see util/json.h) for bench and
  /// service logs:
  /// `{"evaluations":{...},"solution":{...},"solver":...,"stats":{...},
  ///   "wall_seconds":...}` — plus a `"process_stats"` object when the
  /// request opted into the registry snapshot, and the
  /// `"terminated_early"` / `"termination_reason"` / `"work_units"`
  /// triple when the request set any limit.
  std::string ToJson() const;
};

/// \brief Retry discipline for `SolveMany`: how many attempts each
/// request gets and how attempts back off. Only transient failures —
/// `kResourceExhausted`, the class that injected faults and exhausted
/// node budgets surface as — are retried: deterministic failures
/// (InvalidArgument, NotFound) would fail identically again, and anytime
/// terminations (deadline, cancel, work limit) are successful reports,
/// never errors.
struct RetryPolicy {
  /// Attempts per request, including the first. 1 = no retries.
  std::size_t max_attempts = 1;
  /// Backoff before retry k (k = 1 for the first retry):
  /// `backoff_base_ms * 2^(k-1)`, scaled by a jitter factor in [0.5, 1.5)
  /// drawn from a stream derived from (request rng_seed, attempt) — a
  /// replayed batch sleeps the same schedule, while colliding requests
  /// decorrelate. 0 = retry immediately.
  double backoff_base_ms = 0.0;
};

/// \brief Aggregate retry accounting for one `SolveMany` batch.
struct RetryStats {
  /// Total solve attempts across the batch (>= the request count).
  std::uint64_t attempts = 0;
  /// Attempts beyond each request's first.
  std::uint64_t retries = 0;
};

/// \brief Knobs of the batched `SolveMany` overload.
struct SolveManyOptions {
  /// Worker count for the fan-out (0 resolves via JURYOPT_THREADS,
  /// 1 = serial) — same meaning as the legacy overload's parameter.
  std::size_t num_threads = 0;
  /// Routes every request's batched move-scan kernel flushes through one
  /// shared `FusedScanBroker`, so passes from concurrently queued
  /// requests coalesce into single fused sweeps (hot kernel table, hot
  /// caches) instead of each thread dispatching its own. Reports are
  /// byte-identical to the unfused path — each pass is a pure function
  /// of its own session's staged state — for any thread count and batch
  /// order (property-tested). Off by default: fusion pays off when many
  /// scan-heavy requests run concurrently, and costs a queue hop when
  /// they don't.
  bool fuse_move_scans = false;
  /// When non-null and `fuse_move_scans` is set, receives the broker's
  /// lifetime counters (passes, drains, fusion rate) after the batch.
  FusedScanStats* fusion_stats = nullptr;
  /// Per-request retry discipline (default: one attempt, no retries).
  /// A request that succeeds on attempt k > 1 reports
  /// `stats["attempts"] = k`; single-attempt reports are unchanged, so
  /// retry-free batches stay byte-identical to serial solves.
  RetryPolicy retry;
  /// When non-null, receives the batch's aggregate attempt counts.
  RetryStats* retry_stats = nullptr;
};

/// \brief One in-place worker mutation of `PoolPlanContext::ApplyPoolDelta`
/// — a re-estimated quality and/or re-negotiated cost for an existing
/// candidate. Index-addressed (pool membership never changes: the index
/// space, and with it every cached solution's jury indices, stays stable
/// across epochs).
struct PoolDeltaUpdate {
  /// Candidate index in the planned pool (`[0, num_candidates())`).
  std::size_t index = 0;
  /// The worker's new quality (must satisfy `ValidateWorker`).
  double quality = 0.5;
  /// The worker's new cost (must satisfy `ValidateWorker`).
  double cost = 0.0;
};

/// \brief Knobs of `PoolPlanContext::SubmitMany`.
struct SubmitOptions {
  /// Concurrency of the fan-out (0 resolves via JURYOPT_THREADS). <= 1
  /// solves every request inline *during submission* (the returned
  /// futures are already resolved) — the serial path never touches, or
  /// lazily spawns, the global scheduler, same as `SolveMany`.
  std::size_t num_threads = 0;
  /// Cross-request move-scan fusion, as in `SolveManyOptions`.
  bool fuse_move_scans = false;
  /// Per-request retry discipline, as in `SolveManyOptions`.
  RetryPolicy retry;
  /// Invoked once per request, with its batch index, right after its
  /// result becomes ready — from whichever scheduler thread finished it,
  /// with no lock held. The serving loop uses this to kick its event-loop
  /// wakeup fd. Must not block for long and must not call back into the
  /// submitting context's `SubmitMany`/`SolveMany`.
  std::function<void(std::size_t)> on_complete;
};

struct SubmitBatch;  // private to solve.cc
struct PoolState;    // one pool epoch's immutable plan; private to solve.cc

class PoolPlanContext;

/// \brief Handle to one request of a `SubmitMany` batch. Movable,
/// share-nothing with other futures of the batch except the batch itself
/// (kept alive until the last future is gone; dropping futures without
/// taking them is safe — outstanding solves finish and are discarded).
/// The submitting context must outlive the batch's futures.
class SolveFuture {
 public:
  SolveFuture(SolveFuture&&) noexcept;
  SolveFuture& operator=(SolveFuture&&) noexcept;
  SolveFuture(const SolveFuture&) = delete;
  SolveFuture& operator=(const SolveFuture&) = delete;
  ~SolveFuture();

  /// True once the result is ready (never blocks).
  bool Ready() const;
  /// Blocks until the result is ready.
  void Wait() const;
  /// Blocks until ready and moves the result out. Call at most once.
  Result<SolveReport> Take();

 private:
  friend class PoolPlanContext;
  SolveFuture(std::shared_ptr<SubmitBatch> batch, std::size_t index);

  std::shared_ptr<SubmitBatch> batch_;
  std::size_t index_ = 0;
};

/// \brief The common solver interface behind the registry: one virtual
/// `Solve` over (planned pool, request). Implementations are stateless
/// adapters around the core free functions' planned-pool overloads, so a
/// registry solve is bit-identical to the corresponding legacy call.
class JspSolver {
 public:
  virtual ~JspSolver() = default;
  /// The stable registry name ("annealing", "optjs", ...).
  virtual std::string name() const = 0;
  virtual Result<SolveReport> Solve(PoolPlanContext& context,
                                    const SolveRequest& request) const = 0;
};

/// \brief A long-lived planning context for one candidate pool — the
/// serving-layer shape of the paper's Fig. 1 system: one crowd worker
/// pool answering a *stream* of jury-selection queries with varying
/// budgets and task priors. Built once per pool, it owns everything the
/// per-request path used to rebuild from scratch:
///
///  * the validated candidate snapshot (pool validation runs once, at
///    `Plan`, never per request);
///  * the columnar `WorkerPoolView` every evaluation session scores from;
///  * a reusable arena of prevalidated `JspInstance` scratch objects, so
///    a request only stamps its (budget, alpha) scalars onto a leased
///    instance instead of copying the pool.
///
/// `Solve` runs one request; `SolveMany` fans a batch across the
/// process-wide scheduler, each request bit-identical to its serial
/// solve. The context is safe for concurrent `Solve` calls (the arena is
/// internally synchronized; the view is immutable).
class PoolPlanContext {
 public:
  /// Validates the pool (every worker's quality/cost ranges) and builds
  /// the plan. InvalidArgument on a bad worker.
  static Result<PoolPlanContext> Plan(std::vector<Worker> candidates);
  /// The knobbed overload: `options.assume_validated` skips the
  /// per-worker validation pass (the pool must come from a source that
  /// already validated it — `LoadWorkersCsv` does).
  static Result<PoolPlanContext> Plan(std::vector<Worker> candidates,
                                      const PlanOptions& options);

  /// Plans directly from a pool snapshot file: maps the columns read-only
  /// and adopts them as the plan's `WorkerPoolView` — no per-worker
  /// validation (the snapshot loader verified every invariant) and no
  /// column recomputation, so a million-worker pool plans in the time it
  /// takes to checksum the mapping. `Worker` structs are materialized
  /// lazily, on the first call site that needs the AoS record
  /// (`candidates()` / `AcquireInstance`); solves that only touch the
  /// columns never pay for them.
  static Result<PoolPlanContext> PlanFromSnapshot(
      const std::string& path, const PlanOptions& options = {});
  /// Same, adopting an already-loaded snapshot (moves it in; the context
  /// keeps it alive for as long as the columns are referenced).
  static Result<PoolPlanContext> PlanFromSnapshot(
      PoolSnapshot snapshot, const PlanOptions& options = {});

  // Movable, not copyable. Defined out of line: the arena type is
  // private to solve.cc.
  PoolPlanContext(PoolPlanContext&&) noexcept;
  PoolPlanContext& operator=(PoolPlanContext&&) noexcept;
  ~PoolPlanContext();
  PoolPlanContext(const PoolPlanContext&) = delete;
  PoolPlanContext& operator=(const PoolPlanContext&) = delete;

  /// The pool's AoS records. For a snapshot plan this materializes the
  /// structs on first use (thread-safe, once); prefer `num_candidates()` /
  /// `view()` when only sizes or columns are needed. Epoch-aware: inside
  /// a solve these read the solve's pinned epoch, outside they read the
  /// current one (see `ApplyPoolDelta`).
  const std::vector<Worker>& candidates() const;
  /// Pool size without materializing workers (column length).
  std::size_t num_candidates() const;
  /// The pool's columnar snapshot, shared read-only by every solve. The
  /// reference stays valid for the context's lifetime (epochs retire but
  /// never die), though after an `ApplyPoolDelta` a fresh call returns
  /// the new epoch's view.
  const WorkerPoolView& view() const;
  /// Where the pool came from: "memory" (in-process workers, CSV included)
  /// or "snapshot" (mapped `PoolSnapshot`).
  const char* pool_source() const;

  /// The plan's sharded summary index over `view()`, built lazily on
  /// first use (thread-safe, once) and shared read-only by every solve.
  /// Solver adapters wire it into `SolverOptions::sharded_pool` when a
  /// request opts into frontier pre-selection (`frontier_k > 0`).
  const ShardedWorkerPool* sharded_pool() const;

  /// Solves one request: validates its scalars, resolves the solver by
  /// name (NotFound for unknown names), and runs it against this plan.
  Result<SolveReport> Solve(const SolveRequest& request);

  /// Solves a batch, fanned across the process-wide scheduler
  /// (`num_threads` = 0 resolves via JURYOPT_THREADS, 1 = serial).
  /// Requests are independent — each draws only from its own seeded rng —
  /// so report `i` is bit-identical to `Solve(requests[i])` for any
  /// thread count and any batch order (property-tested). On error the
  /// whole batch fails with the lowest-index request's status.
  Result<std::vector<SolveReport>> SolveMany(
      std::span<const SolveRequest> requests, std::size_t num_threads = 0);

  /// The knobbed overload: same fan-out and same bit-identity contract,
  /// plus opt-in cross-request move-scan fusion (`fuse_move_scans`) —
  /// batched kernel flushes from all requests in this call coalesce
  /// through one flat-combining broker into fused sweeps. The legacy
  /// overload above is exactly `SolveMany(requests, {.num_threads = n})`.
  /// Implemented as `SubmitMany` + an in-order wait — the blocking
  /// special case of the async path, sharing its claim loop, retry
  /// discipline, and epoch lease.
  Result<std::vector<SolveReport>> SolveMany(
      std::span<const SolveRequest> requests, const SolveManyOptions& options);

  /// \brief Async submission: schedules the batch on the process-wide
  /// work-stealing scheduler and returns one future per request,
  /// immediately. Report `i` is bit-identical to `Solve(requests[i])`
  /// for any thread count and any completion/Take order — each request
  /// draws only from its own seeded rng, exactly as in `SolveMany`.
  ///
  /// The whole batch leases the pool epoch current at submission: a
  /// concurrent `ApplyPoolDelta` re-plans *later* submissions without
  /// perturbing (or failing) anything in flight. Requests are claimed
  /// dynamically by min(num_threads, count) worker tasks; deadline,
  /// cancel-token, and work-unit semantics are per-request, unchanged
  /// from `Solve`. If spawning the very first worker task fails (fault
  /// injection, thread exhaustion), every future resolves to
  /// `kResourceExhausted`; a partial spawn failure just degrades
  /// parallelism — the batch still completes.
  std::vector<SolveFuture> SubmitMany(std::span<const SolveRequest> requests,
                                      const SubmitOptions& options = {});

  /// \brief Applies worker churn — re-estimated qualities/costs — as a new
  /// pool epoch. InvalidArgument (and no epoch change) on an out-of-range
  /// index or a worker that fails validation.
  ///
  /// The current epoch's state is never mutated: a new candidate table and
  /// columnar view are built, the sharded summary index (when already
  /// built) is *rebased* — copied shard summaries, then `ApplyDelta` over
  /// exactly the changed indices, so only touched shards pay a rebuild —
  /// and the epoch counter bumps (`serve.epoch_bumps`). In-flight solves
  /// and leases keep the epoch they started on; the result cache keeps
  /// old-epoch entries keyed by their epoch (new-epoch lookups miss and
  /// re-solve; stale entries age out via LRU) — churn invalidates only
  /// what changed. Concurrent `ApplyPoolDelta` calls serialize.
  Status ApplyPoolDelta(std::span<const PoolDeltaUpdate> updates);

  /// The pool's current data epoch (0 at plan time, +1 per
  /// `ApplyPoolDelta`). Inside a solve, the solve's leased epoch.
  std::uint64_t pool_epoch() const;

  /// Enables the epoch-keyed result cache (`serve::ResultCache`) for this
  /// context's solves. Off by default — replay consumers (golden traces)
  /// keep exact historical behavior. Call before serving traffic, not
  /// concurrently with solves. Only deterministic requests participate:
  /// a request with a wall-clock deadline, a cancel token, or
  /// `collect_process_stats` bypasses the cache entirely; deterministic
  /// work-unit caps participate (the cap is part of the key, via the
  /// request's canonical JSON).
  void EnableResultCache(std::size_t max_entries = 1024);
  /// The enabled cache (nullptr when disabled). Thread-safe for stats.
  serve::ResultCache* result_cache() const;

  /// \brief RAII lease of a prevalidated per-request instance from the
  /// context's arena (returned to the free list on destruction).
  class InstanceLease {
   public:
    InstanceLease(InstanceLease&& other) noexcept
        : owner_(other.owner_),
          state_(other.state_),
          instance_(std::move(other.instance_)) {
      other.owner_ = nullptr;
    }
    InstanceLease& operator=(InstanceLease&&) = delete;
    InstanceLease(const InstanceLease&) = delete;
    InstanceLease& operator=(const InstanceLease&) = delete;
    ~InstanceLease();

    JspInstance& instance() { return *instance_; }
    const JspInstance& instance() const { return *instance_; }

   private:
    friend class PoolPlanContext;
    InstanceLease(PoolPlanContext* owner, PoolState* state,
                  std::unique_ptr<JspInstance> instance)
        : owner_(owner), state_(state), instance_(std::move(instance)) {}

    PoolPlanContext* owner_;
    /// The epoch the instance's candidate copy matches — the lease
    /// returns to *that* epoch's free list, so churn mid-lease can never
    /// hand a stale candidate table to a later request.
    PoolState* state_;
    std::unique_ptr<JspInstance> instance_;
  };

  /// Checks an instance out of the arena with the request's scalars
  /// stamped on. The candidate copy is made at most once per concurrency
  /// level and reused for every later request — the amortization the
  /// bench's PlanContext-reuse section measures.
  InstanceLease AcquireInstance(double budget, double alpha);

  /// Instances materialized so far (arena high-water mark): stays at the
  /// solve concurrency — not the request count — under reuse.
  std::size_t instances_created() const;

 private:
  struct Arena;

  PoolPlanContext(std::vector<Worker> candidates, const PlanOptions& options);
  PoolPlanContext(std::unique_ptr<PoolSnapshot> snapshot,
                  const PlanOptions& options);

  /// The epoch state this caller should read: the innermost state pinned
  /// on this thread for this context (a solve in flight), else the
  /// newest epoch.
  PoolState* CurrentState() const;
  void ReturnInstance(PoolState* state,
                      std::unique_ptr<JspInstance> instance);
  /// Materializes `state`'s workers from its snapshot (no-op for memory
  /// and churned states) and binds them onto its view. Thread-safe, once
  /// per state.
  void EnsureWorkers(PoolState* state) const;

  PlanOptions plan_options_;
  /// Everything mutable lives behind this pointer — the epoch states
  /// (each owning its candidates/view/sharded pool/instance free list,
  /// retired epochs kept alive so in-flight readers never dangle), the
  /// scratch-buffer arena, and the optional result cache — so the
  /// context keeps its defaulted moves.
  std::unique_ptr<Arena> arena_;
};

}  // namespace jury::api

#endif  // JURYOPT_API_SOLVE_H_
