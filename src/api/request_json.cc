// JSON binding of `SolveRequest` — the wire format of the serving
// surface, and the most fuzzed path in the repo: arbitrary bytes ->
// `Json::Parse` -> `SolveRequest::FromJson` -> `Validate` -> `Solve`
// must never abort. The binding is strict: unknown keys are errors (a
// typoed knob must not silently solve with defaults), every type
// mismatch names the JSON path, and integers are range-checked before
// they are narrowed.

#include <cstdint>
#include <limits>
#include <string>
#include <utility>

#include "api/solve.h"
#include "util/json.h"
#include "util/result.h"

namespace jury::api {

namespace {

// -- Scalar field readers. Each takes the already-looked-up value plus
// -- the dotted path for the error message.

Status GetBoolField(const Json& value, const std::string& path, bool* out) {
  if (!value.is_bool()) {
    return Status::InvalidArgument(path + " must be a boolean");
  }
  *out = value.GetBool().value();
  return Status::OK();
}

Status GetDoubleField(const Json& value, const std::string& path,
                      double* out) {
  if (!value.is_number()) {
    return Status::InvalidArgument(path + " must be a number");
  }
  *out = value.GetDouble().value();
  return Status::OK();
}

Status GetUint64Field(const Json& value, const std::string& path,
                      std::uint64_t* out) {
  Result<std::uint64_t> parsed = value.GetUint64();
  if (!parsed.ok()) {
    return Status::InvalidArgument(path + " must be a non-negative integer");
  }
  *out = parsed.value();
  return Status::OK();
}

Status GetSizeField(const Json& value, const std::string& path,
                    std::size_t* out) {
  std::uint64_t parsed = 0;
  JURY_RETURN_NOT_OK(GetUint64Field(value, path, &parsed));
  if (parsed > std::numeric_limits<std::size_t>::max()) {
    return Status::InvalidArgument(path + " is out of range");
  }
  *out = static_cast<std::size_t>(parsed);
  return Status::OK();
}

Status GetIntField(const Json& value, const std::string& path, int* out) {
  std::uint64_t parsed = 0;
  JURY_RETURN_NOT_OK(GetUint64Field(value, path, &parsed));
  if (parsed > static_cast<std::uint64_t>(std::numeric_limits<int>::max())) {
    return Status::InvalidArgument(path + " is out of range");
  }
  *out = static_cast<int>(parsed);
  return Status::OK();
}

Status GetStringField(const Json& value, const std::string& path,
                      std::string* out) {
  if (!value.is_string()) {
    return Status::InvalidArgument(path + " must be a string");
  }
  *out = value.GetString().value();
  return Status::OK();
}

Status ExpectObject(const Json& value, const std::string& path) {
  if (!value.is_object()) {
    return Status::InvalidArgument(path + " must be an object");
  }
  return Status::OK();
}

Status UnknownKey(const std::string& path, const std::string& key) {
  return Status::InvalidArgument(path + ": unknown key " + Json::Quote(key));
}

// -- The two frontier knobs shared by every frontier-capable solver's
// -- options (greedy family, annealing polish, branch-and-bound
// -- ordering). Bound here so the binders stay in sync; the runtime-only
// -- `sharded_pool` / `frontier_stats` pointers have no wire form.

Status BindFrontierKey(const Json& value, const std::string& field,
                       const std::string& key, SolverOptions* out,
                       bool* handled) {
  *handled = true;
  if (key == "frontier_k") {
    return GetSizeField(value, field, &out->frontier_k);
  }
  if (key == "frontier_exact") {
    return GetBoolField(value, field, &out->frontier_exact);
  }
  *handled = false;
  return Status::OK();
}

/// Writer mirror: emitted only when non-default, so frontier-free dumps —
/// every golden fixture among them — keep their historical byte layout.
void FrontierToJson(const SolverOptions& options, Json* doc) {
  if (options.frontier_k != 0) {
    doc->Set("frontier_k", static_cast<std::uint64_t>(options.frontier_k));
  }
  if (!options.frontier_exact) doc->Set("frontier_exact", false);
}

// -- Per-struct binders. Each overlays the document onto an
// -- already-default-initialized struct, so absent keys keep defaults.

Status BindBucket(const Json& doc, const std::string& path,
                  BucketJqOptions* out) {
  JURY_RETURN_NOT_OK(ExpectObject(doc, path));
  for (const auto& [key, value] : *doc.GetObject()) {
    const std::string field = path + "." + key;
    if (key == "num_buckets") {
      JURY_RETURN_NOT_OK(GetIntField(value, field, &out->num_buckets));
    } else if (key == "enable_pruning") {
      JURY_RETURN_NOT_OK(GetBoolField(value, field, &out->enable_pruning));
    } else if (key == "backend") {
      std::string backend;
      JURY_RETURN_NOT_OK(GetStringField(value, field, &backend));
      if (backend == "dense") {
        out->backend = BucketBackend::kDense;
      } else if (backend == "sparse") {
        out->backend = BucketBackend::kSparse;
      } else {
        return Status::InvalidArgument(field +
                                       " must be \"dense\" or \"sparse\"");
      }
    } else if (key == "high_quality_cutoff") {
      JURY_RETURN_NOT_OK(
          GetDoubleField(value, field, &out->high_quality_cutoff));
    } else {
      return UnknownKey(path, key);
    }
  }
  return Status::OK();
}

Status BindAnnealing(const Json& doc, const std::string& path,
                     AnnealingOptions* out) {
  JURY_RETURN_NOT_OK(ExpectObject(doc, path));
  for (const auto& [key, value] : *doc.GetObject()) {
    const std::string field = path + "." + key;
    if (key == "num_threads") {
      JURY_RETURN_NOT_OK(GetSizeField(value, field, &out->num_threads));
    } else if (key == "initial_temperature") {
      JURY_RETURN_NOT_OK(
          GetDoubleField(value, field, &out->initial_temperature));
    } else if (key == "epsilon") {
      JURY_RETURN_NOT_OK(GetDoubleField(value, field, &out->epsilon));
    } else if (key == "cooling_factor") {
      JURY_RETURN_NOT_OK(GetDoubleField(value, field, &out->cooling_factor));
    } else if (key == "trust_monotone_adds") {
      JURY_RETURN_NOT_OK(
          GetBoolField(value, field, &out->trust_monotone_adds));
    } else if (key == "return_best_seen") {
      JURY_RETURN_NOT_OK(GetBoolField(value, field, &out->return_best_seen));
    } else if (key == "removal_probability") {
      JURY_RETURN_NOT_OK(
          GetDoubleField(value, field, &out->removal_probability));
    } else if (key == "use_incremental") {
      JURY_RETURN_NOT_OK(GetBoolField(value, field, &out->use_incremental));
    } else if (key == "max_polish_moves") {
      JURY_RETURN_NOT_OK(GetSizeField(value, field, &out->max_polish_moves));
    } else if (key == "num_restarts") {
      JURY_RETURN_NOT_OK(GetSizeField(value, field, &out->num_restarts));
    } else {
      bool handled = false;
      JURY_RETURN_NOT_OK(BindFrontierKey(value, field, key, out, &handled));
      if (!handled) return UnknownKey(path, key);
    }
  }
  return Status::OK();
}

Status BindGreedy(const Json& doc, const std::string& path,
                  GreedyOptions* out) {
  JURY_RETURN_NOT_OK(ExpectObject(doc, path));
  for (const auto& [key, value] : *doc.GetObject()) {
    const std::string field = path + "." + key;
    if (key == "num_threads") {
      JURY_RETURN_NOT_OK(GetSizeField(value, field, &out->num_threads));
    } else if (key == "use_incremental") {
      JURY_RETURN_NOT_OK(GetBoolField(value, field, &out->use_incremental));
    } else {
      bool handled = false;
      JURY_RETURN_NOT_OK(BindFrontierKey(value, field, key, out, &handled));
      if (!handled) return UnknownKey(path, key);
    }
  }
  return Status::OK();
}

Status BindExhaustive(const Json& doc, const std::string& path,
                      ExhaustiveOptions* out) {
  JURY_RETURN_NOT_OK(ExpectObject(doc, path));
  for (const auto& [key, value] : *doc.GetObject()) {
    const std::string field = path + "." + key;
    if (key == "num_threads") {
      JURY_RETURN_NOT_OK(GetSizeField(value, field, &out->num_threads));
    } else if (key == "max_candidates") {
      JURY_RETURN_NOT_OK(GetSizeField(value, field, &out->max_candidates));
    } else if (key == "use_incremental") {
      JURY_RETURN_NOT_OK(GetBoolField(value, field, &out->use_incremental));
    } else {
      return UnknownKey(path, key);
    }
  }
  return Status::OK();
}

Status BindBranchBound(const Json& doc, const std::string& path,
                       BranchBoundOptions* out) {
  JURY_RETURN_NOT_OK(ExpectObject(doc, path));
  for (const auto& [key, value] : *doc.GetObject()) {
    const std::string field = path + "." + key;
    if (key == "max_nodes") {
      JURY_RETURN_NOT_OK(GetSizeField(value, field, &out->max_nodes));
    } else if (key == "use_incremental") {
      JURY_RETURN_NOT_OK(GetBoolField(value, field, &out->use_incremental));
    } else if (key == "order_by_marginal_gain") {
      JURY_RETURN_NOT_OK(
          GetBoolField(value, field, &out->order_by_marginal_gain));
    } else {
      bool handled = false;
      JURY_RETURN_NOT_OK(BindFrontierKey(value, field, key, out, &handled));
      if (!handled) return UnknownKey(path, key);
    }
  }
  return Status::OK();
}

Status BindOptjs(const Json& doc, const std::string& path, OptjsOptions* out) {
  JURY_RETURN_NOT_OK(ExpectObject(doc, path));
  for (const auto& [key, value] : *doc.GetObject()) {
    const std::string field = path + "." + key;
    if (key == "bucket") {
      JURY_RETURN_NOT_OK(BindBucket(value, field, &out->bucket));
    } else if (key == "annealing") {
      JURY_RETURN_NOT_OK(BindAnnealing(value, field, &out->annealing));
    } else if (key == "exhaustive_threshold") {
      JURY_RETURN_NOT_OK(
          GetSizeField(value, field, &out->exhaustive_threshold));
    } else if (key == "use_incremental") {
      JURY_RETURN_NOT_OK(GetBoolField(value, field, &out->use_incremental));
    } else if (key == "num_threads") {
      JURY_RETURN_NOT_OK(GetSizeField(value, field, &out->num_threads));
    } else {
      return UnknownKey(path, key);
    }
  }
  return Status::OK();
}

Status BindMvjs(const Json& doc, const std::string& path, MvjsOptions* out) {
  JURY_RETURN_NOT_OK(ExpectObject(doc, path));
  for (const auto& [key, value] : *doc.GetObject()) {
    const std::string field = path + "." + key;
    if (key == "annealing") {
      JURY_RETURN_NOT_OK(BindAnnealing(value, field, &out->annealing));
    } else if (key == "use_odd_top_k") {
      JURY_RETURN_NOT_OK(GetBoolField(value, field, &out->use_odd_top_k));
    } else if (key == "use_incremental") {
      JURY_RETURN_NOT_OK(GetBoolField(value, field, &out->use_incremental));
    } else {
      return UnknownKey(path, key);
    }
  }
  return Status::OK();
}

Status BindTuning(const Json& doc, const std::string& path,
                  SolverTuning* out) {
  JURY_RETURN_NOT_OK(ExpectObject(doc, path));
  for (const auto& [key, value] : *doc.GetObject()) {
    const std::string field = path + "." + key;
    if (key == "objective") {
      JURY_RETURN_NOT_OK(GetStringField(value, field, &out->objective));
    } else if (key == "bucket") {
      JURY_RETURN_NOT_OK(BindBucket(value, field, &out->bucket));
    } else if (key == "annealing") {
      JURY_RETURN_NOT_OK(BindAnnealing(value, field, &out->annealing));
    } else if (key == "greedy") {
      JURY_RETURN_NOT_OK(BindGreedy(value, field, &out->greedy));
    } else if (key == "exhaustive") {
      JURY_RETURN_NOT_OK(BindExhaustive(value, field, &out->exhaustive));
    } else if (key == "branch_bound") {
      JURY_RETURN_NOT_OK(BindBranchBound(value, field, &out->branch_bound));
    } else if (key == "optjs") {
      JURY_RETURN_NOT_OK(BindOptjs(value, field, &out->optjs));
    } else if (key == "mvjs") {
      JURY_RETURN_NOT_OK(BindMvjs(value, field, &out->mvjs));
    } else {
      return UnknownKey(path, key);
    }
  }
  return Status::OK();
}

// -- Writers (the ToJsonValue mirror). Every field is emitted, defaults
// -- included, so a dumped request reparses to an equal struct and the
// -- bytes are stable. (The top-level limit fields are the one exception;
// -- see ToJsonValue.)

Json BucketToJson(const BucketJqOptions& options) {
  return Json::Object()
      .Set("backend",
           options.backend == BucketBackend::kDense ? "dense" : "sparse")
      .Set("enable_pruning", options.enable_pruning)
      .Set("high_quality_cutoff", options.high_quality_cutoff)
      .Set("num_buckets", options.num_buckets);
}

Json AnnealingToJson(const AnnealingOptions& options) {
  Json doc = Json::Object()
                 .Set("cooling_factor", options.cooling_factor)
                 .Set("epsilon", options.epsilon)
                 .Set("initial_temperature", options.initial_temperature)
                 .Set("max_polish_moves",
                      static_cast<std::uint64_t>(options.max_polish_moves))
                 .Set("num_restarts",
                      static_cast<std::uint64_t>(options.num_restarts))
                 .Set("num_threads",
                      static_cast<std::uint64_t>(options.num_threads))
                 .Set("removal_probability", options.removal_probability)
                 .Set("return_best_seen", options.return_best_seen)
                 .Set("trust_monotone_adds", options.trust_monotone_adds)
                 .Set("use_incremental", options.use_incremental);
  FrontierToJson(options, &doc);
  return doc;
}

Json GreedyToJson(const GreedyOptions& options) {
  Json doc = Json::Object()
                 .Set("num_threads",
                      static_cast<std::uint64_t>(options.num_threads))
                 .Set("use_incremental", options.use_incremental);
  FrontierToJson(options, &doc);
  return doc;
}

Json ExhaustiveToJson(const ExhaustiveOptions& options) {
  return Json::Object()
      .Set("max_candidates",
           static_cast<std::uint64_t>(options.max_candidates))
      .Set("num_threads", static_cast<std::uint64_t>(options.num_threads))
      .Set("use_incremental", options.use_incremental);
}

Json BranchBoundToJson(const BranchBoundOptions& options) {
  Json doc = Json::Object()
                 .Set("max_nodes", static_cast<std::uint64_t>(options.max_nodes))
                 .Set("order_by_marginal_gain", options.order_by_marginal_gain)
                 .Set("use_incremental", options.use_incremental);
  FrontierToJson(options, &doc);
  return doc;
}

Json OptjsToJson(const OptjsOptions& options) {
  return Json::Object()
      .Set("annealing", AnnealingToJson(options.annealing))
      .Set("bucket", BucketToJson(options.bucket))
      .Set("exhaustive_threshold",
           static_cast<std::uint64_t>(options.exhaustive_threshold))
      .Set("num_threads", static_cast<std::uint64_t>(options.num_threads))
      .Set("use_incremental", options.use_incremental);
}

Json MvjsToJson(const MvjsOptions& options) {
  return Json::Object()
      .Set("annealing", AnnealingToJson(options.annealing))
      .Set("use_incremental", options.use_incremental)
      .Set("use_odd_top_k", options.use_odd_top_k);
}

Json TuningToJson(const SolverTuning& tuning) {
  return Json::Object()
      .Set("annealing", AnnealingToJson(tuning.annealing))
      .Set("branch_bound", BranchBoundToJson(tuning.branch_bound))
      .Set("bucket", BucketToJson(tuning.bucket))
      .Set("exhaustive", ExhaustiveToJson(tuning.exhaustive))
      .Set("greedy", GreedyToJson(tuning.greedy))
      .Set("mvjs", MvjsToJson(tuning.mvjs))
      .Set("objective", tuning.objective)
      .Set("optjs", OptjsToJson(tuning.optjs));
}

}  // namespace

Result<SolveRequest> SolveRequest::FromJson(const Json& doc) {
  JURY_RETURN_NOT_OK(ExpectObject(doc, "request"));
  SolveRequest request;
  for (const auto& [key, value] : *doc.GetObject()) {
    const std::string field = "request." + key;
    if (key == "solver") {
      JURY_RETURN_NOT_OK(GetStringField(value, field, &request.solver));
    } else if (key == "budget") {
      JURY_RETURN_NOT_OK(GetDoubleField(value, field, &request.budget));
    } else if (key == "alpha") {
      JURY_RETURN_NOT_OK(GetDoubleField(value, field, &request.alpha));
    } else if (key == "rng_seed") {
      JURY_RETURN_NOT_OK(GetUint64Field(value, field, &request.rng_seed));
    } else if (key == "deadline_ms") {
      JURY_RETURN_NOT_OK(GetDoubleField(value, field, &request.deadline_ms));
    } else if (key == "max_work_units") {
      JURY_RETURN_NOT_OK(
          GetUint64Field(value, field, &request.max_work_units));
    } else if (key == "collect_process_stats") {
      JURY_RETURN_NOT_OK(
          GetBoolField(value, field, &request.collect_process_stats));
    } else if (key == "tuning") {
      JURY_RETURN_NOT_OK(BindTuning(value, field, &request.tuning));
    } else {
      return UnknownKey("request", key);
    }
  }
  return request;
}

Result<SolveRequest> SolveRequest::FromJsonText(std::string_view text) {
  Json doc;
  JURY_ASSIGN_OR_RETURN(doc, Json::Parse(text));
  return FromJson(doc);
}

Json SolveRequest::ToJsonValue() const {
  Json doc = Json::Object()
                 .Set("alpha", alpha)
                 .Set("budget", budget)
                 .Set("collect_process_stats", collect_process_stats)
                 .Set("rng_seed", rng_seed)
                 .Set("solver", solver)
                 .Set("tuning", TuningToJson(tuning));
  // The two limit fields are the exception to "emit every field": written
  // only when set, so limit-free dumps — the checked-in golden fixtures
  // among them — keep their historical byte layout. (`cancel_token` is
  // runtime-only and has no wire form at all.)
  if (deadline_ms > 0.0) doc.Set("deadline_ms", deadline_ms);
  if (max_work_units != 0) doc.Set("max_work_units", max_work_units);
  return doc;
}

std::string SolveRequest::ToJson() const { return ToJsonValue().Dump(); }

}  // namespace jury::api
