#include "api/fused_scan.h"

#include <utility>

#include "util/stats_registry.h"

namespace jury::api {

namespace {

// Process-wide aggregates across every broker instance (each broker's
// own atomics remain the per-batch `FusedScanStats` source). Registered
// at static initialization so the instrument set is identical in every
// process, used or not.
StatsRegistry::Counter& g_passes = RegisterStatsCounter("fusion.passes");
StatsRegistry::Counter& g_drains = RegisterStatsCounter("fusion.drains");
StatsRegistry::Counter& g_fused_drains =
    RegisterStatsCounter("fusion.fused_drains");

}  // namespace

void FusedScanBroker::Execute(KernelPass pass) {
  std::atomic<bool> done{false};
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    queue_.push_back(PendingPass{pass, &done});
  }
  passes_.fetch_add(1, std::memory_order_relaxed);
  g_passes.Increment();

  // Wait for a combiner to run our pass, bidding for the combiner role
  // ourselves so progress never depends on any particular thread: if the
  // current combiner unlocked just before our enqueue, the next try_lock
  // here succeeds and we drain our own pass (plus anything that piled up
  // behind it).
  while (!done.load(std::memory_order_acquire)) {
    if (combiner_.try_lock()) {
      DrainQueue();
      combiner_.unlock();
      // Our pass may still have been claimed by a racing combiner that
      // swapped the queue out before our drain saw it — the outer loop
      // re-checks `done` either way.
    }
  }
}

void FusedScanBroker::DrainQueue() {
  std::vector<PendingPass> batch;
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      if (queue_.empty()) return;
      batch.clear();
      std::swap(batch, queue_);
    }
    // The fused sweep: passes from however many requests, back to back on
    // this core, kernel table and caches staying hot.
    for (const PendingPass& pending : batch) {
      pending.pass.run(pending.pass.ctx);
      pending.done->store(true, std::memory_order_release);
    }
    drains_.fetch_add(1, std::memory_order_relaxed);
    g_drains.Increment();
    if (batch.size() > 1) {
      fused_drains_.fetch_add(1, std::memory_order_relaxed);
      g_fused_drains.Increment();
    }
    std::size_t seen = max_drain_.load(std::memory_order_relaxed);
    while (batch.size() > seen &&
           !max_drain_.compare_exchange_weak(seen, batch.size(),
                                             std::memory_order_relaxed)) {
    }
  }
}

FusedScanStats FusedScanBroker::stats() const {
  FusedScanStats stats;
  stats.passes = passes_.load(std::memory_order_relaxed);
  stats.drains = drains_.load(std::memory_order_relaxed);
  stats.fused_drains = fused_drains_.load(std::memory_order_relaxed);
  stats.max_drain = max_drain_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace jury::api
