#include "api/solve.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <limits>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "api/registry.h"
#include "model/prior.h"
#include "model/sharded_pool.h"
#include "serve/result_cache.h"
#include "serve/serve_stats.h"
#include "util/fault_injection.h"
#include "util/json.h"
#include "util/rng.h"
#include "util/scheduler.h"
#include "util/scratch_arena.h"
#include "util/stats_registry.h"

namespace jury::api {

namespace {

// Serving-layer instruments (see util/stats_registry.h). File-scope
// references: registration runs at static initialization — *before* any
// use, so the instrument set (and with it the `--stats` schema) is
// identical in every process — and the hot path pays one relaxed
// fetch_add per bump.
StatsRegistry::Counter& g_contexts_planned =
    RegisterStatsCounter("plan.contexts_planned");
StatsRegistry::Counter& g_instances_created =
    RegisterStatsCounter("plan.instances_created");
StatsRegistry::Counter& g_instances_leased =
    RegisterStatsCounter("plan.instances_leased");
StatsRegistry::Counter& g_requests_solved =
    RegisterStatsCounter("api.requests_solved");
StatsRegistry::Counter& g_request_errors =
    RegisterStatsCounter("api.request_errors");
StatsRegistry::Counter& g_solves_deadline_exceeded =
    RegisterStatsCounter("api.solves_deadline_exceeded");
StatsRegistry::Counter& g_solves_cancelled =
    RegisterStatsCounter("api.solves_cancelled");
StatsRegistry::Counter& g_retries = RegisterStatsCounter("api.retries");

/// Sleeps out the policy's backoff before retry `retry_number` (1-based).
/// The jitter stream is derived from (rng_seed, retry number), never from
/// wall clock, so a replayed batch sleeps the same schedule.
void BackoffBeforeRetry(const SolveRequest& request,
                        std::size_t retry_number,
                        const RetryPolicy& policy) {
  if (policy.backoff_base_ms <= 0.0) return;
  const std::size_t shift = std::min<std::size_t>(retry_number - 1, 20);
  const double exponential_ms =
      policy.backoff_base_ms *
      static_cast<double>(std::uint64_t{1} << shift);
  Rng jitter(request.rng_seed ^
             (0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(retry_number)));
  const double factor = 0.5 + jitter.Uniform();  // [0.5, 1.5)
  std::this_thread::sleep_for(
      std::chrono::duration<double, std::milli>(exponential_ms * factor));
}

}  // namespace

Status SolveRequest::Validate() const {
  if (solver.empty()) {
    return Status::InvalidArgument("SolveRequest.solver must name a solver");
  }
  if (!(budget >= 0.0) || !(budget <= std::numeric_limits<double>::max())) {
    return Status::InvalidArgument("budget must be finite and non-negative");
  }
  if (!(deadline_ms >= 0.0) ||
      !(deadline_ms <= std::numeric_limits<double>::max())) {
    return Status::InvalidArgument(
        "deadline_ms must be finite and non-negative");
  }
  return ValidateAlpha(alpha);
}

std::string SolveReport::ToJson() const {
  Json stats_json = Json::Object();
  for (const auto& [key, value] : stats) stats_json.Set(key, value);
  Json document = Json::Object();
  document
      .Set("evaluations",
           Json::Object()
               .Set("full", static_cast<std::uint64_t>(evaluations.full))
               .Set("incremental",
                    static_cast<std::uint64_t>(evaluations.incremental)))
      .Set("solution", solution.ToJsonValue())
      .Set("solver", solver);
  if (!process_stats.empty()) {
    Json process_json = Json::Object();
    for (const auto& [key, value] : process_stats) {
      process_json.Set(key, value);
    }
    document.Set("process_stats", std::move(process_json));
  }
  if (limits_active) {
    // Emitted only for limited solves: limit-free reports (every golden
    // trace) keep their historical byte layout.
    document.Set("terminated_early", terminated_early)
        .Set("termination_reason", termination_reason)
        .Set("work_units", work_units);
  }
  return document.Set("stats", std::move(stats_json))
      .Set("wall_seconds", wall_seconds)
      .Dump();
}

/// \brief One pool epoch's immutable plan: the candidate table, its
/// columnar view, the lazily built sharded summary index, and the
/// free list of per-request instances whose candidate copies match this
/// epoch. Epoch 0 is built at plan time; `ApplyPoolDelta` appends a new
/// state per churn batch. States are heap-pinned (shared_ptr in the
/// arena) and retired states are kept alive for the context's lifetime,
/// so a reference obtained from any epoch — a `view()` held by an
/// in-flight solve, a lease's candidate span — can never dangle.
struct PoolState {
  std::uint64_t epoch = 0;
  /// Owner of the mapped columns for a snapshot-born epoch 0 (its view
  /// adopts them). Null for memory plans and every churned state.
  std::unique_ptr<PoolSnapshot> snapshot;
  std::vector<Worker> candidates;
  WorkerPoolView view;
  /// Snapshot states materialize `candidates` lazily, once.
  std::once_flag workers_once;
  std::mutex pool_mutex;
  std::unique_ptr<ShardedWorkerPool> pool;  // lazy; guarded by pool_mutex
  /// The instance arena: a mutex-guarded free list of `JspInstance`
  /// objects whose candidate vectors were copied from this epoch exactly
  /// once. The lock is held only for the list pop/push — never across a
  /// solve — so concurrent requests contend for nanoseconds.
  std::mutex instance_mutex;
  std::vector<std::unique_ptr<JspInstance>> free_list;
};

struct PoolPlanContext::Arena {
  /// Guards `states`; `states.back()` is the current epoch. Push-only.
  std::mutex state_mutex;
  std::vector<std::shared_ptr<PoolState>> states;
  /// Serializes `ApplyPoolDelta` (epoch construction is copy-heavy; two
  /// racing churn batches must see each other's updates).
  std::mutex churn_mutex;
  /// Instances materialized across all epochs (the arena high-water
  /// mark `instances_created()` reports).
  std::atomic<std::size_t> created{0};
  /// Session staging-buffer capacity pool, scoped onto the solving
  /// thread by `Solve` (see util/scratch_arena.h).
  ScratchArena scratch;
  /// The epoch-keyed result cache; null until `EnableResultCache`.
  std::unique_ptr<serve::ResultCache> cache;
  bool from_snapshot = false;
};

namespace {

/// Epoch pins: the innermost entry for a context names the `PoolState`
/// every plan accessor (`view()`, `AcquireInstance`, `sharded_pool`, ...)
/// on this thread must read, so one solve — whose registry adapter calls
/// those accessors one by one — observes a single consistent epoch even
/// while `ApplyPoolDelta` publishes a newer one. `SubmitMany` worker
/// tasks pin their batch's leased epoch; `Solve` re-pins whatever it
/// resolved, which also covers nested scheduler threads that join a
/// solve's inner parallel regions through its bound view/instance (those
/// never call the accessors themselves).
thread_local std::vector<std::pair<const PoolPlanContext*, PoolState*>>
    t_state_pins;

class ScopedStatePin {
 public:
  ScopedStatePin(const PoolPlanContext* context, PoolState* state) {
    t_state_pins.emplace_back(context, state);
  }
  ~ScopedStatePin() { t_state_pins.pop_back(); }
  ScopedStatePin(const ScopedStatePin&) = delete;
  ScopedStatePin& operator=(const ScopedStatePin&) = delete;
};

}  // namespace

PoolPlanContext::PoolPlanContext(std::vector<Worker> candidates,
                                 const PlanOptions& options)
    : plan_options_(options), arena_(std::make_unique<Arena>()) {
  auto state = std::make_shared<PoolState>();
  state->candidates = std::move(candidates);
  state->view = WorkerPoolView(state->candidates);
  arena_->states.push_back(std::move(state));
}

PoolPlanContext::PoolPlanContext(std::unique_ptr<PoolSnapshot> snapshot,
                                 const PlanOptions& options)
    : plan_options_(options), arena_(std::make_unique<Arena>()) {
  auto state = std::make_shared<PoolState>();
  state->snapshot = std::move(snapshot);
  state->view = WorkerPoolView::FromColumns(
      state->snapshot->quality(), state->snapshot->cost(),
      state->snapshot->norm_quality(), state->snapshot->log_odds());
  arena_->from_snapshot = true;
  arena_->states.push_back(std::move(state));
}

// Out of line so `Arena` is complete where unique_ptr needs it. Moves are
// trivially safe: every epoch state is heap-pinned behind the arena
// pointer, which just changes hands.
PoolPlanContext::PoolPlanContext(PoolPlanContext&&) noexcept = default;
PoolPlanContext& PoolPlanContext::operator=(PoolPlanContext&&) noexcept =
    default;
PoolPlanContext::~PoolPlanContext() = default;

Result<PoolPlanContext> PoolPlanContext::Plan(std::vector<Worker> candidates) {
  return Plan(std::move(candidates), PlanOptions{});
}

Result<PoolPlanContext> PoolPlanContext::Plan(std::vector<Worker> candidates,
                                              const PlanOptions& options) {
  if (!options.assume_validated) {
    for (const Worker& worker : candidates) {
      JURY_RETURN_NOT_OK(ValidateWorker(worker));
    }
  }
  g_contexts_planned.Increment();
  return PoolPlanContext(std::move(candidates), options);
}

Result<PoolPlanContext> PoolPlanContext::PlanFromSnapshot(
    const std::string& path, const PlanOptions& options) {
  auto snapshot = std::make_unique<PoolSnapshot>();
  JURY_ASSIGN_OR_RETURN(*snapshot, PoolSnapshot::Load(path));
  g_contexts_planned.Increment();
  return PoolPlanContext(std::move(snapshot), options);
}

Result<PoolPlanContext> PoolPlanContext::PlanFromSnapshot(
    PoolSnapshot snapshot, const PlanOptions& options) {
  g_contexts_planned.Increment();
  return PoolPlanContext(std::make_unique<PoolSnapshot>(std::move(snapshot)),
                         options);
}

PoolState* PoolPlanContext::CurrentState() const {
  for (auto it = t_state_pins.rbegin(); it != t_state_pins.rend(); ++it) {
    if (it->first == this) return it->second;
  }
  std::lock_guard<std::mutex> lock(arena_->state_mutex);
  return arena_->states.back().get();
}

const std::vector<Worker>& PoolPlanContext::candidates() const {
  PoolState* const state = CurrentState();
  EnsureWorkers(state);
  return state->candidates;
}

std::size_t PoolPlanContext::num_candidates() const {
  return CurrentState()->view.size();
}

const WorkerPoolView& PoolPlanContext::view() const {
  return CurrentState()->view;
}

const char* PoolPlanContext::pool_source() const {
  return arena_->from_snapshot ? "snapshot" : "memory";
}

std::uint64_t PoolPlanContext::pool_epoch() const {
  return CurrentState()->epoch;
}

void PoolPlanContext::EnableResultCache(std::size_t max_entries) {
  serve::ResultCacheOptions options;
  options.max_entries = max_entries;
  arena_->cache = std::make_unique<serve::ResultCache>(options);
}

serve::ResultCache* PoolPlanContext::result_cache() const {
  return arena_->cache.get();
}

void PoolPlanContext::EnsureWorkers(PoolState* state) const {
  std::call_once(state->workers_once, [state] {
    if (state->snapshot == nullptr) return;  // workers carried already
    state->candidates = state->snapshot->MaterializeWorkers();
    state->view.BindWorkers(state->candidates);
  });
}

const ShardedWorkerPool* PoolPlanContext::sharded_pool() const {
  PoolState* const state = CurrentState();
  std::lock_guard<std::mutex> lock(state->pool_mutex);
  if (state->pool == nullptr) {
    ShardedPoolOptions options;
    if (plan_options_.shard_size > 0) {
      options.shard_size = plan_options_.shard_size;
    }
    if (plan_options_.slate_k > 0) options.slate_k = plan_options_.slate_k;
    state->pool = std::make_unique<ShardedWorkerPool>(&state->view, options);
  }
  return state->pool.get();
}

Status PoolPlanContext::ApplyPoolDelta(
    std::span<const PoolDeltaUpdate> updates) {
  std::lock_guard<std::mutex> churn(arena_->churn_mutex);
  PoolState* const current = [&] {
    std::lock_guard<std::mutex> lock(arena_->state_mutex);
    return arena_->states.back().get();
  }();
  // Churned states carry materialized workers (the new candidate table is
  // a copy), so snapshot plans materialize at their first churn.
  EnsureWorkers(current);

  auto next = std::make_shared<PoolState>();
  next->epoch = current->epoch + 1;
  next->candidates = current->candidates;
  std::vector<std::size_t> changed;
  changed.reserve(updates.size());
  for (const PoolDeltaUpdate& update : updates) {
    if (update.index >= next->candidates.size()) {
      return Status::InvalidArgument(
          "PoolDeltaUpdate.index out of range: " +
          std::to_string(update.index) + " >= " +
          std::to_string(next->candidates.size()));
    }
    Worker& worker = next->candidates[update.index];
    worker.quality = update.quality;
    worker.cost = update.cost;
    JURY_RETURN_NOT_OK(ValidateWorker(worker));
    changed.push_back(update.index);
  }
  // The owning view recomputes the derived columns with the session
  // backends' own expressions, so unchanged workers' columns are
  // bit-identical to the previous epoch's (snapshot-born included).
  next->view = WorkerPoolView(next->candidates);
  {
    // Rebase the summary index instead of rebuilding it: copy the current
    // epoch's shard summaries onto the new view, then refresh exactly the
    // touched shards. Untouched shards keep their summaries *and* their
    // shard-epoch tags. Skipped when the current epoch never built its
    // pool (the new epoch stays lazy too).
    std::lock_guard<std::mutex> lock(current->pool_mutex);
    if (current->pool != nullptr) {
      next->pool =
          std::make_unique<ShardedWorkerPool>(*current->pool, &next->view);
      next->pool->ApplyDelta(changed);
    }
  }
  serve::ServeEpochBumps().Increment();
  std::lock_guard<std::mutex> lock(arena_->state_mutex);
  arena_->states.push_back(std::move(next));
  return Status::OK();
}

PoolPlanContext::InstanceLease PoolPlanContext::AcquireInstance(double budget,
                                                                double alpha) {
  // A cold lease copies the whole pool; the fault hook stands in for that
  // allocation failing. First, before any arena mutation, so a fired
  // fault leaves the free list and high-water mark untouched.
  JURY_FAULT_POINT("plan.lease_instance");
  PoolState* const state = CurrentState();
  EnsureWorkers(state);  // snapshot plans materialize structs on first lease
  std::unique_ptr<JspInstance> instance;
  {
    std::lock_guard<std::mutex> lock(state->instance_mutex);
    if (!state->free_list.empty()) {
      instance = std::move(state->free_list.back());
      state->free_list.pop_back();
    }
  }
  g_instances_leased.Increment();
  if (instance == nullptr) {
    arena_->created.fetch_add(1, std::memory_order_relaxed);
    g_instances_created.Increment();
    instance = std::make_unique<JspInstance>();
    instance->candidates = state->candidates;  // the one O(n) copy, reused
  }
  instance->budget = budget;
  instance->alpha = alpha;
  return InstanceLease(this, state, std::move(instance));
}

void PoolPlanContext::ReturnInstance(PoolState* state,
                                     std::unique_ptr<JspInstance> instance) {
  std::lock_guard<std::mutex> lock(state->instance_mutex);
  state->free_list.push_back(std::move(instance));
}

std::size_t PoolPlanContext::instances_created() const {
  return arena_->created.load(std::memory_order_relaxed);
}

PoolPlanContext::InstanceLease::~InstanceLease() {
  if (owner_ != nullptr) owner_->ReturnInstance(state_, std::move(instance_));
}

Result<SolveReport> PoolPlanContext::Solve(const SolveRequest& request) {
  // Pin the epoch for the whole solve: the registry adapter reads
  // `view()`, `AcquireInstance`, and `sharded_pool()` as separate calls,
  // and a concurrent `ApplyPoolDelta` between them must not tear the
  // request across two epochs. (Re-pinning a batch-pinned state is a
  // harmless duplicate.)
  PoolState* const state = CurrentState();
  ScopedStatePin pin(this, state);
  // Sessions opened during this solve lease their staging-buffer
  // capacity from the context's pool instead of allocating per request.
  ScopedThreadScratchArena scratch_scope(&arena_->scratch);

  // Result cache (opt-in): only requests whose execution is a pure
  // function of (epoch, request) participate — a wall-clock deadline, a
  // live cancel token, or a process-cumulative stats snapshot makes the
  // report non-replayable. The canonical request JSON is the key: it is
  // byte-stable and covers every identity field (budget, alpha, solver,
  // tuning, seed, work-unit cap), so distinct tuples cannot collide.
  serve::ResultCache* const cache = arena_->cache.get();
  const bool cacheable = cache != nullptr && request.deadline_ms == 0.0 &&
                         request.cancel_token == nullptr &&
                         !request.collect_process_stats;
  std::string cache_key;
  if (cacheable) {
    cache_key = request.ToJson();
    SolveReport cached;
    if (cache->Lookup(state->epoch, cache_key, &cached)) {
      serve::ServeCacheHits().Increment();
      g_requests_solved.Increment();
      return cached;
    }
    serve::ServeCacheMisses().Increment();
  }

  Result<SolveReport> result = [&]() -> Result<SolveReport> {
    try {
      JURY_RETURN_NOT_OK(request.Validate());
      const JspSolver* solver = nullptr;
      JURY_ASSIGN_OR_RETURN(solver, FindSolver(request.solver));
      return solver->Solve(*this, request);
    } catch (const FaultInjectedError& error) {
      // The one place injected faults are converted: whatever site fired
      // — on this thread or rethrown from a drained parallel region —
      // surfaces as the same transient, retryable status class a real
      // allocation failure would.
      return Status::ResourceExhausted(error.what());
    }
  }();
  if (!result.ok()) {
    g_request_errors.Increment();
    return result;
  }
  g_requests_solved.Increment();
  const SolveReport& report = result.value();
  if (report.terminated_early) {
    if (report.termination_reason == StopReasonName(StopReason::kDeadline)) {
      g_solves_deadline_exceeded.Increment();
    } else if (report.termination_reason ==
               StopReasonName(StopReason::kCancelled)) {
      g_solves_cancelled.Increment();
    }
  }
  if (cacheable) {
    // Stored with wall_seconds zeroed (the cache's identity contract);
    // the returned cold report keeps its measured wall time.
    cache->Insert(state->epoch, cache_key, result.value());
  }
  if (request.collect_process_stats) {
    // Snapshot after the bump so the export covers this request too.
    result.value().process_stats = StatsRegistry::Global().Snapshot();
  }
  return result;
}

/// \brief Shared state of one `SubmitMany` call: the copied requests, the
/// per-request result slots, the claim counter the worker tasks pull
/// from, and the batch-wide instruments (fusion broker, retry totals).
/// Kept alive by the futures (shared_ptr); worker tasks hold only raw
/// pointers, which is safe because `group` — declared last, so destroyed
/// first — waits out every task before any other member dies.
struct SubmitBatch {
  PoolPlanContext* context = nullptr;
  /// The epoch leased at submission; every request of the batch solves
  /// against it, so churn mid-batch cannot fail or tear in-flight work.
  PoolState* state = nullptr;
  std::vector<SolveRequest> requests;
  RetryPolicy retry;
  std::size_t max_attempts = 1;
  std::function<void(std::size_t)> on_complete;
  // One broker spans the whole batch when fusing: every task scopes it
  // as the thread's ambient scan sink, the registry adapters bind it
  // onto each per-solve objective, and sessions (plus their clones on
  // nested scheduler threads) submit their batched kernel flushes to it
  // instead of dispatching inline. Fusion never changes results — each
  // pass is a pure function of its own session's staged state.
  FusedScanBroker broker;
  FusedScanBroker* sink = nullptr;
  std::atomic<std::size_t> next{0};
  std::atomic<std::uint64_t> total_attempts{0};
  std::atomic<std::uint64_t> total_retries{0};
  std::mutex mutex;
  std::condition_variable cv;
  std::vector<std::optional<Result<SolveReport>>> results;  // guarded by mutex
  /// LAST member: its destructor drains every outstanding worker task
  /// (which reads the fields above through raw `this`) before they die.
  std::optional<TaskGroup> group;

  /// Per-request retry loop. Only `kResourceExhausted` — the transient
  /// class (injected faults, node budgets) — is retried; anything else
  /// is final on the first attempt. Retries run inline on the same task,
  /// in attempt order, so the batch's bit-identity contract is
  /// untouched: each attempt is a full fresh solve from the request's
  /// own seed.
  Result<SolveReport> SolveWithRetry(std::size_t i) {
    const SolveRequest& request = requests[i];
    try {
      for (std::size_t attempt = 1;; ++attempt) {
        total_attempts.fetch_add(1, std::memory_order_relaxed);
        Result<SolveReport> result = context->Solve(request);
        if (result.ok()) {
          // Surfaced only when a retry actually happened, so retry-free
          // reports stay byte-identical to their serial solves.
          if (attempt > 1) {
            result.value().stats["attempts"] = static_cast<double>(attempt);
          }
          return result;
        }
        if (attempt >= max_attempts ||
            result.status().code() != StatusCode::kResourceExhausted) {
          return result;
        }
        total_retries.fetch_add(1, std::memory_order_relaxed);
        g_retries.Increment();
        BackoffBeforeRetry(request, attempt, retry);
      }
    } catch (const std::exception& error) {
      // A task that dies without publishing would hang its future; fold
      // any escaped exception into the result instead.
      return Status::Internal(error.what());
    }
  }

  void Publish(std::size_t i, Result<SolveReport> result) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      results[i].emplace(std::move(result));
    }
    cv.notify_all();
    if (on_complete) on_complete(i);
  }
};

SolveFuture::SolveFuture(std::shared_ptr<SubmitBatch> batch, std::size_t index)
    : batch_(std::move(batch)), index_(index) {}
SolveFuture::SolveFuture(SolveFuture&&) noexcept = default;
SolveFuture& SolveFuture::operator=(SolveFuture&&) noexcept = default;
SolveFuture::~SolveFuture() = default;

bool SolveFuture::Ready() const {
  std::lock_guard<std::mutex> lock(batch_->mutex);
  return batch_->results[index_].has_value();
}

void SolveFuture::Wait() const {
  std::unique_lock<std::mutex> lock(batch_->mutex);
  batch_->cv.wait(lock,
                  [&] { return batch_->results[index_].has_value(); });
}

Result<SolveReport> SolveFuture::Take() {
  std::unique_lock<std::mutex> lock(batch_->mutex);
  batch_->cv.wait(lock,
                  [&] { return batch_->results[index_].has_value(); });
  return std::move(*batch_->results[index_]);
}

std::vector<SolveFuture> PoolPlanContext::SubmitMany(
    std::span<const SolveRequest> requests, const SubmitOptions& options) {
  const std::size_t count = requests.size();
  auto batch = std::make_shared<SubmitBatch>();
  batch->context = this;
  batch->state = CurrentState();
  batch->requests.assign(requests.begin(), requests.end());
  batch->retry = options.retry;
  batch->max_attempts = std::max<std::size_t>(options.retry.max_attempts, 1);
  batch->on_complete = options.on_complete;
  batch->sink = options.fuse_move_scans ? &batch->broker : nullptr;
  batch->results.resize(count);
  std::vector<SolveFuture> futures;
  futures.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    futures.push_back(SolveFuture(batch, i));
  }
  if (count == 0) return futures;

  const std::size_t threads =
      std::min(ResolveThreadCount(options.num_threads), count);
  SubmitBatch* const raw = batch.get();
  if (threads <= 1) {
    // Serial: solve inline at submission (the futures return ready).
    // Mirrors `GlobalParallelFor`'s structural invariant — a serial
    // caller never touches, or lazily spawns, the global scheduler.
    ScopedStatePin pin(this, raw->state);
    ScopedThreadScanSink scoped(raw->sink);
    for (std::size_t i = 0; i < count; ++i) {
      raw->Publish(i, raw->SolveWithRetry(i));
    }
    return futures;
  }

  // Claim-loop fan-out: min(threads, count) worker tasks pull request
  // indices from one shared counter, so heterogeneous batches balance
  // (a batch can mix exhaustive solves with greedy ones) and a request's
  // own nested regions fan out further on the same scheduler. Every
  // request runs the same code path as a serial `Solve`, reading only
  // its own seeded rng, so the futures are a pure function of the
  // request list — for any thread count and completion order.
  batch->group.emplace();
  std::size_t spawned = 0;
  try {
    for (std::size_t t = 0; t < threads; ++t) {
      batch->group->Run([raw] {
        ScopedStatePin pin(raw->context, raw->state);
        ScopedThreadScanSink scoped(raw->sink);
        for (;;) {
          const std::size_t i =
              raw->next.fetch_add(1, std::memory_order_relaxed);
          if (i >= raw->requests.size()) break;
          raw->Publish(i, raw->SolveWithRetry(i));
        }
      });
      ++spawned;
    }
  } catch (const FaultInjectedError& error) {
    if (spawned == 0) {
      // No worker exists to drain the queue: resolve every future with
      // the same transient, retryable status an in-solve fault maps to.
      for (;;) {
        const std::size_t i = raw->next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) break;
        raw->Publish(i, Status::ResourceExhausted(error.what()));
      }
    }
    // spawned > 0: degraded parallelism — the live workers drain the
    // whole queue, so the batch still completes.
  }
  return futures;
}

Result<std::vector<SolveReport>> PoolPlanContext::SolveMany(
    std::span<const SolveRequest> requests, std::size_t num_threads) {
  SolveManyOptions options;
  options.num_threads = num_threads;
  return SolveMany(requests, options);
}

Result<std::vector<SolveReport>> PoolPlanContext::SolveMany(
    std::span<const SolveRequest> requests, const SolveManyOptions& options) {
  SubmitOptions submit;
  submit.num_threads = options.num_threads;
  submit.fuse_move_scans = options.fuse_move_scans;
  submit.retry = options.retry;
  std::vector<SolveFuture> futures = SubmitMany(requests, submit);
  // Take in index order, draining every future before returning, so the
  // batch error contract holds: the lowest-index failure wins, and no
  // task is abandoned mid-solve.
  std::optional<Status> first_error;
  std::vector<SolveReport> reports;
  reports.reserve(futures.size());
  const std::shared_ptr<SubmitBatch> batch =
      futures.empty() ? nullptr : futures.front().batch_;
  for (SolveFuture& future : futures) {
    Result<SolveReport> result = future.Take();
    if (!result.ok()) {
      if (!first_error.has_value()) first_error = result.status();
      continue;
    }
    if (!first_error.has_value()) {
      reports.push_back(std::move(result).value());
    }
  }
  if (batch != nullptr) {
    if (batch->sink != nullptr && options.fusion_stats != nullptr) {
      *options.fusion_stats = batch->broker.stats();
    }
    if (options.retry_stats != nullptr) {
      options.retry_stats->attempts =
          batch->total_attempts.load(std::memory_order_relaxed);
      options.retry_stats->retries =
          batch->total_retries.load(std::memory_order_relaxed);
    }
  }
  if (first_error.has_value()) return *first_error;
  return reports;
}

}  // namespace jury::api
