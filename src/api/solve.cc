#include "api/solve.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <limits>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "api/registry.h"
#include "model/prior.h"
#include "model/sharded_pool.h"
#include "util/fault_injection.h"
#include "util/json.h"
#include "util/rng.h"
#include "util/scheduler.h"
#include "util/stats_registry.h"

namespace jury::api {

namespace {

// Serving-layer instruments (see util/stats_registry.h). File-scope
// references: registration runs at static initialization — *before* any
// use, so the instrument set (and with it the `--stats` schema) is
// identical in every process — and the hot path pays one relaxed
// fetch_add per bump.
StatsRegistry::Counter& g_contexts_planned =
    RegisterStatsCounter("plan.contexts_planned");
StatsRegistry::Counter& g_instances_created =
    RegisterStatsCounter("plan.instances_created");
StatsRegistry::Counter& g_instances_leased =
    RegisterStatsCounter("plan.instances_leased");
StatsRegistry::Counter& g_requests_solved =
    RegisterStatsCounter("api.requests_solved");
StatsRegistry::Counter& g_request_errors =
    RegisterStatsCounter("api.request_errors");
StatsRegistry::Counter& g_solves_deadline_exceeded =
    RegisterStatsCounter("api.solves_deadline_exceeded");
StatsRegistry::Counter& g_solves_cancelled =
    RegisterStatsCounter("api.solves_cancelled");
StatsRegistry::Counter& g_retries = RegisterStatsCounter("api.retries");

/// Sleeps out the policy's backoff before retry `retry_number` (1-based).
/// The jitter stream is derived from (rng_seed, retry number), never from
/// wall clock, so a replayed batch sleeps the same schedule.
void BackoffBeforeRetry(const SolveRequest& request,
                        std::size_t retry_number,
                        const RetryPolicy& policy) {
  if (policy.backoff_base_ms <= 0.0) return;
  const std::size_t shift = std::min<std::size_t>(retry_number - 1, 20);
  const double exponential_ms =
      policy.backoff_base_ms *
      static_cast<double>(std::uint64_t{1} << shift);
  Rng jitter(request.rng_seed ^
             (0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(retry_number)));
  const double factor = 0.5 + jitter.Uniform();  // [0.5, 1.5)
  std::this_thread::sleep_for(
      std::chrono::duration<double, std::milli>(exponential_ms * factor));
}

}  // namespace

Status SolveRequest::Validate() const {
  if (solver.empty()) {
    return Status::InvalidArgument("SolveRequest.solver must name a solver");
  }
  if (!(budget >= 0.0) || !(budget <= std::numeric_limits<double>::max())) {
    return Status::InvalidArgument("budget must be finite and non-negative");
  }
  if (!(deadline_ms >= 0.0) ||
      !(deadline_ms <= std::numeric_limits<double>::max())) {
    return Status::InvalidArgument(
        "deadline_ms must be finite and non-negative");
  }
  return ValidateAlpha(alpha);
}

std::string SolveReport::ToJson() const {
  Json stats_json = Json::Object();
  for (const auto& [key, value] : stats) stats_json.Set(key, value);
  Json document = Json::Object();
  document
      .Set("evaluations",
           Json::Object()
               .Set("full", static_cast<std::uint64_t>(evaluations.full))
               .Set("incremental",
                    static_cast<std::uint64_t>(evaluations.incremental)))
      .Set("solution", solution.ToJsonValue())
      .Set("solver", solver);
  if (!process_stats.empty()) {
    Json process_json = Json::Object();
    for (const auto& [key, value] : process_stats) {
      process_json.Set(key, value);
    }
    document.Set("process_stats", std::move(process_json));
  }
  if (limits_active) {
    // Emitted only for limited solves: limit-free reports (every golden
    // trace) keep their historical byte layout.
    document.Set("terminated_early", terminated_early)
        .Set("termination_reason", termination_reason)
        .Set("work_units", work_units);
  }
  return document.Set("stats", std::move(stats_json))
      .Set("wall_seconds", wall_seconds)
      .Dump();
}

/// The instance arena: a mutex-guarded free list of `JspInstance` objects
/// whose candidate vectors were copied from the plan exactly once. The
/// lock is held only for the list pop/push — never across a solve — so
/// concurrent requests contend for nanoseconds, not solve time.
struct PoolPlanContext::Arena {
  std::mutex mutex;
  std::vector<std::unique_ptr<JspInstance>> free_list;
  std::size_t created = 0;
  // Lazy plan artifacts live here (not as direct context members) so the
  // context keeps its defaulted moves: `std::once_flag` is immovable, but
  // the arena pointer just changes hands.
  std::once_flag workers_once;
  std::once_flag pool_once;
  std::unique_ptr<ShardedWorkerPool> pool;
};

PoolPlanContext::PoolPlanContext(std::vector<Worker> candidates,
                                 const PlanOptions& options)
    : plan_options_(options),
      candidates_(std::move(candidates)),
      view_(candidates_),
      arena_(std::make_unique<Arena>()) {}

PoolPlanContext::PoolPlanContext(std::unique_ptr<PoolSnapshot> snapshot,
                                 const PlanOptions& options)
    : plan_options_(options),
      snapshot_(std::move(snapshot)),
      view_(WorkerPoolView::FromColumns(
          snapshot_->quality(), snapshot_->cost(), snapshot_->norm_quality(),
          snapshot_->log_odds())),
      arena_(std::make_unique<Arena>()) {}

// Out of line so `Arena` is complete where unique_ptr needs it. The move
// is safe for the view: moving the vector keeps its heap buffer, so the
// view's internal spans stay valid.
PoolPlanContext::PoolPlanContext(PoolPlanContext&&) noexcept = default;
PoolPlanContext& PoolPlanContext::operator=(PoolPlanContext&&) noexcept =
    default;
PoolPlanContext::~PoolPlanContext() = default;

Result<PoolPlanContext> PoolPlanContext::Plan(std::vector<Worker> candidates) {
  return Plan(std::move(candidates), PlanOptions{});
}

Result<PoolPlanContext> PoolPlanContext::Plan(std::vector<Worker> candidates,
                                              const PlanOptions& options) {
  if (!options.assume_validated) {
    for (const Worker& worker : candidates) {
      JURY_RETURN_NOT_OK(ValidateWorker(worker));
    }
  }
  g_contexts_planned.Increment();
  return PoolPlanContext(std::move(candidates), options);
}

Result<PoolPlanContext> PoolPlanContext::PlanFromSnapshot(
    const std::string& path, const PlanOptions& options) {
  auto snapshot = std::make_unique<PoolSnapshot>();
  JURY_ASSIGN_OR_RETURN(*snapshot, PoolSnapshot::Load(path));
  g_contexts_planned.Increment();
  return PoolPlanContext(std::move(snapshot), options);
}

Result<PoolPlanContext> PoolPlanContext::PlanFromSnapshot(
    PoolSnapshot snapshot, const PlanOptions& options) {
  g_contexts_planned.Increment();
  return PoolPlanContext(std::make_unique<PoolSnapshot>(std::move(snapshot)),
                         options);
}

const std::vector<Worker>& PoolPlanContext::candidates() const {
  EnsureWorkers();
  return candidates_;
}

void PoolPlanContext::EnsureWorkers() const {
  std::call_once(arena_->workers_once, [this] {
    if (snapshot_ == nullptr) return;  // memory plans carry workers already
    candidates_ = snapshot_->MaterializeWorkers();
    view_.BindWorkers(candidates_);
  });
}

const ShardedWorkerPool* PoolPlanContext::sharded_pool() const {
  std::call_once(arena_->pool_once, [this] {
    ShardedPoolOptions options;
    if (plan_options_.shard_size > 0) {
      options.shard_size = plan_options_.shard_size;
    }
    if (plan_options_.slate_k > 0) options.slate_k = plan_options_.slate_k;
    arena_->pool = std::make_unique<ShardedWorkerPool>(&view_, options);
  });
  return arena_->pool.get();
}

PoolPlanContext::InstanceLease PoolPlanContext::AcquireInstance(double budget,
                                                                double alpha) {
  // A cold lease copies the whole pool; the fault hook stands in for that
  // allocation failing. First, before any arena mutation, so a fired
  // fault leaves the free list and high-water mark untouched.
  JURY_FAULT_POINT("plan.lease_instance");
  EnsureWorkers();  // snapshot plans materialize structs on first lease
  std::unique_ptr<JspInstance> instance;
  {
    std::lock_guard<std::mutex> lock(arena_->mutex);
    if (!arena_->free_list.empty()) {
      instance = std::move(arena_->free_list.back());
      arena_->free_list.pop_back();
    } else {
      ++arena_->created;
    }
  }
  g_instances_leased.Increment();
  if (instance == nullptr) {
    g_instances_created.Increment();
    instance = std::make_unique<JspInstance>();
    instance->candidates = candidates_;  // the one O(n) copy, then reused
  }
  instance->budget = budget;
  instance->alpha = alpha;
  return InstanceLease(this, std::move(instance));
}

void PoolPlanContext::ReturnInstance(std::unique_ptr<JspInstance> instance) {
  std::lock_guard<std::mutex> lock(arena_->mutex);
  arena_->free_list.push_back(std::move(instance));
}

std::size_t PoolPlanContext::instances_created() const {
  std::lock_guard<std::mutex> lock(arena_->mutex);
  return arena_->created;
}

PoolPlanContext::InstanceLease::~InstanceLease() {
  if (owner_ != nullptr) owner_->ReturnInstance(std::move(instance_));
}

Result<SolveReport> PoolPlanContext::Solve(const SolveRequest& request) {
  Result<SolveReport> result = [&]() -> Result<SolveReport> {
    try {
      JURY_RETURN_NOT_OK(request.Validate());
      const JspSolver* solver = nullptr;
      JURY_ASSIGN_OR_RETURN(solver, FindSolver(request.solver));
      return solver->Solve(*this, request);
    } catch (const FaultInjectedError& error) {
      // The one place injected faults are converted: whatever site fired
      // — on this thread or rethrown from a drained parallel region —
      // surfaces as the same transient, retryable status class a real
      // allocation failure would.
      return Status::ResourceExhausted(error.what());
    }
  }();
  if (!result.ok()) {
    g_request_errors.Increment();
    return result;
  }
  g_requests_solved.Increment();
  const SolveReport& report = result.value();
  if (report.terminated_early) {
    if (report.termination_reason == StopReasonName(StopReason::kDeadline)) {
      g_solves_deadline_exceeded.Increment();
    } else if (report.termination_reason ==
               StopReasonName(StopReason::kCancelled)) {
      g_solves_cancelled.Increment();
    }
  }
  if (request.collect_process_stats) {
    // Snapshot after the bump so the export covers this request too.
    result.value().process_stats = StatsRegistry::Global().Snapshot();
  }
  return result;
}

Result<std::vector<SolveReport>> PoolPlanContext::SolveMany(
    std::span<const SolveRequest> requests, std::size_t num_threads) {
  SolveManyOptions options;
  options.num_threads = num_threads;
  return SolveMany(requests, options);
}

Result<std::vector<SolveReport>> PoolPlanContext::SolveMany(
    std::span<const SolveRequest> requests, const SolveManyOptions& options) {
  const std::size_t count = requests.size();
  std::vector<std::optional<Result<SolveReport>>> results(count);
  const std::size_t threads =
      std::min(ResolveThreadCount(options.num_threads),
               std::max<std::size_t>(count, 1));
  // When fusing, one broker spans the whole batch: every task scopes it
  // as the thread's ambient scan sink, the registry adapters bind it
  // onto each per-solve objective, and sessions (plus their clones on
  // nested scheduler threads) submit their batched kernel flushes to it
  // instead of dispatching inline. Fusion never changes results — each
  // pass is a pure function of its own session's staged state — so the
  // bit-identity contract below is unchanged.
  FusedScanBroker broker;
  FusedScanBroker* const sink = options.fuse_move_scans ? &broker : nullptr;
  // Per-request retry loop. Only `kResourceExhausted` — the transient
  // class (injected faults, node budgets) — is retried; anything else is
  // final on the first attempt. Retries run inline on the same task, in
  // attempt order, so the batch's bit-identity contract is untouched:
  // each attempt is a full fresh solve from the request's own seed.
  const std::size_t max_attempts =
      std::max<std::size_t>(options.retry.max_attempts, 1);
  std::atomic<std::uint64_t> total_attempts{0};
  std::atomic<std::uint64_t> total_retries{0};
  const auto solve_with_retry =
      [&](const SolveRequest& request) -> Result<SolveReport> {
    for (std::size_t attempt = 1;; ++attempt) {
      total_attempts.fetch_add(1, std::memory_order_relaxed);
      Result<SolveReport> result = Solve(request);
      if (result.ok()) {
        // Surfaced only when a retry actually happened, so retry-free
        // reports stay byte-identical to their serial solves.
        if (attempt > 1) {
          result.value().stats["attempts"] = static_cast<double>(attempt);
        }
        return result;
      }
      if (attempt >= max_attempts ||
          result.status().code() != StatusCode::kResourceExhausted) {
        return result;
      }
      total_retries.fetch_add(1, std::memory_order_relaxed);
      g_retries.Increment();
      BackoffBeforeRetry(request, attempt, options.retry);
    }
  };
  // One task per request (grain 1): requests are heterogeneous — a batch
  // can mix exhaustive solves with greedy ones — so idle workers should
  // steal individual requests, and a request's own nested regions
  // (restart chains, candidate scans) fan out further on the same
  // scheduler. Every request is solved by the same code path as a serial
  // `Solve`, reading only its own seeded rng, so the result vector is a
  // pure function of the request list.
  try {
    Scheduler::GlobalParallelFor(
        0, count, 1,
        [&](std::size_t begin, std::size_t end) {
          ScopedThreadScanSink scoped(sink);
          for (std::size_t i = begin; i < end; ++i) {
            results[i].emplace(solve_with_retry(requests[i]));
          }
        },
        threads);
  } catch (const FaultInjectedError& error) {
    // The batch's own fan-out failed (a task spawn, before any
    // per-request handler could run): fail the whole batch with the same
    // clean, retryable status an in-solve fault gets.
    return Status::ResourceExhausted(error.what());
  }
  if (sink != nullptr && options.fusion_stats != nullptr) {
    *options.fusion_stats = broker.stats();
  }
  if (options.retry_stats != nullptr) {
    options.retry_stats->attempts =
        total_attempts.load(std::memory_order_relaxed);
    options.retry_stats->retries =
        total_retries.load(std::memory_order_relaxed);
  }

  std::vector<SolveReport> reports;
  reports.reserve(count);
  for (std::optional<Result<SolveReport>>& result : results) {
    JURY_RETURN_NOT_OK(result->status());
    reports.push_back(std::move(*result).value());
  }
  return reports;
}

}  // namespace jury::api
