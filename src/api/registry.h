#ifndef JURYOPT_API_REGISTRY_H_
#define JURYOPT_API_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "api/solve.h"
#include "util/result.h"

namespace jury::api {

/// Resolves a built-in JSP solver by its stable registry name; NotFound
/// for unknown names (mirrors `MakeStrategy` in strategy/registry.h).
/// The returned adapter is stateless and process-lived — hold the
/// pointer freely.
///
/// Registered names, in ablation order: "annealing", "exhaustive",
/// "greedy-quality", "greedy-value", "greedy-mg", "odd-top-k",
/// "branch-bound", then the two Fig. 1 system facades "optjs" and
/// "mvjs".
Result<const JspSolver*> FindSolver(const std::string& name);

/// Names of every registered solver, in registration order. The bench
/// ablations and the `jury_cli --solver` smoke tests iterate this list
/// instead of hard-coding call sites, so a newly registered solver is
/// benched and smoke-tested for free.
std::vector<std::string> RegisteredSolverNames();

/// Instantiates the objective the *raw* solvers score with, by
/// `tuning.objective` name: "bv-bucket" (`BucketBvObjective(tuning.bucket)`),
/// "bv-exact", or "mv-exact". NotFound for unknown names. The facades
/// ("optjs", "mvjs") fix their own objectives and ignore this.
Result<std::unique_ptr<JqObjective>> MakeObjective(const SolverTuning& tuning);

}  // namespace jury::api

#endif  // JURYOPT_API_REGISTRY_H_
