#ifndef JURYOPT_API_FUSED_SCAN_H_
#define JURYOPT_API_FUSED_SCAN_H_

#include <atomic>
#include <cstddef>
#include <mutex>
#include <vector>

#include "core/objective.h"

namespace jury::api {

/// \brief Counters a `FusedScanBroker` accumulates over its lifetime —
/// the observability half of the cross-request fusion seam. All monotone,
/// so a caller can snapshot them after `SolveMany` returns without
/// synchronizing against stragglers.
struct FusedScanStats {
  /// Kernel passes submitted through the broker (one per batched
  /// move-scan flush that reached `Execute`).
  std::size_t passes = 0;
  /// Combiner drains — times one thread grabbed the combiner role and
  /// ran a non-empty queue of passes back to back.
  std::size_t drains = 0;
  /// Drains that ran more than one pass — actual cross-request fusion,
  /// as opposed to a pass that found the queue otherwise empty.
  std::size_t fused_drains = 0;
  /// Largest number of passes any single drain ran back to back.
  std::size_t max_drain = 0;
};

/// \brief Flat-combining `MoveScanSink`: the object `SolveMany` scopes
/// around a fused batch so concurrently queued requests hand their
/// batched move-scan kernel passes to one combiner thread, which runs
/// them back to back in a single fused sweep over the kernel tables.
///
/// Why flat combining instead of a lock: the passes are the hot part of
/// a solve (one SIMD sweep per staged scan), and under a plain mutex
/// every thread would serialize *and* bounce the kernel table's cache
/// lines between cores. Here the queue mutex is held only for a
/// push_back; whichever thread wins the combiner lock drains the whole
/// queue — its core keeps the dispatched kernel table, the pmf rows, and
/// the instruction stream hot across consecutive passes, which is the
/// "one fused kernel pass" the seam is named for.
///
/// Correctness: each pass is a pure function of its submitting session's
/// staged state (see `MoveScanSink`), so running passes from different
/// requests back to back on one thread is arithmetic-identical to
/// running them inline on their own threads, in any order. `Execute`
/// returns only after the pass's `done` flag is set with release
/// ordering (and observed with acquire), so the submitting session reads
/// its freshly written scores with the necessary happens-before edge.
///
/// A thread waiting for its pass spins on its `done` flag but also keeps
/// bidding for the combiner role, so the broker is deadlock-free even if
/// the current combiner is preempted between drains: some waiter always
/// makes progress. Passes never re-enter the sink (sink contract), so
/// the combiner never self-deadlocks.
class FusedScanBroker final : public MoveScanSink {
 public:
  FusedScanBroker() = default;
  FusedScanBroker(const FusedScanBroker&) = delete;
  FusedScanBroker& operator=(const FusedScanBroker&) = delete;

  /// Enqueues the pass and blocks until some combiner has run it.
  void Execute(KernelPass pass) override;

  /// Lifetime counters; safe to read once no `Execute` is in flight.
  FusedScanStats stats() const;

 private:
  struct PendingPass {
    KernelPass pass;
    std::atomic<bool>* done;
  };

  /// Drains the queue repeatedly until it is observed empty, running
  /// every drained pass. Caller must hold `combiner_`.
  void DrainQueue();

  std::mutex queue_mutex_;
  std::vector<PendingPass> queue_;
  std::mutex combiner_;

  std::atomic<std::size_t> passes_{0};
  std::atomic<std::size_t> drains_{0};
  std::atomic<std::size_t> fused_drains_{0};
  std::atomic<std::size_t> max_drain_{0};
};

}  // namespace jury::api

#endif  // JURYOPT_API_FUSED_SCAN_H_
