#ifndef JURYOPT_API_TRACE_H_
#define JURYOPT_API_TRACE_H_

#include <string>
#include <string_view>
#include <vector>

#include "api/solve.h"
#include "model/worker.h"
#include "util/json.h"
#include "util/result.h"

namespace jury::api {

/// \brief A recorded (pool, request stream, report stream) triple — the
/// golden-trace fixture format behind the determinism gate.
///
/// The repo's load-bearing contract is that a solve is a pure function
/// of (pool, request): bit-identical on any thread count, any SIMD
/// dispatch tier, any batch order. A trace freezes one observed run of
/// that function as JSON; replaying it under a *different* execution
/// configuration (`JURYOPT_THREADS`, `JURYOPT_SIMD`) and diffing the
/// bytes turns the contract into a CI gate instead of a property test's
/// single-process claim. Fixtures live in `tests/golden/` and are
/// replayed across the thread x SIMD matrix by `golden_trace_test` and
/// the CI workflow.
///
/// Report JSON is stored *normalized* (see `NormalizeReportJson`):
/// `wall_seconds` — the one legitimately nondeterministic field — is
/// zeroed, and the document is re-dumped canonically, so equality is
/// plain string comparison.
struct SolveTrace {
  /// The candidate pool the requests were solved against.
  std::vector<Worker> pool;
  /// The requests, in order, paired with their normalized report JSON.
  struct Entry {
    SolveRequest request;
    std::string report_json;
  };
  std::vector<Entry> entries;

  /// Deterministic JSON:
  /// `{"entries":[{"report":{...},"request":{...}},...],"pool":[...]}`.
  Json ToJsonValue() const;
  std::string ToJson() const;

  /// Strict parse of `ToJson` output (unknown keys, bad worker fields,
  /// and malformed requests all surface as a `Status`). The stored
  /// report documents are re-normalized on load, so a hand-edited
  /// fixture cannot smuggle in a wall-clock diff.
  static Result<SolveTrace> Parse(std::string_view text);
};

/// Canonical form of a `SolveReport::ToJson` document for byte
/// comparison: parses it, zeroes `wall_seconds`, and re-dumps (sorted
/// keys, shortest round-trip numbers). InvalidArgument when `json` is
/// not a report-shaped document.
Result<std::string> NormalizeReportJson(std::string_view json);

/// Solves `requests` in order against a fresh plan of `pool` and records
/// the normalized reports. Fails on the first request error.
Result<SolveTrace> RecordTrace(std::vector<Worker> pool,
                               std::vector<SolveRequest> requests);

/// Re-solves every entry of `trace` under the *current* execution
/// configuration and compares normalized report bytes. Returns the
/// number of entries replayed; the first mismatch fails with an
/// InvalidArgument whose message contains both documents.
Result<std::size_t> ReplayTrace(const SolveTrace& trace);

}  // namespace jury::api

#endif  // JURYOPT_API_TRACE_H_
