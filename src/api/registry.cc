#include "api/registry.h"

#include <cstdint>
#include <functional>
#include <optional>
#include <utility>

#include "util/cancellation.h"
#include "util/scratch_arena.h"
#include "util/timer.h"

namespace jury::api {
namespace {

/// Per-solve control block: materializes the request's deadline into a
/// `CancelToken` chained to the caller's token (either signal stops the
/// solve), carries the deterministic work budget, and owns the
/// `TerminationInfo` the core solver fills. Stack-allocated inside each
/// adapter's `Solve`, so nothing outlives the solve; the deadline clock
/// starts at construction, just before the timed solve call.
class SolveControls {
 public:
  explicit SolveControls(const SolveRequest& request)
      : limits_active_(request.deadline_ms > 0.0 ||
                       request.max_work_units != 0 ||
                       request.cancel_token != nullptr),
        max_work_units_(request.max_work_units),
        token_(request.cancel_token) {
    if (request.deadline_ms > 0.0) {
      deadline_token_.emplace(request.deadline_ms, request.cancel_token);
      token_ = &*deadline_token_;
    }
  }
  SolveControls(const SolveControls&) = delete;
  SolveControls& operator=(const SolveControls&) = delete;

  /// Stamps the stop signal, work budget, and termination out-pointer
  /// onto a core options struct (any `SolverOptions` subclass).
  void Arm(SolverOptions& options) {
    options.cancel_token = token_;
    options.max_work_units = max_work_units_;
    options.termination = &termination_;
  }

  void FillReport(SolveReport& report) const {
    report.limits_active = limits_active_;
    report.terminated_early = termination_.terminated_early();
    report.termination_reason = StopReasonName(termination_.reason);
    report.work_units = termination_.work_units;
  }

 private:
  bool limits_active_;
  std::uint64_t max_work_units_;
  const CancelToken* token_;
  std::optional<CancelToken> deadline_token_;
  TerminationInfo termination_;
};

/// Shared tail of every adapter: snapshot the per-solve objective's
/// counters into the uniform report. The objective is constructed by the
/// adapter for exactly one solve, so the snapshot is that solve's exact
/// full/incremental split.
/// Binds the calling thread's ambient move-scan sink (scoped by a fusing
/// `SolveMany`; nullptr outside one — sessions then run passes inline)
/// and ambient scratch arena (scoped by `PoolPlanContext::Solve`; its
/// sessions lease staging capacity across requests) onto the adapter's
/// freshly constructed per-solve objective. Every adapter calls this
/// between constructing its objective and opening the first session, so
/// a fused batch coalesces kernel passes from all its requests — and a
/// served stream reuses one arena — regardless of which solver each
/// request named.
void BindAmbientScanSink(const JqObjective& objective) {
  objective.BindScanSink(CurrentThreadScanSink());
  objective.BindScratchArena(CurrentThreadScratchArena());
}

/// Builds the tuned objective, rejects pools its evaluator cannot score,
/// and binds the ambient scan sink. A solver can stage any subset of the
/// pool, so the whole pool must fit under the objective's jury cap — the
/// exact-enumeration objective used to abort inside `Evaluate` when an
/// oversized jury reached its 2^n guard; this is the boundary where that
/// became a recoverable Status instead.
Result<std::unique_ptr<JqObjective>> MakeCheckedObjective(
    const PoolPlanContext& context, const SolveRequest& request) {
  std::unique_ptr<JqObjective> objective;
  JURY_ASSIGN_OR_RETURN(objective, MakeObjective(request.tuning));
  // `num_candidates()` (the column length), not `candidates().size()`: the
  // cap check must not force a snapshot plan to materialize its structs.
  if (context.num_candidates() > objective->max_jury_size()) {
    return Status::InvalidArgument(
        "pool of " + std::to_string(context.num_candidates()) +
        " workers exceeds the '" + request.tuning.objective +
        "' objective's jury cap of " +
        std::to_string(objective->max_jury_size()) +
        "; use the bv-bucket objective for pools this large");
  }
  BindAmbientScanSink(*objective);
  return objective;
}

/// Wires the plan's sharded summary index onto a solve that opted into
/// frontier pre-selection (`frontier_k > 0` in its tuning). The pool is
/// built lazily, once per context, and shared read-only; requests that
/// never set `frontier_k` never trigger the build.
void ArmFrontier(SolverOptions& options, const PoolPlanContext& context) {
  if (options.frontier_k > 0) {
    options.sharded_pool = context.sharded_pool();
  }
}

SolveReport FinishReport(const std::string& solver, JspSolution solution,
                         const JqObjective& objective, double wall_seconds,
                         std::map<std::string, double> stats,
                         const SolveControls& controls) {
  SolveReport report;
  report.solver = solver;
  report.solution = std::move(solution);
  report.wall_seconds = wall_seconds;
  report.evaluations = objective.evaluation_counters();
  report.stats = std::move(stats);
  controls.FillReport(report);
  return report;
}

std::map<std::string, double> FlattenAnnealingStats(
    const AnnealingStats& stats) {
  return {
      {"downhill_accepts", static_cast<double>(stats.downhill_accepts)},
      {"moves_accepted", static_cast<double>(stats.moves_accepted)},
      {"moves_attempted", static_cast<double>(stats.moves_attempted)},
      {"objective_evaluations",
       static_cast<double>(stats.objective_evaluations)},
      {"polish_moves", static_cast<double>(stats.polish_moves)},
      {"polish_scans", static_cast<double>(stats.polish_scans)},
      {"temperature_levels", static_cast<double>(stats.temperature_levels)},
      {"uphill_accepts", static_cast<double>(stats.uphill_accepts)},
  };
}

// ---------------------------------------------------------------------------
// Raw-solver adapters: objective chosen by `tuning.objective`, solve
// delegated to the core planned-pool overload, so a registry solve is
// bit-identical to the legacy free function on the same inputs.
// ---------------------------------------------------------------------------

class AnnealingSolver final : public JspSolver {
 public:
  std::string name() const override { return "annealing"; }
  Result<SolveReport> Solve(PoolPlanContext& context,
                            const SolveRequest& request) const override {
    std::unique_ptr<JqObjective> objective;
    JURY_ASSIGN_OR_RETURN(objective, MakeCheckedObjective(context, request));
    auto lease = context.AcquireInstance(request.budget, request.alpha);
    Rng rng(request.rng_seed);
    AnnealingStats stats;
    AnnealingOptions annealing = request.tuning.annealing;
    SolveControls controls(request);
    controls.Arm(annealing);
    ArmFrontier(annealing, context);
    Timer timer;
    JspSolution solution;
    JURY_ASSIGN_OR_RETURN(
        solution, SolveAnnealing(lease.instance(), context.view(), *objective,
                                 &rng, annealing, &stats));
    return FinishReport(name(), std::move(solution), *objective,
                        timer.ElapsedSeconds(), FlattenAnnealingStats(stats),
                        controls);
  }
};

class ExhaustiveSolver final : public JspSolver {
 public:
  std::string name() const override { return "exhaustive"; }
  Result<SolveReport> Solve(PoolPlanContext& context,
                            const SolveRequest& request) const override {
    std::unique_ptr<JqObjective> objective;
    JURY_ASSIGN_OR_RETURN(objective, MakeCheckedObjective(context, request));
    auto lease = context.AcquireInstance(request.budget, request.alpha);
    ExhaustiveOptions exhaustive = request.tuning.exhaustive;
    SolveControls controls(request);
    controls.Arm(exhaustive);
    Timer timer;
    JspSolution solution;
    JURY_ASSIGN_OR_RETURN(
        solution, SolveExhaustive(lease.instance(), context.view(),
                                  *objective, exhaustive));
    return FinishReport(name(), std::move(solution), *objective,
                        timer.ElapsedSeconds(), {}, controls);
  }
};

class BranchBoundSolver final : public JspSolver {
 public:
  std::string name() const override { return "branch-bound"; }
  Result<SolveReport> Solve(PoolPlanContext& context,
                            const SolveRequest& request) const override {
    std::unique_ptr<JqObjective> objective;
    JURY_ASSIGN_OR_RETURN(objective, MakeCheckedObjective(context, request));
    auto lease = context.AcquireInstance(request.budget, request.alpha);
    BranchBoundStats stats;
    BranchBoundOptions branch_bound = request.tuning.branch_bound;
    SolveControls controls(request);
    controls.Arm(branch_bound);
    ArmFrontier(branch_bound, context);
    Timer timer;
    JspSolution solution;
    JURY_ASSIGN_OR_RETURN(
        solution,
        SolveBranchAndBound(lease.instance(), context.view(), *objective,
                            branch_bound, &stats));
    return FinishReport(
        name(), std::move(solution), *objective, timer.ElapsedSeconds(),
        {{"nodes_explored", static_cast<double>(stats.nodes_explored)},
         {"nodes_pruned_bound",
          static_cast<double>(stats.nodes_pruned_bound)},
         {"nodes_pruned_budget",
          static_cast<double>(stats.nodes_pruned_budget)}},
        controls);
  }
};

/// One adapter class for the four greedy family members — they share the
/// options type and the "deterministic, no stats struct" shape; only the
/// core entry point differs.
class GreedyFamilySolver final : public JspSolver {
 public:
  using Entry = Result<JspSolution> (*)(const JspInstance&,
                                        const WorkerPoolView&,
                                        const JqObjective&,
                                        const GreedyOptions&);
  GreedyFamilySolver(std::string name, Entry entry)
      : name_(std::move(name)), entry_(entry) {}

  std::string name() const override { return name_; }
  Result<SolveReport> Solve(PoolPlanContext& context,
                            const SolveRequest& request) const override {
    std::unique_ptr<JqObjective> objective;
    JURY_ASSIGN_OR_RETURN(objective, MakeCheckedObjective(context, request));
    auto lease = context.AcquireInstance(request.budget, request.alpha);
    GreedyOptions greedy = request.tuning.greedy;
    SolveControls controls(request);
    controls.Arm(greedy);
    ArmFrontier(greedy, context);
    Timer timer;
    JspSolution solution;
    JURY_ASSIGN_OR_RETURN(solution,
                          entry_(lease.instance(), context.view(), *objective,
                                 greedy));
    return FinishReport(name_, std::move(solution), *objective,
                        timer.ElapsedSeconds(), {}, controls);
  }

 private:
  std::string name_;
  Entry entry_;
};

// ---------------------------------------------------------------------------
// Facade adapters: the two Fig. 1 systems fix their own objectives
// (BV/bucket for OPTJS, MV/exact for MVJS) and surface the inner SA
// instrumentation.
// ---------------------------------------------------------------------------

class OptjsSolver final : public JspSolver {
 public:
  std::string name() const override { return "optjs"; }
  Result<SolveReport> Solve(PoolPlanContext& context,
                            const SolveRequest& request) const override {
    OptjsOptions options = request.tuning.optjs;
    const BucketBvObjective objective(options.bucket);
    BindAmbientScanSink(objective);
    auto lease = context.AcquireInstance(request.budget, request.alpha);
    Rng rng(request.rng_seed);
    AnnealingStats stats;
    bool used_shortcut = false;
    SolveControls controls(request);
    controls.Arm(options);
    Timer timer;
    JspSolution solution;
    JURY_ASSIGN_OR_RETURN(
        solution, SolveOptjs(lease.instance(), context.view(), objective,
                             &rng, options, &stats, &used_shortcut));
    std::map<std::string, double> flat = FlattenAnnealingStats(stats);
    flat["used_exhaustive_shortcut"] = used_shortcut ? 1.0 : 0.0;
    return FinishReport(name(), std::move(solution), objective,
                        timer.ElapsedSeconds(), std::move(flat), controls);
  }
};

class MvjsSolver final : public JspSolver {
 public:
  std::string name() const override { return "mvjs"; }
  Result<SolveReport> Solve(PoolPlanContext& context,
                            const SolveRequest& request) const override {
    const MajorityObjective objective;
    BindAmbientScanSink(objective);
    auto lease = context.AcquireInstance(request.budget, request.alpha);
    Rng rng(request.rng_seed);
    AnnealingStats stats;
    MvjsOptions mvjs = request.tuning.mvjs;
    SolveControls controls(request);
    controls.Arm(mvjs);
    Timer timer;
    JspSolution solution;
    JURY_ASSIGN_OR_RETURN(
        solution, SolveMvjs(lease.instance(), context.view(), objective,
                            &rng, mvjs, &stats));
    return FinishReport(name(), std::move(solution), objective,
                        timer.ElapsedSeconds(), FlattenAnnealingStats(stats),
                        controls);
  }
};

/// The process-lived registry: stateless adapters in registration order.
/// Built once, on first use, like the strategy registry.
const std::vector<std::unique_ptr<JspSolver>>& Registry() {
  static const auto* registry = [] {
    auto* solvers = new std::vector<std::unique_ptr<JspSolver>>();
    solvers->push_back(std::make_unique<AnnealingSolver>());
    solvers->push_back(std::make_unique<ExhaustiveSolver>());
    // The explicit casts pick the planned-pool overloads (the legacy
    // wrappers share the name).
    solvers->push_back(std::make_unique<GreedyFamilySolver>(
        "greedy-quality",
        static_cast<GreedyFamilySolver::Entry>(&SolveGreedyByQuality)));
    solvers->push_back(std::make_unique<GreedyFamilySolver>(
        "greedy-value",
        static_cast<GreedyFamilySolver::Entry>(&SolveGreedyByValuePerCost)));
    solvers->push_back(std::make_unique<GreedyFamilySolver>(
        "greedy-mg",
        static_cast<GreedyFamilySolver::Entry>(&SolveGreedyMarginalGain)));
    solvers->push_back(std::make_unique<GreedyFamilySolver>(
        "odd-top-k", static_cast<GreedyFamilySolver::Entry>(&SolveOddTopK)));
    solvers->push_back(std::make_unique<BranchBoundSolver>());
    solvers->push_back(std::make_unique<OptjsSolver>());
    solvers->push_back(std::make_unique<MvjsSolver>());
    return solvers;
  }();
  return *registry;
}

}  // namespace

Result<const JspSolver*> FindSolver(const std::string& name) {
  for (const std::unique_ptr<JspSolver>& solver : Registry()) {
    if (solver->name() == name) return solver.get();
  }
  return Status::NotFound("unknown solver '" + name +
                          "'; see RegisteredSolverNames()");
}

std::vector<std::string> RegisteredSolverNames() {
  std::vector<std::string> names;
  names.reserve(Registry().size());
  for (const std::unique_ptr<JspSolver>& solver : Registry()) {
    names.push_back(solver->name());
  }
  return names;
}

Result<std::unique_ptr<JqObjective>> MakeObjective(const SolverTuning& tuning) {
  if (tuning.objective == "bv-bucket") {
    JURY_RETURN_NOT_OK(tuning.bucket.Validate());
    return std::unique_ptr<JqObjective>(
        std::make_unique<BucketBvObjective>(tuning.bucket));
  }
  if (tuning.objective == "bv-exact") {
    return std::unique_ptr<JqObjective>(std::make_unique<ExactBvObjective>());
  }
  if (tuning.objective == "mv-exact") {
    return std::unique_ptr<JqObjective>(std::make_unique<MajorityObjective>());
  }
  return Status::NotFound("unknown objective '" + tuning.objective +
                          "' (expected bv-bucket, bv-exact, or mv-exact)");
}

}  // namespace jury::api
