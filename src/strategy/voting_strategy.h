#ifndef JURYOPT_STRATEGY_VOTING_STRATEGY_H_
#define JURYOPT_STRATEGY_VOTING_STRATEGY_H_

#include <string>

#include "model/jury.h"
#include "model/votes.h"
#include "util/rng.h"

namespace jury {

/// \brief Category of a voting strategy (§3.1, Definitions 1–2).
enum class StrategyKind {
  /// Returns 0 or 1 with no randomness (Definition 1).
  kDeterministic,
  /// Returns 0 with some probability p, 1 with 1-p (Definition 2).
  kRandomized,
};

/// \brief A voting strategy `S(V, J, alpha)` (§3.1): estimates the latent
/// true answer of a decision-making task from a jury's votes.
///
/// Both strategy classes are expressed through one primitive:
/// `ProbZero(J, V, alpha) = Pr[S(V) = 0]`, which is `E[1_{S(V)=0}]` in the
/// paper's JQ definition (Definition 3). Deterministic strategies return
/// exactly 0.0 or 1.0; randomized strategies return the interior
/// probability. This makes the generic JQ expectation a single formula for
/// every strategy.
class VotingStrategy {
 public:
  virtual ~VotingStrategy() = default;

  /// Short stable identifier, e.g. "MV", "BV", "RMV", "RBV".
  virtual std::string name() const = 0;

  virtual StrategyKind kind() const = 0;
  bool is_deterministic() const {
    return kind() == StrategyKind::kDeterministic;
  }

  /// Pr[S(V) = 0] for votes positionally aligned with `jury`.
  /// Requires votes.size() == jury.size() and jury non-empty.
  virtual double ProbZero(const Jury& jury, const Votes& votes,
                          double alpha) const = 0;

  /// Draws the strategy's result (0 or 1). Deterministic strategies ignore
  /// `rng` (it may be null for them); randomized ones require it.
  int Decide(const Jury& jury, const Votes& votes, double alpha,
             Rng* rng) const;
};

}  // namespace jury

#endif  // JURYOPT_STRATEGY_VOTING_STRATEGY_H_
