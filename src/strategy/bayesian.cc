#include "strategy/bayesian.h"

#include "model/worker.h"
#include "util/check.h"
#include "util/math.h"

namespace jury {

double BayesianVoting::DecisionStatistic(const Jury& jury, const Votes& votes,
                                         double alpha) {
  JURY_CHECK_EQ(votes.size(), jury.size());
  double stat = LogOdds(EffectiveQuality(alpha));
  for (std::size_t i = 0; i < votes.size(); ++i) {
    const double phi = LogOdds(EffectiveQuality(jury.worker(i).quality));
    stat += (votes[i] == 0 ? phi : -phi);
  }
  return stat;
}

double BayesianVoting::ProbZero(const Jury& jury, const Votes& votes,
                                double alpha) const {
  JURY_CHECK(!votes.empty());
  return DecisionStatistic(jury, votes, alpha) >= 0.0 ? 1.0 : 0.0;
}

}  // namespace jury
