#include "strategy/registry.h"

#include "strategy/bayesian.h"
#include "strategy/half_voting.h"
#include "strategy/majority.h"
#include "strategy/random_ballot.h"
#include "strategy/randomized_majority.h"
#include "strategy/triadic.h"
#include "strategy/weighted_majority.h"

namespace jury {

Result<std::unique_ptr<VotingStrategy>> MakeStrategy(const std::string& name) {
  std::unique_ptr<VotingStrategy> out;
  if (name == "MV") {
    out = std::make_unique<MajorityVoting>();
  } else if (name == "BV") {
    out = std::make_unique<BayesianVoting>();
  } else if (name == "RMV") {
    out = std::make_unique<RandomizedMajorityVoting>();
  } else if (name == "RBV") {
    out = std::make_unique<RandomBallotVoting>();
  } else if (name == "WMV") {
    out = std::make_unique<WeightedMajorityVoting>();
  } else if (name == "HALF") {
    out = std::make_unique<HalfVoting>();
  } else if (name == "TRIADIC") {
    out = std::make_unique<TriadicConsensus>();
  } else {
    return Status::NotFound("unknown voting strategy: " + name);
  }
  return out;
}

std::vector<std::string> BuiltinStrategyNames() {
  return {"MV", "HALF", "WMV", "BV", "RMV", "RBV", "TRIADIC"};
}

std::vector<std::unique_ptr<VotingStrategy>> MakeAllStrategies() {
  std::vector<std::unique_ptr<VotingStrategy>> out;
  for (const std::string& name : BuiltinStrategyNames()) {
    out.push_back(std::move(MakeStrategy(name).value()));
  }
  return out;
}

}  // namespace jury
