#include "strategy/voting_strategy.h"

#include "util/check.h"

namespace jury {

int VotingStrategy::Decide(const Jury& jury, const Votes& votes, double alpha,
                           Rng* rng) const {
  const double p0 = ProbZero(jury, votes, alpha);
  if (p0 >= 1.0) return 0;
  if (p0 <= 0.0) return 1;
  JURY_CHECK(rng != nullptr)
      << "randomized strategy '" << name() << "' requires an Rng";
  return rng->Bernoulli(p0) ? 0 : 1;
}

}  // namespace jury
