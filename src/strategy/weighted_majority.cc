#include "strategy/weighted_majority.h"

#include "model/worker.h"
#include "util/check.h"
#include "util/math.h"

namespace jury {

WeightedMajorityVoting::WeightedMajorityVoting(std::vector<double> weights)
    : weights_(std::move(weights)) {}

double WeightedMajorityVoting::ProbZero(const Jury& jury, const Votes& votes,
                                        double /*alpha*/) const {
  JURY_CHECK_EQ(votes.size(), jury.size());
  JURY_CHECK(!votes.empty());
  if (!weights_.empty()) {
    JURY_CHECK_EQ(weights_.size(), votes.size());
  }
  double score = 0.0;
  for (std::size_t i = 0; i < votes.size(); ++i) {
    const double w = weights_.empty()
                         ? LogOdds(EffectiveQuality(jury.worker(i).quality))
                         : weights_[i];
    score += (votes[i] == 0 ? w : -w);
  }
  return score >= 0.0 ? 1.0 : 0.0;
}

}  // namespace jury
