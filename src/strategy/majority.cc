#include "strategy/majority.h"

#include "util/check.h"

namespace jury {

double MajorityVoting::ProbZero(const Jury& jury, const Votes& votes,
                                double /*alpha*/) const {
  JURY_CHECK_EQ(votes.size(), jury.size());
  JURY_CHECK(!votes.empty());
  const int n = static_cast<int>(votes.size());
  // zeros >= (n+1)/2 over the reals <=> 2*zeros >= n+1 over the integers.
  return (2 * CountZeros(votes) >= n + 1) ? 1.0 : 0.0;
}

}  // namespace jury
