#include "strategy/random_ballot.h"

#include "util/check.h"

namespace jury {

double RandomBallotVoting::ProbZero(const Jury& jury, const Votes& votes,
                                    double /*alpha*/) const {
  JURY_CHECK_EQ(votes.size(), jury.size());
  return 0.5;
}

}  // namespace jury
