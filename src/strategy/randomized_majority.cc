#include "strategy/randomized_majority.h"

#include "util/check.h"

namespace jury {

double RandomizedMajorityVoting::ProbZero(const Jury& jury, const Votes& votes,
                                          double /*alpha*/) const {
  JURY_CHECK_EQ(votes.size(), jury.size());
  JURY_CHECK(!votes.empty());
  return static_cast<double>(CountZeros(votes)) /
         static_cast<double>(votes.size());
}

}  // namespace jury
