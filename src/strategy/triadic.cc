#include "strategy/triadic.h"

#include "util/check.h"
#include "util/math.h"

namespace jury {

double TriadicConsensus::ProbZero(const Jury& jury, const Votes& votes,
                                  double /*alpha*/) const {
  JURY_CHECK_EQ(votes.size(), jury.size());
  JURY_CHECK(!votes.empty());
  const int n = static_cast<int>(votes.size());
  const int z = CountZeros(votes);
  if (n < 3) {
    return static_cast<double>(z) / static_cast<double>(n);
  }
  const double triads_with_zero_majority =
      BinomialCoefficient(z, 2) * BinomialCoefficient(n - z, 1) +
      BinomialCoefficient(z, 3);
  return triads_with_zero_majority / BinomialCoefficient(n, 3);
}

}  // namespace jury
