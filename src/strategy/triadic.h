#ifndef JURYOPT_STRATEGY_TRIADIC_H_
#define JURYOPT_STRATEGY_TRIADIC_H_

#include "strategy/voting_strategy.h"

namespace jury {

/// \brief One-round Triadic Consensus (Table 2, after Goel & Lee [2]):
/// sample a uniformly random triad of jurors and return the triad's
/// majority. Randomized, since the result depends on the sampled triad.
///
/// With z zero-votes among n >= 3 jurors,
///   Pr[S(V) = 0] = [ C(z,2)·C(n-z,1) + C(z,3) ] / C(n,3)
/// (hypergeometric chance the triad holds >= 2 zeros). For n < 3 it
/// degenerates to Randomized Majority Voting. Goel & Lee's full protocol
/// iterates triads to consensus; the one-round variant keeps the closed
/// form that exact JQ computation needs (documented simplification).
class TriadicConsensus final : public VotingStrategy {
 public:
  std::string name() const override { return "TRIADIC"; }
  StrategyKind kind() const override { return StrategyKind::kRandomized; }
  double ProbZero(const Jury& jury, const Votes& votes,
                  double alpha) const override;
};

}  // namespace jury

#endif  // JURYOPT_STRATEGY_TRIADIC_H_
