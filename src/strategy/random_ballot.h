#ifndef JURYOPT_STRATEGY_RANDOM_BALLOT_H_
#define JURYOPT_STRATEGY_RANDOM_BALLOT_H_

#include "strategy/voting_strategy.h"

namespace jury {

/// \brief Random Ballot Voting (RBV) [33]: ignores the votes entirely and
/// returns 0 or 1 uniformly at random; its JQ is exactly 0.5 for an
/// uninformative prior (the flat line in Fig. 8).
class RandomBallotVoting final : public VotingStrategy {
 public:
  std::string name() const override { return "RBV"; }
  StrategyKind kind() const override { return StrategyKind::kRandomized; }
  double ProbZero(const Jury& jury, const Votes& votes,
                  double alpha) const override;
};

}  // namespace jury

#endif  // JURYOPT_STRATEGY_RANDOM_BALLOT_H_
