#ifndef JURYOPT_STRATEGY_REGISTRY_H_
#define JURYOPT_STRATEGY_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "strategy/voting_strategy.h"
#include "util/result.h"

namespace jury {

/// Instantiates a built-in voting strategy by its stable name
/// ("MV", "BV", "RMV", "RBV", "WMV", "HALF"); NotFound for unknown names.
Result<std::unique_ptr<VotingStrategy>> MakeStrategy(const std::string& name);

/// Names of all built-in strategies, in Table-2 order (deterministic first).
std::vector<std::string> BuiltinStrategyNames();

/// Convenience: instantiates every built-in strategy.
std::vector<std::unique_ptr<VotingStrategy>> MakeAllStrategies();

}  // namespace jury

#endif  // JURYOPT_STRATEGY_REGISTRY_H_
