#include "strategy/half_voting.h"

#include "util/check.h"

namespace jury {

double HalfVoting::ProbZero(const Jury& jury, const Votes& votes,
                            double /*alpha*/) const {
  JURY_CHECK_EQ(votes.size(), jury.size());
  JURY_CHECK(!votes.empty());
  const int n = static_cast<int>(votes.size());
  return (2 * CountZeros(votes) >= n) ? 1.0 : 0.0;
}

}  // namespace jury
