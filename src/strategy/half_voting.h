#ifndef JURYOPT_STRATEGY_HALF_VOTING_H_
#define JURYOPT_STRATEGY_HALF_VOTING_H_

#include "strategy/voting_strategy.h"

namespace jury {

/// \brief Half Voting [28]: returns 0 when at least half of the votes are 0
/// (`2 * zeros >= n`). It differs from MV only on even-size ties, which MV
/// resolves to 1 and Half Voting resolves to 0; on odd juries the two
/// coincide (a property the tests pin down).
class HalfVoting final : public VotingStrategy {
 public:
  std::string name() const override { return "HALF"; }
  StrategyKind kind() const override { return StrategyKind::kDeterministic; }
  double ProbZero(const Jury& jury, const Votes& votes,
                  double alpha) const override;
};

}  // namespace jury

#endif  // JURYOPT_STRATEGY_HALF_VOTING_H_
