#ifndef JURYOPT_STRATEGY_MAJORITY_H_
#define JURYOPT_STRATEGY_MAJORITY_H_

#include "strategy/voting_strategy.h"

namespace jury {

/// \brief Majority Voting (MV), Example 1: returns 0 iff
/// `sum_i (1 - v_i) >= (n+1)/2`, i.e. at least `floor(n/2) + 1` zero-votes;
/// even-size ties therefore resolve to 1, exactly as in the paper's
/// definition. Ignores both worker qualities and the prior.
class MajorityVoting final : public VotingStrategy {
 public:
  std::string name() const override { return "MV"; }
  StrategyKind kind() const override { return StrategyKind::kDeterministic; }
  double ProbZero(const Jury& jury, const Votes& votes,
                  double alpha) const override;
};

}  // namespace jury

#endif  // JURYOPT_STRATEGY_MAJORITY_H_
