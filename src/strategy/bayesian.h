#ifndef JURYOPT_STRATEGY_BAYESIAN_H_
#define JURYOPT_STRATEGY_BAYESIAN_H_

#include "strategy/voting_strategy.h"

namespace jury {

/// \brief Bayesian Voting (BV), Definition 4 / Theorem 1: returns the answer
/// with the larger (prior-weighted) likelihood, breaking the exact tie
/// `P0(V) = P1(V)` in favour of 0, as Theorem 1 prescribes:
///
///   S*(V) = 1  iff  alpha * prod q_i^{1-v_i} (1-q_i)^{v_i}
///                 < (1-alpha) * prod q_i^{v_i} (1-q_i)^{1-v_i}
///
/// Corollary 1 proves BV optimal w.r.t. JQ over all deterministic and
/// randomized strategies; `tests/optimality_test.cc` verifies this against
/// exhaustive strategy enumeration.
///
/// The comparison is evaluated in log-space, so it is well-defined for any
/// qualities in (0, 1) — including q < 0.5, where the log-odds weight simply
/// turns negative (equivalent to the §3.3 flip reinterpretation).
class BayesianVoting final : public VotingStrategy {
 public:
  std::string name() const override { return "BV"; }
  StrategyKind kind() const override { return StrategyKind::kDeterministic; }
  double ProbZero(const Jury& jury, const Votes& votes,
                  double alpha) const override;

  /// The signed decision statistic
  /// `ln(alpha/(1-alpha)) + sum_i (1 - 2 v_i) * phi(q_i)`; BV returns 0 iff
  /// this is >= 0. Exposed for the JQ machinery (R(V) of §4.2 plus prior).
  static double DecisionStatistic(const Jury& jury, const Votes& votes,
                                  double alpha);
};

}  // namespace jury

#endif  // JURYOPT_STRATEGY_BAYESIAN_H_
