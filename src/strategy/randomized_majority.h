#ifndef JURYOPT_STRATEGY_RANDOMIZED_MAJORITY_H_
#define JURYOPT_STRATEGY_RANDOMIZED_MAJORITY_H_

#include "strategy/voting_strategy.h"

namespace jury {

/// \brief Randomized Majority Voting (RMV), Example 1: returns 0 with
/// probability proportional to the number of 0-votes,
/// `p = (1/n) * sum_i (1 - v_i)`. Its JQ admits the closed form
/// `JQ(J, RMV, alpha) = mean(q_i)` for any alpha (verified in tests).
class RandomizedMajorityVoting final : public VotingStrategy {
 public:
  std::string name() const override { return "RMV"; }
  StrategyKind kind() const override { return StrategyKind::kRandomized; }
  double ProbZero(const Jury& jury, const Votes& votes,
                  double alpha) const override;
};

}  // namespace jury

#endif  // JURYOPT_STRATEGY_RANDOMIZED_MAJORITY_H_
