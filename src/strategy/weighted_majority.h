#ifndef JURYOPT_STRATEGY_WEIGHTED_MAJORITY_H_
#define JURYOPT_STRATEGY_WEIGHTED_MAJORITY_H_

#include <vector>

#include "strategy/voting_strategy.h"

namespace jury {

/// \brief Weighted Majority Voting (WMV) [23]: each worker carries a fixed
/// non-negative weight; the side with the larger total weight wins (ties to
/// 0). With the log-odds weights `w_i = ln(q_i / (1-q_i))` and an
/// uninformative prior this coincides with Bayesian Voting — a relationship
/// exercised in tests. Unlike BV it never consults the prior.
class WeightedMajorityVoting final : public VotingStrategy {
 public:
  /// Uses caller-supplied weights, positionally aligned with the jury.
  explicit WeightedMajorityVoting(std::vector<double> weights);
  /// Default-constructed: derives log-odds weights from jury qualities at
  /// decision time.
  WeightedMajorityVoting() = default;

  std::string name() const override { return "WMV"; }
  StrategyKind kind() const override { return StrategyKind::kDeterministic; }
  double ProbZero(const Jury& jury, const Votes& votes,
                  double alpha) const override;

 private:
  std::vector<double> weights_;  // empty => log-odds of jury qualities
};

}  // namespace jury

#endif  // JURYOPT_STRATEGY_WEIGHTED_MAJORITY_H_
