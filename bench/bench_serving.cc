// bench_serving: closed-loop load harness for the serving layer — an
// in-process `serve::JuryServer` on an ephemeral loopback port, driven by
// keep-alive HTTP client threads at a sweep of concurrency levels.
//
// Protocol, per concurrency level:
//   1. clear the result cache, then issue every distinct request once
//      (the *cold* phase: all cache misses, real solves);
//   2. re-issue the same request set repeatedly (the *warm* phase: all
//      epoch-keyed cache hits), recording per-request latency.
//
// The artifact (`JURY_BENCH_JSON`, committed as BENCH_serving.json) gets
// one row per level: throughput, p50/p99 latency, the measured cache hit
// rate, and `warm_speedup_vs_cold` — the throughput ratio the regression
// gate (scripts/check_scaling_regression.py, "serving" section) pins.
// The ratio is single-core-valid: a cache hit skips the solve entirely,
// so the speedup claim does not depend on host parallelism.
//
// JURY_BENCH_FAST=1 trims the sweep and marks rows `fast_run` (the gate
// skips them). `--connect=HOST:PORT` drives an external server instead;
// no cache control is possible remotely, so only steady-state rows are
// emitted (and no artifact baseline should come from that mode).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "api/solve.h"
#include "bench_util.h"
#include "serve/result_cache.h"
#include "serve/server.h"
#include "util/json.h"
#include "util/rng.h"
#include "util/simd_dispatch.h"
#include "util/stats_registry.h"

namespace {

using namespace jury;

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Minimal blocking keep-alive HTTP client: one connection, sequential
/// round trips (the closed loop — a client never has two requests in
/// flight).
class HttpClient {
 public:
  ~HttpClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool Connect(const std::string& host, int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) return false;
    return ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr)) == 0;
  }

  /// POSTs `body` to /solve and returns the response body ("" on error).
  std::string Solve(const std::string& body) {
    std::string request = "POST /solve HTTP/1.1\r\nHost: bench\r\n";
    request += "Content-Length: " + std::to_string(body.size());
    request += "\r\n\r\n";
    request += body;
    std::size_t sent = 0;
    while (sent < request.size()) {
      const ssize_t n = ::send(fd_, request.data() + sent,
                               request.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) return "";
      sent += static_cast<std::size_t>(n);
    }
    // Read headers, then Content-Length body bytes.
    std::string response;
    std::size_t header_end = std::string::npos;
    char chunk[8192];
    while (header_end == std::string::npos) {
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return "";
      response.append(chunk, static_cast<std::size_t>(n));
      header_end = response.find("\r\n\r\n");
    }
    const std::size_t body_start = header_end + 4;
    std::size_t content_length = 0;
    {
      // Case-exact match is fine: we only talk to jury_serve.
      const std::size_t pos = response.find("Content-Length: ");
      if (pos == std::string::npos || pos > header_end) return "";
      content_length = std::strtoull(response.c_str() + pos + 16, nullptr, 10);
    }
    while (response.size() - body_start < content_length) {
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return "";
      response.append(chunk, static_cast<std::size_t>(n));
    }
    return response.substr(body_start, content_length);
  }

 private:
  int fd_ = -1;
};

struct PhaseResult {
  double seconds = 0.0;
  std::size_t requests = 0;
  std::size_t cache_hits = 0;
  std::size_t errors = 0;
  std::vector<double> latencies_ms;
};

/// Closed loop: `concurrency` client threads pull request indices from a
/// shared counter until `total` requests have completed.
PhaseResult RunPhase(const std::string& host, int port,
                     const std::vector<std::string>& bodies,
                     std::size_t concurrency, std::size_t total) {
  std::atomic<std::size_t> next{0};
  std::mutex merge_mutex;
  PhaseResult merged;
  const double start = NowSeconds();
  std::vector<std::thread> clients;
  clients.reserve(concurrency);
  for (std::size_t c = 0; c < concurrency; ++c) {
    clients.emplace_back([&, c] {
      HttpClient client;
      if (!client.Connect(host, port)) {
        std::lock_guard<std::mutex> lock(merge_mutex);
        merged.errors += 1;
        return;
      }
      PhaseResult local;
      while (true) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= total) break;
        const std::string& body = bodies[i % bodies.size()];
        const double sent = NowSeconds();
        const std::string response = client.Solve(body);
        const double elapsed_ms = (NowSeconds() - sent) * 1e3;
        local.requests += 1;
        local.latencies_ms.push_back(elapsed_ms);
        if (response.empty() || response.find("\"error\"") == 0) {
          local.errors += 1;
        } else if (response.find("\"cache_hit\":1") != std::string::npos) {
          local.cache_hits += 1;
        }
      }
      std::lock_guard<std::mutex> lock(merge_mutex);
      merged.requests += local.requests;
      merged.cache_hits += local.cache_hits;
      merged.errors += local.errors;
      merged.latencies_ms.insert(merged.latencies_ms.end(),
                                 local.latencies_ms.begin(),
                                 local.latencies_ms.end());
    });
  }
  for (std::thread& t : clients) t.join();
  merged.seconds = NowSeconds() - start;
  return merged;
}

double Percentile(std::vector<double>* values, double q) {
  if (values->empty()) return 0.0;
  std::sort(values->begin(), values->end());
  const std::size_t index = std::min(
      values->size() - 1,
      static_cast<std::size_t>(q * static_cast<double>(values->size())));
  return (*values)[index];
}

}  // namespace

int main(int argc, char** argv) {
  std::string connect_host;
  int connect_port = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--connect=", 0) == 0) {
      const std::string target = arg.substr(10);
      const std::size_t colon = target.find(':');
      if (colon == std::string::npos) {
        std::cerr << "error: --connect wants HOST:PORT\n";
        return 1;
      }
      connect_host = target.substr(0, colon);
      connect_port = std::atoi(target.c_str() + colon + 1);
    } else {
      std::cerr << "error: unknown flag " << arg << "\n";
      return 1;
    }
  }

  bench::PrintHeader(
      "BENCH_serving: closed-loop load on the jury_serve endpoint",
      "per concurrency level: cold pass (cache cleared, all misses), then "
      "warm passes (same requests, epoch-keyed cache hits)");

  const bool fast = GetEnvFlag("JURY_BENCH_FAST");
  const bool external = !connect_host.empty();

  // The workload: one mid-size pool, a set of distinct OPTJS requests
  // (varying budget) heavy enough that a solve dwarfs a cache lookup.
  constexpr int kPoolSize = 120;
  const std::size_t distinct = fast ? 8 : 32;
  const std::size_t warm_passes = fast ? 4 : 8;
  std::vector<std::size_t> concurrencies =
      fast ? std::vector<std::size_t>{1, 4}
           : std::vector<std::size_t>{1, 2, 4, 8};

  Rng rng(20150323);
  std::vector<Worker> workers = bench::PaperPool(&rng, kPoolSize, 0.7);
  double total_cost = 0.0;
  for (const Worker& w : workers) total_cost += w.cost;

  std::vector<std::string> bodies;
  bodies.reserve(distinct);
  for (std::size_t i = 0; i < distinct; ++i) {
    api::SolveRequest request;
    request.solver = "optjs";
    request.alpha = 0.4;
    request.budget =
        total_cost * (0.25 + 0.5 * static_cast<double>(i) /
                                 static_cast<double>(std::max<std::size_t>(
                                     1, distinct - 1)));
    bodies.push_back(request.ToJson());
  }

  std::optional<api::PoolPlanContext> context;
  std::optional<serve::JuryServer> server;
  std::thread server_thread;
  std::string host = connect_host;
  int port = connect_port;
  if (!external) {
    api::PlanOptions plan_options;
    plan_options.assume_validated = true;
    auto planned = api::PoolPlanContext::Plan(workers, plan_options);
    if (!planned.ok()) {
      std::cerr << "error: " << planned.status() << "\n";
      return 1;
    }
    context.emplace(std::move(planned).value());
    serve::ServeOptions options;
    options.cache_entries = 4096;
    server.emplace(&*context, options);
    const Status started = server->Start();
    if (!started.ok()) {
      std::cerr << "error: " << started << "\n";
      return 1;
    }
    host = options.host;
    port = server->port();
    server_thread = std::thread([&server] {
      const Status ran = server->Run();
      if (!ran.ok()) std::cerr << "server error: " << ran << "\n";
    });
  }

  Json rows = Json::Array();
  for (const std::size_t concurrency : concurrencies) {
    PhaseResult cold;
    if (!external) {
      context->result_cache()->Clear();
      cold = RunPhase(host, port, bodies, concurrency, distinct);
    }
    const PhaseResult warm =
        RunPhase(host, port, bodies, concurrency, distinct * warm_passes);

    std::vector<double> latencies = warm.latencies_ms;
    const double p50 = Percentile(&latencies, 0.50);
    const double p99 = Percentile(&latencies, 0.99);
    const double warm_rps =
        warm.seconds > 0.0 ? static_cast<double>(warm.requests) / warm.seconds
                           : 0.0;
    const double cold_rps =
        cold.seconds > 0.0 ? static_cast<double>(cold.requests) / cold.seconds
                           : 0.0;
    const double warm_speedup = cold_rps > 0.0 ? warm_rps / cold_rps : 0.0;
    const double hit_rate =
        warm.requests > 0
            ? static_cast<double>(warm.cache_hits) /
                  static_cast<double>(warm.requests)
            : 0.0;

    std::cout << "concurrency " << concurrency << ": " << warm_rps
              << " req/s warm (" << cold_rps << " cold), p50 " << p50
              << " ms, p99 " << p99 << " ms, hit rate " << hit_rate
              << ", warm speedup " << warm_speedup << "x, errors "
              << cold.errors + warm.errors << "\n";

    rows.Append(Json::Object()
                    .Set("concurrency", static_cast<std::uint64_t>(concurrency))
                    .Set("distinct_requests",
                         static_cast<std::uint64_t>(distinct))
                    .Set("requests", static_cast<std::uint64_t>(warm.requests))
                    .Set("seconds", warm.seconds)
                    .Set("requests_per_second", warm_rps)
                    .Set("p50_ms", p50)
                    .Set("p99_ms", p99)
                    .Set("cache_hit_rate", hit_rate)
                    .Set("cold_requests",
                         static_cast<std::uint64_t>(cold.requests))
                    .Set("cold_seconds", cold.seconds)
                    .Set("cold_requests_per_second", cold_rps)
                    .Set("warm_speedup_vs_cold", warm_speedup)
                    .Set("errors",
                         static_cast<std::uint64_t>(cold.errors + warm.errors))
                    .Set("fast_run", fast));
  }

  if (!external) {
    server->Shutdown();
    server_thread.join();
  }

  const char* path = std::getenv("JURY_BENCH_JSON");
  if (path != nullptr && path[0] != '\0') {
    Json simd_levels = Json::Array();
    simd_levels.Append(std::string("scalar"));
    if (simd::Avx2Available()) simd_levels.Append(std::string("avx2"));
    if (simd::Avx512Available()) simd_levels.Append(std::string("avx512"));
    Json doc = Json::Object();
    doc.Set("host",
            Json::Object()
                .Set("hardware_threads",
                     static_cast<std::uint64_t>(
                         std::max(1u, std::thread::hardware_concurrency())))
                .Set("simd_levels", simd_levels));
    doc.Set("serving", rows);
    doc.Set("process_stats", StatsRegistry::Global().ToJsonValue());
    std::ofstream out(path);
    out << doc.Dump() << "\n";
    std::cout << "Wrote serving JSON to " << path << "\n";
  }
  return 0;
}
