// E7 — Table 3: distribution of the SA optimality gap
// JQ(J*, BV, 0.5) - JQ(J-hat, BV, 0.5), in percent, over all repetitions
// of the Fig. 7(a) protocol (N = 11, B in [0.05, 0.5] step 0.05).

#include <iostream>

#include "bench_util.h"
#include "core/annealing.h"
#include "core/exhaustive.h"
#include "core/greedy.h"
#include "core/objective.h"
#include "util/histogram.h"
#include "util/table.h"

namespace jury {
namespace {

void Run() {
  const int reps = static_cast<int>(bench::Reps(100));
  bench::PrintHeader(
      "Table 3 — counts of SA optimality gap in error ranges (percent)",
      "N=11, B in {0.05..0.5}, " + std::to_string(reps) +
          " reps per budget (paper: 1000/budget, 10000 total). Paper row: "
          "[0,0.01]:9301  (0.01,0.1]:231  (0.1,1]:408  (1,3]:60  (3,inf):0");

  RangeCounter sa_counter({0.0, 0.01, 0.1, 1.0, 3.0});
  RangeCounter system_counter({0.0, 0.01, 0.1, 1.0, 3.0});
  const BucketBvObjective objective;
  for (double budget = 0.05; budget <= 0.501; budget += 0.05) {
    Rng rng(static_cast<std::uint64_t>(budget * 1000) + 31);
    for (int rep = 0; rep < reps; ++rep) {
      Rng pool_rng = rng.Fork();
      JspInstance instance;
      instance.candidates = bench::PaperPool(&pool_rng, 11, 0.7);
      instance.budget = budget;
      instance.alpha = 0.5;
      const auto optimal = SolveExhaustive(instance, objective).value();
      Rng sa_rng = rng.Fork();
      const auto returned =
          SolveAnnealing(instance, objective, &sa_rng).value();
      sa_counter.Add((optimal.jq - returned.jq) * 100.0);  // percent

      // The production OPTJS path backs SA with the greedy baselines.
      double system_jq = returned.jq;
      system_jq = std::max(
          system_jq, SolveGreedyByQuality(instance, objective).value().jq);
      system_jq = std::max(
          system_jq,
          SolveGreedyByValuePerCost(instance, objective).value().jq);
      system_counter.Add((optimal.jq - system_jq) * 100.0);
    }
  }

  Table table({"% range", "Alg.3 SA counts", "SA+greedy counts", "SA frac",
               "SA+greedy frac"});
  for (std::size_t i = 0; i < sa_counter.num_buckets(); ++i) {
    table.AddRow(
        {sa_counter.label(i), std::to_string(sa_counter.count(i)),
         std::to_string(system_counter.count(i)),
         FormatPercent(static_cast<double>(sa_counter.count(i)) /
                       static_cast<double>(sa_counter.total())),
         FormatPercent(static_cast<double>(system_counter.count(i)) /
                       static_cast<double>(system_counter.total()))});
  }
  std::cout << table.ToString() << "Total experiments: "
            << sa_counter.total()
            << "\nThe verbatim Algorithm 3 shows a heavier tail than the "
               "paper reports (our truncated-cost instances admit 1-swap "
               "local optima; the paper's cost handling is unspecified). "
               "The shipped OPTJS path (SA backed by greedy fallbacks) "
               "recovers the paper's near-optimal profile.\n";
}

}  // namespace
}  // namespace jury

int main() {
  jury::Run();
  return 0;
}
