#ifndef JURYOPT_BENCH_BENCH_UTIL_H_
#define JURYOPT_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/objective.h"
#include "model/worker.h"
#include "util/env.h"
#include "util/json.h"
#include "util/rng.h"
#include "util/scheduler.h"
#include "util/simd_dispatch.h"
#include "util/stats_registry.h"

namespace jury::bench {

/// Repetition count for averaged experiments. The paper repeats 1,000
/// times (§6.1.1); the default here keeps the full harness in CI-scale
/// runtime. Override with JURY_BENCH_REPS; JURY_BENCH_FAST=1 quarters it.
inline std::int64_t Reps(std::int64_t fallback) {
  std::int64_t reps = GetEnvInt("JURY_BENCH_REPS", fallback);
  if (GetEnvFlag("JURY_BENCH_FAST")) reps = std::max<std::int64_t>(1, reps / 4);
  return reps;
}

/// Banner printed at the top of each bench binary.
inline void PrintHeader(const std::string& artifact,
                        const std::string& protocol) {
  std::cout << "==============================================================="
               "=\n"
            << artifact << "\n"
            << protocol << "\n"
            << "==============================================================="
               "=\n";
}

/// The paper's synthetic worker generator (§6.1.1): quality ~ N(mu, sigma^2)
/// truncated to [0.01, 0.99], cost ~ N(cost_mu, cost_sigma^2) truncated at
/// 0.01 (DESIGN.md substitution #5).
inline std::vector<Worker> PaperPool(Rng* rng, int n, double mu,
                                     double sigma = 0.22360679774997896,
                                     double cost_mu = 0.05,
                                     double cost_sigma = 0.2) {
  std::vector<Worker> pool;
  pool.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    pool.emplace_back("w" + std::to_string(i),
                      rng->TruncatedGaussian(mu, sigma, 0.01, 0.99),
                      rng->TruncatedGaussian(cost_mu, cost_sigma, 0.01, 1e9));
  }
  return pool;
}

/// One-line report of an objective's full vs. incremental evaluation
/// split (the instrumentation behind the Fig. 7/9 runtime story): how many
/// jury scorings were O(n^2) from-scratch evaluations and how many were
/// O(n) session delta updates.
inline void PrintEvaluationCounters(const std::string& label,
                                    const JqObjective& objective) {
  const EvaluationCounters& counters = objective.evaluation_counters();
  std::cout << label << ": " << counters.total() << " evaluations ("
            << counters.full << " full, " << counters.incremental
            << " incremental";
  if (counters.full > 0) {
    const double ratio = static_cast<double>(counters.total()) /
                         static_cast<double>(counters.full);
    std::cout << "; total/full = " << ratio << "x";
  }
  std::cout << ")\n";
}

/// Accumulates the measurements of a bench binary and, when the
/// `JURY_BENCH_JSON` environment variable names a path, writes them as a
/// JSON artifact for the CI bench-smoke job (the committed baseline lives
/// at the repo root as BENCH_scaling.json and anchors the perf-regression
/// gate). Serialization goes through util/json.h — the same deterministic
/// sorted-key writer `JspSolution::ToJson` and `api::SolveReport::ToJson`
/// use — instead of hand-rolled string splicing, so the artifact's bytes
/// are stable given the same measurements. Sections:
///
///  * `thread_scaling` — solver x thread-count x wall-clock; speedups are
///    relative to the same solver's 1-thread row.
///  * `budget_table_nested` — the nested budget-table ablation
///    (fixed-pool inner pin vs nested solver parallelism), plus the
///    scheduler counters that prove the nested solves actually fanned out.
///  * `annealing_neighbourhood` — batched-polish vs scalar-neighbourhood
///    SA configurations.
///  * `plan_context_reuse` — per-call setup (validate + view build) vs a
///    reused `api::PoolPlanContext` over repeated requests on one pool.
///  * `solve_many` — `SolveMany` request throughput across thread counts.
class ThreadScalingReport {
 public:
  ThreadScalingReport()
      : rows_(Json::Array()),
        nested_rows_(Json::Array()),
        neighbourhood_rows_(Json::Array()),
        reuse_rows_(Json::Array()),
        solve_many_rows_(Json::Array()) {}

  void Add(const std::string& solver, int n, std::size_t threads,
           double seconds, double speedup_vs_serial) {
    rows_.Append(Json::Object()
                     .Set("solver", solver)
                     .Set("n", n)
                     .Set("threads", static_cast<std::uint64_t>(threads))
                     .Set("seconds", seconds)
                     .Set("speedup_vs_1_thread", speedup_vs_serial));
  }

  /// One nested-budget-table measurement: the same workload with inner
  /// solves pinned to one thread (the PR 2 fixed-pool behavior) vs fanned
  /// out as nested regions, at `threads` parallelism.
  void AddNested(int n, std::size_t rows, std::size_t threads,
                 double seconds_fixed_pool, double seconds_nested) {
    const double improvement =
        seconds_nested > 0.0 ? seconds_fixed_pool / seconds_nested : 0.0;
    nested_rows_.Append(
        Json::Object()
            .Set("workload", "budget_table_nested")
            .Set("n", n)
            .Set("rows", static_cast<std::uint64_t>(rows))
            .Set("threads", static_cast<std::uint64_t>(threads))
            .Set("seconds_fixed_pool", seconds_fixed_pool)
            .Set("seconds_nested", seconds_nested)
            .Set("improvement_vs_fixed_pool", improvement));
  }

  /// One annealing-neighbourhood ablation row: the same SA workload with
  /// the batched polish scan on vs the PR 3 scalar-neighbourhood
  /// baselines, with the evaluation-counter evidence.
  void AddAnnealingNeighbourhood(const std::string& config, int n,
                                 double mean_gap, std::size_t full_evals,
                                 std::size_t incremental_evals,
                                 double seconds) {
    neighbourhood_rows_.Append(
        Json::Object()
            .Set("config", config)
            .Set("n", n)
            .Set("mean_jq_gap", mean_gap)
            .Set("full_evals", static_cast<std::uint64_t>(full_evals))
            .Set("incremental_evals",
                 static_cast<std::uint64_t>(incremental_evals))
            .Set("seconds", seconds));
  }

  /// One PlanContext-reuse row: `requests` repeated solves on one pool,
  /// cold per-call setup (validate + view rebuild per request) vs the
  /// reused context (setup amortized into `Plan`; `instances_created` is
  /// the arena high-water mark proving the reuse).
  void AddPlanContextReuse(const std::string& solver, int n,
                           std::size_t requests, double seconds_cold,
                           double seconds_reused,
                           std::size_t instances_created) {
    const double speedup =
        seconds_reused > 0.0 ? seconds_cold / seconds_reused : 0.0;
    reuse_rows_.Append(
        Json::Object()
            .Set("solver", solver)
            .Set("n", n)
            .Set("requests", static_cast<std::uint64_t>(requests))
            .Set("seconds_cold", seconds_cold)
            .Set("seconds_reused", seconds_reused)
            .Set("speedup_vs_cold", speedup)
            .Set("instances_created",
                 static_cast<std::uint64_t>(instances_created)));
  }

  /// One SolveMany throughput row at a thread count. `fused` marks the
  /// cross-request move-scan fusion ablation rows (the flat-combining
  /// broker on) against their per-request-dispatch siblings.
  void AddSolveMany(int n, std::size_t requests, std::size_t threads,
                    double seconds, bool fused = false) {
    solve_many_rows_.Append(
        Json::Object()
            .Set("workload", "solve_many")
            .Set("n", n)
            .Set("requests", static_cast<std::uint64_t>(requests))
            .Set("threads", static_cast<std::uint64_t>(threads))
            .Set("fused_move_scans", fused)
            .Set("seconds", seconds)
            .Set("requests_per_second",
                 seconds > 0.0 ? static_cast<double>(requests) / seconds
                               : 0.0));
  }

  /// Scheduler counters snapshotted around the nested workload: nonzero
  /// `nested_regions` (and, with idle workers, `tasks_stolen`) is the
  /// direct evidence that budget-table rows fanned their inner OPTJS
  /// solves across workers instead of pinning them.
  void SetSchedulerCounters(const SchedulerCounters& counters) {
    scheduler_json_ =
        Json::Object()
            .Set("tasks_spawned", counters.tasks_spawned)
            .Set("tasks_stolen", counters.tasks_stolen)
            .Set("tasks_injected", counters.tasks_injected)
            .Set("regions", counters.regions)
            .Set("nested_regions", counters.nested_regions)
            .Set("inline_regions", counters.inline_regions);
    have_scheduler_ = true;
  }

  /// No-op unless JURY_BENCH_JSON is set.
  void WriteIfRequested() const {
    const char* path = std::getenv("JURY_BENCH_JSON");
    if (path == nullptr || path[0] == '\0') return;
    Json doc = Json::Object();
    // Host provenance: a baseline recorded on a 1-thread box makes no
    // scaling claim, and scripts/check_scaling_regression.py skips the
    // speedup gates for such baselines. `simd_levels` records the kernel
    // tiers this host could execute, so the gate can skip level-pinned
    // rows a weaker baseline host never ran.
    Json simd_levels = Json::Array();
    simd_levels.Append(std::string("scalar"));
    if (simd::Avx2Available()) simd_levels.Append(std::string("avx2"));
    if (simd::Avx512Available()) simd_levels.Append(std::string("avx512"));
    doc.Set("host",
            Json::Object()
                .Set("hardware_threads",
                     static_cast<std::uint64_t>(
                         std::max(1u, std::thread::hardware_concurrency())))
                .Set("simd_levels", simd_levels));
    doc.Set("thread_scaling", rows_);
    doc.Set("budget_table_nested", nested_rows_);
    doc.Set("annealing_neighbourhood", neighbourhood_rows_);
    doc.Set("plan_context_reuse", reuse_rows_);
    doc.Set("solve_many", solve_many_rows_);
    if (have_scheduler_) doc.Set("scheduler", scheduler_json_);
    // End-of-run snapshot of the process-wide registry (the same
    // `{"counters":...,"gauges":...}` document `jury_cli --stats`
    // prints): cumulative evaluation/fusion/plan counts across every
    // workload in the binary, for cross-run artifact diffs.
    doc.Set("process_stats", StatsRegistry::Global().ToJsonValue());
    std::ofstream out(path);
    out << doc.Dump() << "\n";
    std::cout << "Wrote thread-scaling JSON to " << path << "\n";
  }

 private:
  Json rows_;
  Json nested_rows_;
  Json neighbourhood_rows_;
  Json reuse_rows_;
  Json solve_many_rows_;
  Json scheduler_json_;
  bool have_scheduler_ = false;
};

}  // namespace jury::bench

#endif  // JURYOPT_BENCH_BENCH_UTIL_H_
