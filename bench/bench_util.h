#ifndef JURYOPT_BENCH_BENCH_UTIL_H_
#define JURYOPT_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/objective.h"
#include "model/worker.h"
#include "util/env.h"
#include "util/rng.h"
#include "util/scheduler.h"

namespace jury::bench {

/// Repetition count for averaged experiments. The paper repeats 1,000
/// times (§6.1.1); the default here keeps the full harness in CI-scale
/// runtime. Override with JURY_BENCH_REPS; JURY_BENCH_FAST=1 quarters it.
inline std::int64_t Reps(std::int64_t fallback) {
  std::int64_t reps = GetEnvInt("JURY_BENCH_REPS", fallback);
  if (GetEnvFlag("JURY_BENCH_FAST")) reps = std::max<std::int64_t>(1, reps / 4);
  return reps;
}

/// Banner printed at the top of each bench binary.
inline void PrintHeader(const std::string& artifact,
                        const std::string& protocol) {
  std::cout << "==============================================================="
               "=\n"
            << artifact << "\n"
            << protocol << "\n"
            << "==============================================================="
               "=\n";
}

/// The paper's synthetic worker generator (§6.1.1): quality ~ N(mu, sigma^2)
/// truncated to [0.01, 0.99], cost ~ N(cost_mu, cost_sigma^2) truncated at
/// 0.01 (DESIGN.md substitution #5).
inline std::vector<Worker> PaperPool(Rng* rng, int n, double mu,
                                     double sigma = 0.22360679774997896,
                                     double cost_mu = 0.05,
                                     double cost_sigma = 0.2) {
  std::vector<Worker> pool;
  pool.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    pool.emplace_back("w" + std::to_string(i),
                      rng->TruncatedGaussian(mu, sigma, 0.01, 0.99),
                      rng->TruncatedGaussian(cost_mu, cost_sigma, 0.01, 1e9));
  }
  return pool;
}

/// One-line report of an objective's full vs. incremental evaluation
/// split (the instrumentation behind the Fig. 7/9 runtime story): how many
/// jury scorings were O(n^2) from-scratch evaluations and how many were
/// O(n) session delta updates.
inline void PrintEvaluationCounters(const std::string& label,
                                    const JqObjective& objective) {
  const EvaluationCounters& counters = objective.evaluation_counters();
  std::cout << label << ": " << counters.total() << " evaluations ("
            << counters.full << " full, " << counters.incremental
            << " incremental";
  if (counters.full > 0) {
    const double ratio = static_cast<double>(counters.total()) /
                         static_cast<double>(counters.full);
    std::cout << "; total/full = " << ratio << "x";
  }
  std::cout << ")\n";
}

/// Accumulates the thread-scaling measurements (solver x thread-count x
/// wall-clock) of a bench binary and, when the `JURY_BENCH_JSON`
/// environment variable names a path, writes them as a JSON artifact for
/// the CI bench-smoke job (the committed baseline lives at the repo root
/// as BENCH_scaling.json and anchors the perf-regression gate). Speedups
/// are relative to the same solver's 1-thread row, so the scaling claim
/// is reproducible from one binary. A second section records the nested
/// budget-table ablation (fixed-pool inner pin vs nested solver
/// parallelism) together with the scheduler counters that prove the
/// nested solves actually fanned out.
class ThreadScalingReport {
 public:
  void Add(const std::string& solver, int n, std::size_t threads,
           double seconds, double speedup_vs_serial) {
    std::ostringstream row;
    row << "    {\"solver\": \"" << solver << "\", \"n\": " << n
        << ", \"threads\": " << threads << ", \"seconds\": " << seconds
        << ", \"speedup_vs_1_thread\": " << speedup_vs_serial << "}";
    rows_.push_back(row.str());
  }

  /// One nested-budget-table measurement: the same workload with inner
  /// solves pinned to one thread (the PR 2 fixed-pool behavior) vs fanned
  /// out as nested regions, at `threads` parallelism.
  void AddNested(int n, std::size_t rows, std::size_t threads,
                 double seconds_fixed_pool, double seconds_nested) {
    const double improvement =
        seconds_nested > 0.0 ? seconds_fixed_pool / seconds_nested : 0.0;
    std::ostringstream row;
    row << "    {\"workload\": \"budget_table_nested\", \"n\": " << n
        << ", \"rows\": " << rows << ", \"threads\": " << threads
        << ", \"seconds_fixed_pool\": " << seconds_fixed_pool
        << ", \"seconds_nested\": " << seconds_nested
        << ", \"improvement_vs_fixed_pool\": " << improvement << "}";
    nested_rows_.push_back(row.str());
  }

  /// One annealing-neighbourhood ablation row: the same SA workload with
  /// the batched polish scan on vs the PR 3 scalar-neighbourhood
  /// baselines, with the evaluation-counter evidence.
  void AddAnnealingNeighbourhood(const std::string& config, int n,
                                 double mean_gap, std::size_t full_evals,
                                 std::size_t incremental_evals,
                                 double seconds) {
    std::ostringstream row;
    row << "    {\"config\": \"" << config << "\", \"n\": " << n
        << ", \"mean_jq_gap\": " << mean_gap
        << ", \"full_evals\": " << full_evals
        << ", \"incremental_evals\": " << incremental_evals
        << ", \"seconds\": " << seconds << "}";
    neighbourhood_rows_.push_back(row.str());
  }

  /// Scheduler counters snapshotted around the nested workload: nonzero
  /// `nested_regions` (and, with idle workers, `tasks_stolen`) is the
  /// direct evidence that budget-table rows fanned their inner OPTJS
  /// solves across workers instead of pinning them.
  void SetSchedulerCounters(const SchedulerCounters& counters) {
    std::ostringstream obj;
    obj << "  \"scheduler\": {\"tasks_spawned\": " << counters.tasks_spawned
        << ", \"tasks_stolen\": " << counters.tasks_stolen
        << ", \"tasks_injected\": " << counters.tasks_injected
        << ", \"regions\": " << counters.regions
        << ", \"nested_regions\": " << counters.nested_regions
        << ", \"inline_regions\": " << counters.inline_regions << "}";
    scheduler_json_ = obj.str();
  }

  /// No-op unless JURY_BENCH_JSON is set.
  void WriteIfRequested() const {
    const char* path = std::getenv("JURY_BENCH_JSON");
    if (path == nullptr || path[0] == '\0') return;
    std::ofstream out(path);
    // Host provenance: a baseline recorded on a 1-thread box makes no
    // scaling claim, and scripts/check_scaling_regression.py skips the
    // speedup gates for such baselines.
    out << "{\n  \"host\": {\"hardware_threads\": "
        << std::max(1u, std::thread::hardware_concurrency()) << "},\n";
    out << "  \"thread_scaling\": [\n";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      out << rows_[i] << (i + 1 < rows_.size() ? ",\n" : "\n");
    }
    out << "  ],\n  \"budget_table_nested\": [\n";
    for (std::size_t i = 0; i < nested_rows_.size(); ++i) {
      out << nested_rows_[i] << (i + 1 < nested_rows_.size() ? ",\n" : "\n");
    }
    out << "  ]";
    if (!neighbourhood_rows_.empty()) {
      out << ",\n  \"annealing_neighbourhood\": [\n";
      for (std::size_t i = 0; i < neighbourhood_rows_.size(); ++i) {
        out << neighbourhood_rows_[i]
            << (i + 1 < neighbourhood_rows_.size() ? ",\n" : "\n");
      }
      out << "  ]";
    }
    if (!scheduler_json_.empty()) out << ",\n" << scheduler_json_;
    out << "\n}\n";
    std::cout << "Wrote thread-scaling JSON to " << path << "\n";
  }

 private:
  std::vector<std::string> rows_;
  std::vector<std::string> nested_rows_;
  std::vector<std::string> neighbourhood_rows_;
  std::string scheduler_json_;
};

}  // namespace jury::bench

#endif  // JURYOPT_BENCH_BENCH_UTIL_H_
