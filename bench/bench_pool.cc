// bench_pool: the sharded-pool / frontier / snapshot performance story.
//
// Three sections, written to the JSON artifact named by JURY_BENCH_JSON
// (committed baseline: BENCH_pool.json at the repo root; gated by
// scripts/check_scaling_regression.py):
//
//  * `pool_build` — ShardedWorkerPool construction cost: per-shard summary
//    stats (cost bounds, quality histogram, dual top-k slates) over pools
//    up to a million workers.
//  * `snapshot` — plan-from-snapshot vs plan-from-CSV: the same pool
//    round-tripped through `PoolSnapshot::Write`, then planned both ways.
//    The snapshot path maps the columns read-only and skips parsing,
//    validation, and the per-worker log() of a fresh columnar build.
//  * `frontier` — greedy marginal-gain with candidate-frontier
//    pre-selection (exact mode) vs the full O(N)-per-round scan, with the
//    bit-identity of the returned jury asserted, plus the pruning-rate
//    evidence from `FrontierScanStats`.
//
// JURY_BENCH_FAST=1 drops the million-worker rows for CI-scale runtime.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "api/solve.h"
#include "bench_util.h"
#include "core/frontier.h"
#include "core/greedy.h"
#include "core/objective.h"
#include "model/pool_snapshot.h"
#include "model/sharded_pool.h"
#include "model/worker_io.h"
#include "util/check.h"
#include "util/env.h"
#include "util/json.h"
#include "util/rng.h"
#include "util/timer.h"

namespace jury::bench {
namespace {

std::string TempPath(const std::string& name) {
  const char* tmp = std::getenv("TMPDIR");
  std::string dir = (tmp != nullptr && tmp[0] != '\0') ? tmp : "/tmp";
  if (dir.back() != '/') dir += '/';
  return dir + name;
}

/// Writes `workers` as a worker CSV at `path` (the bench's stand-in for
/// the pool file a deployment would load).
void WriteCsv(const std::string& path, const std::vector<Worker>& workers) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  JURY_CHECK(f != nullptr) << "cannot write " << path;
  std::fputs("id,quality,cost\n", f);
  for (const Worker& w : workers) {
    std::fprintf(f, "%s,%.17g,%.17g\n", w.id.c_str(), w.quality, w.cost);
  }
  std::fclose(f);
}

struct PoolBench {
  Json pool_build_rows = Json::Array();
  Json snapshot_rows = Json::Array();
  Json frontier_rows = Json::Array();
};

void BenchPoolBuild(PoolBench* out, const std::vector<Worker>& workers) {
  const WorkerPoolView view(workers);
  Timer timer;
  const ShardedWorkerPool pool(&view);
  const double seconds = timer.ElapsedSeconds();
  std::cout << "pool_build  n=" << workers.size() << "  shards="
            << pool.num_shards() << "  " << seconds << " s\n";
  out->pool_build_rows.Append(
      Json::Object()
          .Set("n", static_cast<std::uint64_t>(workers.size()))
          .Set("shard_size",
               static_cast<std::uint64_t>(pool.options().shard_size))
          .Set("slate_k", static_cast<std::uint64_t>(pool.options().slate_k))
          .Set("shards", static_cast<std::uint64_t>(pool.num_shards()))
          .Set("seconds_build", seconds));
}

void BenchSnapshot(PoolBench* out, const std::vector<Worker>& workers) {
  const std::string csv_path = TempPath("juryopt_bench_pool.csv");
  const std::string snap_path = TempPath("juryopt_bench_pool.snap");
  WriteCsv(csv_path, workers);
  {
    const WorkerPoolView view(workers);
    JURY_CHECK(PoolSnapshot::Write(snap_path, workers, view).ok());
  }

  // Best-of-N on both paths: the first rep of either pays one-time costs
  // (page-cache warmup of the just-written file, dispatch-table init)
  // that a serving process loading a snapshot at startup does not —
  // steady-state is the honest comparison, and it is what the committed
  // artifact gates on.
  //
  // CSV path: parse + row validation + plan (validation hoisted to the
  // loader, exactly as jury_cli plans a CSV pool).
  double seconds_csv = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < 3; ++rep) {
    Timer csv_timer;
    auto loaded = LoadWorkersCsv(csv_path);
    JURY_CHECK(loaded.ok());
    api::PlanOptions plan_options;
    plan_options.assume_validated = true;
    auto csv_planned =
        api::PoolPlanContext::Plan(std::move(loaded).value(), plan_options);
    JURY_CHECK(csv_planned.ok());
    seconds_csv = std::min(seconds_csv, csv_timer.ElapsedSeconds());
  }

  // Snapshot path: map + checksum + adopt columns. No parse, no
  // re-validation, no per-worker log().
  double seconds_snap = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < 5; ++rep) {
    Timer snap_timer;
    auto snap_planned = api::PoolPlanContext::PlanFromSnapshot(snap_path);
    JURY_CHECK(snap_planned.ok());
    seconds_snap = std::min(seconds_snap, snap_timer.ElapsedSeconds());
    JURY_CHECK(snap_planned.value().num_candidates() == workers.size());
  }

  const double speedup = seconds_snap > 0.0 ? seconds_csv / seconds_snap : 0.0;
  std::cout << "snapshot    n=" << workers.size() << "  csv_plan="
            << seconds_csv << " s  snapshot_plan=" << seconds_snap
            << " s  speedup=" << speedup << "x\n";
  out->snapshot_rows.Append(
      Json::Object()
          .Set("n", static_cast<std::uint64_t>(workers.size()))
          .Set("seconds_csv_plan", seconds_csv)
          .Set("seconds_snapshot_plan", seconds_snap)
          .Set("speedup_vs_csv", speedup));
  std::remove(csv_path.c_str());
  std::remove(snap_path.c_str());
}

void BenchFrontier(PoolBench* out, const std::vector<Worker>& workers,
                   double budget) {
  JspInstance instance;
  instance.candidates = workers;
  instance.budget = budget;
  instance.alpha = 0.5;
  const WorkerPoolView view(instance.candidates);
  const ShardedWorkerPool sharded(&view);
  const BucketBvObjective objective{BucketJqOptions{}};

  // Best-of-3 on both solves, like BenchSnapshot: one-shot ms-scale
  // timings swing tens of percent run to run, and the artifact gates on
  // the ratio.
  GreedyOptions full_options;
  Result<JspSolution> full = Status::Internal("unrun");
  double seconds_full = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < 3; ++rep) {
    Timer full_timer;
    full = SolveGreedyMarginalGain(instance, view, objective, full_options);
    seconds_full = std::min(seconds_full, full_timer.ElapsedSeconds());
    JURY_CHECK(full.ok());
  }

  GreedyOptions frontier_options;
  frontier_options.frontier_k = FrontierOptions{}.k;
  frontier_options.sharded_pool = &sharded;
  Result<JspSolution> frontier = Status::Internal("unrun");
  double seconds_frontier = std::numeric_limits<double>::infinity();
  FrontierScanStats stats;
  for (int rep = 0; rep < 3; ++rep) {
    FrontierScanStats rep_stats;
    frontier_options.frontier_stats = &rep_stats;
    Timer frontier_timer;
    frontier =
        SolveGreedyMarginalGain(instance, view, objective, frontier_options);
    seconds_frontier = std::min(seconds_frontier, frontier_timer.ElapsedSeconds());
    JURY_CHECK(frontier.ok());
    stats = rep_stats;
  }

  // The exactness contract, asserted on every run: the frontier-assisted
  // greedy returns the same jury, bit for bit.
  JURY_CHECK(frontier.value().selected == full.value().selected);
  JURY_CHECK(frontier.value().jq == full.value().jq);
  JURY_CHECK(frontier.value().cost == full.value().cost);

  const double speedup =
      seconds_frontier > 0.0 ? seconds_full / seconds_frontier : 0.0;
  const double full_scan_work =
      static_cast<double>(stats.scans) * static_cast<double>(workers.size());
  const double pruning_rate =
      full_scan_work > 0.0
          ? 1.0 - static_cast<double>(stats.candidates_scanned) /
                      full_scan_work
          : 0.0;
  std::cout << "frontier    n=" << workers.size() << "  full="
            << seconds_full << " s  frontier=" << seconds_frontier
            << " s  speedup=" << speedup << "x  pruning=" << pruning_rate
            << "  proofs=" << stats.exactness_proofs << "/" << stats.scans
            << "\n";
  out->frontier_rows.Append(
      Json::Object()
          .Set("n", static_cast<std::uint64_t>(workers.size()))
          .Set("frontier_k", static_cast<std::uint64_t>(FrontierOptions{}.k))
          .Set("jury_size",
               static_cast<std::uint64_t>(full.value().selected.size()))
          .Set("seconds_full_scan", seconds_full)
          .Set("seconds_frontier", seconds_frontier)
          .Set("speedup_vs_full_scan", speedup)
          .Set("scans", stats.scans)
          .Set("candidates_scanned", stats.candidates_scanned)
          .Set("exactness_proofs", stats.exactness_proofs)
          .Set("shards_expanded", stats.shards_expanded)
          .Set("pruning_rate", pruning_rate));
}

int Run() {
  PrintHeader("BENCH_pool",
              "sharded pools: build cost, snapshot planning, frontier "
              "pre-selection (exact mode, bit-identity asserted)");
  const bool fast = GetEnvFlag("JURY_BENCH_FAST");

  Rng rng(20150323);
  std::vector<int> build_sizes = {10'000, 100'000};
  std::vector<int> snapshot_sizes = {100'000};
  std::vector<int> frontier_sizes = {10'000, 100'000};
  if (!fast) {
    build_sizes.push_back(1'000'000);
    snapshot_sizes.push_back(1'000'000);
  }

  PoolBench bench;
  const int max_n =
      std::max(*std::max_element(build_sizes.begin(), build_sizes.end()),
               *std::max_element(snapshot_sizes.begin(),
                                 snapshot_sizes.end()));
  std::vector<Worker> pool = PaperPool(&rng, max_n, 0.7);

  for (const int n : build_sizes) {
    std::vector<Worker> slice(pool.begin(), pool.begin() + n);
    BenchPoolBuild(&bench, slice);
  }
  for (const int n : snapshot_sizes) {
    std::vector<Worker> slice(pool.begin(), pool.begin() + n);
    BenchSnapshot(&bench, slice);
  }
  for (const int n : frontier_sizes) {
    std::vector<Worker> slice(pool.begin(), pool.begin() + n);
    // Budget sized for a ~25-worker jury (cost_mu = 0.05), so the full
    // scan pays ~25 rounds x N candidate scores.
    BenchFrontier(&bench, slice, 1.25);
  }

  const char* path = std::getenv("JURY_BENCH_JSON");
  if (path != nullptr && path[0] != '\0') {
    Json doc = Json::Object();
    Json simd_levels = Json::Array();
    simd_levels.Append(std::string("scalar"));
    if (simd::Avx2Available()) simd_levels.Append(std::string("avx2"));
    if (simd::Avx512Available()) simd_levels.Append(std::string("avx512"));
    doc.Set("host",
            Json::Object()
                .Set("hardware_threads",
                     static_cast<std::uint64_t>(
                         std::max(1u, std::thread::hardware_concurrency())))
                .Set("simd_levels", simd_levels));
    doc.Set("pool_build", bench.pool_build_rows);
    doc.Set("snapshot", bench.snapshot_rows);
    doc.Set("frontier", bench.frontier_rows);
    doc.Set("process_stats", StatsRegistry::Global().ToJsonValue());
    std::ofstream file(path);
    file << doc.Dump() << "\n";
    std::cout << "Wrote pool bench JSON to " << path << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace jury::bench

int main() { return jury::bench::Run(); }
