// Extension experiment — static vs online vote buying (§8 context).
//
// The paper pre-selects the whole jury before any vote (OPTJS); CDAS-style
// systems buy votes one at a time and stop once the Bayesian posterior is
// confident. Both run on the same model here, so we can measure the classic
// trade-off: at matched accuracy, how much money does adaptive stopping
// save?  Protocol: per task, OPTJS picks a jury under budget B and BV
// aggregates its votes; the online policy walks the same worker pool in
// cost-effectiveness order with a confidence target equal to the static
// jury's predicted JQ.

#include <algorithm>
#include <iostream>
#include <numeric>

#include "bench_util.h"
#include "core/optjs.h"
#include "core/sequential.h"
#include "crowd/vote_sim.h"
#include "strategy/bayesian.h"
#include "util/stats.h"
#include "util/table.h"

namespace jury {
namespace {

void Run() {
  const int tasks = static_cast<int>(bench::Reps(400));
  bench::PrintHeader(
      "Ablation — static jury (OPTJS) vs online stopping (extension)",
      "N=20 workers/task, budget B per task; online target = static "
      "predicted JQ; " +
          std::to_string(tasks) + " simulated tasks per row.");

  Table table({"B", "static acc", "static spent", "online acc",
               "online spent", "online votes", "savings"});
  for (double budget : {0.3, 0.5, 0.8}) {
    Rng rng(static_cast<std::uint64_t>(budget * 1000) + 17);
    const BayesianVoting bv;
    OnlineStats static_spent, online_spent, online_votes;
    int static_correct = 0;
    int online_correct = 0;
    for (int t = 0; t < tasks; ++t) {
      Rng pool_rng = rng.Fork();
      const auto pool = bench::PaperPool(&pool_rng, 20, 0.7);
      const int truth = crowd::SampleTruth(0.5, &rng);

      // --- Static: select once, buy the whole jury, aggregate with BV.
      JspInstance instance;
      instance.candidates = pool;
      instance.budget = budget;
      instance.alpha = 0.5;
      Rng solver_rng = rng.Fork();
      const auto solution = SolveOptjs(instance, &solver_rng).value();
      const Jury jury = solution.ToJury(instance);
      if (!jury.empty()) {
        const Votes votes = crowd::SimulateVotes(jury, truth, &rng);
        const int answer = bv.ProbZero(jury, votes, 0.5) >= 1.0 ? 0 : 1;
        static_correct += (answer == truth);
      } else {
        static_correct += rng.Bernoulli(0.5) ? 1 : 0;
      }
      static_spent.Add(solution.cost);

      // --- Online: same pool, most-informative-per-dollar first, stop at
      // the static jury's predicted quality (capped by the same budget).
      std::vector<Worker> stream = pool;
      std::sort(stream.begin(), stream.end(),
                [](const Worker& a, const Worker& b) {
                  return (a.quality - 0.5) / std::max(a.cost, 1e-9) >
                         (b.quality - 0.5) / std::max(b.cost, 1e-9);
                });
      SequentialConfig config;
      config.confidence_threshold = std::min(solution.jq, 0.999);
      config.budget = budget;
      const auto outcome =
          RunSequentialPolicy(
              stream,
              [&](const Worker& w, std::size_t) {
                return crowd::SimulateVote(w.quality, truth, &rng);
              },
              config)
              .value();
      online_correct += (outcome.answer == truth);
      online_spent.Add(outcome.spent);
      online_votes.Add(static_cast<double>(outcome.votes_used));
    }
    const double savings =
        static_spent.mean() > 0.0
            ? 1.0 - online_spent.mean() / static_spent.mean()
            : 0.0;
    table.AddRow(
        {Format(budget, 1),
         FormatPercent(static_cast<double>(static_correct) / tasks),
         Format(static_spent.mean(), 3),
         FormatPercent(static_cast<double>(online_correct) / tasks),
         Format(online_spent.mean(), 3), Format(online_votes.mean(), 1),
         FormatPercent(savings, 1)});
  }
  std::cout << table.ToString()
            << "\nAdaptive stopping reaches the static jury's accuracy "
               "while spending a fraction of the money: easy tasks resolve "
               "after a couple of agreeing votes. The paper's JSP remains "
               "the right tool when votes must be commissioned up front "
               "(its setting); this quantifies the price of that "
               "constraint.\n";
}

}  // namespace
}  // namespace jury

int main() {
  jury::Run();
  return 0;
}
