// google-benchmark microbenchmarks of the JQ kernels: the bucketed
// Algorithm-1 estimator (backend x pruning x n), the exact MV
// Poisson-binomial DP, the 2^n exact enumerator, and the SA solver.

#include <benchmark/benchmark.h>

#include "api/solve.h"
#include "core/annealing.h"
#include "core/objective.h"
#include "jq/bucket.h"
#include "jq/closed_form.h"
#include "jq/exact.h"
#include "model/jury.h"
#include "model/worker_pool_view.h"
#include "util/cancellation.h"
#include "util/poisson_binomial.h"
#include "util/rng.h"
#include "util/simd_dispatch.h"

namespace jury {
namespace {

Jury MakeJury(int n, std::uint64_t seed = 99) {
  Rng rng(seed);
  std::vector<double> qs;
  for (int i = 0; i < n; ++i) {
    qs.push_back(rng.TruncatedGaussian(0.7, 0.22360679774997896, 0.01, 0.99));
  }
  return Jury::FromQualities(qs);
}

void BM_EstimateJqDense(benchmark::State& state) {
  const Jury jury = MakeJury(static_cast<int>(state.range(0)));
  BucketJqOptions options;
  options.backend = BucketBackend::kDense;
  for (auto _ : state) {
    benchmark::DoNotOptimize(EstimateJq(jury, 0.5, options).value());
  }
}
BENCHMARK(BM_EstimateJqDense)->Arg(10)->Arg(50)->Arg(100)->Arg(200)->Arg(500);

void BM_EstimateJqSparse(benchmark::State& state) {
  const Jury jury = MakeJury(static_cast<int>(state.range(0)));
  BucketJqOptions options;
  options.backend = BucketBackend::kSparse;
  for (auto _ : state) {
    benchmark::DoNotOptimize(EstimateJq(jury, 0.5, options).value());
  }
}
BENCHMARK(BM_EstimateJqSparse)->Arg(10)->Arg(50)->Arg(100)->Arg(200)->Arg(500);

void BM_EstimateJqNoPruning(benchmark::State& state) {
  const Jury jury = MakeJury(static_cast<int>(state.range(0)));
  BucketJqOptions options;
  options.backend = BucketBackend::kSparse;
  options.enable_pruning = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(EstimateJq(jury, 0.5, options).value());
  }
}
BENCHMARK(BM_EstimateJqNoPruning)->Arg(10)->Arg(50)->Arg(100)->Arg(200);

void BM_EstimateJqHighResolution(benchmark::State& state) {
  // The d = 200 per-worker setting that guarantees the <1% bound.
  const int n = static_cast<int>(state.range(0));
  const Jury jury = MakeJury(n);
  BucketJqOptions options;
  options.num_buckets = 200 * n;
  for (auto _ : state) {
    benchmark::DoNotOptimize(EstimateJq(jury, 0.5, options).value());
  }
}
BENCHMARK(BM_EstimateJqHighResolution)->Arg(10)->Arg(25)->Arg(50);

void BM_MajorityJqDp(benchmark::State& state) {
  const Jury jury = MakeJury(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(MajorityJq(jury, 0.5).value());
  }
}
BENCHMARK(BM_MajorityJqDp)->Arg(10)->Arg(100)->Arg(500);

void BM_ExactJqEnumeration(benchmark::State& state) {
  const Jury jury = MakeJury(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExactJqBv(jury, 0.5).value());
  }
}
BENCHMARK(BM_ExactJqEnumeration)->Arg(8)->Arg(12)->Arg(16)->Arg(20);

void BM_IncrementalSwapBucket(benchmark::State& state) {
  // One SA-style swap scored by session delta update vs the from-scratch
  // estimate the solvers used to pay per move.
  const int n = static_cast<int>(state.range(0));
  const Jury jury = MakeJury(n);
  const BucketBvObjective objective;
  auto session = objective.StartSession(0.5);
  for (const Worker& w : jury.workers()) {
    session->ScoreAdd(w);
    session->Commit();
  }
  const Worker in("swap-in", 0.72, 0.0);
  std::size_t idx = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(session->ScoreSwap(idx % jury.size(), in));
    session->Rollback();
    ++idx;
  }
}
BENCHMARK(BM_IncrementalSwapBucket)->Arg(10)->Arg(50)->Arg(100)->Arg(200)->Arg(500);

void BM_IncrementalSwapMajority(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Jury jury = MakeJury(n);
  const MajorityObjective objective;
  auto session = objective.StartSession(0.5);
  for (const Worker& w : jury.workers()) {
    session->ScoreAdd(w);
    session->Commit();
  }
  const Worker in("swap-in", 0.72, 0.0);
  std::size_t idx = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(session->ScoreSwap(idx % jury.size(), in));
    session->Rollback();
    ++idx;
  }
}
BENCHMARK(BM_IncrementalSwapMajority)->Arg(10)->Arg(100)->Arg(500);

void BM_PoissonBinomialTailAfterDelta(benchmark::State& state) {
  // Regression case for the cached suffix/prefix sums: the MV session's
  // per-move kernel — one AddTrial + RemoveTrial delta followed by a
  // Tail/Cdf pair — must cost one O(n) cache rebuild, not two O(n)
  // sweeps (and repeat queries must be O(1), covered below).
  const int n = static_cast<int>(state.range(0));
  Rng rng(31);
  std::vector<double> probs;
  for (int i = 0; i < n; ++i) probs.push_back(rng.Uniform(0.3, 0.95));
  PoissonBinomial pb(probs);
  const int k = n / 2 + 1;
  for (auto _ : state) {
    pb.RemoveTrial(probs[0]);
    pb.AddTrial(probs[0]);
    benchmark::DoNotOptimize(pb.TailAtLeast(k));
    benchmark::DoNotOptimize(pb.CdfAtMost(k - 1));
  }
}
BENCHMARK(BM_PoissonBinomialTailAfterDelta)->Arg(10)->Arg(100)->Arg(500);

void BM_PoissonBinomialTailCached(benchmark::State& state) {
  // Steady-state queries against an unchanged distribution: O(1) lookups
  // into the cumulative caches.
  const int n = static_cast<int>(state.range(0));
  Rng rng(31);
  std::vector<double> probs;
  for (int i = 0; i < n; ++i) probs.push_back(rng.Uniform(0.3, 0.95));
  const PoissonBinomial pb(probs);
  int k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pb.TailAtLeast(k % (n + 1)));
    benchmark::DoNotOptimize(pb.CdfAtMost(k % (n + 1)));
    ++k;
  }
}
BENCHMARK(BM_PoissonBinomialTailCached)->Arg(10)->Arg(100)->Arg(500);

void BM_SessionCloneBucket(benchmark::State& state) {
  // Cost of cloning a BV/bucket session — what each greedy scan shard
  // pays once per round to own its private delta-update state.
  const int n = static_cast<int>(state.range(0));
  const Jury jury = MakeJury(n);
  const BucketBvObjective objective;
  auto session = objective.StartSession(0.5);
  for (const Worker& w : jury.workers()) {
    session->ScoreAdd(w);
    session->Commit();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(session->Clone());
  }
}
BENCHMARK(BM_SessionCloneBucket)->Arg(10)->Arg(50)->Arg(200);

// ---------------------------------------------------------------------------
// Scalar vs batched (SoA) kernel sections: the greedy candidate scan is the
// flat-profile consumer — one hypothetical add per affordable candidate per
// round — so the win of the fused batched kernels is measured here rather
// than asserted. Scalar = the per-candidate copy/convolve/query sequence
// the sessions used to run; batched = the bit-identical fused kernel.
// ---------------------------------------------------------------------------

constexpr std::size_t kScanCandidates = 64;

std::vector<double> ScanProbs(std::uint64_t seed = 43) {
  Rng rng(seed);
  std::vector<double> probs;
  for (std::size_t j = 0; j < kScanCandidates; ++j) {
    probs.push_back(rng.Uniform(0.3, 0.95));
  }
  return probs;
}

void BM_PoissonBinomialScanScalar(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(31);
  std::vector<double> committed;
  for (int i = 0; i < n; ++i) committed.push_back(rng.Uniform(0.3, 0.95));
  const PoissonBinomial pb(committed);
  const std::vector<double> candidates = ScanProbs();
  const int k = (n + 1) / 2 + 1;
  for (auto _ : state) {
    for (double p : candidates) {
      PoissonBinomial copy = pb;
      copy.AddTrial(p);
      benchmark::DoNotOptimize(copy.TailAtLeast(k));
      benchmark::DoNotOptimize(copy.CdfAtMost(k - 1));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kScanCandidates));
}
BENCHMARK(BM_PoissonBinomialScanScalar)->Arg(10)->Arg(100)->Arg(500);

void BM_PoissonBinomialScanBatched(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(31);
  std::vector<double> committed;
  for (int i = 0; i < n; ++i) committed.push_back(rng.Uniform(0.3, 0.95));
  const PoissonBinomial pb(committed);
  const std::vector<double> candidates = ScanProbs();
  const int k = (n + 1) / 2 + 1;
  std::vector<double> tails(candidates.size());
  std::vector<double> cdfs(candidates.size());
  for (auto _ : state) {
    pb.EvaluateBatch(candidates.data(), candidates.size(), k, k - 1,
                     tails.data(), cdfs.data());
    benchmark::DoNotOptimize(tails.data());
    benchmark::DoNotOptimize(cdfs.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kScanCandidates));
}
BENCHMARK(BM_PoissonBinomialScanBatched)->Arg(10)->Arg(100)->Arg(500);

void BM_PoissonBinomialConstructScalar(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(37);
  std::vector<double> probs;
  for (int i = 0; i < n; ++i) probs.push_back(rng.Uniform());
  for (auto _ : state) {
    PoissonBinomial pb({});
    for (double p : probs) pb.AddTrial(p);
    benchmark::DoNotOptimize(pb.Pmf(n / 2));
  }
}
BENCHMARK(BM_PoissonBinomialConstructScalar)->Arg(100)->Arg(500);

void BM_PoissonBinomialConstructBatched(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(37);
  std::vector<double> probs;
  for (int i = 0; i < n; ++i) probs.push_back(rng.Uniform());
  for (auto _ : state) {
    PoissonBinomial pb({});
    pb.AddTrialBatch(probs.data(), probs.size());
    benchmark::DoNotOptimize(pb.Pmf(n / 2));
  }
}
BENCHMARK(BM_PoissonBinomialConstructBatched)->Arg(100)->Arg(500);

void BM_BucketScanScalar(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(41);
  BucketKeyDistribution dist;
  for (int i = 0; i < n; ++i) {
    dist.Convolve(1 + static_cast<std::int64_t>(rng.UniformInt(50)),
                  rng.Uniform(0.5, 0.95));
  }
  std::vector<std::int64_t> bs;
  std::vector<double> qs;
  for (std::size_t j = 0; j < kScanCandidates; ++j) {
    bs.push_back(1 + static_cast<std::int64_t>(rng.UniformInt(50)));
    qs.push_back(rng.Uniform(0.5, 0.95));
  }
  for (auto _ : state) {
    for (std::size_t j = 0; j < kScanCandidates; ++j) {
      BucketKeyDistribution copy = dist;
      copy.Convolve(bs[j], qs[j]);
      benchmark::DoNotOptimize(copy.PositiveMass());
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kScanCandidates));
}
BENCHMARK(BM_BucketScanScalar)->Arg(10)->Arg(50)->Arg(200);

void BM_BucketScanBatched(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(41);
  BucketKeyDistribution dist;
  for (int i = 0; i < n; ++i) {
    dist.Convolve(1 + static_cast<std::int64_t>(rng.UniformInt(50)),
                  rng.Uniform(0.5, 0.95));
  }
  std::vector<std::int64_t> bs;
  std::vector<double> qs;
  for (std::size_t j = 0; j < kScanCandidates; ++j) {
    bs.push_back(1 + static_cast<std::int64_t>(rng.UniformInt(50)));
    qs.push_back(rng.Uniform(0.5, 0.95));
  }
  std::vector<double> out(kScanCandidates);
  for (auto _ : state) {
    dist.ConvolvePositiveMassBatch(bs.data(), qs.data(), kScanCandidates,
                                   out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kScanCandidates));
}
BENCHMARK(BM_BucketScanBatched)->Arg(10)->Arg(50)->Arg(200);

void BM_BucketRemoveScanScalar(benchmark::State& state) {
  // The pre-kernel remove scan: one full distribution copy plus a
  // deconvolve and mass sweep per removal candidate.
  const int n = static_cast<int>(state.range(0));
  Rng rng(53);
  BucketKeyDistribution dist;
  std::vector<std::int64_t> bs;
  std::vector<double> qs;
  for (int i = 0; i < n; ++i) {
    bs.push_back(1 + static_cast<std::int64_t>(rng.UniformInt(50)));
    qs.push_back(rng.Uniform(0.5, 0.95));
    dist.Convolve(bs.back(), qs.back());
  }
  for (auto _ : state) {
    for (int i = 0; i < n; ++i) {
      BucketKeyDistribution copy = dist;
      copy.Deconvolve(bs[static_cast<std::size_t>(i)],
                      qs[static_cast<std::size_t>(i)]);
      benchmark::DoNotOptimize(copy.PositiveMass());
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_BucketRemoveScanScalar)->Arg(10)->Arg(50)->Arg(200);

void BM_BucketRemoveScanBatched(benchmark::State& state) {
  // The batched deconvolve fold: every committed member scored for
  // removal in one dispatched kernel call, no copies.
  const int n = static_cast<int>(state.range(0));
  Rng rng(53);
  BucketKeyDistribution dist;
  std::vector<std::int64_t> bs;
  std::vector<double> qs;
  for (int i = 0; i < n; ++i) {
    bs.push_back(1 + static_cast<std::int64_t>(rng.UniformInt(50)));
    qs.push_back(rng.Uniform(0.5, 0.95));
    dist.Convolve(bs.back(), qs.back());
  }
  std::vector<double> out(bs.size());
  for (auto _ : state) {
    dist.DeconvolvePositiveMassBatch(bs.data(), qs.data(), bs.size(),
                                     out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_BucketRemoveScanBatched)->Arg(10)->Arg(50)->Arg(200);

/// End-to-end greedy-round shape: score every candidate against a
/// committed session. Scalar = ScoreAdd + Rollback per candidate (the old
/// scan); batched = one ScoreAddBatch call (what the solver runs now).
void SessionScan(benchmark::State& state, const JqObjective& objective,
                 bool batched) {
  const int n = static_cast<int>(state.range(0));
  const Jury jury = MakeJury(n);
  auto session = objective.StartSession(0.5);
  for (const Worker& w : jury.workers()) {
    session->ScoreAdd(w);
    session->Commit();
  }
  Rng rng(47);
  std::vector<Worker> candidates;
  for (std::size_t j = 0; j < kScanCandidates; ++j) {
    candidates.emplace_back(
        "c" + std::to_string(j),
        rng.TruncatedGaussian(0.7, 0.22360679774997896, 0.01, 0.99), 0.0);
  }
  std::vector<const Worker*> ptrs;
  for (const Worker& w : candidates) ptrs.push_back(&w);
  std::vector<double> scores(ptrs.size());
  for (auto _ : state) {
    if (batched) {
      session->ScoreAddBatch(ptrs.data(), ptrs.size(), scores.data());
    } else {
      for (std::size_t j = 0; j < ptrs.size(); ++j) {
        scores[j] = session->ScoreAdd(*ptrs[j]);
        session->Rollback();
      }
    }
    benchmark::DoNotOptimize(scores.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kScanCandidates));
}

void BM_SessionScanScalarBucket(benchmark::State& state) {
  SessionScan(state, BucketBvObjective(), /*batched=*/false);
}
BENCHMARK(BM_SessionScanScalarBucket)->Arg(10)->Arg(50)->Arg(200);

void BM_SessionScanBatchedBucket(benchmark::State& state) {
  SessionScan(state, BucketBvObjective(), /*batched=*/true);
}
BENCHMARK(BM_SessionScanBatchedBucket)->Arg(10)->Arg(50)->Arg(200);

void BM_SessionScanScalarMajority(benchmark::State& state) {
  SessionScan(state, MajorityObjective(), /*batched=*/false);
}
BENCHMARK(BM_SessionScanScalarMajority)->Arg(10)->Arg(100)->Arg(500);

void BM_SessionScanBatchedMajority(benchmark::State& state) {
  SessionScan(state, MajorityObjective(), /*batched=*/true);
}
BENCHMARK(BM_SessionScanBatchedMajority)->Arg(10)->Arg(100)->Arg(500);

// ---------------------------------------------------------------------------
// Scalar vs AVX2 kernel sections: the same fused batched kernels pinned to
// one dispatch level (util/simd_dispatch.h), so the SIMD win is measured
// per kernel — the acceptance bar is >= 1.5x for AVX2 over scalar on
// EvaluateBatch and ConvolvePositiveMassBatch on AVX2 hardware. Levels are
// bit-identical, so these rows differ in time only.
// ---------------------------------------------------------------------------

/// The dispatch level selected at startup, captured before any bench pins
/// a different one (the level-pinned benches restore it on exit so the
/// remaining benches run on the production default).
simd::Level DefaultSimdLevel() {
  static const simd::Level level = simd::ActiveLevel();
  return level;
}

/// Pins a dispatch level for the duration of a benchmark run; skips the
/// benchmark when the level is unavailable on this build/CPU.
bool PinLevelOrSkip(benchmark::State& state, simd::Level level) {
  DefaultSimdLevel();  // capture before the first pin
  if (!simd::SetLevel(level)) {
    state.SkipWithError("SIMD level unavailable");
    return false;
  }
  return true;
}

void BM_EvaluateBatchKernel(benchmark::State& state, simd::Level level) {
  if (!PinLevelOrSkip(state, level)) return;
  const int n = static_cast<int>(state.range(0));
  Rng rng(31);
  std::vector<double> committed;
  for (int i = 0; i < n; ++i) committed.push_back(rng.Uniform(0.3, 0.95));
  const PoissonBinomial pb(committed);
  const std::vector<double> candidates = ScanProbs();
  const int k = (n + 1) / 2 + 1;
  std::vector<double> tails(candidates.size());
  std::vector<double> cdfs(candidates.size());
  for (auto _ : state) {
    pb.EvaluateBatch(candidates.data(), candidates.size(), k, k - 1,
                     tails.data(), cdfs.data());
    benchmark::DoNotOptimize(tails.data());
    benchmark::DoNotOptimize(cdfs.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kScanCandidates));
  simd::SetLevel(DefaultSimdLevel());
}
BENCHMARK_CAPTURE(BM_EvaluateBatchKernel, scalar, simd::Level::kScalar)
    ->Arg(10)->Arg(100)->Arg(500);
BENCHMARK_CAPTURE(BM_EvaluateBatchKernel, avx2, simd::Level::kAvx2)
    ->Arg(10)->Arg(100)->Arg(500);
BENCHMARK_CAPTURE(BM_EvaluateBatchKernel, avx512, simd::Level::kAvx512)
    ->Arg(10)->Arg(100)->Arg(500);

void BM_ConvolveMassKernel(benchmark::State& state, simd::Level level) {
  if (!PinLevelOrSkip(state, level)) return;
  const int n = static_cast<int>(state.range(0));
  Rng rng(41);
  BucketKeyDistribution dist;
  for (int i = 0; i < n; ++i) {
    dist.Convolve(1 + static_cast<std::int64_t>(rng.UniformInt(50)),
                  rng.Uniform(0.5, 0.95));
  }
  std::vector<std::int64_t> bs;
  std::vector<double> qs;
  for (std::size_t j = 0; j < kScanCandidates; ++j) {
    bs.push_back(1 + static_cast<std::int64_t>(rng.UniformInt(50)));
    qs.push_back(rng.Uniform(0.5, 0.95));
  }
  std::vector<double> out(kScanCandidates);
  for (auto _ : state) {
    dist.ConvolvePositiveMassBatch(bs.data(), qs.data(), kScanCandidates,
                                   out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kScanCandidates));
  simd::SetLevel(DefaultSimdLevel());
}
BENCHMARK_CAPTURE(BM_ConvolveMassKernel, scalar, simd::Level::kScalar)
    ->Arg(10)->Arg(50)->Arg(200);
BENCHMARK_CAPTURE(BM_ConvolveMassKernel, avx2, simd::Level::kAvx2)
    ->Arg(10)->Arg(50)->Arg(200);
BENCHMARK_CAPTURE(BM_ConvolveMassKernel, avx512, simd::Level::kAvx512)
    ->Arg(10)->Arg(50)->Arg(200);

void BM_RemoveBatchKernel(benchmark::State& state, simd::Level level) {
  if (!PinLevelOrSkip(state, level)) return;
  const int n = static_cast<int>(state.range(0));
  Rng rng(31);
  std::vector<double> committed;
  for (int i = 0; i < n; ++i) committed.push_back(rng.Uniform(0.3, 0.95));
  const PoissonBinomial pb(committed);
  // Remove every committed trial — the shape of a polish remove scan.
  const int k = n / 2 + 1;
  std::vector<double> tails(committed.size());
  std::vector<double> cdfs(committed.size());
  for (auto _ : state) {
    pb.EvaluateRemoveBatch(committed.data(), committed.size(), k, k - 1,
                           tails.data(), cdfs.data());
    benchmark::DoNotOptimize(tails.data());
    benchmark::DoNotOptimize(cdfs.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
  simd::SetLevel(DefaultSimdLevel());
}
BENCHMARK_CAPTURE(BM_RemoveBatchKernel, scalar, simd::Level::kScalar)
    ->Arg(10)->Arg(100)->Arg(500);
BENCHMARK_CAPTURE(BM_RemoveBatchKernel, avx2, simd::Level::kAvx2)
    ->Arg(10)->Arg(100)->Arg(500);
BENCHMARK_CAPTURE(BM_RemoveBatchKernel, avx512, simd::Level::kAvx512)
    ->Arg(10)->Arg(100)->Arg(500);

void BM_DeconvolveMassKernel(benchmark::State& state, simd::Level level) {
  // The batched bucket deconvolve fold pinned to one dispatch level — the
  // remove-scan shape: every folded member deconvolved out hypothetically
  // in one kernel call.
  if (!PinLevelOrSkip(state, level)) return;
  const int n = static_cast<int>(state.range(0));
  Rng rng(53);
  BucketKeyDistribution dist;
  std::vector<std::int64_t> bs;
  std::vector<double> qs;
  for (int i = 0; i < n; ++i) {
    bs.push_back(1 + static_cast<std::int64_t>(rng.UniformInt(50)));
    qs.push_back(rng.Uniform(0.5, 0.95));
    dist.Convolve(bs.back(), qs.back());
  }
  std::vector<double> out(bs.size());
  for (auto _ : state) {
    dist.DeconvolvePositiveMassBatch(bs.data(), qs.data(), bs.size(),
                                     out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
  simd::SetLevel(DefaultSimdLevel());
}
BENCHMARK_CAPTURE(BM_DeconvolveMassKernel, scalar, simd::Level::kScalar)
    ->Arg(10)->Arg(50)->Arg(200);
BENCHMARK_CAPTURE(BM_DeconvolveMassKernel, avx2, simd::Level::kAvx2)
    ->Arg(10)->Arg(50)->Arg(200);
BENCHMARK_CAPTURE(BM_DeconvolveMassKernel, avx512, simd::Level::kAvx512)
    ->Arg(10)->Arg(50)->Arg(200);

// ---------------------------------------------------------------------------
// Unified remove/swap session scans: scalar Score* + Rollback loops vs the
// batched ScoreRemoveBatch / ScoreSwapBatch passes the annealing polish
// runs (view-bound sessions, both objectives).
// ---------------------------------------------------------------------------

struct ScanFixture {
  std::vector<Worker> pool;
  WorkerPoolView view;
  std::unique_ptr<IncrementalJqEvaluator> session;

  ScanFixture(const JqObjective& objective, int n) {
    Rng rng(47);
    for (int i = 0; i < n; ++i) {
      pool.emplace_back(
          "w" + std::to_string(i),
          rng.TruncatedGaussian(0.7, 0.22360679774997896, 0.01, 0.99), 0.0);
    }
    view = WorkerPoolView(pool);
    session = objective.StartSession(view, 0.5);
    // Commit the first half; scan removes over members and swaps/adds
    // against the second half.
    for (int i = 0; i < n / 2; ++i) {
      session->ScoreAdd(view.worker(static_cast<std::size_t>(i)));
      session->Commit();
    }
  }
};

void SessionRemoveScan(benchmark::State& state, const JqObjective& objective,
                       bool batched) {
  ScanFixture fx(objective, static_cast<int>(state.range(0)));
  const std::size_t size = fx.session->size();
  std::vector<std::size_t> positions(size);
  for (std::size_t pos = 0; pos < size; ++pos) positions[pos] = pos;
  std::vector<double> scores(size);
  for (auto _ : state) {
    if (batched) {
      fx.session->ScoreRemoveBatch(positions.data(), size, scores.data());
    } else {
      for (std::size_t pos = 0; pos < size; ++pos) {
        scores[pos] = fx.session->ScoreRemove(pos);
        fx.session->Rollback();
      }
    }
    benchmark::DoNotOptimize(scores.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}

void BM_SessionRemoveScanScalarBucket(benchmark::State& state) {
  SessionRemoveScan(state, BucketBvObjective(), /*batched=*/false);
}
BENCHMARK(BM_SessionRemoveScanScalarBucket)->Arg(50)->Arg(200);

void BM_SessionRemoveScanBatchedBucket(benchmark::State& state) {
  SessionRemoveScan(state, BucketBvObjective(), /*batched=*/true);
}
BENCHMARK(BM_SessionRemoveScanBatchedBucket)->Arg(50)->Arg(200);

void BM_SessionRemoveScanScalarMajority(benchmark::State& state) {
  SessionRemoveScan(state, MajorityObjective(), /*batched=*/false);
}
BENCHMARK(BM_SessionRemoveScanScalarMajority)->Arg(50)->Arg(200);

void BM_SessionRemoveScanBatchedMajority(benchmark::State& state) {
  SessionRemoveScan(state, MajorityObjective(), /*batched=*/true);
}
BENCHMARK(BM_SessionRemoveScanBatchedMajority)->Arg(50)->Arg(200);

void SessionSwapScan(benchmark::State& state, const JqObjective& objective,
                     bool batched) {
  ScanFixture fx(objective, static_cast<int>(state.range(0)));
  const std::size_t n = fx.view.size();
  std::vector<std::size_t> ins;
  for (std::size_t i = fx.session->size(); i < n; ++i) ins.push_back(i);
  std::vector<double> scores(ins.size());
  std::size_t out_pos = 0;
  for (auto _ : state) {
    if (batched) {
      fx.session->ScoreSwapBatch(out_pos % fx.session->size(), ins.data(),
                                 ins.size(), scores.data());
    } else {
      for (std::size_t j = 0; j < ins.size(); ++j) {
        scores[j] = fx.session->ScoreSwap(out_pos % fx.session->size(),
                                          fx.view.worker(ins[j]));
        fx.session->Rollback();
      }
    }
    ++out_pos;
    benchmark::DoNotOptimize(scores.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ins.size()));
}

void BM_SessionSwapScanScalarBucket(benchmark::State& state) {
  SessionSwapScan(state, BucketBvObjective(), /*batched=*/false);
}
BENCHMARK(BM_SessionSwapScanScalarBucket)->Arg(50)->Arg(200);

void BM_SessionSwapScanBatchedBucket(benchmark::State& state) {
  SessionSwapScan(state, BucketBvObjective(), /*batched=*/true);
}
BENCHMARK(BM_SessionSwapScanBatchedBucket)->Arg(50)->Arg(200);

void BM_SessionSwapScanScalarMajority(benchmark::State& state) {
  SessionSwapScan(state, MajorityObjective(), /*batched=*/false);
}
BENCHMARK(BM_SessionSwapScanScalarMajority)->Arg(50)->Arg(200);

void BM_SessionSwapScanBatchedMajority(benchmark::State& state) {
  SessionSwapScan(state, MajorityObjective(), /*batched=*/true);
}
BENCHMARK(BM_SessionSwapScanBatchedMajority)->Arg(50)->Arg(200);

void BM_AnnealingSolve(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng pool_rng(7);
  JspInstance instance;
  for (int i = 0; i < n; ++i) {
    instance.candidates.emplace_back(
        "w" + std::to_string(i),
        pool_rng.TruncatedGaussian(0.7, 0.22360679774997896, 0.01, 0.99),
        pool_rng.TruncatedGaussian(0.05, 0.2, 0.01, 1e9));
  }
  instance.budget = 0.5;
  instance.alpha = 0.5;
  const BucketBvObjective objective;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    Rng rng(seed++);
    benchmark::DoNotOptimize(
        SolveAnnealing(instance, objective, &rng).value());
  }
}
BENCHMARK(BM_AnnealingSolve)->Arg(50)->Arg(100)->Arg(200);

void BM_AnnealingSolveNoIncremental(benchmark::State& state) {
  // The pre-session path: every move re-evaluated from scratch. Contrast
  // with BM_AnnealingSolve (same workload, delta updates on).
  const int n = static_cast<int>(state.range(0));
  Rng pool_rng(7);
  JspInstance instance;
  for (int i = 0; i < n; ++i) {
    instance.candidates.emplace_back(
        "w" + std::to_string(i),
        pool_rng.TruncatedGaussian(0.7, 0.22360679774997896, 0.01, 0.99),
        pool_rng.TruncatedGaussian(0.05, 0.2, 0.01, 1e9));
  }
  instance.budget = 0.5;
  instance.alpha = 0.5;
  const BucketBvObjective objective;
  AnnealingOptions options;
  options.use_incremental = false;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    Rng rng(seed++);
    benchmark::DoNotOptimize(
        SolveAnnealing(instance, objective, &rng, options).value());
  }
}
BENCHMARK(BM_AnnealingSolveNoIncremental)->Arg(50)->Arg(100)->Arg(200);

void BM_AnnealingStep(benchmark::State& state, bool with_token) {
  // Deadline-check overhead: the identical SA workload with and without
  // a live (never-firing) cancel token. The token variant pays what
  // every deadline-armed solve pays — one relaxed flag load per step
  // plus a clock probe every WorkGovernor::kDeadlineProbePeriod steps.
  // scripts/check_deadline_overhead.py gates token/bare at <2% in CI.
  const int n = 100;
  Rng pool_rng(7);
  JspInstance instance;
  for (int i = 0; i < n; ++i) {
    instance.candidates.emplace_back(
        "w" + std::to_string(i),
        pool_rng.TruncatedGaussian(0.7, 0.22360679774997896, 0.01, 0.99),
        pool_rng.TruncatedGaussian(0.05, 0.2, 0.01, 1e9));
  }
  instance.budget = 0.5;
  instance.alpha = 0.5;
  const BucketBvObjective objective;
  AnnealingOptions options;
  const CancelToken token(3.6e6);  // an hour out: probes run, never fire
  if (with_token) options.cancel_token = &token;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    Rng rng(seed++);
    benchmark::DoNotOptimize(
        SolveAnnealing(instance, objective, &rng, options).value());
  }
}
BENCHMARK_CAPTURE(BM_AnnealingStep, bare, false);
BENCHMARK_CAPTURE(BM_AnnealingStep, token, true);

// ---------------------------------------------------------------------------
// Fused multi-request move scans: the SolveMany seam with and without the
// flat-combining broker. Same requests, byte-identical reports — the rows
// differ only in where the batched kernel passes run (each worker thread
// inline vs coalesced drains on whichever thread holds the combiner).
// ---------------------------------------------------------------------------

void SolveManyMoveScans(benchmark::State& state, bool fused) {
  const int n = static_cast<int>(state.range(0));
  Rng pool_rng(59);
  std::vector<Worker> pool;
  for (int i = 0; i < n; ++i) {
    pool.emplace_back(
        "w" + std::to_string(i),
        pool_rng.TruncatedGaussian(0.7, 0.22360679774997896, 0.01, 0.99),
        pool_rng.TruncatedGaussian(0.05, 0.2, 0.01, 1e9));
  }
  auto context = api::PoolPlanContext::Plan(std::move(pool)).value();
  // Scan-heavy requests (annealing polish + the greedy round scans), all
  // runnable concurrently so the broker actually sees overlapping passes.
  std::vector<api::SolveRequest> requests;
  for (std::size_t i = 0; i < 8; ++i) {
    api::SolveRequest request;
    request.solver = i % 2 == 0 ? "annealing" : "greedy-mg";
    request.budget = 0.4 + 0.1 * static_cast<double>(i % 3);
    request.rng_seed = 900 + i;
    requests.push_back(std::move(request));
  }
  api::SolveManyOptions options;
  options.num_threads = 4;
  options.fuse_move_scans = fused;
  for (auto _ : state) {
    auto reports = context.SolveMany(requests, options);
    if (!reports.ok()) {
      state.SkipWithError("SolveMany failed");
      return;
    }
    benchmark::DoNotOptimize(reports.value().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(requests.size()));
}

void BM_SolveManyMoveScansUnfused(benchmark::State& state) {
  SolveManyMoveScans(state, /*fused=*/false);
}
BENCHMARK(BM_SolveManyMoveScansUnfused)->Arg(50)->Arg(200);

void BM_SolveManyMoveScansFused(benchmark::State& state) {
  SolveManyMoveScans(state, /*fused=*/true);
}
BENCHMARK(BM_SolveManyMoveScansFused)->Arg(50)->Arg(200);

}  // namespace
}  // namespace jury

BENCHMARK_MAIN();
