// E9/E10 — Figure 8: JQ of the four strategies MV, BV, RBV, RMV,
// (a) varying the quality mean mu at jury size n = 11, and
// (b) varying the jury size n at mu = 0.7.
// MV/RMV/RBV use their exact polynomial formulas; BV uses exact 2^n
// enumeration (n <= 11 here, as in the paper).

#include <iostream>

#include "bench_util.h"
#include "jq/closed_form.h"
#include "jq/exact.h"
#include "util/stats.h"
#include "util/table.h"

namespace jury {
namespace {

struct StrategyJqs {
  double mv = 0.0;
  double bv = 0.0;
  double rbv = 0.0;
  double rmv = 0.0;
};

StrategyJqs AveragePoint(std::uint64_t seed, int reps, int n, double mu) {
  Rng rng(seed);
  OnlineStats mv, bv, rbv, rmv;
  for (int rep = 0; rep < reps; ++rep) {
    Rng pool_rng = rng.Fork();
    std::vector<double> qs;
    for (int i = 0; i < n; ++i) {
      qs.push_back(
          pool_rng.TruncatedGaussian(mu, 0.22360679774997896, 0.01, 0.99));
    }
    const Jury jury = Jury::FromQualities(qs);
    mv.Add(MajorityJq(jury, 0.5).value());
    bv.Add(ExactJqBv(jury, 0.5).value());
    rbv.Add(RandomBallotJq(jury, 0.5).value());
    rmv.Add(RandomizedMajorityJq(jury, 0.5).value());
  }
  return {mv.mean(), bv.mean(), rbv.mean(), rmv.mean()};
}

void Run() {
  const int reps = static_cast<int>(bench::Reps(200));
  bench::PrintHeader(
      "Figure 8 — JQ for different voting strategies",
      "Qualities ~ N(mu, 0.05) truncated; alpha = 0.5; " +
          std::to_string(reps) + " reps per point (paper: 1000).");

  std::cout << "\n--- Fig 8(a): varying mu (n = 11) ---\n";
  Table a({"mu", "MV", "BV", "RBV", "RMV"});
  for (double mu : {0.5, 0.6, 0.7, 0.8, 0.9, 1.0}) {
    const auto p = AveragePoint(
        8000 + static_cast<std::uint64_t>(mu * 100), reps, 11, mu);
    a.AddRow({Format(mu, 1), FormatPercent(p.mv), FormatPercent(p.bv),
              FormatPercent(p.rbv), FormatPercent(p.rmv)});
  }
  std::cout << a.ToString()
            << "Paper shape: BV highest everywhere and robust at mu=0.5 "
               "(~93%); RBV flat at 50%; RMV <= MV.\n";

  std::cout << "\n--- Fig 8(b): varying jury size n (mu = 0.7) ---\n";
  Table b({"n", "MV", "BV", "RBV", "RMV"});
  for (int n = 1; n <= 11; n += 2) {
    const auto p =
        AveragePoint(8800 + static_cast<std::uint64_t>(n), reps, n, 0.7);
    b.AddRow({std::to_string(n), FormatPercent(p.mv), FormatPercent(p.bv),
              FormatPercent(p.rbv), FormatPercent(p.rmv)});
  }
  std::cout << b.ToString()
            << "Paper shape: BV tops all sizes (~10% over MV at n=7); the "
               "randomized strategies stay flat as n grows.\n";

  // Beyond the paper's four: the remaining Table-2 strategies we implement.
  std::cout << "\n--- Extended (beyond the figure): all built-in strategies, "
               "n = 11 ---\n";
  Table ext({"mu", "MV", "HALF", "WMV", "BV", "RMV", "RBV", "TRIADIC"});
  for (double mu : {0.5, 0.6, 0.7, 0.8, 0.9}) {
    Rng rng(9900 + static_cast<std::uint64_t>(mu * 100));
    OnlineStats mv, half, wmv, bv, rmv, rbv, triadic;
    for (int rep = 0; rep < reps; ++rep) {
      Rng pool_rng = rng.Fork();
      std::vector<double> qs;
      for (int i = 0; i < 11; ++i) {
        qs.push_back(pool_rng.TruncatedGaussian(mu, 0.22360679774997896,
                                                0.01, 0.99));
      }
      const Jury jury = Jury::FromQualities(qs);
      mv.Add(MajorityJq(jury, 0.5).value());
      half.Add(HalfVotingJq(jury, 0.5).value());
      const double bv_jq = ExactJqBv(jury, 0.5).value();
      bv.Add(bv_jq);
      wmv.Add(bv_jq);  // WMV with log-odds weights == BV at alpha = 0.5
      rmv.Add(RandomizedMajorityJq(jury, 0.5).value());
      rbv.Add(RandomBallotJq(jury, 0.5).value());
      triadic.Add(TriadicJq(jury, 0.5).value());
    }
    ext.AddRow({Format(mu, 1), FormatPercent(mv.mean()),
                FormatPercent(half.mean()), FormatPercent(wmv.mean()),
                FormatPercent(bv.mean()), FormatPercent(rmv.mean()),
                FormatPercent(rbv.mean()), FormatPercent(triadic.mean())});
  }
  std::cout << ext.ToString();
}

}  // namespace
}  // namespace jury

int main() {
  jury::Run();
  return 0;
}
