// E18 — §7 extension: multi-class tasks under the confusion-matrix worker
// model. (1) accuracy of the tuple-key bucketed JQ vs exact enumeration;
// (2) multi-class JSP: annealing vs exhaustive; (3) spammer-score ranking
// as a selection heuristic.

#include <cmath>
#include <iostream>

#include "bench_util.h"
#include "multiclass/jq_bucket.h"
#include "multiclass/jq_exact.h"
#include "multiclass/jsp.h"
#include "multiclass/spammer.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/timer.h"

namespace jury::mc {
namespace {

ConfusionMatrix RandomConfusion(Rng* rng, std::size_t labels) {
  ConfusionMatrix cm = ConfusionMatrix::UniformSpammer(labels);
  for (std::size_t j = 0; j < labels; ++j) {
    double sum = 0.0;
    std::vector<double> row(labels);
    for (std::size_t k = 0; k < labels; ++k) {
      row[k] = rng->Uniform(0.05, 1.0) * (j == k ? 2.5 : 1.0);
      sum += row[k];
    }
    for (std::size_t k = 0; k < labels; ++k) cm.at(j, k) = row[k] / sum;
  }
  return cm;
}

void JqAccuracy(int reps) {
  std::cout << "\n--- Bucketed multi-class JQ vs exact (n = 5) ---\n";
  Table table({"labels", "buckets", "mean |error|", "max |error|"});
  for (std::size_t labels : {2u, 3u, 4u}) {
    for (int buckets : {32, 128, 512}) {
      Rng rng(static_cast<std::uint64_t>(labels) * 1000 +
              static_cast<std::uint64_t>(buckets));
      OnlineStats err;
      double max_err = 0.0;
      for (int rep = 0; rep < reps; ++rep) {
        McJury jury;
        for (int i = 0; i < 5; ++i) {
          jury.Add({"w", RandomConfusion(&rng, labels), 0.0});
        }
        const McPrior prior = UniformMcPrior(labels);
        const double exact = ExactMcJq(jury, prior).value();
        McBucketOptions options;
        options.num_buckets = buckets;
        const double approx = EstimateMcJq(jury, prior, options).value();
        const double e = std::fabs(exact - approx);
        err.Add(e);
        max_err = std::max(max_err, e);
      }
      table.AddRow({std::to_string(labels), std::to_string(buckets),
                    FormatPercent(err.mean(), 4),
                    FormatPercent(max_err, 4)});
    }
  }
  std::cout << table.ToString();
}

void JspComparison(int reps) {
  std::cout << "\n--- Multi-class JSP: annealing vs exhaustive (N = 8, "
               "l = 3) ---\n";
  OnlineStats gap, sa_time, ex_time;
  Rng rng(424243);
  for (int rep = 0; rep < reps; ++rep) {
    McJspInstance instance;
    instance.budget = 1.0;
    instance.prior = UniformMcPrior(3);
    Rng pool_rng = rng.Fork();
    for (int i = 0; i < 8; ++i) {
      instance.candidates.emplace_back(
          "c" + std::to_string(i), RandomConfusion(&pool_rng, 3),
          pool_rng.TruncatedGaussian(0.3, 0.2, 0.05, 1e9));
    }
    Timer t_ex;
    const auto exhaustive = SolveMcExhaustive(instance).value();
    ex_time.Add(t_ex.ElapsedSeconds());
    Rng sa_rng = rng.Fork();
    Timer t_sa;
    const auto sa = SolveMcAnnealing(instance, &sa_rng).value();
    sa_time.Add(t_sa.ElapsedSeconds());
    gap.Add(exhaustive.jq - sa.jq);
  }
  Table table({"metric", "value"});
  table.AddRow({"mean JQ gap (exhaustive - SA)", FormatPercent(gap.mean(), 3)});
  table.AddRow({"max JQ gap", FormatPercent(gap.max(), 3)});
  table.AddRow({"mean SA time (s)", Format(sa_time.mean(), 5)});
  table.AddRow({"mean exhaustive time (s)", Format(ex_time.mean(), 5)});
  std::cout << table.ToString();
}

void SpammerHeuristic(int reps) {
  std::cout << "\n--- Spammer-score ranking as a selection heuristic "
               "(uniform costs, pick 3 of 8, l = 3) ---\n";
  OnlineStats by_score, random_pick, optimal;
  Rng rng(515151);
  for (int rep = 0; rep < reps; ++rep) {
    McJury pool;
    Rng pool_rng = rng.Fork();
    for (int i = 0; i < 8; ++i) {
      pool.Add({"w" + std::to_string(i), RandomConfusion(&pool_rng, 3), 1.0});
    }
    const McPrior prior = UniformMcPrior(3);
    // Top-3 by informativeness.
    const auto order = RankWorkersByInformativeness(pool).value();
    McJury ranked;
    for (int i = 0; i < 3; ++i) ranked.Add(pool.worker(order[static_cast<std::size_t>(i)]));
    by_score.Add(ExactMcJq(ranked, prior).value());
    // Random 3.
    Rng pick_rng = rng.Fork();
    McJury random_jury;
    for (std::size_t idx : pick_rng.SampleWithoutReplacement(8, 3)) {
      random_jury.Add(pool.worker(idx));
    }
    random_pick.Add(ExactMcJq(random_jury, prior).value());
    // Best 3 by enumeration.
    double best = 0.0;
    for (std::size_t a = 0; a < 8; ++a) {
      for (std::size_t b = a + 1; b < 8; ++b) {
        for (std::size_t c = b + 1; c < 8; ++c) {
          McJury jury;
          jury.Add(pool.worker(a));
          jury.Add(pool.worker(b));
          jury.Add(pool.worker(c));
          best = std::max(best, ExactMcJq(jury, prior).value());
        }
      }
    }
    optimal.Add(best);
  }
  Table table({"selection", "mean JQ"});
  table.AddRow({"optimal 3-subset", FormatPercent(optimal.mean())});
  table.AddRow({"top-3 spammer score", FormatPercent(by_score.mean())});
  table.AddRow({"random 3", FormatPercent(random_pick.mean())});
  std::cout << table.ToString()
            << "The §7 conjecture in action: confusion-matrix quality has "
               "no total order, but spammer score is a strong heuristic.\n";
}

void Run() {
  const int reps = static_cast<int>(bench::Reps(30));
  bench::PrintHeader("§7 extension — multi-class / confusion-matrix model",
                     std::to_string(reps) + " repetitions per cell.");
  JqAccuracy(reps);
  JspComparison(std::max(1, reps / 3));
  SpammerHeuristic(reps);
}

}  // namespace
}  // namespace jury::mc

int main() {
  jury::mc::Run();
  return 0;
}
