// E17 — ablation: the §4.4 error bound vs measured error across bucket
// counts, and dense-vs-sparse backend timing. This is the design-choice
// study DESIGN.md calls out for Algorithm 1.

#include <cmath>
#include <iostream>

#include "bench_util.h"
#include "jq/bucket.h"
#include "jq/exact.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/timer.h"

namespace jury {
namespace {

void BoundTightness(int reps) {
  std::cout << "\n--- Measured error vs analytic bound e^{n*delta/4}-1 "
               "(n = 11) ---\n";
  Table table({"numBuckets", "bound", "max measured", "mean measured",
               "bound/measured(max)"});
  for (int buckets : {10, 25, 50, 100, 200, 400}) {
    Rng rng(static_cast<std::uint64_t>(buckets) * 37 + 5);
    double max_err = 0.0;
    double bound = 0.0;
    OnlineStats err;
    for (int rep = 0; rep < reps; ++rep) {
      std::vector<double> qs;
      for (int i = 0; i < 11; ++i) {
        qs.push_back(rng.TruncatedGaussian(0.7, 0.22360679774997896, 0.01,
                                           0.99));
      }
      const Jury jury = Jury::FromQualities(qs);
      const double exact = ExactJqBv(jury, 0.5).value();
      BucketJqOptions options;
      options.num_buckets = buckets;
      BucketJqStats stats;
      const double approx = EstimateJq(jury, 0.5, options, &stats).value();
      err.Add(exact - approx);
      max_err = std::max(max_err, exact - approx);
      bound = std::max(bound, stats.error_bound);
    }
    table.AddRow({std::to_string(buckets), FormatPercent(bound, 3),
                  FormatPercent(max_err, 4), FormatPercent(err.mean(), 4),
                  Format(bound / std::max(max_err, 1e-12), 1) + "x"});
  }
  std::cout << table.ToString()
            << "The bound is sound (never exceeded) but loose by orders of "
               "magnitude — matching the paper's <1% guarantee vs ~0.01% "
               "observed.\n";
}

void BackendTiming(int reps) {
  std::cout << "\n--- Dense vs sparse backend (seconds per JQ evaluation) "
               "---\n";
  Table table({"n", "dense", "sparse", "sparse+noprune"});
  for (int n : {50, 100, 200, 400}) {
    Rng rng(static_cast<std::uint64_t>(n) * 13 + 3);
    std::vector<double> qs;
    for (int i = 0; i < n; ++i) {
      qs.push_back(rng.TruncatedGaussian(0.7, 0.22360679774997896, 0.01,
                                         0.99));
    }
    const Jury jury = Jury::FromQualities(qs);
    auto time_it = [&](const BucketJqOptions& options) {
      Timer timer;
      for (int rep = 0; rep < reps; ++rep) {
        (void)EstimateJq(jury, 0.5, options).value();
      }
      return timer.ElapsedSeconds() / reps;
    };
    BucketJqOptions dense;
    dense.backend = BucketBackend::kDense;
    BucketJqOptions sparse;
    sparse.backend = BucketBackend::kSparse;
    BucketJqOptions noprune = sparse;
    noprune.enable_pruning = false;
    table.AddRow({std::to_string(n), Format(time_it(dense), 5),
                  Format(time_it(sparse), 5), Format(time_it(noprune), 5)});
  }
  std::cout << table.ToString();
}

void Run() {
  const int reps = static_cast<int>(bench::Reps(100));
  bench::PrintHeader("Ablation — bucket count, error bound, and backend",
                     "Design-choice study for Algorithm 1 (DESIGN.md E17).");
  BoundTightness(reps);
  BackendTiming(std::max(1, reps / 10));
}

}  // namespace
}  // namespace jury

int main() {
  jury::Run();
  return 0;
}
