// E2-E5 — Figure 6(a-d): end-to-end OPTJS vs MVJS on synthetic pools.
// Each point averages `Reps` repetitions of: draw a pool, solve JSP under
// each system, record the returned jury's quality (each system measured
// under its own strategy, as in the paper).

#include <functional>
#include <iostream>

#include "bench_util.h"
#include "core/mvjs.h"
#include "core/optjs.h"
#include "util/stats.h"
#include "util/table.h"

namespace jury {
namespace {

struct Point {
  double optjs = 0.0;
  double mvjs = 0.0;
};

Point RunPoint(std::uint64_t seed, int reps, int num_workers, double mu,
               double budget, double cost_sigma) {
  Rng rng(seed);
  OnlineStats optjs_stats, mvjs_stats;
  for (int rep = 0; rep < reps; ++rep) {
    Rng pool_rng = rng.Fork();
    const auto pool = bench::PaperPool(&pool_rng, num_workers, mu,
                                       0.22360679774997896, 0.05, cost_sigma);
    JspInstance instance;
    instance.candidates = pool;
    instance.budget = budget;
    instance.alpha = 0.5;
    Rng r1 = rng.Fork();
    Rng r2 = rng.Fork();
    optjs_stats.Add(SolveOptjs(instance, &r1).value().jq);
    mvjs_stats.Add(SolveMvjs(instance, &r2).value().jq);
  }
  return {optjs_stats.mean(), mvjs_stats.mean()};
}

void Sweep(const std::string& title, const std::string& x_name,
           const std::vector<double>& xs,
           const std::function<Point(double)>& point_fn) {
  std::cout << "\n--- " << title << " ---\n";
  Table table({x_name, "MVJS", "OPTJS", "OPTJS-MVJS"});
  for (double x : xs) {
    const Point p = point_fn(x);
    table.AddRow({Format(x, 2), FormatPercent(p.mvjs), FormatPercent(p.optjs),
                  FormatPercent(p.optjs - p.mvjs)});
  }
  std::cout << table.ToString();
}

void Run() {
  const int reps = static_cast<int>(bench::Reps(20));
  bench::PrintHeader(
      "Figure 6 — system comparison OPTJS vs MVJS (synthetic)",
      "Defaults: N=50, mu=0.7, sigma^2=0.05, cost~N(0.05,0.2^2), B=0.5, "
      "alpha=0.5; " +
          std::to_string(reps) + " repetitions per point (paper: 1000).");

  Sweep("Fig 6(a): varying worker quality mean mu", "mu",
        {0.5, 0.6, 0.7, 0.8, 0.9, 1.0}, [&](double mu) {
          return RunPoint(1000 + static_cast<std::uint64_t>(mu * 100), reps,
                          50, mu, 0.5, 0.2);
        });

  Sweep("Fig 6(b): varying budget B", "B",
        {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}, [&](double b) {
          return RunPoint(2000 + static_cast<std::uint64_t>(b * 100), reps,
                          50, 0.7, b, 0.2);
        });

  Sweep("Fig 6(c): varying number of candidate workers N", "N",
        {10, 20, 30, 40, 50, 60, 70, 80, 90, 100}, [&](double n) {
          return RunPoint(3000 + static_cast<std::uint64_t>(n), reps,
                          static_cast<int>(n), 0.7, 0.5, 0.2);
        });

  Sweep("Fig 6(d): varying cost standard deviation sigma-hat", "sigma",
        {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}, [&](double s) {
          return RunPoint(4000 + static_cast<std::uint64_t>(s * 100), reps,
                          50, 0.7, 0.5, s);
        });

  std::cout << "\nPaper shape: OPTJS >= MVJS everywhere; gap widest at low "
               "mu (~5% at mu=0.6), small N (>6% at N=10), and ~3% average "
               "across budgets.\n";
}

}  // namespace
}  // namespace jury

int main() {
  jury::Run();
  return 0;
}
