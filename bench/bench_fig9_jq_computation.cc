// E11-E14 — Figure 9: the JQ(J, BV, 0.5) computation itself.
// (a) JQ vs mu for several quality variances;
// (b) approximation error vs numBuckets;
// (c) error histogram at numBuckets = 50;
// (d) runtime with vs without the Algorithm-2 pruning for n up to 500.

#include <cmath>
#include <iostream>

#include "bench_util.h"
#include "jq/bucket.h"
#include "jq/exact.h"
#include "util/histogram.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/timer.h"

namespace jury {
namespace {

Jury SampleJury(Rng* rng, int n, double mu, double sigma) {
  std::vector<double> qs;
  for (int i = 0; i < n; ++i) {
    qs.push_back(rng->TruncatedGaussian(mu, sigma, 0.01, 0.99));
  }
  return Jury::FromQualities(qs);
}

void Fig9a(int reps) {
  std::cout << "\n--- Fig 9(a): JQ(BV) vs mu for quality variances ---\n";
  const std::vector<double> variances{0.01, 0.03, 0.05, 0.10};
  std::vector<std::string> header{"mu"};
  for (double v : variances) header.push_back("Var=" + Format(v, 2));
  Table table(header);
  for (double mu : {0.5, 0.6, 0.7, 0.8, 0.9, 1.0}) {
    std::vector<std::string> row{Format(mu, 1)};
    for (double variance : variances) {
      Rng rng(static_cast<std::uint64_t>(mu * 1000 + variance * 100000));
      OnlineStats stats;
      for (int rep = 0; rep < reps; ++rep) {
        const Jury jury = SampleJury(&rng, 11, mu, std::sqrt(variance));
        BucketJqOptions options;
        options.num_buckets = 400;
        stats.Add(EstimateJq(jury, 0.5, options).value());
      }
      row.push_back(FormatPercent(stats.mean()));
    }
    table.AddRow(std::move(row));
  }
  std::cout << table.ToString()
            << "Paper shape: at mu=0.5 the highest-variance curve wins "
               "(outliers become informative under BV).\n";
}

void Fig9b(int reps) {
  std::cout << "\n--- Fig 9(b): approximation error vs numBuckets ---\n";
  Table table({"numBuckets", "mean error", "max error"});
  for (int buckets : {10, 25, 50, 100, 150, 200}) {
    Rng rng(static_cast<std::uint64_t>(buckets) * 101);
    OnlineStats err;
    double max_err = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
      const Jury jury = SampleJury(&rng, 11, 0.7, 0.22360679774997896);
      const double exact = ExactJqBv(jury, 0.5).value();
      BucketJqOptions options;
      options.num_buckets = buckets;
      const double approx = EstimateJq(jury, 0.5, options).value();
      err.Add(exact - approx);
      max_err = std::max(max_err, exact - approx);
    }
    table.AddRow({std::to_string(buckets), FormatPercent(err.mean(), 4),
                  FormatPercent(max_err, 4)});
  }
  std::cout << table.ToString()
            << "Paper shape: error drops sharply with numBuckets, near zero "
               "by 200.\n";
}

void Fig9c(int reps) {
  std::cout << "\n--- Fig 9(c): error histogram at numBuckets = 50 ---\n";
  Histogram hist(0.0, 0.0001, 10);  // 0 .. 0.01% in 10 bins
  Rng rng(2718);
  for (int rep = 0; rep < reps * 5; ++rep) {
    const Jury jury = SampleJury(&rng, 11, 0.7, 0.22360679774997896);
    const double exact = ExactJqBv(jury, 0.5).value();
    const double approx = EstimateJq(jury, 0.5).value();  // numBuckets = 50
    hist.Add(exact - approx);
  }
  std::cout << hist.ToString()
            << "Paper shape: heavily skewed towards ~0; max error within "
               "0.01%.\n";
}

void Fig9d(int reps) {
  std::cout << "\n--- Fig 9(d): JQ runtime, pruning on vs off (seconds) ---\n";
  Table table({"n", "with pruning", "without pruning", "speedup"});
  for (int n : {100, 200, 300, 400, 500}) {
    Rng rng(static_cast<std::uint64_t>(n) * 7);
    OnlineStats with_time, without_time;
    for (int rep = 0; rep < reps; ++rep) {
      const Jury jury = SampleJury(&rng, n, 0.7, 0.22360679774997896);
      BucketJqOptions pruned;
      pruned.backend = BucketBackend::kSparse;
      BucketJqOptions unpruned = pruned;
      unpruned.enable_pruning = false;
      Timer t1;
      (void)EstimateJq(jury, 0.5, pruned).value();
      with_time.Add(t1.ElapsedSeconds());
      Timer t2;
      (void)EstimateJq(jury, 0.5, unpruned).value();
      without_time.Add(t2.ElapsedSeconds());
    }
    table.AddRow({std::to_string(n), Format(with_time.mean(), 5),
                  Format(without_time.mean(), 5),
                  Format(without_time.mean() /
                             std::max(with_time.mean(), 1e-9),
                         2) +
                      "x"});
  }
  std::cout << table.ToString()
            << "Paper shape: pruning saves more than half the cost and "
               "scales well (their Python: 2.5s -> <1s at n=500).\n";
}

void Run() {
  const int reps = static_cast<int>(bench::Reps(100));
  bench::PrintHeader(
      "Figure 9 — JQ(J, BV, 0.5) computation",
      "Qualities ~ N(mu, sigma^2) truncated; " + std::to_string(reps) +
          " reps per point (paper: 1000).");
  Fig9a(reps);
  Fig9b(reps);
  Fig9c(reps);
  Fig9d(std::max(1, reps / 20));
}

}  // namespace
}  // namespace jury

int main() {
  jury::Run();
  return 0;
}
