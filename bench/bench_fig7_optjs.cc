// E6/E8 — Figure 7: (a) how close the simulated-annealing jury comes to
// the true optimum (N = 11, exhaustive reference) across budgets;
// (b) SA running time as the candidate pool grows to 500.

#include <iostream>

#include "bench_util.h"
#include "core/annealing.h"
#include "core/exhaustive.h"
#include "core/objective.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/timer.h"

namespace jury {
namespace {

void Fig7a(int reps) {
  std::cout << "\n--- Fig 7(a): JQ of SA jury vs optimal jury (N=11) ---\n";
  Table table({"Budget", "JQ optimal J*", "JQ returned J'", "gap"});
  const BucketBvObjective objective;
  for (double budget = 0.05; budget <= 0.501; budget += 0.05) {
    OnlineStats optimal_stats, returned_stats;
    Rng rng(static_cast<std::uint64_t>(budget * 1000) + 7);
    for (int rep = 0; rep < reps; ++rep) {
      Rng pool_rng = rng.Fork();
      JspInstance instance;
      instance.candidates = bench::PaperPool(&pool_rng, 11, 0.7);
      instance.budget = budget;
      instance.alpha = 0.5;
      const auto optimal = SolveExhaustive(instance, objective).value();
      Rng sa_rng = rng.Fork();
      const auto returned =
          SolveAnnealing(instance, objective, &sa_rng).value();
      optimal_stats.Add(optimal.jq);
      returned_stats.Add(returned.jq);
    }
    table.AddRow({Format(budget, 2), FormatPercent(optimal_stats.mean()),
                  FormatPercent(returned_stats.mean()),
                  FormatPercent(optimal_stats.mean() -
                                returned_stats.mean())});
  }
  std::cout << table.ToString()
            << "Paper shape: the two curves almost coincide.\n";
}

void Fig7b(int reps) {
  std::cout << "\n--- Fig 7(b): SA running time vs N (seconds) ---\n";
  std::vector<std::string> header{"N"};
  const std::vector<double> budgets{0.05, 0.20, 0.35, 0.50};
  for (double b : budgets) header.push_back("B=" + Format(b, 2));
  Table table(header);
  for (int n : {100, 200, 300, 400, 500}) {
    std::vector<std::string> row{std::to_string(n)};
    for (double budget : budgets) {
      Rng rng(static_cast<std::uint64_t>(n) * 17 +
              static_cast<std::uint64_t>(budget * 100));
      OnlineStats time_stats;
      for (int rep = 0; rep < reps; ++rep) {
        Rng pool_rng = rng.Fork();
        JspInstance instance;
        instance.candidates = bench::PaperPool(&pool_rng, n, 0.7);
        instance.budget = budget;
        instance.alpha = 0.5;
        const BucketBvObjective objective;
        Rng sa_rng = rng.Fork();
        Timer timer;
        (void)SolveAnnealing(instance, objective, &sa_rng).value();
        time_stats.Add(timer.ElapsedSeconds());
      }
      row.push_back(Format(time_stats.mean(), 4));
    }
    table.AddRow(std::move(row));
  }
  std::cout << table.ToString()
            << "Paper shape: time grows linearly with N (their Python "
               "implementation: <2.5s at N=500; absolute numbers differ).\n";
}

void Run() {
  const int reps = static_cast<int>(bench::Reps(20));
  bench::PrintHeader(
      "Figure 7 — effectiveness & efficiency of OPTJS",
      "(a) N=11, B in [0.05,0.5]: exhaustive optimum vs SA, " +
          std::to_string(reps) +
          " reps/point. (b) SA runtime, N in [100,500], " +
          std::to_string(std::max(1, reps / 5)) + " reps/point.");
  Fig7a(reps);
  Fig7b(std::max(1, reps / 5));
}

}  // namespace
}  // namespace jury

int main() {
  jury::Run();
  return 0;
}
